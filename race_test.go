package stark_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stark"
)

// TestConcurrentStatsAccess drives a faulted workload — crashes, restarts,
// partitions, message drops, corrupt blocks — while a second goroutine
// polls the exported stats accessors the whole time. Run under -race this
// verifies that RecoveryStats, Blacklisted, and FaultStats are safe to call
// from monitoring goroutines while the simulation loop mutates the counters
// they read. (NetworkStats is deliberately absent: it is documented as
// loop-goroutine-only.)
func TestConcurrentStatsAccess(t *testing.T) {
	// The fault-free workload's virtual makespan is ~60ms, so the horizon
	// and heartbeat timeouts are scaled to land faults mid-run.
	const horizon = 50 * time.Millisecond
	sched := stark.RandomFaultSchedule(11, horizon, 4).
		WithNetFaults(11, horizon, 4)
	ctx := stark.NewContext(
		stark.WithExecutors(4),
		stark.WithSeed(3),
		stark.WithNetwork(stark.NetworkConfig{
			BaseDelay: 200 * time.Microsecond,
			Jitter:    300 * time.Microsecond,
		}),
		stark.WithHeartbeat(2*time.Millisecond, 6*time.Millisecond, 15*time.Millisecond),
		stark.WithFaults(sched),
	)

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			_ = ctx.RecoveryStats()
			_ = ctx.Blacklisted()
			_ = ctx.FaultStats()
		}
	}()

	recs := make([]stark.Record, 4000)
	for i := range recs {
		recs[i] = stark.Pair(fmt.Sprintf("k%04d", i%97), i)
	}
	p := stark.NewHashPartitioner(12)
	sums := ctx.TextFile("events", recs, 12).
		ReduceByKey(p, func(a, b any) any { return a.(int) + b.(int) }).
		Cache()
	for step := 0; step < 4; step++ {
		n, _, err := sums.Count()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if n != 97 {
			t.Fatalf("step %d: count = %d, want 97", step, n)
		}
	}

	stop.Store(true)
	<-done
	rec := ctx.RecoveryStats()
	if rec.TaskFailures == 0 && rec.DeadDeclarations == 0 && rec.Suspicions == 0 {
		t.Fatal("fault schedule exercised no recovery machinery; the race coverage is vacuous")
	}
}

// TestConcurrentStatsDriverRestart drives the driver crash-restart path —
// write-ahead journal, torn-tail truncation, replay, job resubmission —
// while a monitoring goroutine polls the exported stats accessors. Run
// under -race (CI runs it at -cpu 1,4) this verifies the restart path keeps
// the same cross-goroutine safety contract as steady-state operation.
func TestConcurrentStatsDriverRestart(t *testing.T) {
	const horizon = 50 * time.Millisecond
	sched := stark.FaultSchedule{
		DriverCrashes: []stark.DriverCrashFault{
			{At: 12 * time.Millisecond, RestartAfter: 3 * time.Millisecond, TearTail: 5},
			{At: 34 * time.Millisecond, RestartAfter: 2 * time.Millisecond},
		},
	}.WithDriverFaults(17, horizon)
	ctx := stark.NewContext(
		stark.WithExecutors(4),
		stark.WithSeed(3),
		stark.WithDriverRecovery(),
		stark.WithNetwork(stark.NetworkConfig{
			BaseDelay: 200 * time.Microsecond,
			Jitter:    300 * time.Microsecond,
		}),
		stark.WithHeartbeat(2*time.Millisecond, 6*time.Millisecond, 15*time.Millisecond),
		stark.WithFaults(sched),
	)

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			_ = ctx.RecoveryStats()
			_ = ctx.Blacklisted()
			_ = ctx.FaultStats()
		}
	}()

	recs := make([]stark.Record, 4000)
	for i := range recs {
		recs[i] = stark.Pair(fmt.Sprintf("k%04d", i%97), i)
	}
	p := stark.NewHashPartitioner(12)
	sums := ctx.TextFile("events", recs, 12).
		ReduceByKey(p, func(a, b any) any { return a.(int) + b.(int) }).
		Cache()
	for step := 0; step < 4; step++ {
		n, _, err := sums.Count()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if n != 97 {
			t.Fatalf("step %d: count = %d, want 97", step, n)
		}
	}

	stop.Store(true)
	<-done
	rec := ctx.RecoveryStats()
	if rec.DriverRestarts == 0 {
		t.Fatal("no driver restart fired inside the workload; the race coverage is vacuous")
	}
}
