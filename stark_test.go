package stark

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func makeRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Pair(fmt.Sprintf("key-%04d", i), int64(i))
	}
	return out
}

func TestQuickstartFlow(t *testing.T) {
	ctx := NewContext(WithExecutors(4), WithSlots(2), WithSeed(7))
	data := ctx.Parallelize("data", makeRecords(200), 4)
	evens := data.Filter(func(r Record) bool {
		return strings.HasSuffix(r.Key, "0") || strings.HasSuffix(r.Key, "2")
	})
	n, stats, err := evens.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("count = %d", n)
	}
	if stats.Makespan() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMapAndMapValues(t *testing.T) {
	ctx := NewContext()
	p := NewHashPartitioner(4)
	data := ctx.Parallelize("d", makeRecords(40), 2).PartitionBy(p)
	mv := data.MapValues(func(r Record) Record { return Pair(r.Key, "x") })
	recs, _, err := mv.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 || recs[0].Value != "x" {
		t.Fatalf("collect = %d %v", len(recs), recs[0])
	}
	m := data.Map(func(r Record) Record { return Pair("all", r.Value) })
	n, _, err := m.Count()
	if err != nil || n != 40 {
		t.Fatalf("map count = %d err=%v", n, err)
	}
}

func TestFlatMap(t *testing.T) {
	ctx := NewContext()
	data := ctx.Parallelize("d", makeRecords(10), 2)
	fm := data.FlatMap(func(r Record) []Record { return []Record{r, r, r} })
	if got := fm.MustCount(); got != 30 {
		t.Fatalf("flatMap count = %d", got)
	}
}

func TestReduceByKeyPublic(t *testing.T) {
	ctx := NewContext()
	recs := []Record{Pair("a", int64(1)), Pair("b", int64(5)), Pair("a", int64(2))}
	sums := ctx.Parallelize("d", recs, 2).ReduceByKey(NewHashPartitioner(2), func(a, b any) any {
		return a.(int64) + b.(int64)
	})
	got, _, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{}
	for _, r := range got {
		m[r.Key] = r.Value
	}
	if m["a"] != int64(3) || m["b"] != int64(5) {
		t.Fatalf("sums = %v", m)
	}
}

func TestJoinPublic(t *testing.T) {
	ctx := NewContext()
	p := NewHashPartitioner(2)
	left := ctx.Parallelize("l", []Record{Pair("k", "lv")}, 1)
	right := ctx.Parallelize("r", []Record{Pair("k", "rv"), Pair("z", "zv")}, 1)
	j := ctx.Join(p, left, right)
	recs, _, err := j.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("join = %v", recs)
	}
	jv := recs[0].Value.(Joined)
	if jv.Left != "lv" || jv.Right != "rv" {
		t.Fatalf("joined = %+v", jv)
	}
}

func TestCoLocalityEndToEnd(t *testing.T) {
	ctx := NewContext(WithCoLocality(), WithExecutors(4), WithSeed(3))
	p := NewHashPartitioner(4)
	if err := ctx.RegisterNamespace("logs", p, 1); err != nil {
		t.Fatal(err)
	}
	var hours []*RDD
	for h := 0; h < 3; h++ {
		r := ctx.TextFile(fmt.Sprintf("hour%d", h), makeRecords(100), 2).
			LocalityPartitionBy(p, "logs").
			Cache()
		r.MustCount()
		hours = append(hours, r)
	}
	cg := ctx.CoGroup(p, hours...)
	_, stats, err := cg.Count()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalityFraction() != 1.0 {
		t.Fatalf("locality = %v", stats.LocalityFraction())
	}
}

func TestCheckpointPublic(t *testing.T) {
	ctx := NewContext()
	r := ctx.Parallelize("d", makeRecords(50), 2).Filter(func(Record) bool { return true }).Cache()
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if r.IsCheckpointed() {
		t.Fatal("premature checkpoint")
	}
	r.Checkpoint()
	if !r.IsCheckpointed() || ctx.TotalCheckpointBytes() == 0 {
		t.Fatal("checkpoint missing")
	}
}

func TestStreamPublic(t *testing.T) {
	ctx := NewContext(WithCoLocality(), WithExecutors(4))
	p := NewHashPartitioner(4)
	s, err := ctx.NewStream(StreamConfig{
		Name: "taxi", Partitioner: p, Namespace: "taxi", Window: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		s.Ingest(step, makeRecords(60))
		ctx.Drain()
	}
	if s.Step(0) != nil {
		t.Fatal("window eviction failed")
	}
	window := s.Recent(3)
	if len(window) != 3 {
		t.Fatalf("recent = %d", len(window))
	}
	cg := window[0].CoGroup(p, window[1:]...)
	if got := cg.MustCount(); got != 60 {
		t.Fatalf("cogroup keys = %d", got)
	}
}

func TestOpenLoopPublic(t *testing.T) {
	ctx := NewContext(WithExecutors(4))
	base := ctx.Parallelize("d", makeRecords(500), 4).Cache()
	if _, err := base.Materialize(); err != nil {
		t.Fatal(err)
	}
	results := ctx.OpenLoop(time.Millisecond, 8, func(i int) *RDD {
		return base.Filter(func(Record) bool { return true })
	})
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	if MeanDelay(results) <= 0 {
		t.Fatal("no delay measured")
	}
	for _, r := range results {
		if r.Count != 500 {
			t.Fatalf("query %d count = %d", r.Index, r.Count)
		}
	}
}

func TestFailureInjectionPublic(t *testing.T) {
	ctx := NewContext(WithExecutors(4))
	r := ctx.Parallelize("d", makeRecords(100), 4).PartitionBy(NewHashPartitioner(4)).Cache()
	n1 := r.MustCount()
	ctx.KillExecutor(0)
	n2 := r.Filter(func(Record) bool { return true }).MustCount()
	if n1 != n2 {
		t.Fatalf("counts differ after failure: %d vs %d", n1, n2)
	}
	ctx.RestartExecutor(0)
	if ctx.NumExecutors() != 4 {
		t.Fatal("executors miscounted")
	}
}

func TestExtendablePublic(t *testing.T) {
	ctx := NewContext(
		WithExtendable(GroupBounds(1, 0, 1)), // split everything
		WithExecutors(4),
	)
	p := NewHashPartitioner(8)
	if err := ctx.RegisterNamespace("ns", p, 2); err != nil {
		t.Fatal(err)
	}
	r := ctx.Parallelize("d", makeRecords(100), 2).LocalityPartitionBy(p, "ns").Cache()
	r.MustCount()
	changes, err := ctx.ReportRDD(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("no splits under tiny MaxBytes")
	}
	sizes := r.PartitionSizes()
	if len(sizes) != 8 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestZGridPublic(t *testing.T) {
	g := NewZGrid(8)
	if g.Side() != 8 {
		t.Fatal("side wrong")
	}
	k1 := g.Key(0.1, 0.1)
	k2 := g.Key(0.9, 0.9)
	if len(k1) != 16 || k1 >= k2 {
		t.Fatalf("keys %q %q", k1, k2)
	}
}

func TestRangePartitionersPublic(t *testing.T) {
	static := NewStaticRangePartitioner(UniformKeyBounds(4))
	if static.NumPartitions() != 4 {
		t.Fatal("static partitions wrong")
	}
	fitted := NewRangePartitioner([]string{"a", "b", "c", "d"}, 2)
	if fitted.Equivalent(NewRangePartitioner([]string{"a", "b", "c", "d"}, 2)) {
		t.Fatal("fresh range partitioners must not be equivalent")
	}
	hexed := NewStaticRangePartitioner(HexKeyBounds(4, 16))
	if hexed.NumPartitions() != 4 {
		t.Fatal("hex partitions wrong")
	}
}

func TestUnionPublic(t *testing.T) {
	ctx := NewContext()
	a := ctx.Parallelize("a", makeRecords(30), 2)
	b := ctx.Parallelize("b", makeRecords(20), 3)
	u := a.Union(b)
	if u.NumPartitions() != 5 {
		t.Fatalf("partitions = %d", u.NumPartitions())
	}
	if got := u.MustCount(); got != 50 {
		t.Fatalf("count = %d", got)
	}
	recs, _, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("collect = %d", len(recs))
	}
}

func TestDistinctPublic(t *testing.T) {
	ctx := NewContext()
	recs := []Record{Pair("a", 1), Pair("a", 2), Pair("b", 3), Pair("a", 4)}
	d := ctx.Parallelize("d", recs, 2).Distinct(NewHashPartitioner(2))
	if got := d.MustCount(); got != 2 {
		t.Fatalf("distinct count = %d", got)
	}
}

func TestGroupByKeyPublic(t *testing.T) {
	ctx := NewContext()
	recs := []Record{Pair("a", 1), Pair("b", 2), Pair("a", 3)}
	g := ctx.Parallelize("d", recs, 2).GroupByKey(NewHashPartitioner(2))
	out, _, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, r := range out {
		byKey[r.Key] = len(r.Value.([]any))
	}
	if byKey["a"] != 2 || byKey["b"] != 1 {
		t.Fatalf("groups = %v", byKey)
	}
	// Narrow path: a pre-partitioned parent groups in a single stage —
	// reading the existing partitionBy shuffle, but adding no new one.
	p := NewHashPartitioner(2)
	pre := ctx.Parallelize("d2", recs, 2).PartitionBy(p)
	pre.MustCount()
	g2 := pre.GroupByKey(p)
	_, jm, err := g2.Count()
	if err != nil {
		t.Fatal(err)
	}
	stages := map[int]bool{}
	for _, tm := range jm.Tasks {
		stages[tm.StageID] = true
	}
	if len(stages) != 1 {
		t.Fatalf("narrow groupByKey ran %d stages, want 1", len(stages))
	}
}

func TestSamplePublic(t *testing.T) {
	ctx := NewContext()
	data := ctx.Parallelize("d", makeRecords(2000), 4)
	half := data.Sample(0.5, 1)
	n := half.MustCount()
	if n < 800 || n > 1200 {
		t.Fatalf("sample(0.5) kept %d of 2000", n)
	}
	// Deterministic: same salt, same subset.
	if again := data.Sample(0.5, 1).MustCount(); again != n {
		t.Fatalf("resample differs: %d vs %d", again, n)
	}
	// Different salt, different subset (with high probability).
	other := data.Sample(0.5, 2).MustCount()
	if other == n {
		t.Log("salted sample matched size; acceptable but unusual")
	}
	if data.Sample(0, 1).MustCount() != 0 {
		t.Fatal("sample(0) kept records")
	}
	if data.Sample(1, 1).MustCount() != 2000 {
		t.Fatal("sample(1) dropped records")
	}
}

func TestLineageDOT(t *testing.T) {
	ctx := NewContext()
	p := NewHashPartitioner(2)
	a := ctx.Parallelize("a", makeRecords(10), 1).PartitionBy(p).Cache()
	a.MustCount()
	a.Checkpoint()
	dot := ctx.LineageDOT()
	for _, want := range []string{"digraph lineage", "shuffle 0", "ckpt", "cached"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestIntrospection(t *testing.T) {
	ctx := NewContext(WithExecutors(3), WithSlots(2))
	var events int
	ctx.SetTracer(func(TraceEvent) { events++ })
	r := ctx.Parallelize("d", makeRecords(60), 3).Cache()
	r.MustCount()
	if events == 0 {
		t.Fatal("no trace events")
	}
	stats := ctx.ClusterStats()
	if len(stats) != 3 {
		t.Fatalf("stats = %d", len(stats))
	}
	cached := 0
	for _, s := range stats {
		if s.Slots != 2 || s.Dead {
			t.Fatalf("bad stats %+v", s)
		}
		cached += s.CacheBlocks
	}
	if cached != 3 {
		t.Fatalf("cached blocks = %d, want 3", cached)
	}
	if err := ctx.CheckClusterConsistency(); err != nil {
		t.Fatal(err)
	}
	ctx.KillExecutor(0)
	if err := ctx.CheckClusterConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverActions(t *testing.T) {
	ctx := NewContext()
	recs := []Record{Pair("a", 1), Pair("b", 2), Pair("a", 3), Pair("c", 4)}
	r := ctx.Parallelize("d", recs, 2)
	counts, _, err := r.CountByKey()
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 2 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	take, _, err := r.Take(2)
	if err != nil || len(take) != 2 {
		t.Fatalf("take = %v err = %v", take, err)
	}
	if _, _, err := r.Take(-1); err == nil {
		t.Fatal("negative take accepted")
	}
	first, ok, _, err := r.First()
	if err != nil || !ok || first.Key == "" {
		t.Fatalf("first = %v ok=%v err=%v", first, ok, err)
	}
	keys, _, err := r.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	// First on an empty dataset.
	empty := ctx.Parallelize("e", nil, 1)
	_, ok, _, err = empty.First()
	if err != nil || ok {
		t.Fatalf("empty first ok=%v err=%v", ok, err)
	}
}

func TestStreamStepPartitionerPublic(t *testing.T) {
	ctx := NewContext(WithExecutors(4))
	fresh := 0
	s, err := ctx.NewStream(StreamConfig{
		Name:        "r",
		Partitioner: NewHashPartitioner(4), // ignored when StepPartitioner set
		Window:      2,
		StepPartitioner: func(step int, recs []Record) Partitioner {
			fresh++
			keys := make([]string, 0, len(recs))
			for _, r := range recs {
				keys = append(keys, r.Key)
			}
			return NewRangePartitioner(keys, 4)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		s.Ingest(step, makeRecords(80))
		ctx.Drain()
	}
	if fresh != 2 {
		t.Fatalf("StepPartitioner called %d times", fresh)
	}
	// Steps are NOT co-partitioned: cogrouping them must shuffle.
	w := s.Recent(2)
	cg := ctx.CoGroup(NewHashPartitioner(4), w...)
	_, jm, err := cg.Count()
	if err != nil {
		t.Fatal(err)
	}
	var shuffled int64
	for _, tm := range jm.Tasks {
		shuffled += tm.BytesShuffle
	}
	if shuffled == 0 {
		t.Fatal("Spark-R-style steps cogrouped without shuffle")
	}
	// Namespace + StepPartitioner is rejected.
	if _, err := ctx.NewStream(StreamConfig{
		Name: "bad", Partitioner: NewHashPartitioner(2), Namespace: "x",
		StepPartitioner: func(int, []Record) Partitioner { return NewHashPartitioner(2) },
	}); err == nil {
		t.Fatal("conflicting stream config accepted")
	}
}

func TestPublicStatsAndUnpersist(t *testing.T) {
	ctx := NewContext(WithExecutors(4))
	r := ctx.Parallelize("d", makeRecords(100), 4).Cache()
	r.MustCount()
	r.Filter(func(Record) bool { return true }).MustCount()
	st := ctx.Stats()
	if st.Jobs != 2 || st.CacheHits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	r.Unpersist()
	for _, es := range ctx.ClusterStats() {
		if es.CacheBlocks != 0 {
			t.Fatalf("blocks remain after unpersist: %+v", es)
		}
	}
	if got := r.Filter(func(Record) bool { return true }).MustCount(); got != 100 {
		t.Fatalf("recount = %d", got)
	}
}

func TestSortByKeyPublic(t *testing.T) {
	ctx := NewContext()
	var recs []Record
	for i := 999; i >= 0; i-- {
		recs = append(recs, Pair(fmt.Sprintf("k%03d", i%500), i))
	}
	sample := make([]string, 0, 100)
	for i := 0; i < 500; i += 5 {
		sample = append(sample, fmt.Sprintf("k%03d", i))
	}
	sorted := ctx.Parallelize("d", recs, 4).SortByKey(sample, 4)
	out, _, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			t.Fatalf("not sorted at %d: %q < %q", i, out[i].Key, out[i-1].Key)
		}
	}
}
