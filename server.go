package stark

import (
	"stark/internal/engine"
	"stark/internal/fault"
	"stark/internal/session"
)

// JobServer is the multi-tenant job-submission layer: tenant sessions
// submit actions against shared namespaces through an admission controller
// with bounded queues and a memory budget, a quota-weighted deficit-round-
// robin dispatcher, per-job deadlines with cooperative cancellation, and
// typed overload shedding (ErrOverload). Identical concurrent submissions
// are computed once and shared. Create with Context.NewJobServer.
type JobServer = session.Server

// TenantSession is one tenant's session against a JobServer.
type TenantSession = session.Tenant

// JobServerConfig bounds the server's admission controller and dispatcher.
type JobServerConfig = session.Config

// JobSubmitOptions parameterize one tenant submission: shed priority,
// virtual-time deadline, and the completion callback.
type JobSubmitOptions = session.SubmitOptions

// TenantJob is a tenant's handle on one submission.
type TenantJob = session.Job

// TenantResult is what a tenant submission delivers.
type TenantResult = session.Result

// JobServerStats counts admissions, dispatches, sheds, deadline
// cancellations, dedup subscriptions, and latency/queue-delay samples.
type JobServerStats = session.Stats

// TenantServerStats is one tenant's slice of the same counters.
type TenantServerStats = session.TenantStats

// JobAction selects what a submitted job does with its final RDD.
type JobAction = engine.Action

// Job actions.
const (
	ActionCount       = engine.ActionCount
	ActionCollect     = engine.ActionCollect
	ActionMaterialize = engine.ActionMaterialize
)

// Typed session and engine errors, for errors.Is across wrapping.
var (
	// ErrOverload marks a submission shed fast by admission control.
	ErrOverload = session.ErrOverload
	// ErrDeadlineExceeded marks a job cancelled at deadline expiry.
	ErrDeadlineExceeded = session.ErrDeadlineExceeded
	// ErrServerClosed marks work rejected or abandoned at server shutdown.
	ErrServerClosed = session.ErrServerClosed
	// ErrJobCancelled marks a job withdrawn before completion and unwound
	// cooperatively by the engine.
	ErrJobCancelled = engine.ErrJobCancelled
	// ErrStorage marks persistent-storage failures.
	ErrStorage = engine.ErrStorage
	// ErrFetchFailed marks shuffle-fetch failures (handled internally by
	// stage resubmission; visible only when resubmission bounds exhaust).
	ErrFetchFailed = engine.ErrFetchFailed
)

// TenantStormFault is an open-loop arrival burst against one tenant session
// (fault-injected; requires a JobServer with a storm factory).
type TenantStormFault = fault.TenantStorm

// SlowTenantFault submits one poison job through a tenant session whose
// tasks run Factor times slower than normal.
type SlowTenantFault = fault.SlowTenant

// SubmitTo routes this RDD's action through a tenant session instead of
// running it inline: the submission passes admission control, waits its
// quota-weighted turn, and delivers asynchronously through opts.OnDone.
func (r *RDD) SubmitTo(t *TenantSession, action JobAction, opts JobSubmitOptions) *TenantJob {
	return t.Submit(r.r, action, opts)
}

// SetStormJobs installs the job builder that TenantStormFault events invoke:
// each burst arrival calls f with the target tenant index and a per-server
// storm sequence number and submits the returned action at the storm's
// priority.
func SetStormJobs(s *JobServer, f func(tenant, n int) (*RDD, JobAction)) {
	s.SetStormFactory(func(tenant, n int) (*internalRDD, JobAction) {
		r, a := f(tenant, n)
		return r.r, a
	})
}

// SetPoisonJobs installs the job builder that SlowTenantFault events invoke:
// f receives the target tenant index and the slowdown factor and returns the
// poison job submitted through that tenant's session.
func SetPoisonJobs(s *JobServer, f func(tenant int, factor float64) (*RDD, JobAction)) {
	s.SetPoisonFactory(func(tenant int, factor float64) (*internalRDD, JobAction) {
		r, a := f(tenant, factor)
		return r.r, a
	})
}

// NewJobServer opens a multi-tenant job server over this context's engine.
// When a fault schedule with session-layer events (TenantStormFault,
// SlowTenantFault) is armed, those events are wired to this server.
func (c *Context) NewJobServer(cfg JobServerConfig) *JobServer {
	s := session.Open(c.eng, cfg)
	if in := c.eng.Injector(); in != nil {
		in.ArmSession(c.eng.Loop(), s)
	}
	return s
}
