package stark

import (
	"math/rand"

	"stark/internal/workload"
)

// WikipediaTrace exposes the synthetic Wikipedia request-log generator:
// hourly datasets with a diurnal volume curve and Zipf-popular URLs.
type WikipediaTrace = workload.WikipediaConfig

// DefaultWikipediaTrace returns the calibrated generator.
func DefaultWikipediaTrace() WikipediaTrace { return workload.DefaultWikipedia() }

// TaxiTrace exposes the synthetic NYC-taxi event generator: spatio-temporal
// events over a unit-square grid with time-of-day hotspot drift, keyed by
// Z-order cell.
type TaxiTrace = workload.TaxiConfig

// DefaultTaxiTrace returns the calibrated generator.
func DefaultTaxiTrace() TaxiTrace { return workload.DefaultTaxi() }

// TwitterTrace exposes the synthetic tweet generator.
type TwitterTrace = workload.TwitterConfig

// DefaultTwitterTrace returns the calibrated generator.
func DefaultTwitterTrace() TwitterTrace { return workload.DefaultTwitter() }

// MergedTaxiTweets produces the paper's merged trace for one timestep:
// every taxi event followed by a co-located tweet.
func MergedTaxiTweets(taxi TaxiTrace, tw TwitterTrace, step int) []Record {
	return workload.MergedStep(taxi, tw, step)
}

// RandomRegion returns an inclusive Z-order key range covering one random
// axis-aligned quadtree block of the grid at the given depth — contiguous
// in key space, so a key-range filter selects exactly the region.
func (z ZGrid) RandomRegion(rng *rand.Rand, depth int) (lo, hi string) {
	return workload.RandomRegion(rng, z.g, depth)
}
