package stark

import (
	"time"

	"stark/internal/rdd"
	"stark/internal/stream"
)

// StreamConfig configures a micro-batch stream; see NewStream.
type StreamConfig struct {
	// Name prefixes the per-step RDD names.
	Name string
	// Partitioner partitions every timestep RDD.
	Partitioner Partitioner
	// Namespace enables co-locality across timesteps ("" disables).
	Namespace string
	// InitialGroups sizes the Group Tree in extendable mode (power of two).
	InitialGroups int
	// Window is how many timestep RDDs stay cached.
	Window int
	// SingleNodeIngest emulates Spark Streaming's single-receiver ingest.
	SingleNodeIngest bool
	// ReportSizes feeds each step to the GroupManager for elasticity.
	ReportSizes bool
	// StepPartitioner, when set, supplies a fresh partitioner per step (the
	// Spark-R baseline); mutually exclusive with Namespace.
	StepPartitioner func(step int, recs []Record) Partitioner
}

// Stream is a DStream-like sequence of timestep RDDs.
type Stream struct {
	ctx *Context
	s   *stream.Stream
}

// NewStream creates a micro-batch stream on the context.
func (c *Context) NewStream(cfg StreamConfig) (*Stream, error) {
	icfg := stream.Config{
		Name:             cfg.Name,
		Partitioner:      cfg.Partitioner,
		Namespace:        cfg.Namespace,
		InitialGroups:    cfg.InitialGroups,
		Window:           cfg.Window,
		SingleNodeIngest: cfg.SingleNodeIngest,
		ReportSizes:      cfg.ReportSizes,
	}
	if cfg.StepPartitioner != nil {
		icfg.StepPartitioner = func(step int, recs []Record) Partitioner {
			return cfg.StepPartitioner(step, recs)
		}
	}
	s, err := stream.New(c.eng, icfg)
	if err != nil {
		return nil, err
	}
	return &Stream{ctx: c, s: s}, nil
}

// Ingest creates the timestep's partitioned, cached RDD at the current
// virtual time and submits its materialization.
func (s *Stream) Ingest(step int, recs []Record) *RDD {
	return &RDD{ctx: s.ctx, r: s.s.Ingest(step, recs)}
}

// Step returns the RDD of a timestep, nil if never ingested or evicted.
func (s *Stream) Step(step int) *RDD {
	r := s.s.Step(step)
	if r == nil {
		return nil
	}
	return &RDD{ctx: s.ctx, r: r}
}

// Recent returns up to n most recent live step RDDs, oldest first.
func (s *Stream) Recent(n int) []*RDD { return s.wrapAll(s.s.Recent(n)) }

// Range returns the live step RDDs in [from, to], oldest first.
func (s *Stream) Range(from, to int) []*RDD { return s.wrapAll(s.s.Range(from, to)) }

func (s *Stream) wrapAll(rs []*rdd.RDD) []*RDD {
	out := make([]*RDD, len(rs))
	for i, r := range rs {
		out[i] = &RDD{ctx: s.ctx, r: r}
	}
	return out
}

// QueryResult is one open-loop query outcome.
type QueryResult = stream.QueryResult

// OpenLoop submits n count jobs at the given interarrival spacing (an open
// system: arrivals do not wait for completions) and runs until all finish.
// makeJob is invoked at each arrival time.
func (c *Context) OpenLoop(interarrival time.Duration, n int, makeJob func(i int) *RDD) []QueryResult {
	return stream.OpenLoop(c.eng, interarrival, n, func(i int) *rdd.RDD {
		return makeJob(i).r
	})
}

// MeanDelay averages query delays.
func MeanDelay(rs []QueryResult) time.Duration { return stream.MeanDelay(rs) }

// RunVirtual drives the event loop until the virtual clock reaches t,
// processing ingests and jobs scheduled before then.
func (c *Context) RunVirtual(t time.Duration) { c.eng.Loop().RunUntil(t) }

// Drain runs the event loop until no work remains.
func (c *Context) Drain() { c.eng.Loop().Run() }

// At schedules fn on the virtual timeline (e.g. periodic ingestion).
func (c *Context) At(t time.Duration, fn func()) { c.eng.Loop().At(t, fn) }
