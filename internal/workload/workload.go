// Package workload synthesizes the three traces the paper evaluates with,
// since the originals are not redistributable:
//
//   - Wikipedia request logs (Jan 2008): hourly log datasets with a diurnal
//     volume curve (peak ≈ 2× nadir, per the Proteus analysis the paper
//     cites) and Zipf-distributed URLs.
//   - NYC taxi pick-up/drop-off events (2010–2013): spatio-temporal events
//     over a Manhattan-like unit square whose hotspot mix drifts with the
//     time of day and with holidays, mimicking Fig. 6; coordinates are
//     Z-order encoded into range-partitionable string keys.
//   - Twitter statuses: synthetic texts over a keyword pool, merged onto
//     the taxi trace exactly as the paper does ("appending a tweet after
//     every taxi pick-up/drop-off event log").
//
// All generators are deterministic given their seeds.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"stark/internal/record"
	"stark/internal/zorder"
)

// WikipediaConfig parameterizes the hourly log generator.
type WikipediaConfig struct {
	Seed int64
	// URLs is the distinct URL count.
	URLs int
	// ZipfS > 1 is the Zipf exponent of URL popularity.
	ZipfS float64
	// RequestsPerHour is the average hourly request count; the diurnal
	// curve modulates it.
	RequestsPerHour int
	// PeakToNadir is the ratio between the busiest and quietest hours.
	PeakToNadir float64
}

// DefaultWikipedia returns a modest, fast-to-generate configuration.
func DefaultWikipedia() WikipediaConfig {
	return WikipediaConfig{
		Seed:            7,
		URLs:            5000,
		ZipfS:           1.2,
		RequestsPerHour: 20000,
		PeakToNadir:     2.0,
	}
}

// DiurnalFactor is the relative traffic volume at the given hour-of-day,
// a smooth curve with its peak at 20:00 and nadir near 08:00, normalized so
// the peak/nadir ratio equals PeakToNadir.
func (c WikipediaConfig) DiurnalFactor(hour int) float64 {
	h := float64(hour % 24)
	// Cosine with minimum at 8h, maximum at 20h.
	phase := (h - 20) / 24 * 2 * math.Pi
	x := (math.Cos(phase) + 1) / 2 // 1 at peak hour, 0 at nadir
	r := c.PeakToNadir
	if r < 1 {
		r = 1
	}
	lo := 2 / (r + 1)
	hi := 2 * r / (r + 1)
	return lo + (hi-lo)*x
}

// Hour generates one hourly log dataset: key = requested URL, value = a log
// line. The hour index selects both volume and RNG stream.
func (c WikipediaConfig) Hour(hour int) []record.Record {
	rng := rand.New(rand.NewSource(c.Seed + int64(hour)*1_000_003))
	zipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.URLs-1))
	n := int(float64(c.RequestsPerHour) * c.DiurnalFactor(hour))
	out := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		u := zipf.Uint64()
		url := fmt.Sprintf("/wiki/article-%05d", u)
		line := fmt.Sprintf("2008-01-%02dT%02d:%02d:%02d GET %s 200",
			1+hour/24, hour%24, rng.Intn(60), rng.Intn(60), url)
		out = append(out, record.Pair(url, line))
	}
	return out
}

// Hotspot is one Gaussian bump of event density on the unit square.
type Hotspot struct {
	CX, CY float64 // center
	Sigma  float64 // spread
	Weight float64 // relative share of events
}

// TaxiConfig parameterizes the spatio-temporal event generator.
type TaxiConfig struct {
	Seed int64
	Grid zorder.Grid
	// EventsPerStep is the average event count per timestep.
	EventsPerStep int
	// PeakToNadir scales volume across the day like WikipediaConfig.
	PeakToNadir float64
	// StepsPerHour converts step indices to hours.
	StepsPerHour int
	// Holiday marks the trace as a holiday (Fig. 6c's much larger hotspot
	// area).
	Holiday bool
}

// DefaultTaxi returns the configuration the experiments use: a 64x64 grid
// with 5-minute steps.
func DefaultTaxi() TaxiConfig {
	return TaxiConfig{
		Seed:          11,
		Grid:          zorder.NewGrid(64),
		EventsPerStep: 10000,
		PeakToNadir:   2.5,
		StepsPerHour:  12,
	}
}

// HotspotsAt reproduces Fig. 6's drift: a commercial-district morning mix,
// an entertainment-district evening mix, and a spread-out holiday-evening
// mix with much larger hot areas.
func (c TaxiConfig) HotspotsAt(hour int) []Hotspot {
	h := hour % 24
	base := []Hotspot{{CX: 0.5, CY: 0.5, Sigma: 0.25, Weight: 0.3}} // ambient
	switch {
	case c.Holiday && h >= 17:
		// Holiday evening: many large hotspots (Fig. 6c).
		return append(base,
			Hotspot{CX: 0.3, CY: 0.3, Sigma: 0.12, Weight: 0.2},
			Hotspot{CX: 0.7, CY: 0.4, Sigma: 0.12, Weight: 0.2},
			Hotspot{CX: 0.4, CY: 0.75, Sigma: 0.15, Weight: 0.2},
			Hotspot{CX: 0.8, CY: 0.8, Sigma: 0.1, Weight: 0.1},
		)
	case h >= 6 && h < 12:
		// Weekday morning: downtown commute (Fig. 6a).
		return append(base,
			Hotspot{CX: 0.25, CY: 0.35, Sigma: 0.06, Weight: 0.45},
			Hotspot{CX: 0.35, CY: 0.2, Sigma: 0.05, Weight: 0.25},
		)
	case h >= 17:
		// Weekday evening: midtown theaters (Fig. 6b).
		return append(base,
			Hotspot{CX: 0.55, CY: 0.6, Sigma: 0.07, Weight: 0.45},
			Hotspot{CX: 0.7, CY: 0.55, Sigma: 0.05, Weight: 0.25},
		)
	default:
		return append(base,
			Hotspot{CX: 0.45, CY: 0.45, Sigma: 0.12, Weight: 0.7},
		)
	}
}

// StepVolume is the event count for a step after diurnal modulation.
func (c TaxiConfig) StepVolume(step int) int {
	hour := 0
	if c.StepsPerHour > 0 {
		hour = step / c.StepsPerHour
	}
	w := WikipediaConfig{PeakToNadir: c.PeakToNadir}
	return int(float64(c.EventsPerStep) * w.DiurnalFactor(hour))
}

// Step generates one timestep of taxi events: key = Z-order cell key,
// value = an event description.
func (c TaxiConfig) Step(step int) []record.Record {
	rng := rand.New(rand.NewSource(c.Seed + int64(step)*2_000_033))
	hour := 0
	if c.StepsPerHour > 0 {
		hour = step / c.StepsPerHour
	}
	spots := c.HotspotsAt(hour)
	var totalW float64
	for _, s := range spots {
		totalW += s.Weight
	}
	n := c.StepVolume(step)
	out := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		s := pickHotspot(rng, spots, totalW)
		x := clamp01(rng.NormFloat64()*s.Sigma + s.CX)
		y := clamp01(rng.NormFloat64()*s.Sigma + s.CY)
		z := c.Grid.EncodePoint(x, y)
		kind := "pickup"
		if rng.Intn(2) == 1 {
			kind = "dropoff"
		}
		val := fmt.Sprintf("%s medallion-%04d step-%d", kind, rng.Intn(10000), step)
		out = append(out, record.Pair(zorder.Key(z), val))
	}
	return out
}

func pickHotspot(rng *rand.Rand, spots []Hotspot, totalW float64) Hotspot {
	x := rng.Float64() * totalW
	for _, s := range spots {
		if x < s.Weight {
			return s
		}
		x -= s.Weight
	}
	return spots[len(spots)-1]
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999
	}
	return v
}

// TwitterConfig parameterizes synthetic tweet texts.
type TwitterConfig struct {
	Seed     int64
	Keywords []string
}

// DefaultTwitter uses a small topical keyword pool.
func DefaultTwitter() TwitterConfig {
	return TwitterConfig{
		Seed: 13,
		Keywords: []string{
			"traffic", "broadway", "coffee", "parade", "subway", "pizza",
			"yankees", "rain", "concert", "marathon",
		},
	}
}

// Tweet produces the i-th synthetic tweet text.
func (c TwitterConfig) Tweet(i int) string {
	rng := rand.New(rand.NewSource(c.Seed + int64(i)))
	k1 := c.Keywords[rng.Intn(len(c.Keywords))]
	k2 := c.Keywords[rng.Intn(len(c.Keywords))]
	return fmt.Sprintf("tweet-%06d %s %s #nyc", i, k1, k2)
}

// MergedStep produces the paper's merged trace for one timestep: every taxi
// event is followed by a tweet carrying the event's coordinate key, so each
// tweet has a location and a timestamp (paper Sec. IV-E).
func MergedStep(taxi TaxiConfig, tw TwitterConfig, step int) []record.Record {
	events := taxi.Step(step)
	out := make([]record.Record, 0, 2*len(events))
	base := step * 1_000_000
	for i, ev := range events {
		out = append(out, ev)
		out = append(out, record.Pair(ev.Key, tw.Tweet(base+i)))
	}
	return out
}

// RandomRegion picks a random axis-aligned quadtree cell of the grid at the
// given depth and returns the inclusive Z-order key range covering it —
// contiguous by construction, so a key-range filter selects exactly the
// region (the paper's "random geographic region" queries).
func RandomRegion(rng *rand.Rand, g zorder.Grid, depth int) (lo, hi string) {
	side := g.Side()
	cells := uint64(side) * uint64(side)
	if depth < 0 {
		depth = 0
	}
	blocks := uint64(1) << (2 * uint(depth)) // quadtree cells at this depth
	if blocks > cells {
		blocks = cells
	}
	span := cells / blocks
	b := uint64(rng.Int63n(int64(blocks)))
	return zorder.Key(b * span), zorder.Key((b+1)*span - 1)
}

// Partition splits records into parts slices by a partition function,
// a convenience for building pre-partitioned sources.
func Partition(recs []record.Record, parts int, partFor func(string) int) [][]record.Record {
	out := make([][]record.Record, parts)
	for _, r := range recs {
		p := partFor(r.Key)
		if p < 0 || p >= parts {
			p = 0
		}
		out[p] = append(out[p], r)
	}
	return out
}

// Chunk splits records into parts roughly equal contiguous slices,
// modeling unpartitioned file blocks.
func Chunk(recs []record.Record, parts int) [][]record.Record {
	if parts < 1 {
		parts = 1
	}
	out := make([][]record.Record, parts)
	for i, r := range recs {
		p := i * parts / len(recs)
		if p >= parts {
			p = parts - 1
		}
		out[p] = append(out[p], r)
	}
	if len(recs) == 0 {
		return out
	}
	return out
}
