package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stark/internal/record"
)

// TSV serialization for traces: one record per line,
// `tag \t index \t key \t value`. Values round-trip as strings (the trace
// generators only emit string values); tags and indices let one file carry
// multiple datasets.

// WriteTSV emits records under the given tag and dataset index.
func WriteTSV(w io.Writer, tag string, index int, recs []record.Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		v := fmt.Sprintf("%v", r.Value)
		if strings.ContainsAny(r.Key, "\t\n") || strings.ContainsAny(v, "\t\n") {
			return fmt.Errorf("workload: record %q contains tab/newline; not TSV-safe", r.Key)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%s\n", tag, index, r.Key, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TSVDataset is one (tag, index) group read back from a TSV stream.
type TSVDataset struct {
	Tag     string
	Index   int
	Records []record.Record
}

// ReadTSV parses a TSV trace stream into datasets, preserving first-seen
// (tag, index) order. Malformed lines are rejected with their line number.
func ReadTSV(r io.Reader) ([]TSVDataset, error) {
	type key struct {
		tag   string
		index int
	}
	var order []key
	data := make(map[key][]record.Record)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: line %d: want 4 tab-separated fields, got %d", lineNo, len(parts))
		}
		idx, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad index %q: %w", lineNo, parts[1], err)
		}
		k := key{tag: parts[0], index: idx}
		if _, seen := data[k]; !seen {
			order = append(order, k)
		}
		data[k] = append(data[k], record.Pair(parts[2], parts[3]))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading TSV: %w", err)
	}
	out := make([]TSVDataset, 0, len(order))
	for _, k := range order {
		out = append(out, TSVDataset{Tag: k.tag, Index: k.index, Records: data[k]})
	}
	return out, nil
}
