package workload

import (
	"fmt"
	"math/rand"

	"stark/internal/record"
)

// SyslogConfig synthesizes per-service system-log datasets for the paper's
// IT-forensics scenario (Sec. I: "An IT administrator may dynamically load
// and evict various system log datasets for diagnosis, and run interactive
// queries on subsets of those datasets"). Each dataset is one service's
// logs for one time window; an optional incident injects a correlated error
// burst across services, giving the forensics queries something to find.
type SyslogConfig struct {
	Seed     int64
	Services []string
	// LinesPerDataset is the average log volume per (service, window).
	LinesPerDataset int
	// ErrorRate is the background error fraction.
	ErrorRate float64
	// Incident, when non-nil, boosts error rates in the configured window.
	Incident *Incident
}

// Incident is a correlated failure: services in Blast emit errors at
// BurstRate during window [FromWindow, ToWindow].
type Incident struct {
	FromWindow, ToWindow int
	Blast                []string
	BurstRate            float64
}

// DefaultSyslog returns a five-service fleet with a mid-run incident that
// blasts the api and db tiers.
func DefaultSyslog() SyslogConfig {
	return SyslogConfig{
		Seed:            17,
		Services:        []string{"api", "db", "cache", "auth", "worker"},
		LinesPerDataset: 8000,
		ErrorRate:       0.01,
		Incident: &Incident{
			FromWindow: 2, ToWindow: 3,
			Blast:     []string{"api", "db"},
			BurstRate: 0.25,
		},
	}
}

func (c SyslogConfig) errorRate(service string, window int) float64 {
	inc := c.Incident
	if inc == nil || window < inc.FromWindow || window > inc.ToWindow {
		return c.ErrorRate
	}
	for _, s := range inc.Blast {
		if s == service {
			return inc.BurstRate
		}
	}
	return c.ErrorRate
}

// Dataset generates the log dataset of one service for one time window:
// key = host, value = a log line whose severity reflects the incident
// schedule.
func (c SyslogConfig) Dataset(service string, window int) []record.Record {
	rng := rand.New(rand.NewSource(c.Seed + int64(window)*1_000_003 + hashString(service)))
	rate := c.errorRate(service, window)
	out := make([]record.Record, 0, c.LinesPerDataset)
	for i := 0; i < c.LinesPerDataset; i++ {
		host := fmt.Sprintf("%s-%02d", service, rng.Intn(16))
		sev := "INFO"
		detail := fmt.Sprintf("req=%06d latency=%dms", rng.Intn(1_000_000), rng.Intn(200))
		if rng.Float64() < rate {
			sev = "ERROR"
			detail = fmt.Sprintf("req=%06d err=%s", rng.Intn(1_000_000), errKinds[rng.Intn(len(errKinds))])
		}
		line := fmt.Sprintf("%s w%02d %s %s %s", sev, window, service, host, detail)
		out = append(out, record.Pair(host, line))
	}
	return out
}

var errKinds = []string{"timeout", "conn-refused", "oom", "disk-full", "checksum"}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
