package workload

import (
	"strings"
	"testing"

	"stark/internal/record"
)

func TestTSVRoundTrip(t *testing.T) {
	taxi := DefaultTaxi()
	taxi.EventsPerStep = 50
	var sb strings.Builder
	for step := 0; step < 3; step++ {
		if err := WriteTSV(&sb, "taxi", step, taxi.Step(step)); err != nil {
			t.Fatal(err)
		}
	}
	sets, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("datasets = %d", len(sets))
	}
	for step, ds := range sets {
		if ds.Tag != "taxi" || ds.Index != step {
			t.Fatalf("dataset %d = %s/%d", step, ds.Tag, ds.Index)
		}
		want := taxi.Step(step)
		if len(ds.Records) != len(want) {
			t.Fatalf("step %d: %d records, want %d", step, len(ds.Records), len(want))
		}
		for i := range want {
			if ds.Records[i].Key != want[i].Key {
				t.Fatalf("step %d record %d key %q != %q", step, i, ds.Records[i].Key, want[i].Key)
			}
			if ds.Records[i].Value.(string) != want[i].Value.(string) {
				t.Fatalf("step %d record %d value mismatch", step, i)
			}
		}
	}
}

func TestTSVRejectsUnsafe(t *testing.T) {
	err := WriteTSV(&strings.Builder{}, "t", 0, []record.Record{record.Pair("a\tb", "v")})
	if err == nil {
		t.Fatal("tab in key accepted")
	}
	err = WriteTSV(&strings.Builder{}, "t", 0, []record.Record{record.Pair("k", "line\nbreak")})
	if err == nil {
		t.Fatal("newline in value accepted")
	}
}

func TestTSVParseErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("only\tthree\tfields\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadTSV(strings.NewReader("t\tnotanumber\tk\tv\n")); err == nil {
		t.Fatal("bad index accepted")
	}
	// Blank lines are skipped.
	sets, err := ReadTSV(strings.NewReader("\nt\t0\tk\tv\n\n"))
	if err != nil || len(sets) != 1 || len(sets[0].Records) != 1 {
		t.Fatalf("sets=%v err=%v", sets, err)
	}
}

func TestTSVMultipleTags(t *testing.T) {
	in := "a\t0\tk1\tv1\nb\t0\tk2\tv2\na\t1\tk3\tv3\n"
	sets, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("sets = %d", len(sets))
	}
	if sets[0].Tag != "a" || sets[1].Tag != "b" || sets[2].Index != 1 {
		t.Fatalf("order wrong: %+v", sets)
	}
}
