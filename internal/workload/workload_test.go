package workload

import (
	"math/rand"
	"strings"
	"testing"

	"stark/internal/zorder"
)

func TestWikipediaDeterministic(t *testing.T) {
	cfg := DefaultWikipedia()
	a := cfg.Hour(3)
	b := cfg.Hour(3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWikipediaDiurnalVolume(t *testing.T) {
	cfg := DefaultWikipedia()
	peak := len(cfg.Hour(20))
	nadir := len(cfg.Hour(8))
	ratio := float64(peak) / float64(nadir)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("peak/nadir = %v, want ~2 (peak=%d nadir=%d)", ratio, peak, nadir)
	}
}

func TestWikipediaZipfSkew(t *testing.T) {
	cfg := DefaultWikipedia()
	recs := cfg.Hour(0)
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The hottest URL must be far above uniform share.
	uniform := len(recs) / len(counts)
	if max < 5*uniform {
		t.Fatalf("max key count %d not skewed vs uniform %d", max, uniform)
	}
	for _, r := range recs {
		if !strings.HasPrefix(r.Key, "/wiki/article-") {
			t.Fatalf("bad key %q", r.Key)
		}
	}
}

func TestDiurnalFactorBounds(t *testing.T) {
	cfg := DefaultWikipedia()
	for h := 0; h < 48; h++ {
		f := cfg.DiurnalFactor(h)
		if f <= 0 || f > 1.5 {
			t.Fatalf("factor(%d) = %v", h, f)
		}
	}
	if cfg.DiurnalFactor(20) <= cfg.DiurnalFactor(8) {
		t.Fatal("peak not above nadir")
	}
}

func TestTaxiStepKeysValid(t *testing.T) {
	cfg := DefaultTaxi()
	recs := cfg.Step(0)
	if len(recs) == 0 {
		t.Fatal("no events")
	}
	for _, r := range recs {
		if len(r.Key) != 16 {
			t.Fatalf("bad key %q", r.Key)
		}
	}
}

func TestTaxiHotspotDrift(t *testing.T) {
	cfg := DefaultTaxi()
	// Cell-occupancy centroids must move between morning and evening.
	centroid := func(step int) (float64, float64) {
		var sx, sy float64
		recs := cfg.Step(step)
		for _, r := range recs {
			var z uint64
			if _, err := parseHex(r.Key, &z); err != nil {
				t.Fatal(err)
			}
			x, y := zorder.Decode(z)
			sx += float64(x)
			sy += float64(y)
		}
		return sx / float64(len(recs)), sy / float64(len(recs))
	}
	mx, my := centroid(8 * cfg.StepsPerHour)  // morning
	ex, ey := centroid(19 * cfg.StepsPerHour) // evening
	dist := (mx-ex)*(mx-ex) + (my-ey)*(my-ey)
	if dist < 4 { // at least a couple of cells apart on a 64-grid
		t.Fatalf("centroids did not move: morning (%v,%v) evening (%v,%v)", mx, my, ex, ey)
	}
}

func parseHex(s string, out *uint64) (int, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v |= uint64(c-'a') + 10
		}
	}
	*out = v
	return len(s), nil
}

func TestTaxiHolidaySpreads(t *testing.T) {
	wd := DefaultTaxi()
	hol := DefaultTaxi()
	hol.Holiday = true
	// Evening hotspot cell diversity must be larger on the holiday (Fig. 6c).
	diversity := func(cfg TaxiConfig) int {
		seen := map[string]bool{}
		for _, r := range cfg.Step(19 * cfg.StepsPerHour) {
			seen[r.Key] = true
		}
		return len(seen)
	}
	if diversity(hol) <= diversity(wd) {
		t.Fatalf("holiday diversity %d <= weekday %d", diversity(hol), diversity(wd))
	}
}

func TestMergedStepInterleaves(t *testing.T) {
	taxi := DefaultTaxi()
	taxi.EventsPerStep = 100
	recs := MergedStep(taxi, DefaultTwitter(), 0)
	events := taxi.Step(0)
	if len(recs) != 2*len(events) {
		t.Fatalf("merged = %d, want %d", len(recs), 2*len(events))
	}
	for i := 0; i < len(recs); i += 2 {
		if recs[i].Key != recs[i+1].Key {
			t.Fatalf("tweet at %d not co-located with its event", i)
		}
		if !strings.HasPrefix(recs[i+1].Value.(string), "tweet-") {
			t.Fatalf("record %d is not a tweet: %v", i+1, recs[i+1].Value)
		}
	}
}

func TestRandomRegionContiguous(t *testing.T) {
	g := zorder.NewGrid(64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		lo, hi := RandomRegion(rng, g, 2)
		if lo > hi {
			t.Fatalf("lo %q > hi %q", lo, hi)
		}
		// Depth 2 on a 64x64 grid: 16 blocks of 256 cells each.
		var zl, zh uint64
		if _, err := parseHex(lo, &zl); err != nil {
			t.Fatal(err)
		}
		if _, err := parseHex(hi, &zh); err != nil {
			t.Fatal(err)
		}
		if zh-zl != 255 {
			t.Fatalf("region size %d, want 256 cells", zh-zl+1)
		}
		if zl%256 != 0 {
			t.Fatalf("region not aligned: %d", zl)
		}
	}
}

func TestPartitionAndChunk(t *testing.T) {
	recs := DefaultWikipedia().Hour(0)[:100]
	parts := Partition(recs, 4, func(k string) int { return len(k) % 4 })
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 100 {
		t.Fatalf("partition lost records: %d", total)
	}
	chunks := Chunk(recs, 3)
	total = 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 100 {
		t.Fatalf("chunk lost records: %d", total)
	}
	if len(chunks[0]) < 30 || len(chunks[0]) > 36 {
		t.Fatalf("chunk imbalance: %d", len(chunks[0]))
	}
	// Degenerate inputs.
	if got := Chunk(nil, 3); len(got) != 3 {
		t.Fatalf("Chunk(nil) = %v", got)
	}
	if got := Chunk(recs, 0); len(got) != 1 {
		t.Fatalf("Chunk(.,0) = %d parts", len(got))
	}
}

func TestTweetDeterministic(t *testing.T) {
	tw := DefaultTwitter()
	if tw.Tweet(42) != tw.Tweet(42) {
		t.Fatal("tweets not deterministic")
	}
	if tw.Tweet(1) == tw.Tweet(2) {
		t.Fatal("distinct tweets identical")
	}
}

func TestSyslogIncidentRaisesErrors(t *testing.T) {
	cfg := DefaultSyslog()
	countErrors := func(service string, window int) int {
		n := 0
		for _, r := range cfg.Dataset(service, window) {
			if strings.HasPrefix(r.Value.(string), "ERROR") {
				n++
			}
		}
		return n
	}
	calm := countErrors("api", 0)
	burst := countErrors("api", 2)
	if burst < 5*calm {
		t.Fatalf("incident errors %d not >> background %d", burst, calm)
	}
	// Services outside the blast stay calm during the incident.
	if side := countErrors("cache", 2); side > 3*calm+10 {
		t.Fatalf("blast leaked to cache tier: %d vs %d", side, calm)
	}
	// Deterministic.
	a := cfg.Dataset("db", 1)
	b := cfg.Dataset("db", 1)
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatal("syslog not deterministic")
	}
	// Keys are hosts of the service.
	for _, r := range a[:10] {
		if !strings.HasPrefix(r.Key, "db-") {
			t.Fatalf("bad host key %q", r.Key)
		}
	}
}
