// Package trending implements the paper's failure-recovery evaluation
// application (Fig. 16): a Twitter-trends-style job that tracks popular
// keys and their contents across timesteps, chaining every step's RDDs into
// an ever-growing lineage — the workload the CheckpointOptimizer exists
// for.
//
// Per step (names follow Fig. 16):
//
//	raw  --pttBy-->  kv
//	kv   --rbk--->   cnt (count per key)      kv --rbk--> ctt (contents per key)
//	cogrp(cnt, dec_prev) --sum--> ccnt
//	ccnt --filter popular--> acnt             ccnt --decay--> dec_next
//	cogrp(ctt, res_prev) --> cctt
//	join(cctt, acnt) --> jall --clean--> res_next
package trending

import (
	"fmt"

	"stark"
)

// Config parameterizes the application.
type Config struct {
	// Partitioner shared by every RDD of the app.
	Partitioner stark.Partitioner
	// Namespace for co-locality ("" disables).
	Namespace string
	// PopularThreshold keeps keys whose running count reaches it (acnt).
	PopularThreshold int64
	// DecayFactor multiplies counts passed to the next step (runningReduce).
	DecayFactor float64
	// KeepContents caps contents kept per key per step.
	KeepContents int
}

// DefaultConfig mirrors the evaluation: prefix keys, decay 0.5.
func DefaultConfig(p stark.Partitioner) Config {
	return Config{
		Partitioner:      p,
		PopularThreshold: 8,
		DecayFactor:      0.5,
		KeepContents:     3,
	}
}

// StepRDDs exposes every named RDD a step produces (Fig. 16's nodes), so
// the checkpoint experiments can measure them individually.
type StepRDDs struct {
	KV   *stark.RDD
	Cnt  *stark.RDD
	Ctt  *stark.RDD
	CCnt *stark.RDD
	ACnt *stark.RDD
	CCtt *stark.RDD
	JAll *stark.RDD
	Dec  *stark.RDD
	Res  *stark.RDD
}

// Named returns the step's RDDs keyed by their Fig. 16 names.
func (s StepRDDs) Named() map[string]*stark.RDD {
	return map[string]*stark.RDD{
		"kv": s.KV, "cnt": s.Cnt, "ctt": s.Ctt, "ccnt": s.CCnt,
		"acnt": s.ACnt, "cctt": s.CCtt, "jall": s.JAll, "dec": s.Dec, "res": s.Res,
	}
}

// App is the running application.
type App struct {
	ctx  *stark.Context
	cfg  Config
	dec  *stark.RDD // decayed counts from the previous step
	res  *stark.RDD // results from the previous step
	step int
}

// New creates the app and its empty step-zero state.
func New(ctx *stark.Context, cfg Config) *App {
	a := &App{ctx: ctx, cfg: cfg}
	a.dec = ctx.EmptyPartitioned("dec0", cfg.Partitioner, cfg.Namespace)
	a.res = ctx.EmptyPartitioned("res0", cfg.Partitioner, cfg.Namespace)
	return a
}

// Step consumes one timestep of raw key-value data, materializes the step's
// result, and rolls dec/res forward. All intermediate RDDs are cached, as
// the paper's application does.
func (a *App) Step(raw []stark.Record) (StepRDDs, error) {
	p := a.cfg.Partitioner
	a.step++
	src := a.ctx.Parallelize(fmt.Sprintf("raw%d", a.step), raw, a.ctx.NumExecutors())

	var kv *stark.RDD
	if a.cfg.Namespace != "" {
		kv = src.LocalityPartitionBy(p, a.cfg.Namespace)
	} else {
		kv = src.PartitionBy(p)
	}
	kv.Cache()

	cnt := kv.MapValues(func(r stark.Record) stark.Record {
		return stark.Pair(r.Key, int64(1))
	}).ReduceByKey(p, func(x, y any) any {
		return x.(int64) + y.(int64)
	}).Cache()

	keep := a.cfg.KeepContents
	ctt := kv.ReduceByKey(p, func(x, y any) any {
		xs, ok := x.([]any)
		if !ok {
			xs = []any{x}
		}
		if len(xs) >= keep {
			return xs
		}
		return append(xs, y)
	}).Cache()

	ccnt := a.ctx.CoGroup(p, cnt, a.dec).MapValues(func(r stark.Record) stark.Record {
		cg := r.Value.(stark.CoGrouped)
		var sum int64
		for _, g := range cg.Groups {
			for _, v := range g {
				if n, ok := v.(int64); ok {
					sum += n
				}
			}
		}
		return stark.Pair(r.Key, sum)
	}).Cache()

	threshold := a.cfg.PopularThreshold
	acnt := ccnt.Filter(func(r stark.Record) bool {
		n, ok := r.Value.(int64)
		return ok && n >= threshold
	}).Cache()

	decay := a.cfg.DecayFactor
	dec := ccnt.MapValues(func(r stark.Record) stark.Record {
		n, _ := r.Value.(int64)
		return stark.Pair(r.Key, int64(float64(n)*decay))
	}).Cache()

	cctt := a.ctx.CoGroup(p, ctt, a.res).Cache()

	jall := a.ctx.Join(p, cctt, acnt).Cache()

	res := jall.MapValues(func(r stark.Record) stark.Record {
		j := r.Value.(stark.Joined)
		return stark.Pair(r.Key, j.Left)
	}).Cache()

	out := StepRDDs{
		KV: kv, Cnt: cnt, Ctt: ctt, CCnt: ccnt,
		ACnt: acnt, CCtt: cctt, JAll: jall, Dec: dec, Res: res,
	}
	// Materialize the step's outputs (res via count — the step's action —
	// then dec, which the next step consumes).
	if _, _, err := res.Count(); err != nil {
		return out, err
	}
	if _, err := dec.Materialize(); err != nil {
		return out, err
	}
	a.dec, a.res = dec, res
	return out, nil
}

// StepCount reports how many steps have run.
func (a *App) StepCount() int { return a.step }
