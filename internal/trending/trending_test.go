package trending

import (
	"fmt"
	"testing"

	"stark"
)

func testCtx() *stark.Context {
	return stark.NewContext(
		stark.WithCoLocality(),
		stark.WithExecutors(4),
		stark.WithSlots(2),
	)
}

func stepData(step, n int) []stark.Record {
	out := make([]stark.Record, n)
	for i := range out {
		out[i] = stark.Pair(fmt.Sprintf("key-%02d", i%20), fmt.Sprintf("content-%d-%d", step, i))
	}
	return out
}

func newApp(t *testing.T, ctx *stark.Context) *App {
	t.Helper()
	p := stark.NewHashPartitioner(4)
	if err := ctx.RegisterNamespace("trend", p, 1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(p)
	cfg.Namespace = "trend"
	cfg.PopularThreshold = 3
	return New(ctx, cfg)
}

func TestStepProducesAllRDDs(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	out, err := app.Step(stepData(0, 200))
	if err != nil {
		t.Fatal(err)
	}
	named := out.Named()
	if len(named) != 9 {
		t.Fatalf("named = %d", len(named))
	}
	for name, r := range named {
		if r == nil {
			t.Fatalf("rdd %q missing", name)
		}
	}
	if app.StepCount() != 1 {
		t.Fatalf("steps = %d", app.StepCount())
	}
}

func TestCountsAggregate(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	out, err := app.Step(stepData(0, 200))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := out.Cnt.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// 200 records over 20 keys: every key counts 10.
	if len(recs) != 20 {
		t.Fatalf("keys = %d", len(recs))
	}
	for _, r := range recs {
		if r.Value != int64(10) {
			t.Fatalf("count for %q = %v", r.Key, r.Value)
		}
	}
}

func TestRunningReduceDecays(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	if _, err := app.Step(stepData(0, 200)); err != nil {
		t.Fatal(err)
	}
	out, err := app.Step(stepData(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := out.CCnt.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Step 2 running count = 10 + decay(10) = 15 per key.
	for _, r := range recs {
		if r.Value != int64(15) {
			t.Fatalf("running count for %q = %v, want 15", r.Key, r.Value)
		}
	}
}

func TestPopularFilterAndResult(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	out, err := app.Step(stepData(0, 200))
	if err != nil {
		t.Fatal(err)
	}
	nA, _, err := out.ACnt.Count()
	if err != nil {
		t.Fatal(err)
	}
	if nA != 20 { // every key has count 10 >= 3
		t.Fatalf("popular keys = %d", nA)
	}
	nRes, _, err := out.Res.Count()
	if err != nil {
		t.Fatal(err)
	}
	if nRes != 20 {
		t.Fatalf("result keys = %d", nRes)
	}
}

func TestLineageGrowsAcrossSteps(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	var prev *stark.RDD
	for s := 0; s < 3; s++ {
		out, err := app.Step(stepData(s, 100))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && out.Res.Internal().ID <= prev.Internal().ID {
			t.Fatal("lineage ids not growing")
		}
		prev = out.Res
	}
	// The third step's result must transitively depend on step-one RDDs.
	if got := len(ctx.Engine().Graph().RDDs()); got < 30 {
		t.Fatalf("lineage nodes = %d, expected an ever-growing graph", got)
	}
}

func TestAppSurvivesExecutorFailure(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	if _, err := app.Step(stepData(0, 200)); err != nil {
		t.Fatal(err)
	}
	ctx.KillExecutor(0)
	out, err := app.Step(stepData(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := out.CCnt.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Value != int64(15) {
			t.Fatalf("post-failure running count for %q = %v, want 15", r.Key, r.Value)
		}
	}
}

func TestNamespacePropagationThroughApp(t *testing.T) {
	ctx := testCtx()
	app := newApp(t, ctx)
	out, err := app.Step(stepData(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Co-locality held: everything narrow off kv shares the namespace, so
	// the cogroups and join run fully local.
	_, jm, err := out.Res.Count()
	if err != nil {
		t.Fatal(err)
	}
	if jm.LocalityFraction() != 1.0 {
		t.Fatalf("locality = %v", jm.LocalityFraction())
	}
}
