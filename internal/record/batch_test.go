package record_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"stark/internal/record"
)

// corpora the round-trip properties run over: typed columns, the any spill
// column, empty and single-key partitions.
func batchCorpora() map[string][]record.Record {
	mixed := []record.Record{
		{Key: "a", Value: int64(1)},
		{Key: "b", Value: "text"},
		{Key: "a", Value: 3.5},
		{Key: "", Value: record.Joined{Left: int64(1), Right: "r"}},
		{Key: "z\xff\x00z", Value: nil},
	}
	ints := []record.Record{
		{Key: "k1", Value: int64(10)},
		{Key: "k2", Value: int64(-3)},
		{Key: "k1", Value: int64(0)},
	}
	floats := []record.Record{
		{Key: "f", Value: 1.25},
		{Key: "g", Value: -0.5},
	}
	strs := []record.Record{
		{Key: "s", Value: "alpha"},
		{Key: "t", Value: ""},
	}
	singleKey := []record.Record{
		{Key: "only", Value: int64(1)},
		{Key: "only", Value: int64(2)},
		{Key: "only", Value: int64(3)},
	}
	rng := rand.New(rand.NewSource(7))
	big := make([]record.Record, 500)
	for i := range big {
		big[i] = record.Record{Key: fmt.Sprintf("key-%03d", rng.Intn(40)), Value: int64(i)}
	}
	return map[string][]record.Record{
		"mixed-spill": mixed,
		"int64":       ints,
		"float64":     floats,
		"string":      strs,
		"empty":       nil,
		"single-key":  singleKey,
		"big":         big,
	}
}

func TestBatchRoundTripIdentity(t *testing.T) {
	for name, rs := range batchCorpora() {
		t.Run(name, func(t *testing.T) {
			b := record.FromRecords(rs)
			if b.Len() != len(rs) {
				t.Fatalf("Len = %d, want %d", b.Len(), len(rs))
			}
			back := b.ToRecords()
			if !reflect.DeepEqual(back, rs) {
				t.Fatalf("ToRecords mismatch:\n got %v\nwant %v", back, rs)
			}
			b2 := record.FromRecords(b.ToRecords())
			if !reflect.DeepEqual(b2.ToRecords(), rs) {
				t.Fatalf("FromRecords(ToRecords(b)) not identity")
			}
			if got, want := b2.Fingerprint(), record.Fingerprint(rs); got != want {
				t.Fatalf("round-trip fingerprint changed: %#x != %#x", got, want)
			}
			if b2.Bytes() != b.Bytes() || b2.Bytes() != record.SizeOfSlice(rs) {
				t.Fatalf("round-trip bytes changed: %d / %d / %d",
					b2.Bytes(), b.Bytes(), record.SizeOfSlice(rs))
			}
		})
	}
}

func TestBatchMatchesRowPaths(t *testing.T) {
	for name, rs := range batchCorpora() {
		t.Run(name, func(t *testing.T) {
			b := record.FromRecords(rs)
			if got, want := b.Fingerprint(), record.Fingerprint(rs); got != want {
				t.Fatalf("batch fingerprint %#x != row fingerprint %#x", got, want)
			}
			if got, want := b.Bytes(), record.SizeOfSlice(rs); got != want {
				t.Fatalf("batch bytes %d != SizeOfSlice %d", got, want)
			}
			for i, r := range rs {
				if b.Key(i) != r.Key {
					t.Fatalf("Key(%d) = %q, want %q", i, b.Key(i), r.Key)
				}
				f := fnv.New32a()
				f.Write([]byte(r.Key))
				if b.Hash32(i) != f.Sum32() {
					t.Fatalf("Hash32(%d) diverges from hash/fnv", i)
				}
				if b.Sizes()[i] != record.SizeOfRecord(r) {
					t.Fatalf("Sizes()[%d] = %d, want %d", i, b.Sizes()[i], record.SizeOfRecord(r))
				}
			}
			// KeySumRange over every sub-range matches the per-record checksum.
			for lo := 0; lo <= len(rs); lo++ {
				for hi := lo; hi <= len(rs); hi++ {
					if got, want := b.KeySumRange(lo, hi), record.KeySum64(rs[lo:hi]); got != want {
						t.Fatalf("KeySumRange(%d,%d) = %#x, want %#x", lo, hi, got, want)
					}
				}
			}
		})
	}
}

func TestBatchColumnKinds(t *testing.T) {
	c := batchCorpora()
	want := map[string]record.ColKind{
		"mixed-spill": record.ColSpill,
		"int64":       record.ColInt64,
		"float64":     record.ColFloat64,
		"string":      record.ColString,
		"empty":       record.ColSpill,
		"single-key":  record.ColInt64,
		"big":         record.ColInt64,
	}
	for name, rs := range c {
		b := record.FromRecords(rs)
		if got := b.Columnize(); got != want[name] {
			t.Fatalf("%s: Columnize = %d, want %d", name, got, want[name])
		}
		// Rebuilding rows from columns (the spill/re-box path) must still
		// round-trip and keep the fingerprint.
		nb := b.WithoutRows()
		if !reflect.DeepEqual(nb.Records(), rs) {
			t.Fatalf("%s: column-materialized rows differ", name)
		}
		b3 := record.FromRecords(nb.ToRecords())
		if got, wantFP := b3.Fingerprint(), record.Fingerprint(rs); got != wantFP {
			t.Fatalf("%s: fingerprint changed through column round-trip", name)
		}
	}
}

func TestPartitionStableMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scr record.Scratch
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {64, 8}, {500, 3}, {40, 10000} /* sparse path */, {3, 5000},
	} {
		rs := make([]record.Record, tc.n)
		for i := range rs {
			rs[i] = record.Record{Key: fmt.Sprintf("k%04d", rng.Intn(200)), Value: int64(i)}
		}
		b := record.FromRecords(rs)
		idx := make([]int32, tc.n)
		for i := range idx {
			idx[i] = int32(int(b.Hash32(i)) % tc.parts)
		}
		pb := b.PartitionStable(idx, tc.parts, &scr)
		scr.Reset()

		// Naive reference: stable bucketing by append.
		naive := make(map[int][]record.Record)
		for i, r := range rs {
			naive[int(idx[i])] = append(naive[int(idx[i])], r)
		}
		var parts []int
		for p := range naive {
			parts = append(parts, p)
		}
		sort.Ints(parts)
		if len(pb.Spans) != len(parts) {
			t.Fatalf("n=%d parts=%d: %d spans, want %d", tc.n, tc.parts, len(pb.Spans), len(parts))
		}
		rows := pb.Batch.Records()
		for si, p := range parts {
			sp := pb.Spans[si]
			if sp.Part != p {
				t.Fatalf("span %d part = %d, want %d", si, sp.Part, p)
			}
			got := rows[sp.Lo:sp.Hi]
			if !reflect.DeepEqual(got, naive[p]) {
				t.Fatalf("bucket %d rows differ", p)
			}
			var raw int64
			for _, r := range naive[p] {
				raw += record.SizeOfRecord(r)
			}
			if sp.RawBytes != raw {
				t.Fatalf("bucket %d RawBytes = %d, want %d", p, sp.RawBytes, raw)
			}
			if got2, want := pb.Batch.KeySumRange(int(sp.Lo), int(sp.Hi)), record.KeySum64(naive[p]); got2 != want {
				t.Fatalf("bucket %d checksum diverges", p)
			}
		}
	}
}

func TestGroupByKeySortedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		rs := make([]record.Record, n)
		for i := range rs {
			rs[i] = record.Record{Key: fmt.Sprintf("g%02d", rng.Intn(25)), Value: i}
		}
		groups := record.GroupByKeySorted(rs)
		m, keys := record.GroupByKey(rs)
		if len(groups) != len(keys) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(groups), len(keys))
		}
		for i, k := range keys {
			if groups[i].Key != k {
				t.Fatalf("trial %d: group %d key %q, want %q", trial, i, groups[i].Key, k)
			}
			if !reflect.DeepEqual(groups[i].Values, m[k]) {
				t.Fatalf("trial %d: group %q values differ", trial, k)
			}
		}
	}
}

func TestJoinRecordsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		mk := func(n, keys int, tag string) []record.Record {
			rs := make([]record.Record, n)
			for i := range rs {
				rs[i] = record.Record{Key: fmt.Sprintf("j%02d", rng.Intn(keys)), Value: fmt.Sprintf("%s%d", tag, i)}
			}
			return rs
		}
		left := mk(rng.Intn(120), 18, "L")
		right := mk(rng.Intn(120), 18, "R")
		got := record.JoinRecords(left, right)

		// Reference: the pre-batch map implementation's exact output order.
		lm, lkeys := record.GroupByKey(left)
		rm, _ := record.GroupByKey(right)
		var want []record.Record
		for _, k := range lkeys {
			rv, ok := rm[k]
			if !ok {
				continue
			}
			for _, lv := range lm[k] {
				for _, r := range rv {
					want = append(want, record.Record{Key: k, Value: record.Joined{Left: lv, Right: r}})
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: join output differs (%d vs %d records)", trial, len(got), len(want))
		}
	}
}

func TestJoinRecordsEmptySides(t *testing.T) {
	rs := []record.Record{{Key: "k", Value: 1}}
	if out := record.JoinRecords(nil, rs); out != nil {
		t.Fatalf("join with empty left = %v, want nil", out)
	}
	if out := record.JoinRecords(rs, nil); out != nil {
		t.Fatalf("join with empty right = %v, want nil", out)
	}
}
