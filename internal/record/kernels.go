package record

import (
	"sort"
	"sync"

	"stark/internal/arena"
)

// groupScratch is the per-call transient state of the grouping kernel: an
// open-addressing hash table plus per-record and per-group index columns,
// all carved from one arena so a steady-state grouping pass allocates only
// its escaping outputs (the group headers and the shared values backing).
type groupScratch struct {
	i32 arena.Pool[int32]
	u32 arena.Pool[uint32]
}

var groupScratchPool = sync.Pool{New: func() any { return new(groupScratch) }}

// GroupByKeySorted groups a record slice by key and returns the groups in
// ascending key order. It is the allocation-lean replacement for GroupByKey
// on hot paths: keys are FNV-hashed once into an open-addressing table of
// arena-backed int32 slots (no map, no per-key allocation), group sizes are
// counted in the same pass, and every group's Values are carved out of one
// shared backing array — a partition groups in a handful of allocations
// regardless of key count. Consumers must treat Values as read-only
// (appending to one group would clobber its neighbor), which the engine's
// purity contract already demands.
//
//starklint:hotpath
func GroupByKeySorted(rs []Record) []Grouped {
	n := len(rs)
	if n == 0 {
		return nil
	}
	sc := groupScratchPool.Get().(*groupScratch)
	hs := sc.u32.Take(n)
	for i := 0; i < n; i++ {
		hs[i] = fnv32aString(rs[i].Key)
	}
	tsize := 1
	for tsize < 2*n {
		tsize <<= 1
	}
	mask := uint32(tsize - 1)
	table := sc.i32.Take(tsize) // 0 = empty, else group id + 1
	gidOf := sc.i32.Take(n)
	counts := sc.i32.Take(n)
	firstRec := sc.i32.Take(n)
	ngroups := int32(0)
	for i := 0; i < n; i++ {
		h := hs[i]
		slot := h & mask
		for {
			g := table[slot]
			if g == 0 {
				table[slot] = ngroups + 1
				firstRec[ngroups] = int32(i)
				counts[ngroups] = 1
				gidOf[i] = ngroups
				ngroups++
				break
			}
			if fi := firstRec[g-1]; hs[fi] == h && rs[fi].Key == rs[i].Key {
				gidOf[i] = g - 1
				counts[g-1]++
				break
			}
			slot = (slot + 1) & mask
		}
	}
	groups := make([]Grouped, ngroups)
	backing := make([]any, n)
	starts := sc.i32.Take(int(ngroups))
	cursor := sc.i32.Take(int(ngroups))
	var off int32
	for g := int32(0); g < ngroups; g++ {
		starts[g] = off
		off += counts[g]
		groups[g] = Grouped{
			Key:    rs[firstRec[g]].Key,
			Values: backing[starts[g] : starts[g]+counts[g] : starts[g]+counts[g]],
		}
	}
	for i := 0; i < n; i++ {
		g := gidOf[i]
		backing[starts[g]+cursor[g]] = rs[i].Value
		cursor[g]++
	}
	//starklint:ignore hotalloc one slice-header boxing per grouping call (not per record); the sorted-output contract needs the sort and sort.Slice is the only stdlib option without a per-call closure type
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	sc.i32.Reset()
	sc.u32.Reset()
	//starklint:ignore hotalloc sync.Pool.Put takes any but *groupScratch is a pointer, so the conversion stores the pointer in the interface word without allocating
	groupScratchPool.Put(sc)
	return groups
}

// JoinRecords computes the inner join of two record slices: for every key
// present on both sides, the cross-product of left and right values as
// Joined pairs, keys ascending, left then right values in input order — the
// exact output the map-based rdd.Join produced. Both sides group through the
// arena-backed kernel and the sorted group lists merge linearly, so the only
// allocations besides grouping are the exact-size output slice and the
// Joined boxes the API requires.
//
//starklint:hotpath
func JoinRecords(left, right []Record) []Record {
	lg := GroupByKeySorted(left)
	rg := GroupByKeySorted(right)
	total := 0
	for i, j := 0, 0; i < len(lg) && j < len(rg); {
		switch {
		case lg[i].Key < rg[j].Key:
			i++
		case lg[i].Key > rg[j].Key:
			j++
		default:
			total += len(lg[i].Values) * len(rg[j].Values)
			i++
			j++
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]Record, 0, total)
	for i, j := 0, 0; i < len(lg) && j < len(rg); {
		switch {
		case lg[i].Key < rg[j].Key:
			i++
		case lg[i].Key > rg[j].Key:
			j++
		default:
			for _, lv := range lg[i].Values {
				for _, rv := range rg[j].Values {
					out = append(out, Record{Key: lg[i].Key, Value: Joined{Left: lv, Right: rv}})
				}
			}
			i++
			j++
		}
	}
	return out
}
