package record

import (
	"testing"
	"testing/quick"
)

func TestSizeOfBasics(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{true, 1},
		{int64(7), 8},
		{3.14, 8},
		{"abc", 19},
		{[]byte{1, 2, 3}, 27},
		{[]int64{1, 2}, 40},
		{[]string{"a"}, 41},
	}
	for _, c := range cases {
		if got := SizeOf(c.v); got != c.want {
			t.Errorf("SizeOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSizeOfComposites(t *testing.T) {
	cg := CoGrouped{Groups: [][]any{{int64(1)}, {"x"}}}
	if got := SizeOf(cg); got <= 0 {
		t.Fatalf("SizeOf(CoGrouped) = %d", got)
	}
	j := Joined{Left: "a", Right: int64(1)}
	if got := SizeOf(j); got != 16+17+8 {
		t.Fatalf("SizeOf(Joined) = %d", got)
	}
	if got := SizeOf(struct{ X int }{1}); got != 64 {
		t.Fatalf("unknown type fallback = %d", got)
	}
}

func TestSizeMonotoneInStringLength(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > len(b) {
			a, b = b, a
		}
		return SizeOf(a) <= SizeOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOfSliceIsSumPlusOverhead(t *testing.T) {
	f := func(keys []string) bool {
		rs := make([]Record, len(keys))
		var sum int64 = sliceOverhead
		for i, k := range keys {
			rs[i] = Pair(k, int64(i))
			sum += SizeOfRecord(rs[i])
		}
		return SizeOfSlice(rs) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByKey(t *testing.T) {
	rs := []Record{Pair("b", 1), Pair("a", 2), Pair("b", 3)}
	m, keys := GroupByKey(rs)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if len(m["b"]) != 2 || m["b"][0] != 1 || m["b"][1] != 3 {
		t.Fatalf("m[b] = %v", m["b"])
	}
}

func TestAsInt64(t *testing.T) {
	for _, v := range []any{int(5), int32(5), int64(5), uint32(5), uint64(5), float64(5)} {
		got, ok := AsInt64(v)
		if !ok || got != 5 {
			t.Errorf("AsInt64(%T) = %d, %v", v, got, ok)
		}
	}
	if _, ok := AsInt64("5"); ok {
		t.Error("AsInt64(string) succeeded")
	}
}

func TestCloneIndependent(t *testing.T) {
	rs := []Record{Pair("a", 1)}
	c := Clone(rs)
	c[0].Key = "z"
	if rs[0].Key != "a" {
		t.Fatal("Clone aliases input")
	}
}
