// Package record defines the key-value data model flowing through the
// engine, together with size estimation used for cache accounting, shuffle
// cost, and checkpoint cost. It mirrors Spark's PairRDD model: every record
// is a (key, value) pair, and multi-dataset transformations (cogroup, join)
// group values by key.
package record

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Record is one key-value element of a dataset partition.
type Record struct {
	Key   string
	Value any
}

// Pair builds a record; it exists so call sites read as data, not struct
// literals.
func Pair(key string, value any) Record { return Record{Key: key, Value: value} }

// CoGrouped is the value type produced by CoGroup: one value slice per
// parent dataset, in parent order. A key missing from parent i has an empty
// Groups[i].
type CoGrouped struct {
	Groups [][]any
}

// Joined is the value type produced by Join: the cross-product element of
// the two parents' values for a key.
type Joined struct {
	Left  any
	Right any
}

const (
	// recordOverhead approximates per-record object headers, pointers and
	// alignment in a JVM-like memory layout. The simulation multiplies
	// logical record counts by estimated bytes, so the constant only needs
	// to be plausible and consistent.
	recordOverhead = 32
	stringOverhead = 16
	sliceOverhead  = 24
)

// SizeOf estimates the in-memory footprint of a value in bytes. It supports
// the value types the engine produces; unknown types fall back to a fixed
// estimate so accounting never fails mid-job.
func SizeOf(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint, uint64, float64, uintptr:
		return 8
	case string:
		return stringOverhead + int64(len(x))
	case []byte:
		return sliceOverhead + int64(len(x))
	case []any:
		s := int64(sliceOverhead)
		for _, e := range x {
			s += 8 + SizeOf(e)
		}
		return s
	case []string:
		s := int64(sliceOverhead)
		for _, e := range x {
			s += stringOverhead + int64(len(e))
		}
		return s
	case []int64:
		return sliceOverhead + 8*int64(len(x))
	case []float64:
		return sliceOverhead + 8*int64(len(x))
	case CoGrouped:
		s := int64(sliceOverhead)
		for _, g := range x.Groups {
			//starklint:ignore hotalloc SizeOf's any parameter is the data model — values arrive boxed from Record.Value, so re-boxing the group header here is inherent, not avoidable
			s += SizeOf(g)
		}
		return s
	case Joined:
		return 16 + SizeOf(x.Left) + SizeOf(x.Right)
	case map[string]int64:
		s := int64(48)
		for k := range x {
			s += stringOverhead + int64(len(k)) + 8
		}
		return s
	case fmt.Stringer:
		return stringOverhead + int64(len(x.String()))
	default:
		return 64
	}
}

// SizeOfRecord estimates the footprint of a full record.
func SizeOfRecord(r Record) int64 {
	return recordOverhead + stringOverhead + int64(len(r.Key)) + SizeOf(r.Value)
}

// SizeOfSlice estimates the footprint of a record slice (a partition's data).
func SizeOfSlice(rs []Record) int64 {
	s := int64(sliceOverhead)
	for _, r := range rs {
		s += SizeOfRecord(r)
	}
	return s
}

// GroupByKey groups a record slice into key -> values preserving first-seen
// key order of iteration via the returned sorted keys. It is a helper for
// reduce and cogroup implementations.
func GroupByKey(rs []Record) (map[string][]any, []string) {
	m := make(map[string][]any, len(rs))
	var keys []string
	for _, r := range rs {
		if _, ok := m[r.Key]; !ok {
			keys = append(keys, r.Key)
		}
		m[r.Key] = append(m[r.Key], r.Value)
	}
	sort.Strings(keys)
	return m, keys
}

// Grouped is one key with its accumulated values, produced by
// GroupByKeySorted.
type Grouped struct {
	Key    string
	Values []any
}

// AsInt64 converts numeric values the engine produces to int64, with ok
// reporting success. Counting and reduce helpers use it to stay total.
func AsInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint32:
		return int64(x), true
	case uint64:
		return int64(x), true
	case float64:
		return int64(x), true
	default:
		return 0, false
	}
}

// Clone copies a record slice. Partition data handed across executor
// boundaries is cloned so caches never alias mutable slices.
func Clone(rs []Record) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	return out
}

// Fingerprint hashes a record slice's observable shape (length plus every
// key, FNV-64a) cheaply enough to run on hot paths. The engine's
// copy-on-write debug mode (STARK_CHECK_COW=1) fingerprints slices when they
// start being shared and re-checks at the point the old code would have
// cloned, turning an aliasing violation into a loud failure instead of
// silent corruption.
func Fingerprint(rs []Record) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	n := len(rs)
	for i := 0; i < 8; i++ {
		mix(byte(n >> (8 * i)))
	}
	for _, r := range rs {
		for i := 0; i < len(r.Key); i++ {
			mix(r.Key[i])
		}
		mix(0)
	}
	return h
}

var (
	cowCheckOnce sync.Once
	cowCheck     bool
)

// CowCheckEnabled reports whether STARK_CHECK_COW=1 is set, enabling the
// mutation-detection checks guarding the engine's copy-on-write fast paths.
func CowCheckEnabled() bool {
	cowCheckOnce.Do(func() { cowCheck = os.Getenv("STARK_CHECK_COW") == "1" })
	return cowCheck
}

// SetCowCheckForTesting overrides the STARK_CHECK_COW switch for tests that
// must exercise both modes within one process (the env variable is read
// once). It returns the previous value so callers can restore it.
func SetCowCheckForTesting(v bool) bool {
	cowCheckOnce.Do(func() { cowCheck = os.Getenv("STARK_CHECK_COW") == "1" })
	prev := cowCheck
	cowCheck = v
	return prev
}
