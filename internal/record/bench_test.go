package record

import (
	"fmt"
	"testing"
)

func benchData(n, keys int) []Record {
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = Pair(fmt.Sprintf("key-%05d", i%keys), int64(i))
	}
	return rs
}

func BenchmarkGroupByKey(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, keys := GroupByKey(data)
		for _, k := range keys {
			if len(m[k]) == 0 {
				b.Fatal("empty group")
			}
		}
	}
}

func BenchmarkGroupByKeySorted(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, g := range GroupByKeySorted(data) {
			if len(g.Values) == 0 {
				b.Fatal("empty group")
			}
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(data)
	}
}

func BenchmarkSizeOfSlice(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SizeOfSlice(data)
	}
}
