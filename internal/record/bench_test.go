package record

import (
	"fmt"
	"testing"
)

func benchData(n, keys int) []Record {
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = Pair(fmt.Sprintf("key-%05d", i%keys), int64(i))
	}
	return rs
}

func BenchmarkGroupByKey(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, keys := GroupByKey(data)
		for _, k := range keys {
			if len(m[k]) == 0 {
				b.Fatal("empty group")
			}
		}
	}
}

func BenchmarkGroupByKeySorted(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, g := range GroupByKeySorted(data) {
			if len(g.Values) == 0 {
				b.Fatal("empty group")
			}
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	left := benchData(8000, 1200)
	right := benchData(8000, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(JoinRecords(left, right)) == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkFromRecords(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FromRecords(data).Len() != len(data) {
			b.Fatal("length mismatch")
		}
	}
}

func BenchmarkPartitionStable(b *testing.B) {
	data := benchData(20000, 20000)
	const parts = 64
	var scr Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := FromRecords(data)
		idx := scr.I32.Take(bt.Len())
		for j := range idx {
			idx[j] = int32(bt.Hash32(j) % parts)
		}
		if pb := bt.PartitionStable(idx, parts, &scr); len(pb.Spans) == 0 {
			b.Fatal("no spans")
		}
		scr.Reset()
	}
}

func BenchmarkFingerprint(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(data)
	}
}

func BenchmarkSizeOfSlice(b *testing.B) {
	data := benchData(20000, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SizeOfSlice(data)
	}
}
