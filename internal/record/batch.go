package record

import (
	"sort"
	"strings"

	"stark/internal/arena"
)

// FNV-1a constants shared by the slab hashers. They must track hash/fnv
// exactly: partition.Hash uses fnv.New32a and storage block checksums use
// fnv.New64a, and the batch's amortized hashes have to be bit-identical to
// what those per-record paths produce.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv32aString(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime32
	}
	return h
}

// KeySum64 is the allocation-free twin of the storage package's block
// checksum: FNV-64a over every key followed by a 0xff separator, then the
// record count as 8 little-endian bytes. storage delegates here so the
// per-record and batch-slab paths can never drift.
func KeySum64(rs []Record) uint64 {
	h := uint64(fnvOffset64)
	for _, r := range rs {
		for i := 0; i < len(r.Key); i++ {
			h = (h ^ uint64(r.Key[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
	}
	cnt := uint64(len(rs))
	for i := 0; i < 8; i++ {
		h = (h ^ (cnt >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}

// ColKind tags the typed value column a batch carries. A batch whose values
// are uniformly int64 / float64 / string gets the matching typed column; any
// other mix spills to the boxed []any column.
type ColKind uint8

const (
	// ColSpill is the boxed fallback column for mixed or uncommon value
	// types.
	ColSpill ColKind = iota
	// ColInt64 marks a uniform []int64 value column.
	ColInt64
	// ColFloat64 marks a uniform []float64 value column.
	ColFloat64
	// ColString marks a uniform []string value column.
	ColString
)

// Batch is a columnar view of one partition's records: a contiguous
// key-bytes slab with offsets, per-key FNV hashes computed in one amortized
// pass, and a memoized byte size. The row form ([]Record) stays canonical —
// a batch built by FromRecords adopts the row slice copy-on-write, so
// Records() is zero-alloc and values are never re-boxed at API boundaries.
// Typed value columns (int64/float64/string with a boxed spill) are derived
// lazily for kernels that want them.
//
// Batches follow the engine's COW contract: neither the adopted rows nor any
// slice returned by a Batch method may be mutated once shared.
type Batch struct {
	keys string   // concatenated key bytes
	offs []int32  // len n+1; key i is keys[offs[i]:offs[i+1]]
	hash []uint32 // FNV-32a per key, matches partition.Hash.PartitionFor
	recs []Record // canonical rows (nil only after WithoutRows, for tests)

	bytes int64   // memoized SizeOfSlice equivalent
	sizes []int64 // lazy per-record SizeOfRecord

	kind     ColKind
	colsDone bool
	ints     []int64
	floats   []float64
	strs     []string
	spill    []any
}

// FromRecords builds a batch over rs in one pass: key slab, offsets, FNV-32a
// hashes, and the exact SizeOfSlice byte total. The row slice is adopted
// (not copied) under the copy-on-write contract.
//
//starklint:hotpath
func FromRecords(rs []Record) *Batch {
	n := len(rs)
	total := 0
	for i := 0; i < n; i++ {
		total += len(rs[i].Key)
	}
	var sb strings.Builder
	sb.Grow(total)
	offs := make([]int32, n+1)
	hash := make([]uint32, n)
	bytes := int64(sliceOverhead)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		r := rs[i]
		sb.WriteString(r.Key)
		offs[i+1] = offs[i] + int32(len(r.Key))
		hash[i] = fnv32aString(r.Key)
		sz := recordOverhead + stringOverhead + int64(len(r.Key)) + SizeOf(r.Value)
		sizes[i] = sz
		bytes += sz
	}
	return &Batch{keys: sb.String(), offs: offs, hash: hash, recs: rs, bytes: bytes, sizes: sizes}
}

// Len reports the number of records.
func (b *Batch) Len() int { return len(b.offs) - 1 }

// Key returns record i's key as a zero-copy substring of the slab.
func (b *Batch) Key(i int) string { return b.keys[b.offs[i]:b.offs[i+1]] }

// Hash32 returns the FNV-32a hash of record i's key, bit-identical to
// hashing the key through hash/fnv as partition.Hash does.
func (b *Batch) Hash32(i int) uint32 { return b.hash[i] }

// Bytes returns the memoized SizeOfSlice of the batch's rows. Shuffle and
// cache accounting read this instead of re-walking the partition.
func (b *Batch) Bytes() int64 { return b.bytes }

// Sizes returns the per-record SizeOfRecord column.
func (b *Batch) Sizes() []int64 { return b.sizes }

// Records returns the canonical row view without copying or re-boxing. If
// the rows were stripped (WithoutRows), they are rebuilt from the columns —
// the only path that re-boxes values.
func (b *Batch) Records() []Record {
	if b.recs != nil || b.Len() == 0 {
		return b.recs
	}
	n := b.Len()
	rs := make([]Record, n)
	for i := 0; i < n; i++ {
		rs[i].Key = b.Key(i)
		switch b.kind {
		case ColInt64:
			rs[i].Value = b.ints[i]
		case ColFloat64:
			rs[i].Value = b.floats[i]
		case ColString:
			rs[i].Value = b.strs[i]
		default:
			rs[i].Value = b.spill[i]
		}
	}
	b.recs = rs
	return rs
}

// ToRecords is Records under the name the round-trip property uses:
// FromRecords(ToRecords(b)) must be identical to b observably (keys, hashes,
// bytes, fingerprint).
func (b *Batch) ToRecords() []Record { return b.Records() }

// Columnize derives the typed value column (or the boxed spill column) from
// the rows and reports the batch's column kind. It is lazy and memoized;
// kernels that can exploit unboxed values call it, everything else never
// pays for it.
func (b *Batch) Columnize() ColKind {
	if b.colsDone {
		return b.kind
	}
	b.colsDone = true
	rs := b.Records()
	n := len(rs)
	if n == 0 {
		b.kind = ColSpill
		return b.kind
	}
	switch rs[0].Value.(type) {
	case int64:
		col := make([]int64, n)
		for i, r := range rs {
			v, ok := r.Value.(int64)
			if !ok {
				b.spillColumn(rs)
				return b.kind
			}
			col[i] = v
		}
		b.kind, b.ints = ColInt64, col
	case float64:
		col := make([]float64, n)
		for i, r := range rs {
			v, ok := r.Value.(float64)
			if !ok {
				b.spillColumn(rs)
				return b.kind
			}
			col[i] = v
		}
		b.kind, b.floats = ColFloat64, col
	case string:
		col := make([]string, n)
		for i, r := range rs {
			v, ok := r.Value.(string)
			if !ok {
				b.spillColumn(rs)
				return b.kind
			}
			col[i] = v
		}
		b.kind, b.strs = ColString, col
	default:
		b.spillColumn(rs)
	}
	return b.kind
}

func (b *Batch) spillColumn(rs []Record) {
	col := make([]any, len(rs))
	for i, r := range rs {
		col[i] = r.Value
	}
	b.kind, b.spill = ColSpill, col
}

// Int64s returns the typed column after Columnize reported ColInt64.
func (b *Batch) Int64s() []int64 { return b.ints }

// Float64s returns the typed column after Columnize reported ColFloat64.
func (b *Batch) Float64s() []float64 { return b.floats }

// Strings returns the typed column after Columnize reported ColString.
func (b *Batch) Strings() []string { return b.strs }

// SpillValues returns the boxed column after Columnize reported ColSpill.
func (b *Batch) SpillValues() []any { return b.spill }

// WithoutRows returns a copy of the batch with the row view dropped, forcing
// Records() down the column-materialization path. Tests use it to exercise
// re-boxing; the engine never does.
func (b *Batch) WithoutRows() *Batch {
	b.Columnize()
	cp := *b
	cp.recs = nil
	return &cp
}

// KeySumRange computes the storage block checksum of rows [lo, hi) straight
// off the key slab — bit-identical to KeySum64(rows[lo:hi]) with zero
// allocations and no per-record byte-slice conversions.
func (b *Batch) KeySumRange(lo, hi int) uint64 {
	h := uint64(fnvOffset64)
	for i := lo; i < hi; i++ {
		for j := b.offs[i]; j < b.offs[i+1]; j++ {
			h = (h ^ uint64(b.keys[j])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
	}
	cnt := uint64(hi - lo)
	for i := 0; i < 8; i++ {
		h = (h ^ (cnt >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}

// Fingerprint hashes the batch's observable shape off the slab, bit-exact
// with Fingerprint over its rows.
func (b *Batch) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	n := b.Len()
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(n>>(8*i)))) * fnvPrime64
	}
	for i := 0; i < n; i++ {
		for j := b.offs[i]; j < b.offs[i+1]; j++ {
			h = (h ^ uint64(b.keys[j])) * fnvPrime64
		}
		h = (h ^ 0) * fnvPrime64
	}
	return h
}

// Scratch bundles the arena pools the batch kernels carve their transient
// tables from. The engine keeps one Scratch per plane context and resets it
// at the batch boundary; standalone callers may use a zero Scratch.
type Scratch struct {
	I32 arena.Pool[int32]
	I64 arena.Pool[int64]
}

// Reset reclaims all scratch memory taken since the last reset.
func (s *Scratch) Reset() {
	s.I32.Reset()
	s.I64.Reset()
}

// Span describes one shuffle bucket inside a partitioned batch: rows
// [Lo, Hi) of the reordered batch belong to reduce partition Part. RawBytes
// is the unscaled sum of per-record sizes; Bytes is filled by the engine
// after applying cluster byte scaling and slice overhead.
type Span struct {
	Part     int
	Lo, Hi   int32
	RawBytes int64
	Bytes    int64
}

// PartitionedBatch is a batch reordered bucket-major plus the span table
// describing each non-empty bucket. One backing row array and one slab serve
// every bucket; storage persists span views instead of per-bucket copies.
type PartitionedBatch struct {
	Batch *Batch
	Spans []Span
}

// sparsePartitionThreshold mirrors the dense/sparse split the shuffle
// bucketer has used since PR 3: with far more target partitions than
// records, per-partition counting arrays cost more than sorting the handful
// of occupied buckets.
const sparsePartitionThreshold = 4096

// PartitionStable reorders the batch bucket-major by idx (idx[i] = target
// partition of row i, in [0, nparts)), preserving input order within each
// bucket, and returns the reordered batch plus spans for every non-empty
// bucket in ascending partition order. All transient tables come from scr;
// only the reordered batch and span table escape.
//
//starklint:hotpath
func (b *Batch) PartitionStable(idx []int32, nparts int, scr *Scratch) *PartitionedBatch {
	n := b.Len()
	perm := scr.I32.Take(n)
	var occupied int
	if nparts > sparsePartitionThreshold && nparts > 2*n {
		// Sparse: stable-sort row indices by bucket instead of touching
		// O(nparts) counting arrays.
		for i := range perm {
			perm[i] = int32(i)
		}
		//starklint:ignore hotalloc sparse path only (nparts >> rows): one slice-header boxing per partition call beats allocating O(nparts) counting arrays
		sort.SliceStable(perm, func(a, c int) bool { return idx[perm[a]] < idx[perm[c]] })
		for i := 0; i < n; i++ {
			if i == 0 || idx[perm[i]] != idx[perm[i-1]] {
				occupied++
			}
		}
		return b.reorderSpans(idx, perm, occupied)
	}
	counts := scr.I32.Take(nparts)
	for _, p := range idx {
		counts[p]++
	}
	starts := scr.I32.Take(nparts)
	var off int32
	for p := 0; p < nparts; p++ {
		if counts[p] > 0 {
			occupied++
		}
		starts[p] = off
		off += counts[p]
	}
	cursor := scr.I32.Take(nparts)
	for i := 0; i < n; i++ {
		p := idx[i]
		perm[starts[p]+cursor[p]] = int32(i)
		cursor[p]++
	}
	return b.reorderSpans(idx, perm, occupied)
}

// reorderSpans materializes the bucket-major batch and span table from a
// permutation (perm[j] = source row of output row j) whose buckets are
// contiguous and ascending.
func (b *Batch) reorderSpans(idx, perm []int32, occupied int) *PartitionedBatch {
	n := b.Len()
	rs := b.Records()
	out := make([]Record, n)
	offs := make([]int32, n+1)
	hash := make([]uint32, n)
	sizes := make([]int64, n)
	var sb strings.Builder
	sb.Grow(len(b.keys))
	spans := make([]Span, 0, occupied)
	bytes := int64(sliceOverhead)
	for j := 0; j < n; j++ {
		i := perm[j]
		out[j] = rs[i]
		sb.WriteString(b.Key(int(i)))
		offs[j+1] = offs[j] + (b.offs[i+1] - b.offs[i])
		hash[j] = b.hash[i]
		sz := b.sizes[i]
		sizes[j] = sz
		bytes += sz
		p := int(idx[i])
		if len(spans) == 0 || spans[len(spans)-1].Part != p {
			spans = append(spans, Span{Part: p, Lo: int32(j)})
		}
		sp := &spans[len(spans)-1]
		sp.Hi = int32(j + 1)
		sp.RawBytes += sz
	}
	ordered := &Batch{keys: sb.String(), offs: offs, hash: hash, recs: out, bytes: bytes, sizes: sizes}
	return &PartitionedBatch{Batch: ordered, Spans: spans}
}
