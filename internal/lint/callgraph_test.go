package lint_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"stark/internal/lint"
)

// edgeKeys renders a node's out-edges as "kind calleeName" strings, deduped
// and sorted, for golden comparison.
func edgeKeys(n *lint.Node) []string {
	if n == nil {
		return nil
	}
	set := map[string]bool{}
	for _, e := range n.Out {
		set[fmt.Sprintf("%s %s", e.Kind, e.Callee.Name)] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func assertEdges(t *testing.T, g *lint.CallGraph, caller string, want []string) {
	t.Helper()
	n := g.Node(caller)
	if n == nil {
		t.Fatalf("no node for %s", caller)
	}
	got := edgeKeys(n)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s edges mismatch\nwant:\n  %s\ngot:\n  %s",
			caller, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
	}
}

// TestCallGraphFixture pins the builder's golden behavior over the fixture:
// static calls, method-value references, interface-dispatch
// over-approximation, and generic origin normalization.
func TestCallGraphFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "callgraph"), "fixture/callgraph")
	g := lint.BuildCallGraph([]*lint.Package{pkg})

	assertEdges(t, g, "fixture/callgraph.direct", []string{
		"static fixture/callgraph.leaf",
		"static (*fixture/callgraph.adder).add",
		"static (fixture/callgraph.adder).get",
	})
	assertEdges(t, g, "fixture/callgraph.methodValue", []string{
		"ref fixture/callgraph.leaf",
		"ref (*fixture/callgraph.adder).add",
	})
	// The interface call must over-approximate to every module
	// implementation, whichever receiver form satisfies the interface.
	assertEdges(t, g, "fixture/callgraph.dispatch", []string{
		"iface (fixture/callgraph.impl1).do",
		"iface (*fixture/callgraph.impl2).do",
	})
	assertEdges(t, g, "fixture/callgraph.useGeneric", []string{
		"static fixture/callgraph.identity",
	})

	// Every fixture function must be a node with its declaration bound.
	for _, name := range []string{
		"fixture/callgraph.direct", "fixture/callgraph.leaf",
		"(*fixture/callgraph.adder).add", "(fixture/callgraph.impl1).do",
	} {
		n := g.Node(name)
		if n == nil || n.Decl == nil || n.Pkg == nil {
			t.Errorf("node %s missing source binding: %+v", name, n)
		}
	}
}

// TestCallGraphCrossPackage loads two real module packages with source and
// asserts the cross-package edge lands on the callee's source-bound node:
// the rdd join transform must reach the record merge-join kernel even
// though the two packages type-check against different types.Package views.
func TestCallGraphCrossPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./internal/rdd", "./internal/record")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	g := lint.BuildCallGraph(pkgs)

	callee := g.Node("stark/internal/record.JoinRecords")
	if callee == nil {
		t.Fatal("no node for stark/internal/record.JoinRecords")
	}
	if callee.Decl == nil || callee.Pkg == nil {
		t.Fatal("JoinRecords node lost its source binding across packages")
	}
	found := false
	for _, n := range g.Nodes() {
		if n.Pkg == nil || n.Pkg.ImportPath != "stark/internal/rdd" {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == callee {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no edge from stark/internal/rdd into record.JoinRecords; cross-package resolution is broken")
	}
}
