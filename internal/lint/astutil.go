package lint

import (
	"go/ast"
	"go/types"
)

// walkStack traverses root in source order, calling fn with each node and
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false from fn skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Children are skipped; pop immediately since Inspect will not
			// deliver the matching nil.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// namedTypeName returns the name of t's core named type, looking through
// pointers and aliases; "" when t has no name (slices, maps, funcs, ...).
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return namedTypeName(p.Elem())
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedTypePkgName returns the package name declaring t's core named type
// ("" for unnamed or universe types).
func namedTypePkgName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return namedTypePkgName(p.Elem())
	}
	if n, ok := types.Unalias(t).(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Name()
	}
	return ""
}

// chainRoot unwraps a selector/index/deref/paren chain (a.b.c[i].d) down to
// its base expression, typically an identifier.
func chainRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return e
		}
	}
}

// rootObject resolves the base identifier of a selector/index chain to its
// types.Object (nil when the chain is not rooted at a plain identifier).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := chainRoot(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (methods and package-level functions; nil for builtins, func values and
// type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
