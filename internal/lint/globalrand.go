package lint

import (
	"go/ast"
)

// globalrandBanned lists the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global generator. Constructors stay
// legal: rand.New(rand.NewSource(seed)) is exactly how seeded randomness is
// threaded from config and fault schedules.
var globalrandBanned = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions (N, IntN, ... share names via the map below)
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// GlobalrandAnalyzer enforces the seeded-randomness contract: every random
// draw must flow through a *rand.Rand constructed from a seed recorded in
// config or a fault schedule, so replaying a seed replays the run. The
// process-global generator is unseedable per-run, shared across goroutines,
// and therefore nondeterministic under parallelism.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "bans package-level math/rand draws; randomness must come from a seeded *rand.Rand",
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) {
	if !pass.Config.DeterministicPkg(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || !globalrandBanned[sel.Sel.Name] {
				return true
			}
			if isPkgFunc(obj, "math/rand", sel.Sel.Name) || isPkgFunc(obj, "math/rand/v2", sel.Sel.Name) {
				pass.Reportf(sel.Pos(), "rand.%s draws from the process-global generator; thread a seeded *rand.Rand instead", sel.Sel.Name)
			}
			return true
		})
	}
}
