package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ErrwrapAnalyzer guards the typed-error chains the degradation machinery
// depends on: session admission matches ErrOverload/ErrDeadlineExceeded,
// the engine's OOM window matches ErrOOM, retry/recovery matches
// ErrStorage/ErrFetchFailed/ErrJobCancelled — all via errors.Is, which only
// works while every re-wrap on the path keeps the chain intact. Two rules:
//
//  1. A fmt.Errorf operand that is itself an error must use %w, never
//     %v/%s — the latter flattens the error to text and severs
//     errors.Is/As. When the surrounding function can carry one of the
//     module's typed sentinels (computed over the call graph: it references
//     a sentinel, or calls error-returning functions that do), the finding
//     names the sentinels whose identity would be lost.
//  2. A module error type (struct implementing error) holding an error
//     field must declare Unwrap() error or Unwrap() []error, or errors.Is
//     cannot see through it.
//
// Sentinels are inferred, not listed: every package-level `var ErrX = ...`
// whose type implements error counts, so new sentinels are covered the day
// they are declared.
var ErrwrapAnalyzer = &ModuleAnalyzer{
	Name: "errwrap",
	Doc:  "flags error wrapping that severs errors.Is/Unwrap reachability of the typed sentinels",
	Run:  runErrwrap,
}

func runErrwrap(p *ModulePass) {
	sentinels := collectSentinels(p)
	carriers := solveCarriers(p, sentinels)
	checkErrorfCalls(p, carriers)
	checkUnwrapMethods(p)
}

// collectSentinels finds every package-level error-typed var named Err*
// across the loaded packages, keyed by "pkgpath.Name" so the same sentinel
// unifies across source-checked and export-data views.
func collectSentinels(p *ModulePass) map[string]string {
	out := map[string]string{}
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !strings.HasPrefix(name, "Err") {
				continue
			}
			if !implementsError(v.Type()) {
				continue
			}
			out[pkg.Types.Path()+"."+name] = name
		}
	}
	return out
}

// sentinelUse resolves an identifier to a sentinel display name ("" when it
// is not a sentinel reference).
func sentinelUse(sentinels map[string]string, info *types.Info, id *ast.Ident) string {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	return sentinels[v.Pkg().Path()+"."+v.Name()]
}

// solveCarriers computes, per function, the set of sentinel names its error
// results may carry: seeded with direct sentinel references, propagated
// backwards through calls to error-returning functions.
func solveCarriers(p *ModulePass, sentinels map[string]string) map[*Node]map[string]bool {
	carriers := map[*Node]map[string]bool{}
	nodes := p.Graph.Nodes()
	for _, n := range nodes {
		if n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			if name := sentinelUse(sentinels, info, id); name != "" {
				if carriers[n] == nil {
					carriers[n] = map[string]bool{}
				}
				carriers[n][name] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.Decl == nil {
				continue
			}
			for _, e := range n.Out {
				from := carriers[e.Callee]
				if len(from) == 0 || !returnsError(e.Callee.Fn) {
					continue
				}
				for name := range from {
					if !carriers[n][name] {
						if carriers[n] == nil {
							carriers[n] = map[string]bool{}
						}
						carriers[n][name] = true
						changed = true
					}
				}
			}
		}
	}
	return carriers
}

func returnsError(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if implementsError(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkErrorfCalls enforces rule 1: error-typed operands of fmt.Errorf must
// use the %w verb.
func checkErrorfCalls(p *ModulePass, carriers map[*Node]map[string]bool) {
	for _, n := range p.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // non-constant format: nothing to check statically
			}
			verbs := errorfVerbs(constant.StringVal(tv.Value))
			if verbs == nil {
				return true
			}
			for i, arg := range call.Args[1:] {
				if i >= len(verbs) {
					break
				}
				verb := verbs[i]
				if verb == 'w' || verb == '*' {
					continue
				}
				at := info.TypeOf(arg)
				if at == nil || !implementsError(at) {
					continue
				}
				msg := "fmt.Errorf flattens an error operand with %" + string(verb) + "; use %w so errors.Is/As still reach the chain"
				if names := carriedNames(carriers[n]); names != "" {
					msg += " (this path can carry " + names + ")"
				}
				p.Reportf(arg.Pos(), "%s", msg)
			}
			return true
		})
	}
}

func carriedNames(set map[string]bool) string {
	if len(set) == 0 {
		return ""
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 4 {
		names = names[:4]
	}
	return strings.Join(names, ", ")
}

// checkUnwrapMethods enforces rule 2: every module struct type that
// implements error and stores an error field must expose Unwrap.
func checkUnwrapMethods(p *ModulePass) {
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			ptr := types.NewPointer(named)
			if !implementsError(ptr) {
				continue
			}
			var errField string
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if implementsError(f.Type()) {
					errField = f.Name()
					break
				}
			}
			if errField == "" {
				continue
			}
			if obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), "Unwrap"); obj != nil {
				if _, isFunc := obj.(*types.Func); isFunc {
					continue
				}
			}
			p.Reportf(tn.Pos(), "%s implements error and wraps error field %q but has no Unwrap method; errors.Is cannot reach the wrapped sentinel", name, errField)
		}
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// errorfVerbs maps each successive operand of a format string to its verb
// byte ('*' for a width/precision operand). It returns nil for formats it
// does not model (explicit argument indexes), so callers skip the check
// rather than misattribute verbs.
func errorfVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return nil
		}
		for i < len(format) && (format[i] == '.' || format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
