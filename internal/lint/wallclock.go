package lint

import (
	"go/ast"
)

// wallclockBanned lists the package time functions that read or schedule
// against the host's wall clock. time.Duration arithmetic and constants
// stay legal: the engine models durations, it must never observe real ones.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallclockAnalyzer enforces the virtual-clock contract: deterministic
// packages schedule exclusively on vtime.Loop, so any wall-clock read is a
// reproduction bug waiting to surface as a cross-parallelism diff. It flags
// every reference (call or value use) to a banned time function, so
// indirection like `now := time.Now` cannot smuggle the clock in.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "bans wall-clock reads (time.Now/Since/Sleep/...) in deterministic packages",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) {
	if !pass.Config.DeterministicPkg(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			if isPkgFunc(obj, "time", sel.Sel.Name) {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic code must use the virtual clock (vtime.Loop)", sel.Sel.Name)
			}
			return true
		})
	}
}
