package lint_test

import (
	"testing"

	"stark/internal/lint"
)

// TestRepoIsClean asserts `starklint ./...` is clean on the repo itself:
// every intentional contract exception carries a reasoned in-source
// suppression, and no new violation has crept in. This is the same load
// path cmd/starklint uses, so a failure here reproduces exactly with
// `go run ./cmd/starklint ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to go list; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader is likely broken", len(pkgs))
	}
	cfg := lint.DefaultConfig()
	clean := true
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, cfg, lint.Analyzers()) {
			clean = false
			t.Errorf("%s", d)
		}
	}
	// The interprocedural analyzers (planetaint, hotalloc, errwrap) run over
	// the module-wide call graph built across every loaded package.
	for _, d := range lint.RunModule(pkgs, cfg, lint.ModuleAnalyzers()) {
		clean = false
		t.Errorf("%s", d)
	}
	if !clean {
		t.Log("fix the finding or add //starklint:ignore <analyzer> <reason> with a real justification")
	}
}
