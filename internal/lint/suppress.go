package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an in-source suppression:
//
//	//starklint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive silences the named analyzers on its own line and on the next
// line that is not itself a directive (so it works both as a trailing
// comment and on a line of its own, including stacked directives). A
// directive trailing part of a multi-line expression additionally covers
// the expression's start line, where analyzers anchor their findings — but
// never escapes the function literal it is written in, so a directive
// inside a closure cannot silence a finding on the enclosing call. The
// reason is mandatory: a directive without one is itself a finding, so
// every suppression in the tree documents why the invariant does not apply.
const directivePrefix = "//starklint:ignore"

type suppression struct {
	analyzers []string
	reason    string
	line      int // directive's own line
	target    int // next non-directive line it also covers
}

type suppressionSet struct {
	// byFile maps filename -> line -> suppressions active on that line.
	byFile map[string]map[int][]*suppression
}

func (s *suppressionSet) suppresses(d Diagnostic) bool {
	if d.Analyzer == "starklint" {
		return false // directive-hygiene findings are not themselves suppressible
	}
	for _, sup := range s.byFile[d.Pos.Filename][d.Pos.Line] {
		for _, a := range sup.analyzers {
			if a == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans every comment in the files for directives and
// returns the resulting set plus diagnostics for malformed directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (*suppressionSet, []Diagnostic) {
	set := &suppressionSet{byFile: map[string]map[int][]*suppression{}}
	var bad []Diagnostic
	for _, f := range files {
		type rawDir struct {
			pos  token.Pos
			line int
			sup  *suppression
		}
		var dirs []rawDir
		lines := map[int]bool{} // lines holding a directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "starklint",
						Message: "suppression directive names no analyzer"})
					continue
				}
				names := strings.Split(fields[0], ",")
				reason := strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				if reason == "" {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "starklint",
						Message: fmt.Sprintf("suppression of %q has no reason; write //starklint:ignore <analyzer> <reason>", fields[0])})
					continue
				}
				ok := true
				for _, n := range names {
					if !knownAnalyzer(n) {
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "starklint",
							Message: "suppression names unknown analyzer " + n})
						ok = false
					}
				}
				if !ok {
					continue
				}
				sup := &suppression{analyzers: names, reason: reason, line: pos.Line}
				dirs = append(dirs, rawDir{pos: c.Pos(), line: pos.Line, sup: sup})
				lines[pos.Line] = true
			}
		}
		if len(dirs) == 0 {
			continue
		}
		filename := fset.Position(f.Pos()).Filename
		m := set.byFile[filename]
		if m == nil {
			m = map[int][]*suppression{}
			set.byFile[filename] = m
		}
		exprs, funcLits := multiLineSpans(fset, f)
		for _, d := range dirs {
			// A directive covers its own line (trailing-comment form) and the
			// first following line that is not another directive (own-line
			// form, skipping over stacked directives).
			target := d.line + 1
			for lines[target] {
				target++
			}
			d.sup.target = target
			m[d.line] = append(m[d.line], d.sup)
			m[target] = append(m[target], d.sup)
			// A directive trailing part of a wrapped expression also covers
			// the expression's start line, where the finding anchors — unless
			// the directive sits inside a function literal nested within that
			// expression (it must not leak out of the closure's body).
			for _, es := range exprs {
				if es.startLine >= d.line || es.endLine < d.line {
					continue
				}
				leaked := false
				for _, fl := range funcLits {
					if fl.pos > es.pos && d.pos >= fl.pos && d.pos <= fl.end {
						leaked = true
						break
					}
				}
				if !leaked {
					m[es.startLine] = append(m[es.startLine], d.sup)
				}
			}
		}
	}
	return set, bad
}

// lineSpan is the position/line extent of one AST node.
type lineSpan struct {
	pos, end           token.Pos
	startLine, endLine int
}

// multiLineSpans collects every expression spanning more than one line
// (function literals excluded — they scope directives, not extend them)
// plus the spans of all function literals.
func multiLineSpans(fset *token.FileSet, f *ast.File) (exprs, funcLits []lineSpan) {
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		sp := lineSpan{
			pos: e.Pos(), end: e.End(),
			startLine: fset.Position(e.Pos()).Line,
			endLine:   fset.Position(e.End()).Line,
		}
		if _, isFL := e.(*ast.FuncLit); isFL {
			funcLits = append(funcLits, sp)
			return true
		}
		if sp.endLine > sp.startLine {
			exprs = append(exprs, sp)
		}
		return true
	})
	return exprs, funcLits
}
