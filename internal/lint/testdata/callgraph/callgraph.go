// Package callgraph is the golden fixture for the module call-graph
// builder: static calls, method values, interface dispatch
// over-approximation, and generic instantiation.
package callgraph

type adder struct{ n int }

func (a *adder) add(x int) { a.n += x }

func (a adder) get() int { return a.n }

type doer interface{ do() }

type impl1 struct{}

func (impl1) do() {}

type impl2 struct{}

func (*impl2) do() {}

func leaf() int { return 1 }

// direct makes static calls: a package function and both method forms.
func direct(a *adder) int {
	a.add(leaf())
	return a.get()
}

// methodValue takes a bound method and a function value: ref edges.
func methodValue(a *adder) func(int) {
	_ = leaf
	return a.add
}

// dispatch calls through a module-declared interface: the edge expands to
// every implementation in the module.
func dispatch(d doer) { d.do() }

// identity is generic; calls resolve to the origin declaration.
func identity[T any](v T) T { return v }

func useGeneric() int { return identity(2) }
