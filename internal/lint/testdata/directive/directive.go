// Package directive exercises suppression-directive hygiene: a directive
// with no reason or naming an unknown analyzer is itself a finding, and
// registers no suppression — so the underlying finding surfaces too.
package directive

import "time"

func noReason() {
	_ = time.Now() //starklint:ignore wallclock
}

func unknownAnalyzer() {
	_ = time.Now() //starklint:ignore nosuchcheck it will never run
}

func noAnalyzer() {
	_ = time.Now() //starklint:ignore
}
