package cowpurity

import "stark/internal/record"

func bad(r *RDD) {
	r.Map(func(rec record.Record) record.Record {
		rec.Value = 1 // want cowpurity
		return rec
	})
	r.Filter(func(rec record.Record) bool {
		rec.Key = "x" // want cowpurity
		return true
	})
	r.MapPartitions(func(recs []record.Record) []record.Record {
		recs[0] = record.Pair("k", 1) // want cowpurity
		recs[1].Key = "y"             // want cowpurity
		p := &recs[2]                 // want cowpurity
		_ = p
		return append(recs, record.Pair("z", 2)) // want cowpurity
	})
}
