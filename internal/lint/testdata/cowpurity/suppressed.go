package cowpurity

import "stark/internal/record"

func inPlace(r *RDD) {
	r.MapPartitions(func(recs []record.Record) []record.Record {
		//starklint:ignore cowpurity fixture: slice is task-private scratch built one line above the call
		recs[0] = record.Pair("k", 0)
		return recs
	})
}
