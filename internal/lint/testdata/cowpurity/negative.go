package cowpurity

import "stark/internal/record"

// The sanctioned style: treat inputs as immutable, build new records and
// new output slices.
func good(r *RDD) {
	r.Map(func(rec record.Record) record.Record {
		return record.Pair(rec.Key, 2)
	})
	r.MapPartitions(func(recs []record.Record) []record.Record {
		out := make([]record.Record, 0, len(recs))
		for _, rec := range recs {
			out = append(out, record.Pair(rec.Key, rec.Value))
		}
		return out
	})
	r.FlatMap(func(rec record.Record) []record.Record {
		var out []record.Record
		out = append(out, rec)
		return out
	})
}
