// Package cowpurity models the transform API surface the analyzer keys on:
// methods named Map/MapValues/FlatMap/Filter/ReduceByKey/MapPartitions on a
// type named RDD (or Graph), taking closures over record.Record data.
package cowpurity

import "stark/internal/record"

type RDD struct{}

func (r *RDD) Map(f func(record.Record) record.Record) *RDD               { return r }
func (r *RDD) Filter(f func(record.Record) bool) *RDD                     { return r }
func (r *RDD) FlatMap(f func(record.Record) []record.Record) *RDD         { return r }
func (r *RDD) MapPartitions(f func([]record.Record) []record.Record) *RDD { return r }
func (r *RDD) ReduceByKey(merge func(a, b any) any) *RDD                  { return r }
