package mapiter

func dedupInput(m map[int]bool) []int {
	var out []int
	for k := range m {
		//starklint:ignore mapiter fixture: consumer deduplicates into a set, order immaterial
		out = append(out, k)
	}
	return out
}
