package mapiter

import "sort"

// The engine's collect-then-sort idiom: appending in map order is fine when
// a sort restores a canonical order before the slice is observed.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Integer accumulation commutes; iteration order cannot change the result.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Per-key writes land each key in its own slot regardless of order.
func perKey(m, dst map[int]int) {
	for k, v := range m {
		dst[k] = v
	}
}

// Appends to a slice declared inside the loop are per-iteration scratch.
func localScratch(m map[int][]int) map[int]int {
	counts := make(map[int]int, len(m))
	for k, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		counts[k] = len(tmp)
	}
	return counts
}

// The driver-restart job-resubmission idiom: the surviving job table is a
// map, but replay order is pinned by collecting the ids and sorting before
// any order-sensitive work (re-journaling, resubmission) happens.
func resubmitOrder(jobTab map[int]string, resubmit func(int, string)) {
	ids := make([]int, 0, len(jobTab))
	for id := range jobTab {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		resubmit(id, jobTab[id])
	}
}
