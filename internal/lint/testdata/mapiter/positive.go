package mapiter

func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want mapiter
	}
	return out
}

func sendsResults(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want mapiter
	}
}

// Floating-point addition is not associative: summing in map order changes
// the low bits run to run.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want mapiter
	}
	return sum
}

func concat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want mapiter
	}
	return s
}
