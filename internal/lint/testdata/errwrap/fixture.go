// Package errwrap exercises the typed-error-chain lint: sentinels are
// inferred from package-level Err* error vars, and every re-wrap on a path
// carrying one must keep errors.Is reachability.
package errwrap

import "errors"

var ErrOOM = errors.New("out of memory")

var ErrOverload = errors.New("overloaded")

// fetch returns a sentinel, making its callers carrier paths.
func fetch(ok bool) error {
	if !ok {
		return ErrOOM
	}
	return nil
}
