package errwrap

import "fmt"

// boundary deliberately flattens at a user-facing boundary where typed
// identities must not leak to clients.
func boundary(err error) error {
	//starklint:ignore errwrap fixture: user-facing boundary intentionally seals the chain
	return fmt.Errorf("request failed: %v", err)
}
