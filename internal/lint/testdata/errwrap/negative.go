package errwrap

import "fmt"

// wrapKeep keeps the chain with %w.
func wrapKeep(id int) error {
	return fmt.Errorf("executor %d: %w", id, ErrOOM)
}

// multiKeep wraps two errors; both use %w.
func multiKeep(a, b error) error {
	return fmt.Errorf("join: %w after %w", a, b)
}

// textOnly formats non-error operands: %v and %d are fine there.
func textOnly(id int, msg string) error {
	return fmt.Errorf("executor %d: %v", id, msg)
}

// chainError wraps one error and exposes the chain.
type chainError struct {
	op  string
	err error
}

func (e *chainError) Error() string { return e.op }
func (e *chainError) Unwrap() error { return e.err }

// fanError aggregates several errors and exposes them all via the
// multi-error Unwrap form.
type fanError struct {
	msg  string
	errs []error
	err  error
}

func (e *fanError) Error() string   { return e.msg }
func (e *fanError) Unwrap() []error { return e.errs }
