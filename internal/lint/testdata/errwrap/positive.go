package errwrap

import "fmt"

// wrapFlat flattens a sentinel with %v: errors.Is(err, ErrOOM) breaks.
func wrapFlat(id int) error {
	return fmt.Errorf("executor %d: %v", id, ErrOOM) // want errwrap
}

// rewrapFlat loses the chain of an error received from a carrier path —
// %s is just as fatal as %v.
func rewrapFlat(id int) error {
	if err := fetch(false); err != nil {
		return fmt.Errorf("fetch %d failed: %s", id, err) // want errwrap
	}
	return nil
}

// opaqueError wraps an error field without Unwrap: errors.Is cannot see
// through it to the sentinel inside.
type opaqueError struct { // want errwrap
	op  string
	err error
}

func (e *opaqueError) Error() string { return e.op }
