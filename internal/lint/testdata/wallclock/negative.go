package wallclock

import "time"

// Duration arithmetic, constants, and pure conversions never observe the
// wall clock and stay legal.
func good(d time.Duration) time.Duration {
	step := 42 * time.Millisecond
	epoch := time.Unix(0, 0)
	_ = epoch.Add(step)
	return d + step
}
