package wallclock

import "time"

// Duration arithmetic, constants, and pure conversions never observe the
// wall clock and stay legal.
func good(d time.Duration) time.Duration {
	step := 42 * time.Millisecond
	epoch := time.Unix(0, 0)
	_ = epoch.Add(step)
	return d + step
}

// The driver-restart recovery-delay computation: both endpoints come off the
// virtual clock (passed in as durations), so the subtraction is pure
// duration arithmetic — no wall-clock read anywhere on the replay path.
func recoveryDelay(crashedAt, resumedAt time.Duration) time.Duration {
	return resumedAt - crashedAt
}
