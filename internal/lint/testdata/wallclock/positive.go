package wallclock

import "time"

func bad() time.Duration {
	t0 := time.Now()             // want wallclock
	time.Sleep(time.Millisecond) // want wallclock
	return time.Since(t0)        // want wallclock
}

// Value uses smuggle the clock in through indirection; they are banned too.
var nowFn = time.Now // want wallclock

func ticks() {
	<-time.After(time.Second)       // want wallclock
	_ = time.NewTicker(time.Second) // want wallclock
}
