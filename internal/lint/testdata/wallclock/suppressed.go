package wallclock

import "time"

func timed() int64 {
	t0 := time.Now() //starklint:ignore wallclock fixture: benchmark timing is intentionally wall-clock
	//starklint:ignore wallclock fixture: own-line directive covers the next line
	ns := time.Since(t0).Nanoseconds()
	return ns
}
