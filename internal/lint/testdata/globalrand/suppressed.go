package globalrand

import "math/rand"

func jitter() float64 {
	return rand.Float64() //starklint:ignore globalrand fixture: demo of a reasoned suppression
}
