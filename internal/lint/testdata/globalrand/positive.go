package globalrand

import "math/rand"

func bad(n int) int {
	rand.Seed(42)                      // want globalrand
	x := rand.Intn(n)                  // want globalrand
	f := rand.Float64()                // want globalrand
	rand.Shuffle(n, func(i, j int) {}) // want globalrand
	_ = f
	return x
}
