package globalrand

import "math/rand"

// Seeded generators threaded as values are the sanctioned path: replaying
// the seed replays every draw.
func good(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) {})
	return r.Intn(n)
}
