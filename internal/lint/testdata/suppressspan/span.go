// Package suppressspan is the regression fixture for suppression
// directives attached to multi-line expressions: the directive must cover
// the expression's start line (where analyzers anchor findings) without
// leaking out of the function literal it is written in.
package suppressspan

import "time"

// wrapped reads the wall clock in a call wrapped across two lines; the
// directive trailing the second line must suppress the finding reported at
// the expression's start.
func wrapped() int64 {
	return time.Now().
		Unix() //starklint:ignore wallclock fixture: wrapped expression, directive trails the span
}

// scoped has a directive inside a closure argument: it covers its own
// line inside the closure but must NOT suppress the finding on the
// enclosing call's start line.
func scoped(run func(time.Time, func())) {
	run(time.Now(), func() { // want wallclock
		_ = time.Now //starklint:ignore wallclock fixture: closure-scoped, must not leak outward
	})
}
