// Package hotalloc exercises the hot-path allocation lint. Only functions
// annotated //starklint:hotpath — and everything they reach through the
// call graph — are audited; identical constructs in unannotated code stay
// silent.
package hotalloc

type row struct {
	key int64
	val string
}

func sink(v any) {}

func sinkConcrete(v int64) {}
