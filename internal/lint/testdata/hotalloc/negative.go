package hotalloc

import "strconv"

// groupCold does everything the positive fixture does, unannotated: the
// analyzer must stay silent off the hot path.
func groupCold(rows []row) string {
	seen := make(map[int64]bool)
	var keys []int64
	name := ""
	for _, r := range rows {
		seen[r.key] = true
		keys = append(keys, r.key)
		name += r.val
		sink(r.key)
	}
	return name
}

// sizedHot pre-sizes every buffer and calls only concrete-typed helpers:
// the sanctioned kernel idiom.
//
//starklint:hotpath
func sizedHot(rows []row) []int64 {
	keys := make([]int64, 0, len(rows))
	for _, r := range rows {
		keys = append(keys, r.key)
		sinkConcrete(r.key)
	}
	buf := make([]byte, 0, 16)
	buf = strconv.AppendInt(buf, int64(len(rows)), 10)
	_ = len(buf)
	return keys
}
