package hotalloc

import "fmt"

// groupHot is a hot-path kernel root: every allocation-inducing construct
// in it must flag.
//
//starklint:hotpath
func groupHot(rows []row) int64 {
	var total int64
	for _, r := range rows {
		sink(r.key) // want hotalloc
		total += r.key
	}
	seen := make(map[int64]bool, len(rows)) // want hotalloc
	for _, r := range rows {
		seen[r.key] = true
	}
	var keys []int64
	for _, r := range rows {
		keys = append(keys, r.key) // want hotalloc
	}
	_ = len(keys)
	_ = len(seen)
	return total
}

// labelHot builds strings the expensive way.
//
//starklint:hotpath
func labelHot(rows []row) string {
	name := ""
	for _, r := range rows {
		name += r.val // want hotalloc
	}
	_ = name
	return fmt.Sprintf("batch-%d", len(rows)) // want hotalloc
}

// helper is NOT annotated, but reachHot pulls it into the audited closure:
// its per-call slice literal flags where it allocates.
func helper(n int) []int {
	pair := []int{n, n + 1} // want hotalloc
	return pair
}

//starklint:hotpath
func reachHot(n int) []int { return helper(n) }
