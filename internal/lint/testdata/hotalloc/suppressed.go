package hotalloc

import "sort"

// sortHot mirrors the counting-sort kernels' sparse fallback: sort.Slice
// boxes the slice into an interface, tolerated off the common path.
//
//starklint:hotpath
func sortHot(keys []int64) {
	//starklint:ignore hotalloc fixture: sparse fallback path, boxing is off the common path
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}
