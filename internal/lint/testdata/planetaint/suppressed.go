package planetaint

// contractRead models the PrepareShuffleReads contract in the real store:
// the lazy rebuild is forced on the event loop before parallel dispatch,
// so the worker-side call is read-only at runtime.
func (px *planeCtx) contractRead(id int) []int {
	//starklint:ignore planetaint fixture: rebuild is forced before parallel dispatch by contract
	return px.e.store.ReadReduce(id)
}
