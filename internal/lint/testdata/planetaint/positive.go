package planetaint

// runPlane is a data-plane root by name: unguarded stores through the
// engine and calls to inferred mutators must flag.
func runPlane(px *planeCtx, t *task) {
	t.count++
	px.hits++
	px.e.stats.CacheMisses++ // want planetaint
	px.e.cl.CachePut(1)      // want planetaint
}

// cacheHit hides the mutation behind one call hop into a helper whose
// signature carries no plane marker.
func (px *planeCtx) cacheHit(id int) {
	noteHit(px.e) // want planetaint
}

// reduceInput reaches the mutation two hops away (ReadReduce -> rebuild):
// the retired one-hop planesafety analyzer missed exactly this shape.
func (px *planeCtx) reduceInput(id int) []int {
	return px.e.store.ReadReduce(id) // want planetaint
}

// putUnguarded models deleting the px.immediate guard from a buffered
// side-effect helper: the now-raw mutator call must flag.
func (px *planeCtx) putUnguarded(id int) {
	px.e.cl.CachePut(id) // want planetaint
}
