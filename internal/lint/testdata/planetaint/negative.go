package planetaint

// cachePut buffers when parallel and applies synchronously only under the
// immediate guard — the sanctioned pattern; nothing flags.
func (px *planeCtx) cachePut(id int) {
	if px.immediate {
		px.e.cl.CachePut(id)
		px.e.stats.CacheHits++
		return
	}
	px.drops = append(px.drops, id)
}

// peek performs pure reads through control-plane state: reads never flag.
func (px *planeCtx) peek(id int) bool {
	return px.e.cl.CachePeek(id) && px.e.store.Blocks(id) > 0
}

// accumulate mutates only plane-local state (the task being executed and
// the overlay itself).
func (px *planeCtx) accumulate(t *task, vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	t.count = sum
	px.hits++
	return sum
}

// drainBatch runs on the event loop — not a planeCtx method, no planeCtx
// parameter — so control-plane stores are its job.
func (e *Engine) drainBatch(id int) {
	e.stats.CacheMisses++
	e.cl.CachePut(id)
	noteHit(e)
}
