// Package planetaint models the two-clock engine shape for the
// interprocedural plane-isolation fixture: an Engine holding cluster,
// store, and stats state, and a planeCtx overlay whose methods run on
// worker goroutines unless guarded by px.immediate. Under the fixture's
// permissive policy every named type here counts as control-plane state
// except the plane-local overlay types (planeCtx, task).
package planetaint

type Stats struct{ CacheHits, CacheMisses int64 }

type Cluster struct{ recency []int }

// CachePut mutates LRU recency — a control-plane effect inferred from its
// store, with no manual mutator registration.
func (c *Cluster) CachePut(id int) { c.recency = append(c.recency, id) }

// CachePeek is a pure read.
func (c *Cluster) CachePeek(id int) bool { return len(c.recency) > 0 && c.recency[0] == id }

type index struct{ byReduce map[int][]int }

func (ix *index) rebuild(n int) {
	ix.byReduce = make(map[int][]int, n)
}

type Store struct {
	ix    index
	dirty bool
	n     int
}

// ReadReduce looks pure but lazily rebuilds the index: a transitive
// control-plane mutation two hops deep.
func (s *Store) ReadReduce(id int) []int {
	if s.dirty {
		s.ix.rebuild(s.n)
	}
	return s.ix.byReduce[id]
}

// Blocks is a pure read.
func (s *Store) Blocks(id int) int { return s.n }

type Engine struct {
	cl    *Cluster
	store *Store
	stats Stats
}

// noteHit is a control-plane helper with no plane marker in its signature;
// data-plane callers are caught through the call graph.
func noteHit(e *Engine) { e.stats.CacheHits++ }

type task struct{ count int }

type planeCtx struct {
	e         *Engine
	immediate bool
	hits      int64
	drops     []int
}
