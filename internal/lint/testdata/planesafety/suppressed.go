package planesafety

func (px *planeCtx) traced() {
	//starklint:ignore planesafety fixture: trace sink here is lock-free and order-insensitive
	px.e.trace("y")
}
