// Package planesafety models the two-clock engine shape the analyzer keys
// on: an Engine holding cluster/storage/stats state, and a planeCtx whose
// methods (and any function threading a *planeCtx) form the data plane.
package planesafety

type Stats struct{ CacheHits int64 }

type Cluster struct{}

func (c *Cluster) CachePut(id int)  {}
func (c *Cluster) CacheGet(id int)  {}
func (c *Cluster) CachePeek(id int) {}

type Engine struct {
	cl    *Cluster
	stats Stats
}

func (e *Engine) wakeTasks(id int) {}
func (e *Engine) trace(msg string) {}
func (e *Engine) schedule()        {}

type planeCtx struct {
	e         *Engine
	immediate bool
	hits      int64
}
