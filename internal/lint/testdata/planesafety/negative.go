package planesafety

// The immediate-mode guard is the one sanctioned synchronous path: it only
// runs on the event-loop goroutine.
func (px *planeCtx) putGood(id int) {
	if px.immediate {
		px.e.cl.CachePut(id)
		px.e.stats.CacheHits++
		px.e.wakeTasks(id)
		return
	}
	px.hits++
}

// Read-side accessors are legal from the data plane.
func (px *planeCtx) peek(id int) {
	px.e.cl.CachePeek(id)
}

// Control-plane code (no planeCtx in sight) mutates freely.
func (e *Engine) join(id int) {
	e.cl.CachePut(id)
	e.stats.CacheHits++
	e.schedule()
}
