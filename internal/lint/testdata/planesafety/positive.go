package planesafety

// A planeCtx method mutating control-plane state directly: every one of
// these must buffer in the context and replay at join.
func (px *planeCtx) putBad(id int) {
	px.e.cl.CachePut(id)   // want planesafety
	px.e.stats.CacheHits++ // want planesafety
	px.e.wakeTasks(id)     // want planesafety
}

// runPlane is data-plane by name even where the context arrives indirectly.
func runPlane(e *Engine, id int) {
	e.cl.CacheGet(id) // want planesafety
	e.schedule()      // want planesafety
}

// Threading a *planeCtx parameter marks a helper as data-plane.
func helper(px *planeCtx) {
	px.e.trace("x") // want planesafety
}
