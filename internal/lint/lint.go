// Package lint implements starklint, the repo's custom static-analysis
// suite. It enforces at build time the determinism, purity, and
// plane-isolation contracts that the engine's runtime oracles (the
// parallelism-1-vs-N byte-equality tests, STARK_CHECK_COW fingerprinting,
// the chaos harness, the bench_budget.json allocs/op gate) can only check
// after the fact: no wall-clock reads in deterministic packages, no global
// math/rand state, no order-dependent iteration over maps in scheduling
// paths, no mutation of copy-on-write record slices inside transform
// closures.
//
// On top of the per-package analyzers, three interprocedural analyzers run
// over a module-wide static call graph (see callgraph.go and DESIGN.md
// section 16): planetaint flags data-plane code transitively reaching a
// control-plane mutation outside the px.immediate guard, hotalloc flags
// allocation-inducing constructs reachable from //starklint:hotpath
// kernels, and errwrap flags error wrapping that severs errors.Is/Unwrap
// reachability of the typed sentinels.
//
// The suite is built on the standard library only (go/parser + go/types,
// with export data served from the build cache via `go list -export`), so
// it adds no module dependencies. Findings are suppressed in-source with
//
//	//starklint:ignore <analyzer> <reason>
//
// on the offending line, the line directly above it, or the start line of
// the multi-line expression the directive trails; the reason is mandatory.
// See DESIGN.md section 11 for the invariant-to-analyzer map.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// MarshalJSON encodes the finding in the stable shape cmd/starklint -json
// emits (one object per finding): file, line, col, analyzer, message.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
}

// Analyzer is one named check. Run inspects the package held by the pass
// and reports findings through pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Config   *Config

	Path  string // import path of the package under analysis
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the per-package starklint suite in stable order. The
// interprocedural analyzers live in ModuleAnalyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalrandAnalyzer,
		MapiterAnalyzer,
		CowpurityAnalyzer,
	}
}

// knownAnalyzer reports whether name is a member of the suite — per-package
// or module-wide (used to validate suppression directives).
func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	for _, a := range ModuleAnalyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Run executes the given analyzers over one loaded package, applies
// in-source suppression directives, and returns the surviving diagnostics
// sorted by position. Malformed directives (missing reason, unknown
// analyzer) surface as diagnostics under the reserved analyzer name
// "starklint" and cannot be suppressed.
func Run(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Config:   cfg,
			Path:     pkg.ImportPath,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Types:    pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup, bad := collectSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppresses(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sortDiagnostics(kept)
	return kept
}
