package lint

import (
	"go/ast"
	"go/types"
)

// planeMutators names the methods that mutate control-plane, cluster,
// scheduler or storage state. Data-plane code must never call them
// directly: every such effect buffers in the planeCtx (cache-op log, drop
// log, stat deltas) and replays at join time in dispatch order, so results
// stay byte-identical at parallelism 1 vs N. Read-side accessors
// (CachePeek, ReadReduce, ReadCheckpoint, cfg lookups) stay legal.
var planeMutators = map[string]bool{
	// engine control plane
	"onEvictions": true, "wakeTasks": true, "recUpdate": true, "trace": true,
	"schedule": true, "drainBatch": true, "taskDone": true, "releaseSlot": true,
	"resubmitLostTasks": true, "declareDead": true,
	// cluster / executor cache (CacheGet mutates LRU recency)
	"CachePut": true, "CachePutChecked": true, "CacheGet": true,
	"Kill": true, "Restart": true,
	// eviction policy and memory-pressure state: policy swaps, capacity
	// shrinks, OOM arming, and the DAG refcount table are control-plane
	// decisions; a worker goroutine touching them would race the planner
	"SetPolicy": true, "SetShrink": true, "SetMemPressure": true,
	"SetOOMWindow": true, "Charge": true, "Release": true, "ResetRefs": true,
	// engine-side cache-policy bookkeeping (refcount charges, eviction
	// provenance, refusal counters)
	"cacheUpdate": true, "noteEvicted": true, "countRefusal": true,
	"chargeStage": true, "releaseStage": true, "installCachePolicy": true,
	// persistent storage
	"DropCheckpoint": true, "DropMapOutput": true,
	"WriteMapOutput": true, "WriteCheckpoint": true,
	// virtual clock: scheduling events from a worker goroutine races the loop
	"After": true, "Run": true,
}

// planeStateTypes names the control-plane state holders; a call or store
// whose receiver chain passes through one of these from inside data-plane
// code is a plane-isolation escape.
var planeStateTypes = map[string]bool{
	"Engine": true, "Cluster": true, "Store": true, "Loop": true, "Injector": true,
}

// PlanesafetyAnalyzer enforces the two-clock plane isolation introduced in
// DESIGN.md section 10. A function belongs to the data plane when it has a
// *planeCtx receiver or parameter (or is runPlane itself, which unpacks the
// batch entry); such functions may run on worker goroutines, so any direct
// mutation of engine/cluster/scheduler/storage state — a planeMutators call
// rooted at control-plane state, or a bare assignment through it — breaks
// both determinism and memory safety. The one legal escape is the
// synchronous path guarded by `if px.immediate { ... }`, which only runs on
// the event-loop goroutine; statements inside that guard are exempt.
var PlanesafetyAnalyzer = &Analyzer{
	Name: "planesafety",
	Doc:  "flags data-plane code mutating control-plane state outside the buffered side-effect context",
	Run:  runPlanesafety,
}

func runPlanesafety(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.isDataPlaneFunc(fd) {
				continue
			}
			pass.checkPlaneFunc(fd)
		}
	}
}

// isDataPlaneFunc reports whether fd is data-plane code: a planeCtx method,
// a function threading a *planeCtx parameter, or runPlane (which receives
// the context inside its batch entry).
func (pass *Pass) isDataPlaneFunc(fd *ast.FuncDecl) bool {
	if fd.Name.Name == "runPlane" {
		return true
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if namedTypeName(pass.Info.TypeOf(field.Type)) == "planeCtx" {
				return true
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		if namedTypeName(pass.Info.TypeOf(field.Type)) == "planeCtx" {
			return true
		}
	}
	return false
}

func (pass *Pass) checkPlaneFunc(fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok || !planeMutators[sel.Sel.Name] {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if !pass.chainTouchesPlaneState(sel) || inImmediateGuard(pass, stack, n) {
				return true
			}
			pass.Reportf(st.Pos(), "data-plane code calls %s.%s, mutating control-plane state; buffer the effect in the planeCtx and replay it at join",
				exprString(sel.X), sel.Sel.Name)
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				pass.checkPlaneStore(lhs, stack, n)
			}
		case *ast.IncDecStmt:
			pass.checkPlaneStore(st.X, stack, n)
		}
		return true
	})
}

// checkPlaneStore flags an assignment whose destination chain passes
// through control-plane state (e.g. px.e.stats.CacheHits++).
func (pass *Pass) checkPlaneStore(lhs ast.Expr, stack []ast.Node, n ast.Node) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		if ix, okIx := ast.Unparen(lhs).(*ast.IndexExpr); okIx {
			if s, okSel := ast.Unparen(ix.X).(*ast.SelectorExpr); okSel {
				sel = s
			} else {
				return
			}
		} else {
			return
		}
	}
	if !pass.chainTouchesPlaneState(sel) || inImmediateGuard(pass, stack, n) {
		return
	}
	pass.Reportf(lhs.Pos(), "data-plane code writes %s through control-plane state; buffer the effect in the planeCtx and replay it at join", exprString(lhs))
}

// chainTouchesPlaneState reports whether any sub-expression of the selector
// chain (receiver side) has a control-plane state type — px.e, px.e.cl,
// e.store, be.px.e and so on.
func (pass *Pass) chainTouchesPlaneState(sel *ast.SelectorExpr) bool {
	for e := ast.Expr(sel.X); ; {
		if planeStateTypes[namedTypeName(pass.Info.TypeOf(e))] {
			return true
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			// e.cl.Executor(exec).Store: step through the call to its receiver.
			if s, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = s.X
				continue
			}
			return false
		default:
			return false
		}
	}
}

// inImmediateGuard reports whether n sits inside the then-branch of an
// `if <planeCtx>.immediate { ... }` statement — the synchronous path that
// only executes on the event-loop goroutine.
func inImmediateGuard(pass *Pass, stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ast.Unparen(ifStmt.Cond).(*ast.SelectorExpr)
		if !ok || cond.Sel.Name != "immediate" {
			continue
		}
		if namedTypeName(pass.Info.TypeOf(cond.X)) != "planeCtx" {
			continue
		}
		// Must be in the then-branch, not the else.
		if n.Pos() >= ifStmt.Body.Pos() && n.Pos() < ifStmt.Body.End() {
			return true
		}
	}
	return false
}
