package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer is the static twin of the bench_budget.json allocs/op
// gate. Kernels annotated with //starklint:hotpath in their doc comment
// (the PR-7 columnar path: GroupByKeySorted, JoinRecords, FromRecords,
// PartitionStable, WriteMapOutputBatch, ReadReduce) and everything they
// reach through the call graph must avoid allocation-inducing constructs:
//
//   - interface boxing at call sites (a concrete value passed to an
//     interface parameter escapes to the heap);
//   - per-call map/slice composite literals and make(map)/make(chan);
//   - append growth from a nil/empty slice (no pre-sized capacity);
//   - fmt.Sprintf/Sprint/Sprintln and non-constant string concatenation.
//
// make([]T, n[, c]) is deliberately NOT flagged: explicit pre-sizing is the
// kernels' own idiom, and the runtime budget catches an oversized one.
// Arguments to fmt/errors functions are exempt from the boxing check —
// error construction is off the success path the budget measures.
var HotallocAnalyzer = &ModuleAnalyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs reachable from //starklint:hotpath kernels",
	Run:  runHotalloc,
}

func runHotalloc(p *ModulePass) {
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] || n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
			return
		}
		seen[n] = true
		checkHotBody(p, n)
		for _, e := range n.Out {
			visit(e.Callee)
		}
	}
	for _, n := range p.Graph.Nodes() {
		if n.Decl != nil && hotpathAnnotated(n.Decl) {
			visit(n)
		}
	}
}

func checkHotBody(p *ModulePass, n *Node) {
	info := n.Pkg.Info
	empty := emptySliceVars(info, n.Decl.Body)
	walkStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
		switch x := node.(type) {
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(x.Pos(), "per-call map literal allocates on the hot path; hoist it or reuse scratch state")
			case *types.Slice:
				if len(x.Elts) > 0 {
					p.Reportf(x.Pos(), "per-call slice literal allocates on the hot path; hoist it or reuse scratch state")
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, info, x)
		case *ast.BinaryExpr:
			if x.Op != token.ADD || !isStringType(info.TypeOf(x)) {
				return true
			}
			if tv, ok := info.Types[ast.Expr(x)]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			// Flag the outermost + of a concatenation chain only.
			if len(stack) > 0 {
				if parent, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && parent.Op == token.ADD && isStringType(info.TypeOf(parent)) {
					return true
				}
			}
			p.Reportf(x.Pos(), "string concatenation allocates on the hot path; use a reused strings.Builder or byte slab")
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				p.Reportf(x.Pos(), "string concatenation allocates on the hot path; use a reused strings.Builder or byte slab")
			}
			checkHotAppend(p, info, x, empty)
		}
		return true
	})
}

// checkHotCall flags make(map)/make(chan), the allocating fmt helpers, and
// interface boxing of concrete arguments at statically resolved call sites.
func checkHotCall(p *ModulePass, info *types.Info, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" && len(call.Args) > 0 {
			t := info.TypeOf(call.Args[0])
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(call.Pos(), "make(map) allocates on the hot path; reuse a cleared map or arena-backed table")
			case *types.Chan:
				p.Reportf(call.Pos(), "make(chan) allocates on the hot path; channels do not belong in kernels")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			p.Reportf(call.Pos(), "fmt.%s allocates its result on the hot path; use strconv or a reused builder", fn.Name())
		}
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "errors" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTypeParam := types.Unalias(pt).(*types.TypeParam); isTypeParam {
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue // untyped nil / constants
		}
		p.Reportf(arg.Pos(), "passing %s boxes a %s into an interface on the hot path; use a concrete-typed helper", exprString(arg), at.String())
	}
}

// checkHotAppend flags `x = append(x, ...)` where x was declared as a nil
// or zero-capacity slice in the same body: every growth reallocates.
func checkHotAppend(p *ModulePass, info *types.Info, as *ast.AssignStmt, empty map[types.Object]bool) {
	if len(empty) == 0 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[dst]
	if obj == nil || !empty[obj] {
		return
	}
	p.Reportf(call.Pos(), "append grows %s from an empty slice on the hot path; preallocate with make and a capacity", dst.Name)
}

// emptySliceVars collects slice variables declared with no backing array:
// `var x []T`, `x := []T{}`, or `x := make([]T, 0)` with no capacity.
func emptySliceVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	empty := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				empty[obj] = true
			}
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEmptySliceExpr(info, x.Rhs[i]) {
					continue
				}
				mark(id)
			}
		}
		return true
	})
	return empty
}

func isEmptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		t := info.TypeOf(x)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Slice); ok {
			return len(x.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(x.Args) != 2 {
			return false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		t := info.TypeOf(x.Args[0])
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Slice); !ok {
			return false
		}
		tv, ok := info.Types[x.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
