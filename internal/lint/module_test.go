package lint_test

import (
	"go/ast"
	"go/parser"
	"path/filepath"
	"strings"
	"testing"

	"stark/internal/lint"
)

// TestModuleAnalyzerFixtures runs the interprocedural suite over each
// module analyzer's golden fixture package: positives must fire, negatives
// must stay silent, suppressed sites must be silenced by their directives.
func TestModuleAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.ModuleAnalyzers() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, filepath.Join("testdata", a.Name), "fixture/"+a.Name)
			diags := lint.RunModule([]*lint.Package{pkg}, lint.PermissiveConfig(), lint.ModuleAnalyzers())
			want := wantedFindings(pkg)
			if len(want) == 0 {
				t.Fatalf("fixture for %s declares no expected findings", a.Name)
			}
			fired := false
			for _, w := range want {
				if strings.HasSuffix(w, ":"+a.Name) {
					fired = true
				}
			}
			if !fired {
				t.Fatalf("fixture for %s expects no findings from its own analyzer", a.Name)
			}
			diffFindings(t, want, gotFindings(diags), diags)
		})
	}
}

// TestSuppressionSpansMultiLineExpr pins the directive-matching fix: a
// directive trailing part of a wrapped expression suppresses the finding
// at the expression's start line, but a directive inside a closure must
// not leak to the enclosing call.
func TestSuppressionSpansMultiLineExpr(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "suppressspan"), "fixture/suppressspan")
	diags := lint.Run(pkg, lint.PermissiveConfig(), lint.Analyzers())
	want := wantedFindings(pkg)
	diffFindings(t, want, gotFindings(diags), diags)
}

// checkModuleSource type-checks an in-memory file as the given import path
// and runs the interprocedural suite under the repo's DefaultConfig.
func checkModuleSource(t *testing.T, path, src string) []lint.Diagnostic {
	t.Helper()
	fset, imp := fixtureImporter(t)
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.Check(fset, path, []*ast.File{f}, imp)
	if err != nil {
		t.Fatal(err)
	}
	return lint.RunModule([]*lint.Package{pkg}, lint.DefaultConfig(), lint.ModuleAnalyzers())
}

// TestSeededGuardDeletionInEngine pins the acceptance criterion: deleting
// the px.immediate guard from a buffered side-effect site in
// stark/internal/engine must fail the lint under the default policy, and
// the guarded twin must pass with zero findings and zero suppressions.
func TestSeededGuardDeletionInEngine(t *testing.T) {
	const unguarded = `package engine

type Cluster struct{ recency []int }

func (c *Cluster) CachePut(id int) { c.recency = append(c.recency, id) }

type Engine struct{ cl *Cluster }

type planeCtx struct {
	e         *Engine
	immediate bool
	ops       []int
}

// cachePut lost its px.immediate guard: the raw mutator call must flag.
func (px *planeCtx) cachePut(id int) {
	px.e.cl.CachePut(id)
}
`
	diags := checkModuleSource(t, "stark/internal/engine", unguarded)
	if len(diags) != 1 || diags[0].Analyzer != "planetaint" {
		t.Fatalf("want exactly one planetaint finding for the deleted guard, got %v", diags)
	}

	const guarded = `package engine

type Cluster struct{ recency []int }

func (c *Cluster) CachePut(id int) { c.recency = append(c.recency, id) }

type Engine struct{ cl *Cluster }

type planeCtx struct {
	e         *Engine
	immediate bool
	ops       []int
}

// cachePut buffers in parallel and applies synchronously under the guard.
func (px *planeCtx) cachePut(id int) {
	if px.immediate {
		px.e.cl.CachePut(id)
		return
	}
	px.ops = append(px.ops, id)
}
`
	if diags := checkModuleSource(t, "stark/internal/engine", guarded); len(diags) != 0 {
		t.Fatalf("guarded buffered side effect must lint clean, got %v", diags)
	}
}

// TestSeededSentinelFlattenInEngine pins the second acceptance criterion:
// re-wrapping a typed sentinel with %v instead of %w in the engine scope
// must fail the lint, with the lost sentinel named in the message.
func TestSeededSentinelFlattenInEngine(t *testing.T) {
	const src = `package engine

import (
	"errors"
	"fmt"
)

var ErrOOM = errors.New("engine: out of cache memory")

func admit(ok bool) error {
	if !ok {
		return ErrOOM
	}
	return nil
}

func wrapStep(id int) error {
	if err := admit(false); err != nil {
		return fmt.Errorf("step %d: %v", id, err)
	}
	return nil
}
`
	diags := checkModuleSource(t, "stark/internal/engine", src)
	if len(diags) != 1 || diags[0].Analyzer != "errwrap" {
		t.Fatalf("want exactly one errwrap finding for the %%v flatten, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "ErrOOM") {
		t.Fatalf("finding must name the sentinel whose identity is lost, got: %s", diags[0].Message)
	}

	const fixed = `package engine

import (
	"errors"
	"fmt"
)

var ErrOOM = errors.New("engine: out of cache memory")

func admit(ok bool) error {
	if !ok {
		return ErrOOM
	}
	return nil
}

func wrapStep(id int) error {
	if err := admit(false); err != nil {
		return fmt.Errorf("step %d: %w", id, err)
	}
	return nil
}
`
	if diags := checkModuleSource(t, "stark/internal/engine", fixed); len(diags) != 0 {
		t.Fatalf("%%w wrapping must lint clean, got %v", diags)
	}
}
