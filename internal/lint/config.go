package lint

import "strings"

// Config is the per-repo policy: which packages each analyzer binds to.
// Analyzers consult it through the Pass so fixture tests can run with a
// permissive policy while cmd/starklint runs the Stark defaults.
type Config struct {
	// DeterministicPkg reports whether a package must be free of wall-clock
	// reads and global randomness. The intentional exceptions (bench timing
	// in internal/experiments and cmd/starkbench) are NOT carved out here —
	// they carry //starklint:ignore directives in-source, so the allowlist
	// is visible where the clock is read.
	DeterministicPkg func(path string) bool

	// OrderedPkg reports whether a package holds order-sensitive scheduling
	// or grouping state, binding the mapiter analyzer: engine, sched, group,
	// partition, session.
	OrderedPkg func(path string) bool
}

// DefaultConfig returns the Stark repo policy.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkg: func(path string) bool {
			// The whole module is deterministic by contract: the public API,
			// every internal package, the CLIs and the examples all replay
			// against the virtual clock. Wall-clock measurement sites opt out
			// individually with reasoned in-source suppressions.
			return path == "stark" || strings.HasPrefix(path, "stark/")
		},
		OrderedPkg: func(path string) bool {
			switch path {
			case "stark/internal/engine", "stark/internal/sched",
				"stark/internal/group", "stark/internal/partition",
				"stark/internal/session":
				return true
			}
			return false
		},
	}
}

// PermissiveConfig binds every analyzer to every package; fixture tests use
// it so scope policy cannot mask an analyzer bug.
func PermissiveConfig() *Config {
	all := func(string) bool { return true }
	return &Config{DeterministicPkg: all, OrderedPkg: all}
}
