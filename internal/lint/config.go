package lint

import "strings"

// Config is the per-repo policy: which packages each analyzer binds to.
// Analyzers consult it through the Pass so fixture tests can run with a
// permissive policy while cmd/starklint runs the Stark defaults.
type Config struct {
	// DeterministicPkg reports whether a package must be free of wall-clock
	// reads and global randomness. The intentional exceptions (bench timing
	// in internal/experiments and cmd/starkbench) are NOT carved out here —
	// they carry //starklint:ignore directives in-source, so the allowlist
	// is visible where the clock is read.
	DeterministicPkg func(path string) bool

	// OrderedPkg reports whether a package holds order-sensitive scheduling
	// or grouping state, binding the mapiter analyzer: engine, sched, group,
	// partition, session.
	OrderedPkg func(path string) bool

	// ControlPlanePkg reports whether a package's named types count as
	// control-plane state for planetaint. A function is inferred to be a
	// mutator when it stores through a pointer to a named type declared in a
	// control-plane package (or to a package-level var there) — no manual
	// mutator registration. Kernel packages (record, arena, partition, ...)
	// are excluded: their types are plane-owned working state.
	ControlPlanePkg func(path string) bool

	// PlaneLocalTypes names engine types that, despite living in a
	// control-plane package, are owned by exactly one plane execution and
	// are therefore safe to mutate from worker goroutines: the planeCtx
	// overlay itself, the batch entry and task being executed, and the
	// per-plane cost accumulator.
	PlaneLocalTypes map[string]bool
}

// DefaultConfig returns the Stark repo policy.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkg: func(path string) bool {
			// The whole module is deterministic by contract: the public API,
			// every internal package, the CLIs and the examples all replay
			// against the virtual clock. Wall-clock measurement sites opt out
			// individually with reasoned in-source suppressions.
			return path == "stark" || strings.HasPrefix(path, "stark/")
		},
		OrderedPkg: func(path string) bool {
			switch path {
			case "stark/internal/engine", "stark/internal/sched",
				"stark/internal/group", "stark/internal/partition",
				"stark/internal/session":
				return true
			}
			return false
		},
		ControlPlanePkg: defaultControlPlanePkg,
		PlaneLocalTypes: defaultPlaneLocalTypes(),
	}
}

// defaultControlPlanePkg lists the packages whose types are control-plane
// state: mutating them from a worker goroutine races the event loop and
// breaks the parallelism-1-vs-N identity. Deliberately absent: record,
// arena, partition, rdd, zorder, and the workload/analytics packages —
// those hold plane-owned or immutable working data that kernels mutate by
// design.
func defaultControlPlanePkg(path string) bool {
	switch path {
	case "stark",
		"stark/internal/engine",
		"stark/internal/cluster",
		"stark/internal/storage",
		"stark/internal/sched",
		"stark/internal/group",
		"stark/internal/vtime",
		"stark/internal/fault",
		"stark/internal/journal",
		"stark/internal/net",
		"stark/internal/session",
		"stark/internal/metrics",
		"stark/internal/locality",
		"stark/internal/replication",
		"stark/internal/checkpoint":
		return true
	}
	return false
}

// defaultPlaneLocalTypes returns the engine types exempt from planetaint's
// control-plane store detection because a single plane execution owns them.
func defaultPlaneLocalTypes() map[string]bool {
	return map[string]bool{
		"planeCtx":   true,
		"batchEntry": true,
		"task":       true,
		"costAcc":    true,
	}
}

// PermissiveConfig binds every analyzer to every package; fixture tests use
// it so scope policy cannot mask an analyzer bug.
func PermissiveConfig() *Config {
	all := func(string) bool { return true }
	return &Config{
		DeterministicPkg: all,
		OrderedPkg:       all,
		ControlPlanePkg:  all,
		PlaneLocalTypes:  defaultPlaneLocalTypes(),
	}
}
