package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data recorded in the
// build cache, located via `go list -deps -export`. Building on the gc
// importer keeps the loader dependency-free: the same toolchain that built
// the cache serves the type information.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("starklint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewRepoImporter builds a types.Importer that can resolve every package the
// module (rooted at dir) depends on, plus the extra import paths listed.
// Fixture tests use it to type-check testdata packages that import real repo
// packages such as stark/internal/record.
func NewRepoImporter(fset *token.FileSet, dir string, extra ...string) (types.Importer, error) {
	args := append([]string{"-deps", "-export", "-json=Dir,ImportPath,Export,GoFiles,Standard", "./..."}, extra...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exportImporter(fset, exports), nil
}

// Load lists the packages matching the go-list patterns under dir, parses
// their non-test Go files, and type-checks them against build-cache export
// data. Test files are excluded by design: the determinism contracts bind
// shipped code, while tests legitimately use wall time and ad-hoc
// randomness to drive oracles. A package that fails to type-check aborts
// the load — linting an uncompilable tree would only produce noise.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=Dir,ImportPath,Export,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, append([]string{"-json=Dir,ImportPath,Export,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("starklint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("starklint: type-check %s: %w", t.ImportPath, err)
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// Check type-checks already-parsed files as a package with the given import
// path and wraps the result for analysis. The import path matters: scope
// policies (which packages must stay wall-clock-free, which have ordered
// scheduling state) key on it.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
