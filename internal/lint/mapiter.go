package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapiterAnalyzer enforces ordered use of map iteration in the scheduling
// packages (engine, sched, group, partition). Go randomizes map range
// order per run, so a loop that appends to a slice, sends on a channel, or
// accumulates order-sensitive values (string concat, floating-point sums)
// straight out of a map range produces different orderings run to run —
// exactly the class of bug that only surfaces as a flaky parallelism-1-vs-N
// diff. Appends are redeemed by a sort.* / slices.* call on the destination
// later in the same function (the collect-then-sort idiom used throughout
// the engine); sends and order-sensitive accumulation are flagged outright.
// Per-key writes (m2[k] = v) and commutative integer accumulation stay
// legal: they are order-independent.
var MapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map-range loops that feed ordered state without an intervening sort",
	Run:  runMapiter,
}

func runMapiter(pass *Pass) {
	if !pass.Config.OrderedPkg(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.checkMapRange(rs, enclosingFuncBody(stack))
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the ancestor stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func (pass *Pass) checkMapRange(rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	declaredInLoop := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "send inside map-range loop publishes results in nondeterministic map order")
		case *ast.AssignStmt:
			if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass.Info, call) {
						continue
					}
					id, ok := st.Lhs[i].(*ast.Ident)
					if !ok {
						continue // keyed appends (m[k] = append(m[k], ...)) commute per key
					}
					obj := pass.Info.Uses[id]
					if obj == nil {
						obj = pass.Info.Defs[id]
					}
					if obj == nil || declaredInLoop(obj) {
						continue
					}
					if sortedAfter(pass.Info, fnBody, rs.End(), obj) {
						continue
					}
					pass.Reportf(st.Pos(), "append to %s inside map-range loop without a following sort; map order is nondeterministic", id.Name)
				}
				return true
			}
			// Compound assignment: order-sensitive accumulators only.
			if len(st.Lhs) == 1 && orderSensitiveAccum(pass.Info, st.Tok, st.Lhs[0]) {
				obj := rootObject(pass.Info, st.Lhs[0])
				if obj != nil && !declaredInLoop(obj) {
					pass.Reportf(st.Pos(), "order-sensitive accumulation into %s inside map-range loop (%s on %s)",
						exprString(st.Lhs[0]), st.Tok, pass.Info.TypeOf(st.Lhs[0]))
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderSensitiveAccum reports whether tok applied to lhs accumulates in an
// order-dependent way: string concatenation, or floating-point arithmetic
// (addition is not associative in floats, so map order changes the bits).
func orderSensitiveAccum(info *types.Info, tok token.Token, lhs ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch {
	case basic.Info()&types.IsString != 0:
		return tok == token.ADD_ASSIGN
	case basic.Info()&(types.IsFloat|types.IsComplex) != 0:
		return true
	}
	return false
}

// sortedAfter reports whether some sort.* or slices.* call lexically after
// pos in fnBody mentions obj in its arguments — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
