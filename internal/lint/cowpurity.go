package lint

import (
	"go/ast"
	"go/types"
)

// cowTransforms names the dataset transforms whose closures execute inside
// the data plane against copy-on-write record slices.
var cowTransforms = map[string]bool{
	"Map": true, "MapValues": true, "FlatMap": true, "Filter": true,
	"ReduceByKey": true, "MapPartitions": true,
}

// CowpurityAnalyzer is the static twin of STARK_CHECK_COW=1. Since PR 3 the
// engine passes sources, cached partitions and collect staging by reference
// — transform closures see the canonical copy, not a defensive clone. The
// purity contract therefore forbids a closure passed to Map/FlatMap/Filter/
// ReduceByKey/MapPartitions from writing into the records it receives:
// field stores on a record.Record parameter, element assignment into a
// []record.Record parameter, taking an element's address, or appending to
// the parameter slice (which writes into shared backing capacity). Build
// new records (record.Pair / struct literals) instead. The runtime oracle
// only catches a mutation when a fingerprinted slice is re-verified; this
// catches the write at compile time.
var CowpurityAnalyzer = &Analyzer{
	Name: "cowpurity",
	Doc:  "flags mutation of copy-on-write record slices inside transform closures",
	Run:  runCowpurity,
}

func runCowpurity(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !cowTransforms[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			switch namedTypeName(sig.Recv().Type()) {
			case "RDD", "Graph":
			default:
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					pass.checkTransformClosure(fn.Name(), lit)
				}
			}
			return true
		})
	}
}

func (pass *Pass) checkTransformClosure(transform string, lit *ast.FuncLit) {
	params := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	rootedAtParam := func(e ast.Expr) bool {
		obj := rootObject(pass.Info, e)
		return obj != nil && params[obj]
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				pass.checkCowWrite(transform, lhs, rootedAtParam)
			}
		case *ast.IncDecStmt:
			pass.checkCowWrite(transform, st.X, rootedAtParam)
		case *ast.UnaryExpr:
			if st.Op.String() == "&" {
				if ix, ok := ast.Unparen(st.X).(*ast.IndexExpr); ok &&
					isRecordSlice(pass.Info.TypeOf(ix.X)) && rootedAtParam(ix.X) {
					pass.Reportf(st.Pos(), "%s closure takes the address of an element of its copy-on-write input slice", transform)
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass.Info, st) && len(st.Args) > 0 &&
				isRecordSlice(pass.Info.TypeOf(st.Args[0])) && rootedAtParam(st.Args[0]) {
				pass.Reportf(st.Pos(), "%s closure appends to its copy-on-write input slice (writes into shared backing capacity)", transform)
			}
		}
		return true
	})
}

// checkCowWrite flags lhs when it stores through a closure parameter into
// copy-on-write record data: a field of a record.Record parameter or an
// element of a []record.Record parameter.
func (pass *Pass) checkCowWrite(transform string, lhs ast.Expr, rootedAtParam func(ast.Expr) bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if isRecordType(pass.Info.TypeOf(x.X)) && rootedAtParam(x) {
			pass.Reportf(lhs.Pos(), "%s closure writes %s field of its input record; records are copy-on-write — build a new record instead", transform, x.Sel.Name)
		}
	case *ast.IndexExpr:
		if isRecordSlice(pass.Info.TypeOf(x.X)) && rootedAtParam(x) {
			pass.Reportf(lhs.Pos(), "%s closure assigns into its copy-on-write input slice; build a new slice instead", transform)
		}
	}
}

// isRecordType reports whether t (possibly behind a pointer or alias) is
// record.Record.
func isRecordType(t types.Type) bool {
	return namedTypeName(t) == "Record" && namedTypePkgName(t) == "record"
}

// isRecordSlice reports whether t is []record.Record.
func isRecordSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isRecordType(s.Elem())
}
