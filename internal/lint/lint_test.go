package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"stark/internal/lint"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

var (
	fixOnce sync.Once
	fixFset *token.FileSet
	fixImp  types.Importer
	fixErr  error
)

// fixtureImporter returns a shared FileSet and importer able to resolve
// everything the module and the fixtures import, built once per test run.
func fixtureImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	fixOnce.Do(func() {
		fixFset = token.NewFileSet()
		fixImp, fixErr = lint.NewRepoImporter(fixFset, moduleRoot(t), "time", "math/rand", "sort")
	})
	if fixErr != nil {
		t.Fatalf("building fixture importer: %v", fixErr)
	}
	return fixFset, fixImp
}

// loadFixture parses and type-checks one testdata directory as a package
// with the given import path.
func loadFixture(t *testing.T, dir, path string) *lint.Package {
	t.Helper()
	fset, imp := fixtureImporter(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	pkg, err := lint.Check(fset, path, files, imp)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}
	return pkg
}

// wantedFindings extracts `// want <analyzer>...` expectations from the
// fixture files as "file:line:analyzer" keys.
func wantedFindings(pkg *lint.Package) []string {
	var want []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(text)[1:] {
					want = append(want, fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, name))
				}
			}
		}
	}
	return want
}

func gotFindings(diags []lint.Diagnostic) []string {
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer))
	}
	return got
}

func diffFindings(t *testing.T, want, got []string, diags []lint.Diagnostic) {
	t.Helper()
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(want, "\n") == strings.Join(got, "\n") {
		return
	}
	t.Errorf("findings mismatch\nwant:\n  %s\ngot:\n  %s", strings.Join(want, "\n  "), strings.Join(got, "\n  "))
	for _, d := range diags {
		t.Logf("  full: %s", d)
	}
}

// TestAnalyzerFixtures runs every analyzer over its golden fixture package:
// positives must fire, negatives must stay silent, suppressed sites must be
// silenced by their reasoned directives.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, filepath.Join("testdata", a.Name), "fixture/"+a.Name)
			diags := lint.Run(pkg, lint.PermissiveConfig(), lint.Analyzers())
			want := wantedFindings(pkg)
			if len(want) == 0 {
				t.Fatalf("fixture for %s declares no expected findings", a.Name)
			}
			fired := false
			for _, w := range want {
				if strings.HasSuffix(w, ":"+a.Name) {
					fired = true
				}
			}
			if !fired {
				t.Fatalf("fixture for %s expects no findings from its own analyzer", a.Name)
			}
			diffFindings(t, want, gotFindings(diags), diags)
		})
	}
}

// TestDirectiveHygiene checks that malformed suppressions are findings in
// their own right and register no suppression: every time.Now line in the
// fixture must surface both a starklint directive finding and the
// underlying wallclock finding.
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "directive"), "fixture/directive")
	diags := lint.Run(pkg, lint.PermissiveConfig(), lint.Analyzers())

	src, err := os.ReadFile(filepath.Join("testdata", "directive", "directive.go"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "time.Now()") {
			want = append(want,
				fmt.Sprintf("directive.go:%d:starklint", i+1),
				fmt.Sprintf("directive.go:%d:wallclock", i+1))
		}
	}
	if len(want) != 6 {
		t.Fatalf("expected 3 time.Now lines in fixture, derived %d keys", len(want))
	}
	diffFindings(t, want, gotFindings(diags), diags)
}

// checkSource type-checks an in-memory file as the given import path and
// runs the full suite under the repo's DefaultConfig — the same policy
// cmd/starklint applies.
func checkSource(t *testing.T, path, src string) []lint.Diagnostic {
	t.Helper()
	fset, imp := fixtureImporter(t)
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.Check(fset, path, []*ast.File{f}, imp)
	if err != nil {
		t.Fatal(err)
	}
	return lint.Run(pkg, lint.DefaultConfig(), lint.Analyzers())
}

// TestSeededWallclockInEngine pins the acceptance criterion: a deliberate
// time.Now() introduced into stark/internal/engine must fail the lint under
// the default policy.
func TestSeededWallclockInEngine(t *testing.T) {
	const src = `package engine

import "time"

func deadline() time.Time { return time.Now() }
`
	diags := checkSource(t, "stark/internal/engine", src)
	if len(diags) != 1 || diags[0].Analyzer != "wallclock" {
		t.Fatalf("want exactly one wallclock finding, got %v", diags)
	}
}

// TestJournalReplayClean pins the crash-recovery acceptance criterion: the
// journal-replay shape — sorted walks over the surviving job table and
// virtual-clock recovery-delay arithmetic — must pass the default engine
// policy with zero findings and zero suppressions. If an analyzer ever
// starts flagging this idiom, the restart path in internal/engine/driver.go
// would need starklint:ignore directives, which the acceptance criteria
// forbid outside annotated bench sites.
func TestJournalReplayClean(t *testing.T) {
	const src = `package engine

import (
	"sort"
	"time"
)

type replayJob struct{ id int }

// resubmitJobs mirrors driver.go: deterministic order over a map-backed
// table, no wall-clock reads.
func resubmitJobs(jobTab map[int]*replayJob, live map[int]bool, start func(*replayJob)) {
	ids := make([]int, 0, len(jobTab))
	for id := range jobTab {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if live[id] {
			start(jobTab[id])
		}
	}
}

// recoveryDelay mirrors the resumeEpoch close: both endpoints are virtual
// times handed in by the event loop.
func recoveryDelay(crashedAt, resumedAt time.Duration) time.Duration {
	return resumedAt - crashedAt
}
`
	if diags := checkSource(t, "stark/internal/engine", src); len(diags) != 0 {
		t.Fatalf("journal-replay idiom must lint clean in the engine scope, got %v", diags)
	}
}

// TestDefaultConfigScope checks the policy boundaries: mapiter binds only
// to the ordered packages, while the determinism analyzers cover the whole
// module.
func TestDefaultConfigScope(t *testing.T) {
	const mapSrc = `package p

func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	if diags := checkSource(t, "stark/internal/engine", mapSrc); len(diags) != 1 || diags[0].Analyzer != "mapiter" {
		t.Fatalf("engine: want one mapiter finding, got %v", diags)
	}
	if diags := checkSource(t, "stark/internal/metrics", mapSrc); len(diags) != 0 {
		t.Fatalf("metrics is not an ordered package; got %v", diags)
	}

	const timeSrc = `package p

import "time"

var t0 = time.Now()
`
	if diags := checkSource(t, "stark/internal/metrics", timeSrc); len(diags) != 1 || diags[0].Analyzer != "wallclock" {
		t.Fatalf("metrics: want one wallclock finding, got %v", diags)
	}
	if diags := checkSource(t, "example.com/external", timeSrc); len(diags) != 0 {
		t.Fatalf("external package must be out of scope; got %v", diags)
	}
}

// TestSessionScopeOrdered pins the multi-tenant session layer into the
// ordered-package policy: its dispatch and dedup state is order-sensitive
// (DRR ring, running-entry table), so unsorted map sweeps must flag there,
// and the sorted-walk idiom the package actually uses must stay clean with
// zero suppressions — alongside the virtual-clock deadline arithmetic.
func TestSessionScopeOrdered(t *testing.T) {
	const badSrc = `package session

func drain(running map[int]*int) []*int {
	var out []*int
	for _, e := range running {
		out = append(out, e)
	}
	return out
}
`
	diags := checkSource(t, "stark/internal/session", badSrc)
	if len(diags) != 1 || diags[0].Analyzer != "mapiter" {
		t.Fatalf("session: want one mapiter finding for an unsorted sweep, got %v", diags)
	}

	const goodSrc = `package session

import (
	"sort"
	"time"
)

type entry struct{ key int }

// runningDuplicate mirrors drr.go: the running table is walked in sorted
// key order so the duplicate check is deterministic.
func runningDuplicate(running map[int]*entry, key int) bool {
	ids := make([]int, 0, len(running))
	for id := range running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if running[id].key == key {
			return true
		}
	}
	return false
}

// deadlineAt mirrors armDeadline: both operands are virtual times.
func deadlineAt(admitted, deadline time.Duration) time.Duration {
	return admitted + deadline
}
`
	if diags := checkSource(t, "stark/internal/session", goodSrc); len(diags) != 0 {
		t.Fatalf("session idioms must lint clean in the ordered scope, got %v", diags)
	}
}
