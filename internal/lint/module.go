package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ModuleAnalyzer is a check that needs the whole module at once — the three
// interprocedural analyzers (planetaint, hotalloc, errwrap) reason over the
// cross-package call graph, which no single-package Pass can see.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass carries one module analyzer's view of every loaded package
// plus the call graph built over them.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Config   *Config

	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// infoFor returns the types.Info of the loaded package owning node n
// (nil for import-only nodes without source).
func (p *ModulePass) infoFor(n *Node) *types.Info {
	if n == nil || n.Pkg == nil {
		return nil
	}
	return n.Pkg.Info
}

// ModuleAnalyzers returns the interprocedural suite in stable order.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		PlanetaintAnalyzer,
		HotallocAnalyzer,
		ErrwrapAnalyzer,
	}
}

// RunModule executes the module analyzers over the loaded packages, applies
// in-source suppression directives, and returns the surviving diagnostics
// sorted by position. Directive-hygiene findings are NOT re-emitted here —
// Run already reports them per package, and cmd/starklint runs both.
func RunModule(pkgs []*Package, cfg *Config, analyzers []*ModuleAnalyzer) []Diagnostic {
	if len(pkgs) == 0 {
		return nil
	}
	graph := BuildCallGraph(pkgs)
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&ModulePass{
			Analyzer: a,
			Config:   cfg,
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Graph:    graph,
			diags:    &diags,
		})
	}
	var kept []Diagnostic
	for _, pkg := range pkgs {
		sup, _ := collectSuppressions(pkg.Fset, pkg.Files)
		next := diags[:0]
		for _, d := range diags {
			if !sup.suppresses(d) {
				next = append(next, d)
			}
		}
		diags = next
	}
	kept = append(kept, diags...)
	sortDiagnostics(kept)
	return kept
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// hotpathAnnotated reports whether fd carries a //starklint:hotpath line in
// its doc comment, marking it a hot-path allocation-budget root.
func hotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if trimDirective(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

const hotpathDirective = "//starklint:hotpath"

func trimDirective(text string) string {
	for len(text) > 0 && (text[len(text)-1] == ' ' || text[len(text)-1] == '\t' || text[len(text)-1] == '\r') {
		text = text[:len(text)-1]
	}
	return text
}
