package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// PlanetaintAnalyzer is the interprocedural successor of the retired
// one-hop planesafety check. It enforces the two-clock plane isolation of
// DESIGN.md section 10 over the whole call graph:
//
//   - Data-plane roots are runPlane, every planeCtx method, every function
//     threading a *planeCtx parameter, and the //starklint:hotpath kernels.
//   - A function is a control-plane MUTATOR when its body stores through a
//     pointer to a named type declared in a control-plane package (Config.
//     ControlPlanePkg) or to a package-level var there, outside the
//     px.immediate guard — or when it transitively calls one. No manual
//     mutator list: a new mutating method is inferred from its stores.
//   - Any path from a data-plane root to a mutator, not passing through an
//     `if px.immediate { ... }` guard, is a finding. Direct stores are
//     reported at the store; transitive mutation is reported at the
//     frontier call site with a witness chain down to the actual store.
//
// Types in Config.PlaneLocalTypes (planeCtx, batchEntry, task, ...) are
// exempt destinations: a single plane execution owns them, so worker-side
// stores are the buffered-side-effect design working as intended.
var PlanetaintAnalyzer = &ModuleAnalyzer{
	Name: "planetaint",
	Doc:  "flags data-plane code transitively reaching a control-plane mutation outside the px.immediate guard",
	Run:  runPlanetaint,
}

// planeStore is one offending store found in a function body.
type planeStore struct {
	pos  token.Pos
	desc string // rendered destination expression
}

// mutWitness explains why a node counts as a mutator: either a direct
// store (store set) or a call into another mutator (via set).
type mutWitness struct {
	store *planeStore
	via   *Node
}

func runPlanetaint(p *ModulePass) {
	stores := collectPlaneStores(p)
	mut := solveMutators(p, stores)
	roots := dataPlaneRoots(p)

	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, st := range stores[n] {
			p.Reportf(st.pos, "data-plane code writes %s through control-plane state; buffer the effect in the planeCtx and replay it at join", st.desc)
		}
		for _, e := range n.Out {
			if e.Immediate {
				continue
			}
			callee := e.Callee
			if roots[callee] {
				// The callee is itself data-plane: descend and report at the
				// actual offending site instead of this call.
				visit(callee)
				continue
			}
			if mut[callee] != nil {
				p.Reportf(e.Pos, "data-plane code reaches a control-plane mutation: %s %s; buffer the effect in the planeCtx or guard with px.immediate",
					callee.ShortName(), witnessChain(p.Fset, callee, mut))
				continue
			}
			if callee.Decl != nil {
				visit(callee)
			}
		}
	}
	for _, n := range p.Graph.Nodes() {
		if roots[n] {
			visit(n)
		}
	}
}

// dataPlaneRoots returns the set of functions that may run on a worker
// goroutine: runPlane, planeCtx methods and *planeCtx-threading functions,
// and the //starklint:hotpath kernels of the data packages. A hotpath
// kernel declared inside a control-plane package (the storage shuffle
// kernels) is not a plane root: it mutates its own package's state under
// that package's own locking contract, and plane reachability into it is
// judged at its call sites.
func dataPlaneRoots(p *ModulePass) map[*Node]bool {
	roots := map[*Node]bool{}
	for _, n := range p.Graph.Nodes() {
		if n.Decl == nil || n.Pkg == nil {
			continue
		}
		hotpathRoot := hotpathAnnotated(n.Decl) && !p.Config.ControlPlanePkg(n.Pkg.ImportPath)
		if isDataPlaneDecl(n.Pkg.Info, n.Decl) || hotpathRoot {
			roots[n] = true
		}
	}
	return roots
}

// isDataPlaneDecl reports whether fd is data-plane code by signature: a
// planeCtx method, a function threading a *planeCtx parameter, or runPlane
// itself (which receives the context inside its batch entry).
func isDataPlaneDecl(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Name.Name == "runPlane" {
		return true
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if namedTypeName(info.TypeOf(field.Type)) == "planeCtx" {
				return true
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		if namedTypeName(info.TypeOf(field.Type)) == "planeCtx" {
			return true
		}
	}
	return false
}

// collectPlaneStores finds, for every function with source, the stores
// whose destination chain passes through control-plane state, outside the
// px.immediate guard: assignments, ++/--, delete(...), and channel sends.
func collectPlaneStores(p *ModulePass) map[*Node][]planeStore {
	out := map[*Node][]planeStore{}
	for _, n := range p.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
			continue
		}
		info := n.Pkg.Info
		check := func(dest ast.Expr, stack []ast.Node, site ast.Node) {
			if inImmediateGuard(info, stack, site) {
				return
			}
			if !chainHitsControlPlane(p.Config, info, dest) {
				return
			}
			out[n] = append(out[n], planeStore{pos: dest.Pos(), desc: exprString(dest)})
		}
		walkStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
			switch st := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					check(lhs, stack, node)
				}
			case *ast.IncDecStmt:
				check(st.X, stack, node)
			case *ast.SendStmt:
				check(st.Chan, stack, node)
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(st.Args) > 0 {
						check(st.Args[0], stack, node)
					}
				}
			}
			return true
		})
	}
	return out
}

// chainHitsControlPlane reports whether the store destination mutates
// state reached THROUGH control-plane types: a field/element/deref write
// whose access chain passes a pointer to a control-plane named type
// (px.e.stats.X, st.dirty, be.px.e...), or a rebinding of a package-level
// var declared in a control-plane package. Binding a plain local variable —
// even one of control-plane pointer type, like `st := t.sr.st` — is not a
// store through the pointee and stays legal.
func chainHitsControlPlane(cfg *Config, info *types.Info, dest ast.Expr) bool {
	switch x := ast.Unparen(dest).(type) {
	case *ast.Ident:
		return controlPlanePkgVar(cfg, info, x)
	case *ast.SelectorExpr:
		return chainExprHits(cfg, info, x.X)
	case *ast.IndexExpr:
		return chainExprHits(cfg, info, x.X)
	case *ast.StarExpr:
		return chainExprHits(cfg, info, x.X)
	}
	return false
}

// chainExprHits reports whether e or any sub-expression of its access chain
// is a pointer to a control-plane named type, or is rooted at a
// package-level var of a control-plane package.
func chainExprHits(cfg *Config, info *types.Info, e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		if controlPlanePtr(cfg, info.TypeOf(e)) {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			// e.cl.Executor(exec).field: step through the call to its receiver.
			if s, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = s.X
				continue
			}
			return false
		case *ast.Ident:
			return controlPlanePkgVar(cfg, info, x)
		default:
			return false
		}
	}
}

// controlPlanePkgVar reports whether id resolves to a package-level var
// declared in a control-plane package.
func controlPlanePkgVar(cfg *Config, info *types.Info, id *ast.Ident) bool {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope() && cfg.ControlPlanePkg(v.Pkg().Path())
}

// controlPlanePtr reports whether t is a pointer to a named type declared
// in a control-plane package, excluding the plane-local overlay types.
func controlPlanePtr(cfg *Config, t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !cfg.ControlPlanePkg(obj.Pkg().Path()) {
		return false
	}
	return !cfg.PlaneLocalTypes[obj.Name()]
}

// solveMutators computes the fixed point of "mutates control-plane state":
// seeded with every function holding an offending store, then propagated
// backwards across non-immediate call/ref edges. Each mutator keeps one
// deterministic witness (first found in sorted node order) for rendering.
func solveMutators(p *ModulePass, stores map[*Node][]planeStore) map[*Node]*mutWitness {
	mut := map[*Node]*mutWitness{}
	nodes := p.Graph.Nodes()
	for _, n := range nodes {
		if len(stores[n]) > 0 {
			st := stores[n][0]
			mut[n] = &mutWitness{store: &st}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if mut[n] != nil || n.Decl == nil {
				continue
			}
			for _, e := range n.Out {
				if e.Immediate || mut[e.Callee] == nil {
					continue
				}
				mut[n] = &mutWitness{via: e.Callee}
				changed = true
				break
			}
		}
	}
	return mut
}

// witnessChain renders the path from a mutator down to its store, e.g.
// "(which calls (*shuffleState).rebuildIndex, which stores st.byReduce at
// storage.go:95)".
func witnessChain(fset *token.FileSet, n *Node, mut map[*Node]*mutWitness) string {
	var parts []string
	for cur, depth := n, 0; depth < 6; depth++ {
		w := mut[cur]
		if w == nil {
			break
		}
		if w.store != nil {
			pos := fset.Position(w.store.pos)
			parts = append(parts, fmt.Sprintf("stores %s at %s:%d", w.store.desc, filepath.Base(pos.Filename), pos.Line))
			break
		}
		parts = append(parts, "calls "+w.via.ShortName())
		cur = w.via
	}
	if len(parts) == 0 {
		return ""
	}
	return "(which " + strings.Join(parts, ", which ") + ")"
}
