package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph that the
// interprocedural analyzers (planetaint, hotalloc, errwrap) run on. The
// graph is conservative in the direction the analyzers need: it
// over-approximates what a function may reach, never under-approximates.
//
//   - Static calls and method calls resolve through go/types.
//   - Interface-method calls expand to every module-declared concrete type
//     whose method set satisfies the interface (method-set expansion). Calls
//     through interfaces declared outside the module (error, io.Writer, ...)
//     are not expanded — the module cannot enumerate their implementors, and
//     the analyzers treat external code as opaque.
//   - Taking a function or method value (w.close, record.KeySum64 passed as
//     an argument) adds a reference edge: the value may be called later, so
//     reachability must include it.
//   - Function literals are folded into their enclosing declaration: a store
//     inside a closure built by runPlane is runPlane's store.
//
// Nodes are keyed by types.Func.FullName with generic instantiations
// normalised to their Origin. The string key is load-bearing: the same
// function is represented by distinct *types.Func objects when seen from
// its own source-checked package versus from a dependent package's export
// data, but FullName agrees, so cross-package edges land on one node.

// EdgeKind classifies how a call-graph edge was derived.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a statically resolved function/method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a conservative expansion of an interface-method call to a
	// concrete implementation declared somewhere in the module.
	EdgeIface
	// EdgeRef records a function or method value being taken; it may be
	// called later, so reachability follows it like a call.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// Edge is one outgoing call/reference from a node.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	Kind   EdgeKind
	// Immediate marks a site inside the then-branch of an
	// `if <planeCtx>.immediate { ... }` guard — the synchronous path that
	// only runs on the event-loop goroutine. planetaint exempts these.
	Immediate bool
}

// Node is one function or method in the call graph.
type Node struct {
	Name string      // types.Func FullName, generic origin form
	Fn   *types.Func // one representative object (source-checked if available)
	Decl *ast.FuncDecl
	Pkg  *Package // owning loaded package; nil when only seen via import
	Out  []Edge
}

// ShortName renders the node for diagnostics with import-path directories
// trimmed: "(*stark/internal/storage.Store).ReadReduce" becomes
// "(*storage.Store).ReadReduce".
func (n *Node) ShortName() string {
	head, rest := "", n.Name
	if strings.HasPrefix(rest, "(") {
		head, rest = "(", rest[1:]
	}
	if strings.HasPrefix(rest, "*") {
		head, rest = head+"*", rest[1:]
	}
	if i := strings.LastIndex(rest, "/"); i >= 0 {
		rest = rest[i+1:]
	}
	return head + rest
}

// CallGraph holds every node discovered across the loaded packages.
type CallGraph struct {
	nodes map[string]*Node
}

// Node returns the node with the given FullName key, or nil.
func (g *CallGraph) Node(name string) *Node { return g.nodes[name] }

// NodeFor returns the node for fn (normalised to its generic origin), or
// nil when fn was never seen.
func (g *CallGraph) NodeFor(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[funcKey(fn)]
}

// Nodes returns every node sorted by name, for deterministic iteration.
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// funcKey is the canonical node key for fn: the FullName of its generic
// origin, so arena.Pool[int32].Take and arena.Pool[int64].Take share the
// node of the single declaration they instantiate.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

func (g *CallGraph) getNode(fn *types.Func) *Node {
	fn = fn.Origin()
	key := fn.FullName()
	n := g.nodes[key]
	if n == nil {
		n = &Node{Name: key, Fn: fn}
		g.nodes[key] = n
	}
	return n
}

// BuildCallGraph constructs the module call graph over the loaded packages.
// All packages must share one token.FileSet (as Load guarantees) so edge
// positions resolve uniformly.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[string]*Node{}}
	b := &graphBuilder{
		g:         g,
		loaded:    map[string]bool{},
		ifaceMemo: map[*types.Interface][]*types.Func{},
	}
	// Pass 1: register every declared function so Decl/Pkg are bound to the
	// source-checked object regardless of package processing order.
	for _, pkg := range pkgs {
		b.loaded[pkg.ImportPath] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.getNode(fn)
				n.Fn = fn.Origin()
				n.Decl = fd
				n.Pkg = pkg
			}
		}
	}
	// Candidate concrete types for interface-method expansion: every named
	// non-interface type declared in a loaded package.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
	sort.Slice(b.concrete, func(i, j int) bool {
		return b.concrete[i].Obj().Id() < b.concrete[j].Obj().Id()
	})
	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.addEdges(g.getNode(fn), pkg, fd)
			}
		}
	}
	return g
}

type graphBuilder struct {
	g        *CallGraph
	loaded   map[string]bool // import paths with loaded source
	concrete []*types.Named  // module-declared concrete named types

	// ifaceMemo caches, per interface, the concrete methods its dynamic
	// dispatch may reach across all module-declared implementors.
	ifaceMemo map[*types.Interface][]*types.Func
}

// addEdges walks fd's body recording every call and function-value
// reference as an outgoing edge of caller. Function literals fold into fd.
func (b *graphBuilder) addEdges(caller *Node, pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info
	// consumed marks selector/ident nodes already handled as a call's Fun,
	// so the generic Ident pass below does not double-count them as refs.
	consumed := map[*ast.Ident]bool{}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			id := callFunIdent(x)
			if id == nil {
				return true
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				// builtin, type conversion, or call of a func value.
				return true
			}
			consumed[id] = true
			imm := inImmediateGuard(info, stack, n)
			b.addCall(caller, info, fn, x.Pos(), imm, EdgeStatic)
		case *ast.Ident:
			if consumed[x] {
				return true
			}
			fn, ok := info.Uses[x].(*types.Func)
			if !ok {
				return true
			}
			imm := inImmediateGuard(info, stack, n)
			b.addCall(caller, info, fn, x.Pos(), imm, EdgeRef)
		}
		return true
	})
}

// addCall records caller -> fn. Interface methods expand to the concrete
// implementations declared in the module; non-interface targets get a
// single edge of the given kind.
func (b *graphBuilder) addCall(caller *Node, info *types.Info, fn *types.Func, pos token.Pos, immediate bool, kind EdgeKind) {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if types.IsInterface(recv) {
			for _, impl := range b.ifaceTargets(fn, recv) {
				caller.Out = append(caller.Out, Edge{
					Callee: b.g.getNode(impl), Pos: pos, Kind: EdgeIface, Immediate: immediate,
				})
			}
			return
		}
	}
	caller.Out = append(caller.Out, Edge{
		Callee: b.g.getNode(fn), Pos: pos, Kind: kind, Immediate: immediate,
	})
}

// ifaceTargets returns the concrete methods that a dynamic dispatch of the
// interface method fn may invoke: for every module-declared concrete type
// whose method set satisfies fn's interface, the method with fn's name.
// Interfaces declared outside the loaded module yield no targets — their
// implementors cannot be enumerated, so external dispatch stays opaque.
func (b *graphBuilder) ifaceTargets(fn *types.Func, recv types.Type) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if fn.Pkg() == nil || !b.loaded[fn.Pkg().Path()] {
		return nil
	}
	if targets, ok := b.ifaceMemo[iface]; ok {
		return filterByName(targets, fn.Name())
	}
	var methods []*types.Func
	for _, named := range b.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				methods = append(methods, impl)
			}
		}
	}
	b.ifaceMemo[iface] = methods
	return filterByName(methods, fn.Name())
}

func filterByName(fns []*types.Func, name string) []*types.Func {
	var out []*types.Func
	for _, f := range fns {
		if f.Name() == name {
			out = append(out, f)
		}
	}
	return out
}

// callFunIdent digs the identifier out of a call's Fun: plain ident,
// selector, or a generic instantiation of either (f[T](x)).
func callFunIdent(call *ast.CallExpr) *ast.Ident {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	switch e := fun.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// inImmediateGuard reports whether n sits inside the then-branch of an
// `if <planeCtx>.immediate { ... }` statement — the synchronous path that
// only executes on the event-loop goroutine.
func inImmediateGuard(info *types.Info, stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ast.Unparen(ifStmt.Cond).(*ast.SelectorExpr)
		if !ok || cond.Sel.Name != "immediate" {
			continue
		}
		if namedTypeName(info.TypeOf(cond.X)) != "planeCtx" {
			continue
		}
		// Must be in the then-branch, not the else.
		if n.Pos() >= ifStmt.Body.Pos() && n.Pos() < ifStmt.Body.End() {
			return true
		}
	}
	return false
}
