package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig20ReplayShort(t *testing.T) {
	if testing.Short() {
		t.Skip("fig20 replay is expensive")
	}
	cfg := DefaultFig20()
	cfg.Hours = 4
	cfg.BurstsPerHour = 1
	cfg.BurstQueries = 10
	r, err := RunFig20(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range r.Systems {
		if len(r.Series[sys]) == 0 {
			t.Fatalf("%s produced no samples", sys)
		}
		for _, pt := range r.Series[sys] {
			if pt.MeanDelay <= 0 {
				t.Fatalf("%s sample at hour %.1f has non-positive delay", sys, pt.Hour)
			}
		}
	}
	// Stark-H must stay at or below Spark-H on average.
	mean := func(sys System) time.Duration {
		var s time.Duration
		for _, pt := range r.Series[sys] {
			s += pt.MeanDelay
		}
		return s / time.Duration(len(r.Series[sys]))
	}
	if mean(StarkH) >= mean(SparkH) {
		t.Errorf("Stark-H mean (%v) not below Spark-H (%v)", mean(StarkH), mean(SparkH))
	}
	var b strings.Builder
	r.Print(&b)
	if !strings.Contains(b.String(), "Fig 20") {
		t.Fatal("printer broken")
	}
}
