package experiments

import (
	"io"
	"time"

	"stark"
)

// Fig01Result reproduces Fig. 1(b): the benefit of data locality on the
// two-filter chain of Fig. 1(a) over a ~700 MB text file.
//
//	C     — C.cache.count: load file, shuffle, filter (two stages).
//	D     — D.count with C cached: starts from cached C.
//	DMinus — D.count with the cache dropped: single stage, but restarts
//	         from the shuffle's reduce phase.
type Fig01Result struct {
	C      time.Duration
	D      time.Duration
	DMinus time.Duration
}

// Fig01Config sizes the experiment.
type Fig01Config struct {
	Records   int     // in-process log lines standing in for the file
	SizeScale float64 // simulated bytes per real byte (700 MB total)
	Seed      int64
}

// DefaultFig01 makes the in-process data stand in for the paper's 700 MB
// file: Records * ~105 B * SizeScale ~= 700 MB.
func DefaultFig01() Fig01Config {
	return Fig01Config{Records: 40000, SizeScale: 175, Seed: 1}
}

// RunFig01 executes the experiment.
func RunFig01(cfg Fig01Config) (Fig01Result, error) {
	build := func(cache bool) (*stark.Context, *stark.RDD, *stark.RDD, error) {
		ctx := stark.NewContext(
			stark.WithExecutors(8), stark.WithSlots(4),
			stark.WithSizeScale(cfg.SizeScale), stark.WithSeed(cfg.Seed),
		)
		lines := makeLogFile(cfg.Seed, cfg.Records)
		// val A = sc.textFile(...).map(_ => (getTime(_), _)); the file has
		// two on-disk blocks, matching the two-partition job in the paper.
		a := ctx.TextFile("file", lines, 2)
		// val B = A.partitionBy(new HashPartitioner(2))
		b := a.PartitionBy(stark.NewHashPartitioner(2))
		// val C = B.filter(_.startsWith("ERROR"))
		c := b.Filter(isError)
		// val D = C.filter(_.length > 30)
		d := c.Filter(func(r stark.Record) bool {
			s, ok := r.Value.(string)
			return ok && len(s) > 30
		})
		if cache {
			c.Cache()
		}
		return ctx, c, d, nil
	}

	var res Fig01Result
	// Cached variant: C.cache.count; D.count.
	_, c, d, err := build(true)
	if err != nil {
		return res, err
	}
	_, jmC, err := c.Count()
	if err != nil {
		return res, err
	}
	res.C = jmC.Makespan()
	_, jmD, err := d.Count()
	if err != nil {
		return res, err
	}
	res.D = jmD.Makespan()

	// Uncached variant: C.count ran (so shuffle outputs exist), then
	// D.count restarts from the reduce phase of B.
	_, c2, d2, err := build(false)
	if err != nil {
		return res, err
	}
	if _, _, err := c2.Count(); err != nil {
		return res, err
	}
	_, jmDm, err := d2.Count()
	if err != nil {
		return res, err
	}
	res.DMinus = jmDm.Makespan()
	return res, nil
}

// Print emits the three bars.
func (r Fig01Result) Print(w io.Writer) {
	fprintf(w, "Fig 1(b): data locality benefits (paper: C~17s, D~0.2s, D-~9s)\n")
	fprintf(w, "  C.count  (cold, two stages)      %s\n", fmtSec(r.C))
	fprintf(w, "  D.count  (C cached, local)       %s\n", fmtSec(r.D))
	fprintf(w, "  D-.count (locality violated)     %s\n", fmtSec(r.DMinus))
}
