package experiments

import (
	"io"
	"testing"
)

// TestCachePolicyStrictImprovement is the acceptance gate for the DAG-aware
// eviction policy: on identical seeds and workloads the "dag" arm must
// produce bit-identical results and strictly fewer recomputes-after-eviction
// than the "lru" baseline (RunCachePolicy errors otherwise).
func TestCachePolicyStrictImprovement(t *testing.T) {
	cfg := DefaultCachePolicy()
	cfg.Seeds = 3
	res, err := RunCachePolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Print(io.Discard)
	if res.DAG.Recomputes != 0 {
		t.Errorf("DAG policy paid %d recomputes-after-eviction; the pinned base should never be evicted", res.DAG.Recomputes)
	}
	if res.LRU.Recomputes == 0 {
		t.Error("LRU baseline paid no recomputes; the workload no longer stresses the cache")
	}
}
