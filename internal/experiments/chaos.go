package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"stark"
)

// ChaosConfig parameterizes the chaos harness: a deterministic multi-stage
// workload is run once fault-free (the oracle), then once per seed under a
// randomized-but-deterministic fault schedule (executor crashes and
// restarts, stragglers, transient storage errors, lost or corrupted
// shuffle/checkpoint blocks, network partitions, message drops, and delay
// windows). Every run — oracle included — uses heartbeat failure detection
// over a simulated control network. Every faulted run must produce results
// bit-identical to the oracle, finish without a panic reaching the driver,
// and keep every measured recovery delay (detection latency included)
// within Bound.
type ChaosConfig struct {
	Seeds     int // fault schedules to run
	Executors int
	Slots     int
	Parts     int // partitions per RDD
	Records   int
	Steps     int           // query jobs after the build job
	Bound     time.Duration // recovery delay bound r (also the checkpoint bound)

	// StreamSteps sizes the stream-continuity sweep: a windowed stream
	// ingests this many timesteps under driver-crash-only schedules, and the
	// surviving window's contents must be bit-identical to the fault-free
	// stream oracle. 0 disables the sweep.
	StreamSteps int

	// DumpFaults, when non-nil, receives every seed's armed fault schedule
	// (kind, virtual time, target) before that seed runs.
	DumpFaults io.Writer
}

// DefaultChaos mirrors the scale of the paper's cluster runs while staying
// fast enough for CI.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Seeds:       30,
		Executors:   6,
		Slots:       2,
		Parts:       12,
		Records:     4000,
		Steps:       6,
		StreamSteps: 6,
		Bound:       5 * time.Second,
	}
}

// NightlyChaos deepens the sweep for the scheduled CI profile: four times
// the schedules and a longer workload per schedule.
func NightlyChaos() ChaosConfig {
	cfg := DefaultChaos()
	cfg.Seeds = 120
	cfg.Steps = 8
	return cfg
}

// ChaosResult reports the harness outcome.
type ChaosResult struct {
	Cfg    ChaosConfig
	Oracle string // fault-free result fingerprint

	// Violations lists seeds that diverged from the oracle, errored, or
	// exceeded the recovery bound, with a reason each.
	Violations []string

	// Aggregates across all seeded runs.
	Crashes         int
	Restarts        int
	Stragglers      int
	BlocksDropped   int
	BlocksCorrupted int
	StorageErrors   int
	Partitions      int
	Heals           int
	DelayWindows    int
	MsgDrops        int

	TaskFailures  int
	TaskRetries   int
	FetchFailures int
	Resubmits     int
	SpecLaunches  int
	SpecWins      int
	Blacklists    int

	Suspicions   int
	SuspCleared  int
	DeadDecls    int
	Rejoins      int
	StaleRejects int
	CorruptReads int // corrupt blocks detected by checksum on read
	MaxDetect    time.Duration

	// Driver fault-domain aggregates (both sweeps).
	DriverCrashes   int
	DriverRestarts  int
	JournalReplayed int // journal records replayed across all restarts
	JournalTorn     int // torn journal tails truncated during replay

	// Memory-pressure aggregates: fault windows delivered and how the engine
	// degraded — graceful cache refusals (incl. pinned-group refusals), OOM
	// task failures, and recomputes of previously evicted blocks.
	MemPressures    int
	OOMWindows      int
	CacheRefusals   int
	PinnedBlocked   int
	OOMTaskFails    int
	EvictRecomputes int

	StreamOracle string // fault-free stream-window fingerprint

	MaxDelay time.Duration // largest recovery delay seen over all seeds
	Horizon  time.Duration // fault window (the oracle's virtual makespan)
}

type chaosRun struct {
	fingerprint string
	end         time.Duration
	err         error
	rec         stark.RecoveryStats
	cache       stark.CacheStats
	faults      stark.FaultStats
}

// chaosWorkload runs the harness workload on a fresh context: build a
// cached base dataset, shuffle it into per-key sums, then issue Steps query
// jobs (filter + aggregate + join) and a final collect. The returned
// fingerprint hashes every job's result, so any lost update, duplicate, or
// reordering shows up.
func chaosWorkload(cfg ChaosConfig, opts ...stark.Option) (run chaosRun) {
	defer func() {
		if p := recover(); p != nil {
			run.err = fmt.Errorf("panic reached driver: %v", p)
		}
	}()
	base := []stark.Option{
		stark.WithExecutors(cfg.Executors),
		stark.WithSlots(cfg.Slots),
		stark.WithSeed(7),
		stark.WithCheckpointing(cfg.Bound, 1),
		stark.WithSpeculation(1.5, 0.75),
		// Control traffic rides a lossy-capable network and failures are
		// detected via heartbeats, in the oracle too, so fingerprints are
		// compared under identical machinery.
		stark.WithNetwork(stark.NetworkConfig{
			BaseDelay: 200 * time.Microsecond,
			Jitter:    300 * time.Microsecond,
		}),
		stark.WithHeartbeat(40*time.Millisecond, 120*time.Millisecond, 300*time.Millisecond),
		// The driver itself is a fault domain: every run — oracle included —
		// journals its commit points so seeded driver crashes can replay.
		stark.WithDriverRecovery(),
	}
	ctx := stark.NewContext(append(base, opts...)...)
	defer func() {
		run.rec = ctx.RecoveryStats()
		run.cache = ctx.CacheStats()
		run.faults = ctx.FaultStats()
		run.end = ctx.Now()
	}()

	recs := make([]stark.Record, cfg.Records)
	for i := range recs {
		recs[i] = stark.Pair(fmt.Sprintf("k%04d", i%211), i)
	}
	src := ctx.TextFile("events", recs, cfg.Parts)
	scaled := src.Map(func(r stark.Record) stark.Record {
		return stark.Pair(r.Key, r.Value.(int)*3+1)
	}).Cache()
	p := stark.NewHashPartitioner(cfg.Parts)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	sums := scaled.ReduceByKey(p, sum).Cache()

	h := fnv.New64a()
	total, _, err := sums.Count()
	if err != nil {
		run.err = fmt.Errorf("build job: %w", err)
		return run
	}
	fmt.Fprintf(h, "total=%d;", total)

	for s := 0; s < cfg.Steps; s++ {
		step := s
		slice := scaled.Filter(func(r stark.Record) bool {
			return r.Value.(int)%cfg.Steps == step
		}).ReduceByKey(p, sum)
		joined := slice.Join(p, sums)
		n, _, err := joined.Count()
		if err != nil {
			run.err = fmt.Errorf("step %d: %w", step, err)
			return run
		}
		fmt.Fprintf(h, "s%d=%d;", step, n)
	}

	out, _, err := sums.Collect()
	if err != nil {
		run.err = fmt.Errorf("final collect: %w", err)
		return run
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	for _, r := range out {
		fmt.Fprintf(h, "%s=%d;", r.Key, r.Value.(int))
	}
	run.fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return run
}

// RunChaos executes the chaos harness: the fault-free oracle first (which
// also fixes the fault window to the oracle's virtual makespan), then one
// run per seed. It returns an error when any seed violates the contract, so
// callers exit nonzero.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	res := ChaosResult{Cfg: cfg}
	oracle := chaosWorkload(cfg)
	if oracle.err != nil {
		return res, fmt.Errorf("chaos oracle run failed: %w", oracle.err)
	}
	res.Oracle = oracle.fingerprint
	res.Horizon = oracle.end

	for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
		sched := stark.RandomFaultSchedule(seed, res.Horizon, cfg.Executors).
			WithNetFaults(seed, res.Horizon, cfg.Executors).
			WithDriverFaults(seed, res.Horizon).
			WithMemFaults(seed, res.Horizon, cfg.Executors)
		if cfg.DumpFaults != nil {
			fprintf(cfg.DumpFaults, "seed %d fault schedule:\n", seed)
			for _, line := range sched.Describe() {
				fprintf(cfg.DumpFaults, "  %s\n", line)
			}
		}
		run := chaosWorkload(cfg, stark.WithFaults(sched))
		switch {
		case run.err != nil:
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d: %v", seed, run.err))
		case run.fingerprint != res.Oracle:
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d: fingerprint %s != oracle %s", seed, run.fingerprint, res.Oracle))
		case run.rec.MaxRecoveryDelay() > cfg.Bound:
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d: recovery delay %v exceeds bound %v",
					seed, run.rec.MaxRecoveryDelay(), cfg.Bound))
		}
		res.Crashes += run.faults.Crashes
		res.Restarts += run.faults.Restarts
		res.Stragglers += run.faults.Stragglers
		res.BlocksDropped += run.faults.BlocksDropped
		res.BlocksCorrupted += run.faults.BlocksCorrupted
		res.StorageErrors += run.faults.StorageErrors
		res.Partitions += run.faults.Partitions
		res.Heals += run.faults.Heals
		res.DelayWindows += run.faults.DelayWindows
		res.MsgDrops += run.faults.MsgDrops
		res.TaskFailures += run.rec.TaskFailures
		res.TaskRetries += run.rec.TaskRetries
		res.FetchFailures += run.rec.FetchFailures
		res.Resubmits += run.rec.StageResubmissions
		res.SpecLaunches += run.rec.SpeculativeLaunches
		res.SpecWins += run.rec.SpeculativeWins
		res.Blacklists += run.rec.ExecutorBlacklists
		res.Suspicions += run.rec.Suspicions
		res.SuspCleared += run.rec.SuspicionsCleared
		res.DeadDecls += run.rec.DeadDeclarations
		res.Rejoins += run.rec.Rejoins
		res.StaleRejects += run.rec.StaleEpochRejections
		res.CorruptReads += run.rec.CorruptBlocks
		res.DriverCrashes += run.rec.DriverCrashes
		res.DriverRestarts += run.rec.DriverRestarts
		res.JournalReplayed += run.rec.JournalRecordsReplayed
		res.JournalTorn += run.rec.JournalTornTails
		res.MemPressures += run.faults.MemPressures
		res.OOMWindows += run.faults.OOMWindows
		res.CacheRefusals += run.cache.CacheRefusals
		res.PinnedBlocked += run.cache.PinnedEvictionsBlocked
		res.OOMTaskFails += run.cache.OOMTaskFailures
		res.EvictRecomputes += run.cache.RecomputesAfterEviction
		if d := run.rec.MaxDetectionDelay(); d > res.MaxDetect {
			res.MaxDetect = d
		}
		if d := run.rec.MaxRecoveryDelay(); d > res.MaxDelay {
			res.MaxDelay = d
		}
	}
	runChaosStream(cfg, &res)
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("chaos: %d of %d seeds violated the recovery contract",
			len(res.Violations), cfg.Seeds)
	}
	return res, nil
}

// chaosStreamWorkload runs the stream-continuity workload: a windowed
// co-located stream ingests StreamSteps deterministic micro-batches, then
// the surviving window's step RDDs are collected and fingerprinted — so a
// driver crash mid-window must come back with exactly the same live steps
// holding exactly the same records.
func chaosStreamWorkload(cfg ChaosConfig, opts ...stark.Option) (run chaosRun) {
	defer func() {
		if p := recover(); p != nil {
			run.err = fmt.Errorf("panic reached driver: %v", p)
		}
	}()
	base := []stark.Option{
		stark.WithExecutors(cfg.Executors),
		stark.WithSlots(cfg.Slots),
		stark.WithSeed(7),
		stark.WithCoLocality(),
		stark.WithNetwork(stark.NetworkConfig{
			BaseDelay: 200 * time.Microsecond,
			Jitter:    300 * time.Microsecond,
		}),
		stark.WithHeartbeat(40*time.Millisecond, 120*time.Millisecond, 300*time.Millisecond),
		stark.WithDriverRecovery(),
	}
	ctx := stark.NewContext(append(base, opts...)...)
	defer func() {
		run.rec = ctx.RecoveryStats()
		run.faults = ctx.FaultStats()
		run.end = ctx.Now()
	}()

	window := 3
	s, err := ctx.NewStream(stark.StreamConfig{
		Name:        "chaos-stream",
		Partitioner: stark.NewHashPartitioner(cfg.Parts),
		Namespace:   "chaos-stream",
		Window:      window,
	})
	if err != nil {
		run.err = fmt.Errorf("stream setup: %w", err)
		return run
	}
	h := fnv.New64a()
	for step := 0; step < cfg.StreamSteps; step++ {
		recs := make([]stark.Record, cfg.Records/cfg.StreamSteps)
		for i := range recs {
			recs[i] = stark.Pair(fmt.Sprintf("k%04d", (i*7+step)%173), step*100000+i)
		}
		s.Ingest(step, recs)
		ctx.Drain()
	}
	// Fingerprint the surviving window: which steps are live and, for each,
	// the full sorted contents.
	for step := 0; step < cfg.StreamSteps; step++ {
		r := s.Step(step)
		if r == nil {
			fmt.Fprintf(h, "s%d=dead;", step)
			continue
		}
		out, _, err := r.Collect()
		if err != nil {
			run.err = fmt.Errorf("window collect step %d: %w", step, err)
			return run
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Key != out[b].Key {
				return out[a].Key < out[b].Key
			}
			return out[a].Value.(int) < out[b].Value.(int)
		})
		fmt.Fprintf(h, "s%d:", step)
		for _, r := range out {
			fmt.Fprintf(h, "%s=%d;", r.Key, r.Value.(int))
		}
	}
	run.fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return run
}

// runChaosStream executes the stream-continuity sweep: a fault-free stream
// oracle, then one run per seed under a driver-crash-only schedule. Window
// divergence, errors, and bound violations append to res.Violations.
func runChaosStream(cfg ChaosConfig, res *ChaosResult) {
	if cfg.StreamSteps <= 0 {
		return
	}
	oracle := chaosStreamWorkload(cfg)
	if oracle.err != nil {
		res.Violations = append(res.Violations,
			fmt.Sprintf("stream oracle: %v", oracle.err))
		return
	}
	res.StreamOracle = oracle.fingerprint
	for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
		sched := stark.FaultSchedule{}.WithDriverFaults(seed, oracle.end)
		if cfg.DumpFaults != nil {
			fprintf(cfg.DumpFaults, "stream seed %d fault schedule:\n", seed)
			for _, line := range sched.Describe() {
				fprintf(cfg.DumpFaults, "  %s\n", line)
			}
		}
		run := chaosStreamWorkload(cfg, stark.WithFaults(sched))
		switch {
		case run.err != nil:
			res.Violations = append(res.Violations,
				fmt.Sprintf("stream seed %d: %v", seed, run.err))
		case run.fingerprint != res.StreamOracle:
			res.Violations = append(res.Violations,
				fmt.Sprintf("stream seed %d: window fingerprint %s != oracle %s",
					seed, run.fingerprint, res.StreamOracle))
		case run.rec.MaxRecoveryDelay() > cfg.Bound:
			res.Violations = append(res.Violations,
				fmt.Sprintf("stream seed %d: recovery delay %v exceeds bound %v",
					seed, run.rec.MaxRecoveryDelay(), cfg.Bound))
		}
		res.DriverCrashes += run.rec.DriverCrashes
		res.DriverRestarts += run.rec.DriverRestarts
		res.JournalReplayed += run.rec.JournalRecordsReplayed
		res.JournalTorn += run.rec.JournalTornTails
		if d := run.rec.MaxRecoveryDelay(); d > res.MaxDelay {
			res.MaxDelay = d
		}
	}
}

// Print emits the chaos summary.
func (r ChaosResult) Print(w io.Writer) {
	fprintf(w, "Chaos: %d randomized fault schedules vs fault-free oracle (bound r=%v)\n",
		r.Cfg.Seeds, r.Cfg.Bound)
	fprintf(w, "  oracle fingerprint %s, fault window %v (virtual)\n", r.Oracle, r.Horizon)
	fprintf(w, "  faults injected: crashes=%d restarts=%d stragglers=%d blockLoss=%d blockCorrupt=%d storageErr=%d\n",
		r.Crashes, r.Restarts, r.Stragglers, r.BlocksDropped, r.BlocksCorrupted, r.StorageErrors)
	fprintf(w, "  network faults:  partitions=%d heals=%d delayWindows=%d msgDrops=%d\n",
		r.Partitions, r.Heals, r.DelayWindows, r.MsgDrops)
	fprintf(w, "  recovery work:   taskFail=%d retries=%d fetchFail=%d resubmits=%d spec=%d/%d blacklists=%d\n",
		r.TaskFailures, r.TaskRetries, r.FetchFailures, r.Resubmits,
		r.SpecWins, r.SpecLaunches, r.Blacklists)
	fprintf(w, "  detection:       suspect=%d cleared=%d dead=%d rejoin=%d staleEpoch=%d corruptReads=%d maxDetect=%v\n",
		r.Suspicions, r.SuspCleared, r.DeadDecls, r.Rejoins, r.StaleRejects, r.CorruptReads, r.MaxDetect)
	fprintf(w, "  driver domain:   crashes=%d restarts=%d journalReplayed=%d tornTails=%d\n",
		r.DriverCrashes, r.DriverRestarts, r.JournalReplayed, r.JournalTorn)
	fprintf(w, "  memory pressure: windows=%d oomWindows=%d refusals=%d pinnedBlocked=%d oomTaskFails=%d evictRecomputes=%d\n",
		r.MemPressures, r.OOMWindows, r.CacheRefusals, r.PinnedBlocked, r.OOMTaskFails, r.EvictRecomputes)
	if r.StreamOracle != "" {
		fprintf(w, "  stream window:   oracle fingerprint %s across %d driver-crash seeds\n",
			r.StreamOracle, r.Cfg.Seeds)
	}
	fprintf(w, "  max recovery delay %v <= bound %v\n", r.MaxDelay, r.Cfg.Bound)
	if len(r.Violations) == 0 {
		fprintf(w, "  all %d seeds produced oracle-identical results within the bound\n", r.Cfg.Seeds)
		return
	}
	for _, v := range r.Violations {
		fprintf(w, "  VIOLATION %s\n", v)
	}
}
