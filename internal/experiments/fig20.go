package experiments

import (
	"io"
	"math/rand"
	"time"

	"stark"
	"stark/internal/workload"
)

// Fig20Config replays the taxi trace at real (virtual) speed for a day:
// 5-minute timesteps with the diurnal volume curve, queries at a fixed 20
// jobs/s sampled in bursts, per Sec. IV-E's final experiment.
type Fig20Config struct {
	Throughput ThroughputConfig
	// Hours of trace to replay.
	Hours int
	// StepsPerHour fixes the timestep cadence (12 = 5-minute steps).
	StepsPerHour int
	// QueryRate is the offered load during measurement bursts.
	QueryRate float64
	// BurstQueries is how many queries each sampling burst issues.
	BurstQueries int
	// BurstsPerHour is the sampling frequency.
	BurstsPerHour int
}

// DefaultFig20 matches the paper's 24 h replay at 20 jobs/s.
func DefaultFig20() Fig20Config {
	tp := DefaultThroughput()
	return Fig20Config{
		Throughput:    tp,
		Hours:         24,
		StepsPerHour:  12,
		QueryRate:     20,
		BurstQueries:  20,
		BurstsPerHour: 2,
	}
}

// Fig20Point is one sampled bucket.
type Fig20Point struct {
	Hour      float64
	MeanDelay time.Duration
}

// Fig20Result holds the delay-over-time series per system.
type Fig20Result struct {
	Systems []System
	Series  map[System][]Fig20Point
}

// RunFig20 replays the day per system. Spark-R is excluded as in the paper
// ("due to the unacceptably high response time and low throughput ... the
// experiment excludes the Spark-R baseline").
func RunFig20(cfg Fig20Config) (Fig20Result, error) {
	res := Fig20Result{
		Systems: []System{SparkH, StarkH, StarkE},
		Series:  make(map[System][]Fig20Point),
	}
	tp := cfg.Throughput
	taxi := workload.DefaultTaxi()
	taxi.Seed = tp.Seed
	taxi.EventsPerStep = tp.EventsPerStep
	taxi.StepsPerHour = cfg.StepsPerHour

	totalSteps := cfg.Hours * cfg.StepsPerHour
	for _, sys := range res.Systems {
		// Warm a full window at nadir volume, then replay the day.
		ts, err := setupThroughput(tp, sys, func(step int) int {
			return taxi.StepVolume(0)
		})
		if err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(tp.Seed + int64(sys)))
		stepsBetweenBursts := cfg.StepsPerHour / cfg.BurstsPerHour
		if stepsBetweenBursts < 1 {
			stepsBetweenBursts = 1
		}
		for step := 0; step < totalSteps; step++ {
			// Ingest the step at its diurnal volume (the stream evicts
			// beyond the window automatically).
			t2 := taxi
			t2.EventsPerStep = taxi.StepVolume(step)
			recs := workload.MergedStep(t2, workload.DefaultTwitter(), tp.WindowSteps+step)
			ts.ingest(tp.WindowSteps+step, recs)
			ts.ctx.Drain()

			if step%stepsBetweenBursts != 0 {
				continue
			}
			inter := time.Duration(float64(time.Second) / cfg.QueryRate)
			results := ts.ctx.OpenLoop(inter, cfg.BurstQueries, func(i int) *stark.RDD {
				return ts.makeQuery(rng)
			})
			res.Series[sys] = append(res.Series[sys], Fig20Point{
				Hour:      float64(step) / float64(cfg.StepsPerHour),
				MeanDelay: stark.MeanDelay(results),
			})
		}
	}
	return res, nil
}

// Print emits the series.
func (r Fig20Result) Print(w io.Writer) {
	fprintf(w, "Fig 20: delay over a 24h replay at 20 jobs/s (paper: Spark-H crosses 800ms at peaks; Stark-H <200ms; Stark-E flattest under growth)\n")
	fprintf(w, "  %6s", "hour")
	for _, sys := range r.Systems {
		fprintf(w, " %10s", sys)
	}
	fprintf(w, "\n")
	if len(r.Series[r.Systems[0]]) == 0 {
		return
	}
	for i := range r.Series[r.Systems[0]] {
		fprintf(w, "  %6.1f", r.Series[r.Systems[0]][i].Hour)
		for _, sys := range r.Systems {
			fprintf(w, " %s", fmtMs(r.Series[sys][i].MeanDelay))
		}
		fprintf(w, "\n")
	}
}
