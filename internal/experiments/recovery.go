package experiments

import (
	"io"
	"time"

	"stark"
)

// RecoveryResult measures actual failure-recovery delay against the
// configured bound — the property Sec. III-D promises ("bounded failure
// recovery delay"). The paper reports the checkpoint *volume* (Fig. 18);
// this companion experiment validates the *bound* itself by killing an
// executor after the trending app ran and timing the job that recomputes
// the lost partitions.
type RecoveryResult struct {
	Bounds []time.Duration
	// Recovery[i] is the post-failure job makespan under Bounds[i].
	Recovery []time.Duration
	// NoCheckpoint is the same measurement with checkpointing disabled.
	NoCheckpoint time.Duration
	// Baseline is the pre-failure steady job makespan.
	Baseline time.Duration
}

// RunRecovery runs the trending app for the configured steps under each
// recovery bound, fails an executor, and measures the recomputation job.
func RunRecovery(cfg CheckpointConfig, bounds []time.Duration) (RecoveryResult, error) {
	res := RecoveryResult{Bounds: bounds}
	run := func(opts ...stark.Option) (recovery, baseline time.Duration, err error) {
		ctx, app, err := newTrendingRun(cfg, opts...)
		if err != nil {
			return 0, 0, err
		}
		var last *stark.RDD
		for s := 0; s < cfg.Steps; s++ {
			out, err := app.Step(trendingInput(cfg, s))
			if err != nil {
				return 0, 0, err
			}
			last = out.Res
		}
		// Steady-state job before the failure.
		_, jmBase, err := last.Filter(func(stark.Record) bool { return true }).Count()
		if err != nil {
			return 0, 0, err
		}
		// Fail the executor holding the first result partition.
		ctx.KillExecutor(0)
		_, jmRec, err := last.Filter(func(stark.Record) bool { return true }).Count()
		if err != nil {
			return 0, 0, err
		}
		return jmRec.Makespan(), jmBase.Makespan(), nil
	}

	for _, b := range bounds {
		rec, base, err := run(stark.WithCheckpointing(b, 1))
		if err != nil {
			return res, err
		}
		res.Recovery = append(res.Recovery, rec)
		res.Baseline = base
	}
	rec, _, err := run()
	if err != nil {
		return res, err
	}
	res.NoCheckpoint = rec
	return res, nil
}

// Print emits the recovery table.
func (r RecoveryResult) Print(w io.Writer) {
	fprintf(w, "Recovery: post-failure job delay vs checkpoint bound r (companion to Sec. III-D)\n")
	fprintf(w, "  steady-state job (no failure): %s\n", fmtSec(r.Baseline))
	for i, b := range r.Bounds {
		fprintf(w, "  bound %-8v recovery %s\n", b, fmtSec(r.Recovery[i]))
	}
	fprintf(w, "  no checkpointing: recovery %s\n", fmtSec(r.NoCheckpoint))
}
