package experiments

import (
	"io"
	"sort"
	"time"

	"stark"
	"stark/internal/trending"
	"stark/internal/workload"
)

// CheckpointConfig drives the failure-recovery experiments (Sec. IV-D):
// the Fig. 16 trending application over Wikipedia data for ten steps.
type CheckpointConfig struct {
	Steps          int
	RecordsPerStep int
	SizeScale      float64
	Partitions     int
	// Bound is the recovery delay bound r; Relax values select Stark-1 /
	// Stark-3.
	Bound time.Duration
	Seed  int64
}

// DefaultCheckpoint sizes steps at ~250 MB simulated.
func DefaultCheckpoint() CheckpointConfig {
	return CheckpointConfig{
		Steps:          12,
		RecordsPerStep: 12000,
		SizeScale:      420,
		Partitions:     8,
		Bound:          3200 * time.Millisecond,
		Seed:           1,
	}
}

// trendingInput derives step input from the Wikipedia generator, keyed by a
// fixed-length URL prefix as in the paper.
func trendingInput(cfg CheckpointConfig, step int) []stark.Record {
	w := workload.DefaultWikipedia()
	w.Seed = cfg.Seed
	w.RequestsPerHour = cfg.RecordsPerStep
	w.ZipfS = 1.05
	recs := w.Hour(step)
	out := make([]stark.Record, len(recs))
	for i, r := range recs {
		// A fixed-length URL prefix is the key (paper Sec. IV-D); 17 chars
		// of "/wiki/article-NNNNN" keep the leading three digits, i.e. a
		// few hundred distinct trend keys.
		prefix := r.Key
		if len(prefix) > 17 {
			prefix = prefix[:17]
		}
		out[i] = stark.Pair(prefix, r.Value)
	}
	return out
}

// Fig17Result compares cached RDD size against checkpoint size per Fig. 16
// RDD name (the paper's constant serialization ratio).
type Fig17Result struct {
	Names           []string
	CachedBytes     map[string]int64
	CheckpointBytes map[string]int64
	Ratio           float64
}

// newTrendingRun builds a context and trending app for the checkpoint
// experiments, with extra engine options appended.
func newTrendingRun(cfg CheckpointConfig, extra ...stark.Option) (*stark.Context, *trending.App, error) {
	opts := []stark.Option{
		stark.WithCoLocality(),
		stark.WithExecutors(8), stark.WithSlots(4),
		stark.WithSizeScale(cfg.SizeScale),
		stark.WithSeed(cfg.Seed),
	}
	opts = append(opts, extra...)
	ctx := stark.NewContext(opts...)
	p := stark.NewHashPartitioner(cfg.Partitions)
	if err := ctx.RegisterNamespace("trend", p, 1); err != nil {
		return nil, nil, err
	}
	tcfg := trending.DefaultConfig(p)
	tcfg.KeepContents = 16
	tcfg.PopularThreshold = 2
	tcfg.Namespace = "trend"
	return ctx, trending.New(ctx, tcfg), nil
}

// RunFig17 runs the app with co-locality and measures one mid-run step.
func RunFig17(cfg CheckpointConfig) (Fig17Result, error) {
	res := Fig17Result{
		CachedBytes:     make(map[string]int64),
		CheckpointBytes: make(map[string]int64),
	}
	ctx, app, err := newTrendingRun(cfg)
	if err != nil {
		return res, err
	}

	var mid trending.StepRDDs
	for s := 0; s < cfg.Steps; s++ {
		out, err := app.Step(trendingInput(cfg, s))
		if err != nil {
			return res, err
		}
		if s == cfg.Steps/2 {
			mid = out
		}
	}
	named := mid.Named()
	for name := range named {
		res.Names = append(res.Names, name)
	}
	sort.Strings(res.Names)
	// Checkpoint each measured RDD explicitly to observe its serialized
	// size; the engine's serialization ratio is the constant under test.
	before := ctx.TotalCheckpointBytes()
	for _, name := range res.Names {
		r := named[name]
		sizes := r.PartitionSizes()
		var cached int64
		for _, b := range sizes {
			cached += b
		}
		res.CachedBytes[name] = cached
		r.Checkpoint()
		after := ctx.TotalCheckpointBytes()
		res.CheckpointBytes[name] = after - before
		before = after
	}
	var num, den float64
	for _, name := range res.Names {
		num += float64(res.CheckpointBytes[name])
		den += float64(res.CachedBytes[name])
	}
	if den > 0 {
		res.Ratio = num / den
	}
	return res, nil
}

// Print emits the per-RDD size pairs.
func (r Fig17Result) Print(w io.Writer) {
	fprintf(w, "Fig 17: cached vs checkpoint size per Fig-16 RDD (paper: constant ratio across RDDs)\n")
	fprintf(w, "  %-6s %14s %14s %8s\n", "rdd", "cached", "checkpoint", "ratio")
	for _, name := range r.Names {
		c, cp := r.CachedBytes[name], r.CheckpointBytes[name]
		ratio := 0.0
		if c > 0 {
			ratio = float64(cp) / float64(c)
		}
		fprintf(w, "  %-6s %12dKB %12dKB %8.2f\n", name, c>>10, cp>>10, ratio)
	}
	fprintf(w, "  overall ratio %.2f\n", r.Ratio)
}

// Fig18Result tracks cumulative checkpointed bytes per step for Stark-1,
// Stark-3, and the Tachyon Edge baseline.
type Fig18Result struct {
	Steps   int
	Stark1  []int64
	Stark3  []int64
	Tachyon []int64
}

// RunFig18 runs the app under the three checkpointing policies.
func RunFig18(cfg CheckpointConfig) (Fig18Result, error) {
	res := Fig18Result{Steps: cfg.Steps}
	run := func(opt stark.Option) ([]int64, error) {
		ctx, app, err := newTrendingRun(cfg, opt)
		if err != nil {
			return nil, err
		}
		var series []int64
		for s := 0; s < cfg.Steps; s++ {
			if _, err := app.Step(trendingInput(cfg, s)); err != nil {
				return nil, err
			}
			series = append(series, ctx.TotalCheckpointBytes())
		}
		return series, nil
	}
	var err error
	if res.Stark1, err = run(stark.WithCheckpointing(cfg.Bound, 1)); err != nil {
		return res, err
	}
	if res.Stark3, err = run(stark.WithCheckpointing(cfg.Bound, 3)); err != nil {
		return res, err
	}
	if res.Tachyon, err = run(stark.WithEdgeCheckpointing(cfg.Bound)); err != nil {
		return res, err
	}
	return res, nil
}

// Print emits the three series.
func (r Fig18Result) Print(w io.Writer) {
	fprintf(w, "Fig 18: cumulative checkpointed data per step (paper: Stark-1 best early, Stark-3 wins later, both far below Tachyon Edge)\n")
	fprintf(w, "  %4s %12s %12s %12s\n", "step", "Stark-1", "Stark-3", "Tachyon")
	for i := 0; i < r.Steps; i++ {
		fprintf(w, "  %4d %10dMB %10dMB %10dMB\n", i+1, r.Stark1[i]>>20, r.Stark3[i]>>20, r.Tachyon[i]>>20)
	}
}
