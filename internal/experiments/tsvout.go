package experiments

import (
	"fmt"
	"io"
)

// Machine-readable TSV emitters, one per figure with series data, so the
// harness output can feed plotting scripts directly
// (`starkbench -experiment fig19 -tsv > fig19.tsv`).

// WriteTSV emits `partitions \t delay_ms`.
func (r Fig07Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "partitions\tdelay_ms"); err != nil {
		return err
	}
	for i, n := range r.Partitions {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", n, r.Delay[i].Milliseconds()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV emits `cogroup_k \t sparkH_ms \t starkH_ms`.
func (r Fig11Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cogroup_k\tsparkH_ms\tstarkH_ms"); err != nil {
		return err
	}
	for i, k := range r.Ks {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\n", k, r.SparkH[i].Milliseconds(), r.StarkH[i].Milliseconds()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV emits `step \t stark1_mb \t stark3_mb \t tachyon_mb`.
func (r Fig18Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step\tstark1_mb\tstark3_mb\ttachyon_mb"); err != nil {
		return err
	}
	for i := 0; i < r.Steps; i++ {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", i+1, r.Stark1[i]>>20, r.Stark3[i]>>20, r.Tachyon[i]>>20); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV emits `system \t rate_jobs_per_s \t mean_ms \t p95_ms`.
func (r Fig19Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "system\trate_jobs_per_s\tmean_ms\tp95_ms"); err != nil {
		return err
	}
	for _, sys := range r.Systems {
		for _, pt := range r.Curves[sys] {
			if _, err := fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\n",
				sys, pt.Rate, pt.MeanDelay.Milliseconds(), pt.P95Delay.Milliseconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTSV emits `hour \t <system>_ms ...` rows.
func (r Fig20Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "hour"); err != nil {
		return err
	}
	for _, sys := range r.Systems {
		if _, err := fmt.Fprintf(w, "\t%s_ms", sys); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(r.Systems) == 0 || len(r.Series[r.Systems[0]]) == 0 {
		return nil
	}
	for i := range r.Series[r.Systems[0]] {
		if _, err := fmt.Fprintf(w, "%.1f", r.Series[r.Systems[0]][i].Hour); err != nil {
			return err
		}
		for _, sys := range r.Systems {
			if _, err := fmt.Fprintf(w, "\t%d", r.Series[sys][i].MeanDelay.Milliseconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
