package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"stark"
	"stark/internal/metrics"
	"stark/internal/workload"
	"stark/internal/zorder"
)

// ThroughputConfig drives the system-level experiments (Sec. IV-E): the
// merged NYC-taxi + Twitter trace streamed as 5-minute timesteps into a
// 40-worker cluster, queried by cogroup jobs over random time ranges and
// random geographic regions.
type ThroughputConfig struct {
	Executors     int
	Slots         int
	MemoryPerExec int64
	SizeScale     float64

	EventsPerStep int
	WindowSteps   int

	CoarseParts   int // Spark-R / Spark-H / Stark-H
	FineParts     int // Stark-E
	InitialGroups int
	MaxGroupBytes int64
	MinGroupBytes int64

	QueriesPerRate int
	Rates          []float64 // jobs per second
	DelayCap       time.Duration

	// LocalityWait is the delay-scheduling bound. Sub-second interactive
	// queries need it well below Spark's 3 s default, or hotspot executors
	// queue instead of spilling to replicas (the paper's contention-aware
	// replication depends on these remote launches happening).
	LocalityWait time.Duration

	// Systems restricts the sweep; nil means all four compared systems.
	Systems []System

	// Parallelism sets the engine's data-plane worker-pool size; 0 uses
	// GOMAXPROCS. Virtual-time results are identical for every value — the
	// knob only changes wall-clock time (see DESIGN.md section 10).
	Parallelism int

	Seed int64
}

// DefaultThroughput stands in for the paper's 40-node cluster; each step is
// ~30 MB simulated.
func DefaultThroughput() ThroughputConfig {
	return ThroughputConfig{
		Executors:      40,
		Slots:          16, // dual 8-core Xeons on the paper's R620 workers
		MemoryPerExec:  448 << 20,
		SizeScale:      220,
		EventsPerStep:  2000,
		WindowSteps:    36, // 3 hours of 5-minute steps
		CoarseParts:    40,
		FineParts:      512,
		InitialGroups:  32,
		MaxGroupBytes:  96 << 20,
		MinGroupBytes:  24 << 20,
		QueriesPerRate: 200,
		Rates:          []float64{5, 9, 20, 56, 100, 160, 220, 300},
		DelayCap:       800 * time.Millisecond,
		LocalityWait:   250 * time.Millisecond,
		Seed:           1,
	}
}

// throughputSetup ingests the window of timesteps under a system's
// discipline and returns the context, live step RDDs, the query
// partitioner, and the Z-grid used for regions.
type throughputSetup struct {
	ctx    *stark.Context
	stream *stark.Stream
	steps  []*stark.RDD
	queryP stark.Partitioner
	grid   zorder.Grid
	sys    System
	cfg    ThroughputConfig
}

// ingest feeds one more timestep and refreshes the queryable window.
func (ts *throughputSetup) ingest(step int, recs []stark.Record) {
	ts.stream.Ingest(step, recs)
	ts.steps = ts.stream.Recent(ts.cfg.WindowSteps)
}

func setupThroughput(cfg ThroughputConfig, sys System, stepVolume func(step int) int) (*throughputSetup, error) {
	cc := stark.DefaultClusterConfig()
	cc.NumExecutors = cfg.Executors
	cc.SlotsPerExecutor = cfg.Slots
	cc.MemoryPerExecutor = cfg.MemoryPerExec
	cc.SizeScale = cfg.SizeScale
	// Fine partitions are cheap within a group task: per-partition setup is
	// far below a full task launch.
	cc.GroupPartitionOverhead = 200 * time.Microsecond
	wait := cfg.LocalityWait
	if wait == 0 {
		wait = 250 * time.Millisecond
	}
	ctx := stark.NewContext(contextOptions(sys,
		stark.WithExtendable(stark.GroupBounds(cfg.MaxGroupBytes, cfg.MinGroupBytes, cfg.WindowSteps)),
		stark.WithClusterConfig(cc),
		stark.WithLocalityWait(wait),
		stark.WithSeed(cfg.Seed),
		stark.WithParallelism(cfg.Parallelism),
	)...)

	taxi := workload.DefaultTaxi()
	taxi.Seed = cfg.Seed
	taxi.EventsPerStep = cfg.EventsPerStep
	tw := workload.DefaultTwitter()

	grid := zorder.NewGrid(64)
	// Spark-H and Stark-H share the default hash partitioner (paper
	// Sec. IV-A), which also spreads the taxi hotspots' Z-cells evenly.
	// Stark-E uses the static range partitioner over the grid's Z-code
	// range — contiguous fine partitions are what make its groups spatially
	// meaningful — and relies on elasticity to absorb the hotspot skew.
	var shared stark.Partitioner
	if sys == StarkE {
		shared = stark.NewStaticRangePartitioner(zGridBounds(grid, cfg.FineParts))
	} else {
		shared = stark.NewHashPartitioner(cfg.CoarseParts)
	}

	scfg := stark.StreamConfig{
		Name:        fmt.Sprintf("taxi-%s", sys),
		Partitioner: shared,
		Window:      cfg.WindowSteps,
	}
	switch sys {
	case SparkR:
		scfg.SingleNodeIngest = true
		scfg.StepPartitioner = func(step int, recs []stark.Record) stark.Partitioner {
			return stark.NewRangePartitioner(sampleKeys(recs, 512), cfg.CoarseParts)
		}
	case SparkH:
		scfg.SingleNodeIngest = true
	case StarkH:
		scfg.Namespace = "taxi"
		scfg.InitialGroups = 1
	case StarkE:
		scfg.Namespace = "taxi"
		scfg.InitialGroups = cfg.InitialGroups
		scfg.ReportSizes = true
	}
	s, err := ctx.NewStream(scfg)
	if err != nil {
		return nil, err
	}
	var steps []*stark.RDD
	for st := 0; st < cfg.WindowSteps; st++ {
		n := cfg.EventsPerStep
		if stepVolume != nil {
			n = stepVolume(st)
		}
		t2 := taxi
		t2.EventsPerStep = n
		recs := workload.MergedStep(t2, tw, st)
		steps = append(steps, s.Ingest(st, recs))
		ctx.Drain()
	}
	return &throughputSetup{
		ctx: ctx, stream: s, steps: steps, queryP: shared,
		grid: grid, sys: sys, cfg: cfg,
	}, nil
}

// zGridBounds returns parts-1 boundaries splitting the grid's Z-code range
// evenly.
func zGridBounds(g zorder.Grid, parts int) []string {
	bounds := make([]string, 0, parts-1)
	for i := 1; i < parts; i++ {
		bounds = append(bounds, zorder.Key(uint64(i)*g.Cells()/uint64(parts)))
	}
	return bounds
}

// makeQuery builds one random-window random-region cogroup-count job.
func (ts *throughputSetup) makeQuery(rng *rand.Rand) *stark.RDD {
	n := len(ts.steps)
	span := 2 + rng.Intn(4) // 2..5 timesteps
	if span > n {
		span = n
	}
	lo := rng.Intn(n - span + 1)
	window := ts.steps[lo : lo+span]
	var p stark.Partitioner
	switch ts.sys {
	case SparkR:
		// Spark-R fits yet another RangePartitioner for the query itself.
		p = stark.NewRangePartitioner(zGridBounds(ts.grid, ts.cfg.CoarseParts*4), ts.cfg.CoarseParts)
	default:
		p = ts.queryP
	}
	cg := ts.ctx.CoGroup(p, window...)
	keyLo, keyHi := workload.RandomRegion(rng, ts.grid, 2)
	return cg.Filter(func(r stark.Record) bool {
		return r.Key >= keyLo && r.Key <= keyHi
	})
}

// Fig19Point is one (rate, mean delay) measurement.
type Fig19Point struct {
	Rate      float64
	MeanDelay time.Duration
	P95Delay  time.Duration
}

// Fig19Result holds the delay-vs-load curves per system plus the derived
// throughput at the 800 ms cap.
type Fig19Result struct {
	Systems    []System
	Curves     map[System][]Fig19Point
	Throughput map[System]float64
}

// RunFig19 sweeps arrival rates for the four compared systems.
func RunFig19(cfg ThroughputConfig) (Fig19Result, error) {
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = []System{SparkR, SparkH, StarkE, StarkH}
	}
	res := Fig19Result{
		Systems:    systems,
		Curves:     make(map[System][]Fig19Point),
		Throughput: make(map[System]float64),
	}
	for _, sys := range res.Systems {
		for _, rate := range cfg.Rates {
			ts, err := setupThroughput(cfg, sys, nil)
			if err != nil {
				return res, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rate*7)))
			// Warm the cache layout with sequential queries so measurements
			// reflect steady state, not post-ingest convergence.
			for q := 0; q < 40; q++ {
				if _, _, err := ts.makeQuery(rng).Count(); err != nil {
					return res, err
				}
			}
			inter := time.Duration(float64(time.Second) / rate)
			results := ts.ctx.OpenLoop(inter, cfg.QueriesPerRate, func(i int) *stark.RDD {
				return ts.makeQuery(rng)
			})
			var ds []time.Duration
			for _, r := range results {
				ds = append(ds, r.Delay)
			}
			sum := metrics.Summarize(ds)
			point := Fig19Point{
				Rate:      rate,
				MeanDelay: sum.Mean,
				P95Delay:  sum.P95,
			}
			res.Curves[sys] = append(res.Curves[sys], point)
			if point.MeanDelay <= cfg.DelayCap {
				if rate > res.Throughput[sys] {
					res.Throughput[sys] = rate
				}
			}
		}
	}
	return res, nil
}

// Print emits the curves and the throughput row.
func (r Fig19Result) Print(w io.Writer) {
	fprintf(w, "Fig 19: delay vs offered load (paper: Spark-R 630ms@9/s; Spark-H 405ms@56/s; Stark-H 109ms@220/s; Stark-E slightly above Stark-H)\n")
	for _, sys := range r.Systems {
		fprintf(w, "  %s\n", sys)
		for _, pt := range r.Curves[sys] {
			fprintf(w, "    %6.0f jobs/s  mean %s  p95 %s\n", pt.Rate, fmtMs(pt.MeanDelay), fmtMs(pt.P95Delay))
		}
	}
	fprintf(w, "  throughput at %v cap:\n", 800*time.Millisecond)
	for _, sys := range r.Systems {
		fprintf(w, "    %-8s %6.0f jobs/s\n", sys, r.Throughput[sys])
	}
}
