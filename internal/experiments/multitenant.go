package experiments

// Multi-tenant overload oracle (robustness suite): N tenant sessions submit
// a fixed open-loop job plan through one JobServer while seed-derived
// TenantStorm and SlowTenant faults pile burst arrivals and poison jobs on
// top. The harness first runs each tenant alone on an otherwise idle server
// (the isolation oracle), then replays the full multi-tenant plan across
// fault seeds and checks the tenant-isolation contract:
//
//   - every planned job an overloaded run completes is bit-identical to the
//     same job's isolated single-tenant result;
//   - planned jobs are never shed (their priority sits above every storm
//     priority, so admission control must victimize storm jobs instead);
//   - no admitted job outlives its deadline without a typed cooperative
//     cancellation (ErrDeadlineExceeded), and no other error kind appears;
//   - identical concurrent submissions (the shared hot collect that tenants
//     0 and 1 both issue at t=0) compute once: DedupSubscriptions fires and
//     DuplicateComputations stays zero.
//
// It also reports open-loop throughput and latency/queue-delay percentiles
// over the completed planned jobs, which is the paper-facing measurement:
// graceful degradation means bounded delay for admitted work, not silent
// slowdown for everyone.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"stark"
	"stark/internal/session"
)

// plannedPriority sits above every storm priority (0..2), so admission
// control under storm pressure must shed storm jobs, never planned ones.
const plannedPriority = 3

// MultitenantConfig sizes the overload harness.
type MultitenantConfig struct {
	Seeds     int // fault schedules to sweep
	Executors int
	Slots     int

	Tenants       int           // tenant sessions per run
	JobsPerTenant int           // planned jobs per tenant
	Parts         int           // partitions per dataset
	Records       int           // base dataset size
	Interarrival  time.Duration // open-loop spacing between a tenant's jobs
	Deadline      time.Duration // per-job virtual deadline

	MaxActive      int // concurrent engine jobs the server dispatches
	QueuePerTenant int // per-tenant admission queue bound
	QueueTotal     int // global admission queue bound

	// DumpFaults, when non-nil, receives each seed's armed schedule.
	DumpFaults io.Writer
}

// DefaultMultitenant is the CI profile: 30 fault seeds over 4 tenants.
func DefaultMultitenant() MultitenantConfig {
	return MultitenantConfig{
		Seeds:          30,
		Executors:      4,
		Slots:          2,
		Tenants:        4,
		JobsPerTenant:  5,
		Parts:          8,
		Records:        3000,
		Interarrival:   25 * time.Millisecond,
		Deadline:       600 * time.Millisecond,
		MaxActive:      4,
		QueuePerTenant: 8,
		QueueTotal:     32,
	}
}

// MultitenantResult aggregates the sweep.
type MultitenantResult struct {
	Seeds       int
	Tenants     int
	PlannedJobs int           // planned submissions per run
	Horizon     time.Duration // fault window (fault-free oracle makespan)

	// Aggregates across all seed runs (planned + storm + poison jobs).
	Completed             int
	DeadlineCancelled     int
	Shed                  int // storm jobs victimized by admission control
	StormJobs             int // storm arrivals the injector delivered
	PoisonJobs            int // slow-tenant poison jobs delivered
	DedupSubscriptions    int
	DuplicateComputations int

	// Open-loop service metrics over completed planned jobs only.
	Throughput    float64 // mean completed planned jobs per virtual second
	P50, P95, P99 time.Duration
	MaxLatency    time.Duration
	QueueP99      time.Duration
	MaxQueueDelay time.Duration

	Violations []string
}

// plannedJob is one entry of the deterministic per-tenant submission plan.
type plannedJob struct {
	rdd    *stark.RDD
	action stark.JobAction
}

// mtOutcome records what one planned submission delivered.
type mtOutcome struct {
	delivered bool
	res       stark.TenantResult
	fp        uint64
}

// mtRun is one workload execution: outcomes indexed [tenant][job], plus the
// server and fault counters it ended with.
type mtRun struct {
	out      [][]mtOutcome
	stats    stark.JobServerStats
	faults   stark.FaultStats
	lastDone time.Duration // virtual time the last planned result landed
	end      time.Duration
	err      error
}

// multitenantWorkload runs the submission plan on a fresh context. only
// restricts the run to a single tenant index (the isolation oracle); -1
// runs every tenant. Extra options typically arm a fault schedule.
func multitenantWorkload(cfg MultitenantConfig, only int, opts ...stark.Option) (run mtRun) {
	run.out = make([][]mtOutcome, cfg.Tenants)
	for t := range run.out {
		run.out[t] = make([]mtOutcome, cfg.JobsPerTenant)
	}
	defer func() {
		if p := recover(); p != nil {
			run.err = fmt.Errorf("panic reached driver: %v", p)
		}
	}()

	base := []stark.Option{
		stark.WithExecutors(cfg.Executors),
		stark.WithSlots(cfg.Slots),
		stark.WithSeed(7),
	}
	ctx := stark.NewContext(append(base, opts...)...)
	srv := ctx.NewJobServer(stark.JobServerConfig{
		MaxActive:          cfg.MaxActive,
		MaxQueuedPerTenant: cfg.QueuePerTenant,
		MaxQueuedTotal:     cfg.QueueTotal,
	})
	defer func() {
		srv.Close()
		run.stats = srv.Stats()
		run.faults = ctx.FaultStats()
		run.end = ctx.Now()
	}()

	// Shared base data: a cached map stage feeding a cached per-key sum.
	recs := make([]stark.Record, cfg.Records)
	for i := range recs {
		recs[i] = stark.Pair(fmt.Sprintf("k%04d", i%173), i)
	}
	src := ctx.TextFile("mt-events", recs, cfg.Parts)
	clean := src.Map(func(r stark.Record) stark.Record {
		return stark.Pair(r.Key, r.Value.(int)*2+1)
	}).Cache()
	p := stark.NewHashPartitioner(cfg.Parts)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	hot := clean.ReduceByKey(p, sum).Cache()

	// Storm jobs are distinct small aggregations (fresh lineage node per
	// arrival, so they pressure the queues instead of deduplicating);
	// poison jobs stretch their cost with a map chain of depth ~factor.
	stark.SetStormJobs(srv, func(tenant, n int) (*stark.RDD, stark.JobAction) {
		k := n % 7
		q := clean.Filter(func(r stark.Record) bool {
			return r.Value.(int)%7 == k
		}).ReduceByKey(p, sum)
		return q, stark.ActionCount
	})
	stark.SetPoisonJobs(srv, func(tenant int, factor float64) (*stark.RDD, stark.JobAction) {
		depth := int(factor)
		if depth < 1 {
			depth = 1
		}
		r := clean
		for i := 0; i < depth; i++ {
			r = r.Map(func(rec stark.Record) stark.Record {
				return stark.Pair(rec.Key, rec.Value.(int)+1)
			})
		}
		return r.ReduceByKey(p, sum), stark.ActionCount
	})

	// The deterministic plan. Tenants 0 and 1 both open with the identical
	// hot collect (same lineage node), which the dedup index must compute
	// once; every other job is a tenant/step-specific filtered aggregation.
	sessions := make([]*stark.TenantSession, cfg.Tenants)
	plan := make([][]plannedJob, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		if only >= 0 && t != only {
			continue
		}
		sessions[t] = srv.RegisterTenant(fmt.Sprintf("tenant-%d", t), 1+t%3)
		plan[t] = make([]plannedJob, cfg.JobsPerTenant)
		for j := 0; j < cfg.JobsPerTenant; j++ {
			if j == 0 && t < 2 {
				plan[t][j] = plannedJob{hot, stark.ActionCollect}
				continue
			}
			m := (t*7 + j*3) % 11
			q := clean.Filter(func(r stark.Record) bool {
				return r.Value.(int)%11 == m
			}).ReduceByKey(p, sum)
			plan[t][j] = plannedJob{q, stark.ActionCount}
		}
	}

	for t := 0; t < cfg.Tenants; t++ {
		if sessions[t] == nil {
			continue
		}
		t := t
		for j := 0; j < cfg.JobsPerTenant; j++ {
			j := j
			ctx.At(time.Duration(j)*cfg.Interarrival, func() {
				plan[t][j].rdd.SubmitTo(sessions[t], plan[t][j].action, stark.JobSubmitOptions{
					Priority: plannedPriority,
					Deadline: cfg.Deadline,
					OnDone: func(r stark.TenantResult) {
						run.out[t][j] = mtOutcome{delivered: true, res: r, fp: resultFingerprint(r)}
						if now := ctx.Now(); now > run.lastDone {
							run.lastDone = now
						}
					},
				})
			})
		}
	}

	ctx.Drain()
	return run
}

// resultFingerprint hashes a delivered result: the count for count jobs and
// every partition's records, in engine order, for collects. Bit-identical
// results — the isolation contract — hash equal; anything reordered,
// dropped, or duplicated does not.
func resultFingerprint(r stark.TenantResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "count=%d;", r.Count)
	for pi, part := range r.Partitions {
		fmt.Fprintf(h, "p%d:", pi)
		for _, rec := range part {
			fmt.Fprintf(h, "%s=%v;", rec.Key, rec.Value)
		}
	}
	return h.Sum64()
}

// RunMultitenant executes the overload sweep: isolated per-tenant oracles,
// a fault-free multi-tenant oracle that fixes the fault horizon, then
// cfg.Seeds randomized storm/poison schedules, each checked against the
// tenant-isolation contract. The returned error lists contract violations;
// the result is populated either way.
func RunMultitenant(cfg MultitenantConfig) (*MultitenantResult, error) {
	res := &MultitenantResult{
		Seeds:       cfg.Seeds,
		Tenants:     cfg.Tenants,
		PlannedJobs: cfg.Tenants * cfg.JobsPerTenant,
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Phase 1: isolated oracles. Each tenant runs its plan alone on an
	// idle server; these fingerprints define "what this tenant's jobs
	// compute" independent of any co-tenant.
	iso := make([][]uint64, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		iso[t] = make([]uint64, cfg.JobsPerTenant)
		run := multitenantWorkload(cfg, t)
		if run.err != nil {
			violate("isolated oracle tenant %d: %v", t, run.err)
			continue
		}
		for j := 0; j < cfg.JobsPerTenant; j++ {
			out := run.out[t][j]
			if !out.delivered || out.res.Err != nil {
				violate("isolated oracle tenant %d job %d did not complete (err=%v)", t, j, out.res.Err)
				continue
			}
			iso[t][j] = out.fp
		}
	}

	// Phase 2: the fault-free multi-tenant oracle. Fixes the fault horizon
	// and proves the contract holds with concurrency but no overload.
	oracle := multitenantWorkload(cfg, -1)
	if oracle.err != nil {
		violate("multi-tenant oracle: %v", oracle.err)
	}
	res.Horizon = oracle.lastDone
	if res.Horizon == 0 {
		res.Horizon = oracle.end
	}
	for t := 0; t < cfg.Tenants; t++ {
		for j := 0; j < cfg.JobsPerTenant; j++ {
			out := oracle.out[t][j]
			if !out.delivered || out.res.Err != nil {
				violate("oracle tenant %d job %d did not complete (err=%v)", t, j, out.res.Err)
				continue
			}
			if out.fp != iso[t][j] {
				violate("oracle tenant %d job %d diverged from isolated run", t, j)
			}
		}
	}
	if oracle.stats.DedupSubscriptions == 0 {
		violate("oracle: shared hot collect was not deduplicated")
	}
	if oracle.stats.DuplicateComputations != 0 {
		violate("oracle: %d duplicate computations", oracle.stats.DuplicateComputations)
	}

	// Phase 3: the overload sweep.
	var allLat, allQD []time.Duration
	var thrSum float64
	thrRuns := 0
	for seed := 1; seed <= cfg.Seeds; seed++ {
		sched := stark.FaultSchedule{}.WithTenantFaults(int64(seed), res.Horizon, cfg.Tenants)
		if cfg.DumpFaults != nil {
			fprintf(cfg.DumpFaults, "seed %d:\n", seed)
			for _, line := range sched.Describe() {
				fprintf(cfg.DumpFaults, "  %s\n", line)
			}
		}
		run := multitenantWorkload(cfg, -1, stark.WithFaults(sched))
		if run.err != nil {
			violate("seed %d: %v", seed, run.err)
			continue
		}
		completed := 0
		for t := 0; t < cfg.Tenants; t++ {
			for j := 0; j < cfg.JobsPerTenant; j++ {
				out := run.out[t][j]
				if !out.delivered {
					violate("seed %d tenant %d job %d: no result delivered", seed, t, j)
					continue
				}
				r := out.res
				switch {
				case r.Err == nil:
					completed++
					if out.fp != iso[t][j] {
						violate("seed %d tenant %d job %d: result diverged from isolated run", seed, t, j)
					}
					if cfg.Deadline > 0 && r.Latency > cfg.Deadline {
						violate("seed %d tenant %d job %d: completed %v past its %v deadline without cancellation",
							seed, t, j, r.Latency-cfg.Deadline, cfg.Deadline)
					}
					allLat = append(allLat, r.Latency)
					allQD = append(allQD, r.QueueDelay)
				case errors.Is(r.Err, stark.ErrDeadlineExceeded):
					// Typed cooperative cancellation: the accepted way to
					// miss a deadline under overload.
				case errors.Is(r.Err, stark.ErrOverload):
					violate("seed %d tenant %d job %d: planned job shed despite priority shield", seed, t, j)
				default:
					violate("seed %d tenant %d job %d: unexpected error %v", seed, t, j, r.Err)
				}
			}
		}
		if run.stats.DuplicateComputations != 0 {
			violate("seed %d: %d duplicate computations for identical concurrent submissions",
				seed, run.stats.DuplicateComputations)
		}
		if run.stats.DedupSubscriptions == 0 {
			violate("seed %d: shared hot collect was not deduplicated", seed)
		}
		res.Completed += run.stats.Completed
		res.DeadlineCancelled += run.stats.DeadlineExceeded
		res.Shed += run.stats.Shed
		res.StormJobs += run.faults.StormJobs
		res.PoisonJobs += run.faults.PoisonJobs
		res.DedupSubscriptions += run.stats.DedupSubscriptions
		res.DuplicateComputations += run.stats.DuplicateComputations
		if run.lastDone > 0 && completed > 0 {
			thrSum += float64(completed) / run.lastDone.Seconds()
			thrRuns++
		}
	}

	if thrRuns > 0 {
		res.Throughput = thrSum / float64(thrRuns)
	}
	res.P50 = session.Percentile(allLat, 0.50)
	res.P95 = session.Percentile(allLat, 0.95)
	res.P99 = session.Percentile(allLat, 0.99)
	res.MaxLatency = session.Percentile(allLat, 1)
	res.QueueP99 = session.Percentile(allQD, 0.99)
	res.MaxQueueDelay = session.Percentile(allQD, 1)

	if len(res.Violations) > 0 {
		return res, fmt.Errorf("multitenant: %d contract violations (first: %s)",
			len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// Print renders the sweep summary.
func (r *MultitenantResult) Print(w io.Writer) {
	fprintf(w, "\n== multitenant: admission control, fairness, deadlines under overload ==\n")
	fprintf(w, "seeds=%d tenants=%d plannedJobs=%d/run horizon=%v\n",
		r.Seeds, r.Tenants, r.PlannedJobs, r.Horizon.Round(time.Millisecond))
	fprintf(w, "injected: stormJobs=%d poisonJobs=%d\n", r.StormJobs, r.PoisonJobs)
	fprintf(w, "outcomes: completed=%d deadlineCancelled=%d shed=%d dedupSubs=%d dupComputes=%d\n",
		r.Completed, r.DeadlineCancelled, r.Shed, r.DedupSubscriptions, r.DuplicateComputations)
	fprintf(w, "planned-job service: throughput=%.1f jobs/vs latency p50=%v p95=%v p99=%v max=%v\n",
		r.Throughput,
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond),
		r.P99.Round(time.Millisecond), r.MaxLatency.Round(time.Millisecond))
	fprintf(w, "queue delay: p99=%v max=%v\n",
		r.QueueP99.Round(time.Millisecond), r.MaxQueueDelay.Round(time.Millisecond))
	if len(r.Violations) == 0 {
		fprintf(w, "PASS: all %d seeds upheld tenant isolation (bit-identical results, typed errors only, zero duplicate computations)\n", r.Seeds)
		return
	}
	fprintf(w, "FAIL: %d violations\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 12 {
			fprintf(w, "  ... and %d more\n", len(r.Violations)-i)
			break
		}
		fprintf(w, "  %s\n", v)
	}
}
