package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"stark"
	"stark/internal/workload"
)

// ChurnResult quantifies the Sec. I forensics scenario: a collection that
// continuously loads and evicts datasets while serving correlated queries.
// It compares co-locality on vs off on the same churn schedule — the
// "dynamic dataset collection" stressed end to end.
type ChurnResult struct {
	Cycles int
	// MeanDelay per configuration.
	WithCoLocality    time.Duration
	WithoutCoLocality time.Duration
	// HitRate per configuration (cache hits over cache-intended reads).
	HitWith    float64
	HitWithout float64
}

// ChurnConfig sizes the scenario.
type ChurnConfig struct {
	Cycles          int
	LiveDatasets    int
	QueriesPerCycle int
	Seed            int64
}

// DefaultChurn keeps eight datasets live across twelve load/evict cycles.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{Cycles: 12, LiveDatasets: 8, QueriesPerCycle: 3, Seed: 23}
}

// RunChurn drives the load→query→evict loop under both configurations.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	gen := workload.DefaultSyslog()
	gen.LinesPerDataset = 6000

	run := func(coloc bool) (time.Duration, float64, error) {
		opts := []stark.Option{
			stark.WithExecutors(8), stark.WithSlots(4),
			stark.WithSizeScale(420),
			stark.WithMemory(4 << 30),
			stark.WithLocalityWait(250 * time.Millisecond),
			stark.WithSeed(cfg.Seed),
		}
		if coloc {
			opts = append(opts, stark.WithCoLocality(), stark.WithMCF())
		}
		ctx := stark.NewContext(opts...)
		p := stark.NewHashPartitioner(16)
		const ns = "churn"
		if coloc {
			if err := ctx.RegisterNamespace(ns, p, 1); err != nil {
				return 0, 0, err
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		var live []*stark.RDD
		loadOne := func(i int) error {
			service := gen.Services[i%len(gen.Services)]
			recs := gen.Dataset(service, i)
			src := ctx.FromPartitions(fmt.Sprintf("%s-%d", service, i), chunkRecords(recs, 8), true)
			var r *stark.RDD
			if coloc {
				r = src.LocalityPartitionBy(p, ns)
			} else {
				r = src.PartitionBy(p)
			}
			r.Cache()
			if _, err := r.Materialize(); err != nil {
				return err
			}
			live = append(live, r)
			return nil
		}
		for i := 0; i < cfg.LiveDatasets; i++ {
			if err := loadOne(i); err != nil {
				return 0, 0, err
			}
		}
		var delays []time.Duration
		next := cfg.LiveDatasets
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			// Evict the oldest, load a fresh dataset.
			live[0].Unpersist()
			live = live[1:]
			if err := loadOne(next); err != nil {
				return 0, 0, err
			}
			next++
			for q := 0; q < cfg.QueriesPerCycle; q++ {
				k := 2 + rng.Intn(3)
				lo := rng.Intn(len(live) - k + 1)
				query := ctx.CoGroup(p, live[lo:lo+k]...)
				_, jm, err := query.Count()
				if err != nil {
					return 0, 0, err
				}
				delays = append(delays, jm.Makespan())
			}
		}
		var sum time.Duration
		for _, d := range delays {
			sum += d
		}
		st := ctx.Stats()
		return sum / time.Duration(len(delays)), st.CacheHitRate(), nil
	}

	res := ChurnResult{Cycles: cfg.Cycles}
	var err error
	if res.WithCoLocality, res.HitWith, err = run(true); err != nil {
		return res, err
	}
	if res.WithoutCoLocality, res.HitWithout, err = run(false); err != nil {
		return res, err
	}
	return res, nil
}

func chunkRecords(recs []stark.Record, n int) [][]stark.Record {
	out := make([][]stark.Record, n)
	if len(recs) == 0 {
		return out
	}
	for i, r := range recs {
		p := i * n / len(recs)
		out[p] = append(out[p], r)
	}
	return out
}

// Print emits the comparison.
func (r ChurnResult) Print(w io.Writer) {
	fprintf(w, "Churn: dynamic load/evict collection with correlated queries (Sec. I forensics scenario)\n")
	fprintf(w, "  %-16s %10s %9s\n", "config", "mean", "cacheHit")
	fprintf(w, "  %-16s %s %8.0f%%\n", "co-locality", fmtMs(r.WithCoLocality), r.HitWith*100)
	fprintf(w, "  %-16s %s %8.0f%%\n", "stock placement", fmtMs(r.WithoutCoLocality), r.HitWithout*100)
}
