package experiments

import (
	"fmt"
	"io"
	"time"

	"stark"
)

// Fig11Config sizes the co-locality experiment (Sec. IV-B): hourly
// Wikipedia log files of ~800 MB each on an 8-server cluster with 8
// partitions, queried by cogroup-and-count-keyword jobs.
type Fig11Config struct {
	RecordsPerFile int
	SizeScale      float64
	NumFiles       int
	CoGroupKs      []int
	QueriesPerK    int
	MemoryPerExec  int64
	NetBandwidth   int64
	DiskBandwidth  int64
	GCBase         float64
	GCKnee         float64
	GCMax          float64
	GCPower        float64
	Seed           int64
}

// DefaultFig11 stands in for the paper's setup: 20k in-process records *
// ~95 B * 420 ~= 800 MB per hourly file; 2 GB executor caches reproduce the
// replication-driven eviction churn that keeps Spark-H slow.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		RecordsPerFile: 20000,
		SizeScale:      420,
		NumFiles:       8,
		CoGroupKs:      []int{1, 2, 3, 4, 5, 6},
		QueriesPerK:    3,
		MemoryPerExec:  3 << 30,
		NetBandwidth:   45 << 20, // shared 1 GbE under reducer contention
		DiskBandwidth:  110 << 20,
		GCBase:         0.05,
		GCKnee:         0.65,
		GCMax:          6,
		GCPower:        2,
		Seed:           1,
	}
}

// Fig11Result holds mean job delay per cogrouped-RDD count for Spark-H and
// Stark-H (Fig. 11), plus the per-task metrics of the last query at each k
// for the task-level breakdown (Fig. 12).
type Fig11Result struct {
	Ks     []int
	SparkH []time.Duration
	StarkH []time.Duration

	// TasksSpark[k] / TasksStark[k] hold the last query's job stats.
	TasksSpark map[int]stark.JobStats
	TasksStark map[int]stark.JobStats
}

// RunFig11 executes both systems across the cogroup range.
func RunFig11(cfg Fig11Config) (Fig11Result, error) {
	res := Fig11Result{
		Ks:         cfg.CoGroupKs,
		TasksSpark: make(map[int]stark.JobStats),
		TasksStark: make(map[int]stark.JobStats),
	}
	hours := make([][]stark.Record, cfg.NumFiles)
	for h := range hours {
		hours[h] = makeLogFile(cfg.Seed+int64(h)*977, cfg.RecordsPerFile)
	}
	keywords := []string{"article-001", "article-02", "latency=1", "article-1", "request-0", "latency=33"}

	run := func(sys System) ([]time.Duration, map[int]stark.JobStats, error) {
		cc := stark.DefaultClusterConfig()
		cc.NumExecutors = 8
		cc.SlotsPerExecutor = 4
		cc.MemoryPerExecutor = cfg.MemoryPerExec
		cc.NetBandwidth = cfg.NetBandwidth
		cc.DiskBandwidth = cfg.DiskBandwidth
		cc.SizeScale = cfg.SizeScale
		ctx := stark.NewContext(contextOptions(sys, nil,
			stark.WithClusterConfig(cc),
			stark.WithGC(cfg.GCBase, cfg.GCKnee, cfg.GCMax, cfg.GCPower),
			stark.WithSeed(cfg.Seed),
		)...)
		rdds, p, err := ingestCollection(ctx, sys, "wiki", hours, 8, nil)
		if err != nil {
			return nil, nil, err
		}
		var delays []time.Duration
		lastJob := make(map[int]stark.JobStats)
		for _, k := range cfg.CoGroupKs {
			var total time.Duration
			var jm stark.JobStats
			for q := 0; q < cfg.QueriesPerK; q++ {
				// Each query cogroups a sliding range of k trace RDDs with a
				// random keyword, like the paper's log-mining queries.
				lo := q % (len(rdds) - k + 1)
				job := keywordCountJob(ctx, p, rdds[lo:lo+k], keywords[(k+q)%len(keywords)])
				var err error
				_, jm, err = job.Count()
				if err != nil {
					return nil, nil, err
				}
				total += jm.Makespan()
			}
			delays = append(delays, total/time.Duration(cfg.QueriesPerK))
			lastJob[k] = jm
		}
		return delays, lastJob, nil
	}

	var err error
	res.SparkH, res.TasksSpark, err = run(SparkH)
	if err != nil {
		return res, err
	}
	res.StarkH, res.TasksStark, err = run(StarkH)
	if err != nil {
		return res, err
	}
	return res, nil
}

// Print emits the Fig. 11 series.
func (r Fig11Result) Print(w io.Writer) {
	fprintf(w, "Fig 11: co-locality job delay (paper: Stark-H flat ~5-9s; Spark-H grows to ~46s at k=5; gap narrows at k=6 from GC)\n")
	fprintf(w, "  %8s  %10s  %10s  %6s\n", "cogroup", "Spark-H", "Stark-H", "ratio")
	for i, k := range r.Ks {
		ratio := float64(r.SparkH[i]) / float64(r.StarkH[i])
		fprintf(w, "  %8d  %s  %s  %5.1fx\n", k, fmtSec(r.SparkH[i]), fmtSec(r.StarkH[i]), ratio)
	}
}

// PrintFig12 emits the task-level view for k in ks: tasks sorted by delay
// with their GC share — the paper's Fig. 12.
func (r Fig11Result) PrintFig12(w io.Writer, ks []int) {
	fprintf(w, "Fig 12: per-task delay, sorted, with GC share (paper: GC explodes for cogroup-6)\n")
	for _, sys := range []struct {
		name string
		m    map[int]stark.JobStats
	}{{"Stark", r.TasksStark}, {"Spark", r.TasksSpark}} {
		for _, k := range ks {
			jm, ok := sys.m[k]
			if !ok {
				continue
			}
			fprintf(w, "  %s cogroup %d RDDs:\n", sys.name, k)
			for i, tm := range jm.TasksSortedByDuration() {
				gcShare := 0.0
				if tm.Duration() > 0 {
					gcShare = float64(tm.GC) / float64(tm.Duration()) * 100
				}
				fprintf(w, "    task %d: %s (gc %4.1f%%, locality %s)\n",
					i+1, fmtSec(tm.Duration()), gcShare, tm.Locality)
			}
		}
	}
}

// fig11Keyword avoids the unused-import dance in tests.
var _ = fmt.Sprintf
