package experiments

import (
	"io"
	"time"

	"stark"
)

// Fig07Result reproduces Fig. 7: job delay of C.count as a function of the
// HashPartitioner's partition count — a U-shape where too few partitions
// starve parallelism and too many drown the scheduler in per-task overhead.
type Fig07Result struct {
	Partitions []int
	Delay      []time.Duration
}

// Fig07Config sizes the sweep.
type Fig07Config struct {
	Records    int
	SizeScale  float64
	Partitions []int
	Seed       int64
}

// DefaultFig07 sweeps the paper's 10^0..10^5 range.
func DefaultFig07() Fig07Config {
	return Fig07Config{
		Records:    40000,
		SizeScale:  175,
		Partitions: []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 100000},
		Seed:       1,
	}
}

// RunFig07 executes the sweep; each point uses a fresh cluster.
func RunFig07(cfg Fig07Config) (Fig07Result, error) {
	res := Fig07Result{Partitions: cfg.Partitions}
	lines := makeLogFile(cfg.Seed, cfg.Records)
	for _, n := range cfg.Partitions {
		ctx := stark.NewContext(
			stark.WithExecutors(8), stark.WithSlots(4),
			stark.WithSizeScale(cfg.SizeScale), stark.WithSeed(cfg.Seed),
		)
		a := ctx.TextFile("file", lines, 8)
		c := a.PartitionBy(stark.NewHashPartitioner(n)).Filter(isError).Cache()
		_, jm, err := c.Count()
		if err != nil {
			return res, err
		}
		res.Delay = append(res.Delay, jm.Makespan())
	}
	return res, nil
}

// Print emits the series.
func (r Fig07Result) Print(w io.Writer) {
	fprintf(w, "Fig 7: partition-count trade-off (paper: U-shape, min ~5s near 10^2-10^3, ~20s at 10^5)\n")
	fprintf(w, "  %10s  %s\n", "partitions", "delay")
	for i, n := range r.Partitions {
		fprintf(w, "  %10d  %s\n", n, fmtSec(r.Delay[i]))
	}
}

// Best returns the partition count with minimum delay.
func (r Fig07Result) Best() (int, time.Duration) {
	best, bd := 0, time.Duration(0)
	for i, n := range r.Partitions {
		if i == 0 || r.Delay[i] < bd {
			best, bd = n, r.Delay[i]
		}
	}
	return best, bd
}
