package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"

	"stark"
)

// CachePolicyConfig sizes the eviction-policy A/B: a cached base dataset
// joined (narrow, co-partitioned) against a fresh cached batch per round,
// under a cache deliberately too small to hold the base plus two batches.
type CachePolicyConfig struct {
	Executors int
	Slots     int
	Parts     int

	BaseRecords  int // distinct keys in the long-lived base dataset
	BatchRecords int // distinct keys per per-round batch (drawn from base's key space)
	Rounds       int

	// Memory is the per-executor cache capacity in simulated bytes. Zero
	// auto-sizes it from a probe run to baseBytes + 1.25*batchBytes, the
	// regime where each round's batch puts force eviction but the stale
	// previous batch alone can absorb the whole need.
	Memory int64

	Seeds int // engine timing seeds per arm; both arms share each seed
}

// DefaultCachePolicy keeps one executor so both arms contend for a single
// deterministic block store.
func DefaultCachePolicy() CachePolicyConfig {
	return CachePolicyConfig{
		Executors:    1,
		Slots:        4,
		Parts:        8,
		BaseRecords:  4000,
		BatchRecords: 1500,
		Rounds:       8,
		Seeds:        5,
	}
}

// CachePolicyArm aggregates one policy's counters over all seeds.
type CachePolicyArm struct {
	Policy string

	Recomputes   int // recomputes of previously evicted cached blocks
	Refusals     int // graceful cache refusals (compute-and-stream)
	PinnedBlocks int // refusals caused by pinned peer groups
	HitRate      float64
	Makespan     time.Duration // summed virtual makespan over seeds
}

// CachePolicyResult is the LRU-vs-DAG comparison. Fingerprints must match
// per seed, and the DAG arm must strictly reduce recomputes-after-eviction.
type CachePolicyResult struct {
	Cfg    CachePolicyConfig
	Memory int64 // resolved per-executor capacity

	LRU CachePolicyArm
	DAG CachePolicyArm
}

type cachePolicyRun struct {
	fingerprint string
	cache       stark.CacheStats
	hitRate     float64
	makespan    time.Duration
	err         error
}

// cpBatchRecords builds round r's batch: the same unique keys every round,
// but with value payloads sized by partition parity — partitions in the
// heavy half carry large values, the rest small, and the heavy half flips
// each round. Round totals stay constant, yet every heavy put needs more
// bytes than the (previously light) stale part at the LRU tail, so plain
// LRU must keep evicting past it into the base partitions interleaved
// there. The DAG-aware policy instead satisfies the whole need from its
// first pass over zero-reference stale blocks anywhere in the cache.
func cpBatchRecords(cfg CachePolicyConfig, p stark.Partitioner, r int) []stark.Record {
	heavy := strings.Repeat("x", 160)
	light := strings.Repeat("x", 8)
	recs := make([]stark.Record, cfg.BatchRecords)
	for j := range recs {
		key := fmt.Sprintf("k%06d", j%cfg.BaseRecords)
		pad := light
		if (p.PartitionFor(key) < cfg.Parts/2) == (r%2 == 0) {
			pad = heavy
		}
		recs[j] = stark.Pair(key, pad)
	}
	return recs
}

// cachePolicyWorkload materializes a cached base (ReduceByKey over unique
// keys, partitioned by p), then for each round builds a fresh cached batch
// with the same partitioner and counts batch.Join(p, base). Both join deps
// are narrow (equivalent partitioners, equal partition counts), so the
// single result stage's narrow chain holds BOTH cached parents: the
// DAG-aware policy keeps base pinned by reference counts exactly while the
// batch's puts force eviction, and clears stale zero-reference batches
// first. LRU interleaves stale-batch and base victims by recency and pays
// recomputes for the base partitions it ages out.
func cachePolicyWorkload(cfg CachePolicyConfig, policy string, seed int64, memory int64) (run cachePolicyRun) {
	defer func() {
		if p := recover(); p != nil {
			run.err = fmt.Errorf("panic reached driver: %v", p)
		}
	}()
	ctx := stark.NewContext(
		stark.WithExecutors(cfg.Executors),
		stark.WithSlots(cfg.Slots),
		stark.WithMemory(memory),
		stark.WithSeed(seed),
		stark.WithCachePolicy(policy),
	)
	defer func() {
		run.cache = ctx.CacheStats()
		run.hitRate = ctx.Stats().CacheHitRate()
		run.makespan = ctx.Now()
	}()

	p := stark.NewHashPartitioner(cfg.Parts)
	sum := func(a, b any) any { return a.(int) + b.(int) }

	baseRecs := make([]stark.Record, cfg.BaseRecords)
	for i := range baseRecs {
		baseRecs[i] = stark.Pair(fmt.Sprintf("k%06d", i), i)
	}
	base := ctx.TextFile("cp-base", baseRecs, cfg.Parts).ReduceByKey(p, sum).Cache()

	h := fnv.New64a()
	total, _, err := base.Count()
	if err != nil {
		run.err = fmt.Errorf("base build: %w", err)
		return run
	}
	fmt.Fprintf(h, "base=%d;", total)

	first := func(a, b any) any { return a }
	for r := 0; r < cfg.Rounds; r++ {
		batch := ctx.TextFile(fmt.Sprintf("cp-batch-%02d", r), cpBatchRecords(cfg, p, r), cfg.Parts).
			ReduceByKey(p, first).Cache()
		n, _, err := batch.Join(p, base).Count()
		if err != nil {
			run.err = fmt.Errorf("round %d: %w", r, err)
			return run
		}
		fmt.Fprintf(h, "r%d=%d;", r, n)
	}
	run.fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return run
}

// probeCachePolicyMemory measures the workload's cached footprint under an
// effectively unbounded cache: base bytes right after the base materializes,
// batch bytes as the increment after one round (the stale batch stays
// cached when nothing forces it out).
func probeCachePolicyMemory(cfg CachePolicyConfig) (int64, error) {
	ctx := stark.NewContext(
		stark.WithExecutors(cfg.Executors),
		stark.WithSlots(cfg.Slots),
		stark.WithMemory(1<<40),
		stark.WithSeed(1),
	)
	p := stark.NewHashPartitioner(cfg.Parts)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	baseRecs := make([]stark.Record, cfg.BaseRecords)
	for i := range baseRecs {
		baseRecs[i] = stark.Pair(fmt.Sprintf("k%06d", i), i)
	}
	base := ctx.TextFile("cp-base", baseRecs, cfg.Parts).ReduceByKey(p, sum).Cache()
	if _, _, err := base.Count(); err != nil {
		return 0, fmt.Errorf("probe base: %w", err)
	}
	baseBytes := cacheUsed(ctx)

	first := func(a, b any) any { return a }
	batch := ctx.TextFile("cp-batch-00", cpBatchRecords(cfg, p, 0), cfg.Parts).
		ReduceByKey(p, first).Cache()
	if _, _, err := batch.Join(p, base).Count(); err != nil {
		return 0, fmt.Errorf("probe round: %w", err)
	}
	batchBytes := cacheUsed(ctx) - baseBytes
	if baseBytes <= 0 || batchBytes <= 0 {
		return 0, fmt.Errorf("probe measured degenerate sizes: base=%d batch=%d", baseBytes, batchBytes)
	}
	return baseBytes + batchBytes + batchBytes/4, nil
}

func cacheUsed(ctx *stark.Context) int64 {
	var used int64
	for _, es := range ctx.ClusterStats() {
		used += es.CacheUsed
	}
	return used
}

// RunCachePolicy runs both arms on the same seeds and enforces the
// acceptance contract: bit-identical results per seed and strictly fewer
// recomputes-after-eviction under the DAG-aware policy.
func RunCachePolicy(cfg CachePolicyConfig) (CachePolicyResult, error) {
	res := CachePolicyResult{Cfg: cfg, LRU: CachePolicyArm{Policy: "lru"}, DAG: CachePolicyArm{Policy: "dag"}}
	mem := cfg.Memory
	if mem == 0 {
		var err error
		if mem, err = probeCachePolicyMemory(cfg); err != nil {
			return res, err
		}
	}
	res.Memory = mem

	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	for s := 0; s < seeds; s++ {
		seed := int64(1000 + 7*s)
		lru := cachePolicyWorkload(cfg, "lru", seed, mem)
		if lru.err != nil {
			return res, fmt.Errorf("seed %d lru: %w", seed, lru.err)
		}
		dag := cachePolicyWorkload(cfg, "dag", seed, mem)
		if dag.err != nil {
			return res, fmt.Errorf("seed %d dag: %w", seed, dag.err)
		}
		if lru.fingerprint != dag.fingerprint {
			return res, fmt.Errorf("seed %d: result divergence between policies: lru=%s dag=%s",
				seed, lru.fingerprint, dag.fingerprint)
		}
		accumulateArm(&res.LRU, lru)
		accumulateArm(&res.DAG, dag)
	}
	res.LRU.HitRate /= float64(seeds)
	res.DAG.HitRate /= float64(seeds)

	if res.DAG.Recomputes >= res.LRU.Recomputes {
		return res, fmt.Errorf("DAG-aware policy did not strictly reduce recomputes-after-eviction: dag=%d lru=%d",
			res.DAG.Recomputes, res.LRU.Recomputes)
	}
	return res, nil
}

func accumulateArm(a *CachePolicyArm, run cachePolicyRun) {
	a.Recomputes += run.cache.RecomputesAfterEviction
	a.Refusals += run.cache.CacheRefusals
	a.PinnedBlocks += run.cache.PinnedEvictionsBlocked
	a.HitRate += run.hitRate
	a.Makespan += run.makespan
}

// Print emits the comparison.
func (r CachePolicyResult) Print(w io.Writer) {
	fprintf(w, "Cache policy A/B: LRU vs DAG-aware eviction under a %d-byte cache (%d seeds, %d rounds)\n",
		r.Memory, r.Cfg.Seeds, r.Cfg.Rounds)
	fprintf(w, "  %-8s %12s %10s %13s %9s %12s\n",
		"policy", "recomputes", "refusals", "pinnedBlocked", "cacheHit", "makespan")
	for _, a := range []CachePolicyArm{r.LRU, r.DAG} {
		fprintf(w, "  %-8s %12d %10d %13d %8.0f%% %12s\n",
			a.Policy, a.Recomputes, a.Refusals, a.PinnedBlocks, a.HitRate*100, fmtMs(a.Makespan))
	}
	if r.LRU.Recomputes > 0 {
		fprintf(w, "  recomputes-after-eviction reduced %d -> %d (%.0f%%)\n",
			r.LRU.Recomputes, r.DAG.Recomputes,
			100*(1-float64(r.DAG.Recomputes)/float64(r.LRU.Recomputes)))
	}
}
