// Package experiments reproduces every measured figure of the paper's
// evaluation (Sec. IV) on the simulated cluster. Each RunFigNN function
// returns a structured result whose Print method emits the same rows or
// series the paper plots; cmd/starkbench and the repository's benchmarks
// are thin wrappers around these functions.
//
// Absolute times depend on the calibrated cost model and will not match the
// authors' testbed; the claims under reproduction are the *shapes*: who
// wins, by what rough factor, and where crossovers happen. EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"stark"
	"stark/internal/workload"
)

// System names one of the paper's compared configurations (Sec. IV-A).
type System int

// The five evaluated configurations.
const (
	SparkR System = iota + 1 // fresh RangePartitioner per RDD
	SparkH                   // shared HashPartitioner, no co-locality
	StarkH                   // shared HashPartitioner + co-locality
	StarkS                   // shared StaticRangePartitioner + co-locality
	StarkE                   // Stark-S + extendable groups + MCF
)

// String renders the paper's configuration names.
func (s System) String() string {
	switch s {
	case SparkR:
		return "Spark-R"
	case SparkH:
		return "Spark-H"
	case StarkH:
		return "Stark-H"
	case StarkS:
		return "Stark-S"
	case StarkE:
		return "Stark-E"
	default:
		return "unknown"
	}
}

// UsesCoLocality reports whether the configuration enables the
// LocalityManager.
func (s System) UsesCoLocality() bool { return s == StarkH || s == StarkS || s == StarkE }

// contextOptions builds the engine options for a system on top of shared
// cluster options.
func contextOptions(sys System, groupBounds stark.Option, base ...stark.Option) []stark.Option {
	opts := append([]stark.Option{}, base...)
	switch sys {
	case StarkH, StarkS:
		opts = append(opts, stark.WithCoLocality())
	case StarkE:
		if groupBounds != nil {
			opts = append(opts, groupBounds)
		}
		opts = append(opts, stark.WithCoLocality(), stark.WithMCF())
	}
	return opts
}

// logLine fabricates a Wikipedia-like log record. About one line in ten is
// an ERROR line, feeding the Fig. 1 filter chain.
func logLine(rng *rand.Rand, i int) stark.Record {
	sev := "INFO "
	if i%10 == 0 {
		sev = "ERROR"
	}
	key := fmt.Sprintf("%02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60))
	val := fmt.Sprintf("%s request-%06d /wiki/article-%04d latency=%dms", sev, i, rng.Intn(3000), rng.Intn(500))
	return stark.Pair(key, val)
}

// makeLogFile builds n log records (~90 bytes each in-process).
func makeLogFile(seed int64, n int) []stark.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stark.Record, n)
	for i := range out {
		out[i] = logLine(rng, i)
	}
	return out
}

func isError(r stark.Record) bool {
	s, ok := r.Value.(string)
	return ok && strings.HasPrefix(s, "ERROR")
}

func fmtSec(d time.Duration) string { return fmt.Sprintf("%6.2fs", d.Seconds()) }

func fmtMs(d time.Duration) string { return fmt.Sprintf("%6.0fms", float64(d.Milliseconds())) }

func fprintf(w io.Writer, format string, args ...any) {
	// Experiment printing is best-effort; an error writing to stdout is not
	// actionable mid-report.
	_, _ = fmt.Fprintf(w, format, args...)
}

// keywordCountJob is the Sec. IV-B log-mining query: cogroup a range of
// trace RDDs and count items containing a keyword.
func keywordCountJob(ctx *stark.Context, p stark.Partitioner, rdds []*stark.RDD, keyword string) *stark.RDD {
	cg := ctx.CoGroup(p, rdds...)
	return cg.Filter(func(r stark.Record) bool {
		v, ok := r.Value.(stark.CoGrouped)
		if !ok {
			return false
		}
		for _, g := range v.Groups {
			for _, item := range g {
				if s, ok := item.(string); ok && strings.Contains(s, keyword) {
					return true
				}
			}
		}
		return false
	})
}

// ingestCollection loads hourly datasets into a context under the
// system's partitioning discipline and returns the partitioned cached RDDs
// plus the partitioner used for queries.
func ingestCollection(ctx *stark.Context, sys System, ns string, hours [][]stark.Record,
	hashParts int, staticBounds []string) ([]*stark.RDD, stark.Partitioner, error) {
	var shared stark.Partitioner
	switch sys {
	case SparkH, StarkH:
		shared = stark.NewHashPartitioner(hashParts)
	case StarkS, StarkE:
		shared = stark.NewStaticRangePartitioner(staticBounds)
	}
	if sys.UsesCoLocality() {
		groups := 1
		if sys == StarkE {
			groups = initialGroupsFor(len(staticBounds) + 1)
		}
		if err := ctx.RegisterNamespace(ns, shared, groups); err != nil {
			return nil, nil, err
		}
	}
	var out []*stark.RDD
	queryP := shared
	for h, recs := range hours {
		src := ctx.TextFile(fmt.Sprintf("%s-hour%d", ns, h), recs, ctx.NumExecutors())
		var r *stark.RDD
		switch sys {
		case SparkR:
			sample := sampleKeys(recs, 1024)
			fresh := stark.NewRangePartitioner(sample, hashParts)
			r = src.PartitionBy(fresh)
			queryP = fresh // queries must also fit some partitioner; use last
		case SparkH:
			r = src.PartitionBy(shared)
		default:
			r = src.LocalityPartitionBy(shared, ns)
		}
		r.Cache()
		if _, err := r.Materialize(); err != nil {
			return nil, nil, err
		}
		if sys == StarkE {
			if _, err := ctx.ReportRDD(r); err != nil {
				return nil, nil, err
			}
		}
		out = append(out, r)
	}
	return out, queryP, nil
}

// initialGroupsFor picks a power-of-two initial group count of about an
// eighth of the partition count, minimum 2.
func initialGroupsFor(parts int) int {
	g := 2
	for g*8 < parts {
		g *= 2
	}
	return g
}

func sampleKeys(recs []stark.Record, n int) []string {
	if len(recs) == 0 {
		return nil
	}
	stepSize := len(recs) / n
	if stepSize < 1 {
		stepSize = 1
	}
	var out []string
	for i := 0; i < len(recs); i += stepSize {
		out = append(out, recs[i].Key)
	}
	return out
}

var _ = workload.DefaultWikipedia // keep the dependency explicit for later files
