package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the *shapes* the paper reports, not absolute
// numbers: orderings, rough factors, crossovers.

func TestFig01LocalityShape(t *testing.T) {
	r, err := RunFig01(DefaultFig01())
	if err != nil {
		t.Fatal(err)
	}
	if r.C <= r.DMinus {
		t.Errorf("C (%v) must exceed D- (%v): the first job pays the load+shuffle stage", r.C, r.DMinus)
	}
	if r.DMinus < 10*r.D {
		t.Errorf("violating locality (%v) must be >=10x the cached run (%v)", r.DMinus, r.D)
	}
	if r.D > 500*time.Millisecond {
		t.Errorf("cached count %v, paper keeps it under ~0.2s", r.D)
	}
}

func TestFig07UShape(t *testing.T) {
	cfg := DefaultFig07()
	cfg.Partitions = []int{1, 16, 256, 4096, 65536}
	r, err := RunFig07(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bestN, bestD := r.Best()
	if bestN == 1 || bestN == 65536 {
		t.Errorf("minimum at an extreme (%d): no U-shape", bestN)
	}
	if r.Delay[0] < 2*bestD {
		t.Errorf("single-partition delay %v not >=2x the optimum %v", r.Delay[0], bestD)
	}
	last := r.Delay[len(r.Delay)-1]
	if last < 3*bestD {
		t.Errorf("65536-partition delay %v not >=3x the optimum %v (task overhead missing)", last, bestD)
	}
}

func TestFig11CoLocalityShape(t *testing.T) {
	cfg := DefaultFig11()
	cfg.QueriesPerK = 3
	r, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stark-H stays roughly flat; Spark-H grows with the cogroup width.
	k1, kLast := 0, len(r.Ks)-1
	if r.SparkH[kLast] < 4*r.SparkH[k1] {
		t.Errorf("Spark-H did not grow with k: %v -> %v", r.SparkH[k1], r.SparkH[kLast])
	}
	k5 := len(r.Ks) - 2
	ratio5 := float64(r.SparkH[k5]) / float64(r.StarkH[k5])
	if ratio5 < 3 {
		t.Errorf("speedup at k=5 = %.1f, paper reports ~5x", ratio5)
	}
	ratio6 := float64(r.SparkH[kLast]) / float64(r.StarkH[kLast])
	if ratio6 >= ratio5 {
		t.Errorf("GC did not narrow the gap at k=6: ratio5=%.1f ratio6=%.1f", ratio5, ratio6)
	}
	// Fig 12: the Stark cogroup-6 job must show a real GC share.
	jm := r.TasksStark[r.Ks[kLast]]
	slowest := jm.TasksSortedByDuration()[0]
	if gcShare := float64(slowest.GC) / float64(slowest.Duration()); gcShare < 0.2 {
		t.Errorf("k=6 slowest Stark task GC share = %.2f, expected heavy GC", gcShare)
	}
}

func TestSkewSuiteShape(t *testing.T) {
	r, err := RunSkew(DefaultSkew())
	if err != nil {
		t.Fatal(err)
	}
	imbalance := func(sys System, col string) float64 {
		sizes := r.InputSizes[sys][col]
		var max, sum int64
		for _, s := range sizes {
			sum += s
			if s > max {
				max = s
			}
		}
		if sum == 0 {
			return 0
		}
		return float64(max) / (float64(sum) / float64(len(sizes)))
	}
	// Fig 13: Stark-S skewed on the hot collections, Stark-E and Spark-R balanced.
	if im := imbalance(StarkS, "RDD 7-9"); im < 3 {
		t.Errorf("Stark-S imbalance on skewed collection = %.1f, want >=3", im)
	}
	if imS, imE := imbalance(StarkS, "RDD 7-9"), imbalance(StarkE, "RDD 7-9"); imE >= imS {
		t.Errorf("Stark-E (%.1f) not more balanced than Stark-S (%.1f)", imE, imS)
	}
	if im := imbalance(SparkR, "RDD 1-3"); im > 2 {
		t.Errorf("Spark-R uniform imbalance = %.1f, fitted ranges should balance", im)
	}

	// Fig 14 orderings.
	e := r.Jobs[StarkE]["RDD 7-9"]
	if e.Second >= e.First {
		t.Errorf("Stark-E second job (%v) not faster than first (%v) after rebalance", e.Second, e.First)
	}
	s := r.Jobs[StarkS]["RDD 7-9"]
	if e.Second >= s.Second {
		t.Errorf("Stark-E steady job (%v) not faster than Stark-S (%v) under skew", e.Second, s.Second)
	}
	uni := r.Jobs[StarkS]["RDD 1-3"]
	if s.Second < 2*uni.Second {
		t.Errorf("Stark-S skew penalty missing: uniform %v vs skewed %v", uni.Second, s.Second)
	}
	spark := r.Jobs[SparkR]["RDD 1-3"]
	if spark.Second < 3*uni.Second {
		t.Errorf("Spark-R (%v) should pay far more than Stark-S on uniform data (%v)", spark.Second, uni.Second)
	}

	// Fig 15: Spark-R dominated by shuffle; Stark variants shuffle-free.
	_, _, _, sparkShare := taskSpread(r.Jobs[SparkR]["RDD 7-9"].SecondStats)
	if sparkShare < 0.25 {
		t.Errorf("Spark-R shuffle share = %.2f, want >=0.25", sparkShare)
	}
	_, _, _, starkShare := taskSpread(r.Jobs[StarkS]["RDD 7-9"].SecondStats)
	if starkShare > 0.05 {
		t.Errorf("Stark-S steady job should not shuffle, share = %.2f", starkShare)
	}
}

func TestFig17ConstantRatio(t *testing.T) {
	r, err := RunFig17(DefaultCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 9 {
		t.Fatalf("names = %v", r.Names)
	}
	for _, name := range r.Names {
		c, cp := r.CachedBytes[name], r.CheckpointBytes[name]
		if c == 0 {
			t.Errorf("rdd %q has no cached bytes", name)
			continue
		}
		ratio := float64(cp) / float64(c)
		if math.Abs(ratio-r.Ratio) > 0.02 {
			t.Errorf("rdd %q ratio %.3f deviates from overall %.3f", name, ratio, r.Ratio)
		}
	}
}

func TestFig18CheckpointVolumes(t *testing.T) {
	cfg := DefaultCheckpoint()
	r, err := RunFig18(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := cfg.Steps - 1
	if r.Stark1[last] == 0 || r.Stark3[last] == 0 || r.Tachyon[last] == 0 {
		t.Fatalf("missing checkpoints: %d %d %d", r.Stark1[last], r.Stark3[last], r.Tachyon[last])
	}
	if r.Tachyon[last] < 2*r.Stark1[last] {
		t.Errorf("Tachyon (%d) not >=2x Stark-1 (%d): optimizer savings missing",
			r.Tachyon[last], r.Stark1[last])
	}
	if r.Tachyon[last] < 2*r.Stark3[last] {
		t.Errorf("Tachyon (%d) not >=2x Stark-3 (%d)", r.Tachyon[last], r.Stark3[last])
	}
	// Monotone cumulative series.
	for i := 1; i < cfg.Steps; i++ {
		if r.Stark1[i] < r.Stark1[i-1] || r.Stark3[i] < r.Stark3[i-1] || r.Tachyon[i] < r.Tachyon[i-1] {
			t.Fatalf("cumulative series decreased at step %d", i)
		}
	}
}

func TestFig19OrderingShort(t *testing.T) {
	if testing.Short() {
		t.Skip("fig19 sweep is expensive")
	}
	cfg := DefaultThroughput()
	cfg.QueriesPerRate = 40
	cfg.Rates = []float64{9}
	r, err := RunFig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at9 := func(sys System) time.Duration { return r.Curves[sys][0].MeanDelay }
	if at9(StarkH) >= at9(SparkH) {
		t.Errorf("Stark-H (%v) not faster than Spark-H (%v) at 9 jobs/s", at9(StarkH), at9(SparkH))
	}
	if at9(SparkH) >= at9(SparkR) {
		t.Errorf("Spark-H (%v) not faster than Spark-R (%v) at 9 jobs/s", at9(SparkH), at9(SparkR))
	}
	if at9(StarkE) >= at9(SparkR) {
		t.Errorf("Stark-E (%v) not faster than Spark-R (%v)", at9(StarkE), at9(SparkR))
	}
}

func TestSystemNames(t *testing.T) {
	names := map[System]string{
		SparkR: "Spark-R", SparkH: "Spark-H", StarkH: "Stark-H",
		StarkS: "Stark-S", StarkE: "Stark-E",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d -> %q, want %q", sys, sys.String(), want)
		}
	}
	if System(99).String() != "unknown" {
		t.Error("unknown system name")
	}
	if SparkR.UsesCoLocality() || !StarkE.UsesCoLocality() {
		t.Error("UsesCoLocality wrong")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	// Smoke: every Print writes something sane without panicking.
	var sb strings.Builder
	Fig01Result{C: time.Second, D: time.Millisecond, DMinus: time.Second / 2}.Print(&sb)
	Fig07Result{Partitions: []int{1, 2}, Delay: []time.Duration{2, 1}}.Print(&sb)
	if !strings.Contains(sb.String(), "Fig 1(b)") || !strings.Contains(sb.String(), "Fig 7") {
		t.Fatalf("printer output missing headers: %q", sb.String())
	}
}

func TestAblationMCF(t *testing.T) {
	r, err := RunAblationMCF()
	if err != nil {
		t.Fatal(err)
	}
	if r.WithMCF <= 0 || r.WithoutMCF <= 0 {
		t.Fatalf("ablation produced zero delays: %+v", r)
	}
	// MCF must not make hotspot load slower.
	if r.WithMCF > r.WithoutMCF*3/2 {
		t.Errorf("MCF (%v) much slower than plain delay scheduling (%v)", r.WithMCF, r.WithoutMCF)
	}
}

func TestAblationHysteresis(t *testing.T) {
	pts, err := RunAblationHysteresis([]float64{1.5, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// A narrow band rebalances at least as often as a wide one.
	if pts[0].Changes < pts[2].Changes {
		t.Errorf("narrow band churned less (%d) than wide band (%d)", pts[0].Changes, pts[2].Changes)
	}
}

func TestAblationLocalityWait(t *testing.T) {
	pts, err := RunAblationLocalityWait([]time.Duration{0, 50 * time.Millisecond, time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Longer waits must not reduce the locality rate.
	if pts[2].Locality < pts[0].Locality {
		t.Errorf("locality with 1s wait (%.2f) below zero-wait (%.2f)", pts[2].Locality, pts[0].Locality)
	}
}

func TestAblationRelax(t *testing.T) {
	pts, err := RunAblationRelax([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Total == 0 || pt.Selected == 0 {
			t.Fatalf("relax %.0f checkpointed nothing", pt.Relax)
		}
	}
}

func TestRecoveryBoundedByCheckpoints(t *testing.T) {
	cfg := DefaultCheckpoint()
	cfg.Steps = 8
	r, err := RunRecovery(cfg, []time.Duration{2 * time.Second, 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Tighter bounds must not recover slower than looser ones (within
	// noise), and any bound must beat no checkpointing.
	if r.Recovery[0] > r.NoCheckpoint {
		t.Errorf("bounded recovery (%v) slower than unbounded lineage (%v)", r.Recovery[0], r.NoCheckpoint)
	}
	if r.NoCheckpoint < r.Recovery[1] {
		t.Errorf("no-checkpoint recovery (%v) faster than 8s-bounded (%v)", r.NoCheckpoint, r.Recovery[1])
	}
}

func TestTSVWriters(t *testing.T) {
	var sb strings.Builder
	f7 := Fig07Result{Partitions: []int{1, 2}, Delay: []time.Duration{time.Second, 2 * time.Second}}
	if err := f7.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1\t1000") {
		t.Fatalf("fig7 tsv = %q", sb.String())
	}
	sb.Reset()
	f11 := Fig11Result{Ks: []int{2}, SparkH: []time.Duration{time.Second}, StarkH: []time.Duration{500 * time.Millisecond}}
	if err := f11.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2\t1000\t500") {
		t.Fatalf("fig11 tsv = %q", sb.String())
	}
	sb.Reset()
	f18 := Fig18Result{Steps: 1, Stark1: []int64{1 << 20}, Stark3: []int64{2 << 20}, Tachyon: []int64{3 << 20}}
	if err := f18.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1\t1\t2\t3") {
		t.Fatalf("fig18 tsv = %q", sb.String())
	}
	sb.Reset()
	f19 := Fig19Result{
		Systems: []System{StarkH},
		Curves: map[System][]Fig19Point{
			StarkH: {{Rate: 9, MeanDelay: 100 * time.Millisecond, P95Delay: 200 * time.Millisecond}},
		},
	}
	if err := f19.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Stark-H\t9\t100\t200") {
		t.Fatalf("fig19 tsv = %q", sb.String())
	}
	sb.Reset()
	f20 := Fig20Result{
		Systems: []System{SparkH, StarkH},
		Series: map[System][]Fig20Point{
			SparkH: {{Hour: 0.5, MeanDelay: 900 * time.Millisecond}},
			StarkH: {{Hour: 0.5, MeanDelay: 100 * time.Millisecond}},
		},
	}
	if err := f20.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.5\t900\t100") {
		t.Fatalf("fig20 tsv = %q", sb.String())
	}
}

func TestAblationPlacement(t *testing.T) {
	pts, err := RunAblationPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	byName := map[string]AblationPlacementPoint{}
	for _, pt := range pts {
		byName[pt.Policy] = pt
	}
	// Dedicated placement keeps locality perfect.
	if byName["dedicated"].Locality < 0.99 {
		t.Errorf("dedicated locality = %v", byName["dedicated"].Locality)
	}
	// Blind placement sacrifices cache hits relative to dedicated.
	if byName["blind"].HitRate >= byName["dedicated"].HitRate {
		t.Errorf("blind hit rate (%v) not below dedicated (%v)",
			byName["blind"].HitRate, byName["dedicated"].HitRate)
	}
	for _, pt := range pts {
		if pt.Mean <= 0 {
			t.Errorf("%s mean = %v", pt.Policy, pt.Mean)
		}
	}
}

func TestChurnCoLocalityWins(t *testing.T) {
	r, err := RunChurn(DefaultChurn())
	if err != nil {
		t.Fatal(err)
	}
	if r.WithCoLocality >= r.WithoutCoLocality {
		t.Errorf("co-locality (%v) not faster than stock (%v) under churn",
			r.WithCoLocality, r.WithoutCoLocality)
	}
	if r.HitWith <= r.HitWithout {
		t.Errorf("co-locality hit rate (%v) not above stock (%v)", r.HitWith, r.HitWithout)
	}
}
