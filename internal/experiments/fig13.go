package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"stark"
)

// SkewConfig drives the extendable-partitioning suite (Figs. 13, 14, 15):
// three collections of three hourly RDDs each — uniform keys (RDDs 1-3),
// a skewed hot region (4-6), and a stronger, shifted hot region (7-9) —
// compared across Spark-R, Stark-S and Stark-E.
type SkewConfig struct {
	RecordsPerRDD int
	SizeScale     float64
	KeySpace      int
	// CoarseParts is Spark-R's and Stark-S's partition count; FineParts and
	// InitialGroups configure Stark-E's Group Tree.
	CoarseParts   int
	FineParts     int
	InitialGroups int
	// MaxGroupBytes / MinGroupBytes are Stark-E's split/merge thresholds.
	MaxGroupBytes int64
	MinGroupBytes int64
	NetBandwidth  int64
	DiskBandwidth int64
	Seed          int64
}

// DefaultSkew stands in for the paper's consecutive Wikipedia hourly logs
// (~800 MB per RDD).
func DefaultSkew() SkewConfig {
	return SkewConfig{
		RecordsPerRDD: 20000,
		SizeScale:     420,
		KeySpace:      4096,
		CoarseParts:   8,
		FineParts:     32,
		InitialGroups: 8,
		// Collections aggregate 3 RDDs of ~800 MB over 8 groups: ~300 MB
		// per group when balanced; split above 450 MB, merge under 120 MB.
		MaxGroupBytes: 450 << 20,
		MinGroupBytes: 120 << 20,
		NetBandwidth:  45 << 20, // shared 1 GbE under reducer contention
		DiskBandwidth: 110 << 20,
		Seed:          1,
	}
}

// skewKey renders an ordered key.
func skewKey(i int) string { return fmt.Sprintf("%06d", i) }

// makeSkewedRDD generates records over an ordered key space with a hot
// *region*: with probability hotFrac a key falls uniformly inside the
// window [offset, offset+window), otherwise anywhere. A contiguous hot
// region (like the taxi hotspots of Fig. 6 or a trending article prefix)
// overloads the range partitions covering it, yet splits cleanly into
// finer partitions — exactly the skew extendable groups exist for.
func makeSkewedRDD(seed int64, n, keySpace int, hotFrac float64, window, offset int) []stark.Record {
	rng := rand.New(rand.NewSource(seed))
	if window < 1 {
		window = 1
	}
	out := make([]stark.Record, n)
	for i := range out {
		var k int
		if rng.Float64() < hotFrac {
			k = (offset + rng.Intn(window)) % keySpace
		} else {
			k = rng.Intn(keySpace)
		}
		out[i] = stark.Pair(skewKey(k), fmt.Sprintf("entry-%06d payload=%08d", i, rng.Intn(1e8)))
	}
	return out
}

// collectionSpec names one row of Fig. 13.
type collectionSpec struct {
	Name    string
	HotFrac float64
	Window  int
	Offset  int
}

func skewCollections(keySpace int) []collectionSpec {
	return []collectionSpec{
		{Name: "RDD 1-3", HotFrac: 0}, // uniform
		{Name: "RDD 4-6", HotFrac: 0.55, Window: keySpace / 8, Offset: keySpace * 45 / 100}, // hot middle
		{Name: "RDD 7-9", HotFrac: 0.7, Window: keySpace / 12, Offset: keySpace / 10},       // hotter, shifted
	}
}

// SkewJob captures one job's delays for Fig. 14/15.
type SkewJob struct {
	First  time.Duration
	Second time.Duration
	// SecondStats keeps the steady-state job's task metrics (Fig. 15).
	FirstStats  stark.JobStats
	SecondStats stark.JobStats
}

// SkewResult aggregates the suite.
type SkewResult struct {
	Collections []string
	// InputSizes[system][collection] lists per-task input bytes (partition
	// or group sums) — Fig. 13's cell shades.
	InputSizes map[System]map[string][]int64
	// Jobs[system][collection] holds the 1st/2nd job delays — Fig. 14.
	Jobs map[System]map[string]SkewJob
	// Order preserves the compared systems.
	Systems []System
}

// RunSkew executes Figs. 13-15 for Stark-E, Stark-S, and Spark-R.
func RunSkew(cfg SkewConfig) (SkewResult, error) {
	specs := skewCollections(cfg.KeySpace)
	res := SkewResult{
		InputSizes: make(map[System]map[string][]int64),
		Jobs:       make(map[System]map[string]SkewJob),
		Systems:    []System{StarkE, StarkS, SparkR},
	}
	for _, sp := range specs {
		res.Collections = append(res.Collections, sp.Name)
	}

	// Static bounds fitted to the *uniform* distribution — the misfit under
	// drifting skew is the phenomenon under test.
	coarseBounds := uniformSkewBounds(cfg.KeySpace, cfg.CoarseParts)
	fineBounds := uniformSkewBounds(cfg.KeySpace, cfg.FineParts)

	for _, sys := range res.Systems {
		res.InputSizes[sys] = make(map[string][]int64)
		res.Jobs[sys] = make(map[string]SkewJob)

		cc := stark.DefaultClusterConfig()
		cc.NumExecutors = 8
		cc.SlotsPerExecutor = 4
		cc.NetBandwidth = cfg.NetBandwidth
		cc.DiskBandwidth = cfg.DiskBandwidth
		cc.SizeScale = cfg.SizeScale
		ctx := stark.NewContext(contextOptions(sys,
			stark.WithExtendable(stark.GroupBounds(cfg.MaxGroupBytes, cfg.MinGroupBytes, 3)),
			stark.WithClusterConfig(cc),
			stark.WithSeed(cfg.Seed),
		)...)

		for ci, sp := range specs {
			ns := fmt.Sprintf("skew-%d", ci)
			var shared stark.Partitioner
			var parts int
			switch sys {
			case StarkE:
				shared = stark.NewStaticRangePartitioner(fineBounds)
				parts = cfg.FineParts
				if err := ctx.RegisterNamespace(ns, shared, cfg.InitialGroups); err != nil {
					return res, err
				}
			case StarkS:
				shared = stark.NewStaticRangePartitioner(coarseBounds)
				parts = cfg.CoarseParts
				if err := ctx.RegisterNamespace(ns, shared, 1); err != nil {
					return res, err
				}
			case SparkR:
				parts = cfg.CoarseParts
			}

			var rdds []*stark.RDD
			queryP := shared
			for h := 0; h < 3; h++ {
				recs := makeSkewedRDD(cfg.Seed+int64(ci*100+h), cfg.RecordsPerRDD, cfg.KeySpace, sp.HotFrac, sp.Window, sp.Offset)
				src := ctx.TextFile(fmt.Sprintf("%s-h%d", ns, h), recs, 8)
				var r *stark.RDD
				if sys == SparkR {
					fresh := stark.NewRangePartitioner(sampleKeys(recs, 1024), parts)
					r = src.PartitionBy(fresh)
					queryP = fresh
				} else {
					r = src.LocalityPartitionBy(shared, ns)
				}
				r.Cache()
				if _, err := r.Materialize(); err != nil {
					return res, err
				}
				if sys == StarkE {
					if _, err := ctx.ReportRDD(r); err != nil {
						return res, err
					}
				}
				rdds = append(rdds, r)
			}

			// Fig. 13 cell sizes.
			res.InputSizes[sys][sp.Name] = taskInputSizes(ctx, sys, ns, rdds)

			// Fig. 14: first and second job after the rebalance.
			job1 := countAllJob(ctx, queryP, rdds)
			_, jm1, err := job1.Count()
			if err != nil {
				return res, err
			}
			job2 := countAllJob(ctx, queryP, rdds)
			_, jm2, err := job2.Count()
			if err != nil {
				return res, err
			}
			res.Jobs[sys][sp.Name] = SkewJob{
				First:       jm1.Makespan(),
				Second:      jm2.Makespan(),
				FirstStats:  jm1,
				SecondStats: jm2,
			}
		}
	}
	return res, nil
}

// countAllJob cogroups the collection and counts keys — the repeated
// interactive job of Sec. IV-C.
func countAllJob(ctx *stark.Context, p stark.Partitioner, rdds []*stark.RDD) *stark.RDD {
	return ctx.CoGroup(p, rdds...)
}

// taskInputSizes returns per-task input bytes: group sums for Stark-E,
// partition sums otherwise.
func taskInputSizes(ctx *stark.Context, sys System, ns string, rdds []*stark.RDD) []int64 {
	if sys == StarkE {
		sizes, err := ctx.GroupSizes(ns)
		if err != nil {
			return nil
		}
		ids := make([]int, 0, len(sizes))
		for id := range sizes {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		out := make([]int64, 0, len(ids))
		for _, id := range ids {
			out = append(out, sizes[id])
		}
		return out
	}
	parts := rdds[0].NumPartitions()
	out := make([]int64, parts)
	for _, r := range rdds {
		for p, b := range r.PartitionSizes() {
			out[p] += b
		}
	}
	return out
}

func uniformSkewBounds(keySpace, parts int) []string {
	bounds := make([]string, 0, parts-1)
	for i := 1; i < parts; i++ {
		bounds = append(bounds, skewKey(i*keySpace/parts))
	}
	return bounds
}

// Print emits Fig. 13 as normalized shade digits (0 = empty, 9 = heaviest
// cell of the row's system).
func (r SkewResult) Print(w io.Writer) {
	fprintf(w, "Fig 13: task input sizes (0-9 shades; paper: Stark-S skewed, Stark-E and Spark-R balanced)\n")
	for _, sys := range r.Systems {
		fprintf(w, "  %s\n", sys)
		for _, col := range r.Collections {
			sizes := r.InputSizes[sys][col]
			var max int64
			for _, s := range sizes {
				if s > max {
					max = s
				}
			}
			fprintf(w, "    %-8s ", col)
			for _, s := range sizes {
				shade := 0
				if max > 0 {
					shade = int(float64(s) / float64(max) * 9)
				}
				fprintf(w, "%d", shade)
			}
			fprintf(w, "   (tasks=%d, max=%dMB)\n", len(sizes), max>>20)
		}
	}
	fprintf(w, "\nFig 14: job delay under skew, 1st vs 2nd job (paper: Spark-R >10s always; Stark-S <=4s but skew-sensitive; Stark-E slow 1st, fast 2nd)\n")
	fprintf(w, "  %-8s %-9s %10s %10s\n", "system", "RDDs", "1st", "2nd")
	for _, sys := range r.Systems {
		for _, col := range r.Collections {
			j := r.Jobs[sys][col]
			fprintf(w, "  %-8s %-9s %s %s\n", sys, col, fmtSec(j.First), fmtSec(j.Second))
		}
	}
	fprintf(w, "\nFig 15: task delay min/mid/max with shuffle share, skewed collection (paper: Spark-R shuffle-dominated; Stark-S imbalanced; Stark-E balanced)\n")
	for _, sys := range r.Systems {
		for _, col := range []string{r.Collections[0], r.Collections[2]} {
			j := r.Jobs[sys][col]
			mn, md, mx, shuffle := taskSpread(j.SecondStats)
			fprintf(w, "  %-8s %-9s min %s  mid %s  max %s  shuffle %4.1f%%\n",
				sys, col, fmtSec(mn), fmtSec(md), fmtSec(mx), shuffle*100)
		}
	}
}

// taskSpread summarizes a job's task durations and the shuffle-read share
// of total task time.
func taskSpread(jm stark.JobStats) (min, mid, max time.Duration, shuffleShare float64) {
	if len(jm.Tasks) == 0 {
		return 0, 0, 0, 0
	}
	ds := make([]time.Duration, 0, len(jm.Tasks))
	var total, shuffle time.Duration
	for _, t := range jm.Tasks {
		ds = append(ds, t.Duration())
		total += t.Duration()
		shuffle += t.ShuffleRead
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	share := 0.0
	if total > 0 {
		share = float64(shuffle) / float64(total)
	}
	return ds[0], ds[len(ds)/2], ds[len(ds)-1], share
}
