package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"testing"
	"time"

	"stark"
	"stark/internal/partition"
	"stark/internal/record"
)

// This file measures the deterministic parallel data plane (DESIGN.md
// section 10) for BENCH_<n>.json artifacts: macro workloads run twice —
// worker pool of 1 vs N — comparing wall-clock time while asserting the
// virtual-time results are byte-identical, plus microbenchmarks of the
// hot-path allocation cuts (GroupByKeySorted, dense shuffle bucketing)
// against the algorithms they replaced.

// BenchConfig sizes the benchmark run.
type BenchConfig struct {
	// Quick shrinks the workloads for CI smoke runs.
	Quick bool
	// Cores is the parallel arm's worker-pool size (default 4). Wall-clock
	// speedup requires at least that many hardware threads; virtual-time
	// equality holds regardless.
	Cores int
}

// BenchEntry is one measurement. Macro entries compare wall-clock time of
// the same workload at parallelism 1 vs Cores; micro entries compare the
// optimized hot path against the replaced baseline algorithm.
type BenchEntry struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "macro" or "micro"

	SeqWallNs int64   `json:"seq_wall_ns,omitempty"`
	ParWallNs int64   `json:"par_wall_ns,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	// Identical reports that the virtual-time results (delays, counts,
	// makespans) of the sequential and parallel arms matched byte-for-byte.
	Identical bool  `json:"identical,omitempty"`
	VirtualNs int64 `json:"virtual_ns,omitempty"`

	BaselineNsOp      float64 `json:"baseline_ns_op,omitempty"`
	OptimizedNsOp     float64 `json:"optimized_ns_op,omitempty"`
	BaselineAllocsOp  float64 `json:"baseline_allocs_op,omitempty"`
	OptimizedAllocsOp float64 `json:"optimized_allocs_op,omitempty"`
}

// BenchResult is the BENCH_<n>.json document.
type BenchResult struct {
	GoMaxProcs int          `json:"go_max_procs"`
	NumCPU     int          `json:"num_cpu"`
	Cores      int          `json:"cores"`
	Quick      bool         `json:"quick"`
	Note       string       `json:"note"`
	Entries    []BenchEntry `json:"entries"`
}

// benchTP is the shared throughput config for the fig19/fig20-shaped macro
// workloads, shrunk from the paper's 40-node cluster to bench scale.
func benchTP(quick bool, par int) ThroughputConfig {
	tp := DefaultThroughput()
	tp.Executors = 8
	tp.Slots = 4
	tp.MemoryPerExec = 256 << 20
	tp.EventsPerStep = 1500
	tp.WindowSteps = 18
	tp.QueriesPerRate = 60
	tp.Rates = []float64{40}
	tp.Systems = []System{StarkH}
	tp.Parallelism = par
	tp.Seed = 7
	if quick {
		tp.EventsPerStep = 600
		tp.WindowSteps = 8
		tp.QueriesPerRate = 20
	}
	return tp
}

// macroArms runs one workload at parallelism 1 and cores, filling the
// wall-clock and identity fields. The digest must capture every
// virtual-time observable the workload produces.
func macroArms(name string, cores int, run func(par int) (digest string, virtualNs int64, err error)) (BenchEntry, error) {
	e := BenchEntry{Name: name, Kind: "macro"}
	t0 := time.Now() //starklint:ignore wallclock bench arm measures real wall-clock speedup of the worker pool
	seqDigest, virtualNs, err := run(1)
	if err != nil {
		return e, fmt.Errorf("%s sequential arm: %w", name, err)
	}
	e.SeqWallNs = time.Since(t0).Nanoseconds() //starklint:ignore wallclock bench arm measures real wall-clock speedup of the worker pool
	t0 = time.Now()                            //starklint:ignore wallclock bench arm measures real wall-clock speedup of the worker pool
	parDigest, _, err := run(cores)
	if err != nil {
		return e, fmt.Errorf("%s parallel arm: %w", name, err)
	}
	e.ParWallNs = time.Since(t0).Nanoseconds() //starklint:ignore wallclock bench arm measures real wall-clock speedup of the worker pool
	e.Speedup = float64(e.SeqWallNs) / float64(e.ParWallNs)
	e.Identical = seqDigest == parDigest
	e.VirtualNs = virtualNs
	if !e.Identical {
		return e, fmt.Errorf("%s: parallel arm diverged from sequential:\n--- par=1\n%s\n--- par=%d\n%s",
			name, seqDigest, cores, parDigest)
	}
	return e, nil
}

// benchFig19 is the Fig 19 workload (query delay under offered load) as a
// wall-clock benchmark.
func benchFig19(quick bool, cores int) (BenchEntry, error) {
	return macroArms("fig19-throughput", cores, func(par int) (string, int64, error) {
		r, err := RunFig19(benchTP(quick, par))
		if err != nil {
			return "", 0, err
		}
		var virtual int64
		digest := ""
		for _, sys := range r.Systems {
			for _, pt := range r.Curves[sys] {
				digest += fmt.Sprintf("%s %+v\n", sys, pt)
				virtual = pt.MeanDelay.Nanoseconds()
			}
		}
		return digest, virtual, nil
	})
}

// benchFig20 is the Fig 20 workload (delay over a diurnal trace replay) as
// a wall-clock benchmark.
func benchFig20(quick bool, cores int) (BenchEntry, error) {
	return macroArms("fig20-replay", cores, func(par int) (string, int64, error) {
		cfg := DefaultFig20()
		cfg.Throughput = benchTP(quick, par)
		cfg.Hours = 2
		cfg.BurstQueries = 15
		cfg.BurstsPerHour = 1
		if quick {
			cfg.Hours = 1
			cfg.BurstQueries = 8
		}
		r, err := RunFig20(cfg)
		if err != nil {
			return "", 0, err
		}
		var virtual int64
		digest := ""
		for _, sys := range r.Systems {
			for _, pt := range r.Series[sys] {
				digest += fmt.Sprintf("%s %+v\n", sys, pt)
				virtual += pt.MeanDelay.Nanoseconds()
			}
		}
		return digest, virtual, nil
	})
}

// bench100kTasks mirrors BenchmarkEngine100kTasks: a wide shuffle whose
// task count stresses the scheduler fast path and whose map planes carry
// the record compute.
func bench100kTasks(quick bool, cores int) (BenchEntry, error) {
	parts := 20000
	perPart := 64
	if quick {
		parts = 4000
	}
	data := make([][]stark.Record, parts)
	for p := range data {
		rs := make([]stark.Record, perPart)
		for i := range rs {
			rs[i] = stark.Pair(fmt.Sprintf("k-%d-%d", p, i), int64(i))
		}
		data[p] = rs
	}
	return macroArms("engine-100k-tasks", cores, func(par int) (string, int64, error) {
		ctx := stark.NewContext(
			stark.WithExecutors(8), stark.WithSlots(4),
			stark.WithParallelism(par), stark.WithSeed(1),
		)
		src := ctx.FromPartitions("src", data, false)
		n, st, err := src.PartitionBy(stark.NewHashPartitioner(parts)).Count()
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("count=%d makespan=%v", n, st.Makespan()), st.Makespan().Nanoseconds(), nil
	})
}

// benchRecords builds the microbenchmark input: count records over keys
// distinct keys, realistic short string keys.
func benchRecords(count, keys int) []record.Record {
	rs := make([]record.Record, count)
	for i := range rs {
		rs[i] = record.Pair(fmt.Sprintf("key-%05d", i%keys), int64(i))
	}
	return rs
}

// microEntry times baseline vs optimized closures (ns/op via a timed loop,
// allocs/op via testing.AllocsPerRun).
func microEntry(name string, iters int, baseline, optimized func()) BenchEntry {
	nsOp := func(fn func()) float64 {
		fn()             // warm
		t0 := time.Now() //starklint:ignore wallclock micro-benchmark times a real closure, ns/op is wall time by definition
		for i := 0; i < iters; i++ {
			fn()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(iters) //starklint:ignore wallclock micro-benchmark times a real closure, ns/op is wall time by definition
	}
	return BenchEntry{
		Name: name, Kind: "micro",
		BaselineNsOp:      nsOp(baseline),
		OptimizedNsOp:     nsOp(optimized),
		BaselineAllocsOp:  testing.AllocsPerRun(iters, baseline),
		OptimizedAllocsOp: testing.AllocsPerRun(iters, optimized),
	}
}

// microGroupByKey compares the replaced map-of-slices GroupByKey (double
// map operation per record plus a keys slice and a second map traversal)
// against GroupByKeySorted on the reduce-side grouping shape.
func microGroupByKey(quick bool) BenchEntry {
	data := benchRecords(20000, 1500)
	iters := 40
	if quick {
		iters = 10
	}
	var sink int
	return microEntry("groupbykey-sorted", iters,
		func() {
			m, keys := record.GroupByKey(data)
			for _, k := range keys {
				sink += len(m[k])
			}
		},
		func() {
			for _, g := range record.GroupByKeySorted(data) {
				sink += len(g.Values)
			}
		})
}

// microBucket compares the replaced shuffle map-output path (bucket into a
// map keyed by reduce partition, defensively clone each bucket, then
// re-walk it with SizeOfSlice) against the engine's current dense path
// (pre-sized bucket array, no clone, byte size accumulated in the same
// pass). Mirrors engine.bucketMapOutput.
func microBucket(quick bool) BenchEntry {
	data := benchRecords(20000, 20000)
	const parts = 64
	p := partition.NewHash(parts)
	overhead := record.SizeOfSlice(nil)
	iters := 40
	if quick {
		iters = 10
	}
	var sink int64
	return microEntry("shuffle-bucketing", iters,
		func() {
			m := make(map[int][]record.Record)
			for _, r := range data {
				i := p.PartitionFor(r.Key)
				m[i] = append(m[i], r)
			}
			for _, b := range m {
				c := record.Clone(b)
				sink += record.SizeOfSlice(c)
			}
		},
		func() {
			buckets := make([][]record.Record, parts)
			bytes := make([]int64, parts)
			for _, r := range data {
				i := p.PartitionFor(r.Key)
				buckets[i] = append(buckets[i], r)
				bytes[i] += record.SizeOfRecord(r)
			}
			for i, b := range buckets {
				if b != nil {
					sink += overhead + bytes[i]
				}
			}
		})
}

// oldGroupSorted reproduces the map-of-indices grouping that
// record.GroupByKeySorted replaced (one map lookup per record plus
// append-grown group headers), as the baseline side of the join micro.
func oldGroupSorted(rs []record.Record) []record.Grouped {
	idx := make(map[string]int, len(rs))
	groups := make([]record.Grouped, 0, 64)
	counts := make([]int, 0, 64)
	for _, r := range rs {
		i, ok := idx[r.Key]
		if !ok {
			i = len(groups)
			idx[r.Key] = i
			groups = append(groups, record.Grouped{Key: r.Key})
			counts = append(counts, 0)
		}
		counts[i]++
	}
	backing := make([]any, len(rs))
	off := 0
	for i := range groups {
		groups[i].Values = backing[off : off : off+counts[i]]
		off += counts[i]
	}
	for _, r := range rs {
		i := idx[r.Key]
		groups[i].Values = append(groups[i].Values, r.Value)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	return groups
}

// oldSumRecords reproduces the storage checksum as it was computed before
// the key-slab path: a heap-allocated fnv.Hash64 fed one []byte(key)
// conversion per record. Bit-identical to record.KeySum64.
func oldSumRecords(data []record.Record) uint64 {
	h := fnv.New64a()
	var n [8]byte
	for _, r := range data {
		h.Write([]byte(r.Key))
		h.Write([]byte{0xff})
	}
	cnt := uint64(len(data))
	for i := 0; i < 8; i++ {
		n[i] = byte(cnt >> (8 * i))
	}
	h.Write(n[:])
	return h.Sum64()
}

// microJoin compares the replaced rdd.Join body (map-based grouping of both
// sides, a key→group index map, append-grown output) against
// record.JoinRecords (arena grouping + linear merge + exact-size output).
func microJoin(quick bool) BenchEntry {
	left := benchRecords(8000, 1200)
	right := benchRecords(8000, 1200)
	iters := 20
	if quick {
		iters = 5
	}
	var sink int
	return microEntry("join", iters,
		func() {
			lg := oldGroupSorted(left)
			rg := oldGroupSorted(right)
			ridx := make(map[string]int, len(rg))
			for i, grp := range rg {
				ridx[grp.Key] = i
			}
			var out []record.Record
			for _, lgrp := range lg {
				i, ok := ridx[lgrp.Key]
				if !ok {
					continue
				}
				for _, lv := range lgrp.Values {
					for _, rv := range rg[i].Values {
						out = append(out, record.Record{Key: lgrp.Key, Value: record.Joined{Left: lv, Right: rv}})
					}
				}
			}
			sink += len(out)
		},
		func() {
			sink += len(record.JoinRecords(left, right))
		})
}

// microShuffleRW compares a full shuffle write+read round trip. Baseline is
// the path as of BENCH_3: dense bucket append arrays at write, the
// fnv.New64a/[]byte(key) checksum per bucket, then a read that re-hashes
// every record to verify and concatenates through append regrowth.
// Optimized is the columnar path the engine and store now share: one
// record.Batch (key slab + memoized hashes/sizes), counting-sort
// PartitionStable into span views, slab-range checksums at write AND
// verify, and an exact-size concat — with the index scratch carved from a
// reused arena.
func microShuffleRW(quick bool) BenchEntry {
	const maps, reduces, perMap = 8, 16, 10000
	p := partition.NewHash(reduces)
	mapData := make([][]record.Record, maps)
	for m := range mapData {
		rs := make([]record.Record, perMap)
		for i := range rs {
			rs[i] = record.Pair(fmt.Sprintf("k-%d-%05d", m, i), int64(i))
		}
		mapData[m] = rs
	}
	iters := 20
	if quick {
		iters = 5
	}
	var sink int
	var scr record.Scratch
	type rowBucket struct {
		data []record.Record
		sum  uint64
	}
	type spanBucket struct {
		b      *record.Batch
		lo, hi int32
		sum    uint64
	}
	return microEntry("shuffle-rw", iters,
		func() {
			// Write: per map task, dense bucket append arrays, then the
			// fnv.New64a/[]byte(key) checksum per bucket.
			outputs := make([][]rowBucket, maps)
			for m, data := range mapData {
				buckets := make([][]record.Record, reduces)
				for _, r := range data {
					i := p.PartitionFor(r.Key)
					buckets[i] = append(buckets[i], r)
				}
				bs := make([]rowBucket, reduces)
				for i, b := range buckets {
					bs[i] = rowBucket{data: b, sum: oldSumRecords(b)}
				}
				outputs[m] = bs
			}
			// Read: per reduce partition, re-hash every bucket's records to
			// verify, then concatenate through append regrowth.
			for r := 0; r < reduces; r++ {
				var out []record.Record
				for m := 0; m < maps; m++ {
					rb := outputs[m][r]
					if oldSumRecords(rb.data) != rb.sum {
						panic("baseline checksum mismatch")
					}
					out = append(out, rb.data...)
				}
				sink += len(out)
			}
		},
		func() {
			// Write: per map task, one columnar batch partitioned by counting
			// sort into span views, checksums off the key slab.
			outputs := make([][]spanBucket, maps)
			for m, data := range mapData {
				b := record.FromRecords(data)
				n := b.Len()
				idx := scr.I32.Take(n)
				for i := 0; i < n; i++ {
					idx[i] = int32(p.PartitionForHash(b.Hash32(i)))
				}
				pb := b.PartitionStable(idx, reduces, &scr)
				bs := make([]spanBucket, reduces)
				for _, sp := range pb.Spans {
					bs[sp.Part] = spanBucket{
						b: pb.Batch, lo: sp.Lo, hi: sp.Hi,
						sum: pb.Batch.KeySumRange(int(sp.Lo), int(sp.Hi)),
					}
				}
				outputs[m] = bs
				scr.Reset()
			}
			// Read: slab-range verify, then one exact-size concat per reduce
			// partition.
			for r := 0; r < reduces; r++ {
				total := int32(0)
				for m := 0; m < maps; m++ {
					sb := outputs[m][r]
					if sb.b.KeySumRange(int(sb.lo), int(sb.hi)) != sb.sum {
						panic("optimized checksum mismatch")
					}
					total += sb.hi - sb.lo
				}
				out := make([]record.Record, 0, total)
				for m := 0; m < maps; m++ {
					sb := outputs[m][r]
					out = append(out, sb.b.Records()[sb.lo:sb.hi]...)
				}
				sink += len(out)
			}
		})
}

// RunBench produces the BENCH_<n>.json measurements.
func RunBench(cfg BenchConfig) (*BenchResult, error) {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 4
	}
	res := &BenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Cores:      cores,
		Quick:      cfg.Quick,
		Note: "macro speedup = wall-clock(parallelism 1) / wall-clock(parallelism " +
			fmt.Sprint(cores) + "); requires >= that many hardware threads to " +
			"materialize. identical=true certifies the virtual-time results of " +
			"both arms matched byte-for-byte.",
	}
	for _, run := range []func(bool, int) (BenchEntry, error){benchFig19, benchFig20, bench100kTasks} {
		e, err := run(cfg.Quick, cores)
		if err != nil {
			return res, err
		}
		res.Entries = append(res.Entries, e)
	}
	res.Entries = append(res.Entries,
		microGroupByKey(cfg.Quick), microBucket(cfg.Quick),
		microShuffleRW(cfg.Quick), microJoin(cfg.Quick))
	return res, nil
}

// Budget is the checked-in allocation ceiling for the optimized side of each
// microbenchmark (bench_budget.json): name → max allocs/op. make bench-json
// fails when an optimized path regresses past its ceiling, so allocation
// wins cannot silently rot.
type Budget map[string]float64

// CheckBudget compares every micro entry against its ceiling. Macro entries
// and micros without a ceiling are skipped (a new micro gets a budget by
// being added to the file, not by defaulting).
func (r *BenchResult) CheckBudget(b Budget) error {
	var errs []string
	for _, e := range r.Entries {
		if e.Kind != "micro" {
			continue
		}
		maxAllocs, ok := b[e.Name]
		if !ok {
			continue
		}
		if e.OptimizedAllocsOp > maxAllocs {
			errs = append(errs, fmt.Sprintf("%s: %.1f allocs/op exceeds budget %.1f",
				e.Name, e.OptimizedAllocsOp, maxAllocs))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("allocation budget exceeded:\n  %s\n(run `go run ./cmd/starklint ./...` — hotalloc findings point at the per-call allocations on the annotated hot paths)", joinLines(errs))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// WriteJSON emits the result document.
func (r *BenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print emits a human-readable summary.
func (r *BenchResult) Print(w io.Writer) {
	fprintf(w, "bench: GOMAXPROCS=%d NumCPU=%d parallel arm=%d quick=%v\n",
		r.GoMaxProcs, r.NumCPU, r.Cores, r.Quick)
	for _, e := range r.Entries {
		switch e.Kind {
		case "macro":
			fprintf(w, "  %-18s wall %8.1fms -> %8.1fms  speedup %.2fx  identical=%v  virtual %v\n",
				e.Name,
				float64(e.SeqWallNs)/1e6, float64(e.ParWallNs)/1e6,
				e.Speedup, e.Identical, time.Duration(e.VirtualNs).Round(time.Microsecond))
		case "micro":
			fprintf(w, "  %-18s %9.0f ns/op -> %9.0f ns/op   %7.1f allocs/op -> %7.1f allocs/op\n",
				e.Name, e.BaselineNsOp, e.OptimizedNsOp, e.BaselineAllocsOp, e.OptimizedAllocsOp)
		}
	}
}
