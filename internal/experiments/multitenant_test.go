package experiments

import (
	"strings"
	"testing"
)

// A trimmed sweep of the overload oracle: the isolation contract must hold
// end-to-end (bit-identical admitted results, typed errors only, zero
// duplicate computations) and the storm/poison faults must actually land.
func TestMultitenantContract(t *testing.T) {
	cfg := DefaultMultitenant()
	cfg.Seeds = 6
	r, err := RunMultitenant(cfg)
	if err != nil {
		t.Fatalf("contract violated: %v\n%s", err, strings.Join(r.Violations, "\n"))
	}
	if r.StormJobs == 0 {
		t.Error("no storm jobs were injected across the sweep")
	}
	if r.Shed == 0 {
		t.Error("no job was ever shed: storms are not producing overload")
	}
	if r.DedupSubscriptions < cfg.Seeds {
		t.Errorf("dedupSubs=%d, want >=%d (the shared hot collect must dedup every run)",
			r.DedupSubscriptions, cfg.Seeds)
	}
	if r.DuplicateComputations != 0 {
		t.Errorf("duplicate computations = %d, want 0", r.DuplicateComputations)
	}
	if r.Completed == 0 || r.P50 == 0 {
		t.Errorf("no planned jobs completed (completed=%d p50=%v)", r.Completed, r.P50)
	}
	var buf strings.Builder
	r.Print(&buf)
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("Print did not report PASS:\n%s", buf.String())
	}
}
