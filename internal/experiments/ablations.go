package experiments

import (
	"fmt"
	"io"
	"time"

	"stark"
)

// Ablations beyond the paper's own figures, exercising the design choices
// DESIGN.md calls out: MCF scheduling, group-threshold hysteresis, the
// delay-scheduling wait bound, and the checkpoint relaxation factor.

// AblationMCFResult compares hotspot query delay with and without
// Minimum-Contention-First scheduling.
type AblationMCFResult struct {
	WithMCF    time.Duration
	WithoutMCF time.Duration
}

// RunAblationMCF loads a namespace whose collection partitions compete for
// a few executors, then measures mean query delay under concurrent load
// with plain delay scheduling vs MCF.
func RunAblationMCF() (AblationMCFResult, error) {
	run := func(mcf bool) (time.Duration, error) {
		opts := []stark.Option{
			stark.WithCoLocality(),
			stark.WithExecutors(8), stark.WithSlots(2),
			stark.WithSizeScale(420),
			stark.WithLocalityWait(100 * time.Millisecond),
			stark.WithSeed(3),
		}
		if mcf {
			opts = append(opts, stark.WithMCF())
		}
		ctx := stark.NewContext(opts...)
		p := stark.NewHashPartitioner(16)
		if err := ctx.RegisterNamespace("ns", p, 1); err != nil {
			return 0, err
		}
		var rdds []*stark.RDD
		for i := 0; i < 4; i++ {
			r := ctx.TextFile(fmt.Sprintf("d%d", i), makeLogFile(int64(i), 10000), 8).
				LocalityPartitionBy(p, "ns").Cache()
			if _, err := r.Materialize(); err != nil {
				return 0, err
			}
			rdds = append(rdds, r)
		}
		results := ctx.OpenLoop(5*time.Millisecond, 60, func(i int) *stark.RDD {
			return ctx.CoGroup(p, rdds...)
		})
		return stark.MeanDelay(results), nil
	}
	var res AblationMCFResult
	var err error
	if res.WithoutMCF, err = run(false); err != nil {
		return res, err
	}
	if res.WithMCF, err = run(true); err != nil {
		return res, err
	}
	return res, nil
}

// Print emits the comparison.
func (r AblationMCFResult) Print(w io.Writer) {
	fprintf(w, "Ablation: MCF scheduling under hotspot load\n")
	fprintf(w, "  delay scheduling only: %s\n", fmtMs(r.WithoutMCF))
	fprintf(w, "  with MCF:              %s\n", fmtMs(r.WithMCF))
}

// AblationHysteresisPoint is one (band, churn) measurement.
type AblationHysteresisPoint struct {
	// Band is MaxBytes/MinBytes.
	Band float64
	// Changes counts split/merge operations over the run.
	Changes int
	// Imbalance is the final max/mean group size ratio.
	Imbalance float64
}

// RunAblationHysteresis sweeps the split/merge threshold band width and
// measures rebalance churn vs achieved balance on a drifting workload.
func RunAblationHysteresis(bands []float64) ([]AblationHysteresisPoint, error) {
	var out []AblationHysteresisPoint
	for _, band := range bands {
		maxBytes := int64(400 << 20)
		minBytes := int64(float64(maxBytes) / band)
		ctx := stark.NewContext(
			stark.WithExtendable(stark.GroupBounds(maxBytes, minBytes, 2)),
			stark.WithExecutors(8), stark.WithSlots(4),
			stark.WithSizeScale(420),
			stark.WithSeed(5),
		)
		p := stark.NewStaticRangePartitioner(uniformSkewBounds(4096, 32))
		if err := ctx.RegisterNamespace("ns", p, 8); err != nil {
			return nil, err
		}
		changes := 0
		// The hot window drifts across the key space over 8 datasets.
		for i := 0; i < 8; i++ {
			recs := makeSkewedRDD(int64(i), 20000, 4096, 0.6, 512, i*512)
			r := ctx.TextFile(fmt.Sprintf("d%d", i), recs, 8).
				LocalityPartitionBy(p, "ns").Cache()
			if _, err := r.Materialize(); err != nil {
				return nil, err
			}
			ch, err := ctx.ReportRDD(r)
			if err != nil {
				return nil, err
			}
			changes += len(ch)
		}
		sizes, err := ctx.GroupSizes("ns")
		if err != nil {
			return nil, err
		}
		var max, sum int64
		for _, b := range sizes {
			sum += b
			if b > max {
				max = b
			}
		}
		imb := 0.0
		if sum > 0 && len(sizes) > 0 {
			imb = float64(max) / (float64(sum) / float64(len(sizes)))
		}
		out = append(out, AblationHysteresisPoint{Band: band, Changes: changes, Imbalance: imb})
	}
	return out, nil
}

// PrintHysteresis emits the sweep.
func PrintHysteresis(w io.Writer, pts []AblationHysteresisPoint) {
	fprintf(w, "Ablation: group threshold hysteresis (band = max/min bytes) vs churn under drift\n")
	fprintf(w, "  %6s %8s %10s\n", "band", "changes", "imbalance")
	for _, pt := range pts {
		fprintf(w, "  %6.1f %8d %9.2fx\n", pt.Band, pt.Changes, pt.Imbalance)
	}
}

// AblationWaitPoint is one (wait, locality, delay) measurement.
type AblationWaitPoint struct {
	Wait     time.Duration
	Locality float64
	Mean     time.Duration
}

// RunAblationLocalityWait sweeps the delay-scheduling bound and measures
// NODE_LOCAL rate and mean delay under contention.
func RunAblationLocalityWait(waits []time.Duration) ([]AblationWaitPoint, error) {
	var out []AblationWaitPoint
	for _, wait := range waits {
		ctx := stark.NewContext(
			stark.WithCoLocality(),
			stark.WithExecutors(4), stark.WithSlots(2),
			stark.WithSizeScale(420),
			stark.WithLocalityWait(wait),
			stark.WithSeed(9),
		)
		p := stark.NewHashPartitioner(8)
		if err := ctx.RegisterNamespace("ns", p, 1); err != nil {
			return nil, err
		}
		base := ctx.TextFile("d", makeLogFile(1, 20000), 4).
			LocalityPartitionBy(p, "ns").Cache()
		if _, err := base.Materialize(); err != nil {
			return nil, err
		}
		results := ctx.OpenLoop(2*time.Millisecond, 50, func(i int) *stark.RDD {
			return base.Filter(func(stark.Record) bool { return true })
		})
		var local, total float64
		for _, r := range results {
			total += float64(len(r.Metrics.Tasks))
			local += r.Metrics.LocalityFraction() * float64(len(r.Metrics.Tasks))
		}
		frac := 0.0
		if total > 0 {
			frac = local / total
		}
		out = append(out, AblationWaitPoint{Wait: wait, Locality: frac, Mean: stark.MeanDelay(results)})
	}
	return out, nil
}

// PrintWait emits the sweep.
func PrintWait(w io.Writer, pts []AblationWaitPoint) {
	fprintf(w, "Ablation: delay-scheduling wait bound vs locality and delay under contention\n")
	fprintf(w, "  %10s %9s %10s\n", "wait", "locality", "mean")
	for _, pt := range pts {
		fprintf(w, "  %10v %8.0f%% %s\n", pt.Wait, pt.Locality*100, fmtMs(pt.Mean))
	}
}

// AblationRelaxPoint is one (f, checkpoint bytes, triggers) measurement.
type AblationRelaxPoint struct {
	Relax    float64
	Total    int64
	Selected int
}

// RunAblationRelax sweeps the checkpoint relaxation factor on the trending
// app and reports total checkpointed bytes and RDDs selected.
func RunAblationRelax(fs []float64) ([]AblationRelaxPoint, error) {
	cfg := DefaultCheckpoint()
	var out []AblationRelaxPoint
	for _, f := range fs {
		ctx, app, err := newTrendingRun(cfg, stark.WithCheckpointing(cfg.Bound, f))
		if err != nil {
			return nil, err
		}
		for s := 0; s < cfg.Steps; s++ {
			if _, err := app.Step(trendingInput(cfg, s)); err != nil {
				return nil, err
			}
		}
		selected := 0
		for _, r := range ctx.Engine().Graph().RDDs() {
			if r.Checkpointed {
				selected++
			}
		}
		out = append(out, AblationRelaxPoint{Relax: f, Total: ctx.TotalCheckpointBytes(), Selected: selected})
	}
	return out, nil
}

// PrintRelax emits the sweep.
func PrintRelax(w io.Writer, pts []AblationRelaxPoint) {
	fprintf(w, "Ablation: checkpoint relaxation factor f\n")
	fprintf(w, "  %6s %10s %9s\n", "f", "total", "selected")
	for _, pt := range pts {
		fprintf(w, "  %6.1f %8dMB %9d\n", pt.Relax, pt.Total>>20, pt.Selected)
	}
}

// AblationPlacementPoint is one scheduling-policy measurement of the
// Fig. 9 trade-off: dedicating executors to collection partitions wastes
// CPU; blindly using any executor thrashes the cache; bounded-wait delay
// scheduling with MCF sits between.
type AblationPlacementPoint struct {
	Policy   string
	Mean     time.Duration
	HitRate  float64
	Locality float64
}

// RunAblationPlacement loads a co-located collection on a small cluster and
// replays a steady query load under three placement policies:
//
//	dedicated — effectively infinite locality wait (tasks only run local)
//	blind     — no locality management at all: random placement (Fig. 9b)
//	delay+mcf — bounded wait with Minimum-Contention-First (Stark)
func RunAblationPlacement() ([]AblationPlacementPoint, error) {
	run := func(policy string, useNS bool, wait time.Duration, mcf bool) (AblationPlacementPoint, error) {
		opts := []stark.Option{
			stark.WithExecutors(8), stark.WithSlots(2),
			stark.WithSizeScale(420),
			stark.WithMemory(2 << 30),
			stark.WithLocalityWait(wait),
			stark.WithSeed(11),
		}
		if useNS {
			opts = append(opts, stark.WithCoLocality())
		}
		if mcf {
			opts = append(opts, stark.WithMCF())
		}
		ctx := stark.NewContext(opts...)
		p := stark.NewHashPartitioner(16)
		if useNS {
			if err := ctx.RegisterNamespace("ns", p, 1); err != nil {
				return AblationPlacementPoint{}, err
			}
		}
		var rdds []*stark.RDD
		for i := 0; i < 4; i++ {
			src := ctx.TextFile(fmt.Sprintf("d%d", i), makeLogFile(int64(i), 10000), 8)
			var r *stark.RDD
			if useNS {
				r = src.LocalityPartitionBy(p, "ns")
			} else {
				r = src.PartitionBy(p)
			}
			r.Cache()
			if _, err := r.Materialize(); err != nil {
				return AblationPlacementPoint{}, err
			}
			rdds = append(rdds, r)
		}
		results := ctx.OpenLoop(900*time.Millisecond, 40, func(i int) *stark.RDD {
			return ctx.CoGroup(p, rdds...)
		})
		st := ctx.Stats()
		var local, total float64
		for _, r := range results {
			total += float64(len(r.Metrics.Tasks))
			local += r.Metrics.LocalityFraction() * float64(len(r.Metrics.Tasks))
		}
		frac := 0.0
		if total > 0 {
			frac = local / total
		}
		return AblationPlacementPoint{
			Policy:   policy,
			Mean:     stark.MeanDelay(results),
			HitRate:  st.CacheHitRate(),
			Locality: frac,
		}, nil
	}
	var out []AblationPlacementPoint
	for _, c := range []struct {
		name string
		ns   bool
		wait time.Duration
		mcf  bool
	}{
		{"dedicated", true, time.Hour, false},
		{"blind", false, 50 * time.Millisecond, false},
		{"delay+mcf", true, 150 * time.Millisecond, true},
	} {
		pt, err := run(c.name, c.ns, c.wait, c.mcf)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintPlacement emits the comparison.
func PrintPlacement(w io.Writer, pts []AblationPlacementPoint) {
	fprintf(w, "Ablation: task placement extremes (paper Fig. 9) under bursty hotspot load\n")
	fprintf(w, "  %-10s %10s %9s %9s\n", "policy", "mean", "cacheHit", "locality")
	for _, pt := range pts {
		fprintf(w, "  %-10s %s %8.0f%% %8.0f%%\n", pt.Policy, fmtMs(pt.Mean), pt.HitRate*100, pt.Locality*100)
	}
}
