// Package partition implements the partitioners the paper's five evaluated
// configurations rely on (Sec. IV-A):
//
//   - HashPartitioner — Spark's default; shared across RDDs it gives
//     co-partitioning (Spark-H / Stark-H).
//   - RangePartitioner — boundaries fitted to one RDD's key sample; a new
//     one per RDD balances each RDD individually but destroys
//     co-partitioning (Spark-R).
//   - StaticRangePartitioner — range boundaries fixed once and reused across
//     the whole collection (Stark-S), preserving co-partitioning at the cost
//     of skew sensitivity.
//
// Stark-E ("extendable") keeps one of these fine-grained partitioners fixed
// (many small partitions) and layers partition groups on top — see
// internal/group; elasticity never changes the key→partition mapping, which
// is the paper's central trick for shuffle-free rebalancing.
package partition

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Partitioner maps record keys to partition indices, exactly like Spark's
// Partitioner#getPartition.
type Partitioner interface {
	// NumPartitions reports how many partitions the partitioner produces.
	NumPartitions() int
	// PartitionFor maps a key to a partition index in [0, NumPartitions).
	PartitionFor(key string) int
	// Equivalent reports whether other is guaranteed to produce identical
	// key→partition assignments; co-partitioning checks use it to decide
	// narrow vs shuffle dependencies.
	Equivalent(other Partitioner) bool
	// Describe returns a short human-readable description for logs.
	Describe() string
}

// Hash is Spark's default HashPartitioner.
type Hash struct {
	n int
}

// NewHash returns a hash partitioner over n partitions. It panics for n < 1,
// which is a static configuration error.
func NewHash(n int) Hash {
	if n < 1 {
		panic(fmt.Sprintf("partition: hash partitioner needs n >= 1, got %d", n))
	}
	return Hash{n: n}
}

// NumPartitions implements Partitioner.
func (h Hash) NumPartitions() int { return h.n }

// PartitionFor implements Partitioner.
func (h Hash) PartitionFor(key string) int {
	f := fnv.New32a()
	_, _ = f.Write([]byte(key))
	return int(f.Sum32() % uint32(h.n))
}

// PartitionForHash maps a precomputed FNV-32a key hash to its partition,
// bit-identical to PartitionFor on the hashed key. The columnar shuffle path
// hashes every key once into the batch and routes through this instead of
// re-hashing per record.
func (h Hash) PartitionForHash(sum uint32) int { return int(sum % uint32(h.n)) }

// Equivalent implements Partitioner.
func (h Hash) Equivalent(other Partitioner) bool {
	o, ok := other.(Hash)
	return ok && o.n == h.n
}

// Describe implements Partitioner.
func (h Hash) Describe() string { return fmt.Sprintf("hash(%d)", h.n) }

// Range partitions keys by sorted boundary cut points, like Spark's
// RangePartitioner. Partition i holds keys in (bound[i-1], bound[i]], with
// the first partition open below and the last open above.
type Range struct {
	bounds []string // len n-1 upper bounds, sorted
	id     uint64   // distinguishes independently fitted partitioners
}

var rangeSeq uint64

// NewRange fits boundaries to the given key sample so each of the n
// partitions receives roughly the same number of sampled keys. Each call
// yields a distinct partitioner identity: two Range partitioners are
// Equivalent only if they share boundaries, mirroring Spark-R's behaviour
// where every RDD's RangePartitioner forces a reshuffle.
func NewRange(sample []string, n int) Range {
	if n < 1 {
		panic(fmt.Sprintf("partition: range partitioner needs n >= 1, got %d", n))
	}
	keys := make([]string, len(sample))
	copy(keys, sample)
	sort.Strings(keys)
	bounds := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		idx := i * len(keys) / n
		if idx >= len(keys) {
			idx = len(keys) - 1
		}
		if len(keys) == 0 {
			break
		}
		b := keys[idx]
		if len(bounds) > 0 && bounds[len(bounds)-1] >= b {
			continue // collapse duplicate boundaries
		}
		bounds = append(bounds, b)
	}
	rangeSeq++
	return Range{bounds: bounds, id: rangeSeq}
}

// NewStaticRange builds a range partitioner from explicit boundaries. Two
// static range partitioners with equal boundaries are Equivalent, so RDDs
// partitioned with the same static boundaries are co-partitioned (Stark-S).
func NewStaticRange(bounds []string) Range {
	b := make([]string, len(bounds))
	copy(b, bounds)
	sort.Strings(b)
	return Range{bounds: b, id: 0}
}

// UniformBounds produces n-1 evenly spaced single-byte-prefix boundaries
// over the printable key space; convenient for static partitioners over
// uniformly distributed keys.
func UniformBounds(n int) []string {
	bounds := make([]string, 0, n-1)
	const lo, hi = 0x20, 0x7f
	for i := 1; i < n; i++ {
		c := byte(lo + i*(hi-lo)/n)
		bounds = append(bounds, string([]byte{c}))
	}
	return bounds
}

// HexBounds produces n-1 boundaries uniform over fixed-width lowercase hex
// keys of the given width (e.g. Z-order keys rendered by zorder.Key).
// n must be a power of two dividing 16^width.
func HexBounds(n, width int) []string {
	bounds := make([]string, 0, n-1)
	total := 1.0
	for i := 0; i < width; i++ {
		total *= 16
	}
	for i := 1; i < n; i++ {
		frac := float64(i) / float64(n)
		v := uint64(frac * total)
		bounds = append(bounds, fmt.Sprintf("%0*x", width, v))
	}
	return bounds
}

// NumPartitions implements Partitioner.
func (r Range) NumPartitions() int { return len(r.bounds) + 1 }

// PartitionFor implements Partitioner.
func (r Range) PartitionFor(key string) int {
	// First boundary >= key marks the partition (keys equal to a boundary
	// stay in the lower partition, matching the fitted quantiles).
	return sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] >= key })
}

// Equivalent implements Partitioner.
func (r Range) Equivalent(other Partitioner) bool {
	o, ok := other.(Range)
	if !ok || len(o.bounds) != len(r.bounds) {
		return false
	}
	if r.id != o.id {
		return false
	}
	for i := range r.bounds {
		if r.bounds[i] != o.bounds[i] {
			return false
		}
	}
	return true
}

// Bounds returns a copy of the boundary list.
func (r Range) Bounds() []string {
	b := make([]string, len(r.bounds))
	copy(b, r.bounds)
	return b
}

// Describe implements Partitioner.
func (r Range) Describe() string {
	if r.id == 0 {
		return fmt.Sprintf("static-range(%d)", r.NumPartitions())
	}
	return fmt.Sprintf("range#%d(%d)", r.id, r.NumPartitions())
}

var (
	_ Partitioner = Hash{}
	_ Partitioner = Range{}
)
