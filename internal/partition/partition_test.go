package partition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashInRangeAndDeterministic(t *testing.T) {
	h := NewHash(8)
	f := func(key string) bool {
		p := h.PartitionFor(key)
		return p >= 0 && p < 8 && p == h.PartitionFor(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEquivalence(t *testing.T) {
	if !NewHash(4).Equivalent(NewHash(4)) {
		t.Error("hash(4) not equivalent to hash(4)")
	}
	if NewHash(4).Equivalent(NewHash(8)) {
		t.Error("hash(4) equivalent to hash(8)")
	}
	if NewHash(4).Equivalent(NewStaticRange(UniformBounds(4))) {
		t.Error("hash equivalent to range")
	}
}

func TestHashSpreads(t *testing.T) {
	h := NewHash(8)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[h.PartitionFor(fmt.Sprintf("key-%d", i))]++
	}
	for p, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("partition %d got %d of 8000 keys", p, c)
		}
	}
}

func TestRangeFitBalances(t *testing.T) {
	var sample []string
	for i := 0; i < 1000; i++ {
		sample = append(sample, fmt.Sprintf("%04d", i))
	}
	r := NewRange(sample, 4)
	if r.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d", r.NumPartitions())
	}
	counts := make([]int, 4)
	for _, k := range sample {
		counts[r.PartitionFor(k)]++
	}
	for p, c := range counts {
		if c < 200 || c > 300 {
			t.Errorf("partition %d got %d of 1000", p, c)
		}
	}
}

func TestRangeOrderPreserving(t *testing.T) {
	r := NewStaticRange([]string{"b", "d", "f"})
	f := func(a, b string) bool {
		if a > b {
			a, b = b, a
		}
		return r.PartitionFor(a) <= r.PartitionFor(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBoundsPlacement(t *testing.T) {
	r := NewStaticRange([]string{"b", "d"})
	cases := map[string]int{"a": 0, "b": 0, "c": 1, "d": 1, "e": 2, "zz": 2, "": 0}
	for k, want := range cases {
		if got := r.PartitionFor(k); got != want {
			t.Errorf("PartitionFor(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestFreshRangeNotEquivalent(t *testing.T) {
	sample := []string{"a", "b", "c", "d"}
	r1 := NewRange(sample, 2)
	r2 := NewRange(sample, 2)
	if r1.Equivalent(r2) {
		t.Error("independently fitted RangePartitioners must not be equivalent (Spark-R semantics)")
	}
	if !r1.Equivalent(r1) {
		t.Error("partitioner not equivalent to itself")
	}
}

func TestStaticRangeEquivalence(t *testing.T) {
	a := NewStaticRange([]string{"m"})
	b := NewStaticRange([]string{"m"})
	c := NewStaticRange([]string{"n"})
	if !a.Equivalent(b) {
		t.Error("equal static ranges not equivalent")
	}
	if a.Equivalent(c) {
		t.Error("different bounds equivalent")
	}
}

func TestRangeDuplicateBoundaryCollapse(t *testing.T) {
	sample := make([]string, 100)
	for i := range sample {
		sample[i] = "same"
	}
	r := NewRange(sample, 4)
	// All keys identical: boundaries collapse, everything lands somewhere valid.
	p := r.PartitionFor("same")
	if p < 0 || p >= r.NumPartitions() {
		t.Fatalf("partition %d out of range %d", p, r.NumPartitions())
	}
}

func TestUniformBounds(t *testing.T) {
	b := UniformBounds(8)
	if len(b) != 7 {
		t.Fatalf("len = %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i-1] >= b[i] {
			t.Fatalf("bounds not increasing: %q", b)
		}
	}
}

func TestHexBounds(t *testing.T) {
	b := HexBounds(4, 16)
	if len(b) != 3 {
		t.Fatalf("len = %d", len(b))
	}
	r := NewStaticRange(b)
	// Uniform hex keys spread evenly.
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		counts[r.PartitionFor(fmt.Sprintf("%016x", uint64(i)<<52))]++
	}
	for p, c := range counts {
		if c < 800 || c > 1300 {
			t.Errorf("partition %d got %d of 4096", p, c)
		}
	}
}

func TestPanicsOnBadN(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHash(0) },
		func() { NewRange(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
