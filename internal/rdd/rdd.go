// Package rdd models Resilient Distributed Datasets and the lineage graph
// connecting them — the substrate Stark's mechanisms operate on. An RDD is
// an immutable, partitioned dataset; transformations declare narrow or
// shuffle (wide) dependencies; the resulting DAG is what the scheduler cuts
// into stages and the CheckpointOptimizer cuts with max-flow.
//
// Data functions here are pure: they map input record slices to output
// record slices. Where data lives, what it costs to move, and when it is
// computed are the engine's concern.
//
// Purity is a hard contract, not a convention: transforms must not mutate
// their input slices or records, must not retain references to inputs beyond
// the call (aliasing records into the output is fine — records are values),
// and must be deterministic in the keys and values they emit for given
// inputs. The engine relies on this to execute partitions on a parallel
// worker pool, to share partition data copy-free between the cache, collect
// results and checkpoint writes, and to reuse recorded partition sizes
// across recomputations. Run with STARK_CHECK_COW=1 to turn violations into
// panics.
package rdd

import (
	"fmt"
	"sort"
	"time"

	"stark/internal/partition"
	"stark/internal/record"
)

// Kind classifies an RDD by how its partitions are computed.
type Kind int

// RDD kinds.
const (
	KindSource Kind = iota + 1
	KindNarrow
	KindShuffled
	KindCoGrouped
)

// Dep is a dependency on a parent RDD.
type Dep struct {
	Parent *RDD
	// Shuffle marks a wide dependency: the parent's data is repartitioned
	// through persistent map outputs identified by ShuffleID.
	Shuffle   bool
	ShuffleID int
	// Map, when non-nil, maps a child partition to the parent partition it
	// reads (range-style narrow dependencies like union); ok=false means
	// the parent contributes nothing to that child partition. Nil means the
	// identity one-to-one dependency.
	Map func(childPart int) (parentPart int, ok bool)
}

// RDD is one node of the lineage graph.
type RDD struct {
	ID   int
	Name string
	// Parts is the partition count.
	Parts int
	// Partitioner is the partitioning of this RDD's keys, nil when unknown
	// (e.g. sources and key-changing maps).
	Partitioner partition.Partitioner
	Kind        Kind
	Deps        []Dep

	// Transform computes one partition from per-dependency input slices:
	// for a narrow dep, inputs[i] is the parent's corresponding partition;
	// for a shuffle dep, inputs[i] is the merged shuffle read. Source RDDs
	// have no Transform.
	Transform func(part int, inputs [][]record.Record) []record.Record

	// CostFactor scales compute time per input byte relative to a plain
	// map pass (1.0).
	CostFactor float64

	// Namespace is the locality namespace; it starts at a
	// localityPartitionBy and flows through narrow transformations
	// (paper Sec. III-E).
	Namespace string

	// CacheFlag requests caching of computed partitions (RDD.cache()).
	CacheFlag bool

	// Source holds per-partition data for KindSource RDDs.
	Source [][]record.Record
	// SourceFromDisk charges a disk read when materializing source
	// partitions (sc.textFile semantics).
	SourceFromDisk bool

	// Checkpointed is set by the engine once every partition has been
	// persisted; recovery then starts here instead of recomputing lineage.
	Checkpointed bool

	// PartBytes, filled at materialization, records simulated bytes per
	// partition — checkpoint cost c and group sizes derive from it. A
	// recorded size persists across eviction: transforms are pure, so a
	// recomputed partition always measures the same.
	PartBytes []int64
	// COWSums holds per-partition fingerprints of Source taken at graph
	// construction (STARK_CHECK_COW=1 only); the engine re-verifies them at
	// materialization to catch callers mutating source data they handed in.
	COWSums []uint64
	// MaxTransformTime is the maximum per-task transform time observed, the
	// paper's per-transformation recovery delay estimate d (Sec. III-D1).
	MaxTransformTime time.Duration
}

// Narrow reports whether every dependency is narrow.
func (r *RDD) Narrow() bool {
	for _, d := range r.Deps {
		if d.Shuffle {
			return false
		}
	}
	return true
}

// TotalBytes sums the recorded partition sizes.
func (r *RDD) TotalBytes() int64 {
	var s int64
	for _, b := range r.PartBytes {
		s += b
	}
	return s
}

// String renders a compact description.
func (r *RDD) String() string {
	return fmt.Sprintf("%s#%d(%d parts)", r.Name, r.ID, r.Parts)
}

// Graph owns RDD and shuffle id allocation. One Graph per driver context.
type Graph struct {
	rdds        []*RDD
	nextShuffle int
}

// NewGraph returns an empty lineage graph.
func NewGraph() *Graph { return &Graph{} }

// RDDs returns every RDD ever created, in id order.
func (g *Graph) RDDs() []*RDD { return g.rdds }

// ByID returns the RDD with the given id, or nil.
func (g *Graph) ByID(id int) *RDD {
	if id < 0 || id >= len(g.rdds) {
		return nil
	}
	return g.rdds[id]
}

func (g *Graph) add(r *RDD) *RDD {
	r.ID = len(g.rdds)
	if r.CostFactor == 0 {
		r.CostFactor = 1.0
	}
	g.rdds = append(g.rdds, r)
	return r
}

func (g *Graph) allocShuffle() int {
	id := g.nextShuffle
	g.nextShuffle++
	return id
}

// Source creates a source RDD from per-partition data. fromDisk charges a
// disk read on first materialization, modeling sc.textFile. The RDD adopts
// the partition slices copy-on-write — the caller must not mutate them
// afterwards (STARK_CHECK_COW=1 verifies this at every materialization).
func (g *Graph) Source(name string, parts [][]record.Record, fromDisk bool) *RDD {
	r := &RDD{
		Name:           name,
		Parts:          len(parts),
		Kind:           KindSource,
		Source:         parts,
		SourceFromDisk: fromDisk,
	}
	if record.CowCheckEnabled() {
		r.COWSums = make([]uint64, len(parts))
		for i, p := range parts {
			r.COWSums[i] = record.Fingerprint(p)
		}
	}
	return g.add(r)
}

// narrowChild wires a single narrow dependency and inherits partitioner,
// partition count and namespace per the given flag.
func (g *Graph) narrowChild(parent *RDD, name string, preservesPartitioning bool,
	cost float64, transform func(part int, inputs [][]record.Record) []record.Record) *RDD {
	r := &RDD{
		Name:       name,
		Parts:      parent.Parts,
		Kind:       KindNarrow,
		Deps:       []Dep{{Parent: parent}},
		Transform:  transform,
		CostFactor: cost,
		Namespace:  parent.Namespace,
	}
	if preservesPartitioning {
		r.Partitioner = parent.Partitioner
	} else {
		r.Namespace = ""
	}
	return g.add(r)
}

// Map applies f per record. preservesPartitioning must only be true when f
// never changes keys (Spark's mapValues); otherwise the partitioner and
// namespace are dropped.
func (g *Graph) Map(parent *RDD, name string, preservesPartitioning bool, f func(record.Record) record.Record) *RDD {
	return g.narrowChild(parent, name, preservesPartitioning, 1.0,
		func(_ int, inputs [][]record.Record) []record.Record {
			in := inputs[0]
			out := make([]record.Record, len(in))
			for i, rec := range in {
				out[i] = f(rec)
			}
			return out
		})
}

// FlatMap applies f per record and concatenates results; keys may change,
// so partitioning is never preserved.
func (g *Graph) FlatMap(parent *RDD, name string, f func(record.Record) []record.Record) *RDD {
	return g.narrowChild(parent, name, false, 1.2,
		func(_ int, inputs [][]record.Record) []record.Record {
			var out []record.Record
			for _, rec := range inputs[0] {
				out = append(out, f(rec)...)
			}
			return out
		})
}

// Filter keeps records satisfying pred; partitioning is preserved.
func (g *Graph) Filter(parent *RDD, name string, pred func(record.Record) bool) *RDD {
	return g.narrowChild(parent, name, true, 0.6,
		func(_ int, inputs [][]record.Record) []record.Record {
			var out []record.Record
			for _, rec := range inputs[0] {
				if pred(rec) {
					out = append(out, rec)
				}
			}
			return out
		})
}

// MapPartitions applies f to whole partitions. preservesPartitioning as in
// Map.
func (g *Graph) MapPartitions(parent *RDD, name string, preservesPartitioning bool,
	cost float64, f func([]record.Record) []record.Record) *RDD {
	return g.narrowChild(parent, name, preservesPartitioning, cost,
		func(_ int, inputs [][]record.Record) []record.Record {
			return f(inputs[0])
		})
}

// PartitionBy repartitions by p through a shuffle (a ShuffledRDD with no
// aggregation).
func (g *Graph) PartitionBy(parent *RDD, name string, p partition.Partitioner) *RDD {
	return g.add(&RDD{
		Name:        name,
		Parts:       p.NumPartitions(),
		Partitioner: p,
		Kind:        KindShuffled,
		Deps:        []Dep{{Parent: parent, Shuffle: true, ShuffleID: g.allocShuffle()}},
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			return inputs[0]
		},
		CostFactor: 0.5,
	})
}

// LocalityPartitionBy is PartitionBy plus namespace registration: the
// resulting RDD and its narrow descendants belong to ns, which the
// LocalityManager uses for co-locality (paper Sec. III-E,
// localityPartitionBy(p, ns)).
func (g *Graph) LocalityPartitionBy(parent *RDD, name string, p partition.Partitioner, ns string) *RDD {
	r := g.PartitionBy(parent, name, p)
	r.Namespace = ns
	return r
}

// ReduceByKey combines values per key with merge, partitioned by p. When
// the parent is already partitioned equivalently, the combine runs as a
// narrow per-partition pass with no shuffle — Spark's combineByKey fast
// path, which Stark's co-partitioned collections hit constantly.
func (g *Graph) ReduceByKey(parent *RDD, name string, p partition.Partitioner, merge func(a, b any) any) *RDD {
	combine := func(in []record.Record) []record.Record {
		groups := record.GroupByKeySorted(in)
		out := make([]record.Record, 0, len(groups))
		for _, grp := range groups {
			acc := grp.Values[0]
			for _, v := range grp.Values[1:] {
				acc = merge(acc, v)
			}
			out = append(out, record.Record{Key: grp.Key, Value: acc})
		}
		return out
	}
	if parent.Partitioner != nil && parent.Parts == p.NumPartitions() && parent.Partitioner.Equivalent(p) {
		return g.MapPartitions(parent, name, true, 1.5, combine)
	}
	return g.add(&RDD{
		Name:        name,
		Parts:       p.NumPartitions(),
		Partitioner: p,
		Kind:        KindShuffled,
		Deps:        []Dep{{Parent: parent, Shuffle: true, ShuffleID: g.allocShuffle()}},
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			return combine(inputs[0])
		},
		CostFactor: 1.5,
	})
}

// SourceWithPartitioner creates a source RDD that is already partitioned by
// p (e.g. the empty previous-step state of an iterative application);
// cogroups against it stay narrow. parts must have p.NumPartitions()
// entries with every record in its p-assigned partition; the caller owns
// that invariant.
func (g *Graph) SourceWithPartitioner(name string, parts [][]record.Record, fromDisk bool, p partition.Partitioner, ns string) *RDD {
	r := g.Source(name, parts, fromDisk)
	if len(parts) != p.NumPartitions() {
		panic(fmt.Sprintf("rdd: source %s has %d partitions, partitioner wants %d", name, len(parts), p.NumPartitions()))
	}
	r.Partitioner = p
	r.Namespace = ns
	return r
}

// coGroupDeps wires one dependency per parent: narrow when the parent is
// already partitioned equivalently to p with the same partition count
// (Spark's one-to-one cogroup dependency), a fresh shuffle otherwise.
func (g *Graph) coGroupDeps(p partition.Partitioner, parents []*RDD) []Dep {
	deps := make([]Dep, len(parents))
	for i, par := range parents {
		if par.Partitioner != nil && par.Parts == p.NumPartitions() && par.Partitioner.Equivalent(p) {
			deps[i] = Dep{Parent: par}
		} else {
			deps[i] = Dep{Parent: par, Shuffle: true, ShuffleID: g.allocShuffle()}
		}
	}
	return deps
}

// sharedNamespace returns the parents' common namespace, or "".
func sharedNamespace(parents []*RDD) string {
	if len(parents) == 0 {
		return ""
	}
	ns := parents[0].Namespace
	for _, p := range parents[1:] {
		if p.Namespace != ns {
			return ""
		}
	}
	return ns
}

// CoGroup groups the parents' values by key into record.CoGrouped values.
func (g *Graph) CoGroup(name string, p partition.Partitioner, parents ...*RDD) *RDD {
	if len(parents) == 0 {
		panic("rdd: CoGroup needs at least one parent")
	}
	n := len(parents)
	return g.add(&RDD{
		Name:        name,
		Parts:       p.NumPartitions(),
		Partitioner: p,
		Kind:        KindCoGrouped,
		Deps:        g.coGroupDeps(p, parents),
		Namespace:   sharedNamespace(parents),
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			grouped := make(map[string]*record.CoGrouped)
			var order []string
			for pi := 0; pi < n; pi++ {
				for _, rec := range inputs[pi] {
					cg, ok := grouped[rec.Key]
					if !ok {
						cg = &record.CoGrouped{Groups: make([][]any, n)}
						grouped[rec.Key] = cg
						order = append(order, rec.Key)
					}
					cg.Groups[pi] = append(cg.Groups[pi], rec.Value)
				}
			}
			out := make([]record.Record, 0, len(order))
			for _, k := range order {
				out = append(out, record.Record{Key: k, Value: *grouped[k]})
			}
			return out
		},
		CostFactor: 2.0,
	})
}

// Join inner-joins two parents, emitting record.Joined values for every
// cross-product pair per key.
func (g *Graph) Join(name string, p partition.Partitioner, left, right *RDD) *RDD {
	parents := []*RDD{left, right}
	return g.add(&RDD{
		Name:        name,
		Parts:       p.NumPartitions(),
		Partitioner: p,
		Kind:        KindCoGrouped,
		Deps:        g.coGroupDeps(p, parents),
		Namespace:   sharedNamespace(parents),
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			// Merge-join over the sorted group lists the arena-backed kernel
			// produces — no right-side index map, exact-size output.
			return record.JoinRecords(inputs[0], inputs[1])
		},
		CostFactor: 2.0,
	})
}

// Union concatenates the parents: the result has the sum of the parents'
// partitions, each a range-style narrow dependency on exactly one parent
// partition. Partitioning and namespaces are not preserved (Spark
// semantics: a UnionRDD has no partitioner).
func (g *Graph) Union(name string, parents ...*RDD) *RDD {
	if len(parents) == 0 {
		panic("rdd: Union needs at least one parent")
	}
	total := 0
	offsets := make([]int, len(parents))
	for i, p := range parents {
		offsets[i] = total
		total += p.Parts
	}
	deps := make([]Dep, len(parents))
	for i, p := range parents {
		lo, hi := offsets[i], offsets[i]+p.Parts
		deps[i] = Dep{Parent: p, Map: func(child int) (int, bool) {
			if child < lo || child >= hi {
				return 0, false
			}
			return child - lo, true
		}}
	}
	return g.add(&RDD{
		Name:  name,
		Parts: total,
		Kind:  KindNarrow,
		Deps:  deps,
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			// Exactly one input is non-nil per partition.
			for _, in := range inputs {
				if in != nil {
					return in
				}
			}
			return nil
		},
		CostFactor: 0.1,
	})
}

// Distinct keeps one record per key, partitioned by p.
func (g *Graph) Distinct(parent *RDD, name string, p partition.Partitioner) *RDD {
	return g.ReduceByKey(parent, name, p, func(a, _ any) any { return a })
}

// GroupByKey groups all values per key into []any values, partitioned by p.
// Like ReduceByKey it runs narrow when the parent is co-partitioned.
func (g *Graph) GroupByKey(parent *RDD, name string, p partition.Partitioner) *RDD {
	groupAll := func(in []record.Record) []record.Record {
		groups := record.GroupByKeySorted(in)
		out := make([]record.Record, 0, len(groups))
		for _, grp := range groups {
			out = append(out, record.Record{Key: grp.Key, Value: grp.Values})
		}
		return out
	}
	if parent.Partitioner != nil && parent.Parts == p.NumPartitions() && parent.Partitioner.Equivalent(p) {
		return g.MapPartitions(parent, name, true, 1.5, groupAll)
	}
	return g.add(&RDD{
		Name:        name,
		Parts:       p.NumPartitions(),
		Partitioner: p,
		Kind:        KindShuffled,
		Deps:        []Dep{{Parent: parent, Shuffle: true, ShuffleID: g.allocShuffle()}},
		Transform: func(_ int, inputs [][]record.Record) []record.Record {
			return groupAll(inputs[0])
		},
		CostFactor: 1.5,
	})
}

// Sample keeps approximately frac of the records, deterministically by key
// hash so resampling an RDD yields the same subset. salt varies the subset.
func (g *Graph) Sample(parent *RDD, name string, frac float64, salt uint32) *RDD {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	threshold := uint32(frac * float64(1<<32-1))
	return g.Filter(parent, name, func(r record.Record) bool {
		h := fnv32(r.Key) ^ salt
		// One extra mix round decorrelates from the partitioner's hash.
		h ^= h >> 16
		h *= 0x7feb352d
		h ^= h >> 15
		return h <= threshold
	})
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Ancestors returns every transitive parent of r (excluding r), unordered.
func Ancestors(r *RDD) []*RDD {
	seen := map[int]bool{r.ID: true}
	var out []*RDD
	var walk func(*RDD)
	walk = func(n *RDD) {
		for _, d := range n.Deps {
			if !seen[d.Parent.ID] {
				seen[d.Parent.ID] = true
				out = append(out, d.Parent)
				walk(d.Parent)
			}
		}
	}
	walk(r)
	return out
}

// SortByKey range-partitions the dataset by a partitioner fitted to the
// given key sample and sorts each partition, so a partition-ordered scan
// yields globally sorted keys — Spark's sortByKey. The fresh fitted
// partitioner means the result is not co-partitioned with anything.
func (g *Graph) SortByKey(parent *RDD, name string, sample []string, parts int) *RDD {
	rp := partition.NewRange(sample, parts)
	shuffled := g.PartitionBy(parent, name+"-range", rp)
	return g.MapPartitions(shuffled, name, true, 1.2, func(in []record.Record) []record.Record {
		// Sorting in place is safe: the input is the private "-range"
		// shuffle's partition, freshly concatenated per materialization and
		// never cached or shared with another consumer.
		sort.SliceStable(in, func(i, j int) bool { return in[i].Key < in[j].Key })
		return in
	})
}
