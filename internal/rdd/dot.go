package rdd

import (
	"fmt"
	"strings"
)

// Dot renders a lineage graph in Graphviz DOT form: one node per RDD with
// its name, partition count, and state (cached / checkpointed), solid edges
// for narrow dependencies and dashed bold edges for shuffles. Feed it to
// `dot -Tsvg` to see what the scheduler and the CheckpointOptimizer see.
func Dot(rdds []*RDD) string {
	var b strings.Builder
	b.WriteString("digraph lineage {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	for _, r := range rdds {
		var marks []string
		if r.CacheFlag {
			marks = append(marks, "cached")
		}
		if r.Checkpointed {
			marks = append(marks, "ckpt")
		}
		label := fmt.Sprintf("%s #%d\\n%d parts", escapeDot(r.Name), r.ID, r.Parts)
		if len(marks) > 0 {
			label += "\\n[" + strings.Join(marks, ",") + "]"
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if r.Checkpointed {
			attrs += ", style=filled, fillcolor=lightblue"
		} else if r.CacheFlag {
			attrs += ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(&b, "  r%d [%s];\n", r.ID, attrs)
	}
	for _, r := range rdds {
		for _, d := range r.Deps {
			if d.Shuffle {
				fmt.Fprintf(&b, "  r%d -> r%d [style=dashed, penwidth=2, label=\"shuffle %d\", fontsize=9];\n",
					d.Parent.ID, r.ID, d.ShuffleID)
			} else {
				fmt.Fprintf(&b, "  r%d -> r%d;\n", d.Parent.ID, r.ID)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}
