package rdd

import (
	"fmt"
	"strings"
	"testing"

	"stark/internal/partition"
	"stark/internal/record"
)

func sourceParts() [][]record.Record {
	return [][]record.Record{
		{record.Pair("a", int64(1)), record.Pair("b", int64(2))},
		{record.Pair("c", int64(3))},
	}
}

func TestSourceAdoptsDataCopyOnWrite(t *testing.T) {
	g := NewGraph()
	parts := sourceParts()
	r := g.Source("src", parts, true)
	// The source adopts the caller's slices without a defensive clone; the
	// caller contract (enforced under STARK_CHECK_COW=1) is to never mutate
	// them afterwards.
	if &r.Source[0][0] != &parts[0][0] {
		t.Fatal("Source cloned caller data; expected copy-on-write adoption")
	}
	if r.ID != 0 || r.Parts != 2 || !r.SourceFromDisk || r.Kind != KindSource {
		t.Fatalf("source = %+v", r)
	}
}

func TestMapTransform(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", sourceParts(), false)
	m := g.Map(src, "upper", false, func(r record.Record) record.Record {
		return record.Pair(strings.ToUpper(r.Key), r.Value)
	})
	out := m.Transform(0, [][]record.Record{src.Source[0]})
	if len(out) != 2 || out[0].Key != "A" || out[1].Key != "B" {
		t.Fatalf("out = %v", out)
	}
	if m.Partitioner != nil {
		t.Fatal("key-changing map preserved partitioner")
	}
}

func TestFilterPreservesPartitioningAndNamespace(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", sourceParts(), false)
	p := partition.NewHash(2)
	lp := g.LocalityPartitionBy(src, "lp", p, "ns1")
	f := g.Filter(lp, "f", func(r record.Record) bool { return r.Key != "b" })
	if f.Partitioner == nil || !f.Partitioner.Equivalent(p) {
		t.Fatal("filter dropped partitioner")
	}
	if f.Namespace != "ns1" {
		t.Fatalf("namespace = %q, want ns1 (narrow propagation)", f.Namespace)
	}
	out := f.Transform(0, [][]record.Record{{record.Pair("a", 1), record.Pair("b", 2)}})
	if len(out) != 1 || out[0].Key != "a" {
		t.Fatalf("out = %v", out)
	}
}

func TestKeyChangingMapDropsNamespace(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", sourceParts(), false)
	lp := g.LocalityPartitionBy(src, "lp", partition.NewHash(2), "ns1")
	m := g.Map(lp, "rekey", false, func(r record.Record) record.Record { return r })
	if m.Namespace != "" || m.Partitioner != nil {
		t.Fatalf("rekeying map kept namespace %q / partitioner %v", m.Namespace, m.Partitioner)
	}
	mv := g.Map(lp, "mapValues", true, func(r record.Record) record.Record { return r })
	if mv.Namespace != "ns1" || mv.Partitioner == nil {
		t.Fatal("value-only map lost namespace or partitioner")
	}
}

func TestFlatMap(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", sourceParts(), false)
	fm := g.FlatMap(src, "dup", func(r record.Record) []record.Record {
		return []record.Record{r, r}
	})
	out := fm.Transform(0, [][]record.Record{src.Source[0]})
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestPartitionByIsShuffle(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", sourceParts(), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	if pb.Narrow() {
		t.Fatal("partitionBy narrow")
	}
	if pb.Parts != 4 || pb.Deps[0].ShuffleID != 0 {
		t.Fatalf("pb = %+v", pb)
	}
	pb2 := g.PartitionBy(src, "pb2", partition.NewHash(4))
	if pb2.Deps[0].ShuffleID != 1 {
		t.Fatal("shuffle ids not unique")
	}
}

func TestReduceByKeyCombines(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", nil, false)
	rbk := g.ReduceByKey(src, "sum", partition.NewHash(2), func(a, b any) any {
		ai, _ := record.AsInt64(a)
		bi, _ := record.AsInt64(b)
		return ai + bi
	})
	in := []record.Record{record.Pair("x", int64(1)), record.Pair("y", int64(5)), record.Pair("x", int64(2))}
	out := rbk.Transform(0, [][]record.Record{in})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	byKey := map[string]any{}
	for _, r := range out {
		byKey[r.Key] = r.Value
	}
	if byKey["x"] != int64(3) || byKey["y"] != int64(5) {
		t.Fatalf("byKey = %v", byKey)
	}
}

func TestCoGroupNarrowWhenCoPartitioned(t *testing.T) {
	g := NewGraph()
	p := partition.NewHash(2)
	a := g.PartitionBy(g.Source("a", nil, false), "ap", p)
	b := g.PartitionBy(g.Source("b", nil, false), "bp", p)
	cg := g.CoGroup("cg", p, a, b)
	if !cg.Narrow() {
		t.Fatal("co-partitioned cogroup not narrow")
	}
	// Different partitioner forces shuffle deps.
	c := g.PartitionBy(g.Source("c", nil, false), "cp", partition.NewHash(3))
	cg2 := g.CoGroup("cg2", p, a, c)
	if cg2.Deps[0].Shuffle || !cg2.Deps[1].Shuffle {
		t.Fatalf("deps = %+v", cg2.Deps)
	}
}

func TestCoGroupNamespacePropagation(t *testing.T) {
	g := NewGraph()
	p := partition.NewHash(2)
	a := g.LocalityPartitionBy(g.Source("a", nil, false), "ap", p, "ns")
	b := g.LocalityPartitionBy(g.Source("b", nil, false), "bp", p, "ns")
	c := g.LocalityPartitionBy(g.Source("c", nil, false), "cp", p, "other")
	if cg := g.CoGroup("cg", p, a, b); cg.Namespace != "ns" {
		t.Fatalf("namespace = %q", cg.Namespace)
	}
	if cg := g.CoGroup("cg2", p, a, c); cg.Namespace != "" {
		t.Fatal("mixed namespaces propagated")
	}
}

func TestCoGroupTransform(t *testing.T) {
	g := NewGraph()
	p := partition.NewHash(1)
	a := g.Source("a", nil, false)
	b := g.Source("b", nil, false)
	cg := g.CoGroup("cg", p, a, b)
	out := cg.Transform(0, [][]record.Record{
		{record.Pair("k", "a1"), record.Pair("k", "a2")},
		{record.Pair("k", "b1"), record.Pair("z", "b2")},
	})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	var k, z record.CoGrouped
	for _, r := range out {
		cgv := r.Value.(record.CoGrouped)
		switch r.Key {
		case "k":
			k = cgv
		case "z":
			z = cgv
		}
	}
	if len(k.Groups[0]) != 2 || len(k.Groups[1]) != 1 {
		t.Fatalf("k groups = %v", k.Groups)
	}
	if len(z.Groups[0]) != 0 || len(z.Groups[1]) != 1 {
		t.Fatalf("z groups = %v", z.Groups)
	}
}

func TestJoinTransform(t *testing.T) {
	g := NewGraph()
	p := partition.NewHash(1)
	j := g.Join("j", p, g.Source("a", nil, false), g.Source("b", nil, false))
	out := j.Transform(0, [][]record.Record{
		{record.Pair("k", "l1"), record.Pair("k", "l2"), record.Pair("only", "x")},
		{record.Pair("k", "r1")},
	})
	if len(out) != 2 {
		t.Fatalf("join out = %v", out)
	}
	for _, r := range out {
		jv := r.Value.(record.Joined)
		if r.Key != "k" || jv.Right != "r1" {
			t.Fatalf("bad joined %v", r)
		}
	}
}

func TestAncestors(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", nil, false)
	p := partition.NewHash(2)
	pb := g.PartitionBy(src, "pb", p)
	f := g.Filter(pb, "f", func(record.Record) bool { return true })
	cg := g.CoGroup("cg", p, f, pb)
	anc := Ancestors(cg)
	if len(anc) != 3 {
		t.Fatalf("ancestors = %v", anc)
	}
	if len(Ancestors(src)) != 0 {
		t.Fatal("source has ancestors")
	}
}

func TestGraphByID(t *testing.T) {
	g := NewGraph()
	r := g.Source("s", nil, false)
	if g.ByID(r.ID) != r || g.ByID(99) != nil || g.ByID(-1) != nil {
		t.Fatal("ByID wrong")
	}
	if len(g.RDDs()) != 1 {
		t.Fatal("RDDs wrong")
	}
}

func TestTotalBytesAndString(t *testing.T) {
	g := NewGraph()
	r := g.Source("s", nil, false)
	r.PartBytes = []int64{10, 20}
	if r.TotalBytes() != 30 {
		t.Fatalf("TotalBytes = %d", r.TotalBytes())
	}
	if r.String() != "s#0(0 parts)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestCoGroupNoParentsPanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.CoGroup("cg", partition.NewHash(1))
}

func TestUnionPartitionMapping(t *testing.T) {
	g := NewGraph()
	a := g.Source("a", [][]record.Record{{record.Pair("a0", 1)}, {record.Pair("a1", 2)}}, false)
	b := g.Source("b", [][]record.Record{{record.Pair("b0", 3)}}, false)
	u := g.Union("u", a, b)
	if u.Parts != 3 || !u.Narrow() || u.Partitioner != nil {
		t.Fatalf("union = %+v", u)
	}
	// Child partition 0,1 -> a's 0,1; child 2 -> b's 0.
	cases := []struct {
		child  int
		parent int // index into deps
		pp     int
	}{{0, 0, 0}, {1, 0, 1}, {2, 1, 0}}
	for _, c := range cases {
		for di, d := range u.Deps {
			pp, ok := d.Map(c.child)
			if di == c.parent {
				if !ok || pp != c.pp {
					t.Fatalf("child %d dep %d -> %d,%v", c.child, di, pp, ok)
				}
			} else if ok {
				t.Fatalf("child %d claimed by dep %d", c.child, di)
			}
		}
	}
	// Transform picks the sole non-nil input.
	out := u.Transform(2, [][]record.Record{nil, {record.Pair("b0", 3)}})
	if len(out) != 1 || out[0].Key != "b0" {
		t.Fatalf("transform = %v", out)
	}
}

func TestUnionNoParentsPanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Union("u")
}

func TestDistinctKeepsFirst(t *testing.T) {
	g := NewGraph()
	src := g.Source("s", nil, false)
	d := g.Distinct(src, "d", partition.NewHash(2))
	out := d.Transform(0, [][]record.Record{{
		record.Pair("k", "first"), record.Pair("k", "second"), record.Pair("j", "x"),
	}})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	for _, r := range out {
		if r.Key == "k" && r.Value != "first" {
			t.Fatalf("distinct kept %v", r.Value)
		}
	}
}

func TestGroupByKeyNarrowWhenCoPartitioned(t *testing.T) {
	g := NewGraph()
	p := partition.NewHash(2)
	pre := g.PartitionBy(g.Source("s", nil, false), "pre", p)
	gb := g.GroupByKey(pre, "gb", p)
	if !gb.Narrow() {
		t.Fatal("co-partitioned groupByKey not narrow")
	}
	if gb.Partitioner == nil || !gb.Partitioner.Equivalent(p) {
		t.Fatal("groupByKey lost partitioner")
	}
	// Different partitioner shuffles.
	gb2 := g.GroupByKey(pre, "gb2", partition.NewHash(4))
	if gb2.Narrow() {
		t.Fatal("repartitioning groupByKey narrow")
	}
	out := gb.Transform(0, [][]record.Record{{record.Pair("a", 1), record.Pair("a", 2)}})
	if len(out) != 1 || len(out[0].Value.([]any)) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestSampleDeterministicAndClamped(t *testing.T) {
	g := NewGraph()
	src := g.Source("s", nil, false)
	var in []record.Record
	for i := 0; i < 1000; i++ {
		in = append(in, record.Pair(fmt.Sprintf("k%04d", i), i))
	}
	s := g.Sample(src, "half", 0.5, 7)
	out1 := s.Transform(0, [][]record.Record{in})
	out2 := s.Transform(0, [][]record.Record{in})
	if len(out1) != len(out2) {
		t.Fatal("sample not deterministic")
	}
	if len(out1) < 400 || len(out1) > 600 {
		t.Fatalf("sample(0.5) kept %d of 1000", len(out1))
	}
	none := g.Sample(src, "none", -1, 7)
	if got := none.Transform(0, [][]record.Record{in}); len(got) != 0 {
		t.Fatalf("sample(-1) kept %d", len(got))
	}
	all := g.Sample(src, "all", 2, 7)
	if got := all.Transform(0, [][]record.Record{in}); len(got) != 1000 {
		t.Fatalf("sample(2) kept %d", len(got))
	}
}
