package metrics

import "fmt"

// CacheMetrics aggregates the engine's memory-pressure and eviction-policy
// counters — the observable side of graceful degradation under cache
// exhaustion. When caching a block would require breaking a pinned peer
// group or exceed a pressure-shrunk capacity, the engine refuses the cache
// deterministically (compute-and-stream) instead of thrashing; these
// counters make the refusals, the OOM task failures, and the recompute cost
// of earlier evictions visible to experiments.
type CacheMetrics struct {
	// Policy names the active eviction policy ("lru" or "dag").
	Policy string `json:"policy"`

	// CacheRefusals counts puts the engine declined gracefully: the block
	// streamed to its consumer uncached and the store was left untouched.
	CacheRefusals int `json:"cache_refusals"`
	// PinnedEvictionsBlocked counts the refusals caused specifically by
	// pinned peer groups (all-or-nothing pinning held; no victim existed).
	PinnedEvictionsBlocked int `json:"pinned_evictions_blocked"`

	// OOMTaskFailures counts tasks failed with ErrOOM because a cache write
	// exceeded the shrunk capacity inside an armed ExecutorOOM window; each
	// went through the normal retry/lineage-recompute path.
	OOMTaskFailures int `json:"oom_task_failures"`

	// RecomputesAfterEviction counts cache misses on blocks a policy
	// eviction previously dropped — the recompute penalty the DAG-aware
	// policy exists to reduce.
	RecomputesAfterEviction int `json:"recomputes_after_eviction"`
}

// String renders a one-line summary.
func (c CacheMetrics) String() string {
	return fmt.Sprintf("policy=%s refusals=%d pinnedBlocked=%d oomFails=%d recomputesAfterEvict=%d",
		c.Policy, c.CacheRefusals, c.PinnedEvictionsBlocked, c.OOMTaskFailures, c.RecomputesAfterEviction)
}
