package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	s := Summarize(ds)
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Input untouched.
	if ds[0] != 5 {
		t.Fatal("Summarize mutated input")
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary wrong")
	}
	if !strings.Contains(s.String(), "n=5") || Summarize(nil).String() != "n=0" {
		t.Fatal("String wrong")
	}
}

func TestSummarizeOrderInvariantQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		ds := make([]time.Duration, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v)
		}
		a := Summarize(ds)
		// Reverse and re-summarize.
		rev := make([]time.Duration, len(ds))
		for i := range ds {
			rev[i] = ds[len(ds)-1-i]
		}
		b := Summarize(rev)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryPercentileOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v)
		}
		s := Summarize(ds)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 3)
	for _, d := range []time.Duration{
		time.Millisecond, 5 * time.Millisecond, // bin 0
		15 * time.Millisecond,                    // bin 1
		25 * time.Millisecond,                    // bin 2
		99 * time.Millisecond, -time.Millisecond, // overmax, clamped-to-0
	} {
		h.Observe(d)
	}
	if h.Total != 6 || h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Overmax != 1 {
		t.Fatalf("histogram = %+v", h)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "+") {
		t.Fatalf("render = %q", out)
	}
	if NewHistogram(0, 0).Render(0) != "(empty)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestGantt(t *testing.T) {
	jm := JobMetrics{
		JobID: 7,
		Tasks: []TaskMetrics{
			{Executor: 0, Locality: NodeLocal, Started: 0, Finished: 50 * time.Millisecond},
			{Executor: 1, Locality: Remote, Started: 10 * time.Millisecond, Finished: 100 * time.Millisecond},
		},
	}
	out := Gantt(jm, 40)
	if !strings.Contains(out, "exec   0") || !strings.Contains(out, "exec   1") {
		t.Fatalf("gantt rows missing:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "r") {
		t.Fatalf("gantt marks missing:\n%s", out)
	}
	if Gantt(JobMetrics{}, 40) != "(no tasks)\n" {
		t.Fatal("empty gantt wrong")
	}
	// Zero-span jobs must not divide by zero.
	flat := JobMetrics{Tasks: []TaskMetrics{{Executor: 0, Locality: NodeLocal}}}
	if out := Gantt(flat, 0); !strings.Contains(out, "exec   0") {
		t.Fatalf("flat gantt = %q", out)
	}
}
