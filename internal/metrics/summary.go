package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary condenses a duration sample into the statistics the evaluation
// tables report.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
}

// Summarize computes a Summary; the input is not mutated.
func Summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / time.Duration(len(sorted)),
		P50:   at(0.50),
		P95:   at(0.95),
		P99:   at(0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v mean=%v p95=%v p99=%v max=%v",
		s.Count, s.Min, s.P50, s.Mean, s.P95, s.P99, s.Max)
}

// Histogram buckets durations into fixed-width bins for terminal plots.
type Histogram struct {
	Width   time.Duration
	Counts  []int
	Total   int
	Overmax int // samples beyond the last bin
}

// NewHistogram builds a histogram with bins of the given width covering
// [0, width*bins); out-of-range samples land in Overmax.
func NewHistogram(width time.Duration, bins int) *Histogram {
	if width <= 0 {
		width = time.Millisecond
	}
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Width: width, Counts: make([]int, bins)}
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.Total++
	if d < 0 {
		d = 0
	}
	idx := int(d / h.Width)
	if idx >= len(h.Counts) {
		h.Overmax++
		return
	}
	h.Counts[idx]++
}

// Render draws the histogram with unit-width bars scaled to maxBar
// characters.
func (h *Histogram) Render(maxBar int) string {
	if maxBar < 1 {
		maxBar = 40
	}
	peak := h.Overmax
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*maxBar/peak)
		fmt.Fprintf(&b, "%8v-%8v |%-*s %d\n",
			time.Duration(i)*h.Width, time.Duration(i+1)*h.Width, maxBar, bar, c)
	}
	if h.Overmax > 0 {
		bar := strings.Repeat("#", h.Overmax*maxBar/peak)
		fmt.Fprintf(&b, "%17s+ |%-*s %d\n", time.Duration(len(h.Counts))*h.Width, maxBar, bar, h.Overmax)
	}
	return b.String()
}
