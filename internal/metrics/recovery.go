package metrics

import (
	"fmt"
	"time"
)

// RecoveryMetrics aggregates the engine's fault-handling counters and the
// measured post-failure recovery delays — the observable side of Sec.
// III-D's bounded-recovery claim. A recovery delay is the virtual time from
// an executor failure until every task it aborted has been successfully
// re-executed.
type RecoveryMetrics struct {
	TaskFailures       int `json:"task_failures"`
	TaskRetries        int `json:"task_retries"`
	FetchFailures      int `json:"fetch_failures"`
	StageResubmissions int `json:"stage_resubmissions"`

	SpeculativeLaunches int `json:"speculative_launches"`
	SpeculativeWins     int `json:"speculative_wins"`

	ExecutorBlacklists   int `json:"executor_blacklists"`
	ExecutorUnblacklists int `json:"executor_unblacklists"`

	CheckpointDeferrals int `json:"checkpoint_deferrals"`

	RecoveryDelays []time.Duration `json:"recovery_delays_ns"`
}

// MaxRecoveryDelay reports the largest measured recovery delay; 0 when no
// failure disrupted running tasks.
func (r RecoveryMetrics) MaxRecoveryDelay() time.Duration {
	return Max(r.RecoveryDelays)
}

// String renders a one-line summary.
func (r RecoveryMetrics) String() string {
	return fmt.Sprintf("failures=%d retries=%d fetchFail=%d resubmits=%d spec=%d/%d blacklists=%d maxRecovery=%v",
		r.TaskFailures, r.TaskRetries, r.FetchFailures, r.StageResubmissions,
		r.SpeculativeWins, r.SpeculativeLaunches, r.ExecutorBlacklists,
		r.MaxRecoveryDelay().Round(time.Millisecond))
}
