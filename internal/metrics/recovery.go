package metrics

import (
	"fmt"
	"time"
)

// RecoveryMetrics aggregates the engine's fault-handling counters and the
// measured post-failure recovery delays — the observable side of Sec.
// III-D's bounded-recovery claim. A recovery delay is the virtual time from
// an executor failure until every task it aborted has been successfully
// re-executed.
type RecoveryMetrics struct {
	TaskFailures       int `json:"task_failures"`
	TaskRetries        int `json:"task_retries"`
	FetchFailures      int `json:"fetch_failures"`
	StageResubmissions int `json:"stage_resubmissions"`

	SpeculativeLaunches int `json:"speculative_launches"`
	SpeculativeWins     int `json:"speculative_wins"`

	ExecutorBlacklists   int `json:"executor_blacklists"`
	ExecutorUnblacklists int `json:"executor_unblacklists"`

	CheckpointDeferrals int `json:"checkpoint_deferrals"`

	// Failure-detection counters (heartbeat mode): suspicion transitions,
	// suspicions cleared by a late heartbeat (false positives), executors
	// declared dead on a missed-heartbeat timeout, executors that rejoined
	// after a declaration, and results/registrations rejected because they
	// carried a stale executor epoch.
	Suspicions           int `json:"suspicions"`
	SuspicionsCleared    int `json:"suspicions_cleared"`
	DeadDeclarations     int `json:"dead_declarations"`
	Rejoins              int `json:"rejoins"`
	StaleEpochRejections int `json:"stale_epoch_rejections"`

	// CorruptBlocks counts persisted blocks whose checksum verification
	// failed on read; each was evicted and recomputed through lineage.
	CorruptBlocks int `json:"corrupt_blocks"`

	// JobCancellations counts jobs withdrawn through CancelJob (deadline
	// expiry, admission-control shedding, driver shutdown) — cooperative
	// unwinding, not failures.
	JobCancellations int `json:"job_cancellations"`

	// Driver fault-domain counters: crashes and completed restarts of the
	// driver itself, write-ahead-journal records replayed across all
	// restarts, and torn journal tails truncated during replay.
	DriverCrashes          int `json:"driver_crashes"`
	DriverRestarts         int `json:"driver_restarts"`
	JournalRecordsReplayed int `json:"journal_records_replayed"`
	JournalTornTails       int `json:"journal_torn_tails"`

	RecoveryDelays []time.Duration `json:"recovery_delays_ns"`
	// DetectionDelays records, per dead declaration, the virtual time from
	// the executor's last heard heartbeat to the declaration — the detection
	// component already included in the corresponding RecoveryDelays entry.
	DetectionDelays []time.Duration `json:"detection_delays_ns"`
}

// MaxRecoveryDelay reports the largest measured recovery delay; 0 when no
// failure disrupted running tasks. In heartbeat mode the measurement starts
// at the failed executor's last heard heartbeat, so detection latency is
// part of the delay.
func (r RecoveryMetrics) MaxRecoveryDelay() time.Duration {
	return Max(r.RecoveryDelays)
}

// MaxDetectionDelay reports the largest measured failure-detection delay; 0
// when nothing was declared dead.
func (r RecoveryMetrics) MaxDetectionDelay() time.Duration {
	return Max(r.DetectionDelays)
}

// String renders a one-line summary.
func (r RecoveryMetrics) String() string {
	return fmt.Sprintf("failures=%d retries=%d fetchFail=%d resubmits=%d spec=%d/%d blacklists=%d suspect=%d dead=%d rejoin=%d staleEpoch=%d corrupt=%d driverCrash=%d/%d journalReplayed=%d torn=%d maxDetect=%v maxRecovery=%v",
		r.TaskFailures, r.TaskRetries, r.FetchFailures, r.StageResubmissions,
		r.SpeculativeWins, r.SpeculativeLaunches, r.ExecutorBlacklists,
		r.Suspicions, r.DeadDeclarations, r.Rejoins, r.StaleEpochRejections, r.CorruptBlocks,
		r.DriverCrashes, r.DriverRestarts, r.JournalRecordsReplayed, r.JournalTornTails,
		r.MaxDetectionDelay().Round(time.Millisecond),
		r.MaxRecoveryDelay().Round(time.Millisecond))
}
