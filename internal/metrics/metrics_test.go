package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTaskDerived(t *testing.T) {
	m := TaskMetrics{Submitted: 1 * time.Second, Started: 3 * time.Second, Finished: 10 * time.Second}
	if m.QueueWait() != 2*time.Second {
		t.Errorf("QueueWait = %v", m.QueueWait())
	}
	if m.Duration() != 7*time.Second {
		t.Errorf("Duration = %v", m.Duration())
	}
}

func TestJobAggregates(t *testing.T) {
	j := JobMetrics{
		Submitted: time.Second,
		Finished:  11 * time.Second,
		Tasks: []TaskMetrics{
			{GC: time.Second, ShuffleRead: 2 * time.Second, Locality: NodeLocal, Started: 0, Finished: 5 * time.Second},
			{GC: 3 * time.Second, ShuffleRead: time.Second, Locality: Remote, Started: 0, Finished: 9 * time.Second},
		},
	}
	if j.Makespan() != 10*time.Second {
		t.Errorf("Makespan = %v", j.Makespan())
	}
	if j.TotalGC() != 4*time.Second {
		t.Errorf("TotalGC = %v", j.TotalGC())
	}
	if j.TotalShuffleRead() != 3*time.Second {
		t.Errorf("TotalShuffleRead = %v", j.TotalShuffleRead())
	}
	if j.LocalityFraction() != 0.5 {
		t.Errorf("LocalityFraction = %v", j.LocalityFraction())
	}
	sorted := j.TasksSortedByDuration()
	if sorted[0].Duration() != 9*time.Second {
		t.Errorf("sort order wrong: %v", sorted)
	}
}

func TestEmptyJob(t *testing.T) {
	var j JobMetrics
	if j.LocalityFraction() != 0 || j.TotalGC() != 0 {
		t.Error("empty job aggregates nonzero")
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2, 5}
	if p := Percentile(ds, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(ds, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(ds, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	// Input must not be mutated.
	if ds[0] != 4 {
		t.Error("Percentile mutated input")
	}
}

func TestMeanMaxMin(t *testing.T) {
	ds := []time.Duration{2 * time.Second, 4 * time.Second}
	if Mean(ds) != 3*time.Second || Max(ds) != 4*time.Second || Min(ds) != 2*time.Second {
		t.Errorf("mean/max/min = %v/%v/%v", Mean(ds), Max(ds), Min(ds))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty aggregates nonzero")
	}
}

func TestLocalityString(t *testing.T) {
	if NodeLocal.String() != "NODE_LOCAL" || Remote.String() != "REMOTE" {
		t.Error("locality strings wrong")
	}
	if Locality(0).String() != "UNKNOWN" {
		t.Error("zero locality string wrong")
	}
}

func TestEncodeJobsJSON(t *testing.T) {
	var sb strings.Builder
	jobs := []JobMetrics{{
		JobID:    3,
		Finished: time.Second,
		Tasks: []TaskMetrics{{
			TaskID: 9, Locality: NodeLocal, Compute: time.Millisecond,
		}},
	}}
	if err := EncodeJobs(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"job_id": 3`, `"task_id": 9`, `"NODE_LOCAL"`, `"compute_ns": 1000000`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json missing %q:\n%s", want, out)
		}
	}
}
