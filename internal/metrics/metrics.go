// Package metrics collects per-task and per-job measurements on the virtual
// timeline: the quantities the paper's evaluation plots — job makespan
// (Figs. 11, 14, 19, 20), per-task delay with GC and shuffle breakdowns
// (Figs. 12, 15), and bytes moved.
package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Locality is the level a task was launched at.
type Locality int

// Locality levels, coarse versions of Spark's.
const (
	NodeLocal Locality = iota + 1
	Remote
)

// String renders the level like Spark's TaskLocality names.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "NODE_LOCAL"
	case Remote:
		return "REMOTE"
	default:
		return "UNKNOWN"
	}
}

// TaskMetrics is one task's timing breakdown. All times are virtual.
type TaskMetrics struct {
	JobID    int      `json:"job_id"`
	StageID  int      `json:"stage_id"`
	TaskID   int      `json:"task_id"`
	Executor int      `json:"executor"`
	Locality Locality `json:"locality"`

	Submitted time.Duration `json:"submitted_ns"` // task became runnable
	Started   time.Duration `json:"started_ns"`   // slot acquired
	Finished  time.Duration `json:"finished_ns"`

	Compute     time.Duration `json:"compute_ns"`      // transformation CPU time
	GC          time.Duration `json:"gc_ns"`           // garbage-collection overhead
	ShuffleRead time.Duration `json:"shuffle_read_ns"` // reduce-side fetch (disk + network)
	DiskRead    time.Duration `json:"disk_read_ns"`    // checkpoint / source reads
	DiskWrite   time.Duration `json:"disk_write_ns"`   // shuffle map output / checkpoint writes
	Net         time.Duration `json:"net_ns"`          // non-shuffle network time

	BytesInput   int64 `json:"bytes_input"`
	BytesShuffle int64 `json:"bytes_shuffle"`
}

// Duration is the task's slot occupancy.
func (t TaskMetrics) Duration() time.Duration { return t.Finished - t.Started }

// QueueWait is the time between readiness and launch.
func (t TaskMetrics) QueueWait() time.Duration { return t.Started - t.Submitted }

// JobMetrics aggregates a job run.
type JobMetrics struct {
	JobID     int           `json:"job_id"`
	Submitted time.Duration `json:"submitted_ns"`
	Finished  time.Duration `json:"finished_ns"`
	Tasks     []TaskMetrics `json:"tasks"`
}

// Makespan is submission-to-completion virtual time.
func (j JobMetrics) Makespan() time.Duration { return j.Finished - j.Submitted }

// TotalGC sums GC time across tasks.
func (j JobMetrics) TotalGC() time.Duration {
	var s time.Duration
	for _, t := range j.Tasks {
		s += t.GC
	}
	return s
}

// TotalShuffleRead sums shuffle-read time across tasks.
func (j JobMetrics) TotalShuffleRead() time.Duration {
	var s time.Duration
	for _, t := range j.Tasks {
		s += t.ShuffleRead
	}
	return s
}

// TasksSortedByDuration returns the job's tasks longest-first, the order
// Figs. 12 and 15 plot.
func (j JobMetrics) TasksSortedByDuration() []TaskMetrics {
	out := make([]TaskMetrics, len(j.Tasks))
	copy(out, j.Tasks)
	sort.Slice(out, func(a, b int) bool { return out[a].Duration() > out[b].Duration() })
	return out
}

// LocalityFraction reports the fraction of tasks launched NODE_LOCAL.
func (j JobMetrics) LocalityFraction() float64 {
	if len(j.Tasks) == 0 {
		return 0
	}
	n := 0
	for _, t := range j.Tasks {
		if t.Locality == NodeLocal {
			n++
		}
	}
	return float64(n) / float64(len(j.Tasks))
}

// Percentile returns the p-th percentile (0..100) of ds using
// nearest-rank; it returns 0 for empty input.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the average duration; 0 for empty input.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// Max returns the maximum duration; 0 for empty input.
func Max(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// Min returns the minimum duration; 0 for empty input.
func Min(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// MarshalJSON is implemented on Locality so exported metrics carry readable
// level names instead of bare ints.
func (l Locality) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// EncodeJobs writes completed-job metrics as one JSON document, the
// machine-readable counterpart of the per-figure TSV emitters.
func EncodeJobs(w io.Writer, jobs []JobMetrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jobs)
}
