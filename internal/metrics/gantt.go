package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Gantt renders a job's tasks as an executor-by-time chart, width columns
// wide. Each row is one executor; '#' marks NODE_LOCAL task occupancy, 'r'
// marks REMOTE. It is the quickest way to see stragglers, locality misses,
// and idle executors in a simulated run.
func Gantt(jm JobMetrics, width int) string {
	if len(jm.Tasks) == 0 {
		return "(no tasks)\n"
	}
	if width < 10 {
		width = 60
	}
	start := jm.Tasks[0].Started
	end := jm.Tasks[0].Finished
	execs := map[int]bool{}
	for _, t := range jm.Tasks {
		if t.Started < start {
			start = t.Started
		}
		if t.Finished > end {
			end = t.Finished
		}
		execs[t.Executor] = true
	}
	span := end - start
	if span <= 0 {
		span = 1
	}
	col := func(at time.Duration) int {
		c := int(int64(at-start) * int64(width) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	ids := make([]int, 0, len(execs))
	for id := range execs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	rows := make(map[int][]byte, len(ids))
	for _, id := range ids {
		rows[id] = []byte(strings.Repeat(".", width))
	}
	for _, t := range jm.Tasks {
		row := rows[t.Executor]
		mark := byte('#')
		if t.Locality == Remote {
			mark = 'r'
		}
		from, to := col(t.Started), col(t.Finished)
		for c := from; c <= to; c++ {
			row[c] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "job %d: %d tasks over %v (# local, r remote, . idle)\n",
		jm.JobID, len(jm.Tasks), span)
	for _, id := range ids {
		fmt.Fprintf(&b, "exec %3d |%s|\n", id, rows[id])
	}
	return b.String()
}
