package stream

import (
	"fmt"
	"testing"
	"time"

	"stark/internal/config"
	"stark/internal/engine"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

func testEngine(feat config.Features) *engine.Engine {
	cfg := engine.DefaultConfig()
	cfg.Cluster.NumExecutors = 4
	cfg.Cluster.SlotsPerExecutor = 2
	cfg.Sched.LocalityWait = 50 * time.Millisecond
	cfg.Features = feat
	return engine.New(cfg)
}

func stepData(step, n int) []record.Record {
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Pair(fmt.Sprintf("k%03d", i), fmt.Sprintf("s%d-%d", step, i))
	}
	return out
}

func TestStreamRequiresPartitioner(t *testing.T) {
	if _, err := New(testEngine(config.Features{}), Config{Name: "x"}); err == nil {
		t.Fatal("missing partitioner accepted")
	}
}

func TestIngestAndWindow(t *testing.T) {
	e := testEngine(config.Features{})
	s, err := New(e, Config{Name: "s", Partitioner: partition.NewHash(4), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		s.Ingest(step, stepData(step, 50))
		e.Loop().Run()
	}
	if s.Step(0) != nil || s.Step(1) != nil {
		t.Fatal("old steps not evicted")
	}
	if s.Step(2) == nil || s.Step(3) == nil {
		t.Fatal("window steps missing")
	}
	recent := s.Recent(5)
	if len(recent) != 2 || recent[0] != s.Step(2) || recent[1] != s.Step(3) {
		t.Fatalf("recent = %v", recent)
	}
	if got := s.Range(1, 3); len(got) != 2 {
		t.Fatalf("range = %v", got)
	}
	if s.Step(-1) != nil || s.Step(99) != nil {
		t.Fatal("out-of-range step not nil")
	}
}

func TestIngestMaterializesAndCaches(t *testing.T) {
	e := testEngine(config.Features{})
	s, err := New(e, Config{Name: "s", Partitioner: partition.NewHash(4), Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Ingest(0, stepData(0, 100))
	e.Loop().Run()
	cached := 0
	for p := 0; p < r.Parts; p++ {
		if len(e.Cluster().Locations(blockID(r.ID, p))) > 0 {
			cached++
		}
	}
	if cached != r.Parts {
		t.Fatalf("cached %d/%d partitions", cached, r.Parts)
	}
	// Data integrity through the stream.
	n, _, err := e.Count(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("count = %d", n)
	}
}

func TestEvictionDropsCache(t *testing.T) {
	e := testEngine(config.Features{})
	s, err := New(e, Config{Name: "s", Partitioner: partition.NewHash(2), Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0 := s.Ingest(0, stepData(0, 20))
	e.Loop().Run()
	s.Ingest(1, stepData(1, 20))
	e.Loop().Run()
	for p := 0; p < r0.Parts; p++ {
		if len(e.Cluster().Locations(blockID(r0.ID, p))) != 0 {
			t.Fatal("evicted step still cached")
		}
	}
}

func TestSingleNodeIngestBottleneck(t *testing.T) {
	// Spark Streaming's single-receiver ingest must be slower than
	// pre-chunked ingest for the same data.
	run := func(single bool) time.Duration {
		e := testEngine(config.Features{})
		s, err := New(e, Config{
			Name:             "s",
			Partitioner:      partition.NewHash(4),
			Window:           2,
			SingleNodeIngest: single,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Ingest(0, stepData(0, 2000))
		e.Loop().Run()
		jobs := e.CompletedJobs()
		return jobs[len(jobs)-1].Makespan()
	}
	if single, chunked := run(true), run(false); single <= chunked {
		t.Fatalf("single-node ingest %v not slower than chunked %v", single, chunked)
	}
}

func TestStreamCoLocality(t *testing.T) {
	e := testEngine(config.Features{CoLocality: true})
	p := partition.NewHash(4)
	s, err := New(e, Config{Name: "s", Partitioner: p, Namespace: "stream", Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rdds []int
	for step := 0; step < 3; step++ {
		r := s.Ingest(step, stepData(step, 50))
		rdds = append(rdds, r.ID)
		e.Loop().Run()
	}
	// Collection partitions co-located across steps.
	for part := 0; part < 4; part++ {
		var first []int
		for _, id := range rdds {
			locs := e.Cluster().Locations(blockID(id, part))
			if len(locs) == 0 {
				t.Fatalf("rdd %d partition %d not cached", id, part)
			}
			if first == nil {
				first = locs
			} else if locs[0] != first[0] {
				t.Fatalf("partition %d scattered: %v vs %v", part, first, locs)
			}
		}
	}
	// A cogroup over the window is fully local.
	window := s.Recent(3)
	cg := e.Graph().CoGroup("cg", p, window...)
	_, jm, err := e.Count(cg)
	if err != nil {
		t.Fatal(err)
	}
	if jm.LocalityFraction() != 1.0 {
		t.Fatalf("window cogroup locality = %v", jm.LocalityFraction())
	}
}

func TestOpenLoopDelaysGrowWithRate(t *testing.T) {
	run := func(interarrival time.Duration) time.Duration {
		e := testEngine(config.Features{})
		g := e.Graph()
		src := g.Source("src", [][]record.Record{stepData(0, 2000), stepData(1, 2000)}, false)
		pb := g.PartitionBy(src, "pb", partition.NewHash(4))
		pb.CacheFlag = true
		if _, _, err := e.Count(pb); err != nil {
			t.Fatal(err)
		}
		results := OpenLoop(e, interarrival, 40, func(i int) *rdd.RDD {
			return g.Filter(pb, fmt.Sprintf("q%d", i), func(record.Record) bool { return true })
		})
		return MeanDelay(results)
	}
	slow := run(50 * time.Millisecond)
	fast := run(100 * time.Microsecond)
	if fast <= slow {
		t.Fatalf("overload delay %v not above light-load delay %v", fast, slow)
	}
}

func TestOpenLoopCompletesAll(t *testing.T) {
	e := testEngine(config.Features{})
	g := e.Graph()
	src := g.Source("src", [][]record.Record{stepData(0, 100)}, false)
	src.CacheFlag = true
	if _, err := e.Materialize(src); err != nil {
		t.Fatal(err)
	}
	results := OpenLoop(e, time.Millisecond, 10, func(i int) *rdd.RDD {
		return g.Filter(src, fmt.Sprintf("q%d", i), func(record.Record) bool { return true })
	})
	for _, r := range results {
		if r.Count != 100 {
			t.Fatalf("query %d count = %d", r.Index, r.Count)
		}
		if r.Delay <= 0 {
			t.Fatalf("query %d delay = %v", r.Index, r.Delay)
		}
	}
	if MeanDelay(nil) != 0 {
		t.Fatal("MeanDelay(nil) != 0")
	}
}

func TestWindowCoGroup(t *testing.T) {
	e := testEngine(config.Features{CoLocality: true})
	p := partition.NewHash(4)
	s, err := New(e, Config{Name: "w", Partitioner: p, Namespace: "w", Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.WindowCoGroup(3) != nil {
		t.Fatal("cogroup over empty stream")
	}
	for step := 0; step < 3; step++ {
		s.Ingest(step, stepData(step, 40))
		e.Loop().Run()
	}
	cg := s.WindowCoGroup(2)
	if cg == nil || !cg.Narrow() {
		t.Fatalf("window cogroup = %v", cg)
	}
	n, _, err := e.Count(cg)
	if err != nil || n != 40 {
		t.Fatalf("count = %d err = %v", n, err)
	}
}

func TestStreamExtendableReporting(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.Cluster.NumExecutors = 4
	cfg.Features = config.Features{CoLocality: true, Extendable: true}
	cfg.Groups.MaxBytes = 1 // force splits on any data
	cfg.Groups.MinBytes = 0
	cfg.Groups.Window = 2
	e := engine.New(cfg)
	s, err := New(e, Config{
		Name: "x", Partitioner: partition.NewHash(8),
		Namespace: "x", InitialGroups: 2, Window: 3, ReportSizes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(0, stepData(0, 100))
	e.Loop().Run()
	groups, err := e.Groups().Groups("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) <= 2 {
		t.Fatalf("groups = %d, expected splits from tiny MaxBytes", len(groups))
	}
	// The locality units followed the splits.
	if units := e.Locality().Units("x"); len(units) != len(groups) {
		t.Fatalf("units = %d, groups = %d", len(units), len(groups))
	}
}
