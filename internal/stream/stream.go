// Package stream provides the micro-batching layer the paper's throughput
// experiments run on (Sec. IV-E): a DStream-like sequence of timestep RDDs
// over the engine, a retention window with cache eviction, and an open-loop
// query generator that submits jobs at a controlled arrival rate and
// measures response times.
//
// Two ingestion modes mirror the compared systems: Spark Streaming ingests
// each micro-batch on a single receiver node and then repartitions it,
// while Stark partitions the batch straight into the locality namespace.
package stream

import (
	"fmt"
	"time"

	"stark/internal/cluster"
	"stark/internal/engine"
	"stark/internal/metrics"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/workload"
)

// Config parameterizes a stream.
type Config struct {
	Name string
	// Partitioner partitions every timestep RDD; with a Namespace it is
	// registered with the LocalityManager.
	Partitioner partition.Partitioner
	// Namespace enables co-locality across timestep RDDs ("" disables).
	Namespace string
	// InitialGroups sizes the Group Tree in extendable mode.
	InitialGroups int
	// Window is how many timestep RDDs stay cached; older ones are evicted.
	Window int
	// SingleNodeIngest emulates Spark Streaming's single receiver: the raw
	// micro-batch forms one partition that the partitionBy shuffle then
	// spreads. When false the batch arrives pre-chunked across executors.
	SingleNodeIngest bool
	// StepPartitioner, when set, supplies a fresh partitioner per step
	// (the Spark-R baseline: a new RangePartitioner fitted to every RDD).
	// It requires Namespace to be empty.
	StepPartitioner func(step int, recs []record.Record) partition.Partitioner
	// ReportSizes feeds each materialized step to the GroupManager
	// (extendable mode's reportRDD call).
	ReportSizes bool
}

// Stream is a sequence of timestep RDDs.
type Stream struct {
	eng   *engine.Engine
	cfg   Config
	steps []*rdd.RDD // index = step
}

// New validates the configuration and registers the namespace.
func New(eng *engine.Engine, cfg Config) (*Stream, error) {
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("stream: partitioner required")
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.InitialGroups == 0 {
		cfg.InitialGroups = 1
	}
	if cfg.StepPartitioner != nil && cfg.Namespace != "" {
		return nil, fmt.Errorf("stream: StepPartitioner and Namespace are mutually exclusive")
	}
	if cfg.Namespace != "" {
		if err := eng.RegisterNamespace(cfg.Namespace, cfg.Partitioner, cfg.InitialGroups); err != nil {
			return nil, err
		}
	}
	s := &Stream{eng: eng, cfg: cfg}
	if eng.DriverRecoveryEnabled() {
		// Stream continuity across driver crashes: the step table is volatile
		// driver-side state, so after every journal replay rebuild it from
		// the replayed ingest/evict records and resume mid-window.
		eng.OnDriverRestart(s.rebuildFromJournal)
	}
	return s, nil
}

// rebuildFromJournal reconstructs the live step table after a driver
// restart: the journal's replayed ingest/evict records (every journaled
// ingest not journaled as evicted is inside the retention window) merge
// with the stream's own surviving handles — like job handles, the stream
// object is client-side state that re-attaches. A torn journal tail can
// lose the newest ingest or eviction record, so the retention cutoff is
// re-derived from the newest known step and re-enforced rather than
// trusted from the raw record set.
func (s *Stream) rebuildFromJournal() {
	live := s.eng.StreamSteps(s.cfg.Name)
	g := s.eng.Graph()
	maxStep := -1
	for step, rddID := range live {
		if r := g.ByID(rddID); r != nil {
			for len(s.steps) <= step {
				s.steps = append(s.steps, nil)
			}
			if s.steps[step] == nil {
				s.steps[step] = r
			}
		}
		if step > maxStep {
			maxStep = step
		}
	}
	for step, r := range s.steps {
		if r != nil && step > maxStep {
			maxStep = step
		}
	}
	s.evictBefore(maxStep - s.cfg.Window + 1)
}

// Ingest creates the timestep's RDD at the current virtual time, submits
// its materialization, and evicts steps that fell out of the window. It
// returns the partitioned, cached RDD for the step.
func (s *Stream) Ingest(step int, recs []record.Record) *rdd.RDD {
	g := s.eng.Graph()
	var src *rdd.RDD
	if s.cfg.SingleNodeIngest {
		src = g.Source(fmt.Sprintf("%s-raw%d", s.cfg.Name, step), [][]record.Record{recs}, false)
	} else {
		chunks := workload.Chunk(recs, s.eng.Cluster().NumExecutors())
		src = g.Source(fmt.Sprintf("%s-raw%d", s.cfg.Name, step), chunks, false)
	}
	var pb *rdd.RDD
	switch {
	case s.cfg.Namespace != "":
		pb = g.LocalityPartitionBy(src, fmt.Sprintf("%s-step%d", s.cfg.Name, step), s.cfg.Partitioner, s.cfg.Namespace)
		s.eng.TrackNamespaceRDD(pb)
	case s.cfg.StepPartitioner != nil:
		pb = g.PartitionBy(src, fmt.Sprintf("%s-step%d", s.cfg.Name, step), s.cfg.StepPartitioner(step, recs))
	default:
		pb = g.PartitionBy(src, fmt.Sprintf("%s-step%d", s.cfg.Name, step), s.cfg.Partitioner)
	}
	pb.CacheFlag = true
	for len(s.steps) <= step {
		s.steps = append(s.steps, nil)
	}
	s.steps[step] = pb
	s.eng.JournalStreamIngest(s.cfg.Name, step, pb.ID)

	s.eng.SubmitJob(pb, engine.ActionMaterialize, func(engine.JobResult) {
		if s.cfg.ReportSizes && s.cfg.Namespace != "" {
			// Rebalance errors only occur on engine misconfiguration;
			// surfacing them at ingest would complicate every caller, and
			// the change list is observable through the GroupManager.
			_, _ = s.eng.ReportRDD(pb)
		}
	})
	s.evictBefore(step - s.cfg.Window + 1)
	return pb
}

// evictBefore drops cached blocks of steps older than the cutoff,
// modeling dataset eviction from the dynamic collection.
func (s *Stream) evictBefore(cutoff int) {
	for st := 0; st < cutoff && st < len(s.steps); st++ {
		r := s.steps[st]
		if r == nil {
			continue
		}
		for exec := 0; exec < s.eng.Cluster().NumExecutors(); exec++ {
			for p := 0; p < r.Parts; p++ {
				s.eng.Cluster().DropBlock(exec, blockID(r.ID, p))
			}
		}
		s.steps[st] = nil
		s.eng.JournalStreamEvict(s.cfg.Name, st)
	}
}

// Step returns the RDD of a step, or nil if never ingested or evicted.
func (s *Stream) Step(step int) *rdd.RDD {
	if step < 0 || step >= len(s.steps) {
		return nil
	}
	return s.steps[step]
}

// Recent returns up to n most recent live step RDDs, oldest first.
func (s *Stream) Recent(n int) []*rdd.RDD {
	var out []*rdd.RDD
	for i := len(s.steps) - 1; i >= 0 && len(out) < n; i-- {
		if s.steps[i] != nil {
			out = append(out, s.steps[i])
		}
	}
	// Reverse to oldest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Range returns the live step RDDs in [from, to], oldest first.
func (s *Stream) Range(from, to int) []*rdd.RDD {
	var out []*rdd.RDD
	for i := from; i <= to && i < len(s.steps); i++ {
		if i >= 0 && s.steps[i] != nil {
			out = append(out, s.steps[i])
		}
	}
	return out
}

// QueryResult is one open-loop query's measured outcome.
type QueryResult struct {
	Index     int
	Submitted time.Duration
	Delay     time.Duration
	Count     int64
	Metrics   metrics.JobMetrics
}

// OpenLoop submits n jobs at fixed interarrival spacing starting at the
// current virtual time, without waiting for completions (an open system),
// then drives the loop until every job finishes. makeJob is called at each
// job's arrival time so queries can target the then-current window.
func OpenLoop(eng *engine.Engine, interarrival time.Duration, n int, makeJob func(i int) *rdd.RDD) []QueryResult {
	results := make([]QueryResult, n)
	done := 0
	start := eng.Loop().Now()
	for i := 0; i < n; i++ {
		i := i
		at := start + time.Duration(i)*interarrival
		eng.Loop().At(at, func() {
			final := makeJob(i)
			submitted := eng.Loop().Now()
			eng.SubmitJob(final, engine.ActionCount, func(res engine.JobResult) {
				results[i] = QueryResult{
					Index:     i,
					Submitted: submitted,
					Delay:     res.Metrics.Finished - submitted,
					Count:     res.Count,
					Metrics:   res.Metrics,
				}
				done++
			})
		})
	}
	for done < n && eng.Loop().Step() {
	}
	return results
}

// MeanDelay averages query delays.
func MeanDelay(rs []QueryResult) time.Duration {
	if len(rs) == 0 {
		return 0
	}
	var s time.Duration
	for _, r := range rs {
		s += r.Delay
	}
	return s / time.Duration(len(rs))
}

// blockID mirrors the engine-internal helper.
func blockID(rddID, part int) cluster.BlockID {
	return cluster.BlockID{RDD: rddID, Partition: part}
}

// WindowCoGroup builds a cogroup over the n most recent live steps using
// the stream's partitioner — the paper's slice-style window computation.
// It returns nil when no steps are live.
func (s *Stream) WindowCoGroup(n int) *rdd.RDD {
	window := s.Recent(n)
	if len(window) == 0 {
		return nil
	}
	p := s.cfg.Partitioner
	return s.eng.Graph().CoGroup(fmt.Sprintf("%s-window%d", s.cfg.Name, len(window)), p, window...)
}
