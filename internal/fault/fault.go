// Package fault is the deterministic, seed-driven fault-injection subsystem
// (Sec. III-D's operating regime made first-class). A Schedule describes
// executor crashes with optional restart, straggler slowdowns, lost
// checkpoint/shuffle blocks, and a transient storage-error probability; an
// Injector arms the schedule on the virtual clock and drives the engine
// through a narrow System interface. Because every decision is a function of
// the schedule seed and the deterministic event order of the single-threaded
// simulation, two runs with equal seeds inject byte-identical fault
// sequences — the property the chaos harness and the determinism tests
// build on.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"stark/internal/vtime"
)

// ErrInjected marks a transient storage failure produced by the injector.
// The engine's retry path treats it like any other storage error; tests and
// the chaos harness unwrap it to distinguish injected faults from bugs.
var ErrInjected = errors.New("fault: injected storage error")

// Crash fails one executor at a virtual time, optionally restarting it
// after a delay (0 means the executor stays dead).
type Crash struct {
	At           time.Duration
	Executor     int
	RestartAfter time.Duration
}

// Straggler slows one executor by Factor for a window of virtual time; new
// task launches there take Factor times their modeled duration.
type Straggler struct {
	At       time.Duration
	For      time.Duration
	Executor int
	Factor   float64
}

// BlockLoss deletes one persisted block at a virtual time. Pick is reduced
// modulo the number of committed blocks of the chosen kind at injection
// time, so schedules stay valid without knowing store contents in advance.
type BlockLoss struct {
	At         time.Duration
	Checkpoint bool // true: checkpoint block; false: shuffle map output
	Pick       int
}

// Schedule is a complete fault plan. The zero value injects nothing.
type Schedule struct {
	// Seed drives the transient storage-error rolls; runs with equal seeds
	// and equal event orders fail the exact same operations.
	Seed int64
	// StorageErrorProb is the per-operation probability that a persistent
	// storage read or write transiently fails.
	StorageErrorProb float64
	Crashes          []Crash
	Stragglers       []Straggler
	BlockLoss        []BlockLoss
}

// Empty reports whether the schedule injects no faults at all.
func (s Schedule) Empty() bool {
	return s.StorageErrorProb == 0 && len(s.Crashes) == 0 &&
		len(s.Stragglers) == 0 && len(s.BlockLoss) == 0
}

// Events reports the number of scheduled (non-probabilistic) fault events.
func (s Schedule) Events() int {
	return len(s.Crashes) + len(s.Stragglers) + len(s.BlockLoss)
}

// System is the surface the injector drives; the engine implements it.
type System interface {
	KillExecutor(id int)
	RestartExecutor(id int)
	SetStraggler(id int, factor float64)
	// DropShuffleBlock / DropCheckpointBlock delete the pick-th committed
	// block (modulo the current count), reporting whether anything existed
	// to drop.
	DropShuffleBlock(pick int) bool
	DropCheckpointBlock(pick int) bool
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	Crashes        int
	Restarts       int
	Stragglers     int
	BlocksDropped  int
	StorageErrors  int
	StorageRolls   int // operations that consulted the error probability
	MissedDrops    int // block-loss events that found nothing to drop
}

// Total reports the number of faults delivered (restarts are repairs, not
// faults, and are excluded).
func (s Stats) Total() int {
	return s.Crashes + s.Stragglers + s.BlocksDropped + s.StorageErrors
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("crashes=%d restarts=%d stragglers=%d blocksDropped=%d storageErrors=%d/%d",
		s.Crashes, s.Restarts, s.Stragglers, s.BlocksDropped, s.StorageErrors, s.StorageRolls)
}

// Injector delivers one Schedule. Create with New, wire storage errors via
// StorageOp, and call Arm once to place the scheduled events on the clock.
type Injector struct {
	sched Schedule
	rng   *rand.Rand
	stats Stats
}

// New builds an injector for the schedule.
func New(s Schedule) *Injector {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{sched: s, rng: rand.New(rand.NewSource(seed))}
}

// Schedule returns the armed schedule.
func (in *Injector) Schedule() Schedule { return in.sched }

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Arm places every scheduled fault event on the loop. Call once, before
// running the loop.
func (in *Injector) Arm(loop *vtime.Loop, sys System) {
	for _, c := range in.sched.Crashes {
		c := c
		loop.At(c.At, func() {
			in.stats.Crashes++
			sys.KillExecutor(c.Executor)
		})
		if c.RestartAfter > 0 {
			loop.At(c.At+c.RestartAfter, func() {
				in.stats.Restarts++
				sys.RestartExecutor(c.Executor)
			})
		}
	}
	for _, st := range in.sched.Stragglers {
		st := st
		loop.At(st.At, func() {
			in.stats.Stragglers++
			sys.SetStraggler(st.Executor, st.Factor)
		})
		loop.At(st.At+st.For, func() { sys.SetStraggler(st.Executor, 1) })
	}
	for _, bl := range in.sched.BlockLoss {
		bl := bl
		loop.At(bl.At, func() {
			var dropped bool
			if bl.Checkpoint {
				dropped = sys.DropCheckpointBlock(bl.Pick)
			} else {
				dropped = sys.DropShuffleBlock(bl.Pick)
			}
			if dropped {
				in.stats.BlocksDropped++
			} else {
				in.stats.MissedDrops++
			}
		})
	}
}

// StorageOp rolls the transient-error probability for one persistent
// storage operation, returning ErrInjected (wrapped with the operation
// name) on a hit. The engine installs it as the store's fault hook.
func (in *Injector) StorageOp(op string) error {
	if in.sched.StorageErrorProb <= 0 {
		return nil
	}
	in.stats.StorageRolls++
	if in.rng.Float64() < in.sched.StorageErrorProb {
		in.stats.StorageErrors++
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return nil
}

// RandomSchedule derives a randomized but fully deterministic fault plan
// from a seed: one to three executor crashes (each followed by a restart,
// and never targeting executor 0, so the cluster cannot die out entirely),
// up to two straggler windows, up to three lost persisted blocks, and a
// small transient storage-error probability. Events land within the given
// virtual-time horizon on a cluster of the given size.
func RandomSchedule(seed int64, horizon time.Duration, executors int) Schedule {
	rng := rand.New(rand.NewSource(mix(seed)))
	s := Schedule{Seed: mix(seed ^ 0x5eed)}
	if horizon <= 0 {
		horizon = time.Second
	}
	at := func(loFrac, hiFrac float64) time.Duration {
		f := loFrac + rng.Float64()*(hiFrac-loFrac)
		return time.Duration(f * float64(horizon))
	}
	if executors < 2 {
		// A single-executor cluster can only absorb transient faults.
		s.StorageErrorProb = 0.05
		return s
	}
	crashes := 1 + rng.Intn(3)
	perm := rng.Perm(executors - 1) // victims drawn from 1..executors-1
	if crashes > len(perm) {
		crashes = len(perm)
	}
	for i := 0; i < crashes; i++ {
		s.Crashes = append(s.Crashes, Crash{
			At:           at(0.05, 0.85),
			Executor:     1 + perm[i],
			RestartAfter: time.Duration(float64(horizon) * (0.05 + 0.15*rng.Float64())),
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Stragglers = append(s.Stragglers, Straggler{
			At:       at(0, 0.7),
			For:      time.Duration(float64(horizon) * (0.1 + 0.2*rng.Float64())),
			Executor: rng.Intn(executors),
			Factor:   2 + 4*rng.Float64(),
		})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s.BlockLoss = append(s.BlockLoss, BlockLoss{
			At:         at(0.1, 0.9),
			Checkpoint: rng.Intn(2) == 0,
			Pick:       rng.Intn(1 << 16),
		})
	}
	probs := []float64{0, 0.01, 0.02, 0.04}
	s.StorageErrorProb = probs[rng.Intn(len(probs))]
	return s
}

// mix scrambles a seed so adjacent chaos seeds produce unrelated schedules
// (splitmix64 finalizer).
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return int64(z & 0x7fffffffffffffff)
}
