// Package fault is the deterministic, seed-driven fault-injection subsystem
// (Sec. III-D's operating regime made first-class). A Schedule describes
// executor crashes with optional restart, straggler slowdowns, lost
// checkpoint/shuffle blocks, and a transient storage-error probability; an
// Injector arms the schedule on the virtual clock and drives the engine
// through a narrow System interface. Because every decision is a function of
// the schedule seed and the deterministic event order of the single-threaded
// simulation, two runs with equal seeds inject byte-identical fault
// sequences — the property the chaos harness and the determinism tests
// build on.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"stark/internal/vtime"
)

// ErrInjected marks a transient storage failure produced by the injector.
// The engine's retry path treats it like any other storage error; tests and
// the chaos harness unwrap it to distinguish injected faults from bugs.
var ErrInjected = errors.New("fault: injected storage error")

// Crash fails one executor at a virtual time, optionally restarting it
// after a delay (0 means the executor stays dead).
type Crash struct {
	At           time.Duration
	Executor     int
	RestartAfter time.Duration
}

// Straggler slows one executor by Factor for a window of virtual time; new
// task launches there take Factor times their modeled duration.
type Straggler struct {
	At       time.Duration
	For      time.Duration
	Executor int
	Factor   float64
}

// BlockLoss deletes one persisted block at a virtual time. Pick is reduced
// modulo the number of committed blocks of the chosen kind at injection
// time, so schedules stay valid without knowing store contents in advance.
type BlockLoss struct {
	At         time.Duration
	Checkpoint bool // true: checkpoint block; false: shuffle map output
	Pick       int
}

// Partition cuts one executor off from the driver — bidirectionally, for a
// window of virtual time. Heartbeats and task results are lost while the
// window is open; what happens next depends on whether the window outlasts
// the driver's suspicion/death timeouts.
type Partition struct {
	At       time.Duration
	For      time.Duration
	Executor int
}

// NetDelay adds Extra latency to every control-plane message for a window
// of virtual time — the delayed-heartbeat fault.
type NetDelay struct {
	At    time.Duration
	For   time.Duration
	Extra time.Duration
}

// BlockCorrupt flips the checksum of one persisted block at a virtual time,
// so the next reader sees an integrity failure instead of wrong bytes. Pick
// is reduced modulo the committed block count, like BlockLoss.
type BlockCorrupt struct {
	At         time.Duration
	Checkpoint bool // true: checkpoint block; false: shuffle map output
	Pick       int
}

// DriverCrash fails the driver at a virtual time and restarts it after a
// delay, forcing a write-ahead-journal replay. TearTail removes that many
// bytes from the journal's end at crash time, simulating a crash mid-append
// (0 leaves the journal intact). Requires the engine's driver-recovery
// feature; RestartAfter must be positive — a driver that never comes back
// would wedge every in-flight job.
type DriverCrash struct {
	At           time.Duration
	RestartAfter time.Duration
	TearTail     int
}

// MemPressure shrinks one executor's effective cache capacity to Factor
// times the configured bound for a window of virtual time — the memory
// squeeze that precedes an OOM. While the window is open, puts that no
// longer fit degrade gracefully (the engine refuses the cache and streams)
// unless an ExecutorOOM window is also armed on the executor.
type MemPressure struct {
	At       time.Duration
	For      time.Duration
	Executor int
	Factor   float64
}

// ExecutorOOM arms an out-of-memory window on one executor: while open, a
// put that cannot fit under the (pressure-shrunk) capacity fails the task
// with the engine's typed ErrOOM instead of degrading to a cache refusal,
// driving the normal retry/lineage-recompute path. Pair it with an
// overlapping MemPressure window to make puts actually overflow.
type ExecutorOOM struct {
	At       time.Duration
	For      time.Duration
	Executor int
}

// TenantStorm is an open-loop arrival burst against one tenant session:
// starting At, Jobs submissions spaced Every apart, each at Priority. The
// injector never waits for completions — arrival rate is decoupled from
// service rate, which is what pushes the admission controller into shedding.
type TenantStorm struct {
	At       time.Duration
	Tenant   int
	Jobs     int
	Every    time.Duration
	Priority int
}

// SlowTenant submits one poison job through a tenant session at a virtual
// time: a job whose tasks take Factor times their modeled duration,
// exercising deadline cancellation and fair-share isolation against a
// tenant that hogs the cluster.
type SlowTenant struct {
	At     time.Duration
	Tenant int
	Factor float64
}

// Schedule is a complete fault plan. The zero value injects nothing.
type Schedule struct {
	// Seed drives the transient storage-error rolls; runs with equal seeds
	// and equal event orders fail the exact same operations.
	Seed int64
	// StorageErrorProb is the per-operation probability that a persistent
	// storage read or write transiently fails.
	StorageErrorProb float64
	Crashes          []Crash
	Stragglers       []Straggler
	BlockLoss        []BlockLoss

	// Network-model faults (require the engine's transport layer).
	// MsgDropProb is the per-message probability that a control-plane
	// message is lost in flight, rolled on an RNG stream independent of
	// the storage-error rolls.
	MsgDropProb  float64
	Partitions   []Partition
	NetDelays    []NetDelay
	BlockCorrupt []BlockCorrupt

	// Driver-fault events (require the engine's driver-recovery feature).
	DriverCrashes []DriverCrash

	// Memory-pressure fault events.
	MemPressures []MemPressure
	ExecutorOOMs []ExecutorOOM

	// Session-layer fault events (require the multi-tenant job server;
	// delivered through ArmSession, not Arm).
	TenantStorms []TenantStorm
	SlowTenants  []SlowTenant
}

// Empty reports whether the schedule injects no faults at all.
func (s Schedule) Empty() bool {
	return s.StorageErrorProb == 0 && s.MsgDropProb == 0 &&
		len(s.Crashes) == 0 && len(s.Stragglers) == 0 && len(s.BlockLoss) == 0 &&
		len(s.Partitions) == 0 && len(s.NetDelays) == 0 && len(s.BlockCorrupt) == 0 &&
		len(s.DriverCrashes) == 0 && len(s.MemPressures) == 0 && len(s.ExecutorOOMs) == 0 &&
		len(s.TenantStorms) == 0 && len(s.SlowTenants) == 0
}

// Events reports the number of scheduled (non-probabilistic) fault events.
func (s Schedule) Events() int {
	return len(s.Crashes) + len(s.Stragglers) + len(s.BlockLoss) +
		len(s.Partitions) + len(s.NetDelays) + len(s.BlockCorrupt) +
		len(s.DriverCrashes) + len(s.MemPressures) + len(s.ExecutorOOMs) +
		len(s.TenantStorms) + len(s.SlowTenants)
}

// System is the surface the injector drives; the engine implements it.
type System interface {
	KillExecutor(id int)
	RestartExecutor(id int)
	SetStraggler(id int, factor float64)
	// DropShuffleBlock / DropCheckpointBlock delete the pick-th committed
	// block (modulo the current count), reporting whether anything existed
	// to drop.
	DropShuffleBlock(pick int) bool
	DropCheckpointBlock(pick int) bool
	// PartitionExecutor / HealExecutor open and close a bidirectional
	// network partition between the driver and one executor.
	PartitionExecutor(id int)
	HealExecutor(id int)
	// SetNetDelay adds extra latency to every control message (0 restores
	// normal latency).
	SetNetDelay(extra time.Duration)
	// CorruptShuffleBlock / CorruptCheckpointBlock flip the checksum of the
	// pick-th committed block (modulo the current count), reporting whether
	// anything existed to corrupt.
	CorruptShuffleBlock(pick int) bool
	CorruptCheckpointBlock(pick int) bool
	// CrashDriver fails the driver, tearing tearTail bytes off the journal;
	// RestartDriver replays the journal and resumes. Both require the
	// driver-recovery feature.
	CrashDriver(tearTail int)
	RestartDriver()
	// SetMemPressure shrinks an executor's effective cache capacity to
	// factor times the configured bound (factor >= 1 restores it).
	SetMemPressure(id int, factor float64)
	// SetOOMWindow arms or disarms an executor's out-of-memory window:
	// while armed, a cache put that cannot fit fails the task with a typed
	// OOM error instead of degrading to a graceful refusal.
	SetOOMWindow(id int, armed bool)
}

// SessionSystem is the session-layer surface the injector drives; the
// multi-tenant job server implements it. Tenant indices are reduced modulo
// the registered tenant count by the implementation, so schedules stay valid
// without knowing the tenant roster in advance.
type SessionSystem interface {
	// StormSubmit submits one open-loop burst job through the tenant's
	// session at the given priority; the injector never waits for it.
	StormSubmit(tenant, priority int)
	// PoisonSubmit submits one poison job through the tenant's session whose
	// tasks take factor times their modeled duration.
	PoisonSubmit(tenant int, factor float64)
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	Crashes         int
	Restarts        int
	Stragglers      int
	BlocksDropped   int
	BlocksCorrupted int
	Partitions      int
	Heals           int
	DelayWindows    int
	StorageErrors   int
	StorageRolls    int // operations that consulted the error probability
	MsgDrops        int
	MsgRolls        int // messages that consulted the drop probability
	MissedDrops     int // block events that found nothing to drop/corrupt
	DriverCrashes   int
	DriverRestarts  int
	MemPressures    int // mem-pressure windows opened
	OOMWindows      int // executor-OOM windows armed
	TenantStorms    int // storm bursts started
	StormJobs       int // individual storm submissions delivered
	PoisonJobs      int // slow-tenant poison submissions delivered
}

// Total reports the number of faults delivered (restarts and heals are
// repairs, not faults, and are excluded).
func (s Stats) Total() int {
	return s.Crashes + s.Stragglers + s.BlocksDropped + s.BlocksCorrupted +
		s.Partitions + s.DelayWindows + s.StorageErrors + s.MsgDrops +
		s.DriverCrashes + s.MemPressures + s.OOMWindows + s.StormJobs + s.PoisonJobs
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("crashes=%d restarts=%d stragglers=%d partitions=%d delayWindows=%d blocksDropped=%d blocksCorrupted=%d storageErrors=%d/%d msgDrops=%d/%d driverCrashes=%d memPressure=%d oomWindows=%d stormJobs=%d poisonJobs=%d",
		s.Crashes, s.Restarts, s.Stragglers, s.Partitions, s.DelayWindows,
		s.BlocksDropped, s.BlocksCorrupted, s.StorageErrors, s.StorageRolls,
		s.MsgDrops, s.MsgRolls, s.DriverCrashes, s.MemPressures, s.OOMWindows,
		s.StormJobs, s.PoisonJobs)
}

// Injector delivers one Schedule. Create with New, wire storage errors via
// StorageOp and message drops via MessageOp, and call Arm once to place the
// scheduled events on the clock. Fault delivery happens on the engine's
// single event-loop goroutine; the mutex only protects the Stats snapshot
// so monitoring goroutines may read counters mid-run.
type Injector struct {
	sched Schedule
	rng   *rand.Rand
	// msgRNG is a separate stream for message-drop rolls so arming network
	// faults never perturbs the storage-error roll sequence (determinism
	// across feature combinations).
	msgRNG *rand.Rand
	mu     sync.Mutex
	stats  Stats
}

// New builds an injector for the schedule.
func New(s Schedule) *Injector {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		sched:  s,
		rng:    rand.New(rand.NewSource(seed)),
		msgRNG: rand.New(rand.NewSource(mix(seed ^ 0xbeef))),
	}
}

// Schedule returns the armed schedule.
func (in *Injector) Schedule() Schedule { return in.sched }

// Stats returns a snapshot of the faults delivered so far. Safe to call
// from a goroutine other than the event loop's.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// bump applies one stats mutation under the lock.
func (in *Injector) bump(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// Arm places every scheduled fault event on the loop. Call once, before
// running the loop.
func (in *Injector) Arm(loop *vtime.Loop, sys System) {
	for _, c := range in.sched.Crashes {
		c := c
		loop.At(c.At, func() {
			in.bump(func(s *Stats) { s.Crashes++ })
			sys.KillExecutor(c.Executor)
		})
		if c.RestartAfter > 0 {
			loop.At(c.At+c.RestartAfter, func() {
				in.bump(func(s *Stats) { s.Restarts++ })
				sys.RestartExecutor(c.Executor)
			})
		}
	}
	for _, st := range in.sched.Stragglers {
		st := st
		loop.At(st.At, func() {
			in.bump(func(s *Stats) { s.Stragglers++ })
			sys.SetStraggler(st.Executor, st.Factor)
		})
		loop.At(st.At+st.For, func() { sys.SetStraggler(st.Executor, 1) })
	}
	for _, bl := range in.sched.BlockLoss {
		bl := bl
		loop.At(bl.At, func() {
			var dropped bool
			if bl.Checkpoint {
				dropped = sys.DropCheckpointBlock(bl.Pick)
			} else {
				dropped = sys.DropShuffleBlock(bl.Pick)
			}
			in.bump(func(s *Stats) {
				if dropped {
					s.BlocksDropped++
				} else {
					s.MissedDrops++
				}
			})
		})
	}
	for _, p := range in.sched.Partitions {
		p := p
		loop.At(p.At, func() {
			in.bump(func(s *Stats) { s.Partitions++ })
			sys.PartitionExecutor(p.Executor)
		})
		loop.At(p.At+p.For, func() {
			in.bump(func(s *Stats) { s.Heals++ })
			sys.HealExecutor(p.Executor)
		})
	}
	for _, d := range in.sched.NetDelays {
		d := d
		loop.At(d.At, func() {
			in.bump(func(s *Stats) { s.DelayWindows++ })
			sys.SetNetDelay(d.Extra)
		})
		loop.At(d.At+d.For, func() { sys.SetNetDelay(0) })
	}
	for _, bc := range in.sched.BlockCorrupt {
		bc := bc
		loop.At(bc.At, func() {
			var corrupted bool
			if bc.Checkpoint {
				corrupted = sys.CorruptCheckpointBlock(bc.Pick)
			} else {
				corrupted = sys.CorruptShuffleBlock(bc.Pick)
			}
			in.bump(func(s *Stats) {
				if corrupted {
					s.BlocksCorrupted++
				} else {
					s.MissedDrops++
				}
			})
		})
	}
	for _, mp := range in.sched.MemPressures {
		mp := mp
		loop.At(mp.At, func() {
			in.bump(func(s *Stats) { s.MemPressures++ })
			sys.SetMemPressure(mp.Executor, mp.Factor)
		})
		loop.At(mp.At+mp.For, func() { sys.SetMemPressure(mp.Executor, 1) })
	}
	for _, oe := range in.sched.ExecutorOOMs {
		oe := oe
		loop.At(oe.At, func() {
			in.bump(func(s *Stats) { s.OOMWindows++ })
			sys.SetOOMWindow(oe.Executor, true)
		})
		loop.At(oe.At+oe.For, func() { sys.SetOOMWindow(oe.Executor, false) })
	}
	for _, dc := range in.sched.DriverCrashes {
		dc := dc
		loop.At(dc.At, func() {
			in.bump(func(s *Stats) { s.DriverCrashes++ })
			sys.CrashDriver(dc.TearTail)
		})
		restartAfter := dc.RestartAfter
		if restartAfter <= 0 {
			// A never-restarting driver would wedge every job; clamp to an
			// immediate restart at the next instant.
			restartAfter = 1
		}
		loop.At(dc.At+restartAfter, func() {
			in.bump(func(s *Stats) { s.DriverRestarts++ })
			sys.RestartDriver()
		})
	}
}

// ArmSession places every session-layer fault event on the loop, driving
// the multi-tenant job server through SessionSystem. Call once, before
// running the loop; independent of Arm so engine-only setups never pay for
// it.
func (in *Injector) ArmSession(loop *vtime.Loop, sys SessionSystem) {
	for _, ts := range in.sched.TenantStorms {
		ts := ts
		for j := 0; j < ts.Jobs; j++ {
			j := j
			loop.At(ts.At+time.Duration(j)*ts.Every, func() {
				in.bump(func(s *Stats) {
					if j == 0 {
						s.TenantStorms++
					}
					s.StormJobs++
				})
				sys.StormSubmit(ts.Tenant, ts.Priority)
			})
		}
	}
	for _, sl := range in.sched.SlowTenants {
		sl := sl
		loop.At(sl.At, func() {
			in.bump(func(s *Stats) { s.PoisonJobs++ })
			sys.PoisonSubmit(sl.Tenant, sl.Factor)
		})
	}
}

// StorageOp rolls the transient-error probability for one persistent
// storage operation, returning ErrInjected (wrapped with the operation
// name) on a hit. The engine installs it as the store's fault hook.
func (in *Injector) StorageOp(op string) error {
	if in.sched.StorageErrorProb <= 0 {
		return nil
	}
	hit := in.rng.Float64() < in.sched.StorageErrorProb
	in.bump(func(s *Stats) {
		s.StorageRolls++
		if hit {
			s.StorageErrors++
		}
	})
	if hit {
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return nil
}

// MessageOp rolls the message-drop probability for one control-plane
// message, reporting whether it is lost. The engine installs it as the
// network's fault hook.
func (in *Injector) MessageOp(kind string) bool {
	if in.sched.MsgDropProb <= 0 {
		return false
	}
	hit := in.msgRNG.Float64() < in.sched.MsgDropProb
	in.bump(func(s *Stats) {
		s.MsgRolls++
		if hit {
			s.MsgDrops++
		}
	})
	_ = kind
	return hit
}

// RandomSchedule derives a randomized but fully deterministic fault plan
// from a seed: one to three executor crashes (each followed by a restart,
// and never targeting executor 0, so the cluster cannot die out entirely),
// up to two straggler windows, up to three lost persisted blocks, and a
// small transient storage-error probability. Events land within the given
// virtual-time horizon on a cluster of the given size.
func RandomSchedule(seed int64, horizon time.Duration, executors int) Schedule {
	rng := rand.New(rand.NewSource(mix(seed)))
	s := Schedule{Seed: mix(seed ^ 0x5eed)}
	if horizon <= 0 {
		horizon = time.Second
	}
	at := func(loFrac, hiFrac float64) time.Duration {
		f := loFrac + rng.Float64()*(hiFrac-loFrac)
		return time.Duration(f * float64(horizon))
	}
	if executors < 2 {
		// A single-executor cluster can only absorb transient faults.
		s.StorageErrorProb = 0.05
		return s
	}
	crashes := 1 + rng.Intn(3)
	perm := rng.Perm(executors - 1) // victims drawn from 1..executors-1
	if crashes > len(perm) {
		crashes = len(perm)
	}
	for i := 0; i < crashes; i++ {
		s.Crashes = append(s.Crashes, Crash{
			At:           at(0.05, 0.85),
			Executor:     1 + perm[i],
			RestartAfter: time.Duration(float64(horizon) * (0.05 + 0.15*rng.Float64())),
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Stragglers = append(s.Stragglers, Straggler{
			At:       at(0, 0.7),
			For:      time.Duration(float64(horizon) * (0.1 + 0.2*rng.Float64())),
			Executor: rng.Intn(executors),
			Factor:   2 + 4*rng.Float64(),
		})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s.BlockLoss = append(s.BlockLoss, BlockLoss{
			At:         at(0.1, 0.9),
			Checkpoint: rng.Intn(2) == 0,
			Pick:       rng.Intn(1 << 16),
		})
	}
	probs := []float64{0, 0.01, 0.02, 0.04}
	s.StorageErrorProb = probs[rng.Intn(len(probs))]
	return s
}

// WithNetFaults returns a copy of the schedule extended with randomized
// network-model faults derived from the same seed on an independent RNG
// stream (so the base schedule's draws — pinned by tests — are untouched):
// one or two bidirectional partition windows whose durations straddle the
// driver's suspicion and death timeouts, a per-message drop probability, at
// most one delayed-heartbeat window, and up to two corrupted persisted
// blocks. Partitions never target executor 0, matching RandomSchedule's
// crash rule, so the cluster keeps a reachable executor.
func (s Schedule) WithNetFaults(seed int64, horizon time.Duration, executors int) Schedule {
	rng := rand.New(rand.NewSource(mix(seed ^ 0x7e7)))
	if horizon <= 0 {
		horizon = time.Second
	}
	at := func(loFrac, hiFrac float64) time.Duration {
		f := loFrac + rng.Float64()*(hiFrac-loFrac)
		return time.Duration(f * float64(horizon))
	}
	if executors >= 2 {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			s.Partitions = append(s.Partitions, Partition{
				At: at(0.05, 0.7),
				// 100ms..1.2s: short windows exercise suspect-then-clear,
				// long ones dead-declaration followed by rejoin.
				For:      100*time.Millisecond + time.Duration(rng.Int63n(int64(1100*time.Millisecond))),
				Executor: 1 + rng.Intn(executors-1),
			})
		}
	}
	probs := []float64{0, 0.02, 0.05, 0.1}
	s.MsgDropProb = probs[rng.Intn(len(probs))]
	if rng.Intn(2) == 0 {
		s.NetDelays = append(s.NetDelays, NetDelay{
			At:    at(0.1, 0.6),
			For:   time.Duration(float64(horizon) * (0.1 + 0.2*rng.Float64())),
			Extra: 20*time.Millisecond + time.Duration(rng.Int63n(int64(280*time.Millisecond))),
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.BlockCorrupt = append(s.BlockCorrupt, BlockCorrupt{
			At:         at(0.1, 0.9),
			Checkpoint: rng.Intn(2) == 0,
			Pick:       rng.Intn(1 << 16),
		})
	}
	return s
}

// WithDriverFaults returns a copy of the schedule extended with one
// randomized driver crash-restart derived from the same seed on an
// independent RNG stream (leaving the base and network draws untouched).
// The crash lands mid-run, the restart follows within a few percent of the
// horizon, and roughly half the crashes tear a few bytes off the journal
// tail to exercise torn-frame truncation.
func (s Schedule) WithDriverFaults(seed int64, horizon time.Duration) Schedule {
	rng := rand.New(rand.NewSource(mix(seed ^ 0xd21fe2)))
	if horizon <= 0 {
		horizon = time.Second
	}
	at := time.Duration((0.15 + 0.55*rng.Float64()) * float64(horizon))
	restart := time.Duration((0.02 + 0.06*rng.Float64()) * float64(horizon))
	if restart <= 0 {
		restart = 1
	}
	tear := 0
	if rng.Intn(2) == 0 {
		tear = 1 + rng.Intn(16)
	}
	s.DriverCrashes = append(s.DriverCrashes, DriverCrash{
		At:           at,
		RestartAfter: restart,
		TearTail:     tear,
	})
	return s
}

// WithMemFaults returns a copy of the schedule extended with randomized
// memory-pressure faults derived from the same seed on an independent RNG
// stream (leaving the base, network, and driver draws untouched): one or
// two mem-pressure windows whose shrink factors are drawn small enough to
// squeeze even generously-provisioned executors (down to a zero-capacity
// squeeze), and, roughly half the time, one ExecutorOOM window nested
// inside the first pressure window so overflowing puts fail tasks rather
// than merely degrade. OOM windows never target executor 0 (matching the
// crash rule) and stay short relative to the engine's default cumulative
// retry backoff, so a task that OOMs at the window's edge still has a
// retry landing after the squeeze lifts.
func (s Schedule) WithMemFaults(seed int64, horizon time.Duration, executors int) Schedule {
	rng := rand.New(rand.NewSource(mix(seed ^ 0x3e30a7)))
	if horizon <= 0 {
		horizon = time.Second
	}
	if executors < 1 {
		return s
	}
	// Shrink factors multiply capacities that may be many GiB while the
	// workload caches kilobytes; only near-zero factors actually bite.
	factors := []float64{0, 1e-7, 1e-6, 1e-5}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		s.MemPressures = append(s.MemPressures, MemPressure{
			At:       time.Duration((0.05 + 0.6*rng.Float64()) * float64(horizon)),
			For:      time.Duration(float64(horizon) * (0.1 + 0.2*rng.Float64())),
			Executor: rng.Intn(executors),
			Factor:   factors[rng.Intn(len(factors))],
		})
	}
	if executors >= 2 && rng.Intn(2) == 0 {
		mp := s.MemPressures[len(s.MemPressures)-1]
		mp.Executor = 1 + rng.Intn(executors-1)
		oomFor := 50*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
		if oomFor > mp.For {
			oomFor = mp.For
		}
		s.MemPressures[len(s.MemPressures)-1] = mp
		s.ExecutorOOMs = append(s.ExecutorOOMs, ExecutorOOM{
			At:       mp.At,
			For:      oomFor,
			Executor: mp.Executor,
		})
	}
	return s
}

// WithTenantFaults returns a copy of the schedule extended with randomized
// session-layer faults derived from the same seed on an independent RNG
// stream (leaving the base, network, and driver draws untouched): one or two
// open-loop tenant storms whose arrival rates outpace any plausible service
// rate, and, roughly half the time, one slow-tenant poison job. Tenant
// indices are drawn from [0, tenants); implementations reduce them modulo
// the live roster.
func (s Schedule) WithTenantFaults(seed int64, horizon time.Duration, tenants int) Schedule {
	rng := rand.New(rand.NewSource(mix(seed ^ 0x7e4a47)))
	if horizon <= 0 {
		horizon = time.Second
	}
	if tenants < 1 {
		tenants = 1
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		s.TenantStorms = append(s.TenantStorms, TenantStorm{
			At:       time.Duration((0.05 + 0.6*rng.Float64()) * float64(horizon)),
			Tenant:   rng.Intn(tenants),
			Jobs:     4 + rng.Intn(12),
			Every:    time.Duration(float64(horizon) * (0.002 + 0.01*rng.Float64())),
			Priority: rng.Intn(3),
		})
	}
	if rng.Intn(2) == 0 {
		s.SlowTenants = append(s.SlowTenants, SlowTenant{
			At:     time.Duration((0.1 + 0.5*rng.Float64()) * float64(horizon)),
			Tenant: rng.Intn(tenants),
			Factor: 4 + 8*rng.Float64(),
		})
	}
	return s
}

// Describe renders the armed fault plan as one line per scheduled event,
// sorted by virtual time (probabilistic knobs follow at the end) — the
// output of starkbench's -dump-faults flag.
func (s Schedule) Describe() []string {
	type ev struct {
		at   time.Duration
		line string
	}
	var evs []ev
	add := func(at time.Duration, format string, args ...any) {
		evs = append(evs, ev{at, fmt.Sprintf("%12v  %s", at, fmt.Sprintf(format, args...))})
	}
	for _, c := range s.Crashes {
		add(c.At, "crash        exec=%d restartAfter=%v", c.Executor, c.RestartAfter)
	}
	for _, st := range s.Stragglers {
		add(st.At, "straggle     exec=%d factor=%.2f for=%v", st.Executor, st.Factor, st.For)
	}
	for _, bl := range s.BlockLoss {
		kind := "shuffle"
		if bl.Checkpoint {
			kind = "checkpoint"
		}
		add(bl.At, "block-loss   %s pick=%d", kind, bl.Pick)
	}
	for _, p := range s.Partitions {
		add(p.At, "partition    exec=%d heal=+%v", p.Executor, p.For)
	}
	for _, d := range s.NetDelays {
		add(d.At, "net-delay    extra=%v for=%v", d.Extra, d.For)
	}
	for _, bc := range s.BlockCorrupt {
		kind := "shuffle"
		if bc.Checkpoint {
			kind = "checkpoint"
		}
		add(bc.At, "block-corrupt %s pick=%d", kind, bc.Pick)
	}
	for _, dc := range s.DriverCrashes {
		add(dc.At, "driver-crash restartAfter=%v tearTail=%d", dc.RestartAfter, dc.TearTail)
	}
	for _, mp := range s.MemPressures {
		add(mp.At, "mem-pressure exec=%d factor=%.2g for=%v", mp.Executor, mp.Factor, mp.For)
	}
	for _, oe := range s.ExecutorOOMs {
		add(oe.At, "oom-window   exec=%d for=%v", oe.Executor, oe.For)
	}
	for _, ts := range s.TenantStorms {
		add(ts.At, "tenant-storm tenant=%d jobs=%d every=%v prio=%d", ts.Tenant, ts.Jobs, ts.Every, ts.Priority)
	}
	for _, sl := range s.SlowTenants {
		add(sl.At, "slow-tenant  tenant=%d factor=%.2f", sl.Tenant, sl.Factor)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	out := make([]string, 0, len(evs)+2)
	for _, e := range evs {
		out = append(out, e.line)
	}
	if s.StorageErrorProb > 0 {
		out = append(out, fmt.Sprintf("%12s  storage-error prob=%.3f", "-", s.StorageErrorProb))
	}
	if s.MsgDropProb > 0 {
		out = append(out, fmt.Sprintf("%12s  msg-drop      prob=%.3f", "-", s.MsgDropProb))
	}
	return out
}

// mix scrambles a seed so adjacent chaos seeds produce unrelated schedules
// (splitmix64 finalizer).
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return int64(z & 0x7fffffffffffffff)
}
