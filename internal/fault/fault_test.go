package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"stark/internal/vtime"
)

// recorder implements System and logs delivered faults in order.
type recorder struct {
	log []string
}

func (r *recorder) KillExecutor(id int)    { r.log = append(r.log, "kill") }
func (r *recorder) RestartExecutor(id int) { r.log = append(r.log, "restart") }
func (r *recorder) SetStraggler(id int, factor float64) {
	if factor > 1 {
		r.log = append(r.log, "slow")
	} else {
		r.log = append(r.log, "restore")
	}
}
func (r *recorder) DropShuffleBlock(pick int) bool {
	r.log = append(r.log, "drop-shuffle")
	return true
}
func (r *recorder) DropCheckpointBlock(pick int) bool {
	r.log = append(r.log, "drop-checkpoint")
	return false
}
func (r *recorder) PartitionExecutor(id int) { r.log = append(r.log, "partition") }
func (r *recorder) HealExecutor(id int)      { r.log = append(r.log, "heal") }
func (r *recorder) SetNetDelay(extra time.Duration) {
	if extra > 0 {
		r.log = append(r.log, "delay")
	} else {
		r.log = append(r.log, "undelay")
	}
}
func (r *recorder) CorruptShuffleBlock(pick int) bool {
	r.log = append(r.log, "corrupt-shuffle")
	return true
}
func (r *recorder) CorruptCheckpointBlock(pick int) bool {
	r.log = append(r.log, "corrupt-checkpoint")
	return true
}
func (r *recorder) CrashDriver(tearTail int) { r.log = append(r.log, "driver-crash") }
func (r *recorder) RestartDriver()           { r.log = append(r.log, "driver-restart") }
func (r *recorder) SetMemPressure(id int, factor float64) {
	if factor < 1 {
		r.log = append(r.log, "squeeze")
	} else {
		r.log = append(r.log, "unsqueeze")
	}
}
func (r *recorder) SetOOMWindow(id int, armed bool) {
	if armed {
		r.log = append(r.log, "oom-arm")
	} else {
		r.log = append(r.log, "oom-disarm")
	}
}

func TestArmDeliversScheduleInOrder(t *testing.T) {
	s := Schedule{
		Crashes:    []Crash{{At: 10 * time.Millisecond, Executor: 1, RestartAfter: 20 * time.Millisecond}},
		Stragglers: []Straggler{{At: 5 * time.Millisecond, For: 40 * time.Millisecond, Executor: 2, Factor: 3}},
		BlockLoss: []BlockLoss{
			{At: 15 * time.Millisecond, Checkpoint: false, Pick: 7},
			{At: 25 * time.Millisecond, Checkpoint: true, Pick: 1},
		},
	}
	loop := vtime.NewLoop()
	rec := &recorder{}
	in := New(s)
	in.Arm(loop, rec)
	loop.Run()
	want := []string{"slow", "kill", "drop-shuffle", "drop-checkpoint", "restart", "restore"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("delivery order = %v, want %v", rec.log, want)
	}
	st := in.Stats()
	if st.Crashes != 1 || st.Restarts != 1 || st.Stragglers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BlocksDropped != 1 || st.MissedDrops != 1 {
		t.Fatalf("block stats = %+v", st)
	}
}

func TestStorageOpDeterministicPerSeed(t *testing.T) {
	roll := func(seed int64) []bool {
		in := New(Schedule{Seed: seed, StorageErrorProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			err := in.StorageOp("shuffle-read")
			out[i] = err != nil
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("error %v does not wrap ErrInjected", err)
			}
		}
		return out
	}
	if !reflect.DeepEqual(roll(42), roll(42)) {
		t.Fatal("same seed produced different error sequences")
	}
	if reflect.DeepEqual(roll(42), roll(43)) {
		t.Fatal("different seeds produced identical 200-roll sequences")
	}
}

func TestStorageOpZeroProbNeverFails(t *testing.T) {
	in := New(Schedule{Seed: 9})
	for i := 0; i < 100; i++ {
		if err := in.StorageOp("x"); err != nil {
			t.Fatalf("injected error with zero probability: %v", err)
		}
	}
	if in.Stats().StorageRolls != 0 {
		t.Fatal("zero-probability ops should not consume rng rolls")
	}
}

func TestRandomScheduleDeterministicAndSafe(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomSchedule(seed, 2*time.Second, 8)
		b := RandomSchedule(seed, 2*time.Second, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
		for _, c := range a.Crashes {
			if c.Executor == 0 {
				t.Fatalf("seed %d: crash targets executor 0", seed)
			}
			if c.RestartAfter <= 0 {
				t.Fatalf("seed %d: crash without restart", seed)
			}
			if c.At < 0 || c.At > 2*time.Second {
				t.Fatalf("seed %d: crash outside horizon at %v", seed, c.At)
			}
		}
		if a.Empty() {
			t.Fatalf("seed %d: empty schedule", seed)
		}
	}
	if reflect.DeepEqual(RandomSchedule(1, time.Second, 8), RandomSchedule(2, time.Second, 8)) {
		t.Fatal("adjacent seeds produced identical schedules")
	}
}

func TestArmDeliversNetworkFaults(t *testing.T) {
	s := Schedule{
		Partitions:   []Partition{{At: 10 * time.Millisecond, For: 30 * time.Millisecond, Executor: 2}},
		NetDelays:    []NetDelay{{At: 5 * time.Millisecond, For: 10 * time.Millisecond, Extra: 20 * time.Millisecond}},
		BlockCorrupt: []BlockCorrupt{{At: 20 * time.Millisecond, Checkpoint: true, Pick: 3}},
	}
	loop := vtime.NewLoop()
	rec := &recorder{}
	in := New(s)
	in.Arm(loop, rec)
	loop.Run()
	want := []string{"delay", "partition", "undelay", "corrupt-checkpoint", "heal"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("delivery order = %v, want %v", rec.log, want)
	}
	st := in.Stats()
	if st.Partitions != 1 || st.Heals != 1 || st.DelayWindows != 1 || st.BlocksCorrupted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithNetFaultsDeterministicAndSafe(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		base := RandomSchedule(seed, 2*time.Second, 8)
		a := base.WithNetFaults(seed, 2*time.Second, 8)
		b := base.WithNetFaults(seed, 2*time.Second, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: extended schedules differ", seed)
		}
		// The base draws must be untouched so schedules pinned by earlier
		// tests replay identically whether or not net faults are layered on.
		if !reflect.DeepEqual(a.Crashes, base.Crashes) || a.StorageErrorProb != base.StorageErrorProb {
			t.Fatalf("seed %d: WithNetFaults perturbed the base schedule", seed)
		}
		if len(a.Partitions) == 0 {
			t.Fatalf("seed %d: no partitions generated on an 8-executor cluster", seed)
		}
		for _, p := range a.Partitions {
			if p.Executor == 0 {
				t.Fatalf("seed %d: partition targets executor 0", seed)
			}
			if p.For <= 0 {
				t.Fatalf("seed %d: partition never heals", seed)
			}
		}
	}
}

func TestArmDeliversMemFaults(t *testing.T) {
	s := Schedule{
		MemPressures: []MemPressure{{At: 10 * time.Millisecond, For: 30 * time.Millisecond, Executor: 1, Factor: 1e-6}},
		ExecutorOOMs: []ExecutorOOM{{At: 15 * time.Millisecond, For: 10 * time.Millisecond, Executor: 1}},
	}
	loop := vtime.NewLoop()
	rec := &recorder{}
	in := New(s)
	in.Arm(loop, rec)
	loop.Run()
	want := []string{"squeeze", "oom-arm", "oom-disarm", "unsqueeze"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("delivery order = %v, want %v", rec.log, want)
	}
	st := in.Stats()
	if st.MemPressures != 1 || st.OOMWindows != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Empty() || s.Events() != 2 {
		t.Fatalf("Empty=%v Events=%d", s.Empty(), s.Events())
	}
}

func TestWithMemFaultsDeterministicAndSafe(t *testing.T) {
	var sawOOM bool
	for seed := int64(0); seed < 50; seed++ {
		base := RandomSchedule(seed, 2*time.Second, 8)
		a := base.WithMemFaults(seed, 2*time.Second, 8)
		b := base.WithMemFaults(seed, 2*time.Second, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: extended schedules differ", seed)
		}
		if !reflect.DeepEqual(a.Crashes, base.Crashes) || a.StorageErrorProb != base.StorageErrorProb {
			t.Fatalf("seed %d: WithMemFaults perturbed the base schedule", seed)
		}
		if len(a.MemPressures) == 0 {
			t.Fatalf("seed %d: no mem-pressure windows generated", seed)
		}
		for _, mp := range a.MemPressures {
			if mp.For <= 0 {
				t.Fatalf("seed %d: mem-pressure window never closes", seed)
			}
			if mp.Factor < 0 || mp.Factor >= 1 {
				t.Fatalf("seed %d: shrink factor %v out of squeeze range", seed, mp.Factor)
			}
		}
		for _, oe := range a.ExecutorOOMs {
			sawOOM = true
			if oe.Executor == 0 {
				t.Fatalf("seed %d: OOM window targets executor 0", seed)
			}
			// OOM windows must stay shorter than the default cumulative
			// retry backoff (50+100+200+400ms) so retries outlast them.
			if oe.For <= 0 || oe.For > 250*time.Millisecond {
				t.Fatalf("seed %d: OOM window %v outside (0, 250ms]", seed, oe.For)
			}
			// Every OOM window must nest inside a pressure window on the
			// same executor, or it could never fire.
			var nested bool
			for _, mp := range a.MemPressures {
				if mp.Executor == oe.Executor && mp.At <= oe.At && oe.At+oe.For <= mp.At+mp.For {
					nested = true
				}
			}
			if !nested {
				t.Fatalf("seed %d: OOM window not nested in a pressure window", seed)
			}
		}
	}
	if !sawOOM {
		t.Fatal("50 seeds produced no ExecutorOOM window")
	}
}

func TestMessageOpDeterministicAndIndependentOfStorageRolls(t *testing.T) {
	roll := func() ([]bool, []bool) {
		in := New(Schedule{Seed: 11, StorageErrorProb: 0.3, MsgDropProb: 0.3})
		msgs := make([]bool, 100)
		stores := make([]bool, 100)
		for i := range msgs {
			msgs[i] = in.MessageOp("heartbeat")
			stores[i] = in.StorageOp("shuffle-read") != nil
		}
		return msgs, stores
	}
	m1, s1 := roll()
	m2, s2 := roll()
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different roll sequences")
	}
	// Storage rolls must match a run that never consults MessageOp.
	in := New(Schedule{Seed: 11, StorageErrorProb: 0.3, MsgDropProb: 0.3})
	for i := 0; i < 100; i++ {
		if got := in.StorageOp("shuffle-read") != nil; got != s1[i] {
			t.Fatalf("storage roll %d perturbed by interleaved message rolls", i)
		}
	}
}

func TestDescribeListsEveryEvent(t *testing.T) {
	s := RandomSchedule(5, time.Second, 8).WithNetFaults(5, time.Second, 8)
	lines := s.Describe()
	min := s.Events()
	if len(lines) < min {
		t.Fatalf("Describe returned %d lines for %d events", len(lines), min)
	}
}

func TestRandomScheduleSingleExecutor(t *testing.T) {
	s := RandomSchedule(3, time.Second, 1)
	if len(s.Crashes) != 0 {
		t.Fatal("single-executor schedule must not crash the only executor")
	}
	if s.StorageErrorProb <= 0 {
		t.Fatal("single-executor schedule should still inject transient errors")
	}
}
