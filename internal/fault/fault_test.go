package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"stark/internal/vtime"
)

// recorder implements System and logs delivered faults in order.
type recorder struct {
	log []string
}

func (r *recorder) KillExecutor(id int)    { r.log = append(r.log, "kill") }
func (r *recorder) RestartExecutor(id int) { r.log = append(r.log, "restart") }
func (r *recorder) SetStraggler(id int, factor float64) {
	if factor > 1 {
		r.log = append(r.log, "slow")
	} else {
		r.log = append(r.log, "restore")
	}
}
func (r *recorder) DropShuffleBlock(pick int) bool {
	r.log = append(r.log, "drop-shuffle")
	return true
}
func (r *recorder) DropCheckpointBlock(pick int) bool {
	r.log = append(r.log, "drop-checkpoint")
	return false
}

func TestArmDeliversScheduleInOrder(t *testing.T) {
	s := Schedule{
		Crashes:    []Crash{{At: 10 * time.Millisecond, Executor: 1, RestartAfter: 20 * time.Millisecond}},
		Stragglers: []Straggler{{At: 5 * time.Millisecond, For: 40 * time.Millisecond, Executor: 2, Factor: 3}},
		BlockLoss: []BlockLoss{
			{At: 15 * time.Millisecond, Checkpoint: false, Pick: 7},
			{At: 25 * time.Millisecond, Checkpoint: true, Pick: 1},
		},
	}
	loop := vtime.NewLoop()
	rec := &recorder{}
	in := New(s)
	in.Arm(loop, rec)
	loop.Run()
	want := []string{"slow", "kill", "drop-shuffle", "drop-checkpoint", "restart", "restore"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("delivery order = %v, want %v", rec.log, want)
	}
	st := in.Stats()
	if st.Crashes != 1 || st.Restarts != 1 || st.Stragglers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BlocksDropped != 1 || st.MissedDrops != 1 {
		t.Fatalf("block stats = %+v", st)
	}
}

func TestStorageOpDeterministicPerSeed(t *testing.T) {
	roll := func(seed int64) []bool {
		in := New(Schedule{Seed: seed, StorageErrorProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			err := in.StorageOp("shuffle-read")
			out[i] = err != nil
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("error %v does not wrap ErrInjected", err)
			}
		}
		return out
	}
	if !reflect.DeepEqual(roll(42), roll(42)) {
		t.Fatal("same seed produced different error sequences")
	}
	if reflect.DeepEqual(roll(42), roll(43)) {
		t.Fatal("different seeds produced identical 200-roll sequences")
	}
}

func TestStorageOpZeroProbNeverFails(t *testing.T) {
	in := New(Schedule{Seed: 9})
	for i := 0; i < 100; i++ {
		if err := in.StorageOp("x"); err != nil {
			t.Fatalf("injected error with zero probability: %v", err)
		}
	}
	if in.Stats().StorageRolls != 0 {
		t.Fatal("zero-probability ops should not consume rng rolls")
	}
}

func TestRandomScheduleDeterministicAndSafe(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomSchedule(seed, 2*time.Second, 8)
		b := RandomSchedule(seed, 2*time.Second, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
		for _, c := range a.Crashes {
			if c.Executor == 0 {
				t.Fatalf("seed %d: crash targets executor 0", seed)
			}
			if c.RestartAfter <= 0 {
				t.Fatalf("seed %d: crash without restart", seed)
			}
			if c.At < 0 || c.At > 2*time.Second {
				t.Fatalf("seed %d: crash outside horizon at %v", seed, c.At)
			}
		}
		if a.Empty() {
			t.Fatalf("seed %d: empty schedule", seed)
		}
	}
	if reflect.DeepEqual(RandomSchedule(1, time.Second, 8), RandomSchedule(2, time.Second, 8)) {
		t.Fatal("adjacent seeds produced identical schedules")
	}
}

func TestRandomScheduleSingleExecutor(t *testing.T) {
	s := RandomSchedule(3, time.Second, 1)
	if len(s.Crashes) != 0 {
		t.Fatal("single-executor schedule must not crash the only executor")
	}
	if s.StorageErrorProb <= 0 {
		t.Fatal("single-executor schedule should still inject transient errors")
	}
}
