package locality

import (
	"testing"

	"stark/internal/partition"
)

func units(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRegisterRoundRobin(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(4), units(4), []int{10, 11}); err != nil {
		t.Fatal(err)
	}
	for u, want := range map[int]int{0: 10, 1: 11, 2: 10, 3: 11} {
		got, ok := m.Primary("ns", u)
		if !ok || got != want {
			t.Errorf("Primary(%d) = %d,%v want %d", u, got, ok, want)
		}
	}
	if got := m.Units("ns"); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Units = %v", got)
	}
}

func TestRegisterPartitionerAgreement(t *testing.T) {
	m := NewManager()
	p := partition.NewHash(4)
	if err := m.Register("ns", p, units(4), []int{0}); err != nil {
		t.Fatal(err)
	}
	// Same partitioner: no-op.
	if err := m.Register("ns", partition.NewHash(4), units(4), []int{5}); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Primary("ns", 0); got != 0 {
		t.Fatal("re-register reassigned units")
	}
	// Conflicting partitioner rejected.
	if err := m.Register("ns", partition.NewHash(8), units(8), []int{0}); err == nil {
		t.Fatal("conflicting partitioner accepted")
	}
	if err := m.Register("", p, nil, []int{0}); err == nil {
		t.Fatal("empty namespace accepted")
	}
	if err := m.Register("ns2", p, units(4), nil); err == nil {
		t.Fatal("no executors accepted")
	}
}

func TestPartitionerLookup(t *testing.T) {
	m := NewManager()
	p := partition.NewHash(2)
	if err := m.Register("ns", p, units(2), []int{0}); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Partitioner("ns")
	if !ok || !got.Equivalent(p) {
		t.Fatal("Partitioner lookup wrong")
	}
	if _, ok := m.Partitioner("nope"); ok {
		t.Fatal("phantom partitioner")
	}
	if !m.Registered("ns") || m.Registered("nope") {
		t.Fatal("Registered wrong")
	}
}

func TestReplicas(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(2), units(2), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	m.AddReplica("ns", 0, 5)
	m.AddReplica("ns", 0, 5) // idempotent
	if got := m.Preferred("ns", 0); len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Fatalf("Preferred = %v", got)
	}
	m.RemoveReplica("ns", 0, 0)
	if got, _ := m.Primary("ns", 0); got != 5 {
		t.Fatalf("Primary after removal = %d", got)
	}
	// Last executor is never removed.
	m.RemoveReplica("ns", 0, 5)
	if got := m.Preferred("ns", 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Preferred = %v", got)
	}
	// Unknown namespace/unit are no-ops.
	m.AddReplica("nope", 0, 1)
	if got := m.Preferred("nope", 0); got != nil {
		t.Fatal("phantom namespace")
	}
}

func TestPreferredReturnsCopy(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(1), units(1), []int{7}); err != nil {
		t.Fatal(err)
	}
	got := m.Preferred("ns", 0)
	got[0] = 99
	if p, _ := m.Primary("ns", 0); p != 7 {
		t.Fatal("Preferred leaked internal slice")
	}
}

func TestApplySplit(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(8), []int{0, 4}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	m.AddReplica("ns", 0, 3)
	if err := m.ApplySplit("ns", 0, 0, 2, 9); err != nil {
		t.Fatal(err)
	}
	if got := m.Preferred("ns", 0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("left = %v", got)
	}
	if got := m.Preferred("ns", 2); len(got) != 1 || got[0] != 9 {
		t.Fatalf("right = %v", got)
	}
	if err := m.ApplySplit("ns", 99, 0, 1, 0); err == nil {
		t.Fatal("split of unknown unit succeeded")
	}
	if err := m.ApplySplit("nope", 0, 0, 1, 0); err == nil {
		t.Fatal("split in unknown namespace succeeded")
	}
}

func TestApplyMerge(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(8), []int{0, 2}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	m.AddReplica("ns", 2, 1) // unit 2 now lists {2, 1}; union must dedupe
	if err := m.ApplyMerge("ns", 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	got := m.Preferred("ns", 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("merged = %v", got)
	}
	if got := m.Preferred("ns", 2); len(got) != 0 {
		t.Fatal("right unit survived merge")
	}
	if err := m.ApplyMerge("ns", 50, 51, 50); err == nil {
		t.Fatal("merge of unknown units succeeded")
	}
}

func TestDropExecutor(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(2), units(2), []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	m.AddReplica("ns", 0, 2)
	m.DropExecutor(1, []int{8, 9})
	// Unit 0 had {1,2} -> {2}; unit 1 had {2} untouched.
	if got := m.Preferred("ns", 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("unit0 = %v", got)
	}
	// Kill 2 as well: both units reassigned to fallbacks.
	m.DropExecutor(2, []int{8, 9})
	p0, _ := m.Primary("ns", 0)
	p1, _ := m.Primary("ns", 1)
	if (p0 != 8 && p0 != 9) || (p1 != 8 && p1 != 9) {
		t.Fatalf("fallback primaries = %d, %d", p0, p1)
	}
}

func TestAssignmentsPerExecutor(t *testing.T) {
	m := NewManager()
	if err := m.Register("a", partition.NewHash(2), units(2), []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", partition.NewHash(2), units(2), []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	got := m.AssignmentsPerExecutor()
	if got[1] != 3 || got[2] != 1 {
		t.Fatalf("assignments = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager()
	if err := m.Register("ns", partition.NewHash(16), units(16), []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				u := (w*37 + i) % 16
				m.AddReplica("ns", u, 4+w)
				m.Preferred("ns", u)
				m.RemoveReplica("ns", u, 4+w)
				m.AssignmentsPerExecutor()
				m.Units("ns")
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	for u := 0; u < 16; u++ {
		if got := m.Preferred("ns", u); len(got) == 0 {
			t.Fatalf("unit %d lost all executors", u)
		}
	}
}
