// Package locality implements Stark's LocalityManager (paper Sec. III-B):
// it pins every *collection partition* — partition i of every RDD registered
// under a namespace — to the same preferred executor set, giving cogroup and
// join across the collection fully local, shuffle-free inputs.
//
// A scheduling unit here is either a raw partition id (plain co-locality) or
// a partition-group id (extendable mode); the manager is agnostic and calls
// both "unit". Each unit maps to an ordered executor list whose head is the
// primary: the delay scheduler asks for this list, and remote launches
// append the chosen executor as a replica because the computed data is now
// cached there (paper: "a collection partition maps to a set of executors
// instead of a single one").
package locality

import (
	"fmt"
	"sort"
	"sync"

	"stark/internal/partition"
)

// Namespace is one registered dataset collection.
type namespaceState struct {
	partitioner   partition.Partitioner
	numPartitions int
	units         map[int][]int // unit id -> ordered executor ids
}

// Manager tracks namespaces and their unit→executor maps. It is safe for
// concurrent use.
type Manager struct {
	mu         sync.Mutex
	namespaces map[string]*namespaceState
}

// NewManager returns an empty LocalityManager.
func NewManager() *Manager {
	return &Manager{namespaces: make(map[string]*namespaceState)}
}

// Register creates namespace ns with the given partitioner and assigns the
// given units round-robin over executors. If ns already exists, the
// partitioner must agree with the registered one (paper: "LocalityManager
// creates a namespace if it has not seen ns before, or checks whether the
// partitioner p agrees with the existing partitioner") and the call is
// otherwise a no-op.
func (m *Manager) Register(ns string, p partition.Partitioner, units []int, executors []int) error {
	if ns == "" {
		return fmt.Errorf("locality: empty namespace")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.namespaces[ns]; ok {
		if !st.partitioner.Equivalent(p) {
			return fmt.Errorf("locality: namespace %q registered with partitioner %s, got %s",
				ns, st.partitioner.Describe(), p.Describe())
		}
		return nil
	}
	if len(executors) == 0 {
		return fmt.Errorf("locality: namespace %q registered with no executors", ns)
	}
	st := &namespaceState{
		partitioner:   p,
		numPartitions: p.NumPartitions(),
		units:         make(map[int][]int, len(units)),
	}
	sorted := make([]int, len(units))
	copy(sorted, units)
	sort.Ints(sorted)
	for i, u := range sorted {
		st.units[u] = []int{executors[i%len(executors)]}
	}
	m.namespaces[ns] = st
	return nil
}

// Registered reports whether ns exists.
func (m *Manager) Registered(ns string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.namespaces[ns]
	return ok
}

// Partitioner returns the namespace's registered partitioner.
func (m *Manager) Partitioner(ns string) (partition.Partitioner, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil, false
	}
	return st.partitioner, true
}

// Preferred returns the ordered executor list of a unit (primary first),
// empty when the namespace or unit is unknown. The slice is a copy.
func (m *Manager) Preferred(ns string, unit int) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil
	}
	execs := st.units[unit]
	out := make([]int, len(execs))
	copy(out, execs)
	return out
}

// Primary returns the head of a unit's executor list.
func (m *Manager) Primary(ns string, unit int) (int, bool) {
	ex := m.Preferred(ns, unit)
	if len(ex) == 0 {
		return 0, false
	}
	return ex[0], true
}

// AddReplica appends an executor to a unit's list if absent; a task that
// ran remotely has materialized the unit's data in that executor's cache.
func (m *Manager) AddReplica(ns string, unit, exec int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return
	}
	for _, e := range st.units[unit] {
		if e == exec {
			return
		}
	}
	st.units[unit] = append(st.units[unit], exec)
}

// RemoveReplica drops an executor from a unit's list (cache eviction or
// contention-aware de-replication). The primary can only be removed when a
// replica remains to take over.
func (m *Manager) RemoveReplica(ns string, unit, exec int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return
	}
	execs := st.units[unit]
	for i, e := range execs {
		if e != exec {
			continue
		}
		if len(execs) == 1 {
			return // never leave a unit with no preferred executor
		}
		st.units[unit] = append(execs[:i:i], execs[i+1:]...)
		return
	}
}

// DropExecutor removes a failed executor from every unit's list; units whose
// whole list died are reassigned to the given fallback executors
// round-robin.
func (m *Manager) DropExecutor(exec int, fallback []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.namespaces {
		i := 0
		for u, execs := range st.units {
			kept := execs[:0]
			for _, e := range execs {
				if e != exec {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 && len(fallback) > 0 {
				kept = append(kept, fallback[i%len(fallback)])
				i++
			}
			st.units[u] = kept
		}
	}
}

// ApplySplit rewires a split: the left child unit inherits the parent's
// executor list (its cached partitions stay put), while the right child is
// assigned the provided new executor — this is the moment Stark-E pays a
// first-job reconstruction penalty in exchange for lasting balance
// (paper Fig. 14 discussion).
func (m *Manager) ApplySplit(ns string, parentUnit, leftUnit, rightUnit, newExec int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return fmt.Errorf("locality: unknown namespace %q", ns)
	}
	parentExecs, ok := st.units[parentUnit]
	if !ok {
		return fmt.Errorf("locality: namespace %q has no unit %d", ns, parentUnit)
	}
	delete(st.units, parentUnit)
	st.units[leftUnit] = parentExecs
	st.units[rightUnit] = []int{newExec}
	return nil
}

// ApplyMerge rewires a merge: the merged unit's list is the union of the
// children's lists, left child's primary first, so no cached data is
// abandoned.
func (m *Manager) ApplyMerge(ns string, leftUnit, rightUnit, mergedUnit int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return fmt.Errorf("locality: unknown namespace %q", ns)
	}
	left := st.units[leftUnit]
	right := st.units[rightUnit]
	if left == nil && right == nil {
		return fmt.Errorf("locality: namespace %q has neither unit %d nor %d", ns, leftUnit, rightUnit)
	}
	delete(st.units, leftUnit)
	delete(st.units, rightUnit)
	merged := make([]int, 0, len(left)+len(right))
	seen := make(map[int]bool)
	for _, e := range append(append([]int{}, left...), right...) {
		if !seen[e] {
			seen[e] = true
			merged = append(merged, e)
		}
	}
	st.units[mergedUnit] = merged
	return nil
}

// Units returns the namespace's unit ids, ascending.
func (m *Manager) Units(ns string) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(st.units))
	for u := range st.units {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// AssignmentsPerExecutor counts, across all namespaces, how many units list
// each executor; the engine uses it to pick least-loaded executors for
// split targets.
func (m *Manager) AssignmentsPerExecutor() map[int]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]int)
	for _, st := range m.namespaces {
		for _, execs := range st.units {
			for _, e := range execs {
				out[e]++
			}
		}
	}
	return out
}
