package zorder

import "testing"

func BenchmarkEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Encode(uint32(i), uint32(i*7))
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		x, y := Decode(uint64(i) * 2654435761)
		sink += x + y
	}
	_ = sink
}

func BenchmarkGridEncodePoint(b *testing.B) {
	g := NewGrid(64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.EncodePoint(float64(i%1000)/1000, float64(i%997)/997)
	}
	_ = sink
}
