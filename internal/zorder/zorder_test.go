package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xffffffff, 0xffffffff, 0xffffffffffffffff},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y); got != c.z {
			t.Errorf("Encode(%d,%d) = %d, want %d", c.x, c.y, got, c.z)
		}
	}
}

func TestZOrderLocality(t *testing.T) {
	// All four cells of an aligned 2x2 block must be contiguous in Z-order.
	for _, base := range [][2]uint32{{0, 0}, {2, 2}, {4, 0}, {6, 6}} {
		codes := []uint64{
			Encode(base[0], base[1]),
			Encode(base[0]+1, base[1]),
			Encode(base[0], base[1]+1),
			Encode(base[0]+1, base[1]+1),
		}
		lo, hi := codes[0], codes[0]
		for _, c := range codes {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo != 3 {
			t.Errorf("block at %v spans [%d,%d]", base, lo, hi)
		}
	}
}

func TestGridEncode(t *testing.T) {
	g := NewGrid(4)
	if g.Side() != 4 || g.Cells() != 16 {
		t.Fatalf("side=%d cells=%d", g.Side(), g.Cells())
	}
	if x, y := g.CellOf(0.0, 0.0); x != 0 || y != 0 {
		t.Fatalf("CellOf(0,0) = %d,%d", x, y)
	}
	if x, y := g.CellOf(0.99, 0.99); x != 3 || y != 3 {
		t.Fatalf("CellOf(.99,.99) = %d,%d", x, y)
	}
	// Clamping.
	if x, y := g.CellOf(-1, 2); x != 0 || y != 3 {
		t.Fatalf("CellOf(-1,2) = %d,%d", x, y)
	}
}

func TestGridValidation(t *testing.T) {
	for _, n := range []uint32{0, 3, 1 << 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%d) did not panic", n)
				}
			}()
			NewGrid(n)
		}()
	}
}

func TestKeyPreservesOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		if a < b {
			return Key(a) < Key(b)
		}
		return Key(a) >= Key(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
