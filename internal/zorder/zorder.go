// Package zorder implements Z-order (Morton) encoding, the space-filling
// curve the paper uses (citing Pyro [23]) to map two-dimensional taxi
// pick-up/drop-off coordinates onto one-dimensional, range-partitionable
// keys. Nearby cells in the plane share long common prefixes in Z-order, so
// a range partitioner over encoded keys approximates spatial partitioning —
// which is exactly what makes hotspot drift translate into partition-size
// skew in the evaluation.
package zorder

import "fmt"

// Encode interleaves the bits of x and y (x in the even positions) to form
// the Morton code of the cell (x, y).
func Encode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Decode inverts Encode.
func Decode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit between each of the 32 input bits.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact removes the zero bit between each of 32 bits, inverting spread.
func compact(z uint64) uint32 {
	x := z & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// Grid maps continuous coordinates in [0,1)x[0,1) onto an n x n cell grid
// and Z-encodes the cell. n must be a power of two no larger than 1<<16.
type Grid struct {
	n uint32
}

// NewGrid returns a grid with n cells per side. It panics if n is not a
// power of two in [1, 65536]; grid resolution is a static configuration
// error, not a runtime condition.
func NewGrid(n uint32) Grid {
	if n == 0 || n > 1<<16 || n&(n-1) != 0 {
		panic(fmt.Sprintf("zorder: grid side %d must be a power of two in [1, 65536]", n))
	}
	return Grid{n: n}
}

// Side reports the number of cells per side.
func (g Grid) Side() uint32 { return g.n }

// Cells reports the total number of cells.
func (g Grid) Cells() uint64 { return uint64(g.n) * uint64(g.n) }

// EncodePoint clamps (u, v) into [0,1) and returns the Z-code of the
// containing cell.
func (g Grid) EncodePoint(u, v float64) uint64 {
	return Encode(g.clamp(u), g.clamp(v))
}

// CellOf returns the (x, y) grid cell containing the clamped point.
func (g Grid) CellOf(u, v float64) (x, y uint32) {
	return g.clamp(u), g.clamp(v)
}

func (g Grid) clamp(u float64) uint32 {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = 0.999999999
	}
	c := uint32(u * float64(g.n))
	if c >= g.n {
		c = g.n - 1
	}
	return c
}

// Key renders a Z-code as a fixed-width hex string so lexicographic string
// order equals numeric Z-order; the engine's range partitioners operate on
// string keys.
func Key(z uint64) string {
	return fmt.Sprintf("%016x", z)
}
