// Package replication implements Stark's contention-aware replication
// policy (paper Sec. III-C3). Collection partitions receive time-varying,
// non-uniform computational demand; the policy decides how many cached
// replicas each unit deserves and which replicas to retire, based on two
// signals:
//
//   - failed locality: a task for unit α launched remotely because α's
//     executors were busy — evidence that α is hot (or its executors are
//     oversubscribed), so α earned a new replica;
//   - contention: an executor hosting many distinct units catalyzes cache
//     eviction and makes locality harder for everyone, so cold units should
//     de-replicate from it first.
//
// The engine feeds launch events in; the policy answers "should this
// remote launch be adopted as a replica?" and "which replica should unit α
// give up?". Demand is tracked with an exponentially decayed counter per
// unit, so bursts age out.
package replication

import (
	"math"
	"sync"
	"time"
)

// UnitKey names a collection unit: a namespace plus a partition or group id.
type UnitKey struct {
	Namespace string
	Unit      int
}

// Config bounds the policy.
type Config struct {
	// MaxReplicas caps replicas per unit.
	MaxReplicas int
	// HalfLife is the decay half-life of the demand counters.
	HalfLife time.Duration
	// DemandPerReplica is how much decayed demand justifies one replica
	// beyond the first.
	DemandPerReplica float64
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{
		MaxReplicas:      4,
		HalfLife:         30 * time.Second,
		DemandPerReplica: 8,
	}
}

type unitState struct {
	demand    float64
	updatedAt time.Duration
	replicas  int
}

// Policy tracks per-unit demand on the virtual timeline. It is safe for
// concurrent use.
type Policy struct {
	mu    sync.Mutex
	cfg   Config
	units map[UnitKey]*unitState
}

// NewPolicy builds a policy; zero-valued config fields fall back to
// defaults.
func NewPolicy(cfg Config) *Policy {
	def := DefaultConfig()
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = def.MaxReplicas
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = def.HalfLife
	}
	if cfg.DemandPerReplica <= 0 {
		cfg.DemandPerReplica = def.DemandPerReplica
	}
	return &Policy{cfg: cfg, units: make(map[UnitKey]*unitState)}
}

func (p *Policy) state(k UnitKey) *unitState {
	st, ok := p.units[k]
	if !ok {
		st = &unitState{replicas: 1}
		p.units[k] = st
	}
	return st
}

// decayTo ages a unit's demand to virtual time now.
func (st *unitState) decayTo(now time.Duration, halfLife time.Duration) {
	if now <= st.updatedAt {
		return
	}
	dt := now - st.updatedAt
	st.demand *= math.Exp2(-float64(dt) / float64(halfLife))
	st.updatedAt = now
}

// OnLocalLaunch records a data-local task launch for the unit at virtual
// time now.
func (p *Policy) OnLocalLaunch(k UnitKey, now time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	st.decayTo(now, p.cfg.HalfLife)
	st.demand++
}

// OnRemoteLaunch records a failed-locality launch — the paper's replication
// signal — and reports whether the executor that ran the task should be
// adopted as a replica.
func (p *Policy) OnRemoteLaunch(k UnitKey, now time.Duration) (adopt bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	st.decayTo(now, p.cfg.HalfLife)
	// Remote launches signal contention strongly.
	st.demand += 2
	if st.replicas >= p.cfg.MaxReplicas {
		return false
	}
	if st.replicas < p.TargetLocked(st) {
		st.replicas++
		return true
	}
	return false
}

// TargetLocked computes the replica target for a unit's current demand.
// Callers hold the mutex.
func (p *Policy) TargetLocked(st *unitState) int {
	t := 1 + int(st.demand/p.cfg.DemandPerReplica)
	if t > p.cfg.MaxReplicas {
		t = p.cfg.MaxReplicas
	}
	return t
}

// Target reports the unit's current replica target at virtual time now.
func (p *Policy) Target(k UnitKey, now time.Duration) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	st.decayTo(now, p.cfg.HalfLife)
	return p.TargetLocked(st)
}

// Replicas reports the policy's view of a unit's replica count.
func (p *Policy) Replicas(k UnitKey) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state(k).replicas
}

// ShouldDeReplicate reports whether the unit's demand has decayed below its
// replica count, i.e. one replica should be retired (paper: excessive
// replication "catalyzes cache eviction"). The caller performs the actual
// cache drop and then confirms with Dropped.
func (p *Policy) ShouldDeReplicate(k UnitKey, now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	st.decayTo(now, p.cfg.HalfLife)
	return st.replicas > p.TargetLocked(st)
}

// Dropped records that one replica of the unit was retired (either by the
// de-replication path or by cache eviction).
func (p *Policy) Dropped(k UnitKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	if st.replicas > 1 {
		st.replicas--
	}
}

// Demand exposes a unit's decayed demand (diagnostics).
func (p *Policy) Demand(k UnitKey, now time.Duration) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(k)
	st.decayTo(now, p.cfg.HalfLife)
	return st.demand
}
