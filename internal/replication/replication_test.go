package replication

import (
	"testing"
	"testing/quick"
	"time"
)

var k = UnitKey{Namespace: "ns", Unit: 3}

func TestDefaultsApplied(t *testing.T) {
	p := NewPolicy(Config{})
	if p.cfg.MaxReplicas != 4 || p.cfg.HalfLife != 30*time.Second || p.cfg.DemandPerReplica != 8 {
		t.Fatalf("defaults not applied: %+v", p.cfg)
	}
}

func TestColdUnitHasOneReplica(t *testing.T) {
	p := NewPolicy(Config{})
	if got := p.Target(k, 0); got != 1 {
		t.Fatalf("target = %d", got)
	}
	if got := p.Replicas(k); got != 1 {
		t.Fatalf("replicas = %d", got)
	}
}

func TestRemoteLaunchesGrowReplicas(t *testing.T) {
	p := NewPolicy(Config{DemandPerReplica: 4, MaxReplicas: 3})
	adopted := 0
	for i := 0; i < 10; i++ {
		if p.OnRemoteLaunch(k, time.Duration(i)*time.Millisecond) {
			adopted++
		}
	}
	if adopted == 0 {
		t.Fatal("hot unit never replicated")
	}
	if got := p.Replicas(k); got != 3 {
		t.Fatalf("replicas = %d, want capped at 3", got)
	}
	// Past the cap, no further adoption.
	if p.OnRemoteLaunch(k, 20*time.Millisecond) {
		t.Fatal("adopted beyond MaxReplicas")
	}
}

func TestDemandDecays(t *testing.T) {
	p := NewPolicy(Config{HalfLife: time.Second, DemandPerReplica: 4})
	for i := 0; i < 8; i++ {
		p.OnLocalLaunch(k, 0)
	}
	if d := p.Demand(k, 0); d != 8 {
		t.Fatalf("demand = %v", d)
	}
	if d := p.Demand(k, time.Second); d < 3.9 || d > 4.1 {
		t.Fatalf("demand after one half-life = %v, want ~4", d)
	}
	if d := p.Demand(k, 10*time.Second); d > 0.1 {
		t.Fatalf("demand after 10 half-lives = %v", d)
	}
}

func TestDeReplicationAfterCooling(t *testing.T) {
	p := NewPolicy(Config{HalfLife: time.Second, DemandPerReplica: 4, MaxReplicas: 4})
	now := time.Duration(0)
	for i := 0; i < 12; i++ {
		p.OnRemoteLaunch(k, now)
	}
	if p.Replicas(k) < 2 {
		t.Fatalf("setup: replicas = %d", p.Replicas(k))
	}
	if p.ShouldDeReplicate(k, now) {
		t.Fatal("hot unit flagged for de-replication")
	}
	// After demand decays, replicas exceed the target.
	later := now + 20*time.Second
	if !p.ShouldDeReplicate(k, later) {
		t.Fatal("cooled unit not flagged for de-replication")
	}
	before := p.Replicas(k)
	p.Dropped(k)
	if p.Replicas(k) != before-1 {
		t.Fatal("Dropped did not decrement")
	}
	// The count never drops below one.
	for i := 0; i < 10; i++ {
		p.Dropped(k)
	}
	if p.Replicas(k) != 1 {
		t.Fatalf("replicas = %d, want floor of 1", p.Replicas(k))
	}
}

func TestTargetMonotoneInDemand(t *testing.T) {
	p := NewPolicy(Config{DemandPerReplica: 5, MaxReplicas: 8, HalfLife: time.Hour})
	prev := p.Target(k, 0)
	for i := 0; i < 40; i++ {
		p.OnLocalLaunch(k, 0)
		cur := p.Target(k, 0)
		if cur < prev {
			t.Fatalf("target decreased while demand grew: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev != 8 {
		t.Fatalf("target = %d, want cap 8", prev)
	}
}

func TestReplicasNeverExceedCapQuick(t *testing.T) {
	f := func(events []bool, unit uint8) bool {
		p := NewPolicy(Config{MaxReplicas: 3, DemandPerReplica: 2, HalfLife: time.Second})
		key := UnitKey{Namespace: "q", Unit: int(unit)}
		now := time.Duration(0)
		for _, remote := range events {
			now += 10 * time.Millisecond
			if remote {
				p.OnRemoteLaunch(key, now)
			} else {
				p.OnLocalLaunch(key, now)
			}
			if r := p.Replicas(key); r < 1 || r > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitsIndependent(t *testing.T) {
	p := NewPolicy(Config{DemandPerReplica: 2, MaxReplicas: 4, HalfLife: time.Hour})
	hot := UnitKey{Namespace: "ns", Unit: 1}
	cold := UnitKey{Namespace: "ns", Unit: 2}
	for i := 0; i < 10; i++ {
		p.OnRemoteLaunch(hot, 0)
	}
	if p.Target(cold, 0) != 1 {
		t.Fatal("cold unit affected by hot unit")
	}
	if p.Target(hot, 0) <= p.Target(cold, 0) {
		t.Fatal("hot unit target not above cold")
	}
}
