package flow

import (
	"math/rand"
	"testing"
)

func BenchmarkMaxFlowChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph(202)
		for n := 0; n < 100; n++ {
			g.AddEdge(2*n, 2*n+1, int64(1+n%7))
			if n > 0 {
				g.AddEdge(2*(n-1)+1, 2*n, Inf)
			}
		}
		g.AddEdge(200, 0, Inf)
		g.AddEdge(199, 201, Inf)
		g.MaxFlow(200, 201)
	}
}

func BenchmarkMaxFlowRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type edge struct {
		u, v int
		c    int64
	}
	var edges []edge
	const n = 200
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, edge{u, v, int64(1 + rng.Intn(50))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.u, e.v, e.c)
		}
		g.MaxFlow(0, n-1)
	}
}
