// Package flow implements Dinic's maximum-flow algorithm on directed graphs
// with integer capacities, plus min-cut extraction. The CheckpointOptimizer
// (paper Sec. III-D) reduces "cheapest RDD set that breaks every violating
// lineage path" to a minimum s-t cut on a node-split graph: each RDD becomes
// an in-node and an out-node joined by an edge whose capacity is the RDD's
// checkpoint cost, while dependency edges get infinite capacity.
package flow

import "math"

// Inf is the capacity used for uncuttable edges. It is far below overflow
// range for sums over any realistic graph.
const Inf int64 = math.MaxInt64 / 8

// Edge is a directed edge with residual bookkeeping.
type Edge struct {
	From, To int
	Cap      int64 // remaining (residual) capacity
	flow     int64
	isRev    bool
}

// Flow reports the units of flow pushed over this edge.
func (e *Edge) Flow() int64 { return e.flow }

// Residual reports the remaining capacity of this edge.
func (e *Edge) Residual() int64 { return e.Cap }

// Graph is a flow network under construction or after MaxFlow.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int // node -> indices into edges
	level []int
	iter  []int
}

// NewGraph returns an empty network with n nodes, numbered 0..n-1.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity and
// returns its edge id, usable with EdgeByID after MaxFlow. Capacities must
// be non-negative; AddEdge panics otherwise since a negative capacity is a
// programming error in graph construction.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("flow: edge endpoint out of range")
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v, Cap: capacity})
	g.adj[u] = append(g.adj[u], id)
	g.edges = append(g.edges, Edge{From: v, To: u, Cap: 0, isRev: true})
	g.adj[v] = append(g.adj[v], id+1)
	return id
}

// EdgeByID returns the edge added by the AddEdge call that returned id.
func (g *Graph) EdgeByID(id int) *Edge { return &g.edges[id] }

// ForwardEdges iterates over all forward (non-reverse) edges, calling fn
// with each edge id and edge.
func (g *Graph) ForwardEdges(fn func(id int, e *Edge)) {
	for i := 0; i < len(g.edges); i += 2 {
		fn(i, &g.edges[i])
	}
}

func (g *Graph) bfs(s int) {
	g.level = make([]int, g.n)
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, g.n)
	g.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			e := &g.edges[id]
			if e.Cap > 0 && g.level[e.To] < 0 {
				g.level[e.To] = g.level[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
}

func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		id := g.adj[u][g.iter[u]]
		e := &g.edges[id]
		if e.Cap <= 0 || g.level[e.To] != g.level[u]+1 {
			continue
		}
		pushed := f
		if e.Cap < pushed {
			pushed = e.Cap
		}
		d := g.dfs(e.To, t, pushed)
		if d > 0 {
			e.Cap -= d
			e.flow += d
			rev := &g.edges[id^1]
			rev.Cap += d
			rev.flow -= d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum s-t flow, mutating residual capacities.
// Calling it twice continues from the previous residual state, so callers
// should build a fresh Graph per computation.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	for {
		g.bfs(s)
		if g.level[t] < 0 {
			return total
		}
		g.iter = make([]int, g.n)
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

// SourceSide returns, after MaxFlow, the set of nodes reachable from s in
// the residual graph. The minimum cut is exactly the set of forward edges
// from SourceSide to its complement.
func (g *Graph) SourceSide(s int) []bool {
	seen := make([]bool, g.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[u] {
			e := &g.edges[id]
			if e.Cap > 0 && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// MinCutEdges returns, after MaxFlow, the ids of forward edges crossing the
// minimum cut (from the source side to the sink side). The sum of their
// original capacities equals the max-flow value.
func (g *Graph) MinCutEdges(s int) []int {
	side := g.SourceSide(s)
	var cut []int
	g.ForwardEdges(func(id int, e *Edge) {
		if side[e.From] && !side[e.To] {
			cut = append(cut, id)
		}
	})
	return cut
}
