package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleFlow(t *testing.T) {
	// s -> a -> t with bottleneck 3.
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Fatalf("flow = %d, want 3", f)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example, max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("flow = %d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("flow = %d, want 0", f)
	}
}

func TestSelfSourceSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatal("s==t must give zero flow")
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	g := NewGraph(6)
	caps := []struct {
		u, v int
		c    int64
	}{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4}, {1, 3, 12},
		{3, 2, 9}, {2, 4, 14}, {4, 3, 7}, {3, 5, 20}, {4, 5, 4},
	}
	orig := make(map[int]int64)
	for _, e := range caps {
		id := g.AddEdge(e.u, e.v, e.c)
		orig[id] = e.c
	}
	f := g.MaxFlow(0, 5)
	var cutSum int64
	for _, id := range g.MinCutEdges(0) {
		cutSum += orig[id]
	}
	if cutSum != f {
		t.Fatalf("cut sum %d != flow %d", cutSum, f)
	}
}

func TestNodeSplitCutSelectsCheapNode(t *testing.T) {
	// Two parallel RDD chains a->x->t and b->y->t. Node capacities: a=10,
	// b=10, x=1, y=2 modeled by node splitting; the cut must pick x and y.
	// Layout: in(i)=2i, out(i)=2i+1 for i in 0..3 (a,b,x,y); s=8, t=9.
	g := NewGraph(10)
	in := func(i int) int { return 2 * i }
	out := func(i int) int { return 2*i + 1 }
	nodeCaps := []int64{10, 10, 1, 2}
	var nodeEdge [4]int
	for i, c := range nodeCaps {
		nodeEdge[i] = g.AddEdge(in(i), out(i), c)
	}
	g.AddEdge(8, in(0), Inf)
	g.AddEdge(8, in(1), Inf)
	g.AddEdge(out(0), in(2), Inf) // a -> x
	g.AddEdge(out(1), in(3), Inf) // b -> y
	g.AddEdge(out(2), 9, Inf)
	g.AddEdge(out(3), 9, Inf)
	if f := g.MaxFlow(8, 9); f != 3 {
		t.Fatalf("flow = %d, want 3", f)
	}
	cut := g.MinCutEdges(8)
	want := map[int]bool{nodeEdge[2]: true, nodeEdge[3]: true}
	if len(cut) != 2 || !want[cut[0]] || !want[cut[1]] {
		t.Fatalf("cut = %v, want node edges of x and y", cut)
	}
}

func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := NewGraph(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(u, v, int64(rng.Intn(20)))
		}
		f := g.MaxFlow(0, n-1)
		// Conservation: net flow out of every internal node is zero.
		net := make([]int64, n)
		g.ForwardEdges(func(_ int, e *Edge) {
			net[e.From] += e.Flow()
			net[e.To] -= e.Flow()
		})
		if net[0] != f || net[n-1] != -f {
			t.Fatalf("trial %d: source/sink net %d/%d, flow %d", trial, net[0], net[n-1], f)
		}
		for i := 1; i < n-1; i++ {
			if net[i] != 0 {
				t.Fatalf("trial %d: node %d net flow %d", trial, i, net[i])
			}
		}
	}
}

func TestCutSeparatesQuick(t *testing.T) {
	// Property: after MaxFlow, the sink is never on the source side.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := NewGraph(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+int64(rng.Intn(9)))
			}
		}
		g.MaxFlow(0, n-1)
		return !g.SourceSide(0)[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
