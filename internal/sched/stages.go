// Package sched builds execution stages from lineage graphs, mirroring
// Spark's DAGScheduler: a stage is a maximal chain of narrow dependencies;
// shuffle dependencies become stage boundaries, with the map side forming a
// ShuffleMapStage that commits its outputs to persistent storage and the
// reduce side starting the next stage.
package sched

import (
	"sort"

	"stark/internal/rdd"
)

// Stage is one schedulable unit of a job.
type Stage struct {
	ID int
	// Output is the last RDD the stage computes. For a shuffle-map stage it
	// is the map-side parent of a shuffle dependency; tasks bucket its
	// records by the shuffle's target partitioner and commit them. For the
	// result stage it is the job's final RDD.
	Output *rdd.RDD
	// ShuffleMap marks a map-side stage.
	ShuffleMap bool
	// ShuffleID is the shuffle this stage feeds (shuffle-map stages only).
	ShuffleID int
	// Consumer is the shuffled RDD that reads this stage's output
	// (shuffle-map stages only); its partitioner buckets the map output.
	Consumer *rdd.RDD
	// Parents are the shuffle-map stages producing the shuffles this
	// stage's narrow chain reads.
	Parents []*Stage

	// chain memoizes NarrowChain. The scheduler walks the chain per task
	// per scheduling round (locality preferences), which used to allocate a
	// map, a queue and a slice each time. Invalidated by InvalidateChain
	// when a checkpoint lands mid-job and truncates the chain.
	chain []*rdd.RDD
}

// NumTasks is the stage's task count before grouping: one per partition of
// the output RDD.
func (s *Stage) NumTasks() int { return s.Output.Parts }

// Build constructs the stage DAG for computing final. It returns the result
// stage; Parents links give the full DAG. Shuffle-map stages are shared
// (memoized) per shuffle id, so diamond lineages create each map stage
// once.
func Build(final *rdd.RDD) *Stage {
	b := &builder{shuffleStages: make(map[int]*Stage)}
	result := &Stage{ID: b.nextID(), Output: final}
	result.Parents = b.parentsOf(final)
	return result
}

type builder struct {
	ids           int
	shuffleStages map[int]*Stage
}

func (b *builder) nextID() int {
	id := b.ids
	b.ids++
	return id
}

// parentsOf walks the narrow chain rooted at r and returns the shuffle-map
// stages feeding it, deduplicated, in shuffle-id order.
func (b *builder) parentsOf(r *rdd.RDD) []*Stage {
	seenRDD := make(map[int]bool)
	parents := make(map[int]*Stage)
	var walk func(*rdd.RDD)
	walk = func(n *rdd.RDD) {
		if seenRDD[n.ID] {
			return
		}
		seenRDD[n.ID] = true
		// A checkpointed RDD is read from persistent storage; its lineage
		// does not run.
		if n.Checkpointed {
			return
		}
		for _, d := range n.Deps {
			if !d.Shuffle {
				walk(d.Parent)
				continue
			}
			st, ok := b.shuffleStages[d.ShuffleID]
			if !ok {
				st = &Stage{
					ID:         b.nextID(),
					Output:     d.Parent,
					ShuffleMap: true,
					ShuffleID:  d.ShuffleID,
					Consumer:   n,
				}
				b.shuffleStages[d.ShuffleID] = st
				st.Parents = b.parentsOf(d.Parent)
			}
			parents[st.ShuffleID] = st
		}
	}
	walk(r)
	out := make([]*Stage, 0, len(parents))
	for _, st := range parents {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShuffleID < out[j].ShuffleID })
	return out
}

// NarrowChain returns the RDDs computed inside the stage: the output RDD
// and every RDD reachable from it over narrow dependencies without crossing
// a checkpoint, output first, parents after (BFS order). The result is
// memoized; callers must treat it as read-only. Anything that flips an
// RDD's Checkpointed flag while stages are live must call InvalidateChain.
func (s *Stage) NarrowChain() []*rdd.RDD {
	if s.chain != nil {
		return s.chain
	}
	var out []*rdd.RDD
	seen := make(map[int]bool)
	queue := []*rdd.RDD{s.Output}
	seen[s.Output.ID] = true
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		out = append(out, r)
		if r.Checkpointed {
			continue
		}
		for _, d := range r.Deps {
			if d.Shuffle || seen[d.Parent.ID] {
				continue
			}
			seen[d.Parent.ID] = true
			queue = append(queue, d.Parent)
		}
	}
	s.chain = out
	return out
}

// InvalidateChain drops the memoized NarrowChain so the next call recomputes
// it. The engine calls it on every live stage after ForceCheckpoint marks an
// RDD checkpointed (the chain must now stop at the checkpoint).
func (s *Stage) InvalidateChain() { s.chain = nil }

// AllStages flattens the stage DAG rooted at result into a deduplicated
// list, result last, parents before children.
func AllStages(result *Stage) []*Stage {
	var out []*Stage
	seen := make(map[int]bool)
	var walk func(*Stage)
	walk = func(s *Stage) {
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		for _, p := range s.Parents {
			walk(p)
		}
		out = append(out, s)
	}
	walk(result)
	return out
}
