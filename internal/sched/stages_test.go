package sched

import (
	"math/rand"
	"testing"

	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

func keepAll(record.Record) bool { return true }

func TestBuildSingleStage(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", make([][]record.Record, 3), false)
	f := g.Filter(src, "f", keepAll)
	result := Build(f)
	if result.ShuffleMap || result.Output != f || len(result.Parents) != 0 {
		t.Fatalf("result = %+v", result)
	}
	if result.NumTasks() != 3 {
		t.Fatalf("tasks = %d", result.NumTasks())
	}
	chain := result.NarrowChain()
	if len(chain) != 2 || chain[0] != f || chain[1] != src {
		t.Fatalf("chain = %v", chain)
	}
}

func TestBuildTwoStages(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", make([][]record.Record, 2), true)
	m := g.Map(src, "m", false, func(r record.Record) record.Record { return r })
	pb := g.PartitionBy(m, "pb", partition.NewHash(4))
	c := g.Filter(pb, "c", keepAll)
	result := Build(c)
	if len(result.Parents) != 1 {
		t.Fatalf("parents = %v", result.Parents)
	}
	mapStage := result.Parents[0]
	if !mapStage.ShuffleMap || mapStage.Output != m || mapStage.Consumer != pb {
		t.Fatalf("map stage = %+v", mapStage)
	}
	if mapStage.NumTasks() != 2 || result.NumTasks() != 4 {
		t.Fatalf("tasks = %d, %d", mapStage.NumTasks(), result.NumTasks())
	}
	all := AllStages(result)
	if len(all) != 2 || all[0] != mapStage || all[1] != result {
		t.Fatalf("all = %v", all)
	}
}

func TestBuildSharedShuffleParent(t *testing.T) {
	// Diamond: one shuffle feeding two narrow branches cogrouped together;
	// the map stage must be created once.
	g := rdd.NewGraph()
	src := g.Source("src", make([][]record.Record, 2), false)
	p := partition.NewHash(2)
	pb := g.PartitionBy(src, "pb", p)
	b1 := g.Filter(pb, "b1", keepAll)
	b2 := g.Filter(pb, "b2", keepAll)
	cg := g.CoGroup("cg", p, b1, b2)
	if !cg.Narrow() {
		t.Fatal("setup: cogroup should be narrow")
	}
	result := Build(cg)
	if len(result.Parents) != 1 {
		t.Fatalf("parents = %v", result.Parents)
	}
	if got := len(AllStages(result)); got != 2 {
		t.Fatalf("stages = %d", got)
	}
	// Narrow chain spans cogroup, both branches and the shuffled RDD.
	if got := len(result.NarrowChain()); got != 4 {
		t.Fatalf("chain = %d", got)
	}
}

func TestBuildWideCoGroup(t *testing.T) {
	// CoGroup of two differently partitioned RDDs: two shuffle-map parents.
	g := rdd.NewGraph()
	a := g.Source("a", make([][]record.Record, 2), false)
	b := g.Source("b", make([][]record.Record, 3), false)
	cg := g.CoGroup("cg", partition.NewHash(4), a, b)
	result := Build(cg)
	if len(result.Parents) != 2 {
		t.Fatalf("parents = %d", len(result.Parents))
	}
	if result.Parents[0].Output != a || result.Parents[1].Output != b {
		t.Fatalf("parent outputs wrong")
	}
	if result.Parents[0].ShuffleID >= result.Parents[1].ShuffleID {
		t.Fatal("parent order not by shuffle id")
	}
}

func TestBuildChainedShuffles(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", make([][]record.Record, 2), false)
	s1 := g.PartitionBy(src, "s1", partition.NewHash(2))
	s2 := g.ReduceByKey(s1, "s2", partition.NewHash(4), func(a, b any) any { return a })
	result := Build(s2)
	all := AllStages(result)
	if len(all) != 3 {
		t.Fatalf("stages = %d", len(all))
	}
	// Order: deepest map stage first.
	if all[0].Output != src || all[1].Output != s1 || all[2] != result {
		t.Fatalf("order wrong: %v", all)
	}
}

func TestCheckpointCutsLineage(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", make([][]record.Record, 2), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(2))
	f := g.Filter(pb, "f", keepAll)
	f2 := g.Filter(f, "f2", keepAll)
	f.Checkpointed = true
	result := Build(f2)
	if len(result.Parents) != 0 {
		t.Fatalf("checkpointed lineage still has parents: %v", result.Parents)
	}
	chain := result.NarrowChain()
	if len(chain) != 2 || chain[1] != f {
		t.Fatalf("chain = %v", chain)
	}
}

// TestRandomDAGStageInvariants builds random lineages and checks structural
// invariants of the stage DAG: topological order (parents before children),
// narrow chains never crossing shuffles, and one stage per shuffle id.
func TestRandomDAGStageInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := rdd.NewGraph()
		nodes := []*rdd.RDD{g.Source("src", make([][]record.Record, 2), false)}
		for i := 0; i < 12; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			var n *rdd.RDD
			switch rng.Intn(4) {
			case 0:
				n = g.Filter(parent, "f", keepAll)
			case 1:
				n = g.Map(parent, "m", rng.Intn(2) == 0, func(r record.Record) record.Record { return r })
			case 2:
				n = g.PartitionBy(parent, "pb", partition.NewHash(1+rng.Intn(4)))
			default:
				other := nodes[rng.Intn(len(nodes))]
				n = g.CoGroup("cg", partition.NewHash(1+rng.Intn(4)), parent, other)
			}
			nodes = append(nodes, n)
		}
		final := nodes[len(nodes)-1]
		result := Build(final)
		all := AllStages(result)

		pos := map[int]int{}
		for i, st := range all {
			pos[st.ID] = i
		}
		seenShuffle := map[int]bool{}
		for _, st := range all {
			for _, p := range st.Parents {
				if pos[p.ID] >= pos[st.ID] {
					t.Fatalf("seed %d: parent stage %d not before child %d", seed, p.ID, st.ID)
				}
			}
			if st.ShuffleMap {
				if seenShuffle[st.ShuffleID] {
					t.Fatalf("seed %d: shuffle %d has two map stages", seed, st.ShuffleID)
				}
				seenShuffle[st.ShuffleID] = true
			}
			// NarrowChain must be reachable from Output without shuffle deps.
			chainSet := map[int]bool{}
			for _, r := range st.NarrowChain() {
				chainSet[r.ID] = true
			}
			for _, r := range st.NarrowChain() {
				if r.Checkpointed {
					continue
				}
				for _, d := range r.Deps {
					if d.Shuffle && chainSet[d.Parent.ID] {
						t.Fatalf("seed %d: narrow chain crosses shuffle into rdd %d", seed, d.Parent.ID)
					}
				}
			}
		}
		if all[len(all)-1] != result {
			t.Fatalf("seed %d: result stage not last", seed)
		}
	}
}
