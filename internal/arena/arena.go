// Package arena provides bump-pointer scratch allocators for the data
// plane's per-task working memory. The paper-adjacent motivation is
// Lifetime-Based Memory Management (PAPERS.md): the scratch a task needs —
// partition-index tables, group counts, hash tables — lives exactly as long
// as one data-plane batch, so instead of allocating it per operator call and
// leaning on the GC, each worker carves it out of a reusable arena that
// resets at the batch boundary. Steady-state, the shuffle/group/join paths
// allocate only their escaping outputs.
//
// A Pool is NOT safe for concurrent use; the engine keeps one set of pools
// per plane context, and plane contexts never cross worker goroutines.
package arena

// Pool is a typed bump allocator. Take carves zeroed slices out of one
// backing buffer; Reset reclaims everything at once. Slices taken before a
// Reset must not be used after it — they alias the recycled buffer.
type Pool[T any] struct {
	buf []T
	off int
	// held counts live bytes across grows within one epoch, to size the
	// next epoch's buffer so steady state needs a single buffer.
	held int
}

// Take returns a zeroed slice of length n carved from the pool. When the
// current buffer is exhausted the pool grows; previously taken slices stay
// valid (they keep the old buffer alive) but belong to the same epoch and
// die at Reset.
func (p *Pool[T]) Take(n int) []T {
	if n == 0 {
		return nil
	}
	if p.off+n > len(p.buf) {
		p.held += p.off
		size := p.held + n
		if size < 2*len(p.buf) {
			size = 2 * len(p.buf)
		}
		if size < 64 {
			size = 64
		}
		p.buf = make([]T, size)
		p.off = 0
	}
	s := p.buf[p.off : p.off+n : p.off+n]
	p.off += n
	clear(s)
	return s
}

// Reset reclaims every slice taken since the last Reset. The backing buffer
// is retained for reuse, so a steady-state workload stops allocating.
func (p *Pool[T]) Reset() {
	p.off = 0
	p.held = 0
}

// Live reports how many elements are currently taken (for tests and
// accounting).
func (p *Pool[T]) Live() int { return p.off + p.held }
