package arena

import "testing"

func TestTakeZeroesReusedMemory(t *testing.T) {
	var p Pool[int64]
	s := p.Take(8)
	for i := range s {
		s[i] = int64(i + 1)
	}
	p.Reset()
	s2 := p.Take(8)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slice not zeroed at %d: %d", i, v)
		}
	}
}

func TestGrowKeepsEarlierSlicesValid(t *testing.T) {
	var p Pool[int]
	a := p.Take(100)
	for i := range a {
		a[i] = i
	}
	b := p.Take(100000) // forces a grow
	_ = b
	for i := range a {
		if a[i] != i {
			t.Fatalf("pre-grow slice corrupted at %d", i)
		}
	}
}

func TestTakeCapsPreventNeighborClobber(t *testing.T) {
	var p Pool[int]
	a := p.Take(4)
	b := p.Take(4)
	a = append(a, 99) // must reallocate, not write into b
	_ = a
	for i, v := range b {
		if v != 0 {
			t.Fatalf("append into neighbor slice at %d: %d", i, v)
		}
	}
}

func TestSteadyStateNoAlloc(t *testing.T) {
	var p Pool[int32]
	// Warm to steady-state size.
	p.Take(1000)
	p.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		p.Take(500)
		p.Take(500)
		p.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Take allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestTakeZeroLen(t *testing.T) {
	var p Pool[byte]
	if s := p.Take(0); s != nil {
		t.Fatalf("Take(0) = %v, want nil", s)
	}
}
