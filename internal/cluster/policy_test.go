package cluster

import (
	"fmt"
	"testing"
)

// Regression: a grown re-put of an existing id used to skip the capacity
// guard, and the evictor protected the re-put block — used could end above
// capacity with a single oversized block. Oversized re-puts must now be
// refused exactly like fresh puts, leaving the old entry intact.
func TestBlockStoreOversizedRePutRefused(t *testing.T) {
	s := NewBlockStore(100)
	if _, ok := s.Put(BlockID{1, 0}, rec(1), 40); !ok {
		t.Fatal("seed put failed")
	}
	ev, st := s.PutChecked(BlockID{1, 0}, rec(9), 150)
	if st != PutTooLarge || len(ev) != 0 {
		t.Fatalf("grown re-put: st=%v ev=%v, want too-large and no evictions", st, ev)
	}
	if s.Used() != 40 || s.Len() != 1 {
		t.Fatalf("store disturbed: used=%d len=%d", s.Used(), s.Len())
	}
	if data, ok := s.Peek(BlockID{1, 0}); !ok || len(data) != 1 {
		t.Fatalf("old entry lost: %v %v", data, ok)
	}
	if s.Used() > s.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", s.Used(), s.Capacity())
	}
}

// A grown re-put that fits after evicting *other* blocks must still work.
func TestBlockStoreGrownRePutEvictsOthers(t *testing.T) {
	s := NewBlockStore(100)
	s.Put(BlockID{1, 0}, nil, 40)
	s.Put(BlockID{2, 0}, nil, 40)
	s.Get(BlockID{1, 0}) // block 2 is LRU
	ev, st := s.PutChecked(BlockID{1, 0}, nil, 90)
	if st != PutStored || len(ev) != 1 || ev[0] != (BlockID{2, 0}) {
		t.Fatalf("st=%v ev=%v", st, ev)
	}
	if s.Used() != 90 || s.Used() > s.Capacity() {
		t.Fatalf("used=%d cap=%d", s.Used(), s.Capacity())
	}
}

func TestBlockStoreShrinkCapacity(t *testing.T) {
	s := NewBlockStore(1000)
	s.Put(BlockID{1, 0}, nil, 400)
	s.SetShrink(0.5)
	if got := s.Capacity(); got != 500 {
		t.Fatalf("effective capacity = %d, want 500", got)
	}
	if s.BaseCapacity() != 1000 {
		t.Fatalf("base capacity = %d", s.BaseCapacity())
	}
	// A put over the shrunk bound is refused even though the base bound
	// would admit it.
	if _, st := s.PutChecked(BlockID{2, 0}, nil, 600); st != PutTooLarge {
		t.Fatalf("st=%v, want too-large under pressure", st)
	}
	// A fitting put under pressure pays evictions against the shrunk bound.
	ev, st := s.PutChecked(BlockID{3, 0}, nil, 300)
	if st != PutStored || len(ev) != 1 || ev[0] != (BlockID{1, 0}) {
		t.Fatalf("st=%v ev=%v", st, ev)
	}
	if p := s.Pressure(); p < 0.59 || p > 0.61 {
		t.Fatalf("pressure = %v, want 300/500", p)
	}
	s.SetShrink(1)
	if s.Capacity() != 1000 {
		t.Fatal("shrink did not restore")
	}
	// Clamping.
	s.SetShrink(-3)
	if s.Capacity() != 0 {
		t.Fatalf("negative shrink capacity = %d", s.Capacity())
	}
	s.SetShrink(7)
	if s.Capacity() != 1000 {
		t.Fatalf("over-1 shrink capacity = %d", s.Capacity())
	}
}

// groupFn maps blocks to peer groups for tests: rdds 10..19 → group "g1",
// 20..29 → "g2", everything else ungrouped.
func groupFn(id BlockID) (string, bool) {
	switch {
	case id.RDD >= 10 && id.RDD < 20:
		return "g1", true
	case id.RDD >= 20 && id.RDD < 30:
		return "g2", true
	}
	return "", false
}

func TestDAGPolicyEvictsZeroRefFirst(t *testing.T) {
	p := NewDAGPolicy()
	s := NewBlockStore(100)
	s.SetPolicy(p)
	p.Charge(1, 2) // rdd1 still has consumers
	s.Put(BlockID{1, 0}, nil, 40)
	s.Put(BlockID{2, 0}, nil, 40) // zero-ref
	s.Get(BlockID{2, 0})          // rdd1 is now LRU — LRU would evict it
	ev, st := s.PutChecked(BlockID{3, 0}, nil, 40)
	if st != PutStored || len(ev) != 1 || ev[0] != (BlockID{2, 0}) {
		t.Fatalf("st=%v ev=%v, want zero-ref rdd2 evicted over referenced LRU rdd1", st, ev)
	}
	if !s.Contains(BlockID{1, 0}) {
		t.Fatal("referenced block evicted while zero-ref available")
	}
}

func TestDAGPolicyReleaseUnpins(t *testing.T) {
	p := NewDAGPolicy()
	s := NewBlockStore(100)
	s.SetPolicy(p)
	p.Charge(1, 1)
	s.Put(BlockID{1, 0}, nil, 60)
	p.Release(1, 1) // consumer stage completed
	ev, st := s.PutChecked(BlockID{2, 0}, nil, 60)
	if st != PutStored || len(ev) != 1 || ev[0] != (BlockID{1, 0}) {
		t.Fatalf("st=%v ev=%v, want released rdd1 evicted", st, ev)
	}
	// Release clamps at zero (resubmission after a crash-reset).
	p.Release(1, 5)
	if p.Refs(1) != 0 {
		t.Fatalf("refs = %d after over-release", p.Refs(1))
	}
	p.Charge(3, 2)
	p.ResetRefs()
	if p.Refs(3) != 0 {
		t.Fatal("ResetRefs left refs behind")
	}
}

func TestDAGPolicyGroupCascade(t *testing.T) {
	p := NewDAGPolicy()
	p.SetGroupFn(groupFn)
	s := NewBlockStore(100)
	s.SetPolicy(p)
	// Two peer blocks of group g1, both zero-ref, plus an ungrouped
	// recently-used block.
	s.Put(BlockID{10, 0}, nil, 20)
	s.Put(BlockID{1, 0}, nil, 40)
	s.Put(BlockID{11, 0}, nil, 20)
	// Need 30 bytes: one g1 member would cover 20; the cascade must take
	// both members (a partial peer group is worthless).
	ev, st := s.PutChecked(BlockID{2, 0}, nil, 90)
	if st != PutStored {
		t.Fatalf("st=%v", st)
	}
	if s.Contains(BlockID{10, 0}) || s.Contains(BlockID{11, 0}) {
		t.Fatalf("partial peer group survived: evicted=%v blocks=%v", ev, s.Blocks())
	}
}

func TestDAGPolicyPinnedGroupBlocksPut(t *testing.T) {
	p := NewDAGPolicy()
	p.SetGroupFn(groupFn)
	s := NewBlockStore(100)
	s.SetPolicy(p)
	p.Charge(10, 1) // one member referenced pins the whole group
	s.Put(BlockID{10, 0}, nil, 50)
	s.Put(BlockID{11, 0}, nil, 50) // peer, zero-ref, but pinned via rdd10
	ev, st := s.PutChecked(BlockID{2, 0}, nil, 60)
	if st != PutPinnedBlocked || len(ev) != 0 {
		t.Fatalf("st=%v ev=%v, want pinned-blocked and no evictions", st, ev)
	}
	if s.Used() != 100 || s.Len() != 2 {
		t.Fatalf("refused put disturbed store: used=%d len=%d", s.Used(), s.Len())
	}
	// Releasing the pin makes the same put succeed, cascading the group.
	p.Release(10, 1)
	ev, st = s.PutChecked(BlockID{2, 0}, nil, 60)
	if st != PutStored || len(ev) != 2 {
		t.Fatalf("after release: st=%v ev=%v", st, ev)
	}
}

// The incoming block's own peers are pinned for the duration of the put:
// caching one member by evicting its peers would break the effective-cache
// property the policy exists to preserve.
func TestDAGPolicyKeepPeersPinned(t *testing.T) {
	p := NewDAGPolicy()
	p.SetGroupFn(groupFn)
	s := NewBlockStore(100)
	s.SetPolicy(p)
	s.Put(BlockID{10, 0}, nil, 60) // zero-ref peer of the incoming block
	ev, st := s.PutChecked(BlockID{11, 0}, nil, 60)
	if st != PutPinnedBlocked || len(ev) != 0 {
		t.Fatalf("st=%v ev=%v, want refusal over evicting the put's own peer", st, ev)
	}
	if !s.Contains(BlockID{10, 0}) {
		t.Fatal("peer evicted")
	}
}

func TestDAGPolicyFallsBackToReferencedUngrouped(t *testing.T) {
	p := NewDAGPolicy()
	s := NewBlockStore(100)
	s.SetPolicy(p)
	p.Charge(1, 1)
	p.Charge(2, 1)
	s.Put(BlockID{1, 0}, nil, 50)
	s.Put(BlockID{2, 0}, nil, 50)
	// Everything referenced and ungrouped: evict in LRU order rather than
	// refuse (recompute-later beats never-cache).
	ev, st := s.PutChecked(BlockID{3, 0}, nil, 50)
	if st != PutStored || len(ev) != 1 || ev[0] != (BlockID{1, 0}) {
		t.Fatalf("st=%v ev=%v", st, ev)
	}
}

func TestClusterCachePutCheckedCountsAndDirectory(t *testing.T) {
	c := newTestCluster() // 1000 bytes per executor
	p := NewDAGPolicy()
	p.SetGroupFn(groupFn)
	c.SetPolicy(p)
	p.Charge(10, 1)
	c.CachePut(0, BlockID{10, 0}, nil, 900)
	ev, st := c.CachePutChecked(0, BlockID{2, 0}, nil, 500)
	if st != PutPinnedBlocked || len(ev) != 0 {
		t.Fatalf("st=%v ev=%v", st, ev)
	}
	if locs := c.Locations(BlockID{2, 0}); locs != nil {
		t.Fatalf("refused block in directory: %v", locs)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Pressure shrink propagates into the effective-capacity sum.
	base := c.TotalEffectiveCapacity()
	c.SetMemPressure(1, 0.25)
	if got := c.TotalEffectiveCapacity(); got != base-750 {
		t.Fatalf("effective capacity = %d, want %d", got, base-750)
	}
	c.Kill(1)
	if got := c.TotalEffectiveCapacity(); got != base-1000 {
		t.Fatalf("effective capacity after kill = %d, want %d", got, base-1000)
	}
}

func TestPutStatusString(t *testing.T) {
	for st, want := range map[PutStatus]string{
		PutStored:        "stored",
		PutTooLarge:      "too-large",
		PutPinnedBlocked: "pinned-blocked",
		PutStatus(9):     "PutStatus(9)",
	} {
		if got := fmt.Sprint(st); got != want {
			t.Errorf("PutStatus %d = %q, want %q", int(st), got, want)
		}
	}
}
