// Package cluster simulates the worker side of the paper's 50-server
// testbed: executors with bounded task slots and capacity-bounded LRU block
// caches, plus a cluster-wide block directory (the BlockManagerMaster
// analogue). Transformations execute for real on in-process data; this
// package only decides *where* blocks live and what evictions occur, which
// is the state the paper's mechanisms manipulate.
package cluster

import (
	"container/list"
	"fmt"

	"stark/internal/record"
)

// BlockID names one cached partition of one RDD.
type BlockID struct {
	RDD       int
	Partition int
}

func (b BlockID) String() string { return fmt.Sprintf("rdd%d[%d]", b.RDD, b.Partition) }

type blockEntry struct {
	id    BlockID
	data  []record.Record
	bytes int64
	elem  *list.Element
}

// BlockStore is a per-executor cache of partition blocks, measured in
// simulated bytes, with a pluggable eviction policy (LRU baseline). A
// MemPressure fault can shrink the effective capacity by a factor in
// (0, 1]; Capacity and Pressure report the shrunk bound so every consumer
// (GC model, admission ledger, put path) sees the same squeezed world.
type BlockStore struct {
	capacity int64
	used     int64
	blocks   map[BlockID]*blockEntry
	lru      list.List // front = most recently used
	policy   EvictionPolicy
	// shrink is the mem-pressure capacity factor in (0, 1]; 1 = no
	// pressure. Effective capacity = capacity * shrink.
	shrink float64
}

// NewBlockStore returns a store with the given capacity in simulated bytes.
func NewBlockStore(capacity int64) *BlockStore {
	return &BlockStore{
		capacity: capacity,
		blocks:   make(map[BlockID]*blockEntry),
		policy:   lruPolicy{},
		shrink:   1,
	}
}

// SetPolicy installs an eviction policy; nil restores the LRU baseline.
func (s *BlockStore) SetPolicy(p EvictionPolicy) {
	if p == nil {
		p = lruPolicy{}
	}
	s.policy = p
}

// Policy reports the installed eviction policy.
func (s *BlockStore) Policy() EvictionPolicy { return s.policy }

// SetShrink sets the mem-pressure capacity factor; values outside (0, 1]
// clamp to that range (0 would make every put fail as oversized rather
// than model pressure). Shrinking below Used does not evict eagerly —
// the next put pays the eviction, keeping pressure effects on the
// deterministic put path.
func (s *BlockStore) SetShrink(factor float64) {
	if factor <= 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	s.shrink = factor
}

// Shrink reports the current mem-pressure capacity factor.
func (s *BlockStore) Shrink() float64 { return s.shrink }

// BaseCapacity reports the configured capacity, ignoring mem pressure.
func (s *BlockStore) BaseCapacity() int64 { return s.capacity }

// Capacity reports the effective capacity: the configured bound scaled by
// the current mem-pressure shrink factor.
func (s *BlockStore) Capacity() int64 {
	if s.shrink >= 1 {
		return s.capacity
	}
	return int64(float64(s.capacity) * s.shrink)
}

// Used reports the bytes currently cached.
func (s *BlockStore) Used() int64 { return s.used }

// Pressure reports Used/Capacity in [0, 1] against the effective
// (pressure-shrunk) capacity.
func (s *BlockStore) Pressure() float64 {
	cap := s.Capacity()
	if cap <= 0 {
		return 1
	}
	p := float64(s.used) / float64(cap)
	if p > 1 {
		p = 1
	}
	return p
}

// Len reports the number of cached blocks.
func (s *BlockStore) Len() int { return len(s.blocks) }

// Contains reports whether the block is cached, without touching LRU order.
func (s *BlockStore) Contains(id BlockID) bool {
	_, ok := s.blocks[id]
	return ok
}

// Get returns the cached data and marks the block most recently used.
func (s *BlockStore) Get(id BlockID) ([]record.Record, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.data, true
}

// Peek returns the cached data without touching LRU order. The parallel
// data plane reads through Peek so concurrent lookups never mutate the
// store; recency updates are replayed later, in deterministic dispatch
// order, via Get.
func (s *BlockStore) Peek(id BlockID) ([]record.Record, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// BytesOf reports the cached size of a block.
func (s *BlockStore) BytesOf(id BlockID) (int64, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return 0, false
	}
	return e.bytes, true
}

// PutStatus classifies the outcome of a checked put.
type PutStatus int

const (
	// PutStored: the block is cached (evictions may have been paid).
	PutStored PutStatus = iota
	// PutTooLarge: the block exceeds the effective capacity on its own —
	// it can never fit, so it is refused without evicting anything.
	PutTooLarge
	// PutPinnedBlocked: making room would require evicting members of a
	// pinned peer group; the policy refused and nothing was evicted.
	PutPinnedBlocked
)

func (st PutStatus) String() string {
	switch st {
	case PutStored:
		return "stored"
	case PutTooLarge:
		return "too-large"
	case PutPinnedBlocked:
		return "pinned-blocked"
	default:
		return fmt.Sprintf("PutStatus(%d)", int(st))
	}
}

// Put caches a block, evicting per the installed policy as needed, and
// returns the evicted ids. ok = false means the put was refused (oversized
// or pin-blocked) and the store is untouched; use PutChecked for the
// refusal reason.
func (s *BlockStore) Put(id BlockID, data []record.Record, bytes int64) (evicted []BlockID, ok bool) {
	evicted, st := s.PutChecked(id, data, bytes)
	return evicted, st == PutStored
}

// PutChecked caches a block, evicting per the installed policy, and
// reports the outcome. The eviction plan is computed *before* any
// mutation: a refused put — oversized against the effective capacity
// (fresh put or grown re-put alike) or blocked on pinned peers — leaves
// the store byte-for-byte unchanged, so degradation never thrashes.
func (s *BlockStore) PutChecked(id BlockID, data []record.Record, bytes int64) ([]BlockID, PutStatus) {
	cap := s.Capacity()
	if bytes > cap {
		// Oversized puts are refused outright, matching Spark's refusal
		// to cache partitions larger than the store. This applies to
		// re-puts of an already-cached id too: a grown re-put must not
		// slip past the bound it could not enter through.
		return nil, PutTooLarge
	}
	var current int64 // bytes already held by this id (re-put case)
	if e, exists := s.blocks[id]; exists {
		current = e.bytes
	}
	var evicted []BlockID
	if need := s.used - current + bytes - cap; need > 0 {
		plan := s.policy.Plan(s, need, id)
		if !plan.OK {
			if plan.PinBlocked {
				return nil, PutPinnedBlocked
			}
			return nil, PutTooLarge
		}
		for _, vid := range plan.Victims {
			if e, ok := s.blocks[vid]; ok && vid != id {
				s.removeEntry(e)
				evicted = append(evicted, vid)
			}
		}
	}
	if e, exists := s.blocks[id]; exists {
		s.used += bytes - e.bytes
		e.data, e.bytes = data, bytes
		s.lru.MoveToFront(e.elem)
		return evicted, PutStored
	}
	e := &blockEntry{id: id, data: data, bytes: bytes}
	e.elem = s.lru.PushFront(e)
	s.blocks[id] = e
	s.used += bytes
	return evicted, PutStored
}

// Remove drops a block if present, reporting whether it was cached.
func (s *BlockStore) Remove(id BlockID) bool {
	e, ok := s.blocks[id]
	if !ok {
		return false
	}
	s.removeEntry(e)
	return true
}

func (s *BlockStore) removeEntry(e *blockEntry) {
	s.lru.Remove(e.elem)
	delete(s.blocks, e.id)
	s.used -= e.bytes
}

// Blocks returns the cached block ids, most recently used first.
func (s *BlockStore) Blocks() []BlockID {
	out := make([]BlockID, 0, len(s.blocks))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*blockEntry).id)
	}
	return out
}

// Clear drops every block (executor failure).
func (s *BlockStore) Clear() []BlockID {
	ids := s.Blocks()
	s.blocks = make(map[BlockID]*blockEntry)
	s.lru.Init()
	s.used = 0
	return ids
}
