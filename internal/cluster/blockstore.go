// Package cluster simulates the worker side of the paper's 50-server
// testbed: executors with bounded task slots and capacity-bounded LRU block
// caches, plus a cluster-wide block directory (the BlockManagerMaster
// analogue). Transformations execute for real on in-process data; this
// package only decides *where* blocks live and what evictions occur, which
// is the state the paper's mechanisms manipulate.
package cluster

import (
	"container/list"
	"fmt"

	"stark/internal/record"
)

// BlockID names one cached partition of one RDD.
type BlockID struct {
	RDD       int
	Partition int
}

func (b BlockID) String() string { return fmt.Sprintf("rdd%d[%d]", b.RDD, b.Partition) }

type blockEntry struct {
	id    BlockID
	data  []record.Record
	bytes int64
	elem  *list.Element
}

// BlockStore is a per-executor LRU cache of partition blocks, measured in
// simulated bytes.
type BlockStore struct {
	capacity int64
	used     int64
	blocks   map[BlockID]*blockEntry
	lru      list.List // front = most recently used
}

// NewBlockStore returns a store with the given capacity in simulated bytes.
func NewBlockStore(capacity int64) *BlockStore {
	return &BlockStore{capacity: capacity, blocks: make(map[BlockID]*blockEntry)}
}

// Capacity reports the configured capacity.
func (s *BlockStore) Capacity() int64 { return s.capacity }

// Used reports the bytes currently cached.
func (s *BlockStore) Used() int64 { return s.used }

// Pressure reports Used/Capacity in [0, 1].
func (s *BlockStore) Pressure() float64 {
	if s.capacity <= 0 {
		return 1
	}
	p := float64(s.used) / float64(s.capacity)
	if p > 1 {
		p = 1
	}
	return p
}

// Len reports the number of cached blocks.
func (s *BlockStore) Len() int { return len(s.blocks) }

// Contains reports whether the block is cached, without touching LRU order.
func (s *BlockStore) Contains(id BlockID) bool {
	_, ok := s.blocks[id]
	return ok
}

// Get returns the cached data and marks the block most recently used.
func (s *BlockStore) Get(id BlockID) ([]record.Record, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.data, true
}

// Peek returns the cached data without touching LRU order. The parallel
// data plane reads through Peek so concurrent lookups never mutate the
// store; recency updates are replayed later, in deterministic dispatch
// order, via Get.
func (s *BlockStore) Peek(id BlockID) ([]record.Record, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// BytesOf reports the cached size of a block.
func (s *BlockStore) BytesOf(id BlockID) (int64, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return 0, false
	}
	return e.bytes, true
}

// Put caches a block, evicting least-recently-used blocks as needed, and
// returns the evicted ids. A block larger than the whole capacity is not
// cached (ok = false), matching Spark's refusal to cache oversized
// partitions rather than thrash.
func (s *BlockStore) Put(id BlockID, data []record.Record, bytes int64) (evicted []BlockID, ok bool) {
	if bytes > s.capacity {
		return nil, false
	}
	if e, exists := s.blocks[id]; exists {
		s.used -= e.bytes
		e.data, e.bytes = data, bytes
		s.used += bytes
		s.lru.MoveToFront(e.elem)
		evicted = s.evictOver(id)
		return evicted, true
	}
	e := &blockEntry{id: id, data: data, bytes: bytes}
	e.elem = s.lru.PushFront(e)
	s.blocks[id] = e
	s.used += bytes
	evicted = s.evictOver(id)
	return evicted, true
}

// evictOver evicts LRU blocks (never the one named keep) until under
// capacity.
func (s *BlockStore) evictOver(keep BlockID) []BlockID {
	var evicted []BlockID
	for s.used > s.capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*blockEntry)
		if e.id == keep {
			// The protected block is the only one left; nothing to evict.
			if s.lru.Len() == 1 {
				break
			}
			s.lru.MoveToFront(back)
			continue
		}
		s.removeEntry(e)
		evicted = append(evicted, e.id)
	}
	return evicted
}

// Remove drops a block if present, reporting whether it was cached.
func (s *BlockStore) Remove(id BlockID) bool {
	e, ok := s.blocks[id]
	if !ok {
		return false
	}
	s.removeEntry(e)
	return true
}

func (s *BlockStore) removeEntry(e *blockEntry) {
	s.lru.Remove(e.elem)
	delete(s.blocks, e.id)
	s.used -= e.bytes
}

// Blocks returns the cached block ids, most recently used first.
func (s *BlockStore) Blocks() []BlockID {
	out := make([]BlockID, 0, len(s.blocks))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*blockEntry).id)
	}
	return out
}

// Clear drops every block (executor failure).
func (s *BlockStore) Clear() []BlockID {
	ids := s.Blocks()
	s.blocks = make(map[BlockID]*blockEntry)
	s.lru.Init()
	s.used = 0
	return ids
}
