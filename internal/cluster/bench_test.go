package cluster

import (
	"testing"

	"stark/internal/config"
)

func BenchmarkBlockStorePutGet(b *testing.B) {
	s := NewBlockStore(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := BlockID{RDD: i % 64, Partition: i % 16}
		s.Put(id, nil, 1024)
		s.Get(id)
	}
}

func BenchmarkDirectoryLocations(b *testing.B) {
	cfg := config.Default()
	cfg.NumExecutors = 8
	c := New(cfg)
	for i := 0; i < 1000; i++ {
		c.CachePut(i%8, BlockID{RDD: i % 50, Partition: i % 20}, nil, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Locations(BlockID{RDD: i % 50, Partition: i % 20})
	}
}
