package cluster

import (
	"testing"
	"testing/quick"

	"stark/internal/config"
	"stark/internal/record"
)

func rec(n int) []record.Record {
	rs := make([]record.Record, n)
	for i := range rs {
		rs[i] = record.Pair("k", int64(i))
	}
	return rs
}

func TestBlockStorePutGet(t *testing.T) {
	s := NewBlockStore(100)
	ev, ok := s.Put(BlockID{1, 0}, rec(1), 40)
	if !ok || len(ev) != 0 {
		t.Fatalf("put: ev=%v ok=%v", ev, ok)
	}
	if !s.Contains(BlockID{1, 0}) || s.Used() != 40 {
		t.Fatalf("contains=%v used=%d", s.Contains(BlockID{1, 0}), s.Used())
	}
	data, ok := s.Get(BlockID{1, 0})
	if !ok || len(data) != 1 {
		t.Fatalf("get: %v %v", data, ok)
	}
	if _, ok := s.Get(BlockID{2, 0}); ok {
		t.Fatal("got missing block")
	}
}

func TestBlockStoreLRUEviction(t *testing.T) {
	s := NewBlockStore(100)
	s.Put(BlockID{1, 0}, nil, 40)
	s.Put(BlockID{2, 0}, nil, 40)
	// Touch block 1 so block 2 is LRU.
	s.Get(BlockID{1, 0})
	ev, ok := s.Put(BlockID{3, 0}, nil, 40)
	if !ok || len(ev) != 1 || ev[0] != (BlockID{2, 0}) {
		t.Fatalf("evicted %v", ev)
	}
	if !s.Contains(BlockID{1, 0}) || s.Contains(BlockID{2, 0}) {
		t.Fatal("wrong block evicted")
	}
}

func TestBlockStoreOversized(t *testing.T) {
	s := NewBlockStore(100)
	s.Put(BlockID{1, 0}, nil, 50)
	if _, ok := s.Put(BlockID{2, 0}, nil, 101); ok {
		t.Fatal("oversized block cached")
	}
	if !s.Contains(BlockID{1, 0}) || s.Used() != 50 {
		t.Fatal("oversized put disturbed store")
	}
}

func TestBlockStoreReplace(t *testing.T) {
	s := NewBlockStore(100)
	s.Put(BlockID{1, 0}, rec(1), 30)
	s.Put(BlockID{1, 0}, rec(2), 60)
	if s.Used() != 60 || s.Len() != 1 {
		t.Fatalf("used=%d len=%d", s.Used(), s.Len())
	}
	data, _ := s.Get(BlockID{1, 0})
	if len(data) != 2 {
		t.Fatalf("data len = %d", len(data))
	}
}

func TestBlockStoreNeverEvictsJustPut(t *testing.T) {
	s := NewBlockStore(100)
	s.Put(BlockID{1, 0}, nil, 90)
	ev, ok := s.Put(BlockID{2, 0}, nil, 95)
	if !ok {
		t.Fatal("put failed")
	}
	if len(ev) != 1 || ev[0] != (BlockID{1, 0}) {
		t.Fatalf("evicted %v", ev)
	}
	if !s.Contains(BlockID{2, 0}) {
		t.Fatal("new block evicted itself")
	}
}

func TestBlockStoreCapacityInvariantQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewBlockStore(500)
		for i, op := range ops {
			id := BlockID{int(op % 7), 0}
			switch {
			case op%3 == 0:
				s.Remove(id)
			default:
				s.Put(id, nil, int64(op)*3)
			}
			if s.Used() > 500 && s.Len() > 1 {
				return false
			}
			_ = i
		}
		// Used must equal the sum of cached block sizes.
		var sum int64
		for _, id := range s.Blocks() {
			b, _ := s.BytesOf(id)
			sum += b
		}
		return sum == s.Used()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestCluster() *Cluster {
	cfg := config.Default()
	cfg.NumExecutors = 3
	cfg.SlotsPerExecutor = 2
	cfg.MemoryPerExecutor = 1000
	return New(cfg)
}

func TestClusterDirectory(t *testing.T) {
	c := newTestCluster()
	id := BlockID{5, 1}
	c.CachePut(0, id, rec(1), 100)
	c.CachePut(2, id, rec(1), 100)
	locs := c.Locations(id)
	if len(locs) != 2 || locs[0] != 0 || locs[1] != 2 {
		t.Fatalf("locations = %v", locs)
	}
	if !c.CacheHas(0, id) || c.CacheHas(1, id) {
		t.Fatal("CacheHas wrong")
	}
	c.DropBlock(0, id)
	if locs := c.Locations(id); len(locs) != 1 || locs[0] != 2 {
		t.Fatalf("locations after drop = %v", locs)
	}
}

func TestClusterEvictionUpdatesDirectory(t *testing.T) {
	c := newTestCluster()
	c.CachePut(0, BlockID{1, 0}, nil, 600)
	c.CachePut(0, BlockID{2, 0}, nil, 600) // evicts rdd1
	if locs := c.Locations(BlockID{1, 0}); locs != nil {
		t.Fatalf("evicted block still in directory: %v", locs)
	}
	if locs := c.Locations(BlockID{2, 0}); len(locs) != 1 {
		t.Fatalf("new block not in directory: %v", locs)
	}
}

func TestKillClearsBlocksAndSlots(t *testing.T) {
	c := newTestCluster()
	c.CachePut(1, BlockID{1, 0}, nil, 100)
	c.Executor(1).Acquire()
	c.Kill(1)
	if locs := c.Locations(BlockID{1, 0}); locs != nil {
		t.Fatalf("dead executor still in directory: %v", locs)
	}
	if c.Executor(1).FreeSlots() != 0 {
		t.Fatal("dead executor offers slots")
	}
	if got := c.AliveExecutors(); len(got) != 2 {
		t.Fatalf("alive = %v", got)
	}
	if c.TotalSlots() != 4 {
		t.Fatalf("slots = %d", c.TotalSlots())
	}
	// Double-kill is a no-op; restart revives with empty cache.
	c.Kill(1)
	c.Restart(1)
	if c.Executor(1).FreeSlots() != 2 || c.Executor(1).Store.Len() != 0 {
		t.Fatal("restart wrong")
	}
	// Puts to dead executors are dropped.
	c.Kill(2)
	c.CachePut(2, BlockID{9, 0}, nil, 10)
	if c.Locations(BlockID{9, 0}) != nil {
		t.Fatal("put to dead executor registered")
	}
}

func TestSlotAccounting(t *testing.T) {
	c := newTestCluster()
	e := c.Executor(0)
	e.Acquire()
	e.Acquire()
	if e.FreeSlots() != 0 || e.Busy() != 2 {
		t.Fatalf("free=%d busy=%d", e.FreeSlots(), e.Busy())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-acquire did not panic")
			}
		}()
		e.Acquire()
	}()
	e.Release()
	e.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-release did not panic")
			}
		}()
		e.Release()
	}()
}

func TestUniqueKeysCached(t *testing.T) {
	c := newTestCluster()
	c.CachePut(0, BlockID{1, 0}, nil, 10)
	c.CachePut(0, BlockID{2, 0}, nil, 10)
	c.CachePut(0, BlockID{3, 5}, nil, 10)
	n := c.UniqueKeysCached(0, func(id BlockID) string {
		if id.RDD == 3 {
			return "" // not in any namespace
		}
		return "ns/0" // both map to collection partition 0
	})
	if n != 1 {
		t.Fatalf("unique keys = %d, want 1", n)
	}
}

func TestCheckConsistencyCleanAndAfterChurn(t *testing.T) {
	c := newTestCluster()
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.CachePut(i%3, BlockID{i % 7, i % 4}, nil, int64(50+i*13%400))
	}
	c.DropBlock(0, BlockID{1, 1})
	c.Kill(2)
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	c.Restart(2)
	c.CachePut(2, BlockID{9, 0}, nil, 10)
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistencyDetectsDrift(t *testing.T) {
	c := newTestCluster()
	c.CachePut(0, BlockID{1, 0}, nil, 10)
	// Tamper: remove from store behind the directory's back.
	c.Executor(0).Store.Remove(BlockID{1, 0})
	if err := c.CheckConsistency(); err == nil {
		t.Fatal("tampered state passed consistency check")
	}
}
