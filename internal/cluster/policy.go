package cluster

// EvictionPolicy decides which cached blocks an executor's BlockStore gives
// up when a put needs room. The store computes the full eviction plan
// *before* mutating anything, so a refused put evicts nothing — the
// graceful-degradation contract: refuse-and-stream, never thrash.
//
// Policies run on the engine's single-threaded control plane (puts are
// replayed at plane join in dispatch order), so implementations need no
// locking but must be deterministic: equal store state and equal policy
// state must yield equal plans.
type EvictionPolicy interface {
	// Name identifies the policy in metrics and experiment output.
	Name() string
	// Plan selects victims freeing at least need bytes from s, never
	// naming keep (the block being put). OK reports whether the plan
	// covers need; PinBlocked reports that the shortfall is due to
	// pinned peer groups (the caller should refuse the cache rather
	// than break all-or-nothing pinning).
	Plan(s *BlockStore, need int64, keep BlockID) EvictionPlan
}

// EvictionPlan is a policy's answer: the victims to drop, in eviction
// order, and whether the plan actually covers the requested bytes.
type EvictionPlan struct {
	Victims    []BlockID
	OK         bool
	PinBlocked bool
}

// lruPolicy is the baseline: walk the recency list back-to-front and take
// everything in reach. It always succeeds (any block except keep is fair
// game), matching the store's historical behaviour.
type lruPolicy struct{}

// NewLRUPolicy returns the baseline least-recently-used eviction policy.
func NewLRUPolicy() EvictionPolicy { return lruPolicy{} }

func (lruPolicy) Name() string { return "lru" }

func (lruPolicy) Plan(s *BlockStore, need int64, keep BlockID) EvictionPlan {
	var plan EvictionPlan
	var freed int64
	for el := s.lru.Back(); el != nil && freed < need; el = el.Prev() {
		e := el.Value.(*blockEntry)
		if e.id == keep {
			continue
		}
		plan.Victims = append(plan.Victims, e.id)
		freed += e.bytes
	}
	plan.OK = freed >= need
	return plan
}

// DAGPolicy is the dependency-aware policy from the ROADMAP's cache item:
// reference counts derived from the lineage/stage DAG at job submit tell it
// each RDD's remaining downstream consumers, and a group function (the
// engine's namespace partition groups) identifies peer blocks that are only
// useful together (LERC's "effective cache").
//
// Victim selection, back-to-front through the recency list:
//
//  1. zero-reference blocks first — a block no remaining stage will read
//     is dead weight regardless of recency. Evicting any member of an
//     all-zero-reference peer group cascades to the whole group (a partial
//     group is worthless, so keeping the rest is pure waste).
//  2. referenced but ungrouped blocks next (plain LRU among them) — this
//     costs recomputes, but later than LRU would have paid them.
//  3. pinned peer groups (any member still referenced) are never touched:
//     if only pinned bytes remain, the plan reports PinBlocked and the
//     store refuses the put instead of breaking the group.
//
// The refcount table is driver state: charged when a job's stages are
// built, released as consumer stages complete, and reset wholesale when
// the driver crashes (the restarted driver re-charges on resubmission).
type DAGPolicy struct {
	refs map[int]int
	// groupOf maps a block to its collection partition-group key; ok=false
	// means ungrouped. Nil until the engine installs it.
	groupOf func(id BlockID) (string, bool)
}

// NewDAGPolicy returns a DAG-aware policy with an empty reference table.
func NewDAGPolicy() *DAGPolicy {
	return &DAGPolicy{refs: make(map[int]int)}
}

func (p *DAGPolicy) Name() string { return "dag" }

// SetGroupFn installs the block → peer-group mapping (the engine's
// namespace unit lookup). Pass nil to treat every block as ungrouped.
func (p *DAGPolicy) SetGroupFn(fn func(id BlockID) (string, bool)) { p.groupOf = fn }

// Charge adds n remaining consumers to an RDD's reference count.
func (p *DAGPolicy) Charge(rdd, n int) {
	if n != 0 {
		p.refs[rdd] += n
	}
}

// Release removes n consumers from an RDD's reference count, clamping at
// zero (resubmitted stages can release a count the crash already reset).
func (p *DAGPolicy) Release(rdd, n int) {
	if n == 0 {
		return
	}
	if r := p.refs[rdd] - n; r > 0 {
		p.refs[rdd] = r
	} else {
		delete(p.refs, rdd)
	}
}

// Refs reports an RDD's remaining consumer count.
func (p *DAGPolicy) Refs(rdd int) int { return p.refs[rdd] }

// ResetRefs clears the whole table — driver crash discards volatile state;
// journal replay re-charges as jobs resubmit.
func (p *DAGPolicy) ResetRefs() { p.refs = make(map[int]int) }

func (p *DAGPolicy) keyOf(id BlockID) (string, bool) {
	if p.groupOf == nil {
		return "", false
	}
	return p.groupOf(id)
}

func (p *DAGPolicy) Plan(s *BlockStore, need int64, keep BlockID) EvictionPlan {
	var plan EvictionPlan
	var freed int64
	chosen := make(map[BlockID]bool)
	keepKey, keepGrouped := p.keyOf(keep)

	// groupState caches, per peer-group key, whether any cached member is
	// still referenced (pinned) — including the incoming keep block's
	// group, whose peers must survive the put for the cache to stay
	// effective.
	groupPinned := make(map[string]bool)
	pinnedOf := func(key string) bool {
		pinned, ok := groupPinned[key]
		if ok {
			return pinned
		}
		if keepGrouped && key == keepKey {
			pinned = true
		} else {
			for el := s.lru.Back(); el != nil; el = el.Prev() {
				e := el.Value.(*blockEntry)
				if k, grouped := p.keyOf(e.id); grouped && k == key && p.refs[e.id.RDD] > 0 {
					pinned = true
					break
				}
			}
		}
		groupPinned[key] = pinned
		return pinned
	}

	take := func(e *blockEntry) {
		if chosen[e.id] {
			return
		}
		chosen[e.id] = true
		plan.Victims = append(plan.Victims, e.id)
		freed += e.bytes
	}

	// Pass 1: zero-reference blocks, whole peer groups at a time.
	for el := s.lru.Back(); el != nil && freed < need; el = el.Prev() {
		e := el.Value.(*blockEntry)
		if e.id == keep || chosen[e.id] {
			continue
		}
		key, grouped := p.keyOf(e.id)
		if grouped {
			if pinnedOf(key) {
				plan.PinBlocked = true
				continue
			}
			// All-zero-reference group: cascade to every cached member,
			// in recency order, so no useless partial group lingers.
			for gl := s.lru.Back(); gl != nil; gl = gl.Prev() {
				ge := gl.Value.(*blockEntry)
				if gk, gg := p.keyOf(ge.id); gg && gk == key && ge.id != keep {
					take(ge)
				}
			}
			continue
		}
		if p.refs[e.id.RDD] == 0 {
			take(e)
		}
	}

	// Pass 2: referenced ungrouped blocks, LRU order — recompute later
	// beats refusing the cache, but pinned groups stay untouchable.
	for el := s.lru.Back(); el != nil && freed < need; el = el.Prev() {
		e := el.Value.(*blockEntry)
		if e.id == keep || chosen[e.id] {
			continue
		}
		if _, grouped := p.keyOf(e.id); grouped {
			plan.PinBlocked = true
			continue
		}
		take(e)
	}

	plan.OK = freed >= need
	return plan
}
