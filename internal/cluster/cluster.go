package cluster

import (
	"fmt"

	"stark/internal/config"
	"stark/internal/record"
)

// Executor is one simulated worker process: task slots plus a block cache.
type Executor struct {
	ID    int
	Slots int
	Store *BlockStore

	busy int
	dead bool
	// slow is the straggler multiplier applied to task durations launched
	// here; values <= 1 mean full speed.
	slow float64
	// inc counts process incarnations: 1 for the original process, +1 per
	// restart. Heartbeats carry it so the driver can tell a restarted
	// process from a healed partition even when the crash+restart fit
	// inside the suspicion window.
	inc int
}

// Incarnation reports the executor's process incarnation (1 = original).
func (e *Executor) Incarnation() int { return e.inc }

// Slowdown reports the executor's current straggler multiplier (>= 1).
func (e *Executor) Slowdown() float64 {
	if e.slow <= 1 {
		return 1
	}
	return e.slow
}

// FreeSlots reports currently available slots (0 when dead).
func (e *Executor) FreeSlots() int {
	if e.dead {
		return 0
	}
	return e.Slots - e.busy
}

// Busy reports occupied slots.
func (e *Executor) Busy() int { return e.busy }

// Dead reports whether the executor has been failed.
func (e *Executor) Dead() bool { return e.dead }

// Acquire takes one slot; it panics if none are free, because the scheduler
// must only assign to free slots.
func (e *Executor) Acquire() {
	if e.FreeSlots() <= 0 {
		panic(fmt.Sprintf("cluster: executor %d has no free slot", e.ID))
	}
	e.busy++
}

// Release frees one slot; it panics on release without acquire.
func (e *Executor) Release() {
	if e.busy <= 0 {
		panic(fmt.Sprintf("cluster: executor %d release without acquire", e.ID))
	}
	e.busy--
}

// Cluster is the set of executors plus the block directory mapping each
// cached block to the executors holding a replica.
type Cluster struct {
	Cfg       config.Cluster
	executors []*Executor
	directory map[BlockID]map[int]bool
}

// New builds a cluster per the configuration.
func New(cfg config.Cluster) *Cluster {
	c := &Cluster{
		Cfg:       cfg,
		directory: make(map[BlockID]map[int]bool),
	}
	for i := 0; i < cfg.NumExecutors; i++ {
		c.executors = append(c.executors, &Executor{
			ID:    i,
			Slots: cfg.SlotsPerExecutor,
			Store: NewBlockStore(cfg.MemoryPerExecutor),
			inc:   1,
		})
	}
	return c
}

// NumExecutors reports the executor count (including dead ones).
func (c *Cluster) NumExecutors() int { return len(c.executors) }

// Executor returns the executor with the given id.
func (c *Cluster) Executor(id int) *Executor {
	return c.executors[id]
}

// Executors returns all executors in id order.
func (c *Cluster) Executors() []*Executor { return c.executors }

// AliveExecutors returns the ids of live executors.
func (c *Cluster) AliveExecutors() []int {
	var out []int
	for _, e := range c.executors {
		if !e.dead {
			out = append(out, e.ID)
		}
	}
	return out
}

// TotalSlots reports the number of slots across live executors.
func (c *Cluster) TotalSlots() int {
	n := 0
	for _, e := range c.executors {
		if !e.dead {
			n += e.Slots
		}
	}
	return n
}

// CachePut stores a block on an executor and updates the directory,
// returning the evicted block ids (already removed from the directory).
func (c *Cluster) CachePut(exec int, id BlockID, data []record.Record, bytes int64) []BlockID {
	evicted, _ := c.CachePutChecked(exec, id, data, bytes)
	return evicted
}

// CachePutChecked stores a block on an executor, updates the directory,
// and reports the put outcome so the engine can count graceful refusals
// (and fail the task under an armed ExecutorOOM window). A put to a dead
// executor reports PutStored with no directory change, matching CachePut's
// historical silence — the block simply vanishes with the executor.
func (c *Cluster) CachePutChecked(exec int, id BlockID, data []record.Record, bytes int64) ([]BlockID, PutStatus) {
	e := c.executors[exec]
	if e.dead {
		return nil, PutStored
	}
	evicted, st := e.Store.PutChecked(id, data, bytes)
	for _, ev := range evicted {
		c.dropLocation(ev, exec)
	}
	if st == PutStored {
		locs, present := c.directory[id]
		if !present {
			locs = make(map[int]bool)
			c.directory[id] = locs
		}
		locs[exec] = true
	}
	return evicted, st
}

// SetPolicy installs an eviction policy on every executor's store (shared
// instance; policies are control-plane-only). nil restores the LRU
// baseline.
func (c *Cluster) SetPolicy(p EvictionPolicy) {
	for _, e := range c.executors {
		e.Store.SetPolicy(p)
	}
}

// SetMemPressure sets an executor's mem-pressure capacity shrink factor;
// factor >= 1 restores full capacity. Dead executors keep the setting for
// their next incarnation's store state (the store survives Restart with a
// Clear, not a rebuild).
func (c *Cluster) SetMemPressure(exec int, factor float64) {
	c.executors[exec].Store.SetShrink(factor)
}

// TotalEffectiveCapacity sums the effective (pressure-shrunk) cache
// capacity across live executors — the admission ledger's view of how
// much memory the cluster can actually pin right now.
func (c *Cluster) TotalEffectiveCapacity() int64 {
	var total int64
	for _, e := range c.executors {
		if !e.dead {
			total += e.Store.Capacity()
		}
	}
	return total
}

// CacheGet reads a block from one executor's cache.
func (c *Cluster) CacheGet(exec int, id BlockID) ([]record.Record, bool) {
	e := c.executors[exec]
	if e.dead {
		return nil, false
	}
	return e.Store.Get(id)
}

// CachePeek reads a block from one executor's cache without touching LRU
// order; see BlockStore.Peek.
func (c *Cluster) CachePeek(exec int, id BlockID) ([]record.Record, bool) {
	e := c.executors[exec]
	if e.dead {
		return nil, false
	}
	return e.Store.Peek(id)
}

// CacheHas reports whether an executor holds a block.
func (c *Cluster) CacheHas(exec int, id BlockID) bool {
	e := c.executors[exec]
	return !e.dead && e.Store.Contains(id)
}

// Locations returns the executor ids caching a block, ascending.
func (c *Cluster) Locations(id BlockID) []int {
	locs := c.directory[id]
	if len(locs) == 0 {
		return nil
	}
	out := make([]int, 0, len(locs))
	for i := range locs {
		out = append(out, i)
	}
	// Insertion sort: location sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DropBlock removes a block replica from an executor (cache invalidation or
// de-replication).
func (c *Cluster) DropBlock(exec int, id BlockID) {
	if c.executors[exec].Store.Remove(id) {
		c.dropLocation(id, exec)
	}
}

func (c *Cluster) dropLocation(id BlockID, exec int) {
	if locs, ok := c.directory[id]; ok {
		delete(locs, exec)
		if len(locs) == 0 {
			delete(c.directory, id)
		}
	}
}

// Kill fails an executor: all cached blocks vanish, slots become
// unavailable. Running tasks are the scheduler's problem. Killing a dead
// executor is a no-op.
func (c *Cluster) Kill(exec int) {
	e := c.executors[exec]
	if e.dead {
		return
	}
	e.dead = true
	for _, id := range e.Store.Clear() {
		c.dropLocation(id, exec)
	}
	e.busy = 0
}

// Restart revives a dead executor with an empty cache, full speed, and a
// new process incarnation.
func (c *Cluster) Restart(exec int) {
	e := c.executors[exec]
	e.dead = false
	e.busy = 0
	e.slow = 0
	e.inc++
}

// SetSlowdown sets an executor's straggler multiplier; factor <= 1 restores
// full speed. New task launches on the executor take factor times their
// modeled duration.
func (c *Cluster) SetSlowdown(exec int, factor float64) {
	c.executors[exec].slow = factor
}

// CheckConsistency verifies the directory against the executors' stores:
// every directory entry must point at executors that actually hold the
// block, and every cached block must be in the directory. It returns the
// first violation found, or nil; tests call it after churn.
func (c *Cluster) CheckConsistency() error {
	for id, locs := range c.directory {
		if len(locs) == 0 {
			return fmt.Errorf("cluster: %v has an empty directory entry", id)
		}
		for exec := range locs {
			e := c.executors[exec]
			if e.dead {
				return fmt.Errorf("cluster: %v listed on dead executor %d", id, exec)
			}
			if !e.Store.Contains(id) {
				return fmt.Errorf("cluster: %v listed on executor %d but not cached there", id, exec)
			}
		}
	}
	for _, e := range c.executors {
		if e.dead {
			if e.Store.Len() != 0 {
				return fmt.Errorf("cluster: dead executor %d still holds %d blocks", e.ID, e.Store.Len())
			}
			continue
		}
		for _, id := range e.Store.Blocks() {
			if !c.directory[id][e.ID] {
				return fmt.Errorf("cluster: executor %d holds %v missing from directory", e.ID, id)
			}
		}
		if e.busy < 0 || e.busy > e.Slots {
			return fmt.Errorf("cluster: executor %d busy=%d of %d slots", e.ID, e.busy, e.Slots)
		}
	}
	return nil
}

// UniqueRDDsCached reports how many distinct RDDs have at least one block in
// the executor's cache; the MCF scheduler uses a namespace-aware variant via
// the provided key function: blocks mapping to the same key count once, and
// blocks with key "" are ignored.
func (c *Cluster) UniqueKeysCached(exec int, keyOf func(BlockID) string) int {
	e := c.executors[exec]
	if e.dead {
		return 0
	}
	seen := make(map[string]bool)
	for _, id := range e.Store.Blocks() {
		k := keyOf(id)
		if k != "" {
			seen[k] = true
		}
	}
	return len(seen)
}
