package journal

import (
	"bytes"
	"testing"
)

func sample() []Record {
	return []Record{
		{Kind: KindNamespace, A: 8, S: "users"},
		{Kind: KindGroupSplit, A: 1, B: 2, C: 3, D: 4, S: "users"},
		{Kind: KindGroupMerge, A: 2, B: 3, C: 1, S: "users"},
		{Kind: KindMapOutput, A: 7, B: 11, C: 12, D: 6},
		{Kind: KindCheckpoint, A: 42},
		{Kind: KindJobSubmit, A: 9},
		{Kind: KindJobComplete, A: 9},
		{Kind: KindBlacklist, A: 3, B: 1_500_000_000},
		{Kind: KindUnblacklist, A: 3},
		{Kind: KindStreamIngest, A: 5, B: 77, S: "clicks"},
		{Kind: KindStreamEvict, A: 1, S: "clicks"},
		{Kind: KindRDDTrack, A: 77, S: "users"},
		{Kind: KindMapOutput, A: -1, B: -9223372036854775808, C: 9223372036854775807},
		{Kind: KindNamespace, S: ""},
	}
}

func TestRoundTrip(t *testing.T) {
	var l Log
	want := sample()
	for _, r := range want {
		l.Append(r)
	}
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	got, torn := Replay(l.Bytes())
	if torn != 0 {
		t.Fatalf("torn = %d on intact log", torn)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTail tears every possible suffix length off a multi-record log
// and checks that replay recovers exactly the records whose frames are
// fully intact, reporting the remainder as torn bytes.
func TestTornTail(t *testing.T) {
	recs := sample()
	var full Log
	var frameEnds []int
	for _, r := range recs {
		full.Append(r)
		frameEnds = append(frameEnds, full.Size())
	}
	total := full.Size()
	for tear := 0; tear <= total; tear++ {
		var l Log
		for _, r := range recs {
			l.Append(r)
		}
		l.TearTail(tear)
		got, torn := l.ReplayLog()
		// Count how many complete frames survive the tear.
		intact := 0
		for _, end := range frameEnds {
			if end <= total-tear {
				intact++
			}
		}
		if len(got) != intact {
			t.Fatalf("tear %d: replayed %d records, want %d", tear, len(got), intact)
		}
		for i := 0; i < intact; i++ {
			if got[i] != recs[i] {
				t.Fatalf("tear %d: record %d mismatch", tear, i)
			}
		}
		if torn != total-tear-frameEnds2(frameEnds, intact) {
			t.Fatalf("tear %d: torn = %d, want %d", tear, torn, total-tear-frameEnds2(frameEnds, intact))
		}
		// After ReplayLog the stream must be fully parseable again.
		again, torn2 := Replay(l.Bytes())
		if torn2 != 0 || len(again) != intact {
			t.Fatalf("tear %d: post-truncation replay torn=%d records=%d", tear, torn2, len(again))
		}
	}
}

func frameEnds2(ends []int, intact int) int {
	if intact == 0 {
		return 0
	}
	return ends[intact-1]
}

// TestCorruptTail flips a byte in the final frame's checksum region and
// verifies only that frame is lost.
func TestCorruptTail(t *testing.T) {
	var l Log
	recs := sample()
	for _, r := range recs {
		l.Append(r)
	}
	b := l.Bytes()
	b[len(b)-1] ^= 0xff
	got, torn := Replay(b)
	if len(got) != len(recs)-1 {
		t.Fatalf("replayed %d records after corrupt tail, want %d", len(got), len(recs)-1)
	}
	if torn == 0 {
		t.Fatal("corrupt tail reported zero torn bytes")
	}
}

func TestResetAndTearAll(t *testing.T) {
	var l Log
	l.Append(Record{Kind: KindCheckpoint, A: 1})
	l.TearTail(l.Size() + 100)
	if got, torn := Replay(l.Bytes()); len(got) != 0 || torn != 0 {
		t.Fatalf("full tear: records=%d torn=%d", len(got), torn)
	}
	l.Append(Record{Kind: KindCheckpoint, A: 2})
	l.Reset()
	if l.Size() != 0 || l.Len() != 0 {
		t.Fatal("Reset left residue")
	}
}

// FuzzReplay feeds arbitrary byte streams to Replay: it must never panic,
// report torn bytes within bounds, and — after truncating the reported
// tail — the surviving prefix must replay identically and cleanly
// (idempotent recovery).
func FuzzReplay(f *testing.F) {
	var seedLog Log
	for _, r := range sample() {
		seedLog.Append(r)
	}
	f.Add(seedLog.Bytes())
	f.Add(seedLog.Bytes()[:seedLog.Size()-3])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn := Replay(data)
		if torn < 0 || torn > len(data) {
			t.Fatalf("torn = %d out of range [0,%d]", torn, len(data))
		}
		prefix := data[:len(data)-torn]
		again, torn2 := Replay(prefix)
		if torn2 != 0 {
			t.Fatalf("prefix still torn after truncation: %d", torn2)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix replay gave %d records, want %d", len(again), len(recs))
		}
		// Re-encoding the recovered records must replay to the same list.
		var l Log
		for _, r := range recs {
			l.Append(r)
		}
		if !bytes.Equal(l.Bytes(), prefix) {
			// Not required byte-identical (encoding is canonical, so it is
			// unless the input used a non-canonical varint); records must
			// still match.
			round, torn3 := Replay(l.Bytes())
			if torn3 != 0 || len(round) != len(recs) {
				t.Fatalf("re-encoded log does not replay: torn=%d n=%d", torn3, len(round))
			}
			for i := range recs {
				if round[i] != recs[i] {
					t.Fatalf("re-encoded record %d mismatch", i)
				}
			}
		}
	})
}

// sinkCloser is an in-memory durable sink with fault and accounting knobs.
type sinkCloser struct {
	bytes.Buffer
	closes  int
	failAll bool
}

func (s *sinkCloser) Write(p []byte) (int, error) {
	if s.failAll {
		return 0, errFull
	}
	return s.Buffer.Write(p)
}

func (s *sinkCloser) Close() error {
	s.closes++
	return nil
}

var errFull = errorString("sink full")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestSinkMirrorsFrames: every Append is mirrored to the sink byte-for-byte,
// so the durable copy replays exactly like the in-memory log.
func TestSinkMirrorsFrames(t *testing.T) {
	var l Log
	sink := &sinkCloser{}
	l.SetSink(sink)
	for _, r := range sample() {
		l.Append(r)
	}
	if !bytes.Equal(sink.Bytes(), l.Bytes()) {
		t.Fatalf("sink copy (%d bytes) differs from log buffer (%d bytes)",
			sink.Len(), l.Size())
	}
	var replay Log
	replay.buf = append([]byte(nil), sink.Bytes()...)
	recs, torn := replay.ReplayLog()
	if torn != 0 || len(recs) != len(sample()) {
		t.Fatalf("sink copy replays %d records (torn=%d), want %d", len(recs), torn, len(sample()))
	}
}

// TestCloseIdempotentAndLateAppends: Close closes the sink exactly once;
// repeat Closes return the same error; appends after Close still land in
// the in-memory log (crash simulation reads it) but never touch the closed
// sink.
func TestCloseIdempotentAndLateAppends(t *testing.T) {
	var l Log
	sink := &sinkCloser{}
	l.SetSink(sink)
	l.Append(Record{Kind: KindJobSubmit, A: 1})
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
	before := sink.Len()
	l.Append(Record{Kind: KindJobComplete, A: 1})
	if sink.Len() != before {
		t.Fatal("append after Close reached the closed sink")
	}
	if l.Len() != 2 {
		t.Fatalf("in-memory log lost the post-close append (len=%d)", l.Len())
	}
}

// TestSinkWriteErrorLatched: the first sink write error stops further
// mirroring and surfaces, wrapped, from Close — idempotently.
func TestSinkWriteErrorLatched(t *testing.T) {
	var l Log
	sink := &sinkCloser{failAll: true}
	l.SetSink(sink)
	l.Append(Record{Kind: KindJobSubmit, A: 1})
	l.Append(Record{Kind: KindJobSubmit, A: 2})
	err := l.Close()
	if err == nil {
		t.Fatal("Close swallowed the sink write error")
	}
	if again := l.Close(); again != err {
		t.Fatalf("repeat Close returned %v, want latched %v", again, err)
	}
	if l.Len() != 2 {
		t.Fatalf("in-memory log dropped records on sink failure (len=%d)", l.Len())
	}
}

// TestCloseWithoutSink: a sink-less log (the default in-memory setup every
// engine test uses) closes cleanly any number of times.
func TestCloseWithoutSink(t *testing.T) {
	var l Log
	l.Append(Record{Kind: KindJobSubmit, A: 1})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
}
