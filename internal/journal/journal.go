// Package journal implements the driver's write-ahead log: an in-memory-
// simulated, length-prefixed, checksummed record stream the engine appends
// to at commit points and replays after a driver crash to rebuild control-
// plane state. The encoding mirrors the block framing used elsewhere in the
// simulator: each frame is a 4-byte little-endian payload length, the
// payload, and an 8-byte FNV-64a checksum of the payload. A torn tail — a
// crash mid-append leaving a truncated or corrupt final frame — is detected
// on replay and truncated cleanly; every frame before it is recovered.
//
// The journal is deterministic and virtual-time-free: records carry only
// the integers and names the engine hands them, replay walks frames in
// append order, and nothing here consults a clock or iterates a map.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Kind identifies a journal record type.
type Kind uint8

// The record catalog. Each kind's payload fields A-D and S are documented
// where the engine appends it; DESIGN.md section 12 has the full table.
const (
	// KindNamespace records RegisterNamespace: S=namespace, A=initialGroups.
	KindNamespace Kind = iota + 1
	// KindGroupSplit records a Group Tree split: S=namespace, A=parent
	// group/unit, B=left child, C=right child, D=executor assigned the new
	// right unit.
	KindGroupSplit
	// KindGroupMerge records a Group Tree merge: S=namespace, A=left unit,
	// B=right unit, C=merged unit.
	KindGroupMerge
	// KindMapOutput records an accepted map-output commit: A=shuffle ID,
	// B=map partition, C=numMaps, D=numReduces.
	KindMapOutput
	// KindCheckpoint records a completed checkpoint: A=RDD ID.
	KindCheckpoint
	// KindJobSubmit records a job submission: A=job ID.
	KindJobSubmit
	// KindJobComplete records a job completion: A=job ID.
	KindJobComplete
	// KindBlacklist records an executor entering probation: A=executor,
	// B=until (virtual nanoseconds).
	KindBlacklist
	// KindUnblacklist records an executor leaving probation: A=executor.
	KindUnblacklist
	// KindStreamIngest records a stream step's RDD: S=stream name, A=step,
	// B=RDD ID.
	KindStreamIngest
	// KindStreamEvict records a stream step leaving the retention window:
	// S=stream name, A=step.
	KindStreamEvict
	// KindRDDTrack records TrackNamespaceRDD: S=namespace, A=RDD ID.
	KindRDDTrack
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNamespace:
		return "namespace"
	case KindGroupSplit:
		return "group-split"
	case KindGroupMerge:
		return "group-merge"
	case KindMapOutput:
		return "map-output"
	case KindCheckpoint:
		return "checkpoint"
	case KindJobSubmit:
		return "job-submit"
	case KindJobComplete:
		return "job-complete"
	case KindBlacklist:
		return "blacklist"
	case KindUnblacklist:
		return "unblacklist"
	case KindStreamIngest:
		return "stream-ingest"
	case KindStreamEvict:
		return "stream-evict"
	case KindRDDTrack:
		return "rdd-track"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one journal entry: a kind, four integer operands, and an
// optional string (namespace or stream name). Unused operands are zero.
type Record struct {
	Kind Kind
	A    int64
	B    int64
	C    int64
	D    int64
	S    string
}

// maxPayload bounds a single frame; replay treats larger declared lengths
// as corruption rather than allocating unboundedly.
const maxPayload = 1 << 20

// encode serializes the record payload (without framing): kind byte, four
// varint operands, then the string bytes.
func (r Record) encode() []byte {
	buf := make([]byte, 0, 1+4*binary.MaxVarintLen64+len(r.S))
	buf = append(buf, byte(r.Kind))
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range [4]int64{r.A, r.B, r.C, r.D} {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	buf = append(buf, r.S...)
	return buf
}

// decodePayload parses an encoded payload back into a Record.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 1 {
		return Record{}, fmt.Errorf("journal: empty payload")
	}
	r := Record{Kind: Kind(p[0])}
	rest := p[1:]
	for i := 0; i < 4; i++ {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("journal: truncated operand %d", i)
		}
		switch i {
		case 0:
			r.A = v
		case 1:
			r.B = v
		case 2:
			r.C = v
		case 3:
			r.D = v
		}
		rest = rest[n:]
	}
	r.S = string(rest)
	return r, nil
}

func checksum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// Log is the write-ahead journal: an append-only byte buffer of framed
// records, optionally mirrored to a durable sink. The zero value is an
// empty, ready-to-use log.
type Log struct {
	buf  []byte
	recs int

	// Durable-sink mirroring: when set, every framed byte appended to the
	// in-memory buffer is also written to sink. The first write error is
	// latched in sinkErr; Close closes the sink exactly once.
	sink       io.WriteCloser
	sinkClosed bool
	sinkErr    error
}

// SetSink attaches a durable sink: every subsequently appended frame is
// mirrored to w, and Close closes it. Passing nil detaches without closing.
func (l *Log) SetSink(w io.WriteCloser) {
	l.sink = w
	l.sinkClosed = false
	l.sinkErr = nil
}

// Append frames and appends one record.
func (l *Log) Append(r Record) {
	payload := r.encode()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	start := len(l.buf)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], checksum(payload))
	l.buf = append(l.buf, sum[:]...)
	l.recs++
	if l.sink != nil && !l.sinkClosed && l.sinkErr == nil {
		if _, err := l.sink.Write(l.buf[start:]); err != nil {
			l.sinkErr = fmt.Errorf("journal: sink write: %w", err)
		}
	}
}

// Close releases the durable sink, if any. It is idempotent: the first call
// closes the sink exactly once and latches the result (preferring an earlier
// latched write error); every later call returns that same result without
// touching the sink again. A sink-less log closes to nil.
func (l *Log) Close() error {
	if l.sinkClosed {
		return l.sinkErr
	}
	l.sinkClosed = true
	if l.sink == nil {
		return l.sinkErr
	}
	if err := l.sink.Close(); err != nil && l.sinkErr == nil {
		l.sinkErr = fmt.Errorf("journal: sink close: %w", err)
	}
	return l.sinkErr
}

// Len returns the number of appended records (before any tearing).
func (l *Log) Len() int { return l.recs }

// Size returns the byte length of the log.
func (l *Log) Size() int { return len(l.buf) }

// Bytes returns the raw log contents. The slice aliases the log's buffer.
func (l *Log) Bytes() []byte { return l.buf }

// TearTail simulates a crash mid-append by removing the final n bytes,
// leaving a truncated (torn) last frame for replay to detect. Tearing more
// bytes than the log holds empties it.
func (l *Log) TearTail(n int) {
	if n <= 0 {
		return
	}
	if n >= len(l.buf) {
		l.buf = l.buf[:0]
		return
	}
	l.buf = l.buf[:len(l.buf)-n]
}

// Reset empties the log.
func (l *Log) Reset() {
	l.buf = l.buf[:0]
	l.recs = 0
}

// Replay parses the framed byte stream and returns every intact record in
// append order plus the number of torn tail bytes discarded. A frame with a
// short header, short body, implausible length, undecodable payload, or
// checksum mismatch ends the replay: it and everything after it are the
// torn tail. Replay never fails — a corrupt tail is truncated, not an
// error — matching the crash-consistency contract that the journal prefix
// up to the last fully flushed frame is always recoverable.
func Replay(data []byte) (recs []Record, tornBytes int) {
	off := 0
	for off < len(data) {
		if len(data)-off < 4 {
			return recs, len(data) - off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n < 1 || n > maxPayload || len(data)-off-4 < n+8 {
			return recs, len(data) - off
		}
		payload := data[off+4 : off+4+n]
		sum := binary.LittleEndian.Uint64(data[off+4+n : off+4+n+8])
		if checksum(payload) != sum {
			return recs, len(data) - off
		}
		r, err := decodePayload(payload)
		if err != nil {
			return recs, len(data) - off
		}
		recs = append(recs, r)
		off += 4 + n + 8
	}
	return recs, 0
}

// ReplayLog replays the log's own buffer and truncates any torn tail it
// finds, returning the intact records and the torn byte count. After the
// call the log's byte stream is fully parseable.
func (l *Log) ReplayLog() (recs []Record, tornBytes int) {
	recs, torn := Replay(l.buf)
	if torn > 0 {
		l.buf = l.buf[:len(l.buf)-torn]
	}
	l.recs = len(recs)
	return recs, torn
}
