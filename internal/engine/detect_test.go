package engine

import (
	"testing"
	"time"

	"stark/internal/config"
	netsim "stark/internal/net"
	"stark/internal/partition"
)

// hbConfig is testConfig with heartbeat detection on tight timeouts and a
// small-but-nonzero control-network latency.
func hbConfig() Config {
	cfg := testConfig()
	cfg.Network = netsim.Config{BaseDelay: 50 * time.Microsecond}
	cfg.Heartbeat = config.Heartbeat{
		Enabled:      true,
		Interval:     2 * time.Millisecond,
		SuspectAfter: 6 * time.Millisecond,
		DeadAfter:    15 * time.Millisecond,
	}
	return cfg
}

// TestPartitionHealRejoinNewEpoch is the partition round-trip contract: a
// partitioned executor is declared dead on missed heartbeats (bumping its
// epoch and resubmitting its tasks), its late results are rejected as
// stale, and after the partition heals its next heartbeat rejoins it —
// schedulable again, under the new epoch — while every job's result stays
// correct.
func TestPartitionHealRejoinNewEpoch(t *testing.T) {
	e := New(hbConfig())
	epoch0 := e.ExecutorEpoch(2)
	e.Loop().At(time.Millisecond, func() { e.PartitionExecutor(2) })
	e.Loop().At(40*time.Millisecond, func() { e.HealExecutor(2) })

	g := e.Graph()
	src := g.Source("src", dataset(4000, 16), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(16))
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("count under partition: %v", err)
	}
	if n != 4000 {
		t.Fatalf("count = %d, want 4000", n)
	}

	rec := e.Recovery()
	if rec.DeadDeclarations == 0 {
		t.Fatal("partitioned executor was never declared dead")
	}
	if rec.Suspicions == 0 {
		t.Fatal("no suspicion preceded the dead declaration")
	}
	if e.ExecutorEpoch(2) <= epoch0 {
		t.Fatalf("epoch = %d, want > %d after dead declaration", e.ExecutorEpoch(2), epoch0)
	}
	if d := rec.MaxDetectionDelay(); d < hbConfig().Heartbeat.DeadAfter {
		t.Fatalf("detection delay %v below DeadAfter %v", d, hbConfig().Heartbeat.DeadAfter)
	}
	if rec.StaleEpochRejections == 0 {
		t.Fatal("no stale-epoch result was rejected — the old incarnation's results went unfenced")
	}
	epochDead := e.ExecutorEpoch(2)

	// A second job restarts the heartbeat plane; the healed executor's first
	// beat rejoins it under the (new) epoch and it serves tasks again.
	n2, jm, err := e.Count(pb)
	if err != nil {
		t.Fatalf("post-heal count: %v", err)
	}
	if n2 != 4000 {
		t.Fatalf("post-heal count = %d, want 4000", n2)
	}
	rec = e.Recovery()
	if rec.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", rec.Rejoins)
	}
	if got := e.ExecutorView(2); got != "alive" {
		t.Fatalf("view = %q after heal+rejoin, want alive", got)
	}
	if e.ExecutorEpoch(2) < epochDead {
		t.Fatalf("epoch went backwards: %d < %d", e.ExecutorEpoch(2), epochDead)
	}
	if !e.schedulable(2) {
		t.Fatal("rejoined executor must be schedulable")
	}
	served := false
	for _, tm := range jm.Tasks {
		if tm.Executor == 2 {
			served = true
		}
	}
	if !served {
		t.Fatal("rejoined executor served no tasks in the post-heal job")
	}
}

// TestTransientPartitionOnlySuspects: a partition shorter than DeadAfter
// causes a suspicion that the next heartbeat clears — no dead declaration,
// no task resubmission, correct results.
func TestTransientPartitionOnlySuspects(t *testing.T) {
	e := New(hbConfig())
	e.Loop().At(time.Millisecond, func() { e.PartitionExecutor(2) })
	e.Loop().At(10*time.Millisecond, func() { e.HealExecutor(2) })
	g := e.Graph()
	src := g.Source("src", dataset(4000, 16), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(16))
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if n != 4000 {
		t.Fatalf("count = %d, want 4000", n)
	}
	rec := e.Recovery()
	if rec.Suspicions == 0 {
		t.Fatal("an 9ms silence must trip the 6ms suspicion window")
	}
	if rec.SuspicionsCleared == 0 {
		t.Fatal("the post-heal heartbeat never cleared the suspicion")
	}
	if rec.DeadDeclarations != 0 {
		t.Fatalf("dead declarations = %d, want 0 for a transient partition", rec.DeadDeclarations)
	}
	if got := e.ExecutorView(2); got != "alive" {
		t.Fatalf("view = %q, want alive", got)
	}
}

// TestCrashDetectedByMissedHeartbeats: with detection on, a crash is NOT
// handled omnisciently — the driver only reacts once DeadAfter of silence
// has elapsed, so the measured recovery delay includes detection latency.
// The restarted process announces itself with a new incarnation and rejoins
// under a fresh epoch.
func TestCrashDetectedByMissedHeartbeats(t *testing.T) {
	e := New(hbConfig())
	inc0 := e.Cluster().Executor(2).Incarnation()
	e.Loop().At(time.Millisecond, func() { e.KillExecutor(2) })
	e.Loop().At(40*time.Millisecond, func() { e.RestartExecutor(2) })
	g := e.Graph()
	src := g.Source("src", dataset(4000, 16), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(16))
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("count across crash: %v", err)
	}
	if n != 4000 {
		t.Fatalf("count = %d, want 4000", n)
	}
	rec := e.Recovery()
	if rec.DeadDeclarations == 0 {
		t.Fatal("crashed executor was never declared dead via heartbeats")
	}
	if len(rec.RecoveryDelays) == 0 {
		t.Fatal("no recovery delay measured")
	}
	if d := rec.MaxRecoveryDelay(); d < hbConfig().Heartbeat.DeadAfter {
		t.Fatalf("recovery delay %v must include the %v detection window",
			d, hbConfig().Heartbeat.DeadAfter)
	}
	if got := e.Cluster().Executor(2).Incarnation(); got != inc0+1 {
		t.Fatalf("incarnation = %d, want %d after restart", got, inc0+1)
	}
}
