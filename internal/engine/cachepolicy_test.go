package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"stark/internal/fault"
	"stark/internal/partition"
	"stark/internal/record"
)

// stormConfig is nsConfig with a cache small enough that loading a stream
// of namespace datasets forces continuous policy evictions.
func stormConfig() Config {
	cfg := nsConfig()
	cfg.Cluster.MemoryPerExecutor = 24 << 10
	return cfg
}

// TestEvictionStormDereplicates drives a forced-eviction storm through a
// registered namespace and checks the two invariants onEvictions maintains:
// the block directory stays consistent, and the locality manager lists a
// replica only on executors that still cache at least one block of the
// unit. The two policies degrade differently — LRU evicts stale datasets,
// while the DAG policy refuses the puts outright because co-locality
// concentrates a unit's peer blocks on one executor and the put's own
// pinned peer group is the only victim pool there — and the invariants
// must hold either way.
func TestEvictionStormDereplicates(t *testing.T) {
	for _, policy := range []string{"lru", "dag"} {
		t.Run(policy, func(t *testing.T) {
			cfg := stormConfig()
			cfg.CachePolicy = policy
			e := New(cfg)
			g := e.Graph()
			p := partition.NewHash(4)
			const ns = "storm"
			if err := e.RegisterNamespace(ns, p, 1); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				src := g.Source(fmt.Sprintf("src%d", i), dataset(200, 2), true)
				lp := g.LocalityPartitionBy(src, fmt.Sprintf("lp%d", i), p, ns)
				lp.CacheFlag = true
				e.TrackNamespaceRDD(lp)
				if _, _, err := e.Count(lp); err != nil {
					t.Fatal(err)
				}
			}
			switch policy {
			case "lru":
				if len(e.evictedEver) == 0 {
					t.Fatal("no evictions occurred; the storm no longer stresses the cache")
				}
			case "dag":
				if cs := e.CacheStats(); cs.PinnedEvictionsBlocked == 0 {
					t.Fatalf("no pinned-group refusals under dag policy (stats %v); the storm no longer stresses the cache", cs)
				}
				if len(e.evictedEver) != 0 {
					t.Errorf("dag policy evicted %d blocks from pinned peer groups", len(e.evictedEver))
				}
			}
			if err := e.Cluster().CheckConsistency(); err != nil {
				t.Fatalf("block directory inconsistent after eviction storm: %v", err)
			}
			for unit := 0; unit < p.NumPartitions(); unit++ {
				for _, exec := range e.Locality().Preferred(ns, unit) {
					if !e.unitCachedOn(ns, unit, exec) {
						t.Errorf("unit %d lists replica on executor %d but caches no block there", unit, exec)
					}
				}
			}
		})
	}
}

// TestCacheStatsRaceSafe reads the CacheStats and RecoveryStats snapshots
// from a second goroutine while the engine runs an eviction-heavy workload,
// so `go test -race -cpu 1,4` can catch any unsynchronized counter access.
func TestCacheStatsRaceSafe(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.MemoryPerExecutor = 24 << 10
	cfg.CachePolicy = "dag"
	e := New(cfg)
	g := e.Graph()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = e.CacheStats()
				_ = e.Recovery()
			}
		}
	}()

	for i := 0; i < 8; i++ {
		src := g.Source(fmt.Sprintf("src%d", i), dataset(200, 4), true)
		m := g.Map(src, fmt.Sprintf("m%d", i), false, func(r record.Record) record.Record { return r })
		m.CacheFlag = true
		if _, _, err := e.Count(m); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if e.CacheStats().Policy != "dag" {
		t.Fatalf("cache stats policy = %q, want dag", e.CacheStats().Policy)
	}
}

// oomSchedule opens a full-run zero-capacity pressure window plus an OOM
// window on executor 1: every cached put there fails its task with ErrOOM
// until the blacklist moves the work elsewhere.
func oomSchedule() fault.Schedule {
	return fault.Schedule{
		MemPressures: []fault.MemPressure{
			{At: time.Microsecond, For: 10 * time.Second, Executor: 1, Factor: 0},
		},
		ExecutorOOMs: []fault.ExecutorOOM{
			{At: time.Microsecond, For: 10 * time.Second, Executor: 1},
		},
	}
}

// oomRun executes a cached workload under the OOM schedule and returns the
// observable outcome.
func oomRun(t *testing.T) (int64, time.Duration, string) {
	t.Helper()
	cfg := testConfig()
	cfg.Faults = oomSchedule()
	cfg.Recovery.MaxTaskRetries = 10
	e := New(cfg)
	g := e.Graph()
	// Warmup advances virtual time past the window open (plane effects
	// apply at dispatch time, so tasks dispatched at t=0 would precede it).
	if _, _, err := e.Count(g.Source("warm", dataset(40, 4), true)); err != nil {
		t.Fatal(err)
	}
	src := g.Source("src", dataset(400, 8), true)
	m := g.Map(src, "m", false, func(r record.Record) record.Record { return r })
	m.CacheFlag = true
	n, _, err := e.Count(m)
	if err != nil {
		t.Fatalf("job under ExecutorOOM did not recover: %v", err)
	}
	// Second job re-reads the cache so recovered blocks are exercised.
	n2, _, err := e.Count(m)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("cached re-read count = %d, want %d", n2, n)
	}
	cs := e.CacheStats()
	if cs.OOMTaskFailures == 0 {
		t.Fatal("no OOM task failures recorded; the fault window missed every put")
	}
	rec := e.Recovery()
	if rec.TaskRetries == 0 {
		t.Fatal("OOM-failed tasks were never retried")
	}
	return n, e.Now(), fmt.Sprintf("%v|%v", cs, rec)
}

// TestExecutorOOMRecoversDeterministically checks both halves of the
// mem-pressure contract: an OOM-failed task recovers through the normal
// retry/blacklist path with correct results, and two identical runs are
// bit-identical in results, virtual time, and every counter.
func TestExecutorOOMRecoversDeterministically(t *testing.T) {
	n1, end1, sig1 := oomRun(t)
	n2, end2, sig2 := oomRun(t)
	if n1 != 400 {
		t.Fatalf("count = %d, want 400", n1)
	}
	if n1 != n2 || end1 != end2 || sig1 != sig2 {
		t.Fatalf("nondeterministic OOM recovery:\nrun1: n=%d end=%v %s\nrun2: n=%d end=%v %s",
			n1, end1, sig1, n2, end2, sig2)
	}
}
