package engine

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"stark/internal/fault"
	"stark/internal/partition"
	"stark/internal/record"
)

// driverTestConfig is testConfig with the driver fault domain armed.
func driverTestConfig() Config {
	cfg := testConfig()
	cfg.DriverRecovery = true
	return cfg
}

// TestDriverCrashRestartResumesJob: the driver crashes mid-job (tearing a
// few bytes off the journal) and restarts shortly after; the job completes
// with exactly the fault-free result and the recovery counters record one
// crash, one restart, and a replayed journal.
func TestDriverCrashRestartResumesJob(t *testing.T) {
	// Fault-free baseline fixes the expected result and the virtual makespan.
	base := New(driverTestConfig())
	g := base.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	want, m, err := base.Collect(pb)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	horizon := m.Finished
	if horizon <= 0 {
		t.Fatal("baseline produced no makespan")
	}

	for _, tear := range []int{0, 7, 512} {
		cfg := driverTestConfig()
		cfg.Faults = fault.Schedule{DriverCrashes: []fault.DriverCrash{{
			At:           horizon / 3,
			RestartAfter: 2 * time.Millisecond,
			TearTail:     tear,
		}}}
		e := New(cfg)
		g := e.Graph()
		src := g.Source("src", dataset(400, 8), true)
		pb := g.PartitionBy(src, "pb", partition.NewHash(8))
		got, _, err := e.Collect(pb)
		if err != nil {
			t.Fatalf("tear %d: crashed run: %v", tear, err)
		}
		sortRecs(got)
		sortRecs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tear %d: crashed-run result diverged from fault-free baseline", tear)
		}
		rec := e.Recovery()
		if rec.DriverCrashes != 1 || rec.DriverRestarts != 1 {
			t.Fatalf("tear %d: crash/restart = %d/%d, want 1/1", tear, rec.DriverCrashes, rec.DriverRestarts)
		}
		if tear > 0 && rec.JournalTornTails == 0 && rec.JournalRecordsReplayed > 0 {
			// A tear smaller than the journal suffix written by crash time
			// must be detected; a tear of 0 must not be.
			t.Fatalf("tear %d: no torn tail recorded (replayed=%d)", tear, rec.JournalRecordsReplayed)
		}
		if len(rec.RecoveryDelays) == 0 {
			t.Fatalf("tear %d: driver restart recorded no recovery delay", tear)
		}
	}
}

// TestDriverRestartIsDeterministic: two engines under the identical crash
// schedule produce byte-identical results and identical journal lengths.
func TestDriverRestartIsDeterministic(t *testing.T) {
	run := func() ([]record.Record, int) {
		cfg := driverTestConfig()
		cfg.Faults = fault.Schedule{DriverCrashes: []fault.DriverCrash{{
			At: 10 * time.Millisecond, RestartAfter: time.Millisecond, TearTail: 9,
		}}}
		e := New(cfg)
		g := e.Graph()
		src := g.Source("src", dataset(300, 6), true)
		pb := g.PartitionBy(src, "pb", partition.NewHash(6))
		out, _, err := e.Collect(pb)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		sortRecs(out)
		return out, e.JournalLen()
	}
	a, alen := run()
	b, blen := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical crash schedules produced different results")
	}
	if alen != blen {
		t.Fatalf("journal lengths diverged: %d vs %d", alen, blen)
	}
}

// TestDriverCrashBuffersSubmissions: a job submitted while the driver is
// down waits out the downtime and completes after the restart.
func TestDriverCrashBuffersSubmissions(t *testing.T) {
	e := New(driverTestConfig())
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))

	e.Loop().At(time.Millisecond, func() { e.CrashDriver(0) })
	e.Loop().At(5*time.Millisecond, func() { e.RestartDriver() })
	var n int64
	done := false
	e.Loop().At(2*time.Millisecond, func() {
		// The driver is down right now: the submission must buffer, not run.
		e.SubmitJob(pb, ActionCount, func(r JobResult) {
			n = r.Count
			done = true
		})
		if !e.DriverDown() {
			t.Error("driver expected down at submit time")
		}
	})
	e.Loop().Run()
	if !done {
		t.Fatal("buffered job never completed after restart")
	}
	if n != 200 {
		t.Fatalf("count = %d, want 200", n)
	}
	if rec := e.Recovery(); rec.DriverRestarts != 1 {
		t.Fatalf("restarts = %d, want 1", rec.DriverRestarts)
	}
}

// TestDriverRecoveryRebuildsNamespace: a crash wipes the LocalityManager and
// GroupManager; replay re-registers the namespace (partitioner re-supplied
// from the surviving client reference) and the block re-registration sweep
// re-admits the surviving executor caches, so post-restart jobs still
// schedule NODE_LOCAL on the cached copies.
func TestDriverRecoveryRebuildsNamespace(t *testing.T) {
	cfg := driverTestConfig()
	cfg.Features.CoLocality = true
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(8)
	if err := e.RegisterNamespace("ns", p, 1); err != nil {
		t.Fatalf("register: %v", err)
	}
	src := g.Source("src", dataset(400, 8), true)
	pb := g.LocalityPartitionBy(src, "pb", p, "ns")
	pb.CacheFlag = true
	e.TrackNamespaceRDD(pb)
	if _, err := e.Materialize(pb); err != nil {
		t.Fatalf("materialize: %v", err)
	}

	e.CrashDriver(0)
	e.RestartDriver()
	e.Loop().Run()

	// The namespace must be live again with replicas on the executors that
	// still cache its blocks.
	n, jm, err := e.Count(pb)
	if err != nil {
		t.Fatalf("post-restart count: %v", err)
	}
	if n != 400 {
		t.Fatalf("post-restart count = %d, want 400", n)
	}
	if jm.LocalityFraction() == 0 {
		t.Fatal("post-restart job ran with zero NODE_LOCAL tasks: cache sweep failed")
	}
}

// TestCrashDriverWithoutRecoveryPanics: arming a driver crash without
// WithDriverRecovery is a configuration error surfaced loudly.
func TestCrashDriverWithoutRecoveryPanics(t *testing.T) {
	e := New(testConfig())
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("CrashDriver on a journal-less engine did not panic")
		}
		if !strings.Contains(p.(string), "WithDriverRecovery") {
			t.Fatalf("panic %q does not name the missing option", p)
		}
	}()
	e.CrashDriver(0)
}

// TestHeartbeatValidation: a user-supplied death timeout at or below the
// suspicion timeout is a configuration error from Validate and a panic from
// New; omitted timeouts still default.
func TestHeartbeatValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Heartbeat.Enabled = true
	cfg.Heartbeat.Interval = 10 * time.Millisecond
	cfg.Heartbeat.SuspectAfter = 30 * time.Millisecond
	cfg.Heartbeat.DeadAfter = 30 * time.Millisecond // == SuspectAfter: invalid
	if err := Validate(cfg); err == nil {
		t.Fatal("Validate accepted DeadAfter == SuspectAfter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("New accepted DeadAfter == SuspectAfter")
			}
		}()
		New(cfg)
	}()

	cfg.Heartbeat.DeadAfter = 0 // defaulted: valid
	if err := Validate(cfg); err != nil {
		t.Fatalf("Validate rejected defaulted DeadAfter: %v", err)
	}
	cfg.Heartbeat.DeadAfter = 90 * time.Millisecond
	if err := Validate(cfg); err != nil {
		t.Fatalf("Validate rejected DeadAfter > SuspectAfter: %v", err)
	}
}

func sortRecs(rs []record.Record) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Key != rs[b].Key {
			return rs[a].Key < rs[b].Key
		}
		va, _ := rs[a].Value.(int64)
		vb, _ := rs[b].Value.(int64)
		return va < vb
	})
}

// TestReplaySubmitOrderDeterminism: a job is in flight at the crash (so it
// replays from the journal), two more are buffered during the downtime, and
// a fourth arrives at the restart instant — right after replay kicked off
// the recovered work. The recovery contract says resubmission preserves
// submit order: journaled jobs first (by id), then the downtime buffer in
// arrival order, then post-restart arrivals; with equally sized jobs the
// completion order must equal the submit order, and the whole interleaving
// must replay bit-identically run over run.
func TestReplaySubmitOrderDeterminism(t *testing.T) {
	type done struct {
		label string
		count int64
		at    time.Duration
	}
	run := func() []done {
		e := New(driverTestConfig())
		g := e.Graph()
		src := g.Source("src", dataset(400, 8), true)
		var out []done
		submit := func(label string, bucket int64) {
			f := g.Filter(src, label, func(r record.Record) bool {
				v, _ := record.AsInt64(r.Value)
				return v%4 == bucket
			})
			pb := g.PartitionBy(f, label+"-pb", partition.NewHash(8))
			e.SubmitJob(pb, ActionCount, func(r JobResult) {
				if r.Err != nil {
					t.Errorf("job %s: %v", label, r.Err)
				}
				out = append(out, done{label, r.Count, e.Now()})
			})
		}
		submit("A", 0) // in flight at the crash; recovered via journal replay
		e.Loop().At(time.Millisecond, func() { e.CrashDriver(0) })
		e.Loop().At(2*time.Millisecond, func() { submit("B", 1) }) // buffered
		e.Loop().At(3*time.Millisecond, func() { submit("C", 2) }) // buffered
		e.Loop().At(5*time.Millisecond, func() { e.RestartDriver() })
		// Same virtual instant as the restart, registered after it: the
		// submission lands mid-replay, while recovered work is dispatching.
		e.Loop().At(5*time.Millisecond, func() { submit("D", 3) })
		e.Loop().Run()
		if rec := e.Recovery(); rec.JournalRecordsReplayed == 0 {
			t.Error("restart replayed no journal records")
		}
		return out
	}

	first := run()
	if len(first) != 4 {
		t.Fatalf("completed %d jobs, want 4", len(first))
	}
	for i, want := range []string{"A", "B", "C", "D"} {
		if first[i].label != want {
			t.Fatalf("completion order %v does not preserve submit order (want A B C D)", first)
		}
	}
	for _, d := range first {
		if d.count != 100 {
			t.Fatalf("job %s count = %d, want 100", d.label, d.count)
		}
	}
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay not deterministic:\n  first:  %v\n  second: %v", first, second)
	}
}
