package engine

import (
	"fmt"
	"time"

	"stark/internal/metrics"
)

// TraceEvent is one structured scheduler event on the virtual timeline,
// emitted when a trace sink is installed (SetTracer). Event kinds:
//
//	job-submit, stage-start, task-launch, task-finish, job-finish,
//	executor-kill, executor-restart, checkpoint, replica-add, replica-drop
//
// Recovery-plane kinds:
//
//	task-fail, task-retry, task-resubmit, task-speculate,
//	task-speculate-win, task-speculate-lose, stage-resubmit,
//	executor-blacklist, executor-unblacklist, executor-straggle,
//	fault-block-loss, recovery-complete, job-fail, checkpoint-defer,
//	checkpoint-abort
type TraceEvent struct {
	At   time.Duration
	Kind string
	// Job/Stage/Task are -1 when not applicable.
	Job, Stage, Task int
	// Executor is -1 when not applicable.
	Executor int
	// Detail carries kind-specific context (RDD names, locality, units).
	Detail string
}

// String renders the event as a single log line.
func (ev TraceEvent) String() string {
	s := fmt.Sprintf("[%12v] %-16s", ev.At, ev.Kind)
	if ev.Job >= 0 {
		s += fmt.Sprintf(" job=%d", ev.Job)
	}
	if ev.Stage >= 0 {
		s += fmt.Sprintf(" stage=%d", ev.Stage)
	}
	if ev.Task >= 0 {
		s += fmt.Sprintf(" task=%d", ev.Task)
	}
	if ev.Executor >= 0 {
		s += fmt.Sprintf(" exec=%d", ev.Executor)
	}
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}

// SetTracer installs a trace sink; nil disables tracing. The sink is called
// synchronously from the event loop, so it must be cheap.
func (e *Engine) SetTracer(sink func(TraceEvent)) { e.tracer = sink }

func (e *Engine) trace(kind string, job, stage, taskID, exec int, detail string) {
	if e.tracer == nil {
		return
	}
	e.tracer(TraceEvent{
		At: e.loop.Now(), Kind: kind,
		Job: job, Stage: stage, Task: taskID, Executor: exec,
		Detail: detail,
	})
}

func (e *Engine) traceTaskLaunch(t *task, exec int, loc metrics.Locality) {
	if e.tracer == nil {
		return
	}
	e.trace("task-launch", t.sr.job.id, t.sr.st.ID, t.id, exec,
		fmt.Sprintf("rdd=%s parts=%d locality=%s", t.sr.st.Output.Name, len(t.partitions), loc))
}
