package engine

import (
	"testing"

	"stark/internal/partition"
	"stark/internal/record"
)

// BenchmarkEngineJob measures the full driver path: stage build, schedule,
// data plane, completion — one shuffle job per iteration.
func BenchmarkEngineJob(b *testing.B) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(1000, 8), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	if _, _, err := e.Count(pb); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := g.Filter(pb, "f", func(r record.Record) bool { return true })
		if _, _, err := e.Count(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine100kTasks pins the scheduler's fast path: a 20k-partition
// shuffle (40k tasks) must stay near linear.
func BenchmarkEngine100kTasks(b *testing.B) {
	benchmark100kTasks(b, 1)
}

// BenchmarkEngine100kTasksParallel runs the same workload with a 4-worker
// data plane; results and virtual time are identical, only wall clock moves
// (see plane.go). Compare against BenchmarkEngine100kTasks for the speedup.
func BenchmarkEngine100kTasksParallel(b *testing.B) {
	benchmark100kTasks(b, 4)
}

func benchmark100kTasks(b *testing.B, par int) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig()
		cfg.Cluster.NumExecutors = 8
		cfg.Cluster.SlotsPerExecutor = 4
		cfg.Execution.Parallelism = par
		e := New(cfg)
		g := e.Graph()
		src := g.Source("src", dataset(20000, 64), false)
		pb := g.PartitionBy(src, "pb", partition.NewHash(20000))
		if _, _, err := e.Count(pb); err != nil {
			b.Fatal(err)
		}
	}
}
