package engine

import (
	"fmt"

	"stark/internal/cluster"
	"stark/internal/group"
	"stark/internal/journal"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/replication"
)

// RegisterNamespace declares a locality namespace for RDDs created with
// rdd.Graph.LocalityPartitionBy: the LocalityManager pins the collection's
// partitions (or partition groups, in extendable mode) to executors. The
// partitioner fixes the collection's partition count; initialGroups sizes
// the Group Tree when extendable partitioning is enabled (both the
// partition count and initialGroups must then be powers of two).
// Registration is idempotent for an agreeing partitioner.
func (e *Engine) RegisterNamespace(ns string, p partition.Partitioner, initialGroups int) error {
	if !e.cfg.Features.CoLocality {
		// Without co-locality the namespace is inert; accept and ignore so
		// the same application code runs under every configuration.
		return nil
	}
	_, known := e.nsParts[ns]
	if err := e.registerNamespace(ns, p, initialGroups); err != nil {
		return err
	}
	if e.jrn != nil {
		// The partitioner is a client-side object: it cannot be serialized,
		// so the journal records the registration and the application's
		// re-registration call (or this retained reference) re-supplies the
		// closure at replay time.
		e.nsPartitioners[ns] = p
		if !known {
			e.journalAppend(journal.Record{Kind: journal.KindNamespace, S: ns, A: int64(initialGroups)})
		}
	}
	return nil
}

// TrackNamespaceRDD associates an RDD with its namespace for eviction and
// size bookkeeping. The graph-building layer calls it for every RDD whose
// namespace is active.
func (e *Engine) TrackNamespaceRDD(r *rdd.RDD) {
	if r.Namespace == "" {
		return
	}
	if e.trackNamespaceRDD(r) {
		e.journalAppend(journal.Record{Kind: journal.KindRDDTrack, S: r.Namespace, A: int64(r.ID)})
	}
}

// trackNamespaceRDD is the journal-free core of TrackNamespaceRDD; it
// reports whether the RDD was newly tracked.
func (e *Engine) trackNamespaceRDD(r *rdd.RDD) bool {
	if r.Namespace == "" {
		return false
	}
	for _, existing := range e.nsRDDs[r.Namespace] {
		if existing.ID == r.ID {
			return false
		}
	}
	e.nsRDDs[r.Namespace] = append(e.nsRDDs[r.Namespace], r)
	return true
}

// ReportRDD feeds a materialized RDD's partition sizes to the GroupManager
// (the paper's GroupManager.reportRDD API) and applies any threshold-
// triggered splits or merges, rewiring the LocalityManager accordingly.
// It returns the changes performed.
func (e *Engine) ReportRDD(r *rdd.RDD) ([]group.Change, error) {
	ns := r.Namespace
	if ns == "" {
		return nil, fmt.Errorf("engine: RDD %s has no namespace", r)
	}
	if !e.cfg.Features.Extendable || !e.grp.Registered(ns) {
		return nil, nil
	}
	if r.PartBytes == nil {
		return nil, fmt.Errorf("engine: RDD %s not materialized", r)
	}
	if err := e.grp.ReportRDD(ns, r.PartBytes); err != nil {
		return nil, err
	}
	changes, err := e.grp.Rebalance(ns)
	if err != nil {
		return nil, err
	}
	for _, ch := range changes {
		switch ch.Kind {
		case group.ChangeSplit:
			newExec := e.leastLoadedExecutor()
			if err := e.loc.ApplySplit(ns, ch.Before[0].ID, ch.After[0].ID, ch.After[1].ID, newExec); err != nil {
				return changes, err
			}
			e.journalAppend(journal.Record{Kind: journal.KindGroupSplit, S: ns,
				A: int64(ch.Before[0].ID), B: int64(ch.After[0].ID), C: int64(ch.After[1].ID), D: int64(newExec)})
		case group.ChangeMerge:
			if err := e.loc.ApplyMerge(ns, ch.Before[0].ID, ch.Before[1].ID, ch.After[0].ID); err != nil {
				return changes, err
			}
			e.journalAppend(journal.Record{Kind: journal.KindGroupMerge, S: ns,
				A: int64(ch.Before[0].ID), B: int64(ch.Before[1].ID), C: int64(ch.After[0].ID)})
		}
	}
	return changes, nil
}

// leastLoadedExecutor picks the live executor with the fewest locality
// assignments (ties broken by id), the target for newly split groups.
func (e *Engine) leastLoadedExecutor() int {
	loads := e.loc.AssignmentsPerExecutor()
	best := -1
	bestLoad := 0
	for _, id := range e.cl.AliveExecutors() {
		l := loads[id]
		if best == -1 || l < bestLoad {
			best = id
			bestLoad = l
		}
	}
	return best
}

// unitOf maps a block to its collection unit, or ok=false when the block's
// RDD is outside any active namespace.
func (e *Engine) unitOf(id cluster.BlockID) (ns string, unit int, ok bool) {
	r := e.graph.ByID(id.RDD)
	if r == nil || r.Namespace == "" {
		return "", 0, false
	}
	ns = r.Namespace
	if !e.loc.Registered(ns) {
		return "", 0, false
	}
	if e.cfg.Features.Extendable && e.grp.Registered(ns) {
		g, err := e.grp.GroupOf(ns, id.Partition)
		if err != nil {
			return "", 0, false
		}
		return ns, g.ID, true
	}
	return ns, id.Partition, true
}

// onEvictions de-replicates collection units whose last cached block on an
// executor was just evicted.
func (e *Engine) onEvictions(exec int, evicted []cluster.BlockID) {
	for _, id := range evicted {
		ns, unit, ok := e.unitOf(id)
		if !ok {
			continue
		}
		if e.unitCachedOn(ns, unit, exec) {
			continue
		}
		e.loc.RemoveReplica(ns, unit, exec)
		e.repl.Dropped(replication.UnitKey{Namespace: ns, Unit: unit})
	}
}

// unitCachedOn reports whether any RDD of the namespace still has a block
// of the unit cached on the executor.
func (e *Engine) unitCachedOn(ns string, unit, exec int) bool {
	parts := e.unitPartitions(ns, unit)
	for _, r := range e.nsRDDs[ns] {
		for _, p := range parts {
			if e.cl.CacheHas(exec, cluster.BlockID{RDD: r.ID, Partition: p}) {
				return true
			}
		}
	}
	return false
}

// unitPartitions expands a unit to its partition list.
func (e *Engine) unitPartitions(ns string, unit int) []int {
	if e.cfg.Features.Extendable && e.grp.Registered(ns) {
		g, err := e.grp.GroupOf(ns, unit)
		if err == nil && g.ID == unit {
			parts := make([]int, 0, g.Width())
			for p := g.Lo; p < g.Hi; p++ {
				parts = append(parts, p)
			}
			return parts
		}
	}
	return []int{unit}
}
