package engine

// Satellite contract for the plane's sequential fallback: exactly ONE fault
// knob — StorageErrorProb > 0 — forces the data plane sequential, because
// its per-operation RNG draws must happen in dispatch order. Every other
// fault kind is either scheduled at virtual times (draw-free during plane
// execution) or rolls on control-plane RNG streams, so the worker pool
// stays engaged and batch coarsening can never silently serialize chaos
// runs. This test pins that predicate.

import (
	"testing"
	"time"

	"stark/internal/fault"
)

func TestPoolEligibility(t *testing.T) {
	mk := func(s fault.Schedule, driverRecovery bool) *Engine {
		cfg := testConfig()
		cfg.Execution.Parallelism = 4
		cfg.Faults = s
		cfg.DriverRecovery = driverRecovery
		return New(cfg)
	}
	ms := time.Millisecond
	cases := []struct {
		name     string
		sched    fault.Schedule
		driver   bool
		wantPool bool
	}{
		{"no-faults", fault.Schedule{}, false, true},
		{"storage-error-prob", fault.Schedule{StorageErrorProb: 0.01}, false, false},
		{"crash", fault.Schedule{Crashes: []fault.Crash{{At: ms, Executor: 0, RestartAfter: ms}}}, false, true},
		{"straggler", fault.Schedule{Stragglers: []fault.Straggler{{At: ms, For: ms, Executor: 0, Factor: 3}}}, false, true},
		{"block-loss", fault.Schedule{BlockLoss: []fault.BlockLoss{{At: ms, Pick: 0}}}, false, true},
		{"block-corrupt", fault.Schedule{BlockCorrupt: []fault.BlockCorrupt{{At: ms, Pick: 0}}}, false, true},
		{"msg-drop", fault.Schedule{MsgDropProb: 0.5}, false, true},
		{"net-partition", fault.Schedule{Partitions: []fault.Partition{{At: ms, For: ms, Executor: 0}}}, false, true},
		{"net-delay", fault.Schedule{NetDelays: []fault.NetDelay{{At: ms, For: ms, Extra: ms}}}, false, true},
		{"driver-crash", fault.Schedule{DriverCrashes: []fault.DriverCrash{{At: ms, RestartAfter: ms}}}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := mk(tc.sched, tc.driver)
			if got := e.poolEligible(8); got != tc.wantPool {
				t.Fatalf("%s: poolEligible(8) = %v, want %v", tc.name, got, tc.wantPool)
			}
			// Regardless of faults, a single plane never pools.
			if e.poolEligible(1) {
				t.Fatalf("%s: single-plane batch must not pool", tc.name)
			}
		})
	}
	// Parallelism 1 never pools, even fault-free.
	cfg := testConfig()
	cfg.Execution.Parallelism = 1
	if New(cfg).poolEligible(8) {
		t.Fatal("parallelism 1 must not pool")
	}
}

// TestParallelMatchesSequentialWithoutFusion re-runs the byte-equality
// oracle with task-chunk fusion disabled, so the par-1-vs-N contract is
// pinned on both sides of the coarsening flag.
func TestParallelMatchesSequentialWithoutFusion(t *testing.T) {
	transcript := func(par int, seed int64) string {
		t.Helper()
		return parallelWorkloadTranscriptCfg(t, par, seed, fault.Schedule{}, true)
	}
	for seed := int64(0); seed < 3; seed++ {
		want := transcript(1, seed)
		if got := transcript(4, seed); got != want {
			t.Fatalf("seed %d: unfused parallel diverged from sequential:\n%s", seed, diffLine(want, got))
		}
	}
}

// TestFusionPreservesJobResults checks that coarsening only re-times the
// simulation's internals: the jobs' observable answers (counts, collected
// partitions) are identical with fusion on and off, fault-free.
func TestFusionPreservesJobResults(t *testing.T) {
	results := func(disableFusion bool) string {
		full := parallelWorkloadTranscriptCfg(t, 2, 9, fault.Schedule{}, disableFusion)
		// Keep only the job-result lines; stats and Gantt legitimately move
		// when batches coarsen.
		var out string
		for _, line := range splitLines(full) {
			if len(line) >= 4 && (line[:4] == "job " || line[:2] == "  ") {
				if len(line) >= 7 && line[:7] == "  task " {
					continue
				}
				out += line + "\n"
			}
		}
		return out
	}
	fused, unfused := results(false), results(true)
	if fused != unfused {
		t.Fatalf("fusion changed job results:\n%s", diffLine(unfused, fused))
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
