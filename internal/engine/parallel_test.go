package engine

// Two-clock determinism oracle: the data-plane worker pool must be
// invisible to the simulation. Every run here executes the same workload
// under parallelism 1 and parallelism N (same seed) and requires the full
// observable state — job results, collected records, engine stats,
// recovery metrics, and the per-task virtual-time Gantt — to be
// byte-identical, with and without chaos fault schedules. Run with
// -cpu 1,4 and -race in CI.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"stark/internal/fault"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

// parallelWorkloadTranscript builds a multi-stage workload (cached sources,
// narrow chains, shuffles, cogroup, join, sort), runs several jobs plus an
// executor kill/restart, and renders everything observable into one string.
func parallelWorkloadTranscript(t *testing.T, par int, seed int64, faults fault.Schedule) string {
	t.Helper()
	return parallelWorkloadTranscriptCfg(t, par, seed, faults, false)
}

// parallelWorkloadTranscriptCfg additionally exposes the event-fusion flag,
// so the oracle can pin byte-equality on both sides of batch coarsening.
func parallelWorkloadTranscriptCfg(t *testing.T, par int, seed int64, faults fault.Schedule, disableFusion bool) string {
	t.Helper()
	cfg := testConfig()
	cfg.Cluster.NumExecutors = 4
	cfg.Cluster.SlotsPerExecutor = 4
	cfg.Seed = seed
	cfg.Faults = faults
	cfg.Recovery.Speculation = true
	cfg.Execution.Parallelism = par
	cfg.Execution.DisableEventFusion = disableFusion
	e := New(cfg)
	g := e.Graph()

	mkParts := func(tag string, nParts, perPart int) [][]record.Record {
		parts := make([][]record.Record, nParts)
		for p := 0; p < nParts; p++ {
			for i := 0; i < perPart; i++ {
				k := fmt.Sprintf("%s-%03d", tag, (p*perPart+i*7)%97)
				parts[p] = append(parts[p], record.Pair(k, int64(p*1000+i)))
			}
		}
		return parts
	}

	var sb strings.Builder
	note := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	run := func(name string, final *rdd.RDD, action Action) {
		res, err := e.RunJob(final, action)
		note("job %s: count=%d err=%v", name, res.Count, err)
		for p, recs := range res.Partitions {
			if len(recs) > 0 {
				note("  part %d: %v", p, recs)
			}
		}
	}

	p8 := partition.NewHash(8)
	src1 := g.Source("src1", mkParts("a", 16, 40), true)
	src2 := g.Source("src2", mkParts("b", 16, 40), false)
	pb1 := g.PartitionBy(src1, "pb1", p8)
	pb1.CacheFlag = true
	rbk := g.ReduceByKey(src2, "rbk", p8, func(a, b any) any {
		x, _ := record.AsInt64(a)
		y, _ := record.AsInt64(b)
		return x + y
	})
	rbk.CacheFlag = true
	cg := g.CoGroup("cg", p8, pb1, rbk)
	jn := g.Join("join", p8, pb1, rbk)
	sorted := g.SortByKey(rbk, "sorted", []string{"b-020", "b-050", "b-080"}, 4)

	run("warm-pb1", pb1, ActionCount)
	run("cogroup", cg, ActionCollect)
	if faults.Empty() {
		// Deterministic manual churn when no schedule injects any.
		e.KillExecutor(1)
	}
	run("join", jn, ActionCount)
	if faults.Empty() {
		e.RestartExecutor(1)
	}
	run("sorted", sorted, ActionCollect)
	run("cogroup-again", cg, ActionCount)

	note("stats: %+v", e.Stats())
	note("recovery: %+v", e.Recovery())
	for _, jm := range e.CompletedJobs() {
		note("gantt job %d submitted=%v finished=%v", jm.JobID, jm.Submitted, jm.Finished)
		for _, tm := range jm.Tasks {
			note("  task %+v", tm)
		}
	}
	return sb.String()
}

func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  par1: %s\n  parN: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func TestParallelMatchesSequential(t *testing.T) {
	pars := []int{4, runtime.GOMAXPROCS(0)}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			want := parallelWorkloadTranscript(t, 1, seed, fault.Schedule{})
			for _, par := range pars {
				if par <= 1 {
					continue
				}
				got := parallelWorkloadTranscript(t, par, seed, fault.Schedule{})
				if got != want {
					t.Fatalf("parallelism %d diverged from sequential:\n%s", par, diffLine(want, got))
				}
			}
		})
	}
}

func TestParallelMatchesSequentialUnderChaos(t *testing.T) {
	const horizon = 2 * time.Second
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sched := fault.RandomSchedule(seed, horizon, 4)
			want := parallelWorkloadTranscript(t, 1, seed, sched)
			got := parallelWorkloadTranscript(t, 4, seed, sched)
			if got != want {
				t.Fatalf("chaos seed %d: parallel diverged from sequential:\n%s", seed, diffLine(want, got))
			}
		})
	}
}

// TestCowCheckDetectsSourceMutation proves the STARK_CHECK_COW debug mode
// turns a copy-on-write violation (caller mutating adopted source data)
// into a panic at materialization.
func TestCowCheckDetectsSourceMutation(t *testing.T) {
	prev := record.SetCowCheckForTesting(true)
	defer record.SetCowCheckForTesting(prev)

	e := New(testConfig())
	g := e.Graph()
	parts := [][]record.Record{
		{record.Pair("a", int64(1)), record.Pair("b", int64(2))},
		{record.Pair("c", int64(3))},
	}
	src := g.Source("src", parts, false)
	if _, _, err := e.Count(src); err != nil {
		t.Fatalf("clean count: %v", err)
	}
	parts[0][0].Key = "mutated" // violate the adoption contract
	defer func() {
		if recover() == nil {
			t.Fatal("mutated source materialized without a COW panic")
		}
	}()
	_, _, _ = e.Count(g.Map(src, "m", false, func(r record.Record) record.Record { return r }))
}

// TestCowCheckCleanRun verifies the debug mode reports no false positives
// on a workload exercising collect staging, caching and shuffles.
func TestCowCheckCleanRun(t *testing.T) {
	prev := record.SetCowCheckForTesting(true)
	defer record.SetCowCheckForTesting(prev)
	_ = parallelWorkloadTranscript(t, 2, 42, fault.Schedule{})
}
