package engine

import (
	"fmt"
	"sort"
	"time"

	"stark/internal/cluster"
	"stark/internal/metrics"
	netsim "stark/internal/net"
	"stark/internal/record"
	"stark/internal/replication"
)

// schedule runs one scheduling round: delay scheduling first (launch every
// pending task that has a free data-local slot), then remote launches for
// tasks whose locality wait expired or that have no locality to wait for —
// ordered by Minimum-Contention-First when enabled (paper Algorithm 1).
// Tasks still waiting arm a timer so the round re-runs at wait expiry.
func (e *Engine) schedule() {
	if e.driverDown {
		return
	}
	for {
		free := e.freeSlots()
		if free == 0 {
			break
		}
		progress := false

		// Pass 1: NODE_LOCAL launches for locality-capable tasks. Stop as
		// soon as the cluster fills — under overload the pending queue is
		// huge and scanning it with no slots free is pure waste. Tasks of
		// jobs that already failed are discarded lazily here.
		for _, t := range e.prefPending {
			if free == 0 {
				break
			}
			if t.aborted || t.launched() {
				continue
			}
			if t.sr.job.done {
				e.discardPending(t)
				continue
			}
			for _, ex := range e.preferredExecutors(t) {
				if e.cl.Executor(ex).FreeSlots() > 0 {
					e.launch(t, ex, metrics.NodeLocal)
					progress = true
					free--
					break
				}
			}
		}
		e.compactPrefPending()

		// Pass 2: REMOTE launches — locality-capable tasks whose wait
		// expired or that have no live preference, then the plain FIFO.
		// Collect no more eligible tasks than there are free slots.
		now := e.loop.Now()
		var eligible []*task
		for _, t := range e.prefPending {
			if free == 0 || len(eligible) >= free {
				break
			}
			if t.aborted || t.launched() {
				continue
			}
			if t.sr.job.done {
				e.discardPending(t)
				continue
			}
			if now-t.submitted >= e.cfg.Sched.LocalityWait || len(e.preferredExecutors(t)) == 0 {
				eligible = append(eligible, t)
			}
		}
		offers := e.remoteOffers()
		if len(offers) > 0 && free > 0 {
			oi := 0
			nextTask := func() *task {
				if len(eligible) > 0 {
					t := eligible[0]
					eligible = eligible[1:]
					return t
				}
				for e.plainHead < len(e.plainPending) {
					t := e.plainPending[e.plainHead]
					e.plainPending[e.plainHead] = nil
					e.plainHead++
					if t == nil || t.launched() || t.promoted || t.aborted {
						continue
					}
					if t.sr.job.done {
						t.aborted = true
						continue
					}
					return t
				}
				return nil
			}
			for {
				// Cycle offers, one task per executor per round, like
				// Spark's resourceOffers.
				tried := 0
				for tried < len(offers) && e.cl.Executor(offers[oi]).FreeSlots() == 0 {
					oi = (oi + 1) % len(offers)
					tried++
				}
				if tried == len(offers) {
					break
				}
				t := nextTask()
				if t == nil {
					break
				}
				e.launch(t, offers[oi], metrics.Remote)
				progress = true
				oi = (oi + 1) % len(offers)
			}
		}
		e.compactPrefPending()
		e.compactPlainPending()

		if !progress {
			break
		}
	}

	// Arm locality-wait timers for tasks still waiting on busy local slots.
	// The unarmed counter keeps this O(1) in the common all-armed case.
	if e.unarmed == 0 {
		return
	}
	for _, t := range e.prefPending {
		if t.waitArmed || t.launched() || t.aborted {
			continue
		}
		t.waitArmed = true
		e.unarmed--
		deadline := t.submitted + e.cfg.Sched.LocalityWait
		e.loop.At(deadline+time.Millisecond, func() { e.schedule() })
	}
	if e.unarmed < 0 {
		e.unarmed = 0
	}
}

// freeSlots counts free slots across live executors.
func (e *Engine) freeSlots() int {
	n := 0
	for _, ex := range e.cl.Executors() {
		n += ex.FreeSlots()
	}
	return n
}

// compactPrefPending removes launched and aborted tasks, preserving
// submission order.
func (e *Engine) compactPrefPending() {
	kept := e.prefPending[:0]
	for _, t := range e.prefPending {
		if !t.launched() && !t.aborted {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(e.prefPending); i++ {
		e.prefPending[i] = nil
	}
	e.prefPending = kept
}

// discardPending drops a queued preference-queue task whose job already
// finished, keeping the unarmed-timer counter consistent.
func (e *Engine) discardPending(t *task) {
	t.aborted = true
	if t.counted && !t.waitArmed {
		e.unarmed--
	}
}

// compactPlainPending releases consumed queue prefix memory, amortized.
func (e *Engine) compactPlainPending() {
	if e.plainHead > 4096 && e.plainHead > len(e.plainPending)/2 {
		e.plainPending = append([]*task(nil), e.plainPending[e.plainHead:]...)
		e.plainHead = 0
	}
}

func (t *task) launched() bool { return t.tm.Locality != 0 }

// preferredExecutors returns the live executors a task would be NODE_LOCAL
// on. Namespace tasks use the LocalityManager's unit assignment. Other
// tasks mirror Spark 1.3's DAGScheduler.getPreferredLocsInternal: walk the
// narrow chain breadth-first and return the cached locations of the first
// RDD that has any — for a cogroup that is effectively the first parent
// branch, so the chosen executor is local for ONE branch and recomputes the
// rest, the co-locality gap the paper measures (Sec. II-B).
func (e *Engine) preferredExecutors(t *task) []int {
	if t.ns != "" {
		return e.filterSchedulable(e.loc.Preferred(t.ns, t.unit))
	}
	if len(t.partitions) != 1 {
		return nil
	}
	p := t.partitions[0]
	for _, r := range t.sr.st.NarrowChain() {
		locs := e.filterSchedulable(e.cl.Locations(cluster.BlockID{RDD: r.ID, Partition: p}))
		if len(locs) > 0 {
			return locs
		}
	}
	return nil
}

func (e *Engine) filterAlive(execs []int) []int {
	out := execs[:0:0]
	for _, id := range execs {
		if id >= 0 && id < e.cl.NumExecutors() && !e.cl.Executor(id).Dead() {
			out = append(out, id)
		}
	}
	return out
}

// filterSchedulable keeps executors the scheduler may offer slots on: alive
// and outside any blacklist exclusion window.
func (e *Engine) filterSchedulable(execs []int) []int {
	out := execs[:0:0]
	for _, id := range execs {
		if e.schedulable(id) {
			out = append(out, id)
		}
	}
	return out
}

// remoteOffers lists live executors with free slots, ordered for remote
// assignment. MCF sorts ascending by unique collection partitions cached
// (Algorithm 1 line 5). Otherwise offers are randomly permuted, matching
// Spark's randomized resource offers — the behaviour that scatters
// partitions of independent RDDs across servers and breaks co-locality for
// the Spark baselines (paper Sec. III-B).
func (e *Engine) remoteOffers() []int {
	var offers []int
	for _, id := range e.cl.AliveExecutors() {
		if e.schedulable(id) && e.cl.Executor(id).FreeSlots() > 0 {
			offers = append(offers, id)
		}
	}
	if e.cfg.Features.MCF || e.cfg.Sched.MCF {
		type off struct{ id, units int }
		scored := make([]off, len(offers))
		for i, id := range offers {
			scored[i] = off{id: id, units: e.cl.UniqueKeysCached(id, e.unitKey)}
		}
		sort.SliceStable(scored, func(a, b int) bool {
			if scored[a].units != scored[b].units {
				return scored[a].units < scored[b].units
			}
			return scored[a].id < scored[b].id
		})
		for i, s := range scored {
			offers[i] = s.id
		}
		return offers
	}
	e.rng.Shuffle(len(offers), func(i, j int) { offers[i], offers[j] = offers[j], offers[i] })
	return offers
}

// unitKey renders a block's collection unit for MCF counting; "" for blocks
// outside any namespace.
func (e *Engine) unitKey(id cluster.BlockID) string {
	ns, unit, ok := e.unitOf(id)
	if !ok {
		return ""
	}
	return ns + "/" + itoa(unit)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// launch assigns a task to an executor: the slot is reserved driver-side,
// the task is fenced with the executor's current epoch, and the launch
// command travels over the control network (reliable — it retransmits
// through transient partitions). Under the default zero-latency network the
// command delivers synchronously and the data plane runs in this same
// event, byte-identical to the pre-network engine.
func (e *Engine) launch(t *task, exec int, loc metrics.Locality) {
	ex := e.cl.Executor(exec)
	ex.Acquire()
	t.slotHeld = true
	t.exec = exec
	t.launchInc = ex.Incarnation()
	t.fence = e.execEpoch[exec]
	t.tm.Executor = exec
	t.tm.Locality = loc
	t.tm.Started = e.loop.Now()
	if t.counted && !t.waitArmed {
		// The task launches before its locality-wait timer was armed.
		e.unarmed--
	}
	e.running[t.id] = t
	e.traceTaskLaunch(t, exec, loc)
	e.net.Send(netsim.Driver, exec, netsim.TaskLaunch, true, func() { e.execTask(t, exec) })
}

// releaseSlot frees a task's reserved slot, but only while the slot
// accounting it was charged against still exists: a kill zeroes the
// executor's busy count wholesale, so a release against a dead — or since
// restarted — process would corrupt the books.
func (e *Engine) releaseSlot(t *task) {
	if !t.slotHeld {
		return
	}
	t.slotHeld = false
	ex := e.cl.Executor(t.exec)
	if !ex.Dead() && ex.Incarnation() == t.launchInc {
		ex.Release()
	}
}

// execTask is the executor-side receipt of a launch command. The guard
// checks run now, at delivery time; the data plane itself is deferred to the
// event boundary (plane.go), where the batch accumulated during this event
// executes — on the worker pool when safe — and joins back in dispatch
// order. A command that arrives after the task was cancelled, or at a
// process that has since died, does nothing.
func (e *Engine) execTask(t *task, exec int) {
	if t.aborted || t.lost {
		e.releaseSlot(t)
		return
	}
	ex := e.cl.Executor(exec)
	if ex.Dead() || ex.Incarnation() != t.launchInc {
		// Delivered to a dead (or reborn) process: nothing runs and no
		// result will come back. The driver re-learns via its failure path.
		t.slotHeld = false
		t.lost = true
		return
	}
	e.batch = append(e.batch, &batchEntry{t: t, exec: exec})
}

// taskDone is the executor-side completion: the slot frees and the result
// reports back over the control network (reliable). A task whose process
// died mid-run reports to nobody; a task the driver cancelled under the
// same epoch is dropped executor-side. A cancelled task whose epoch moved
// on (the driver declared this executor dead) still reports, so the driver
// can exercise — and count — the stale-epoch rejection.
func (e *Engine) taskDone(t *task) {
	if t.lost {
		return
	}
	e.releaseSlot(t)
	if t.aborted && t.fence == e.execEpoch[t.exec] {
		delete(e.running, t.id)
		return
	}
	e.net.Send(t.exec, netsim.Driver, netsim.TaskResult, true, func() { e.onTaskResult(t) })
}

// onTaskResult is the driver-side receipt of a task result: epoch fencing
// first, then map-output commit, metrics, replica bookkeeping, and stage
// countdown. Failed attempts divert to the recovery plane.
func (e *Engine) onTaskResult(t *task) {
	if e.driverDown {
		// The result arrived at a crashed driver: nobody is listening. The
		// executor-side commit already happened (slot freed); the restarted
		// driver re-learns outcomes by resubmitting from the journal, and
		// anything this task would have committed is fenced by the new
		// incarnation's epochs.
		return
	}
	delete(e.running, t.id)
	if t.aborted || t.fence != e.execEpoch[t.exec] {
		if t.fence != e.execEpoch[t.exec] {
			e.recUpdate(func(r *recMetrics) { r.StaleEpochRejections++ })
			e.trace("stale-result", t.sr.job.id, t.sr.st.ID, t.id, t.exec,
				fmt.Sprintf("fence=%d epoch=%d", t.fence, e.execEpoch[t.exec]))
		}
		// The fenced attempt's slot freed executor-side at completion; after
		// a driver restart the resubmitted stages may be waiting on exactly
		// that capacity, so re-offer it now.
		e.schedule()
		return
	}
	t.tm.Finished = e.loop.Now()
	if t.failErr != nil {
		e.onTaskFailure(t)
		e.schedule()
		return
	}
	if err := e.commitMapOutputs(t); err != nil {
		t.failErr = err
		e.onTaskFailure(t)
		e.schedule()
		return
	}
	t.sr.job.tasks = append(t.sr.job.tasks, t.tm)
	e.recordTaskStats(t.tm)
	e.trace("task-finish", t.sr.job.id, t.sr.st.ID, t.id, t.exec, "dur="+t.tm.Duration().String())
	e.noteTaskSuccess(t)

	// Apply action results now that the task is known to have survived.
	t.sr.job.count += t.count
	for p, data := range t.collected {
		if t.collectedFP != nil {
			if got := record.Fingerprint(data); got != t.collectedFP[p] {
				panic(fmt.Sprintf("engine: collected partition %d of task %d mutated between staging and accept (copy-on-write violation)", p, t.id))
			}
		}
		t.sr.job.parts[p] = data
	}

	// Contention-aware replication (paper Sec. III-C3): a remote launch
	// materialized the unit's chain in this executor's cache; the policy
	// decides whether that copy is worth keeping as a replica, and whether
	// a cooled-down unit should retire one.
	if t.ns != "" {
		key := replication.UnitKey{Namespace: t.ns, Unit: t.unit}
		now := e.loop.Now()
		switch t.tm.Locality {
		case metrics.Remote:
			if e.repl.OnRemoteLaunch(key, now) {
				e.loc.AddReplica(t.ns, t.unit, t.exec)
				e.trace("replica-add", t.sr.job.id, -1, -1, t.exec, fmt.Sprintf("unit=%s/%d", t.ns, t.unit))
			}
		case metrics.NodeLocal:
			e.repl.OnLocalLaunch(key, now)
		}
		if e.repl.ShouldDeReplicate(key, now) {
			e.deReplicate(t.ns, t.unit)
		}
	}

	t.sr.remaining--
	if t.sr.remaining == 0 {
		e.onStageComplete(t.sr)
	} else {
		e.maybeSpeculate(t.sr)
	}
	e.schedule()
}

// deReplicate retires the unit's most recently added replica: drops its
// cached blocks and removes it from the preferred-executor list.
func (e *Engine) deReplicate(ns string, unit int) {
	execs := e.loc.Preferred(ns, unit)
	if len(execs) < 2 {
		return
	}
	victim := execs[len(execs)-1]
	for _, r := range e.nsRDDs[ns] {
		for _, p := range e.unitPartitions(ns, unit) {
			e.cl.DropBlock(victim, cluster.BlockID{RDD: r.ID, Partition: p})
		}
	}
	e.loc.RemoveReplica(ns, unit, victim)
	e.repl.Dropped(replication.UnitKey{Namespace: ns, Unit: unit})
	e.trace("replica-drop", -1, -1, -1, victim, fmt.Sprintf("unit=%s/%d", ns, unit))
}

// KillExecutor fails an executor process at the current virtual time:
// cached blocks vanish and its running tasks will report to nobody. With
// heartbeat detection disabled the driver also reacts omnisciently, right
// now: the epoch bumps, running tasks are resubmitted, and locality
// assignments fail over. With detection enabled the driver reacts only
// when the heartbeat timeouts expire (see declareDead), so detection
// latency becomes part of the measured recovery delay.
func (e *Engine) KillExecutor(id int) {
	e.trace("executor-kill", -1, -1, -1, id, "")
	e.cl.Kill(id)
	ids := make([]int, 0, len(e.running))
	for tid := range e.running {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	for _, tid := range ids {
		t := e.running[tid]
		if t.exec != id || t.lost {
			continue
		}
		// The process died under the task: its slot accounting is gone and
		// no completion or result event will fire for it.
		t.lost = true
		t.slotHeld = false
	}
	if e.driverDown {
		// The driver is down too: no reaction now. The restart sweep
		// excludes the dead executor via liveness checks, and journal-driven
		// resubmission re-covers its lost work.
		return
	}
	if e.hb.Enabled {
		return
	}
	e.execEpoch[id]++
	e.loc.DropExecutor(id, e.cl.AliveExecutors())
	e.resubmitLostTasks(id, e.loop.Now())
	e.schedule()
	e.drainBatch() // cover kills injected from outside the event loop
}

// resubmitLostTasks aborts every tracked task on an executor the driver has
// given up on and enqueues fresh clones. The shared recovery epoch opens at
// epochStart — the failure time when the driver is omniscient, the
// executor's last heard heartbeat under detection — and closes when every
// clone has succeeded, yielding the measured recovery delay. Task ids are
// walked in sorted order so clone ids stay deterministic.
func (e *Engine) resubmitLostTasks(id int, epochStart time.Duration) {
	ids := make([]int, 0, len(e.running))
	for tid := range e.running {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	var ep *recoveryEpoch
	for _, tid := range ids {
		t := e.running[tid]
		if t.exec != id || t.aborted {
			continue
		}
		t.aborted = true
		delete(e.running, tid)
		if t.detachPartner() {
			continue // the live speculative partner is now the sole attempt
		}
		if t.sr.job.done {
			continue
		}
		if t.epoch == nil {
			if ep == nil {
				ep = &recoveryEpoch{start: epochStart}
			}
			t.epoch = ep
			ep.pending++
		}
		clone := e.cloneTask(t, t.attempt)
		e.trace("task-resubmit", t.sr.job.id, t.sr.st.ID, clone.id, -1,
			fmt.Sprintf("of=%d killed exec=%d", t.id, id))
		e.enqueue(clone)
	}
}

// RestartExecutor revives a failed executor process with a cold cache. With
// heartbeat detection disabled the driver reacts omnisciently: any
// blacklist exclusion window closes (the fresh process gets probationary
// offers; only a successful task clears the blacklist entry itself),
// deferred checkpoints retry, and scheduling resumes. With detection
// enabled the new process merely starts heartbeating — the driver notices
// the new incarnation when the first beat arrives (see observeRestart).
func (e *Engine) RestartExecutor(id int) {
	e.trace("executor-restart", -1, -1, -1, id, "")
	e.cl.Restart(id)
	if e.driverDown {
		// The fresh process comes up while the driver is down; the restart
		// handshake (RestartDriver) records its incarnation.
		return
	}
	if e.hb.Enabled {
		e.armBeat(id)
		e.ensureHeartbeats()
		return
	}
	e.recMu.Lock()
	delete(e.blacklistUntil, id)
	e.recMu.Unlock()
	e.drainDeferredCheckpoints()
	e.schedule()
	e.drainBatch() // cover restarts injected from outside the event loop
}

// blockID is sugar for constructing block ids.
func blockID(rddID, part int) cluster.BlockID {
	return cluster.BlockID{RDD: rddID, Partition: part}
}
