package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"stark/internal/journal"
	"stark/internal/metrics"
	"stark/internal/sched"
)

// This file is the engine's failure-recovery plane: bounded per-task retry
// with virtual-time backoff, executor blacklisting with timed probation,
// stage resubmission on shuffle fetch failure, speculative re-execution of
// stragglers, and the fault.System surface the injector drives.

// recoveryEpoch tracks one executor failure's disruption: pending counts
// the aborted tasks whose replacement attempts have not yet succeeded. When
// it hits zero the elapsed virtual time is recorded as the failure's
// measured recovery delay.
type recoveryEpoch struct {
	start   time.Duration
	pending int
}

// recMetrics shortens the signature of recUpdate closures.
type recMetrics = metrics.RecoveryMetrics

// recUpdate applies one mutation to the recovery counters under recMu. All
// mutations happen on the loop goroutine; the lock exists so Recovery() and
// Blacklisted() can be called concurrently from other goroutines (progress
// monitors, tests under -race) without tearing a snapshot.
func (e *Engine) recUpdate(f func(*recMetrics)) {
	e.recMu.Lock()
	f(&e.rec)
	e.recMu.Unlock()
}

// Recovery returns a snapshot of the engine's fault-handling counters and
// measured recovery delays. Safe to call from any goroutine.
func (e *Engine) Recovery() metrics.RecoveryMetrics {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	snap := e.rec
	snap.RecoveryDelays = append([]time.Duration(nil), e.rec.RecoveryDelays...)
	snap.DetectionDelays = append([]time.Duration(nil), e.rec.DetectionDelays...)
	return snap
}

// Blacklisted lists the executors currently on the blacklist, ascending. An
// entry stays on the list — even through restarts and probationary offers —
// until the executor completes a task successfully. Safe to call from any
// goroutine.
func (e *Engine) Blacklisted() []int {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	out := make([]int, 0, len(e.blacklist))
	for id := range e.blacklist {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// schedulable reports whether the scheduler may offer an executor's slots:
// it must be alive (and, under heartbeat detection, believed alive by the
// driver) and not inside a blacklist exclusion window.
func (e *Engine) schedulable(id int) bool {
	if id < 0 || id >= e.cl.NumExecutors() || e.cl.Executor(id).Dead() {
		return false
	}
	if e.hb.Enabled && e.execView[id] != viewAlive {
		return false
	}
	if until, ok := e.blacklistUntil[id]; ok && until > e.loop.Now() {
		return false
	}
	return true
}

// cloneTask builds a fresh attempt of a task (retry, crash resubmission, or
// speculative copy) sharing its work spec and recovery epoch.
func (e *Engine) cloneTask(t *task, attempt int) *task {
	c := &task{
		id:         e.taskSeq,
		sr:         t.sr,
		partitions: t.partitions,
		ns:         t.ns,
		unit:       t.unit,
		group:      t.group,
		prefCap:    t.prefCap,
		submitted:  e.loop.Now(),
		attempt:    attempt,
		epoch:      t.epoch,
	}
	e.taskSeq++
	c.tm = metrics.TaskMetrics{
		JobID:     t.sr.job.id,
		StageID:   t.sr.st.ID,
		TaskID:    c.id,
		Submitted: c.submitted,
	}
	return c
}

// detachPartner unlinks a finished-or-dead task from a still-running
// speculative partner, which carries on as the sole attempt. It reports
// whether a live partner took over.
func (t *task) detachPartner() bool {
	if p := t.spec; p != nil && !p.aborted {
		p.specOf = nil
		t.spec = nil
		return true
	}
	if o := t.specOf; o != nil && !o.aborted {
		o.spec = nil
		t.specOf = nil
		return true
	}
	return false
}

// onTaskFailure routes one failed attempt: fetch failures resubmit the
// producing map stage, storage failures count against the executor
// (blacklisting it past the threshold) and retry with doubling virtual-time
// backoff until the retry budget is spent, which fails the job.
func (e *Engine) onTaskFailure(t *task) {
	err := t.failErr
	e.recUpdate(func(r *recMetrics) { r.TaskFailures++ })
	e.trace("task-fail", t.sr.job.id, t.sr.st.ID, t.id, t.exec,
		fmt.Sprintf("attempt=%d err=%v", t.attempt, err))
	if t.detachPartner() {
		// The speculative partner is still running; it is the live attempt.
		return
	}
	if t.sr.job.done {
		return
	}
	var fe *fetchError
	if errors.As(err, &fe) {
		e.recUpdate(func(r *recMetrics) { r.FetchFailures++ })
		e.resubmitForFetch(t, fe.shuffle)
		return
	}
	e.noteExecutorFailure(t.exec)
	if t.attempt >= e.cfg.Recovery.MaxTaskRetries {
		e.failJob(t.sr.job, fmt.Errorf("engine: task %d (stage %d) failed after %d attempts: %w",
			t.id, t.sr.st.ID, t.attempt+1, err))
		return
	}
	e.recUpdate(func(r *recMetrics) { r.TaskRetries++ })
	shift := uint(t.attempt)
	if shift > 16 {
		shift = 16
	}
	backoff := e.cfg.Recovery.RetryBackoff << shift
	clone := e.cloneTask(t, t.attempt+1)
	e.trace("task-retry", t.sr.job.id, t.sr.st.ID, clone.id, -1,
		fmt.Sprintf("of=%d attempt=%d backoff=%v", t.id, clone.attempt, backoff))
	gen := e.driverGen
	e.loop.After(backoff, func() {
		if clone.sr.job.done || gen != e.driverGen {
			// A driver crash between scheduling and firing voided the retry:
			// the restarted driver resubmits the whole job from the journal.
			return
		}
		clone.submitted = e.loop.Now()
		clone.tm.Submitted = clone.submitted
		e.enqueue(clone)
		e.schedule()
	})
}

// noteExecutorFailure counts a task failure against an executor and
// blacklists it past the threshold. Blacklisting is an exclusion window:
// after it expires (or after RestartExecutor) the executor gets
// probationary offers while staying on the list; a successful task removes
// it, a further failure re-arms the window.
func (e *Engine) noteExecutorFailure(exec int) {
	th := e.cfg.Recovery.BlacklistThreshold
	if th <= 0 {
		return
	}
	e.execFailures[exec]++
	if e.execFailures[exec] < th {
		return
	}
	if until, ok := e.blacklistUntil[exec]; ok && until > e.loop.Now() {
		return // already inside an exclusion window
	}
	until := e.loop.Now() + e.cfg.Recovery.BlacklistExpiry
	e.recMu.Lock()
	e.blacklist[exec] = true
	e.blacklistUntil[exec] = until
	e.rec.ExecutorBlacklists++
	e.recMu.Unlock()
	e.journalAppend(journal.Record{Kind: journal.KindBlacklist, A: int64(exec), B: int64(until)})
	e.trace("executor-blacklist", -1, -1, -1, exec,
		fmt.Sprintf("failures=%d until=%v", e.execFailures[exec], until))
	// Re-run scheduling when the window expires so probation can begin.
	e.loop.At(until+time.Millisecond, func() { e.schedule() })
}

// noteExecutorSuccess clears an executor's failure count and removes it
// from the blacklist after a successful task.
func (e *Engine) noteExecutorSuccess(exec int) {
	if e.execFailures[exec] == 0 && !e.blacklist[exec] {
		return
	}
	e.execFailures[exec] = 0
	if e.blacklist[exec] {
		e.recMu.Lock()
		delete(e.blacklist, exec)
		delete(e.blacklistUntil, exec)
		e.rec.ExecutorUnblacklists++
		e.recMu.Unlock()
		e.journalAppend(journal.Record{Kind: journal.KindUnblacklist, A: int64(exec)})
		e.trace("executor-unblacklist", -1, -1, -1, exec, "")
	}
}

// noteTaskSuccess finishes recovery bookkeeping for a successful task:
// speculative partners are cancelled (first finisher wins), the executor's
// blacklist state heals, and recovery epochs count down.
func (e *Engine) noteTaskSuccess(t *task) {
	if p := t.spec; p != nil && !p.aborted {
		e.cancelTask(p)
		e.trace("task-speculate-lose", t.sr.job.id, t.sr.st.ID, p.id, p.exec,
			fmt.Sprintf("original %d won", t.id))
	}
	if o := t.specOf; o != nil && !o.aborted {
		e.cancelTask(o)
		e.recUpdate(func(r *recMetrics) { r.SpeculativeWins++ })
		e.trace("task-speculate-win", t.sr.job.id, t.sr.st.ID, t.id, t.exec,
			fmt.Sprintf("beat original %d", o.id))
	}
	e.noteExecutorSuccess(t.exec)
	e.releaseEpoch(t)
	t.sr.durations = append(t.sr.durations, t.tm.Duration())
}

// cancelTask withdraws a running task (speculation loser): its slot frees
// immediately and its pending completion event becomes a no-op.
func (e *Engine) cancelTask(t *task) {
	if t.aborted {
		return
	}
	t.aborted = true
	if _, running := e.running[t.id]; running {
		delete(e.running, t.id)
		if t.slotHeld {
			t.slotHeld = false
			e.cl.Executor(t.exec).Release()
		}
	}
}

// failJob terminates a job with an error; its queued tasks are discarded
// lazily by the scheduler and its callback receives the error.
func (e *Engine) failJob(j *job, err error) {
	if j.done {
		return
	}
	j.err = err
	e.trace("job-fail", j.id, -1, -1, -1, err.Error())
	e.finishJob(j)
	e.releaseJobShuffles(j)
}

// releaseJobShuffles drops the shuffle-execution ownership of a failed job's
// unfinished map stages so a later job (or a parked waiter) can rerun them
// instead of waiting forever on a run that will never complete.
func (e *Engine) releaseJobShuffles(j *job) {
	for _, sr := range j.stages {
		if !sr.st.ShuffleMap || !sr.runsShuffle || sr.remaining == 0 {
			continue
		}
		id := sr.st.ShuffleID
		sr.runsShuffle = false
		delete(e.shuffleRunning, id)
		delete(e.shuffleOwner, id)
		waiters := e.shuffleWaiters[id]
		delete(e.shuffleWaiters, id)
		for _, w := range waiters {
			if w.job.done {
				continue
			}
			e.maybeStartStage(w)
		}
	}
}

// resubmitForFetch handles one reduce task's fetch failure: a fresh copy of
// the task waits for the shuffle to be rebuilt (fetch failures do not burn
// the task's retry budget), and the producing map stage is resubmitted for
// the missing partitions.
func (e *Engine) resubmitForFetch(t *task, shuffleID int) {
	waiter := e.cloneTask(t, t.attempt)
	e.fetchWaiters[shuffleID] = append(e.fetchWaiters[shuffleID], waiter)
	e.rebuildShuffle(t.sr.job, shuffleID)
}

// rebuildShuffle resubmits the map stage that produced a shuffle whose
// outputs went missing, bounded by MaxStageResubmissions per shuffle.
func (e *Engine) rebuildShuffle(j *job, shuffleID int) {
	if e.shuffleRunning[shuffleID] {
		return // a rebuild is already in flight; waiters drain on completion
	}
	st := e.shuffleStages[shuffleID]
	if st == nil {
		e.failJob(j, fmt.Errorf("engine: shuffle %d has no registered producer stage: %w",
			shuffleID, ErrFetchFailed))
		return
	}
	missing := e.store.MissingMapOutputs(shuffleID)
	if len(missing) == 0 {
		// The outputs reappeared (another job rewrote them) — release waiters.
		e.releaseFetchWaiters(shuffleID)
		return
	}
	if !e.bumpResubmit(j, shuffleID) {
		return
	}
	sr := &stageRun{st: st, job: j, started: true, runsShuffle: true}
	j.stages = append(j.stages, sr)
	e.chargeStage(sr)
	e.shuffleRunning[shuffleID] = true
	e.shuffleOwner[shuffleID] = j
	e.trace("stage-resubmit", j.id, st.ID, -1, -1,
		fmt.Sprintf("shuffle=%d missing=%d", shuffleID, len(missing)))
	e.enqueueMissing(sr, missing)
}

// bumpResubmit charges one resubmission of a shuffle against the bound,
// failing the job when the bound is exhausted.
func (e *Engine) bumpResubmit(j *job, shuffleID int) bool {
	e.resubmits[shuffleID]++
	if e.resubmits[shuffleID] > e.cfg.Recovery.MaxStageResubmissions {
		e.failJob(j, fmt.Errorf("engine: shuffle %d resubmitted more than %d times: %w",
			shuffleID, e.cfg.Recovery.MaxStageResubmissions, ErrFetchFailed))
		return false
	}
	e.recUpdate(func(r *recMetrics) { r.StageResubmissions++ })
	return true
}

// enqueueMissing enqueues a map stage's tasks covering only the missing
// partitions (group tasks recompute any group containing one).
func (e *Engine) enqueueMissing(sr *stageRun, missing []int) {
	out := sr.st.Output
	ns := e.activeNamespace(out)
	miss := make(map[int]bool, len(missing))
	for _, m := range missing {
		miss[m] = true
	}
	var chosen []taskSpec
	for _, sp := range e.taskSpecs(out, ns) {
		for _, p := range sp.partitions {
			if miss[p] {
				chosen = append(chosen, sp)
				break
			}
		}
	}
	sr.remaining = len(chosen)
	if len(chosen) == 0 {
		e.onStageComplete(sr)
		return
	}
	e.enqueueSpecs(sr, chosen, e.stagePrefCap(sr, ns))
	e.schedule()
}

// ensureParentShuffle unblocks a stage waiting on an incomplete parent
// shuffle. When the producing stage in this job has not started yet, normal
// submission flow will run it. Otherwise the producer already ran (or was
// skipped because the shuffle persisted from an earlier job) and the
// outputs have since been lost — register the stage as a waiter and kick a
// rebuild if none is in flight.
func (e *Engine) ensureParentShuffle(sr *stageRun, shuffleID int) {
	if prod := e.producerRun(sr.job, shuffleID); prod != nil && !prod.started {
		return
	}
	dup := false
	for _, w := range e.shuffleWaiters[shuffleID] {
		if w == sr {
			dup = true
			break
		}
	}
	if !dup {
		e.shuffleWaiters[shuffleID] = append(e.shuffleWaiters[shuffleID], sr)
	}
	e.rebuildShuffle(sr.job, shuffleID)
}

// producerRun finds the job's stage run producing a shuffle, nil when the
// job has none (the shuffle persisted from an earlier job).
func (e *Engine) producerRun(j *job, shuffleID int) *stageRun {
	for _, sr := range j.stages {
		if sr.st.ShuffleMap && sr.st.ShuffleID == shuffleID {
			return sr
		}
	}
	return nil
}

// releaseFetchWaiters re-enqueues the reduce tasks parked on a shuffle once
// its outputs are complete again.
func (e *Engine) releaseFetchWaiters(shuffleID int) {
	waiters := e.fetchWaiters[shuffleID]
	if len(waiters) == 0 {
		return
	}
	delete(e.fetchWaiters, shuffleID)
	now := e.loop.Now()
	for _, w := range waiters {
		if w.sr.job.done {
			continue
		}
		w.submitted = now
		w.tm.Submitted = now
		e.enqueue(w)
	}
}

// maybeSpeculate launches speculative copies of stragglers in a stage: once
// the configured quantile of tasks has finished, any running task whose
// expected duration exceeds the multiplier times the stage's median
// completed duration is re-executed on a different, full-speed executor;
// the first finisher wins.
func (e *Engine) maybeSpeculate(sr *stageRun) {
	rc := e.cfg.Recovery
	if !rc.Speculation || sr.remaining <= 0 || sr.job.done {
		return
	}
	done := len(sr.durations)
	total := done + sr.remaining
	if done == 0 || float64(done) < rc.SpeculationQuantile*float64(total) {
		return
	}
	med := medianDuration(sr.durations)
	if med <= 0 {
		return
	}
	limit := time.Duration(rc.SpeculationMultiplier * float64(med))
	now := e.loop.Now()
	ids := make([]int, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.running[id]
		if t.sr != sr || t.aborted || t.failErr != nil || t.spec != nil || t.specOf != nil {
			continue
		}
		if t.expectedEnd <= now || t.expectedEnd-t.tm.Started <= limit {
			continue
		}
		exec := e.speculationTarget(t)
		if exec < 0 {
			continue
		}
		clone := e.cloneTask(t, t.attempt)
		clone.specOf = t
		t.spec = clone
		e.recUpdate(func(r *recMetrics) { r.SpeculativeLaunches++ })
		e.trace("task-speculate", sr.job.id, sr.st.ID, clone.id, exec,
			fmt.Sprintf("of=%d expected=%v median=%v", t.id, t.expectedEnd-t.tm.Started, med))
		e.launch(clone, exec, metrics.Remote)
	}
}

// speculationTarget picks the lowest-id schedulable, full-speed executor
// with a free slot other than the straggler's own.
func (e *Engine) speculationTarget(t *task) int {
	for _, id := range e.cl.AliveExecutors() {
		if id == t.exec || !e.schedulable(id) {
			continue
		}
		ex := e.cl.Executor(id)
		if ex.FreeSlots() > 0 && ex.Slowdown() <= 1 {
			return id
		}
	}
	return -1
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted[len(sorted)/2]
}

// registerShuffleStage remembers which stage produces a shuffle so lost
// outputs can be recomputed after the stage completed.
func (e *Engine) registerShuffleStage(st *sched.Stage) {
	if st.ShuffleMap {
		e.shuffleStages[st.ShuffleID] = st
	}
}

// --- fault.System: the surface the fault injector drives ---------------

// SetStraggler slows (factor > 1) or restores (factor <= 1) an executor;
// new task launches there take factor times their modeled duration.
func (e *Engine) SetStraggler(id int, factor float64) {
	e.cl.SetSlowdown(id, factor)
	e.trace("executor-straggle", -1, -1, -1, id, fmt.Sprintf("factor=%.2f", factor))
}

// SetMemPressure shrinks (factor < 1) or restores (factor >= 1) an
// executor's effective cache capacity — the MemPressure fault. The GC
// pressure model, the put path, and the admission ledger all read the
// effective capacity, so the squeeze shows up everywhere at once; cached
// blocks above the shrunk bound are not evicted eagerly, the next put pays.
func (e *Engine) SetMemPressure(id int, factor float64) {
	e.cl.SetMemPressure(id, factor)
	e.trace("executor-mem-pressure", -1, -1, -1, id, fmt.Sprintf("factor=%.2g", factor))
}

// SetOOMWindow arms or disarms an ExecutorOOM window: while armed, a cache
// write the (shrunk) capacity cannot admit fails its task with ErrOOM
// instead of degrading to a graceful refusal (plane.go's joinTask).
func (e *Engine) SetOOMWindow(id int, armed bool) {
	if armed {
		e.oomArmed[id] = true
	} else {
		delete(e.oomArmed, id)
	}
	e.trace("executor-oom-window", -1, -1, -1, id, fmt.Sprintf("armed=%v", armed))
}

// DropShuffleBlock deletes the pick-th committed shuffle map output (modulo
// the current count), simulating loss of a persisted block. Consumers see a
// fetch failure and trigger stage resubmission.
func (e *Engine) DropShuffleBlock(pick int) bool {
	blocks := e.store.CommittedMapOutputs()
	if len(blocks) == 0 {
		return false
	}
	b := blocks[pick%len(blocks)]
	if !e.store.DropMapOutput(b[0], b[1]) {
		return false
	}
	e.trace("fault-block-loss", -1, -1, -1, -1, fmt.Sprintf("shuffle=%d map=%d", b[0], b[1]))
	return true
}

// DropCheckpointBlock deletes the pick-th checkpoint block (modulo the
// current count); readers fall back to lineage recomputation.
func (e *Engine) DropCheckpointBlock(pick int) bool {
	blocks := e.store.CheckpointBlocks()
	if len(blocks) == 0 {
		return false
	}
	b := blocks[pick%len(blocks)]
	if !e.store.DropCheckpoint(b[0], b[1]) {
		return false
	}
	e.trace("fault-block-loss", -1, -1, -1, -1, fmt.Sprintf("checkpoint rdd=%d part=%d", b[0], b[1]))
	return true
}
