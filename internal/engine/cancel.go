package engine

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the cooperative job-cancellation path the session layer's
// deadlines and admission control drive: a cancelled job unwinds its
// in-flight tasks (slots free immediately, completion events become no-ops),
// releases its shuffle-execution ownership so concurrent jobs subscribed to
// a shared in-flight stage rerun it, and delivers a typed error through its
// callback.

// CancelJob withdraws an in-flight job by id: queued tasks are discarded,
// running attempts are aborted with their slots freed at cancellation time,
// shuffle ownership is released to any cross-job subscribers, and the job's
// callback receives cause, wrapped over ErrJobCancelled when the sentinel is
// not already in its chain. It reports whether a job was cancelled (false
// for unknown ids and already-completed jobs). Submissions buffered during a
// driver crash window cancel cleanly without ever starting.
func (e *Engine) CancelJob(id int, cause error) bool {
	j := e.jobTab[id]
	if j == nil || j.done {
		return false
	}
	if cause == nil {
		cause = ErrJobCancelled
	} else if !errors.Is(cause, ErrJobCancelled) {
		cause = fmt.Errorf("%w: %w", ErrJobCancelled, cause)
	}
	e.cancelJob(j, cause)
	if !e.driverDown {
		// Freed slots can serve other jobs' queued tasks immediately.
		e.schedule()
		e.drainBatch() // cover cancellations injected from outside the event loop
	}
	return true
}

// cancelJob unwinds one job and fails it with cause. Close reuses it for
// every in-flight job.
func (e *Engine) cancelJob(j *job, cause error) {
	// Abort running attempts first so their slots free now instead of at
	// their simulated completion, and release their recovery epochs — a
	// cancelled task needs no replacement attempt.
	ids := make([]int, 0, len(e.running))
	for tid := range e.running {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	for _, tid := range ids {
		t := e.running[tid]
		if t.sr.job == j {
			e.cancelTask(t)
			e.releaseEpoch(t)
		}
	}
	// Queued attempts are discarded lazily by the scheduler once the job is
	// done; their epochs release here so crash-recovery delay measurement
	// never waits on work that will not run.
	for _, t := range e.prefPending {
		if t != nil && t.sr.job == j && !t.aborted && !t.launched() {
			e.releaseEpoch(t)
		}
	}
	for i := e.plainHead; i < len(e.plainPending); i++ {
		if t := e.plainPending[i]; t != nil && t.sr.job == j && !t.aborted && !t.launched() {
			e.releaseEpoch(t)
		}
	}
	e.recUpdate(func(r *recMetrics) { r.JobCancellations++ })
	e.failJob(j, cause)
}

// releaseEpoch removes a task from its recovery epoch's pending count,
// recording the epoch's delay if it was the last outstanding attempt. The
// still-open resume epoch of an in-progress driver restart is left for
// RestartDriver to close.
func (e *Engine) releaseEpoch(t *task) {
	ep := t.epoch
	if ep == nil {
		return
	}
	t.epoch = nil
	ep.pending--
	if ep.pending == 0 && ep != e.resumeEpoch {
		d := e.loop.Now() - ep.start
		e.recUpdate(func(r *recMetrics) { r.RecoveryDelays = append(r.RecoveryDelays, d) })
		e.trace("recovery-complete", -1, -1, -1, -1, fmt.Sprintf("delay=%v", d))
	}
}
