package engine

// Oracle testing: random transformation pipelines are executed twice —
// through the full engine (stages, shuffles, caches, scheduling) and by a
// naive single-slice reference evaluator — and must agree on the multiset
// of produced records. This pins the data plane's semantics independently
// of the performance model.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

// refDataset is the reference evaluator's value: a flat record slice.
type refDataset []record.Record

func refSorted(rs refDataset) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%s=%v", r.Key, r.Value)
	}
	sort.Strings(out)
	return out
}

// pipelineOp is one random step applied to both implementations.
type pipelineOp struct {
	name  string
	build func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD
	ref   func(in refDataset) refDataset
}

func sumMerge(a, b any) any {
	x, _ := record.AsInt64(a)
	y, _ := record.AsInt64(b)
	return x + y
}

func randomOps(rng *rand.Rand, depth int) []pipelineOp {
	var ops []pipelineOp
	for i := 0; i < depth; i++ {
		switch rng.Intn(6) {
		case 0:
			keep := byte('0' + rng.Intn(10))
			ops = append(ops, pipelineOp{
				name: fmt.Sprintf("filter-%c", keep),
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.Filter(in, "f", func(r record.Record) bool {
						return r.Key[len(r.Key)-1] != keep
					})
				},
				ref: func(in refDataset) refDataset {
					var out refDataset
					for _, r := range in {
						if r.Key[len(r.Key)-1] != keep {
							out = append(out, r)
						}
					}
					return out
				},
			})
		case 1:
			ops = append(ops, pipelineOp{
				name: "mapValues-double",
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.Map(in, "m", true, func(r record.Record) record.Record {
						v, _ := record.AsInt64(r.Value)
						return record.Pair(r.Key, v*2)
					})
				},
				ref: func(in refDataset) refDataset {
					out := make(refDataset, len(in))
					for i, r := range in {
						v, _ := record.AsInt64(r.Value)
						out[i] = record.Pair(r.Key, v*2)
					}
					return out
				},
			})
		case 2:
			n := 1 + rng.Intn(6)
			ops = append(ops, pipelineOp{
				name: fmt.Sprintf("partitionBy-%d", n),
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.PartitionBy(in, "pb", partition.NewHash(n))
				},
				ref: func(in refDataset) refDataset { return in },
			})
		case 3:
			n := 1 + rng.Intn(4)
			ops = append(ops, pipelineOp{
				name: fmt.Sprintf("reduceByKey-%d", n),
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.ReduceByKey(in, "rbk", partition.NewHash(n), sumMerge)
				},
				ref: func(in refDataset) refDataset {
					sums := map[string]int64{}
					var order []string
					for _, r := range in {
						if _, ok := sums[r.Key]; !ok {
							order = append(order, r.Key)
						}
						v, _ := record.AsInt64(r.Value)
						sums[r.Key] += v
					}
					var out refDataset
					for _, k := range order {
						out = append(out, record.Pair(k, sums[k]))
					}
					return out
				},
			})
		case 4:
			ops = append(ops, pipelineOp{
				name: "flatMap-split",
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.FlatMap(in, "fm", func(r record.Record) []record.Record {
						v, _ := record.AsInt64(r.Value)
						if v%2 == 0 {
							return []record.Record{r}
						}
						return []record.Record{
							record.Pair(r.Key+"/a", v),
							record.Pair(r.Key+"/b", v),
						}
					})
				},
				ref: func(in refDataset) refDataset {
					var out refDataset
					for _, r := range in {
						v, _ := record.AsInt64(r.Value)
						if v%2 == 0 {
							out = append(out, r)
						} else {
							out = append(out, record.Pair(r.Key+"/a", v), record.Pair(r.Key+"/b", v))
						}
					}
					return out
				},
			})
		default:
			salt := rng.Uint32()
			ops = append(ops, pipelineOp{
				name: fmt.Sprintf("sample-%d", salt%100),
				build: func(g *rdd.Graph, in *rdd.RDD) *rdd.RDD {
					return g.Sample(in, "s", 0.7, salt)
				},
				// The reference reuses the engine's deterministic predicate
				// through a single-partition Sample transform.
				ref: func(in refDataset) refDataset {
					probe := rdd.NewGraph()
					src := probe.Source("probe", [][]record.Record{in}, false)
					s := probe.Sample(src, "s", 0.7, salt)
					return s.Transform(0, [][]record.Record{in})
				},
			})
		}
	}
	return ops
}

func randomInput(rng *rand.Rand, n int) []record.Record {
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Pair(fmt.Sprintf("key-%03d", rng.Intn(40)), int64(rng.Intn(100)))
	}
	return out
}

func TestEngineMatchesReferenceOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := testConfig()
			cfg.Cluster.NumExecutors = 2 + rng.Intn(4)
			e := New(cfg)
			g := e.Graph()

			input := randomInput(rng, 50+rng.Intn(150))
			parts := 1 + rng.Intn(5)
			chunks := make([][]record.Record, parts)
			for i, r := range input {
				chunks[i%parts] = append(chunks[i%parts], r)
			}
			cur := g.Source("src", chunks, rng.Intn(2) == 0)
			ref := refDataset(record.Clone(input))

			var names []string
			for _, op := range randomOps(rng, 1+rng.Intn(5)) {
				names = append(names, op.name)
				if rng.Intn(3) == 0 {
					cur.CacheFlag = true
				}
				cur = op.build(g, cur)
				ref = op.ref(ref)
				// Occasionally materialize mid-pipeline so later stages
				// consume caches and persisted shuffles.
				if rng.Intn(3) == 0 {
					if _, _, err := e.Count(cur); err != nil {
						t.Fatalf("mid count after %v: %v", names, err)
					}
				}
			}
			// Occasionally fail an executor before the final collect.
			if rng.Intn(3) == 0 {
				e.KillExecutor(rng.Intn(cfg.Cluster.NumExecutors))
			}
			got, _, err := e.Collect(cur)
			if err != nil {
				t.Fatalf("collect after %v: %v", names, err)
			}
			wantS, gotS := refSorted(ref), refSorted(got)
			if len(wantS) != len(gotS) {
				t.Fatalf("pipeline %v: engine %d records, reference %d",
					strings.Join(names, " -> "), len(gotS), len(wantS))
			}
			for i := range wantS {
				if wantS[i] != gotS[i] {
					t.Fatalf("pipeline %v: record %d differs: engine %q, reference %q",
						strings.Join(names, " -> "), i, gotS[i], wantS[i])
				}
			}
		})
	}
}

// TestCoGroupOracle checks cogroup against a reference grouper across
// random co-partitioned and re-partitioned parents.
func TestCoGroupOracle(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		e := New(testConfig())
		g := e.Graph()
		nParents := 2 + rng.Intn(3)
		p := partition.NewHash(1 + rng.Intn(4))

		var parents []*rdd.RDD
		refInputs := make([]refDataset, nParents)
		for pi := 0; pi < nParents; pi++ {
			input := randomInput(rng, 30+rng.Intn(60))
			refInputs[pi] = record.Clone(input)
			src := g.Source(fmt.Sprintf("src%d", pi), [][]record.Record{input}, false)
			if rng.Intn(2) == 0 {
				parents = append(parents, g.PartitionBy(src, "pb", p)) // narrow branch
			} else {
				parents = append(parents, src) // shuffle branch
			}
		}
		cg := g.CoGroup("cg", p, parents...)
		got, _, err := e.Collect(cg)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: values per key per parent, order-insensitive.
		want := map[string][]map[string]int{}
		for pi, in := range refInputs {
			for _, r := range in {
				for len(want[r.Key]) < nParents {
					want[r.Key] = append(want[r.Key], map[string]int{})
				}
				want[r.Key][pi][fmt.Sprintf("%v", r.Value)]++
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d keys, want %d", seed, len(got), len(want))
		}
		for _, r := range got {
			cgv := r.Value.(record.CoGrouped)
			exp := want[r.Key]
			for pi := 0; pi < nParents; pi++ {
				counts := map[string]int{}
				for _, v := range cgv.Groups[pi] {
					counts[fmt.Sprintf("%v", v)]++
				}
				var expCounts map[string]int
				if pi < len(exp) {
					expCounts = exp[pi]
				}
				if len(counts) != len(expCounts) {
					t.Fatalf("seed %d key %q parent %d: %v != %v", seed, r.Key, pi, counts, expCounts)
				}
				for v, c := range expCounts {
					if counts[v] != c {
						t.Fatalf("seed %d key %q parent %d value %q: %d != %d", seed, r.Key, pi, v, counts[v], c)
					}
				}
			}
		}
	}
}
