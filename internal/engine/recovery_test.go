package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"stark/internal/cluster"
	"stark/internal/fault"
	"stark/internal/partition"
	"stark/internal/record"
	"stark/internal/storage"
)

// TestTaskRetryHealsTransientStorageError: the first two map-output writes
// fail; bounded retry with backoff recomputes them and the job succeeds.
func TestTaskRetryHealsTransientStorageError(t *testing.T) {
	e := New(testConfig())
	fails := 2
	e.Store().SetFaultHook(func(op storage.Op) error {
		if op == storage.OpMapOutputWrite && fails > 0 {
			fails--
			return errors.New("transient write glitch")
		}
		return nil
	})
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if n != 400 {
		t.Fatalf("count = %d, want 400", n)
	}
	rec := e.Recovery()
	if rec.TaskFailures != 2 || rec.TaskRetries != 2 {
		t.Fatalf("failures/retries = %d/%d, want 2/2", rec.TaskFailures, rec.TaskRetries)
	}
}

// TestTaskRetryExhaustionFailsJob: a permanent storage error burns the
// retry budget and surfaces as a typed job error — no panic reaches the
// driver, and the engine stays usable afterwards.
func TestTaskRetryExhaustionFailsJob(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.MaxTaskRetries = 2
	cfg.Recovery.RetryBackoff = time.Millisecond
	e := New(cfg)
	e.Store().SetFaultHook(func(op storage.Op) error {
		if op == storage.OpMapOutputWrite {
			return errors.New("disk on fire")
		}
		return nil
	})
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	_, _, err := e.Count(pb)
	if err == nil {
		t.Fatal("expected job error after retry exhaustion")
	}
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("err = %v, want ErrStorage", err)
	}
	// The engine survives: clear the fault and rerun.
	e.Store().SetFaultHook(nil)
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("post-failure count: %v", err)
	}
	if n != 100 {
		t.Fatalf("post-failure count = %d, want 100", n)
	}
}

// TestFetchFailureResubmitsStage: a map output vanishes after the shuffle
// completed but before every reduce task read it. The late reducers hit a
// fetch failure, the producing stage is resubmitted for just the missing
// partition, and the job still returns the right answer.
func TestFetchFailureResubmitsStage(t *testing.T) {
	e := New(testConfig()) // 4 executors x 2 slots
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	// 16 reduce partitions > 8 slots, so a second reduce wave launches after
	// the block loss below.
	pb := g.PartitionBy(src, "pb", partition.NewHash(16))
	dropped := false
	e.SetTracer(func(ev TraceEvent) {
		if ev.Kind == "stage-start" && strings.Contains(ev.Detail, "shuffleMap=false") && !dropped {
			dropped = true
			e.Loop().After(time.Nanosecond, func() { e.DropShuffleBlock(0) })
		}
	})
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if n != 400 {
		t.Fatalf("count = %d, want 400", n)
	}
	if !dropped {
		t.Fatal("test never dropped a shuffle block")
	}
	rec := e.Recovery()
	if rec.FetchFailures == 0 {
		t.Fatal("no fetch failures recorded")
	}
	if rec.StageResubmissions != 1 {
		t.Fatalf("stage resubmissions = %d, want 1", rec.StageResubmissions)
	}
	if rec.TaskRetries != 0 {
		t.Fatalf("fetch failures must not burn the retry budget, got %d retries", rec.TaskRetries)
	}
}

// TestCheckpointBlockLossFallsBackToLineage: losing a checkpoint block is
// transparent — the reader recomputes the partition through lineage.
func TestCheckpointBlockLossFallsBackToLineage(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	f := g.Filter(src, "f", func(record.Record) bool { return true })
	if _, _, err := e.Count(f); err != nil {
		t.Fatal(err)
	}
	e.ForceCheckpoint(f)
	if !e.DropCheckpointBlock(0) {
		t.Fatal("no checkpoint block to drop")
	}
	f2 := g.Filter(f, "f2", func(record.Record) bool { return true })
	n, _, err := e.Count(f2)
	if err != nil {
		t.Fatalf("count after checkpoint loss: %v", err)
	}
	if n != 200 {
		t.Fatalf("count = %d, want 200", n)
	}
}

// TestCheckpointDeferredUntilRestart: with no live executor the checkpoint
// is deferred (fixing the former "no live executors to checkpoint on"
// panic) and completes when an executor restarts.
func TestCheckpointDeferredUntilRestart(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), true)
	f := g.Filter(src, "f", func(record.Record) bool { return true })
	if _, _, err := e.Count(f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.Cluster().NumExecutors(); i++ {
		e.KillExecutor(i)
	}
	e.ForceCheckpoint(f) // must not panic
	if f.Checkpointed {
		t.Fatal("checkpoint succeeded with no live executors")
	}
	if e.Recovery().CheckpointDeferrals != 1 {
		t.Fatalf("deferrals = %d, want 1", e.Recovery().CheckpointDeferrals)
	}
	e.RestartExecutor(0)
	if !f.Checkpointed {
		t.Fatal("deferred checkpoint did not run after restart")
	}
	if !e.Store().HasCheckpoint(f.ID, 0) {
		t.Fatal("checkpoint blocks missing after drain")
	}
}

// TestRestartExecutorRecovery covers the restart contract: cold cache,
// probationary scheduling while still blacklisted, and blacklist removal
// after a successful task.
func TestRestartExecutorRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.BlacklistThreshold = 1
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(200, 8), true)
	f := g.Filter(src, "f", func(record.Record) bool { return true })
	f.CacheFlag = true
	if _, _, err := e.Count(f); err != nil {
		t.Fatal(err)
	}
	hasBlocks := func(id int) bool {
		for p := 0; p < f.Parts; p++ {
			for _, loc := range e.Cluster().Locations(cluster.BlockID{RDD: f.ID, Partition: p}) {
				if loc == id {
					return true
				}
			}
		}
		return false
	}
	if !hasBlocks(2) {
		t.Fatal("expected cached blocks on executor 2 after the first job")
	}

	e.KillExecutor(2)
	e.noteExecutorFailure(2) // threshold 1: one failure blacklists
	if got := e.Blacklisted(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("blacklisted = %v, want [2]", got)
	}
	if e.schedulable(2) {
		t.Fatal("dead blacklisted executor must not be schedulable")
	}

	e.RestartExecutor(2)
	if hasBlocks(2) {
		t.Fatal("restarted executor should come back with a cold cache")
	}
	if !e.schedulable(2) {
		t.Fatal("restart should reopen the executor for probationary offers")
	}
	if got := e.Blacklisted(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("restart alone must not clear the blacklist entry, got %v", got)
	}

	// A plain 16-task job cycles remote offers across every executor, so the
	// restarted one gets work; its first success clears the blacklist entry.
	src2 := g.Source("src2", dataset(160, 16), true)
	n, jm, err := e.Count(src2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 160 {
		t.Fatalf("count = %d, want 160", n)
	}
	ranOnRestarted := false
	for _, tm := range jm.Tasks {
		if tm.Executor == 2 {
			ranOnRestarted = true
		}
	}
	if !ranOnRestarted {
		t.Fatal("restarted executor never rejoined scheduling")
	}
	if got := e.Blacklisted(); len(got) != 0 {
		t.Fatalf("successful task should clear the blacklist, got %v", got)
	}
	if e.Recovery().ExecutorUnblacklists != 1 {
		t.Fatalf("unblacklists = %d, want 1", e.Recovery().ExecutorUnblacklists)
	}
}

// TestBlacklistEndToEnd: with threshold 1, the executor that hits the
// injected write error is blacklisted and the stage finishes on the rest.
// Single-slot executors keep the blacklisted one idle afterwards (no
// in-flight sibling task can heal the entry by succeeding).
func TestBlacklistEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.BlacklistThreshold = 1
	cfg.Cluster.SlotsPerExecutor = 1
	e := New(cfg)
	failOnce := true
	e.Store().SetFaultHook(func(op storage.Op) error {
		if op == storage.OpMapOutputWrite && failOnce {
			failOnce = false
			return errors.New("bad disk")
		}
		return nil
	})
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	n, _, err := e.Count(pb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("count = %d, want 400", n)
	}
	rec := e.Recovery()
	if rec.ExecutorBlacklists != 1 {
		t.Fatalf("blacklists = %d, want 1", rec.ExecutorBlacklists)
	}
	if got := e.Blacklisted(); len(got) != 1 {
		t.Fatalf("blacklisted = %v, want exactly one executor", got)
	}
}

// TestSpeculativeExecution: a heavily slowed executor's tasks get cloned
// onto full-speed executors once most of the stage finished; the clones win
// and the result stays correct (first finisher wins, loser cancelled).
func TestSpeculativeExecution(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.Speculation = true
	e := New(cfg)
	e.SetStraggler(3, 8)
	g := e.Graph()
	src := g.Source("src", dataset(160, 16), true)
	n, jm, err := e.Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 160 {
		t.Fatalf("count = %d, want 160", n)
	}
	rec := e.Recovery()
	if rec.SpeculativeLaunches == 0 {
		t.Fatal("no speculative copies launched against the straggler")
	}
	if rec.SpeculativeWins == 0 {
		t.Fatal("no speculative copy won")
	}
	if len(jm.Tasks) != 16 {
		t.Fatalf("job recorded %d task completions, want 16 (one per partition)", len(jm.Tasks))
	}
}

// TestRecoveryDelayMeasured: killing an executor mid-stage opens a recovery
// epoch that closes when the resubmitted tasks succeed, recording a
// positive bounded delay.
func TestRecoveryDelayMeasured(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	e.Loop().At(2*time.Millisecond, func() { e.KillExecutor(2) })
	if _, _, err := e.Count(pb); err != nil {
		t.Fatal(err)
	}
	rec := e.Recovery()
	if len(rec.RecoveryDelays) != 1 {
		t.Fatalf("recovery delays = %v, want exactly one epoch", rec.RecoveryDelays)
	}
	if d := rec.MaxRecoveryDelay(); d <= 0 || d > time.Second {
		t.Fatalf("recovery delay = %v, want positive and small", d)
	}
}

// TestDeterminismWithFaultSchedule is the seed-replay property: the same
// fault schedule produces bit-identical results AND a bit-identical full
// event trace (task launches, failures, retries, speculation, recovery).
func TestDeterminismWithFaultSchedule(t *testing.T) {
	run := func() (int64, []string) {
		cfg := testConfig()
		cfg.Recovery.Speculation = true
		cfg.Faults = fault.Schedule{
			Seed:             11,
			StorageErrorProb: 0.05,
			Crashes: []fault.Crash{
				{At: 2 * time.Millisecond, Executor: 2, RestartAfter: 10 * time.Millisecond},
			},
			Stragglers: []fault.Straggler{
				{At: time.Millisecond, For: 20 * time.Millisecond, Executor: 3, Factor: 5},
			},
			BlockLoss: []fault.BlockLoss{
				{At: 4 * time.Millisecond, Pick: 1},
			},
		}
		e := New(cfg)
		var events []string
		e.SetTracer(func(ev TraceEvent) { events = append(events, ev.String()) })
		g := e.Graph()
		src := g.Source("src", dataset(400, 8), true)
		pb := g.PartitionBy(src, "pb", partition.NewHash(16))
		pb.CacheFlag = true
		n, _, err := e.Count(pb)
		if err != nil {
			t.Fatalf("faulted run: %v", err)
		}
		return n, events
	}
	n1, ev1 := run()
	n2, ev2 := run()
	if n1 != 400 || n2 != 400 {
		t.Fatalf("counts = %d, %d, want 400", n1, n2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("traces diverge at event %d:\n  a: %s\n  b: %s", i, ev1[i], ev2[i])
		}
	}
}

// TestMissingShuffleRebuiltForLaterJob: a later job reuses a shuffle that
// persisted from an earlier job, so its producer stage is skipped wholesale
// at submit — then a block-loss fault holes the shuffle while a sibling
// stage is still running. The consumer stage must not deadlock waiting on
// the skipped producer: the shuffle is rebuilt via stage resubmission for
// just the missing partition.
func TestMissingShuffleRebuiltForLaterJob(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	if _, _, err := e.Count(pb); err != nil {
		t.Fatal(err)
	}
	// The join's other parent gets a fresh shuffle, so the join stage waits
	// for it while pb's producer stage is skipped (outputs persist). Hole
	// pb's shuffle mid-wait: block 0 belongs to pb (lowest shuffle id).
	src2 := g.Source("src2", dataset(400, 8), true)
	q := g.PartitionBy(src2, "q", partition.NewHash(8))
	jn := g.Join("jn", partition.NewHash(8), pb, q)
	e.Loop().After(time.Millisecond, func() {
		if !e.DropShuffleBlock(0) {
			t.Error("no shuffle block to drop")
		}
	})
	n, _, err := e.Count(jn)
	if err != nil {
		t.Fatalf("join after block loss: %v", err)
	}
	if n != 400 {
		t.Fatalf("join count = %d, want 400", n)
	}
	if e.Recovery().StageResubmissions == 0 {
		t.Fatal("expected a stage resubmission to rebuild the holed shuffle")
	}
}

// TestBlacklistProbationHealing: a blacklisted executor whose exclusion
// window expires by virtual time (no restart involved) gets probationary
// offers while still listed; its first successful task heals the entry.
func TestBlacklistProbationHealing(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.BlacklistThreshold = 1
	cfg.Recovery.BlacklistExpiry = 2 * time.Millisecond
	e := New(cfg)
	e.noteExecutorFailure(2)
	if got := e.Blacklisted(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("blacklisted = %v, want [2]", got)
	}
	if e.schedulable(2) {
		t.Fatal("executor must be excluded inside the exclusion window")
	}

	// A long job outlives the 2ms window: probation reopens the executor
	// mid-job, it serves tasks, and the first success clears the entry.
	g := e.Graph()
	src := g.Source("src", dataset(4000, 32), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(32))
	n, jm, err := e.Count(pb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4000 {
		t.Fatalf("count = %d, want 4000", n)
	}
	served := false
	for _, tm := range jm.Tasks {
		if tm.Executor == 2 {
			served = true
		}
	}
	if !served {
		t.Fatal("probation never offered the blacklisted executor any task")
	}
	if got := e.Blacklisted(); len(got) != 0 {
		t.Fatalf("successful probation task should clear the blacklist, got %v", got)
	}
	if e.Recovery().ExecutorUnblacklists != 1 {
		t.Fatalf("unblacklists = %d, want 1", e.Recovery().ExecutorUnblacklists)
	}
}

// TestSpeculationOriginalWins: a mild straggler triggers a speculative copy
// but finishes before it — the original wins, the clone is cancelled (the
// task-speculate-lose trace), no speculative win is recorded, and the job
// counts each partition exactly once.
func TestSpeculationOriginalWins(t *testing.T) {
	cfg := testConfig()
	cfg.Recovery.Speculation = true
	e := New(cfg)
	// Factor 1.8 > the 1.5 multiplier, so copies launch at the 75% quantile;
	// but the original only has ~0.8 of a task left while the copy needs a
	// full task, so the original finishes first.
	e.SetStraggler(3, 1.8)
	var lost, won int
	e.SetTracer(func(ev TraceEvent) {
		switch ev.Kind {
		case "task-speculate-lose":
			lost++
		case "task-speculate-win":
			won++
		}
	})
	g := e.Graph()
	src := g.Source("src", dataset(160, 8), true)
	n, jm, err := e.Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 160 {
		t.Fatalf("count = %d, want 160", n)
	}
	rec := e.Recovery()
	if rec.SpeculativeLaunches == 0 {
		t.Fatal("no speculative copies launched against the mild straggler")
	}
	if rec.SpeculativeWins != 0 || won != 0 {
		t.Fatalf("speculative wins = %d (trace %d), want 0 — the original should win", rec.SpeculativeWins, won)
	}
	if lost != rec.SpeculativeLaunches {
		t.Fatalf("speculate-lose traces = %d, want one per launch (%d)", lost, rec.SpeculativeLaunches)
	}
	if len(jm.Tasks) != 8 {
		t.Fatalf("job recorded %d task completions, want 8 (losing clones must not double-count)", len(jm.Tasks))
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug edits
