package engine

import (
	"errors"
	"fmt"
	"time"

	"stark/internal/cluster"
	"stark/internal/journal"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/storage"
)

// costAcc accumulates one task's modeled time and bytes.
type costAcc struct {
	compute     time.Duration
	shuffleRead time.Duration
	diskRead    time.Duration
	diskWrite   time.Duration

	bytesInput   int64
	bytesShuffle int64
	// working approximates the task's transient memory footprint, feeding
	// the GC pressure model.
	working int64
}

func (a *costAcc) ioTotal() time.Duration {
	return a.shuffleRead + a.diskRead + a.diskWrite
}

// sliceOverheadBytes is the fixed footprint of an empty record slice, used
// by the one-pass bucket-size accumulation to reproduce SizeOfSlice exactly.
var sliceOverheadBytes = record.SizeOfSlice(nil)

// runPlane executes one task's data plane against its plane context and
// records the modeled task duration in px.dur. Side effects (cache puts,
// LRU touches, stats, drops) buffer in px for the join. A non-nil px.err
// marks the attempt failed (storage error or fetch failure); the time
// already accumulated is still charged — a failed attempt is not free.
func (e *Engine) runPlane(be *batchEntry) {
	t, exec, px := be.t, be.exec, be.px
	st := t.sr.st
	for _, p := range t.partitions {
		data, err := px.materialize(st.Output, p)
		if err != nil {
			px.err = err
			break
		}
		if st.ShuffleMap {
			e.bucketMapOutput(t, p, data, px)
			continue
		}
		switch t.sr.job.action {
		case ActionCount:
			t.count += int64(len(data))
		case ActionCollect:
			if t.collected == nil {
				t.collected = make(map[int][]record.Record)
			}
			// Copy-on-write: the staged slice aliases the computed (possibly
			// cached) partition. Transforms are pure and the job result is
			// read-only, so no consumer mutates it; STARK_CHECK_COW=1
			// fingerprints the slice here and re-verifies at result-accept.
			t.collected[p] = data
			if record.CowCheckEnabled() {
				if t.collectedFP == nil {
					t.collectedFP = make(map[int]uint64)
				}
				t.collectedFP[p] = record.Fingerprint(data)
			}
		case ActionMaterialize:
			// Materialization is its own reward.
		}
	}

	// GC model: overhead grows with post-task memory pressure including the
	// transient working set (paper Fig. 12's six-RDD effect). Deferred cache
	// puts mean Used() reflects the batch's start-of-event state for every
	// plane — the same state a sequential deferred run would read.
	store := e.cl.Executor(exec).Store
	pressure := 0.0
	if store.Capacity() > 0 {
		pressure = float64(store.Used()+px.acc.working) / float64(store.Capacity())
	}
	gc := time.Duration(float64(px.acc.compute) * e.cfg.Cluster.GC.Factor(pressure))

	t.tm.Compute = px.acc.compute
	t.tm.GC = gc
	t.tm.ShuffleRead = px.acc.shuffleRead
	t.tm.DiskRead = px.acc.diskRead
	t.tm.DiskWrite = px.acc.diskWrite
	t.tm.BytesInput = px.acc.bytesInput
	t.tm.BytesShuffle = px.acc.bytesShuffle

	overhead := e.cfg.Cluster.TaskOverhead
	if t.group {
		overhead += time.Duration(len(t.partitions)) * e.cfg.Cluster.GroupPartitionOverhead
	}
	px.dur = overhead + px.acc.compute + px.acc.ioTotal() + gc
}

// bucketMapOutput buckets one computed map partition by the consumer's
// partitioner and stages it on the task; the buckets register with the
// shuffle service only when the driver accepts the task's result (see
// commitMapOutputs), so an attempt whose executor epoch has moved on can
// never install shuffle outputs.
//
// The partition is lifted into a columnar record.Batch — key slab, one-pass
// FNV hashes, per-record sizes — and stably reordered bucket-major, so every
// bucket is a span view over one backing array instead of a per-bucket
// append-grown copy. Hash partitioners route through the precomputed slab
// hashes; all transient index tables come from the plane's arena scratch.
// Per-bucket byte totals reproduce the old record-by-record accumulation
// exactly: ScaleBytes(sliceOverhead + Σ SizeOfRecord).
func (e *Engine) bucketMapOutput(t *task, p int, data []record.Record, px *planeCtx) {
	st := t.sr.st
	part := st.Consumer.Partitioner
	n := st.Consumer.Parts
	b := record.FromRecords(data)
	nr := b.Len()
	idx := px.scr.I32.Take(nr)
	if hp, ok := part.(partition.Hash); ok {
		for i := 0; i < nr; i++ {
			idx[i] = int32(hp.PartitionForHash(b.Hash32(i)))
		}
	} else {
		for i := 0; i < nr; i++ {
			idx[i] = int32(part.PartitionFor(b.Key(i)))
		}
	}
	pb := b.PartitionStable(idx, n, &px.scr)
	var total int64
	for si := range pb.Spans {
		sp := &pb.Spans[si]
		sp.Bytes = e.cfg.Cluster.ScaleBytes(sliceOverheadBytes + sp.RawBytes)
		total += sp.Bytes
	}
	if t.mapOut == nil {
		t.mapOut = make(map[int]*record.PartitionedBatch)
	}
	t.mapOut[p] = pb
	// Bucketing is a cheap pass over the data; the write hits disk.
	px.acc.compute += e.cfg.Cluster.ComputeTime(total, 0.3)
	px.acc.diskWrite += e.cfg.Cluster.DiskWriteTime(total)
}

// commitMapOutputs writes a map task's staged buckets to persistent storage
// at result-accept time, in partition order. A write failure (injected or
// real) surfaces as ErrStorage for the retry path.
func (e *Engine) commitMapOutputs(t *task) error {
	if t.mapOut == nil {
		return nil
	}
	st := t.sr.st
	for _, p := range t.partitions {
		out, ok := t.mapOut[p]
		if !ok {
			continue
		}
		if err := e.store.WriteMapOutputBatch(st.ShuffleID, p, out); err != nil {
			return fmt.Errorf("%w: map output write shuffle %d part %d: %w", ErrStorage, st.ShuffleID, p, err)
		}
		e.journalAppend(journal.Record{Kind: journal.KindMapOutput,
			A: int64(st.ShuffleID), B: int64(p), C: int64(st.Output.Parts), D: int64(st.Consumer.Parts)})
	}
	t.mapOut = nil
	return nil
}

// materialize produces partition p of r on the context's executor, honoring
// the engine's Spark-faithful semantics: only the local cache is consulted
// (a partition cached on a *different* executor is recomputed, never fetched
// — the amplification co-locality removes), checkpoints and shuffle outputs
// are read from persistent storage, and everything else recurses through
// narrow parents. Storage failures surface as ErrStorage; a shuffle read
// against an incomplete shuffle (lost map outputs) surfaces as a fetchError
// so the recovery plane resubmits the producing stage.
func (px *planeCtx) materialize(r *rdd.RDD, p int) ([]record.Record, error) {
	e := px.e
	id := cluster.BlockID{RDD: r.ID, Partition: p}
	if data, ok := px.cacheGet(id); ok {
		px.cacheHit()
		return data, nil
	}
	if r.CacheFlag {
		// The block was requested from a cache-enabled RDD and missed: this
		// is the recompute penalty the locality machinery exists to avoid.
		px.cacheMiss()
		if e.evictedEver[id] {
			px.evictedRecompute()
		}
	}
	if r.Checkpointed && e.store.HasCheckpoint(r.ID, p) {
		data, bytes, err := e.store.ReadCheckpoint(r.ID, p)
		if err != nil {
			if errors.Is(err, storage.ErrCorrupt) {
				// Integrity failure: evict the bad block so the retry attempt
				// recomputes the partition through lineage.
				px.dropCorrupt(true, r.ID, p, fmt.Sprintf("checkpoint %s[%d]", r, p))
			}
			return nil, fmt.Errorf("%w: checkpoint read %s[%d]: %w", ErrStorage, r, p, err)
		}
		px.acc.diskRead += e.cfg.Cluster.DiskReadTime(bytes)
		px.acc.working += bytes
		px.finishPartition(r, p, data, -1)
		return data, nil
	}

	var data []record.Record
	switch r.Kind {
	case rdd.KindSource:
		if p < 0 || p >= len(r.Source) {
			// Out-of-range source partitions are lineage-graph corruption, not
			// a runtime fault; keep the invariant panic.
			panic(fmt.Sprintf("engine: source %s has no partition %d", r, p))
		}
		data = r.Source[p]
		if record.CowCheckEnabled() && p < len(r.COWSums) {
			if got := record.Fingerprint(data); got != r.COWSums[p] {
				panic(fmt.Sprintf("engine: source %s[%d] mutated after graph construction (copy-on-write violation)", r, p))
			}
		}
		// Source partitions are immutable after graph construction, so the
		// size walk is memoized through the partition-size overlay instead of
		// re-walking the slice on every recompute.
		bytes := px.partBytesOf(r, p)
		if bytes <= 0 {
			bytes = e.cfg.Cluster.ScaleBytes(record.SizeOfSlice(data))
		}
		if r.SourceFromDisk {
			px.acc.diskRead += e.cfg.Cluster.DiskReadTime(bytes)
		}
		px.acc.working += bytes
		px.acc.bytesInput += bytes
		px.finishPartition(r, p, data, bytes)
		return data, nil
	default:
		inputs := make([][]record.Record, len(r.Deps))
		var inputBytes int64
		for i, d := range r.Deps {
			if d.Shuffle {
				//starklint:ignore planetaint ReadReduce's lazy index rebuild only runs when the shuffle is dirty, and PrepareShuffleReads forces every rebuild on the event loop before parallel dispatch; the worker-side call is read-only at runtime
				recs, bytes, err := e.store.ReadReduce(d.ShuffleID, p)
				if err != nil {
					var ce *storage.CorruptError
					if errors.As(err, &ce) {
						// Integrity failure on a map output: evict it and report
						// a fetch failure so the producing stage resubmits.
						px.dropCorrupt(false, ce.Shuffle, ce.MapPart,
							fmt.Sprintf("shuffle=%d map=%d", ce.Shuffle, ce.MapPart))
						return nil, &fetchError{shuffle: d.ShuffleID, err: err}
					}
					if !e.store.ShuffleComplete(d.ShuffleID) {
						return nil, &fetchError{shuffle: d.ShuffleID, err: err}
					}
					return nil, fmt.Errorf("%w: shuffle read for %s[%d]: %w", ErrStorage, r, p, err)
				}
				// Map outputs are spread across the cluster: all bytes come
				// off disk, and on average (E-1)/E of them cross the network.
				px.acc.shuffleRead += e.cfg.Cluster.DiskReadTime(bytes)
				if n := e.cl.NumExecutors(); n > 1 {
					remote := bytes * int64(n-1) / int64(n)
					px.acc.shuffleRead += e.cfg.Cluster.NetTime(remote)
				}
				px.acc.bytesShuffle += bytes
				inputs[i] = recs
				inputBytes += bytes
			} else {
				pp := p
				if d.Map != nil {
					mapped, ok := d.Map(p)
					if !ok {
						continue // this parent contributes nothing here
					}
					pp = mapped
				}
				in, err := px.materialize(d.Parent, pp)
				if err != nil {
					return nil, err
				}
				inputs[i] = in
				inputBytes += px.partBytesOf(d.Parent, pp)
			}
		}
		ct := e.cfg.Cluster.ComputeTime(inputBytes, r.CostFactor)
		data = r.Transform(p, inputs)
		px.acc.compute += ct
		px.acc.bytesInput += inputBytes
		px.noteTransformTime(r, ct)
	}
	px.finishPartition(r, p, data, -1)
	return data, nil
}

// finishPartition records the partition's size and caches it when requested.
// knownBytes short-circuits the size walk when the caller already computed
// it; otherwise a previously recorded size is reused (transforms are pure,
// so a recompute always reproduces the same bytes) and only never-measured
// partitions pay the SizeOfSlice walk.
func (px *planeCtx) finishPartition(r *rdd.RDD, p int, data []record.Record, knownBytes int64) {
	bytes := knownBytes
	if bytes < 0 {
		if b := px.partBytesOf(r, p); b > 0 {
			bytes = b
		} else {
			bytes = px.e.cfg.Cluster.ScaleBytes(record.SizeOfSlice(data))
		}
	}
	px.setPartBytes(r, p, bytes)
	px.acc.working += bytes
	if r.CacheFlag {
		px.cachePut(cluster.BlockID{RDD: r.ID, Partition: p}, data, bytes)
	}
}
