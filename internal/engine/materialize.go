package engine

import (
	"errors"
	"fmt"
	"time"

	"stark/internal/cluster"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/storage"
)

// costAcc accumulates one task's modeled time and bytes.
type costAcc struct {
	compute     time.Duration
	shuffleRead time.Duration
	diskRead    time.Duration
	diskWrite   time.Duration

	bytesInput   int64
	bytesShuffle int64
	// working approximates the task's transient memory footprint, feeding
	// the GC pressure model.
	working int64
}

func (a *costAcc) ioTotal() time.Duration {
	return a.shuffleRead + a.diskRead + a.diskWrite
}

// runTask executes the task's data plane on the chosen executor and returns
// the modeled task duration. Cache mutations (including evictions) apply
// immediately; the duration covers compute, IO, GC and fixed overhead. A
// non-nil error marks the attempt failed (storage error or fetch failure);
// the time already accumulated is still charged — a failed attempt is not
// free.
func (e *Engine) runTask(t *task, exec int) (time.Duration, error) {
	acc := &costAcc{}
	st := t.sr.st
	var taskErr error
	for _, p := range t.partitions {
		data, err := e.materialize(st.Output, p, exec, acc)
		if err != nil {
			taskErr = err
			break
		}
		if st.ShuffleMap {
			e.bucketMapOutput(t, p, data, acc)
			continue
		}
		switch t.sr.job.action {
		case ActionCount:
			t.count += int64(len(data))
		case ActionCollect:
			if t.collected == nil {
				t.collected = make(map[int][]record.Record)
			}
			t.collected[p] = record.Clone(data)
		case ActionMaterialize:
			// Materialization is its own reward.
		}
	}

	// GC model: overhead grows with post-task memory pressure including the
	// transient working set (paper Fig. 12's six-RDD effect).
	store := e.cl.Executor(exec).Store
	pressure := 0.0
	if store.Capacity() > 0 {
		pressure = float64(store.Used()+acc.working) / float64(store.Capacity())
	}
	gc := time.Duration(float64(acc.compute) * e.cfg.Cluster.GC.Factor(pressure))

	t.tm.Compute = acc.compute
	t.tm.GC = gc
	t.tm.ShuffleRead = acc.shuffleRead
	t.tm.DiskRead = acc.diskRead
	t.tm.DiskWrite = acc.diskWrite
	t.tm.BytesInput = acc.bytesInput
	t.tm.BytesShuffle = acc.bytesShuffle

	overhead := e.cfg.Cluster.TaskOverhead
	if t.group {
		overhead += time.Duration(len(t.partitions)) * e.cfg.Cluster.GroupPartitionOverhead
	}
	return overhead + acc.compute + acc.ioTotal() + gc, taskErr
}

// bucketMapOutput buckets one computed map partition by the consumer's
// partitioner and stages it on the task; the buckets register with the
// shuffle service only when the driver accepts the task's result (see
// commitMapOutputs), so an attempt whose executor epoch has moved on can
// never install shuffle outputs.
func (e *Engine) bucketMapOutput(t *task, p int, data []record.Record, acc *costAcc) {
	st := t.sr.st
	part := st.Consumer.Partitioner
	buckets := make(map[int][]record.Record)
	for _, rec := range data {
		b := part.PartitionFor(rec.Key)
		buckets[b] = append(buckets[b], rec)
	}
	out := make(map[int]storage.Bucket, len(buckets))
	var total int64
	for b, recs := range buckets {
		bytes := e.cfg.Cluster.ScaleBytes(record.SizeOfSlice(recs))
		out[b] = storage.Bucket{Data: recs, Bytes: bytes}
		total += bytes
	}
	if t.mapOut == nil {
		t.mapOut = make(map[int]map[int]storage.Bucket)
	}
	t.mapOut[p] = out
	// Bucketing is a cheap pass over the data; the write hits disk.
	acc.compute += e.cfg.Cluster.ComputeTime(total, 0.3)
	acc.diskWrite += e.cfg.Cluster.DiskWriteTime(total)
}

// commitMapOutputs writes a map task's staged buckets to persistent storage
// at result-accept time, in partition order. A write failure (injected or
// real) surfaces as ErrStorage for the retry path.
func (e *Engine) commitMapOutputs(t *task) error {
	if t.mapOut == nil {
		return nil
	}
	st := t.sr.st
	for _, p := range t.partitions {
		out, ok := t.mapOut[p]
		if !ok {
			continue
		}
		if err := e.store.WriteMapOutput(st.ShuffleID, p, out); err != nil {
			return fmt.Errorf("%w: map output write shuffle %d part %d: %w", ErrStorage, st.ShuffleID, p, err)
		}
	}
	t.mapOut = nil
	return nil
}

// materialize produces partition p of r on the given executor, honoring the
// engine's Spark-faithful semantics: only the local cache is consulted (a
// partition cached on a *different* executor is recomputed, never fetched —
// the amplification co-locality removes), checkpoints and shuffle outputs
// are read from persistent storage, and everything else recurses through
// narrow parents. Storage failures surface as ErrStorage; a shuffle read
// against an incomplete shuffle (lost map outputs) surfaces as a
// fetchError so the recovery plane resubmits the producing stage.
func (e *Engine) materialize(r *rdd.RDD, p int, exec int, acc *costAcc) ([]record.Record, error) {
	id := cluster.BlockID{RDD: r.ID, Partition: p}
	if data, ok := e.cl.CacheGet(exec, id); ok {
		e.stats.CacheHits++
		return data, nil
	}
	if r.CacheFlag {
		// The block was requested from a cache-enabled RDD and missed: this
		// is the recompute penalty the locality machinery exists to avoid.
		e.stats.CacheMisses++
	}
	if r.Checkpointed && e.store.HasCheckpoint(r.ID, p) {
		data, bytes, err := e.store.ReadCheckpoint(r.ID, p)
		if err != nil {
			if errors.Is(err, storage.ErrCorrupt) {
				// Integrity failure: evict the bad block so the retry attempt
				// recomputes the partition through lineage.
				e.store.DropCheckpoint(r.ID, p)
				e.recUpdate(func(m *recMetrics) { m.CorruptBlocks++ })
				e.trace("block-corrupt", -1, -1, -1, -1, fmt.Sprintf("checkpoint %s[%d]", r, p))
			}
			return nil, fmt.Errorf("%w: checkpoint read %s[%d]: %w", ErrStorage, r, p, err)
		}
		acc.diskRead += e.cfg.Cluster.DiskReadTime(bytes)
		acc.working += bytes
		e.finishPartition(r, p, exec, data, acc)
		return data, nil
	}

	var data []record.Record
	switch r.Kind {
	case rdd.KindSource:
		if p < 0 || p >= len(r.Source) {
			// Out-of-range source partitions are lineage-graph corruption, not
			// a runtime fault; keep the invariant panic.
			panic(fmt.Sprintf("engine: source %s has no partition %d", r, p))
		}
		data = r.Source[p]
		bytes := e.cfg.Cluster.ScaleBytes(record.SizeOfSlice(data))
		if r.SourceFromDisk {
			acc.diskRead += e.cfg.Cluster.DiskReadTime(bytes)
		}
		acc.working += bytes
		acc.bytesInput += bytes
	default:
		inputs := make([][]record.Record, len(r.Deps))
		var inputBytes int64
		for i, d := range r.Deps {
			if d.Shuffle {
				recs, bytes, err := e.store.ReadReduce(d.ShuffleID, p)
				if err != nil {
					var ce *storage.CorruptError
					if errors.As(err, &ce) {
						// Integrity failure on a map output: evict it and report
						// a fetch failure so the producing stage resubmits.
						e.store.DropMapOutput(ce.Shuffle, ce.MapPart)
						e.recUpdate(func(m *recMetrics) { m.CorruptBlocks++ })
						e.trace("block-corrupt", -1, -1, -1, -1,
							fmt.Sprintf("shuffle=%d map=%d", ce.Shuffle, ce.MapPart))
						return nil, &fetchError{shuffle: d.ShuffleID, err: err}
					}
					if !e.store.ShuffleComplete(d.ShuffleID) {
						return nil, &fetchError{shuffle: d.ShuffleID, err: err}
					}
					return nil, fmt.Errorf("%w: shuffle read for %s[%d]: %w", ErrStorage, r, p, err)
				}
				// Map outputs are spread across the cluster: all bytes come
				// off disk, and on average (E-1)/E of them cross the network.
				acc.shuffleRead += e.cfg.Cluster.DiskReadTime(bytes)
				if n := e.cl.NumExecutors(); n > 1 {
					remote := bytes * int64(n-1) / int64(n)
					acc.shuffleRead += e.cfg.Cluster.NetTime(remote)
				}
				acc.bytesShuffle += bytes
				inputs[i] = recs
				inputBytes += bytes
			} else {
				pp := p
				if d.Map != nil {
					mapped, ok := d.Map(p)
					if !ok {
						continue // this parent contributes nothing here
					}
					pp = mapped
				}
				in, err := e.materialize(d.Parent, pp, exec, acc)
				if err != nil {
					return nil, err
				}
				inputs[i] = in
				inputBytes += e.partBytes(d.Parent, pp)
			}
		}
		ct := e.cfg.Cluster.ComputeTime(inputBytes, r.CostFactor)
		data = r.Transform(p, inputs)
		acc.compute += ct
		acc.bytesInput += inputBytes
		if ct > r.MaxTransformTime {
			r.MaxTransformTime = ct
		}
	}
	e.finishPartition(r, p, exec, data, acc)
	return data, nil
}

// finishPartition records the partition's size and caches it when requested.
func (e *Engine) finishPartition(r *rdd.RDD, p, exec int, data []record.Record, acc *costAcc) {
	bytes := e.cfg.Cluster.ScaleBytes(record.SizeOfSlice(data))
	if r.PartBytes == nil {
		r.PartBytes = make([]int64, r.Parts)
	}
	r.PartBytes[p] = bytes
	acc.working += bytes
	if r.CacheFlag {
		id := cluster.BlockID{RDD: r.ID, Partition: p}
		evicted := e.cl.CachePut(exec, id, data, bytes)
		e.onEvictions(exec, evicted)
		e.wakeTasks(id)
	}
}

// partBytes reads a recorded partition size, falling back to measuring the
// source directly for never-recorded partitions.
func (e *Engine) partBytes(r *rdd.RDD, p int) int64 {
	if r.PartBytes != nil && p < len(r.PartBytes) {
		return r.PartBytes[p]
	}
	return 0
}
