package engine

import (
	"errors"
	"testing"
	"time"

	"stark/internal/partition"
)

// countingCloser records how often the journal sink was closed — the handle
// hygiene the shutdown contract promises: exactly once, no matter how many
// times or in which driver state Close runs.
type countingCloser struct {
	writes int
	closes int
	failAt int // nth write that fails (0 = never)
}

func (c *countingCloser) Write(p []byte) (int, error) {
	c.writes++
	if c.failAt > 0 && c.writes >= c.failAt {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func (c *countingCloser) Close() error {
	c.closes++
	return nil
}

// TestCloseIdempotent: Close fails in-flight jobs with a typed
// ErrJobCancelled chain, closes the journal sink exactly once, and every
// later Close — and every later submission, crash, or restart — is a
// harmless no-op.
func TestCloseIdempotent(t *testing.T) {
	e := New(driverTestConfig())
	sink := &countingCloser{}
	e.Journal().SetSink(sink)
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))

	var inflight error
	done := false
	e.SubmitJob(pb, ActionCount, func(r JobResult) {
		inflight = r.Err
		done = true
	})
	e.Loop().At(time.Millisecond, func() {
		if err := e.Close(); err != nil {
			t.Errorf("first Close: %v", err)
		}
	})
	e.Loop().Run()

	if !done {
		t.Fatal("in-flight job never delivered a result")
	}
	if !errors.Is(inflight, ErrJobCancelled) {
		t.Fatalf("in-flight job error = %v, want ErrJobCancelled chain", inflight)
	}
	if sink.closes != 1 {
		t.Fatalf("journal sink closed %d times, want exactly 1", sink.closes)
	}

	// Double Close: no panic, no second sink close, same (nil) error.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if sink.closes != 1 {
		t.Fatalf("double Close leaked a second sink close (%d)", sink.closes)
	}

	// Submissions after Close fail fast with the same typed chain.
	var late error
	e.SubmitJob(pb, ActionCount, func(r JobResult) { late = r.Err })
	if !errors.Is(late, ErrJobCancelled) {
		t.Fatalf("post-close submission error = %v, want ErrJobCancelled chain", late)
	}
	if rec := e.Recovery(); rec.JobCancellations != 1 {
		t.Fatalf("JobCancellations = %d, want 1 (the in-flight job)", rec.JobCancellations)
	}

	// Driver fault surface after Close: both ignore the closed engine.
	e.CrashDriver(0)
	if e.DriverDown() {
		t.Fatal("CrashDriver acted on a closed driver")
	}
	e.RestartDriver()
}

// TestCloseDuringCrashRecovery: Close landing inside a crash window (driver
// down, submissions buffered) must fail the buffered jobs with the typed
// chain, close the journal sink exactly once, and leave RestartDriver a
// no-op — the shutdown wins over the in-progress recovery.
func TestCloseDuringCrashRecovery(t *testing.T) {
	e := New(driverTestConfig())
	sink := &countingCloser{}
	e.Journal().SetSink(sink)
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))

	var buffered error
	e.Loop().At(time.Millisecond, func() { e.CrashDriver(0) })
	e.Loop().At(2*time.Millisecond, func() {
		e.SubmitJob(pb, ActionCount, func(r JobResult) { buffered = r.Err })
		if !e.DriverDown() {
			t.Error("driver expected down at submit time")
		}
	})
	e.Loop().At(3*time.Millisecond, func() {
		if err := e.Close(); err != nil {
			t.Errorf("Close during crash window: %v", err)
		}
	})
	// The scheduled restart from a recovery plan that raced the shutdown.
	e.Loop().At(4*time.Millisecond, func() { e.RestartDriver() })
	e.Loop().Run()

	if !errors.Is(buffered, ErrJobCancelled) {
		t.Fatalf("buffered job error = %v, want ErrJobCancelled chain", buffered)
	}
	if e.DriverDown() {
		t.Fatal("closed driver reports down: RestartDriver should not have flipped state")
	}
	if sink.closes != 1 {
		t.Fatalf("journal sink closed %d times, want exactly 1", sink.closes)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close after close-during-recovery: %v", err)
	}
	if sink.closes != 1 {
		t.Fatalf("repeat Close re-closed the sink (%d)", sink.closes)
	}
}

// TestCloseLatchesSinkWriteError: a failing sink neither panics Append nor
// loses the diagnosis — the first write error is latched and surfaces from
// Close, idempotently.
func TestCloseLatchesSinkWriteError(t *testing.T) {
	e := New(driverTestConfig())
	sink := &countingCloser{failAt: 1}
	e.Journal().SetSink(sink)
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	if _, _, err := e.Count(pb); err != nil {
		t.Fatalf("count: %v", err)
	}
	err := e.Close()
	if err == nil {
		t.Fatal("Close did not surface the latched sink write error")
	}
	if again := e.Close(); again != err {
		t.Fatalf("repeat Close returned %v, want the same latched error %v", again, err)
	}
}
