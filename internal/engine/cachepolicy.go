package engine

import (
	"fmt"

	"stark/internal/cluster"
	"stark/internal/metrics"
)

// This file wires the pluggable eviction policy into the driver: policy
// installation, the DAG reference counts charged per stage run, and the
// memory-pressure counters (CacheStats) that experiments read.

// cacheMetrics shortens the signature of cacheUpdate closures.
type cacheMetrics = metrics.CacheMetrics

// cacheUpdate applies one mutation to the cache counters under recMu (same
// discipline as recUpdate: writes on the loop goroutine, snapshots from
// anywhere).
func (e *Engine) cacheUpdate(f func(*cacheMetrics)) {
	e.recMu.Lock()
	f(&e.cacheRec)
	e.recMu.Unlock()
}

// CacheStats returns a snapshot of the memory-pressure and eviction-policy
// counters. Safe to call from any goroutine.
func (e *Engine) CacheStats() metrics.CacheMetrics {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	return e.cacheRec
}

// validateCachePolicy rejects unknown Config.CachePolicy values.
func validateCachePolicy(p string) error {
	switch p {
	case "", "lru", "dag":
		return nil
	}
	return fmt.Errorf("engine: unknown cache policy %q (want \"lru\" or \"dag\")", p)
}

// installCachePolicy applies Config.CachePolicy to the cluster's block
// stores. The DAG policy's group function resolves peer blocks through the
// engine's namespace unit mapping, so a collection partition group is pinned
// or evicted as a whole.
func (e *Engine) installCachePolicy() {
	if err := validateCachePolicy(e.cfg.CachePolicy); err != nil {
		panic(err) // misconfiguration; Validate offers the error-returning path
	}
	if e.cfg.CachePolicy != "dag" {
		e.cacheRec.Policy = "lru"
		return
	}
	e.dagPol = cluster.NewDAGPolicy()
	e.dagPol.SetGroupFn(func(id cluster.BlockID) (string, bool) {
		ns, unit, ok := e.unitOf(id)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%s/%d", ns, unit), true
	})
	e.cl.SetPolicy(e.dagPol)
	e.cacheRec.Policy = "dag"
}

// noteEvicted marks policy-evicted blocks so later misses on them count as
// recomputes-after-eviction (materialize.go reads the set from plane
// goroutines; it is only mutated here, at join, while planes are quiesced).
func (e *Engine) noteEvicted(evicted []cluster.BlockID) {
	for _, id := range evicted {
		e.evictedEver[id] = true
	}
}

// countRefusal folds one graceful cache refusal into the counters.
func (e *Engine) countRefusal(st cluster.PutStatus) {
	e.cacheUpdate(func(m *cacheMetrics) {
		m.CacheRefusals++
		if st == cluster.PutPinnedBlocked {
			m.PinnedEvictionsBlocked++
		}
	})
}

// chargeStage charges one DAG reference per cacheable RDD the stage's
// narrow chain reads or produces. The charges are remembered on the run so
// release is exact and idempotent. Refcounts are volatile driver state:
// CrashDriver resets the table wholesale and resubmission re-charges fresh
// runs here.
func (e *Engine) chargeStage(sr *stageRun) {
	if e.dagPol == nil || sr.charged != nil {
		return
	}
	seen := make(map[int]bool)
	for _, r := range sr.st.NarrowChain() {
		if r.CacheFlag && !seen[r.ID] {
			seen[r.ID] = true
			sr.charged = append(sr.charged, r.ID)
			e.dagPol.Charge(r.ID, 1)
		}
	}
}

// releaseStage returns a run's charges once the stage truly completed (or
// its job finished, covering failure and cancellation leftovers).
func (e *Engine) releaseStage(sr *stageRun) {
	if e.dagPol == nil {
		return
	}
	for _, id := range sr.charged {
		e.dagPol.Release(id, 1)
	}
	sr.charged = nil
}
