package engine

import (
	"fmt"
	"time"

	"stark/internal/checkpoint"
	"stark/internal/journal"
	"stark/internal/rdd"
)

// checkpointStats supplies (d, c) for the optimizer: recovery delay is the
// maximum observed transform time, cost is the serialized size.
func (e *Engine) checkpointStats(r *rdd.RDD) (time.Duration, int64) {
	c := int64(float64(r.TotalBytes()) * e.cfg.Checkpoint.SerializationRatio)
	return r.MaxTransformTime, c
}

// maybeCheckpoint runs the configured checkpointing algorithm after a job
// completes, using the job's final RDD as the trigger (paper Sec. III-D:
// "Stark keeps track of all uncheckpointed RDDs, and triggers the
// checkpoint algorithm whenever the length of any path grows beyond the
// user defined failure recovery delay upper bound").
func (e *Engine) maybeCheckpoint(final *rdd.RDD) {
	cc := e.cfg.Checkpoint
	if cc.Mode == CheckpointOff {
		return
	}
	if !checkpoint.Violates(final, cc.Bound, e.checkpointStats) {
		return
	}
	var plan checkpoint.Plan
	switch cc.Mode {
	case CheckpointOptimal:
		plan = checkpoint.Optimize(final, cc.Bound, cc.Relax, e.checkpointStats)
	case CheckpointEdge:
		plan = checkpoint.EdgePlan(e.graph.RDDs(), e.checkpointStats)
	}
	for _, r := range plan.Select {
		e.ForceCheckpoint(r)
	}
}

// ForceCheckpoint persists every partition of an already-materialized RDD
// (the paper's RDD.forceCheckpoint API, which lifts Spark's restriction
// that checkpointing be requested before materialization). RDDs that were
// never materialized are skipped. With no live executor to produce the
// data the checkpoint is deferred until one restarts; a storage failure
// mid-checkpoint abandons the attempt (no partial Checkpointed state — a
// later trigger retries).
func (e *Engine) ForceCheckpoint(r *rdd.RDD) {
	if r.Checkpointed || r.PartBytes == nil {
		return
	}
	ratio := e.cfg.Checkpoint.SerializationRatio
	for p := 0; p < r.Parts; p++ {
		exec, ok := e.partitionHome(r, p)
		if !ok {
			e.deferCheckpoint(r)
			return
		}
		px := e.newPlaneCtx(exec) // checkpoint IO runs on a background thread
		px.immediate = true
		data, err := px.materialize(r, p)
		releasePlaneCtx(px)
		if err == nil {
			cpBytes := int64(float64(r.PartBytes[p]) * ratio)
			err = e.store.WriteCheckpoint(r.ID, p, data, cpBytes)
		}
		if err != nil {
			e.trace("checkpoint-abort", -1, -1, -1, -1,
				fmt.Sprintf("%s[%d]: %v", r, p, err))
			return
		}
	}
	r.Checkpointed = true
	e.invalidateStageChains()
	e.journalAppend(journal.Record{Kind: journal.KindCheckpoint, A: int64(r.ID)})
	e.trace("checkpoint", -1, -1, -1, -1, r.String())
}

// invalidateStageChains drops every live stage's memoized NarrowChain.
// Called whenever an RDD's Checkpointed flag flips while stages may be live
// (mid-run ForceCheckpoint via drainDeferredCheckpoints, journal replay,
// store reconciliation): the memo would otherwise keep walking through — or
// stopping at — the wrong checkpoint frontier.
func (e *Engine) invalidateStageChains() {
	for _, st := range e.shuffleStages {
		st.InvalidateChain()
	}
	for _, j := range e.jobTab {
		for _, sr := range j.stages {
			sr.st.InvalidateChain()
		}
	}
}

// deferCheckpoint parks an RDD whose checkpoint found no live executor;
// RestartExecutor drains the queue.
func (e *Engine) deferCheckpoint(r *rdd.RDD) {
	for _, q := range e.pendingCP {
		if q == r {
			return
		}
	}
	e.pendingCP = append(e.pendingCP, r)
	e.recUpdate(func(r *recMetrics) { r.CheckpointDeferrals++ })
	e.trace("checkpoint-defer", -1, -1, -1, -1, r.String())
}

// drainDeferredCheckpoints retries checkpoints parked for lack of live
// executors.
func (e *Engine) drainDeferredCheckpoints() {
	if len(e.pendingCP) == 0 || len(e.cl.AliveExecutors()) == 0 {
		return
	}
	pending := e.pendingCP
	e.pendingCP = nil
	for _, r := range pending {
		e.ForceCheckpoint(r)
	}
}

// partitionHome picks the executor best placed to produce a partition: a
// cache holder first, the namespace primary second, any live executor last.
// ok is false when the cluster has no live executor at all.
func (e *Engine) partitionHome(r *rdd.RDD, p int) (int, bool) {
	for _, chain := range []*rdd.RDD{r} {
		locs := e.filterAlive(e.cl.Locations(blockID(chain.ID, p)))
		if len(locs) > 0 {
			return locs[0], true
		}
	}
	if ns := e.activeNamespace(r); ns != "" {
		unit := p
		if e.cfg.Features.Extendable && e.grp.Registered(ns) {
			if g, err := e.grp.GroupOf(ns, p); err == nil {
				unit = g.ID
			}
		}
		if primary, ok := e.loc.Primary(ns, unit); ok && !e.cl.Executor(primary).Dead() {
			return primary, true
		}
	}
	alive := e.cl.AliveExecutors()
	if len(alive) == 0 {
		return -1, false
	}
	return alive[p%len(alive)], true
}
