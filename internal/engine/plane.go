package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stark/internal/cluster"
	"stark/internal/rdd"
	"stark/internal/record"
)

// This file implements the engine's two-clock execution model. The control
// plane — scheduling, fault handling, recovery, checkpoint decisions — stays
// single-threaded on the virtual-time event loop. The data plane — the pure
// per-partition compute inside a task (user transforms, shuffle bucketing,
// integrity verification) — is deferred: execTask appends the task to a
// batch instead of running it inline, and drainBatch runs the batch at the
// event boundary, optionally on a worker pool, then joins results back into
// the control plane in dispatch order.
//
// Determinism argument: planes touch no shared mutable state. Cache reads go
// through a non-mutating Peek plus a per-plane overlay of the task's own
// writes; cache puts, LRU touches, partition-size records, stats deltas,
// block drops and traces are logged per plane and replayed by the join in
// dispatch order, exactly as a sequential deferred run would apply them.
// Virtual timestamps, task ordering and RNG draws therefore do not depend on
// the worker-pool size: parallelism 1 and N are byte-identical.

// batchEntry is one dispatched-but-not-yet-executed task.
type batchEntry struct {
	t    *task
	exec int
	px   *planeCtx
	// panicked holds a panic value captured on a worker goroutine, rethrown
	// at join time so plane panics (e.g. STARK_CHECK_COW violations) always
	// surface on the event-loop goroutine where callers can recover them.
	panicked any
}

// partKey addresses one partition-size overlay slot.
type partKey struct {
	r *rdd.RDD
	p int
}

// cacheOp logs one deferred executor-cache operation in program order. Gets
// are replayed purely for their LRU recency effect.
type cacheOp struct {
	put   bool
	id    cluster.BlockID
	data  []record.Record
	bytes int64
}

// deferredDrop logs an integrity-failure eviction (corrupt checkpoint or map
// output) discovered by the plane, applied and counted at join time.
type deferredDrop struct {
	checkpoint bool
	a, b       int
	detail     string
}

// planeCtx carries one task's data-plane state: the cost accumulator plus
// buffered side effects. In immediate mode (ForceCheckpoint's synchronous
// materialization) every effect applies straight through instead.
type planeCtx struct {
	e         *Engine
	exec      int
	immediate bool
	acc       costAcc

	// local overlays the executor cache with this task's own deferred puts,
	// so a diamond-shaped narrow chain re-reading a partition it just cached
	// hits, as it would inline.
	local map[cluster.BlockID][]record.Record
	ops   []cacheOp
	drops []deferredDrop
	// partBytes overlays rdd.PartBytes with this task's own measurements.
	partBytes map[partKey]int64
	// maxTT accumulates per-RDD max transform time for a deferred max-merge.
	maxTT        map[*rdd.RDD]time.Duration
	hits, misses int64
	// recomputes counts cache misses on blocks a policy eviction previously
	// dropped, merged into CacheStats at join.
	recomputes int64

	// scr backs the plane's transient tables (shuffle bucketing indexes,
	// span permutations) with bump-allocated arenas. It is reset at the
	// batch boundary when the context is released, so steady-state planes
	// reuse one warm buffer per pool instead of allocating per task.
	scr record.Scratch

	dur time.Duration
	err error
}

var planeCtxPool = sync.Pool{New: func() any { return &planeCtx{} }}

func (e *Engine) newPlaneCtx(exec int) *planeCtx {
	px := planeCtxPool.Get().(*planeCtx)
	px.e = e
	px.exec = exec
	return px
}

func releasePlaneCtx(px *planeCtx) {
	for k := range px.local {
		delete(px.local, k)
	}
	for k := range px.partBytes {
		delete(px.partBytes, k)
	}
	for k := range px.maxTT {
		delete(px.maxTT, k)
	}
	for i := range px.ops {
		px.ops[i] = cacheOp{}
	}
	for i := range px.drops {
		px.drops[i] = deferredDrop{}
	}
	px.scr.Reset()
	*px = planeCtx{local: px.local, partBytes: px.partBytes, maxTT: px.maxTT,
		ops: px.ops[:0], drops: px.drops[:0], scr: px.scr}
	planeCtxPool.Put(px)
}

// cacheGet reads a block from the task's executor cache. Deferred mode never
// touches LRU order; the recency update replays at join.
func (px *planeCtx) cacheGet(id cluster.BlockID) ([]record.Record, bool) {
	if px.immediate {
		return px.e.cl.CacheGet(px.exec, id)
	}
	if data, ok := px.local[id]; ok {
		px.ops = append(px.ops, cacheOp{id: id})
		return data, true
	}
	data, ok := px.e.cl.CachePeek(px.exec, id)
	if ok {
		px.ops = append(px.ops, cacheOp{id: id})
	}
	return data, ok
}

// cachePut stores a block in the task's executor cache; deferred mode logs
// the put (evictions and task wake-ups happen at join). Immediate mode is
// the driver's own synchronous materialization, so a refused put degrades
// to a counted refusal and never OOM-fails.
func (px *planeCtx) cachePut(id cluster.BlockID, data []record.Record, bytes int64) {
	if px.immediate {
		evicted, st := px.e.cl.CachePutChecked(px.exec, id, data, bytes)
		px.e.noteEvicted(evicted)
		px.e.onEvictions(px.exec, evicted)
		if st == cluster.PutStored {
			px.e.wakeTasks(id)
		} else {
			px.e.countRefusal(st)
		}
		return
	}
	if px.local == nil {
		px.local = make(map[cluster.BlockID][]record.Record)
	}
	px.local[id] = data
	px.ops = append(px.ops, cacheOp{put: true, id: id, data: data, bytes: bytes})
}

// partBytesOf reads a recorded partition size through the overlay.
func (px *planeCtx) partBytesOf(r *rdd.RDD, p int) int64 {
	if !px.immediate {
		if b, ok := px.partBytes[partKey{r, p}]; ok {
			return b
		}
	}
	if r.PartBytes != nil && p < len(r.PartBytes) {
		return r.PartBytes[p]
	}
	return 0
}

// setPartBytes records a partition size, deferred through the overlay.
func (px *planeCtx) setPartBytes(r *rdd.RDD, p int, bytes int64) {
	if px.immediate {
		if r.PartBytes == nil {
			r.PartBytes = make([]int64, r.Parts)
		}
		r.PartBytes[p] = bytes
		return
	}
	if px.partBytes == nil {
		px.partBytes = make(map[partKey]int64)
	}
	px.partBytes[partKey{r, p}] = bytes
}

// noteTransformTime accumulates the per-RDD max transform time.
func (px *planeCtx) noteTransformTime(r *rdd.RDD, ct time.Duration) {
	if px.immediate {
		if ct > r.MaxTransformTime {
			r.MaxTransformTime = ct
		}
		return
	}
	if px.maxTT == nil {
		px.maxTT = make(map[*rdd.RDD]time.Duration)
	}
	if ct > px.maxTT[r] {
		px.maxTT[r] = ct
	}
}

// cacheHit / cacheMiss record cache-stat deltas, deferred to the join.
func (px *planeCtx) cacheHit() {
	if px.immediate {
		px.e.stats.CacheHits++
		return
	}
	px.hits++
}

func (px *planeCtx) cacheMiss() {
	if px.immediate {
		px.e.stats.CacheMisses++
		return
	}
	px.misses++
}

// evictedRecompute records a cache miss on a block a policy eviction
// previously dropped — the recompute penalty the DAG-aware policy exists to
// reduce.
func (px *planeCtx) evictedRecompute() {
	if px.immediate {
		px.e.cacheUpdate(func(m *cacheMetrics) { m.RecomputesAfterEviction++ })
		return
	}
	px.recomputes++
}

// dropCorrupt evicts a corrupt persisted block, deferred to the join.
func (px *planeCtx) dropCorrupt(checkpoint bool, a, b int, detail string) {
	if px.immediate {
		if checkpoint {
			px.e.store.DropCheckpoint(a, b)
		} else {
			px.e.store.DropMapOutput(a, b)
		}
		px.e.recUpdate(func(m *recMetrics) { m.CorruptBlocks++ })
		px.e.trace("block-corrupt", -1, -1, -1, -1, detail)
		return
	}
	px.drops = append(px.drops, deferredDrop{checkpoint: checkpoint, a: a, b: b, detail: detail})
}

// postStep is the loop's event-boundary hook: it drains the deferred batch
// unless fusion applies. With fusion on, the batch keeps accumulating while
// the next pending event runs at the *same* virtual instant — a wave of
// task launches scheduled for one timestamp (a stage epoch) then executes as
// one coarse batch on the worker pool instead of many per-event slivers.
// Fusion is deterministic: the decision depends only on the event queue's
// timestamps, never on worker count or wall-clock, so parallelism 1 and N
// see identical batches. Liveness holds because the batch always drains
// before the clock advances (and drainBatch-at-join re-runs schedule at the
// same instant), so no completion event is ever stranded.
func (e *Engine) postStep() {
	if e.fuse && len(e.batch) > 0 {
		if at, ok := e.loop.NextAt(); ok && at == e.loop.Now() {
			return
		}
	}
	e.drainBatch()
}

// drainBatch is the event boundary: it executes every deferred task batch,
// joins the results back in dispatch order, and reschedules. The loop's
// post-step hook calls it after every event (modulo same-instant fusion);
// SubmitJob, KillExecutor and RestartExecutor call it explicitly for work
// dispatched outside the loop.
// Joins only replay buffered effects and schedule completion events — no
// user callbacks run here — so re-entry cannot occur through job code; the
// draining guard makes that assumption explicit.
func (e *Engine) drainBatch() {
	if e.draining || len(e.batch) == 0 {
		return
	}
	e.draining = true
	for len(e.batch) > 0 {
		batch := e.batch
		e.batch = nil
		e.runPlanes(batch)
		for _, be := range batch {
			e.joinTask(be)
		}
		// Joined cache puts may have promoted plain tasks (wakeTasks), and
		// the dispatching round saw pre-batch cache state; run another round
		// so those launches happen at this event's virtual time, as inline
		// execution would.
		e.schedule()
	}
	e.draining = false
}

// poolEligible reports whether the worker pool may run a batch of n planes.
// The pool engages only when it cannot be observed: more than one plane,
// parallelism configured above one, and no probabilistic storage-fault
// injection. StorageErrorProb > 0 is the ONE fault knob that forces the
// plane sequential: its per-operation RNG draws must happen in dispatch
// order (StorageOp is draw-free at probability zero, so every other fault
// kind — crashes, stragglers, block loss/corruption, net faults, driver
// crashes, tenant storms — keeps the pool engaged). TestPoolEligibility
// pins this contract so batch coarsening can never silently serialize chaos
// runs.
func (e *Engine) poolEligible(n int) bool {
	return e.par > 1 && n > 1 && (e.inj == nil || e.inj.Schedule().StorageErrorProb <= 0)
}

// runPlanes executes a batch's data planes, on the worker pool when
// poolEligible allows. Sequential fallback still defers, so scheduling
// semantics are identical either way.
func (e *Engine) runPlanes(batch []*batchEntry) {
	for _, be := range batch {
		be.px = e.newPlaneCtx(be.exec)
	}
	if e.poolEligible(len(batch)) {
		// Shuffle reads lazily rebuild their per-reduce index; force the
		// rebuilds now so concurrent planes only ever read.
		e.store.PrepareShuffleReads()
		workers := e.par
		if workers > len(batch) {
			workers = len(batch)
		}
		// Workers claim contiguous chunks instead of single planes: one
		// atomic per chunk, and neighboring planes (which tend to touch
		// neighboring partitions) stay on one core. Fused event batches can
		// run to hundreds of planes, where per-plane claiming contends.
		chunk := len(batch) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= len(batch) {
						return
					}
					hi := lo + chunk
					if hi > len(batch) {
						hi = len(batch)
					}
					for _, be := range batch[lo:hi] {
						func() {
							defer func() {
								if r := recover(); r != nil {
									be.panicked = r
								}
							}()
							e.runPlane(be)
						}()
					}
				}
			}()
		}
		wg.Wait()
		return
	}
	for _, be := range batch {
		e.runPlane(be)
	}
}

// joinTask applies one plane's buffered effects on the control plane, in
// dispatch order, and schedules the task's completion event — the deferred
// twin of the tail of the old inline execTask.
func (e *Engine) joinTask(be *batchEntry) {
	if be.panicked != nil {
		panic(be.panicked)
	}
	t, px := be.t, be.px
	be.px = nil
	defer releasePlaneCtx(px)
	if t.aborted || t.lost {
		// Cancelled between dispatch and join; inline execution would never
		// have started, so apply nothing.
		e.releaseSlot(t)
		return
	}
	oomWindow := e.oomArmed[px.exec]
	oomFailed := false
	for _, op := range px.ops {
		if !op.put {
			e.cl.CacheGet(px.exec, op.id) // LRU recency replay
			continue
		}
		if oomFailed {
			// The task died at its first over-bound write; later writes
			// never happened.
			continue
		}
		evicted, st := e.cl.CachePutChecked(px.exec, op.id, op.data, op.bytes)
		e.noteEvicted(evicted)
		e.onEvictions(px.exec, evicted)
		if st == cluster.PutStored {
			e.wakeTasks(op.id)
			continue
		}
		// The store refused the cache (over the shrunk bound, or evicting
		// would break a pinned peer group). Inside an armed ExecutorOOM
		// window that write is fatal; otherwise degrade gracefully — the
		// partition already streamed to its consumer uncached, and the
		// refusal evicted nothing, so there is no thrash to pay.
		if oomWindow {
			oomFailed = true
			e.cacheUpdate(func(m *cacheMetrics) { m.OOMTaskFailures++ })
			e.trace("task-oom", t.sr.job.id, t.sr.st.ID, t.id, px.exec,
				fmt.Sprintf("block=%v status=%v", op.id, st))
			continue
		}
		e.countRefusal(st)
		e.trace("cache-refuse", t.sr.job.id, t.sr.st.ID, t.id, px.exec,
			fmt.Sprintf("block=%v status=%v", op.id, st))
	}
	for _, d := range px.drops {
		if d.checkpoint {
			e.store.DropCheckpoint(d.a, d.b)
		} else {
			e.store.DropMapOutput(d.a, d.b)
		}
		e.recUpdate(func(m *recMetrics) { m.CorruptBlocks++ })
		e.trace("block-corrupt", -1, -1, -1, -1, d.detail)
	}
	// Partition sizes and transform times are idempotent across tasks
	// (transforms are pure), so overlay iteration order is immaterial.
	for pk, b := range px.partBytes {
		if pk.r.PartBytes == nil {
			pk.r.PartBytes = make([]int64, pk.r.Parts)
		}
		pk.r.PartBytes[pk.p] = b
	}
	for r, v := range px.maxTT {
		if v > r.MaxTransformTime {
			r.MaxTransformTime = v
		}
	}
	e.stats.CacheHits += px.hits
	e.stats.CacheMisses += px.misses
	if px.recomputes > 0 {
		n := int(px.recomputes)
		e.cacheUpdate(func(m *cacheMetrics) { m.RecomputesAfterEviction += n })
	}
	if px.err != nil {
		t.failErr = px.err
	} else if oomFailed {
		t.failErr = fmt.Errorf("%w: executor %d over capacity under mem pressure", ErrOOM, px.exec)
	}
	dur := px.dur
	// A straggling executor stretches the modeled duration; speculation keys
	// off the resulting expectedEnd.
	if f := e.cl.Executor(px.exec).Slowdown(); f > 1 {
		dur = time.Duration(float64(dur) * f)
	}
	t.expectedEnd = e.loop.Now() + dur
	e.loop.After(dur, func() { e.taskDone(t) })
}
