package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"stark/internal/metrics"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

// testConfig returns a small fast cluster for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cluster.NumExecutors = 4
	cfg.Cluster.SlotsPerExecutor = 2
	cfg.Cluster.MemoryPerExecutor = 1 << 30
	cfg.Sched.LocalityWait = 100 * time.Millisecond
	return cfg
}

// dataset builds n records "k<i>" -> i spread over parts partitions.
func dataset(n, parts int) [][]record.Record {
	out := make([][]record.Record, parts)
	for i := 0; i < n; i++ {
		p := i % parts
		out[p] = append(out[p], record.Pair(fmt.Sprintf("k%04d", i), int64(i)))
	}
	return out
}

func TestCountSimple(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), true)
	f := g.Filter(src, "even", func(r record.Record) bool {
		v, _ := record.AsInt64(r.Value)
		return v%2 == 0
	})
	n, jm, err := e.Count(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
	if len(jm.Tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(jm.Tasks))
	}
	if jm.Makespan() <= 0 {
		t.Fatalf("makespan = %v", jm.Makespan())
	}
}

func TestShuffleCorrectness(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), false)
	p := partition.NewHash(8)
	pb := g.PartitionBy(src, "pb", p)
	recs, _, err := e.Collect(pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("collected %d records", len(recs))
	}
	// Every record must be in its hash partition.
	res, err := e.RunJob(pb, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	for pi, part := range res.Partitions {
		for _, r := range part {
			if p.PartitionFor(r.Key) != pi {
				t.Fatalf("record %q in partition %d, want %d", r.Key, pi, p.PartitionFor(r.Key))
			}
		}
	}
}

func TestReduceByKeySums(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	parts := [][]record.Record{
		{record.Pair("a", int64(1)), record.Pair("b", int64(2))},
		{record.Pair("a", int64(3)), record.Pair("c", int64(4))},
	}
	src := g.Source("src", parts, false)
	rbk := g.ReduceByKey(src, "sum", partition.NewHash(2), func(a, b any) any {
		x, _ := record.AsInt64(a)
		y, _ := record.AsInt64(b)
		return x + y
	})
	recs, _, err := e.Collect(rbk)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range recs {
		v, _ := record.AsInt64(r.Value)
		got[r.Key] = v
	}
	if got["a"] != 4 || got["b"] != 2 || got["c"] != 4 {
		t.Fatalf("sums = %v", got)
	}
}

func TestShuffleOutputsReused(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	c := g.Filter(pb, "c", func(r record.Record) bool { return true })

	_, jm1, err := e.Count(c)
	if err != nil {
		t.Fatal(err)
	}
	// Second job over the same shuffle: map stage must be skipped.
	d := g.Filter(pb, "d", func(r record.Record) bool { return strings.HasPrefix(r.Key, "k0") })
	_, jm2, err := e.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(jm1.Tasks) != 8 { // 4 map + 4 reduce
		t.Fatalf("job1 tasks = %d, want 8", len(jm1.Tasks))
	}
	if len(jm2.Tasks) != 4 { // reduce only
		t.Fatalf("job2 tasks = %d, want 4 (map stage skipped)", len(jm2.Tasks))
	}
}

func TestCachedRDDFastPath(t *testing.T) {
	// The Fig. 1 semantics: a cached RDD makes the follow-up job far
	// faster; without the cache the job recomputes from the shuffle.
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(4000, 2), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(2))
	c := g.Filter(pb, "c", func(r record.Record) bool { return true })
	c.CacheFlag = true
	_, jmC, err := e.Count(c)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Filter(c, "d", func(r record.Record) bool { return len(r.Key) > 3 })
	_, jmD, err := e.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if jmD.Makespan() >= jmC.Makespan() {
		t.Fatalf("cached job %v not faster than cold job %v", jmD.Makespan(), jmC.Makespan())
	}
	// Locality must be NODE_LOCAL for the cached job.
	if jmD.LocalityFraction() != 1.0 {
		t.Fatalf("cached job locality = %v", jmD.LocalityFraction())
	}
}

func TestLocalityViolationRecomputes(t *testing.T) {
	// Fig. 1's D- case: same chain but cache dropped; the stage restarts
	// from the shuffle read and is much slower than the cached run.
	cfg := testConfig()
	cfg.Cluster.SizeScale = 2000 // ~320 MB simulated dataset
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(4000, 2), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(2))
	c := g.Filter(pb, "c", func(r record.Record) bool { return true })
	c.CacheFlag = true
	if _, _, err := e.Count(c); err != nil {
		t.Fatal(err)
	}
	d := g.Filter(c, "d", func(r record.Record) bool { return true })
	_, jmCached, err := e.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the cache everywhere: locality is violated, recompute happens.
	for exec := 0; exec < cfg.Cluster.NumExecutors; exec++ {
		for p := 0; p < c.Parts; p++ {
			e.Cluster().DropBlock(exec, blockID(c.ID, p))
		}
	}
	d2 := g.Filter(c, "d2", func(r record.Record) bool { return true })
	_, jmViolated, err := e.Count(d2)
	if err != nil {
		t.Fatal(err)
	}
	if jmViolated.Makespan() <= 2*jmCached.Makespan() {
		t.Fatalf("violated %v vs cached %v: recompute penalty missing",
			jmViolated.Makespan(), jmCached.Makespan())
	}
	var shuffleRead int64
	for _, tm := range jmViolated.Tasks {
		shuffleRead += tm.BytesShuffle
	}
	if shuffleRead == 0 {
		t.Fatal("violated job read no shuffle data")
	}
}

func TestCoGroupAcrossDatasets(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	p := partition.NewHash(4)
	a := g.PartitionBy(g.Source("a", dataset(50, 2), false), "ap", p)
	b := g.PartitionBy(g.Source("b", dataset(50, 2), false), "bp", p)
	cg := g.CoGroup("cg", p, a, b)
	recs, _, err := e.Collect(cg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("cogroup keys = %d, want 50", len(recs))
	}
	for _, r := range recs {
		v := r.Value.(record.CoGrouped)
		if len(v.Groups) != 2 || len(v.Groups[0]) != 1 || len(v.Groups[1]) != 1 {
			t.Fatalf("bad cogroup value for %q: %+v", r.Key, v)
		}
	}
}

func nsConfig() Config {
	cfg := testConfig()
	cfg.Features.CoLocality = true
	return cfg
}

func TestCoLocalityAllLocal(t *testing.T) {
	e := New(nsConfig())
	g := e.Graph()
	p := partition.NewHash(4)
	if err := e.RegisterNamespace("logs", p, 1); err != nil {
		t.Fatal(err)
	}
	var cached []*rdd.RDD
	for i := 0; i < 3; i++ {
		src := g.Source(fmt.Sprintf("src%d", i), dataset(100, 2), true)
		lp := g.LocalityPartitionBy(src, fmt.Sprintf("lp%d", i), p, "logs")
		lp.CacheFlag = true
		e.TrackNamespaceRDD(lp)
		if _, _, err := e.Count(lp); err != nil {
			t.Fatal(err)
		}
		cached = append(cached, lp)
	}
	cg := g.CoGroup("cg", p, cached...)
	_, jm, err := e.Count(cg)
	if err != nil {
		t.Fatal(err)
	}
	if jm.LocalityFraction() != 1.0 {
		t.Fatalf("co-locality fraction = %v, want 1.0", jm.LocalityFraction())
	}
	// No shuffle reads: all parents cached locally.
	for _, tm := range jm.Tasks {
		if tm.BytesShuffle != 0 {
			t.Fatalf("co-located cogroup read %d shuffle bytes", tm.BytesShuffle)
		}
	}
}

func TestCoLocalityConsistentPlacement(t *testing.T) {
	e := New(nsConfig())
	g := e.Graph()
	p := partition.NewHash(4)
	if err := e.RegisterNamespace("ns", p, 1); err != nil {
		t.Fatal(err)
	}
	// Two RDDs in the namespace: partition i of both must be cached on the
	// same executor.
	var rdds []*rdd.RDD
	for i := 0; i < 2; i++ {
		src := g.Source(fmt.Sprintf("s%d", i), dataset(80, 2), false)
		lp := g.LocalityPartitionBy(src, fmt.Sprintf("lp%d", i), p, "ns")
		lp.CacheFlag = true
		e.TrackNamespaceRDD(lp)
		if _, _, err := e.Count(lp); err != nil {
			t.Fatal(err)
		}
		rdds = append(rdds, lp)
	}
	for part := 0; part < 4; part++ {
		l0 := e.Cluster().Locations(blockID(rdds[0].ID, part))
		l1 := e.Cluster().Locations(blockID(rdds[1].ID, part))
		if len(l0) == 0 || len(l1) == 0 {
			t.Fatalf("partition %d not cached: %v %v", part, l0, l1)
		}
		if l0[0] != l1[0] {
			t.Fatalf("partition %d on executors %v and %v: co-locality violated", part, l0, l1)
		}
	}
}

func TestGroupTasks(t *testing.T) {
	cfg := nsConfig()
	cfg.Features.Extendable = true
	cfg.Groups.MaxBytes = 1 << 40
	cfg.Groups.MinBytes = 0
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(8)
	if err := e.RegisterNamespace("ns", p, 2); err != nil {
		t.Fatal(err)
	}
	src := g.Source("src", dataset(100, 2), false)
	lp := g.LocalityPartitionBy(src, "lp", p, "ns")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	n, jm, err := e.Count(lp)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("count = %d", n)
	}
	// Reduce side runs as 2 group tasks, not 8 partition tasks; plus 2 map
	// tasks for the shuffle.
	reduceTasks := 0
	for _, tm := range jm.Tasks {
		if tm.BytesShuffle > 0 {
			reduceTasks++
		}
	}
	if reduceTasks != 2 {
		t.Fatalf("reduce tasks = %d, want 2 group tasks", reduceTasks)
	}
}

func TestGroupSplitRebalances(t *testing.T) {
	cfg := nsConfig()
	cfg.Features.Extendable = true
	cfg.Groups.MaxBytes = 1 // any data forces splits down to single partitions
	cfg.Groups.MinBytes = 0
	cfg.Groups.Window = 1
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(4)
	if err := e.RegisterNamespace("ns", p, 1); err != nil {
		t.Fatal(err)
	}
	src := g.Source("src", dataset(100, 2), false)
	lp := g.LocalityPartitionBy(src, "lp", p, "ns")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	if _, _, err := e.Count(lp); err != nil {
		t.Fatal(err)
	}
	changes, err := e.ReportRDD(lp)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 3 { // 1 -> 2 -> 4 groups: three splits
		t.Fatalf("changes = %+v", changes)
	}
	groups, err := e.Groups().Groups("ns")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %v", groups)
	}
	// Locality units now are the 4 single-partition groups.
	units := e.Locality().Units("ns")
	if len(units) != 4 {
		t.Fatalf("units = %v", units)
	}
}

func TestFailureRecovery(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	c := g.Filter(pb, "c", func(r record.Record) bool { return true })
	c.CacheFlag = true
	n1, _, err := e.Count(c)
	if err != nil {
		t.Fatal(err)
	}
	// Kill an executor holding cached partitions, then run a dependent job:
	// lost partitions must recompute from the persisted shuffle.
	e.KillExecutor(0)
	d := g.Filter(c, "d", func(r record.Record) bool { return true })
	n2, jm, err := e.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n1 {
		t.Fatalf("post-failure count = %d, want %d", n2, n1)
	}
	for _, tm := range jm.Tasks {
		if tm.Executor == 0 {
			t.Fatal("task scheduled on dead executor")
		}
	}
}

func TestKillMidJobResubmits(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	f := g.Filter(src, "f", func(r record.Record) bool { return true })

	var res JobResult
	done := false
	e.SubmitJob(f, ActionCount, func(r JobResult) { res = r; done = true })
	// Let some tasks start, then kill executor 1 mid-flight.
	e.Loop().At(time.Millisecond, func() { e.KillExecutor(1) })
	for !done && e.Loop().Step() {
	}
	if !done {
		t.Fatal("job did not complete after failure")
	}
	if res.Count != 400 {
		t.Fatalf("count = %d, want 400", res.Count)
	}
}

func TestCheckpointTriggerBoundsChain(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.SizeScale = 500
	cfg.Checkpoint.Mode = CheckpointOptimal
	cfg.Checkpoint.Bound = 50 * time.Millisecond
	cfg.Checkpoint.Relax = 1
	e := New(cfg)
	g := e.Graph()
	cur := g.Source("src", dataset(20000, 4), false)
	for i := 0; i < 6; i++ {
		cur = g.Map(cur, fmt.Sprintf("m%d", i), true, func(r record.Record) record.Record { return r })
		if _, _, err := e.Count(cur); err != nil {
			t.Fatal(err)
		}
	}
	if e.Store().TotalCheckpointBytes() == 0 {
		t.Fatal("no checkpoints written despite growing chain")
	}
	// The engine keeps the longest uncheckpointed path bounded after each
	// trigger (up to one new RDD's delay).
	cp := 0
	for _, r := range g.RDDs() {
		if r.Checkpointed {
			cp++
		}
	}
	if cp == 0 {
		t.Fatal("no RDD marked checkpointed")
	}
}

func TestCheckpointEdgeWritesMore(t *testing.T) {
	run := func(mode CheckpointMode) int64 {
		cfg := testConfig()
		cfg.Cluster.SizeScale = 500
		cfg.Checkpoint.Mode = mode
		cfg.Checkpoint.Bound = 700 * time.Millisecond
		e := New(cfg)
		g := e.Graph()
		pad := strings.Repeat("x", 200)
		cur := g.Source("src", dataset(20000, 4), false)
		for i := 0; i < 6; i++ {
			// Each step materializes a heavy side output (a leaf nothing
			// depends on, like Fig. 16's per-step results) and continues the
			// chain with a same-sized map. Edge checkpoints the heavy
			// leaves; the optimizer cuts the cheap chain instead.
			side := g.Map(cur, fmt.Sprintf("side%d", i), true, func(r record.Record) record.Record {
				return record.Pair(r.Key, pad)
			})
			if _, err := e.Materialize(side); err != nil {
				t.Fatal(err)
			}
			cur = g.Map(cur, fmt.Sprintf("m%d", i), true, func(r record.Record) record.Record { return r })
			if _, _, err := e.Count(cur); err != nil {
				t.Fatal(err)
			}
		}
		return e.Store().TotalCheckpointBytes()
	}
	opt := run(CheckpointOptimal)
	edge := run(CheckpointEdge)
	if opt == 0 || edge == 0 {
		t.Fatalf("checkpoint bytes: opt=%d edge=%d", opt, edge)
	}
	if opt >= edge {
		t.Fatalf("optimal wrote %d >= edge %d", opt, edge)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		e := New(testConfig())
		g := e.Graph()
		src := g.Source("src", dataset(500, 8), true)
		pb := g.PartitionBy(src, "pb", partition.NewHash(8))
		f := g.Filter(pb, "f", func(r record.Record) bool { return true })
		_, jm, err := e.Count(f)
		if err != nil {
			t.Fatal(err)
		}
		return jm.Makespan()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic makespans: %v vs %v", a, b)
	}
}

func TestMCFPrefersLeastContended(t *testing.T) {
	cfg := nsConfig()
	cfg.Features.MCF = true
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(4)
	if err := e.RegisterNamespace("ns", p, 1); err != nil {
		t.Fatal(err)
	}
	// Preload executor 0 with blocks of many units so MCF should avoid it.
	lp := g.LocalityPartitionBy(g.Source("s", dataset(40, 2), false), "lp", p, "ns")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	if _, _, err := e.Count(lp); err != nil {
		t.Fatal(err)
	}
	offers := e.remoteOffers()
	if len(offers) == 0 {
		t.Fatal("no offers")
	}
	// Offers must be sorted ascending by unique units cached.
	prev := -1
	for _, id := range offers {
		n := e.Cluster().UniqueKeysCached(id, e.unitKey)
		if n < prev {
			t.Fatalf("offers not sorted by contention: %v", offers)
		}
		prev = n
	}
}

func TestMaterializeActionCaches(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(50, 2), false)
	f := g.Filter(src, "f", func(r record.Record) bool { return true })
	f.CacheFlag = true
	if _, err := e.Materialize(f); err != nil {
		t.Fatal(err)
	}
	cachedParts := 0
	for p := 0; p < f.Parts; p++ {
		if len(e.Cluster().Locations(blockID(f.ID, p))) > 0 {
			cachedParts++
		}
	}
	if cachedParts != f.Parts {
		t.Fatalf("cached %d/%d partitions", cachedParts, f.Parts)
	}
}

func TestJobMetricsRecorded(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(50, 2), true)
	if _, _, err := e.Count(src); err != nil {
		t.Fatal(err)
	}
	if len(e.CompletedJobs()) != 1 {
		t.Fatalf("completed = %d", len(e.CompletedJobs()))
	}
	jm := e.CompletedJobs()[0]
	for _, tm := range jm.Tasks {
		if tm.Locality != metrics.NodeLocal && tm.Locality != metrics.Remote {
			t.Fatalf("task locality unset: %+v", tm)
		}
		if tm.Finished < tm.Started || tm.Started < tm.Submitted {
			t.Fatalf("task times inverted: %+v", tm)
		}
		if tm.DiskRead == 0 {
			t.Fatalf("source-from-disk task has no disk read: %+v", tm)
		}
	}
}
