package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stark/internal/metrics"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

func TestEmptyRDDJob(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("empty", [][]record.Record{{}, {}}, false)
	n, jm, err := e.Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(jm.Tasks) != 2 {
		t.Fatalf("n=%d tasks=%d", n, len(jm.Tasks))
	}
}

func TestZeroPartitionRDDCompletesInstantly(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("none", nil, false)
	n, jm, err := e.Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(jm.Tasks) != 0 {
		t.Fatalf("n=%d tasks=%d", n, len(jm.Tasks))
	}
}

func TestAllExecutorsDeadErrors(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	for i := 0; i < cfg.Cluster.NumExecutors; i++ {
		e.KillExecutor(i)
	}
	src := e.Graph().Source("src", dataset(10, 2), false)
	if _, _, err := e.Count(src); err == nil {
		t.Fatal("job completed with no live executors")
	}
}

func TestConcurrentJobsShareShuffle(t *testing.T) {
	// Two jobs submitted back-to-back over the same un-materialized shuffle
	// must not run the map stage twice.
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	a := g.Filter(pb, "a", func(record.Record) bool { return true })
	b := g.Filter(pb, "b", func(record.Record) bool { return true })

	var done int
	var tasksA, tasksB int
	e.SubmitJob(a, ActionCount, func(r JobResult) { tasksA = len(r.Metrics.Tasks); done++ })
	e.SubmitJob(b, ActionCount, func(r JobResult) { tasksB = len(r.Metrics.Tasks); done++ })
	for done < 2 && e.Loop().Step() {
	}
	if done != 2 {
		t.Fatal("jobs did not complete")
	}
	// One job ran 4 map + 4 reduce tasks; the other only its 4 reduce tasks.
	if tasksA+tasksB != 12 {
		t.Fatalf("tasks = %d + %d, want 12 total (shared map stage)", tasksA, tasksB)
	}
}

func TestGroupTaskCollect(t *testing.T) {
	cfg := nsConfig()
	cfg.Features.Extendable = true
	cfg.Groups.MaxBytes = 1 << 40
	cfg.Groups.MinBytes = 0
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(8)
	if err := e.RegisterNamespace("ns", p, 2); err != nil {
		t.Fatal(err)
	}
	lp := g.LocalityPartitionBy(g.Source("s", dataset(64, 2), false), "lp", p, "ns")
	e.TrackNamespaceRDD(lp)
	res, err := e.RunJob(lp, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pi, part := range res.Partitions {
		for _, r := range part {
			if p.PartitionFor(r.Key) != pi {
				t.Fatalf("record %q in wrong partition %d", r.Key, pi)
			}
			total++
		}
	}
	if total != 64 {
		t.Fatalf("collected %d", total)
	}
}

func TestLocalityWaitExpiryLaunchesRemote(t *testing.T) {
	cfg := nsConfig()
	cfg.Sched.LocalityWait = 50 * time.Millisecond
	cfg.Cluster.SlotsPerExecutor = 1
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(2)
	if err := e.RegisterNamespace("ns", p, 1); err != nil {
		t.Fatal(err)
	}
	lp := g.LocalityPartitionBy(g.Source("s", dataset(4000, 2), false), "lp", p, "ns")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	if _, _, err := e.Count(lp); err != nil {
		t.Fatal(err)
	}
	// Occupy both preferred executors' single slots with a long job, then
	// submit namespace tasks: they must eventually run remotely.
	big := g.Source("big", dataset(40000, 2), true)
	var doneBig, doneNS bool
	var nsJM metrics.JobMetrics
	e.SubmitJob(big, ActionCount, func(JobResult) { doneBig = true })
	q := g.Filter(lp, "q", func(record.Record) bool { return true })
	e.SubmitJob(q, ActionCount, func(r JobResult) { nsJM = r.Metrics; doneNS = true })
	for (!doneBig || !doneNS) && e.Loop().Step() {
	}
	if !doneNS {
		t.Fatal("namespace job never finished")
	}
	remote := 0
	for _, tm := range nsJM.Tasks {
		if tm.Locality == metrics.Remote {
			remote++
		}
	}
	if remote == 0 {
		t.Skip("tasks found local slots; contention did not materialize under this cost model")
	}
}

func TestReplicationAdoptsHotUnit(t *testing.T) {
	cfg := nsConfig()
	cfg.Sched.LocalityWait = 10 * time.Millisecond
	cfg.Cluster.SlotsPerExecutor = 1
	cfg.Replication.DemandPerReplica = 1
	cfg.Replication.MaxReplicas = 4
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(2)
	if err := e.RegisterNamespace("hot", p, 1); err != nil {
		t.Fatal(err)
	}
	lp := g.LocalityPartitionBy(g.Source("s", dataset(2000, 2), false), "lp", p, "hot")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	if _, _, err := e.Count(lp); err != nil {
		t.Fatal(err)
	}
	before := len(e.Locality().Preferred("hot", 0))
	// Hammer the namespace with concurrent queries so preferred slots are
	// contended and remote launches occur.
	done := 0
	n := 30
	for i := 0; i < n; i++ {
		q := g.Filter(lp, fmt.Sprintf("q%d", i), func(record.Record) bool { return true })
		e.SubmitJob(q, ActionCount, func(JobResult) { done++ })
	}
	for done < n && e.Loop().Step() {
	}
	after := len(e.Locality().Preferred("hot", 0)) + len(e.Locality().Preferred("hot", 1))
	if after <= before {
		t.Skip("no replication occurred; acceptable when slots never contend")
	}
}

func TestDeterminismWithFailure(t *testing.T) {
	run := func() time.Duration {
		e := New(testConfig())
		g := e.Graph()
		src := g.Source("src", dataset(400, 8), true)
		pb := g.PartitionBy(src, "pb", partition.NewHash(8))
		pb.CacheFlag = true
		var done bool
		var jm metrics.JobMetrics
		e.SubmitJob(pb, ActionCount, func(r JobResult) { jm = r.Metrics; done = true })
		e.Loop().At(2*time.Millisecond, func() { e.KillExecutor(2) })
		for !done && e.Loop().Step() {
		}
		return jm.Finished
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("failure runs diverge: %v vs %v", a, b)
	}
}

func TestCheckpointedRDDSkipsLineage(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	f := g.Filter(pb, "f", func(record.Record) bool { return true })
	if _, _, err := e.Count(f); err != nil {
		t.Fatal(err)
	}
	e.ForceCheckpoint(f)
	if !f.Checkpointed {
		t.Fatal("not checkpointed")
	}
	// A dependent job reads the checkpoint: single stage, no shuffle reads.
	f2 := g.Filter(f, "f2", func(record.Record) bool { return true })
	_, jm, err := e.Count(f2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range jm.Tasks {
		if tm.BytesShuffle != 0 {
			t.Fatal("checkpointed lineage still read shuffle")
		}
		if tm.DiskRead == 0 {
			t.Fatal("checkpoint read did not touch disk")
		}
	}
}

func TestForceCheckpointIdempotentAndUnmaterialized(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(20, 2), false)
	// Unmaterialized RDD: no-op.
	e.ForceCheckpoint(src)
	if src.Checkpointed || e.Store().TotalCheckpointBytes() != 0 {
		t.Fatal("unmaterialized checkpoint happened")
	}
	if _, _, err := e.Count(src); err != nil {
		t.Fatal(err)
	}
	e.ForceCheckpoint(src)
	bytes := e.Store().TotalCheckpointBytes()
	if bytes == 0 {
		t.Fatal("no checkpoint written")
	}
	e.ForceCheckpoint(src) // idempotent
	if e.Store().TotalCheckpointBytes() != bytes {
		t.Fatal("double checkpoint")
	}
}

func TestGCMetricsPopulated(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.MemoryPerExecutor = 1 << 20 // tiny: heavy pressure
	cfg.Cluster.SizeScale = 100
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(4000, 4), false)
	f := g.Filter(src, "f", func(record.Record) bool { return true })
	f.CacheFlag = true
	_, jm, err := e.Count(f)
	if err != nil {
		t.Fatal(err)
	}
	var gc time.Duration
	for _, tm := range jm.Tasks {
		gc += tm.GC
	}
	if gc == 0 {
		t.Fatal("no GC charged under full memory pressure")
	}
}

// TestClusterConsistencyAfterWorkload drives a mixed workload (jobs,
// failures, checkpoints, eviction pressure) and asserts the block directory
// and slot accounting stay coherent.
func TestClusterConsistencyAfterWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.MemoryPerExecutor = 1 << 16
	cfg.Cluster.SizeScale = 10
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(4)
	for i := 0; i < 3; i++ {
		src := g.Source(fmt.Sprintf("s%d", i), dataset(300, 4), true)
		pb := g.PartitionBy(src, fmt.Sprintf("pb%d", i), p)
		pb.CacheFlag = true
		if _, _, err := e.Count(pb); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			e.KillExecutor(1)
			e.ForceCheckpoint(pb)
		}
	}
	if err := e.Cluster().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	e.RestartExecutor(1)
	if err := e.Cluster().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerEmitsLifecycleEvents(t *testing.T) {
	e := New(testConfig())
	var kinds []string
	e.SetTracer(func(ev TraceEvent) {
		kinds = append(kinds, ev.Kind)
		if ev.String() == "" {
			t.Error("empty trace line")
		}
	})
	g := e.Graph()
	src := g.Source("src", dataset(40, 2), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(2))
	if _, _, err := e.Count(pb); err != nil {
		t.Fatal(err)
	}
	e.KillExecutor(1)
	e.RestartExecutor(1)
	e.ForceCheckpoint(pb)
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	for _, k := range []string{"job-submit", "stage-start", "task-launch", "task-finish", "job-finish", "executor-kill", "executor-restart", "checkpoint"} {
		if !want[k] {
			t.Errorf("missing trace kind %q (got %v)", k, kinds)
		}
	}
	// Disabling stops emission.
	e.SetTracer(nil)
	before := len(kinds)
	if _, _, err := e.Count(g.Filter(pb, "f", func(record.Record) bool { return true })); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != before {
		t.Fatal("tracer still firing after removal")
	}
}

func TestMapOutputsSurviveExecutorDeath(t *testing.T) {
	// Shuffle map outputs live in persistent storage (paper Sec. II-A), so
	// killing every executor that ran map tasks must not force the map
	// stage to rerun: the reduce stage alone completes the job.
	cfg := testConfig()
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	// Materialize the shuffle via a first job.
	n1, jm1, err := e.Count(pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(jm1.Tasks) != 8 {
		t.Fatalf("first job tasks = %d", len(jm1.Tasks))
	}
	// Kill all but executor 3.
	for i := 0; i < cfg.Cluster.NumExecutors; i++ {
		if i != 3 {
			e.KillExecutor(i)
		}
	}
	f := g.Filter(pb, "f", func(record.Record) bool { return true })
	n2, jm2, err := e.Count(f)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n1 {
		t.Fatalf("count = %d, want %d", n2, n1)
	}
	// Reduce-only: 4 tasks, all on the survivor, all reading the shuffle.
	if len(jm2.Tasks) != 4 {
		t.Fatalf("post-failure tasks = %d, want 4 (no map rerun)", len(jm2.Tasks))
	}
	for _, tm := range jm2.Tasks {
		if tm.Executor != 3 {
			t.Fatalf("task ran on dead executor %d", tm.Executor)
		}
		if tm.BytesShuffle == 0 {
			t.Fatal("reduce task read no shuffle data")
		}
	}
}

func TestKillDuringShuffleMapStage(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	g := e.Graph()
	src := g.Source("src", dataset(2000, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))
	var done bool
	var res JobResult
	e.SubmitJob(pb, ActionCount, func(r JobResult) { res = r; done = true })
	// Kill while map tasks are in flight.
	e.Loop().At(time.Millisecond, func() { e.KillExecutor(0) })
	for !done && e.Loop().Step() {
	}
	if !done {
		t.Fatal("job stuck after mid-shuffle failure")
	}
	if res.Count != 2000 {
		t.Fatalf("count = %d", res.Count)
	}
	if !e.Store().ShuffleComplete(pb.Deps[0].ShuffleID) {
		t.Fatal("shuffle incomplete after recovery")
	}
}

func TestStatsAndUnpersist(t *testing.T) {
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(100, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	f := g.Filter(pb, "f", func(record.Record) bool { return true })
	f.CacheFlag = true
	if _, _, err := e.Count(f); err != nil {
		t.Fatal(err)
	}
	// Second job over the cached RDD: all hits.
	if _, _, err := e.Count(g.Filter(f, "f2", func(record.Record) bool { return true })); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Jobs != 2 || st.Tasks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if st.CacheHitRate() <= 0 || st.CacheHitRate() > 1 {
		t.Fatalf("hit rate = %v", st.CacheHitRate())
	}
	if st.LocalityRate() <= 0 {
		t.Fatal("no locality recorded")
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}

	// Unpersist drops all cached blocks; the next job misses and recomputes.
	e.Unpersist(f)
	for p := 0; p < f.Parts; p++ {
		if locs := e.Cluster().Locations(blockID(f.ID, p)); locs != nil {
			t.Fatalf("partition %d still cached at %v", p, locs)
		}
	}
	if f.CacheFlag {
		t.Fatal("cache flag survived unpersist")
	}
	n, _, err := e.Count(g.Filter(f, "f3", func(record.Record) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("post-unpersist count = %d", n)
	}
}

// TestFig2Vs3Semantics reproduces the paper's Fig. 2 vs Fig. 3 contrast in
// miniature: the same cogroup over a cached collection recomputes scattered
// parents from shuffle outputs without co-locality (Fig. 2's bold red
// recompute paths) and touches nothing but local caches with it (Fig. 3).
func TestFig2Vs3Semantics(t *testing.T) {
	run := func(coloc bool) (shuffleBytes int64, localFrac float64) {
		cfg := testConfig()
		cfg.Features.CoLocality = coloc
		e := New(cfg)
		g := e.Graph()
		p := partition.NewHash(4)
		if coloc {
			if err := e.RegisterNamespace("ns", p, 1); err != nil {
				t.Fatal(err)
			}
		}
		var rdds []*rdd.RDD
		for i := 0; i < 2; i++ {
			src := g.Source(fmt.Sprintf("s%d", i), dataset(200, 4), true)
			var lp *rdd.RDD
			if coloc {
				lp = g.LocalityPartitionBy(src, "lp", p, "ns")
			} else {
				lp = g.PartitionBy(src, "lp", p)
			}
			lp.CacheFlag = true
			e.TrackNamespaceRDD(lp)
			if _, _, err := e.Count(lp); err != nil {
				t.Fatal(err)
			}
			rdds = append(rdds, lp)
		}
		cg := g.CoGroup("cg", p, rdds...)
		_, jm, err := e.Count(cg)
		if err != nil {
			t.Fatal(err)
		}
		var sb int64
		for _, tm := range jm.Tasks {
			sb += tm.BytesShuffle
		}
		return sb, jm.LocalityFraction()
	}
	// Try a few seeds: without co-locality, random placement usually
	// scatters at least one collection partition.
	scattered, _ := run(false)
	cShuffle, cLocal := run(true)
	if cShuffle != 0 || cLocal != 1.0 {
		t.Fatalf("co-located cogroup: shuffle=%d locality=%v", cShuffle, cLocal)
	}
	if scattered == 0 {
		t.Skip("random placement happened to co-locate; acceptable on this seed")
	}
}

// TestRandomOperationsConsistency stresses the whole control plane with a
// random mix of jobs, caching, kills, restarts, checkpoints, and unpersists,
// asserting cluster invariants hold and results stay correct throughout.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRandomOperationsConsistency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := newRand(seed)
		cfg := testConfig()
		cfg.Cluster.MemoryPerExecutor = 1 << 18
		cfg.Cluster.SizeScale = 5
		e := New(cfg)
		g := e.Graph()
		p := partition.NewHash(4)
		base := g.PartitionBy(g.Source("src", dataset(200, 4), true), "pb", p)
		base.CacheFlag = true
		want, _, err := e.Count(base)
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]bool{}
		for op := 0; op < 25; op++ {
			switch rng.Intn(6) {
			case 0:
				victim := rng.Intn(cfg.Cluster.NumExecutors)
				if len(live) < cfg.Cluster.NumExecutors-1 {
					e.KillExecutor(victim)
					live[victim] = true
				}
			case 1:
				for id := range live {
					e.RestartExecutor(id)
					delete(live, id)
					break
				}
			case 2:
				e.ForceCheckpoint(base)
			case 3:
				e.Unpersist(base)
				base.CacheFlag = true // re-enable for later jobs
			default:
				f := g.Filter(base, "q", func(record.Record) bool { return true })
				got, _, err := e.Count(f)
				if err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				if got != want {
					t.Fatalf("seed %d op %d: count %d, want %d", seed, op, got, want)
				}
			}
			if err := e.Cluster().CheckConsistency(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
}

// TestGroupShuffleMapTasks: when the map side of a shuffle is an extendable
// namespace RDD, the map stage runs as group tasks (the paper's
// GroupShuffleMapTask), one per Group Tree leaf.
func TestGroupShuffleMapTasks(t *testing.T) {
	cfg := nsConfig()
	cfg.Features.Extendable = true
	cfg.Groups.MaxBytes = 1 << 40
	cfg.Groups.MinBytes = 0
	e := New(cfg)
	g := e.Graph()
	p := partition.NewHash(8)
	if err := e.RegisterNamespace("ns", p, 2); err != nil {
		t.Fatal(err)
	}
	lp := g.LocalityPartitionBy(g.Source("s", dataset(80, 2), false), "lp", p, "ns")
	lp.CacheFlag = true
	e.TrackNamespaceRDD(lp)
	if _, _, err := e.Count(lp); err != nil {
		t.Fatal(err)
	}
	// Re-shuffle the namespace RDD with a different partitioner: the map
	// stage's output RDD is lp (8 partitions, ns) -> 2 group map tasks; the
	// reduce stage has 4 plain tasks.
	re := g.PartitionBy(lp, "re", partition.NewHash(4))
	n, jm, err := e.Count(re)
	if err != nil {
		t.Fatal(err)
	}
	if n != 80 {
		t.Fatalf("count = %d", n)
	}
	mapTasks, reduceTasks := 0, 0
	for _, tm := range jm.Tasks {
		if tm.BytesShuffle > 0 {
			reduceTasks++
		} else {
			mapTasks++
		}
	}
	if mapTasks != 2 {
		t.Fatalf("map tasks = %d, want 2 group tasks", mapTasks)
	}
	if reduceTasks != 4 {
		t.Fatalf("reduce tasks = %d, want 4", reduceTasks)
	}
}

// TestNamespaceGeometryMismatch: an RDD carrying a namespace whose
// registered partition count differs must fall back to plain per-partition
// tasks rather than mis-mapping units.
func TestNamespaceGeometryMismatch(t *testing.T) {
	cfg := nsConfig()
	e := New(cfg)
	g := e.Graph()
	if err := e.RegisterNamespace("ns", partition.NewHash(4), 1); err != nil {
		t.Fatal(err)
	}
	// Build an RDD claiming namespace "ns" but with 8 partitions.
	rogue := g.LocalityPartitionBy(g.Source("s", dataset(40, 2), false), "lp", partition.NewHash(8), "ns")
	e.TrackNamespaceRDD(rogue)
	n, jm, err := e.Count(rogue)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("count = %d", n)
	}
	// 2 map + 8 reduce tasks, reduce side NOT unit-scheduled (no panic, no
	// bogus preferred executors beyond what the cluster has).
	if len(jm.Tasks) != 10 {
		t.Fatalf("tasks = %d", len(jm.Tasks))
	}
}
