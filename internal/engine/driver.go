package engine

import (
	"fmt"
	"sort"
	"time"

	"stark/internal/cluster"
	"stark/internal/group"
	"stark/internal/journal"
	"stark/internal/locality"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/sched"
)

// This file is the driver fault domain. With Config.DriverRecovery enabled
// the engine appends a write-ahead journal at every commit point — namespace
// registration, Group Tree splits and merges, map-output commits (at result
// accept, inside the epoch fence), checkpoint completions, job submission
// and completion, blacklist transitions, and stream window movement — and
// can lose the driver process entirely (fault.DriverCrash) and come back:
//
//   - CrashDriver discards all volatile driver memory (pending queues,
//     running-task table, shuffle bookkeeping, locality and group state) and
//     optionally tears the journal tail, simulating a crash mid-append.
//     Executor processes, their caches, persistent storage, and in-flight
//     data-plane work are NOT driver memory and carry on.
//   - RestartDriver replays the journal (truncating a torn tail cleanly),
//     rebuilds the control plane, re-handshakes executors under a new driver
//     incarnation (every executor epoch bumps, so results launched by the
//     old incarnation are fenced off exactly like results from a dead
//     executor), reconciles persistent storage against the journal (state
//     committed but not journaled is dropped and recomputed through
//     lineage), re-admits surviving executor caches via a deterministic
//     block re-registration sweep, and resubmits every incomplete job from
//     its last committed stage.
//
// Replay invariants: the journal is authoritative for driver-owned state;
// objects owned by the client application — the lineage graph, namespace
// partitioners, job handles and callbacks — survive in the application and
// re-attach at restart, mirroring how a driver-HA deployment recovers
// metadata from the WAL while the application supplies its closures anew.
// Replay is virtual-time-free and deterministically ordered: records apply
// in append order, and every sweep over map-shaped state walks sorted keys.

// DriverRecoveryEnabled reports whether the driver fault domain is armed.
func (e *Engine) DriverRecoveryEnabled() bool { return e.jrn != nil }

// DriverDown reports whether the driver is currently crashed.
func (e *Engine) DriverDown() bool { return e.driverDown }

// Journal exposes the write-ahead journal (nil without driver recovery),
// so callers can attach a durable sink and so shutdown paths can be tested
// for handle hygiene.
func (e *Engine) Journal() *journal.Log { return e.jrn }

// JournalLen reports the number of records currently in the journal.
func (e *Engine) JournalLen() int {
	if e.jrn == nil {
		return 0
	}
	return e.jrn.Len()
}

// OnDriverRestart registers a hook invoked after every journal replay, once
// the control plane is rebuilt but before jobs resubmit. The stream layer
// uses it to reconstruct step tables from the replayed journal.
func (e *Engine) OnDriverRestart(fn func()) {
	e.restartHooks = append(e.restartHooks, fn)
}

// StreamSteps returns the replayed step table of a stream — step index to
// RDD id for every step still inside the retention window — as a copy.
func (e *Engine) StreamSteps(name string) map[int]int {
	out := make(map[int]int, len(e.streamSteps[name]))
	for step, id := range e.streamSteps[name] {
		out[step] = id
	}
	return out
}

// journalAppend records one commit-point record. During driver downtime the
// record buffers: the crash already tore whatever tail it was going to tear,
// and appends from the downtime window (buffered submissions, stream
// ingests) land after replay so the journal stays parseable.
func (e *Engine) journalAppend(rec journal.Record) {
	if e.jrn == nil {
		return
	}
	if e.driverDown {
		e.pendingJrn = append(e.pendingJrn, rec)
		return
	}
	e.jrn.Append(rec)
	e.applyStreamRecord(rec)
}

// applyStreamRecord maintains the live stream step tables from journaled
// stream records; replay and the downtime flush reuse it.
func (e *Engine) applyStreamRecord(rec journal.Record) {
	switch rec.Kind {
	case journal.KindStreamIngest:
		m := e.streamSteps[rec.S]
		if m == nil {
			m = make(map[int]int)
			e.streamSteps[rec.S] = m
		}
		m[int(rec.A)] = int(rec.B)
	case journal.KindStreamEvict:
		if m := e.streamSteps[rec.S]; m != nil {
			delete(m, int(rec.A))
		}
	}
}

// JournalStreamIngest records a stream step entering the retention window.
func (e *Engine) JournalStreamIngest(name string, step, rddID int) {
	e.journalAppend(journal.Record{Kind: journal.KindStreamIngest, S: name, A: int64(step), B: int64(rddID)})
}

// JournalStreamEvict records a stream step leaving the retention window.
func (e *Engine) JournalStreamEvict(name string, step int) {
	e.journalAppend(journal.Record{Kind: journal.KindStreamEvict, S: name, A: int64(step)})
}

// journalJobSubmit records a job submission; the handle itself is filed in
// jobTab by SubmitJob, in every configuration.
func (e *Engine) journalJobSubmit(j *job) {
	if e.jrn == nil {
		return
	}
	e.journalAppend(journal.Record{Kind: journal.KindJobSubmit, A: int64(j.id)})
}

// journalJobComplete records a job completion; finishJob retires the handle.
func (e *Engine) journalJobComplete(j *job) {
	if e.jrn == nil {
		return
	}
	e.journalAppend(journal.Record{Kind: journal.KindJobComplete, A: int64(j.id)})
}

// --- fault.System driver surface ----------------------------------------

// CrashDriver fails the driver at the current virtual time: all volatile
// driver memory is discarded and tearTail bytes are torn off the journal's
// end (a crash mid-append). Executors, their caches, persistent storage,
// and data-plane work already dispatched keep running; their results will
// find a driver that either is not listening or — after restart — rejects
// them through the incarnation fence.
func (e *Engine) CrashDriver(tearTail int) {
	if e.jrn == nil {
		panic("engine: driver crash injected without driver recovery; enable WithDriverRecovery")
	}
	if e.driverDown || e.closed {
		return
	}
	e.trace("driver-crash", -1, -1, -1, -1,
		fmt.Sprintf("tearTail=%d journal=%dB/%drec", tearTail, e.jrn.Size(), e.jrn.Len()))
	e.driverDown = true
	e.driverGen++
	e.recUpdate(func(r *recMetrics) { r.DriverCrashes++ })
	if tearTail > 0 {
		e.jrn.TearTail(tearTail)
	}
	// The recovery epoch opens at the crash, so the measured delay includes
	// the downtime, the replay, and the resumed work's completion.
	e.resumeEpoch = &recoveryEpoch{start: e.loop.Now()}

	// Volatile driver memory vanishes. Scheduling queues, the running-task
	// table, shuffle and recovery bookkeeping, locality and group state,
	// and detection timers are all rebuilt from the journal plus the
	// re-handshake at restart. Slot accounting lives executor-side and the
	// executors' own completion events release it, so it is untouched.
	e.prefPending = nil
	e.plainPending = nil
	e.plainHead = 0
	e.unarmed = 0
	e.wakeIndex = make(map[cluster.BlockID][]*task)
	e.running = make(map[int]*task)
	e.shuffleRunning = make(map[int]bool)
	e.shuffleWaiters = make(map[int][]*stageRun)
	e.shuffleOwner = make(map[int]*job)
	e.shuffleStages = make(map[int]*sched.Stage)
	e.fetchWaiters = make(map[int][]*task)
	e.resubmits = make(map[int]int)
	e.execFailures = make(map[int]int)
	e.pendingCP = nil
	e.recMu.Lock()
	e.blacklist = make(map[int]bool)
	e.blacklistUntil = make(map[int]time.Duration)
	e.recMu.Unlock()
	e.loc = locality.NewManager()
	e.grp = group.NewManager(e.cfg.Groups)
	e.nsRDDs = make(map[string][]*rdd.RDD)
	e.nsParts = make(map[string]int)
	e.streamSteps = make(map[string]map[int]int)
	e.detectorArmed = false
	if e.dagPol != nil {
		// DAG refcounts are volatile driver memory; resubmission re-charges
		// fresh stage runs (chargeStage) after the journal replays.
		e.dagPol.ResetRefs()
	}
}

// RestartDriver brings the driver back: journal replay, storage
// reconciliation, cache re-admission, stream reconstruction, and job
// resubmission, in that order.
func (e *Engine) RestartDriver() {
	if e.jrn == nil {
		panic("engine: driver restart injected without driver recovery; enable WithDriverRecovery")
	}
	if !e.driverDown || e.closed {
		return
	}
	e.driverDown = false
	now := e.loop.Now()

	// New driver incarnation: bump every executor epoch so any result still
	// in flight from a task the old incarnation launched is rejected by the
	// existing fence in onTaskResult, then re-handshake the processes that
	// answer (dead ones are rediscovered by detection or stay excluded by
	// liveness checks).
	for id := 0; id < e.cl.NumExecutors(); id++ {
		e.execEpoch[id]++
		e.execView[id] = viewAlive
		e.lastBeat[id] = now
		if !e.cl.Executor(id).Dead() {
			e.incSeen[id] = e.cl.Executor(id).Incarnation()
		}
	}

	recs, torn := e.jrn.ReplayLog()
	e.trace("driver-restart", -1, -1, -1, -1,
		fmt.Sprintf("replay=%drec torn=%dB", len(recs), torn))
	e.recUpdate(func(r *recMetrics) {
		r.DriverRestarts++
		r.JournalRecordsReplayed += len(recs)
		if torn > 0 {
			r.JournalTornTails++
		}
	})
	journaledMap := make(map[[2]int]bool)
	journaledCP := make(map[int]bool)
	liveJobs := e.replayJournal(recs, journaledMap, journaledCP)

	// Appends buffered during downtime land after the replayed prefix.
	for _, rec := range e.pendingJrn {
		e.jrn.Append(rec)
		e.applyStreamRecord(rec)
	}
	e.pendingJrn = nil

	e.reconcileStore(journaledMap, journaledCP)
	e.sweepCachedUnits()
	for _, fn := range e.restartHooks {
		fn()
	}
	e.resubmitJobs(liveJobs)

	// With nothing to resume, recovery completes at resubmission time;
	// otherwise the last resumed task's success closes the epoch
	// (noteTaskSuccess).
	if ep := e.resumeEpoch; ep != nil {
		e.resumeEpoch = nil
		if ep.pending == 0 {
			d := e.loop.Now() - ep.start
			e.recUpdate(func(r *recMetrics) { r.RecoveryDelays = append(r.RecoveryDelays, d) })
			e.trace("recovery-complete", -1, -1, -1, -1, fmt.Sprintf("delay=%v", d))
		}
	}
	e.ensureHeartbeats()
	e.schedule()
	e.drainBatch() // cover restarts injected from outside the event loop
}

// replayJournal applies the journal's records in append order, rebuilding
// namespaces, Group Tree geometry, blacklist state, stream step tables, and
// the journaled-commit sets the storage reconciliation consumes. It returns
// the jobs the journal knows as submitted-but-not-completed.
func (e *Engine) replayJournal(recs []journal.Record, journaledMap map[[2]int]bool, journaledCP map[int]bool) map[int]bool {
	liveJobs := make(map[int]bool)
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindNamespace:
			p := e.nsPartitioners[rec.S]
			if p == nil {
				continue // namespace never re-attached by the application
			}
			if err := e.registerNamespace(rec.S, p, int(rec.A)); err != nil {
				panic(fmt.Sprintf("engine: journal replay: namespace %q: %v", rec.S, err))
			}
		case journal.KindRDDTrack:
			if r := e.graph.ByID(int(rec.A)); r != nil {
				e.trackNamespaceRDD(r)
			}
		case journal.KindGroupSplit:
			if !e.grp.Registered(rec.S) {
				continue
			}
			if _, _, err := e.grp.ReplaySplit(rec.S, int(rec.A)); err != nil {
				panic(fmt.Sprintf("engine: journal replay: split %q/%d: %v", rec.S, rec.A, err))
			}
			if err := e.loc.ApplySplit(rec.S, int(rec.A), int(rec.B), int(rec.C), int(rec.D)); err != nil {
				panic(fmt.Sprintf("engine: journal replay: split locality %q/%d: %v", rec.S, rec.A, err))
			}
		case journal.KindGroupMerge:
			if !e.grp.Registered(rec.S) {
				continue
			}
			if _, err := e.grp.ReplayMerge(rec.S, int(rec.A)); err != nil {
				panic(fmt.Sprintf("engine: journal replay: merge %q/%d: %v", rec.S, rec.A, err))
			}
			if err := e.loc.ApplyMerge(rec.S, int(rec.A), int(rec.B), int(rec.C)); err != nil {
				panic(fmt.Sprintf("engine: journal replay: merge locality %q/%d: %v", rec.S, rec.A, err))
			}
		case journal.KindMapOutput:
			journaledMap[[2]int{int(rec.A), int(rec.B)}] = true
		case journal.KindCheckpoint:
			journaledCP[int(rec.A)] = true
			if r := e.graph.ByID(int(rec.A)); r != nil {
				r.Checkpointed = true
				e.invalidateStageChains()
			}
		case journal.KindBlacklist:
			e.recMu.Lock()
			e.blacklist[int(rec.A)] = true
			e.blacklistUntil[int(rec.A)] = time.Duration(rec.B)
			e.recMu.Unlock()
		case journal.KindUnblacklist:
			e.recMu.Lock()
			delete(e.blacklist, int(rec.A))
			delete(e.blacklistUntil, int(rec.A))
			e.recMu.Unlock()
		case journal.KindStreamIngest, journal.KindStreamEvict:
			e.applyStreamRecord(rec)
		case journal.KindJobSubmit:
			liveJobs[int(rec.A)] = true
		case journal.KindJobComplete:
			delete(liveJobs, int(rec.A))
		}
	}
	return liveJobs
}

// reconcileStore makes persistent storage agree with the replayed journal:
// a commit the journal does not know about happened after the last durable
// journal frame (torn tail), so it is rolled back and the work recomputes
// through lineage — the crash-consistency contract.
func (e *Engine) reconcileStore(journaledMap map[[2]int]bool, journaledCP map[int]bool) {
	dropped := 0
	for _, b := range e.store.CommittedMapOutputs() {
		if !journaledMap[[2]int{b[0], b[1]}] {
			e.store.DropMapOutput(b[0], b[1])
			dropped++
		}
	}
	for _, b := range e.store.CheckpointBlocks() {
		if !journaledCP[b[0]] {
			e.store.DropCheckpoint(b[0], b[1])
			if r := e.graph.ByID(b[0]); r != nil {
				r.Checkpointed = false
				e.invalidateStageChains()
			}
			dropped++
		}
	}
	if dropped > 0 {
		e.trace("driver-reconcile", -1, -1, -1, -1, fmt.Sprintf("unjournaled blocks dropped=%d", dropped))
	}
}

// sweepCachedUnits re-admits surviving executor caches into the rebuilt
// LocalityManager: for every namespace unit, every live executor still
// holding one of the unit's blocks re-registers as a replica. The sweep
// walks namespaces, units, and executors in sorted order so the rebuilt
// preference lists are deterministic.
func (e *Engine) sweepCachedUnits() {
	names := make([]string, 0, len(e.nsParts))
	for ns := range e.nsParts {
		names = append(names, ns)
	}
	sort.Strings(names)
	for _, ns := range names {
		units := e.loc.Units(ns)
		sort.Ints(units)
		for _, u := range units {
			for exec := 0; exec < e.cl.NumExecutors(); exec++ {
				if e.cl.Executor(exec).Dead() {
					continue
				}
				if e.unitCachedOn(ns, u, exec) {
					e.loc.AddReplica(ns, u, exec)
				}
			}
		}
	}
}

// resubmitJobs restarts every incomplete job — journaled in-flight ones
// first (ascending id), then submissions buffered during the downtime —
// with fresh stage state. Stages whose shuffles are fully committed are
// skipped by maybeStartStage, so each job resumes from its last committed
// stage; anything uncommitted recomputes through lineage. liveJobs is the
// journal's view of in-flight jobs; a lifecycle record the torn tail lost
// is re-appended so the journal stays coherent for any later crash.
func (e *Engine) resubmitJobs(liveJobs map[int]bool) {
	// Jobs the journal believes in flight but whose handles were already
	// retired completed before the crash with the completion record on the
	// torn tail; re-append it.
	done := make([]int, 0, len(liveJobs))
	for id := range liveJobs {
		if _, ok := e.jobTab[id]; !ok {
			done = append(done, id)
		}
	}
	sort.Ints(done)
	for _, id := range done {
		e.journalAppend(journal.Record{Kind: journal.KindJobComplete, A: int64(id)})
	}

	ids := make([]int, 0, len(e.jobTab))
	for id := range e.jobTab {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		j := e.jobTab[id]
		if j.done || j.pending {
			// Submissions buffered during the downtime start below, after
			// every journaled job, preserving submit order across the crash.
			continue
		}
		if !liveJobs[id] {
			e.journalAppend(journal.Record{Kind: journal.KindJobSubmit, A: int64(id)})
		}
		j.stages = nil
		j.resultSR = nil
		j.count = 0
		j.parts = make([][]record.Record, j.final.Parts)
		j.tasks = nil
		e.trace("job-resume", j.id, -1, -1, -1, fmt.Sprintf("final=%s", j.final.Name))
		e.startJob(j)
	}
	pending := e.pendingJobs
	e.pendingJobs = nil
	for _, j := range pending {
		if j.done {
			continue // cancelled while buffered
		}
		j.pending = false
		e.journalJobSubmit(j)
		e.startJob(j)
	}
}

// Close shuts the driver down for good, idempotently: the first call fails
// every in-flight job (submissions buffered during a crash window included)
// with ErrJobCancelled, unwinds their tasks, and closes the journal's sink
// exactly once; later calls — and calls landing during a crash-recovery
// window — change nothing and return the first call's error. A closed driver
// rejects new submissions and ignores CrashDriver/RestartDriver.
func (e *Engine) Close() error {
	if e.closed {
		return e.closeErr
	}
	e.closed = true
	// A closed driver is terminally down, not crashed-awaiting-restart:
	// clear the crash flag so DriverDown readers see a settled state and a
	// racing scheduled RestartDriver stays a no-op (it checks closed first).
	e.driverDown = false
	cause := fmt.Errorf("engine: driver closed: %w", ErrJobCancelled)
	ids := make([]int, 0, len(e.jobTab))
	for id := range e.jobTab {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e.cancelJob(e.jobTab[id], cause)
	}
	e.pendingJobs = nil
	if e.jrn != nil {
		e.closeErr = e.jrn.Close()
	}
	return e.closeErr
}

// registerNamespace is the journal-free core of RegisterNamespace; replay
// reuses it.
func (e *Engine) registerNamespace(ns string, p partition.Partitioner, initialGroups int) error {
	numParts := p.NumPartitions()
	var units []int
	if e.cfg.Features.Extendable {
		if err := e.grp.Register(ns, numParts, initialGroups); err != nil {
			return err
		}
		groups, err := e.grp.Groups(ns)
		if err != nil {
			return err
		}
		for _, g := range groups {
			units = append(units, g.ID)
		}
	} else {
		units = make([]int, numParts)
		for i := range units {
			units[i] = i
		}
	}
	if err := e.loc.Register(ns, p, units, e.cl.AliveExecutors()); err != nil {
		return err
	}
	e.nsParts[ns] = numParts
	return nil
}
