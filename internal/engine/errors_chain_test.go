package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"stark/internal/partition"
	"stark/internal/storage"
)

// These tests pin the error-chain contract: every typed sentinel the engine
// hands out (ErrStorage, ErrFetchFailed, ErrJobCancelled) must survive the
// fmt.Errorf wrapping between the fault site and the job callback, so
// clients classify failures with errors.Is instead of string matching.

// TestErrStorageChainSurvivesRetryExhaustion: a permanent storage failure
// with a distinguishable root cause burns the retry budget; the job error
// must expose BOTH the typed ErrStorage sentinel and the root cause through
// the "failed after N attempts" wrapper.
func TestErrStorageChainSurvivesRetryExhaustion(t *testing.T) {
	rootCause := errors.New("controller firmware wedge")
	cfg := testConfig()
	cfg.Recovery.MaxTaskRetries = 2
	cfg.Recovery.RetryBackoff = time.Millisecond
	e := New(cfg)
	e.Store().SetFaultHook(func(op storage.Op) error {
		if op == storage.OpMapOutputWrite {
			return rootCause
		}
		return nil
	})
	g := e.Graph()
	src := g.Source("src", dataset(200, 4), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(4))
	_, _, err := e.Count(pb)
	if err == nil {
		t.Fatal("job succeeded despite a permanent storage failure")
	}
	if !errors.Is(err, ErrStorage) {
		t.Errorf("errors.Is(err, ErrStorage) = false; chain broke: %v", err)
	}
	if !errors.Is(err, rootCause) {
		t.Errorf("errors.Is(err, rootCause) = false; the original cause was dropped: %v", err)
	}
	if errors.Is(err, ErrFetchFailed) || errors.Is(err, ErrJobCancelled) {
		t.Errorf("error chain leaks unrelated sentinels: %v", err)
	}
}

// TestFetchErrorExposesSentinelAndCause: fetchError's multi-error Unwrap
// must let errors.Is see both the ErrFetchFailed sentinel and the root
// cause, and errors.As must still recover the shuffle id — even after the
// error is wrapped again on its way up.
func TestFetchErrorExposesSentinelAndCause(t *testing.T) {
	rootCause := errors.New("block server rebooted")
	var err error = &fetchError{shuffle: 7, err: rootCause}
	err = fmt.Errorf("reduce task 3: %w", err)

	if !errors.Is(err, ErrFetchFailed) {
		t.Errorf("errors.Is(err, ErrFetchFailed) = false: %v", err)
	}
	if !errors.Is(err, rootCause) {
		t.Errorf("errors.Is(err, rootCause) = false: %v", err)
	}
	var fe *fetchError
	if !errors.As(err, &fe) || fe.shuffle != 7 {
		t.Errorf("errors.As lost the fetchError payload (fe=%v): %v", fe, err)
	}
	if errors.Is(err, ErrStorage) {
		t.Errorf("fetch chain leaks ErrStorage: %v", err)
	}
}

// TestCancelChainCarriesCause: CancelJob(id, cause) must deliver an error
// satisfying errors.Is for both ErrJobCancelled and the caller's cause —
// the contract the session layer's deadline path depends on.
func TestCancelChainCarriesCause(t *testing.T) {
	cause := errors.New("client went away")
	e := New(testConfig())
	g := e.Graph()
	src := g.Source("src", dataset(400, 8), true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(8))

	var got error
	done := false
	id := e.SubmitJob(pb, ActionCount, func(r JobResult) {
		got = r.Err
		done = true
	})
	e.Loop().At(time.Microsecond, func() {
		if !e.CancelJob(id, cause) {
			t.Error("CancelJob reported no job cancelled")
		}
	})
	e.Loop().Run()

	if !done {
		t.Fatal("cancelled job never delivered a result")
	}
	if !errors.Is(got, ErrJobCancelled) {
		t.Errorf("errors.Is(err, ErrJobCancelled) = false: %v", got)
	}
	if !errors.Is(got, cause) {
		t.Errorf("errors.Is(err, cause) = false; caller's cause was dropped: %v", got)
	}

	// A cause already carrying the sentinel is not double-wrapped — the
	// chain stays errors.Is-clean either way.
	var got2 error
	id2 := e.SubmitJob(pb, ActionCount, func(r JobResult) { got2 = r.Err })
	e.Loop().At(e.Now()+time.Microsecond, func() {
		e.CancelJob(id2, fmt.Errorf("%w: deadline", ErrJobCancelled))
	})
	e.Loop().Run()
	if !errors.Is(got2, ErrJobCancelled) {
		t.Errorf("pre-wrapped cause lost the sentinel: %v", got2)
	}
}
