package engine

import (
	"errors"
	"fmt"
)

// Typed sentinel errors for the data plane and the job lifecycle. The retry
// machinery keys on them: ErrStorage marks a (possibly transient)
// persistent-storage failure that a bounded per-task retry may heal;
// ErrFetchFailed marks a reduce task that found its parent shuffle
// incomplete, which triggers stage resubmission (recompute the lost map
// outputs) instead of a plain retry. ErrJobCancelled marks a job withdrawn
// by the client before completion — deadline expiry, admission-control
// shedding, or driver shutdown; its tasks are unwound, never retried.
// ErrOOM marks a task whose cache write exceeded the executor's
// (pressure-shrunk) capacity inside an armed ExecutorOOM window; it retries
// like any executor-side failure and recomputes through lineage.
var (
	ErrStorage      = errors.New("engine: storage error")
	ErrFetchFailed  = errors.New("engine: shuffle fetch failed")
	ErrJobCancelled = errors.New("engine: job cancelled")
	ErrOOM          = errors.New("engine: executor out of memory")
)

// fetchError carries the shuffle whose outputs went missing so the recovery
// path knows which map stage to resubmit.
type fetchError struct {
	shuffle int
	err     error
}

func (f *fetchError) Error() string {
	return fmt.Sprintf("%v: shuffle %d: %v", ErrFetchFailed, f.shuffle, f.err)
}

// Unwrap exposes both the typed sentinel and the underlying cause, so
// errors.Is(err, ErrFetchFailed) and errors.Is(err, <root cause>) — an
// injected fault, a corrupt block — both see through the wrapper.
func (f *fetchError) Unwrap() []error { return []error{ErrFetchFailed, f.err} }
