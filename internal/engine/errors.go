package engine

import (
	"errors"
	"fmt"
)

// Typed sentinel errors for the data plane. The retry machinery keys on
// them: ErrStorage marks a (possibly transient) persistent-storage failure
// that a bounded per-task retry may heal; ErrFetchFailed marks a reduce
// task that found its parent shuffle incomplete, which triggers stage
// resubmission (recompute the lost map outputs) instead of a plain retry.
var (
	ErrStorage     = errors.New("engine: storage error")
	ErrFetchFailed = errors.New("engine: shuffle fetch failed")
)

// fetchError carries the shuffle whose outputs went missing so the recovery
// path knows which map stage to resubmit.
type fetchError struct {
	shuffle int
	err     error
}

func (f *fetchError) Error() string {
	return fmt.Sprintf("%v: shuffle %d: %v", ErrFetchFailed, f.shuffle, f.err)
}

// Unwrap lets errors.Is(err, ErrFetchFailed) see through the wrapper.
func (f *fetchError) Unwrap() error { return ErrFetchFailed }
