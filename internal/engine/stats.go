package engine

import (
	"fmt"
	"time"

	"stark/internal/cluster"
	"stark/internal/metrics"
	"stark/internal/rdd"
)

// Stats aggregates engine-lifetime counters: how often the data plane found
// blocks in the local cache versus recomputing them, total simulated bytes
// moved, and scheduling outcomes. The co-locality experiments are, at
// bottom, manipulations of these numbers.
type Stats struct {
	Jobs  int
	Tasks int

	CacheHits   int64
	CacheMisses int64

	BytesShuffled int64
	BytesInput    int64

	ComputeTime time.Duration
	GCTime      time.Duration
	ShuffleTime time.Duration

	LocalTasks  int
	RemoteTasks int

	// Cross-job lineage sharing: SharedStageSubs counts stage runs that
	// subscribed to another job's in-flight shuffle-map execution instead of
	// running their own copy (in-flight stage dedup); SharedShuffleSkips
	// counts map stages skipped wholesale because their shuffle outputs
	// already persisted from an earlier job (cache-level dedup).
	SharedStageSubs    int
	SharedShuffleSkips int
}

// CacheHitRate reports hits / (hits + misses), 0 when nothing was read.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// LocalityRate reports the NODE_LOCAL fraction of launched tasks.
func (s Stats) LocalityRate() float64 {
	total := s.LocalTasks + s.RemoteTasks
	if total == 0 {
		return 0
	}
	return float64(s.LocalTasks) / float64(total)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("jobs=%d tasks=%d cacheHit=%.0f%% local=%.0f%% shuffled=%dMB compute=%v gc=%v",
		s.Jobs, s.Tasks, s.CacheHitRate()*100, s.LocalityRate()*100,
		s.BytesShuffled>>20, s.ComputeTime.Round(time.Millisecond), s.GCTime.Round(time.Millisecond))
}

// Stats returns a snapshot of the engine-lifetime counters.
func (e *Engine) Stats() Stats { return e.stats }

// recordTaskStats folds one finished task into the lifetime counters.
func (e *Engine) recordTaskStats(tm metrics.TaskMetrics) {
	e.stats.Tasks++
	e.stats.BytesShuffled += tm.BytesShuffle
	e.stats.BytesInput += tm.BytesInput
	e.stats.ComputeTime += tm.Compute
	e.stats.GCTime += tm.GC
	e.stats.ShuffleTime += tm.ShuffleRead
	switch tm.Locality {
	case metrics.NodeLocal:
		e.stats.LocalTasks++
	case metrics.Remote:
		e.stats.RemoteTasks++
	}
}

// Unpersist drops every cached block of the RDD across the cluster and
// clears its cache flag — Spark's RDD.unpersist, the "evict" half of the
// paper's dynamically loaded and evicted dataset collections.
func (e *Engine) Unpersist(r *rdd.RDD) {
	r.CacheFlag = false
	for p := 0; p < r.Parts; p++ {
		id := cluster.BlockID{RDD: r.ID, Partition: p}
		for _, exec := range e.cl.Locations(id) {
			e.cl.DropBlock(exec, id)
		}
		ns, unit, ok := e.unitOf(id)
		if !ok {
			continue
		}
		// Re-derive replica lists for the unit now that this RDD is gone.
		for _, exec := range e.loc.Preferred(ns, unit) {
			if !e.unitCachedOn(ns, unit, exec) {
				e.loc.RemoveReplica(ns, unit, exec)
			}
		}
	}
}
