package engine

import (
	"fmt"
	"time"

	netsim "stark/internal/net"
)

// This file is the driver's failure-detection plane. When heartbeats are
// enabled the driver no longer learns of failures omnisciently: executors
// send heartbeats over the simulated network, and the driver's view of each
// executor moves alive → suspected → dead on missed-heartbeat timeouts.
// Suspicion only excludes the executor from scheduling (a late heartbeat
// clears it); a dead declaration bumps the executor's epoch, resubmits its
// in-flight tasks, and fails its locality assignments over. Results that
// later arrive from a stale epoch are rejected (see onTaskResult), and a
// heartbeat from a declared-dead executor rejoins it under the new epoch.
//
// Liveness: the heartbeat and detector timers run only while jobs are
// active and at least one executor process is alive, so the discrete-event
// loop still drains when the simulation is idle or irrecoverably wedged.

// viewState is the driver's opinion of one executor.
type viewState int

const (
	viewAlive viewState = iota
	viewSuspected
	viewDead
)

func (v viewState) String() string {
	switch v {
	case viewSuspected:
		return "suspected"
	case viewDead:
		return "dead"
	}
	return "alive"
}

// ExecutorEpoch reports the driver's current epoch for an executor. The
// epoch increments every time the driver gives up on an executor process
// (dead declaration, observed restart, or omniscient kill), fencing off
// results from older incarnations.
func (e *Engine) ExecutorEpoch(id int) int { return e.execEpoch[id] }

// ExecutorView reports the driver's current view of an executor:
// "alive", "suspected", or "dead". Always "alive" while heartbeat
// detection is disabled.
func (e *Engine) ExecutorView(id int) string { return e.execView[id].String() }

// ensureHeartbeats (re)arms the per-executor heartbeat timers and the
// driver's detector when a job becomes active. Heartbeat ages reset for
// every executor the driver does not consider dead, so idle gaps between
// jobs never count as missed heartbeats.
func (e *Engine) ensureHeartbeats() {
	if !e.hb.Enabled || e.activeJobs <= 0 || e.driverDown {
		return
	}
	if !e.detectorArmed {
		now := e.loop.Now()
		for id := range e.lastBeat {
			if e.execView[id] != viewDead {
				e.lastBeat[id] = now
			}
		}
		e.detectorArmed = true
		e.loop.After(e.hb.Interval, func() { e.detect() })
	}
	for id := 0; id < e.cl.NumExecutors(); id++ {
		e.armBeat(id)
	}
}

// armBeat starts an executor's heartbeat chain if it is not already
// beating. The first beat goes out immediately.
func (e *Engine) armBeat(id int) {
	if !e.hb.Enabled || e.beatArmed[id] || e.activeJobs <= 0 || e.cl.Executor(id).Dead() {
		return
	}
	e.beatArmed[id] = true
	e.beat(id)
}

// beat is one executor-side heartbeat tick: send (unreliable, carrying the
// process incarnation) and reschedule. The chain stops when the process is
// dead or no job is active; armBeat restarts it.
func (e *Engine) beat(id int) {
	if e.activeJobs <= 0 || e.cl.Executor(id).Dead() {
		e.beatArmed[id] = false
		return
	}
	inc := e.cl.Executor(id).Incarnation()
	e.net.Send(id, netsim.Driver, netsim.Heartbeat, false, func() { e.onHeartbeat(id, inc) })
	e.loop.After(e.hb.Interval, func() { e.beat(id) })
}

// detect is the driver's periodic missed-heartbeat scan.
func (e *Engine) detect() {
	if e.activeJobs <= 0 || e.driverDown {
		// A crashed driver cannot scan; RestartDriver resets heartbeat ages
		// and re-arms the detector.
		e.detectorArmed = false
		return
	}
	now := e.loop.Now()
	for id := 0; id < e.cl.NumExecutors(); id++ {
		if e.execView[id] == viewDead {
			continue
		}
		elapsed := now - e.lastBeat[id]
		if elapsed >= e.hb.DeadAfter {
			e.declareDead(id)
		} else if elapsed >= e.hb.SuspectAfter && e.execView[id] == viewAlive {
			e.suspect(id)
		}
	}
	// Keep scanning only while some executor process is alive; with every
	// process down (and no restart event pending) rescheduling forever would
	// keep RunJob from detecting the wedge. Declarations above still ran.
	if len(e.cl.AliveExecutors()) == 0 {
		e.detectorArmed = false
		return
	}
	e.loop.After(e.hb.Interval, func() { e.detect() })
}

// suspect excludes an executor from scheduling until a heartbeat arrives.
func (e *Engine) suspect(id int) {
	e.execView[id] = viewSuspected
	e.recUpdate(func(r *recMetrics) { r.Suspicions++ })
	e.trace("executor-suspect", -1, -1, -1, id,
		fmt.Sprintf("silent=%v", e.loop.Now()-e.lastBeat[id]))
}

// declareDead gives up on an executor: its epoch bumps (fencing any result
// still in flight from the old incarnation), its in-flight tasks are
// resubmitted, and locality fails over. The recovery epoch opens at the
// executor's last heard heartbeat, so the measured recovery delay includes
// the detection latency.
func (e *Engine) declareDead(id int) {
	det := e.loop.Now() - e.lastBeat[id]
	e.execView[id] = viewDead
	e.execEpoch[id]++
	e.recUpdate(func(r *recMetrics) {
		r.DeadDeclarations++
		r.DetectionDelays = append(r.DetectionDelays, det)
	})
	e.trace("executor-dead", -1, -1, -1, id,
		fmt.Sprintf("detect=%v epoch=%d", det, e.execEpoch[id]))
	e.loc.DropExecutor(id, e.viewAliveExecutors(id))
	e.resubmitLostTasks(id, e.lastBeat[id])
	e.schedule()
}

// onHeartbeat is the driver-side heartbeat handler: refresh the executor's
// liveness age, clear suspicion, rejoin declared-dead executors, and catch
// restarts that happened under the radar via the incarnation number.
func (e *Engine) onHeartbeat(id, incarnation int) {
	if e.driverDown {
		return // nobody home; the restart handshake resyncs incarnations
	}
	if incarnation != e.incSeen[id] {
		e.incSeen[id] = incarnation
		e.observeRestart(id)
	}
	switch e.execView[id] {
	case viewDead:
		e.execView[id] = viewAlive
		e.recUpdate(func(r *recMetrics) { r.Rejoins++ })
		e.trace("executor-rejoin", -1, -1, -1, id, fmt.Sprintf("epoch=%d", e.execEpoch[id]))
		e.lastBeat[id] = e.loop.Now()
		e.schedule()
	case viewSuspected:
		e.execView[id] = viewAlive
		e.recUpdate(func(r *recMetrics) { r.SuspicionsCleared++ })
		e.trace("executor-unsuspect", -1, -1, -1, id, "")
		e.lastBeat[id] = e.loop.Now()
		e.schedule()
	default:
		e.lastBeat[id] = e.loop.Now()
	}
}

// observeRestart handles the driver's first heartbeat from a new process
// incarnation: whatever the old process was running is gone, so the epoch
// bumps, tracked tasks resubmit, the cold cache's locality assignments fail
// over, and the fresh process gets blacklist probation — the same treatment
// the omniscient RestartExecutor applies, reconstructed purely from the
// heartbeat stream. If the old incarnation was already declared dead this
// reduces to the epoch bump (its tasks were resubmitted at declaration).
func (e *Engine) observeRestart(id int) {
	e.execEpoch[id]++
	e.trace("executor-new-incarnation", -1, -1, -1, id, fmt.Sprintf("epoch=%d", e.execEpoch[id]))
	e.loc.DropExecutor(id, e.viewAliveExecutors(id))
	e.recMu.Lock()
	delete(e.blacklistUntil, id)
	e.recMu.Unlock()
	e.resubmitLostTasks(id, e.lastBeat[id])
	e.drainDeferredCheckpoints()
}

// viewAliveExecutors lists executors the driver currently believes usable,
// excluding the given id — the failover pool for locality reassignment.
func (e *Engine) viewAliveExecutors(except int) []int {
	var out []int
	for id := 0; id < e.cl.NumExecutors(); id++ {
		if id == except || e.execView[id] != viewAlive || e.cl.Executor(id).Dead() {
			continue
		}
		out = append(out, id)
	}
	return out
}

// --- fault.System network surface ---------------------------------------

// PartitionExecutor cuts an executor off from the driver bidirectionally:
// heartbeats, launches, and results are lost until HealExecutor.
func (e *Engine) PartitionExecutor(id int) {
	e.trace("executor-partition", -1, -1, -1, id, "")
	e.net.Partition(id)
}

// HealExecutor reconnects a partitioned executor. The executor rejoins when
// its next heartbeat crosses; reliable in-flight messages retransmit
// through.
func (e *Engine) HealExecutor(id int) {
	e.trace("executor-heal", -1, -1, -1, id, "")
	e.net.Heal(id)
}

// SetNetDelay adds extra latency to every control message (0 restores
// normal latency) — the delayed-heartbeat fault.
func (e *Engine) SetNetDelay(extra time.Duration) {
	e.trace("net-delay", -1, -1, -1, -1, fmt.Sprintf("extra=%v", extra))
	e.net.SetExtraDelay(extra)
}

// CorruptShuffleBlock flips the checksum of the pick-th committed shuffle
// map output (modulo the current count); the next reader takes the
// integrity-failure recompute path.
func (e *Engine) CorruptShuffleBlock(pick int) bool {
	blocks := e.store.CommittedMapOutputs()
	if len(blocks) == 0 {
		return false
	}
	b := blocks[pick%len(blocks)]
	if !e.store.CorruptMapOutput(b[0], b[1]) {
		return false
	}
	e.trace("fault-block-corrupt", -1, -1, -1, -1, fmt.Sprintf("shuffle=%d map=%d", b[0], b[1]))
	return true
}

// CorruptCheckpointBlock flips the checksum of the pick-th checkpoint block
// (modulo the current count); the next reader drops it and recomputes
// through lineage.
func (e *Engine) CorruptCheckpointBlock(pick int) bool {
	blocks := e.store.CheckpointBlocks()
	if len(blocks) == 0 {
		return false
	}
	b := blocks[pick%len(blocks)]
	if !e.store.CorruptCheckpoint(b[0], b[1]) {
		return false
	}
	e.trace("fault-block-corrupt", -1, -1, -1, -1, fmt.Sprintf("checkpoint rdd=%d part=%d", b[0], b[1]))
	return true
}
