package engine

import (
	"testing"
	"time"

	"stark/internal/partition"
	"stark/internal/record"
)

// TestScale100kPartitions guards the scheduler and shuffle-index fast paths:
// a 100k-partition job (200k tasks) must finish in about a second of wall
// time (Fig. 7 sweeps this regime).
func TestScale100kPartitions(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.NumExecutors = 8
	cfg.Cluster.SlotsPerExecutor = 4
	e := New(cfg)
	g := e.Graph()
	n := 100000
	recs := make([]record.Record, 200000)
	for i := range recs {
		recs[i] = record.Pair("k"+itoa(i), int64(i))
	}
	parts := make([][]record.Record, n)
	for i, r := range recs {
		parts[i%n] = append(parts[i%n], r)
	}
	src := g.Source("src", parts, true)
	pb := g.PartitionBy(src, "pb", partition.NewHash(n))
	start := time.Now()
	cnt, jm, err := e.Count(pb)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("count=%d tasks=%d makespan=%v wall=%v", cnt, len(jm.Tasks), jm.Makespan(), time.Since(start))
	if cnt != 200000 {
		t.Fatalf("count=%d", cnt)
	}
}
