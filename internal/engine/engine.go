// Package engine is the driver of the simulated in-memory computing
// system: it submits jobs over the lineage graph, cuts them into stages,
// schedules tasks onto simulated executors with delay scheduling (plus
// Stark's co-locality, group tasks, and MCF when enabled), executes the
// transformations on real in-process data, charges virtual time through the
// cost model, and handles failure recovery and checkpointing.
//
// The engine is single-threaded and discrete-event driven: all activity
// happens inside vtime.Loop callbacks, so runs are deterministic.
package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"stark/internal/cluster"
	"stark/internal/config"
	"stark/internal/fault"
	"stark/internal/group"
	"stark/internal/journal"
	"stark/internal/locality"
	"stark/internal/metrics"
	netsim "stark/internal/net"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/replication"
	"stark/internal/sched"
	"stark/internal/storage"
	"stark/internal/vtime"
)

// Action selects what a job does with its final RDD.
type Action int

// Job actions.
const (
	ActionCount Action = iota + 1
	ActionCollect
	// ActionMaterialize computes (and caches, if requested) every partition
	// without returning data — the engine's foreach/cache primitive.
	ActionMaterialize
)

// CheckpointMode selects the checkpointing algorithm.
type CheckpointMode int

// Checkpointing algorithms.
const (
	CheckpointOff CheckpointMode = iota
	// CheckpointOptimal is Stark's min-cut optimizer (f = Relax).
	CheckpointOptimal
	// CheckpointEdge is the revised Tachyon Edge baseline.
	CheckpointEdge
)

// CheckpointConfig configures proactive checkpointing.
type CheckpointConfig struct {
	Mode  CheckpointMode
	Bound time.Duration // recovery delay bound r
	Relax float64       // cost relaxation f >= 1
	// SerializationRatio converts cached bytes to checkpoint bytes
	// (Fig. 17's constant factor).
	SerializationRatio float64
}

// Config assembles all engine configuration.
type Config struct {
	Cluster    config.Cluster
	Sched      config.Scheduler
	Features   config.Features
	Groups     group.Config
	Checkpoint CheckpointConfig
	// Replication bounds contention-aware replication of collection units.
	Replication replication.Config
	// Recovery is the failure-handling policy: task retry, executor
	// blacklisting, stage resubmission bounds, and speculation.
	Recovery config.Recovery
	// Faults, when non-empty, arms the deterministic fault injector on the
	// engine's virtual clock.
	Faults fault.Schedule
	// Network parameterizes the simulated control-plane transport; the zero
	// value is a perfect network that delivers synchronously.
	Network netsim.Config
	// Heartbeat enables driver-side failure detection over the transport;
	// the zero value keeps the omniscient failure model.
	Heartbeat config.Heartbeat
	// Seed drives the scheduler's randomized remote offers; runs with equal
	// seeds are bit-identical.
	Seed int64
	// Execution sizes the wall-clock data-plane worker pool; it never
	// affects simulation results, only how fast they are produced.
	Execution config.Execution
	// DriverRecovery enables the driver fault domain: the engine appends a
	// write-ahead journal at every commit point and can crash-restart the
	// driver (fault.DriverCrash), replaying the journal to rebuild its
	// control-plane state (driver.go).
	DriverRecovery bool
	// CachePolicy selects the executor-cache eviction policy: "" or "lru"
	// keeps the LRU baseline; "dag" installs the DAG-aware policy that
	// evicts zero-reference blocks first and pins peer groups all-or-nothing
	// (cachepolicy.go).
	CachePolicy string
}

// DefaultConfig mirrors stock Spark: no Stark features enabled.
func DefaultConfig() Config {
	return Config{
		Cluster: config.Default(),
		Sched:   config.DefaultScheduler(),
		Groups:  group.DefaultConfig(),
		Checkpoint: CheckpointConfig{
			Mode:               CheckpointOff,
			Bound:              60 * time.Second,
			Relax:              1,
			SerializationRatio: 0.4,
		},
		Replication: replication.Config{
			// One remote launch is enough evidence to adopt a replica, like
			// stock delay scheduling's incidental replication, but bounded.
			MaxReplicas:      6,
			HalfLife:         30 * time.Second,
			DemandPerReplica: 2,
		},
		Recovery: config.DefaultRecovery(),
	}
}

// JobResult is what an action returns.
type JobResult struct {
	JobID int
	// Count is the record count for ActionCount.
	Count int64
	// Partitions holds per-partition records for ActionCollect.
	Partitions [][]record.Record
	// Metrics is the job's timing record.
	Metrics metrics.JobMetrics
	// Err is non-nil when the job failed (task retries or stage
	// resubmissions exhausted); Count and Partitions are then partial.
	Err error
}

// Engine is the driver. Create with New; methods must be called from a
// single goroutine (event callbacks included).
type Engine struct {
	cfg   Config
	loop  *vtime.Loop
	cl    *cluster.Cluster
	store *storage.Store
	graph *rdd.Graph
	loc   *locality.Manager
	grp   *group.Manager
	repl  *replication.Policy

	// nsRDDs lists RDDs per namespace, for eviction bookkeeping.
	nsRDDs map[string][]*rdd.RDD
	// nsGeometry remembers per-namespace partition counts.
	nsParts map[string]int

	jobSeq  int
	taskSeq int

	// prefPending holds tasks that currently have a concrete locality
	// preference (namespace tasks, and tasks with a cached chain block for
	// their partition); it is scanned every round and must stay small.
	// plainPending tasks launch remotely, strictly FIFO from plainHead, so
	// scheduling stays O(launches) even with 10^5-task stages. A plain task
	// whose chain block gets cached is promoted via wakeIndex.
	prefPending  []*task
	plainPending []*task
	plainHead    int
	// unarmed counts prefPending tasks without a locality-wait timer yet.
	unarmed   int
	wakeIndex map[cluster.BlockID][]*task
	running   map[int]*task // by task id

	// shuffleRunning marks shuffles whose map stage is currently executing;
	// shuffleWaiters holds stage runs blocked on them; shuffleOwner remembers
	// which job's run holds the execution so cross-job in-flight stage
	// subscriptions are distinguishable from same-job re-checks in Stats.
	shuffleRunning map[int]bool
	shuffleWaiters map[int][]*stageRun
	shuffleOwner   map[int]*job

	// Failure-recovery state: which stage produces each shuffle (for
	// resubmission after block loss), reduce tasks parked on a rebuilding
	// shuffle, per-shuffle resubmission counts, per-executor failure counts
	// and blacklist windows, checkpoints deferred for lack of live
	// executors, and the injector when faults are armed.
	shuffleStages  map[int]*sched.Stage
	fetchWaiters   map[int][]*task
	resubmits      map[int]int
	execFailures   map[int]int
	blacklist      map[int]bool
	blacklistUntil map[int]time.Duration
	pendingCP      []*rdd.RDD
	inj            *fault.Injector
	// recMu guards rec, cacheRec, blacklist, and blacklistUntil so
	// RecoveryStats / CacheStats / Blacklisted snapshots may be taken from
	// another goroutine while a job runs. All writes happen on the
	// event-loop goroutine.
	recMu    sync.Mutex
	rec      metrics.RecoveryMetrics
	cacheRec metrics.CacheMetrics

	// Memory-pressure state (cachepolicy.go / plane.go): the DAG-aware
	// eviction policy when Config.CachePolicy selects it, the executors
	// currently inside an armed ExecutorOOM window, and every block a
	// policy eviction ever dropped (for counting recomputes-after-eviction;
	// read-only while planes run, mutated only at join).
	dagPol      *cluster.DAGPolicy
	oomArmed    map[int]bool
	evictedEver map[cluster.BlockID]bool

	// Control-plane transport and failure detection (detect.go). The
	// network exists even when perfect, so launch/result routing is uniform;
	// detection state is only consulted when hb.Enabled.
	net *netsim.Network
	hb  config.Heartbeat
	// activeJobs gates the heartbeat and detector timers: with no job in
	// flight the timers stop, so Loop.Run and RunJob still drain.
	activeJobs    int
	detectorArmed bool
	beatArmed     []bool
	lastBeat      []time.Duration
	execView      []viewState
	execEpoch     []int
	incSeen       []int

	// Driver fault domain (driver.go): the write-ahead journal (nil unless
	// DriverRecovery), whether the driver is currently crashed, the driver
	// generation (bumped per crash, invalidating pre-crash timer closures),
	// journal appends and job submissions buffered during downtime, the
	// client-held job handles and namespace partitioners re-attached at
	// restart, the replayed stream step tables, restart hooks, and the open
	// recovery epoch spanning crash through first resumed completions.
	jrn         *journal.Log
	driverDown  bool
	driverGen   int
	pendingJrn  []journal.Record
	pendingJobs []*job
	// jobTab indexes every in-flight job by id (all configurations, not just
	// DriverRecovery): CancelJob resolves handles through it, and the restart
	// path resubmits from it.
	jobTab map[int]*job
	// closed marks a driver shut down for good via Close; closeErr remembers
	// the first close's outcome so repeated Close calls are idempotent.
	closed         bool
	closeErr       error
	nsPartitioners map[string]partition.Partitioner
	streamSteps    map[string]map[int]int
	restartHooks   []func()
	resumeEpoch    *recoveryEpoch

	// Data-plane batching (plane.go): tasks dispatched during an event
	// accumulate in batch and execute at the event boundary on up to par
	// workers; draining guards against re-entrant drains.
	batch    []*batchEntry
	draining bool
	par      int
	// fuse keeps the batch accumulating across consecutive events at the
	// same virtual instant (task-chunk fusion; see postStep in plane.go).
	fuse bool

	completed []metrics.JobMetrics
	stats     Stats
	rng       *rand.Rand
	tracer    func(TraceEvent)
}

// New builds an engine and its simulated cluster.
func New(cfg Config) *Engine {
	if cfg.Checkpoint.Relax < 1 {
		cfg.Checkpoint.Relax = 1
	}
	if cfg.Checkpoint.SerializationRatio <= 0 {
		cfg.Checkpoint.SerializationRatio = 0.4
	}
	normalizeRecovery(&cfg.Recovery)
	if err := normalizeHeartbeat(&cfg.Heartbeat); err != nil {
		panic(err) // misconfiguration; Validate offers the error-returning path
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Network.Seed == 0 {
		cfg.Network.Seed = seed ^ 0x6e65747 // decorrelate from scheduler draws
	}
	e := &Engine{
		cfg:            cfg,
		loop:           vtime.NewLoop(),
		cl:             cluster.New(cfg.Cluster),
		store:          storage.NewStore(),
		graph:          rdd.NewGraph(),
		loc:            locality.NewManager(),
		grp:            group.NewManager(cfg.Groups),
		repl:           replication.NewPolicy(cfg.Replication),
		nsRDDs:         make(map[string][]*rdd.RDD),
		nsParts:        make(map[string]int),
		running:        make(map[int]*task),
		shuffleRunning: make(map[int]bool),
		shuffleWaiters: make(map[int][]*stageRun),
		shuffleOwner:   make(map[int]*job),
		jobTab:         make(map[int]*job),
		shuffleStages:  make(map[int]*sched.Stage),
		fetchWaiters:   make(map[int][]*task),
		resubmits:      make(map[int]int),
		execFailures:   make(map[int]int),
		blacklist:      make(map[int]bool),
		blacklistUntil: make(map[int]time.Duration),
		wakeIndex:      make(map[cluster.BlockID][]*task),
		oomArmed:       make(map[int]bool),
		evictedEver:    make(map[cluster.BlockID]bool),
		rng:            rand.New(rand.NewSource(seed)),
	}
	e.installCachePolicy()
	e.par = cfg.Execution.Parallelism
	if e.par <= 0 {
		e.par = runtime.GOMAXPROCS(0)
	}
	e.fuse = !cfg.Execution.DisableEventFusion
	e.loop.SetPostStep(e.postStep)
	e.net = netsim.New(cfg.Network, e.loop)
	e.hb = cfg.Heartbeat
	n := e.cl.NumExecutors()
	e.beatArmed = make([]bool, n)
	e.lastBeat = make([]time.Duration, n)
	e.execView = make([]viewState, n)
	e.execEpoch = make([]int, n)
	e.incSeen = make([]int, n)
	for i := 0; i < n; i++ {
		e.incSeen[i] = e.cl.Executor(i).Incarnation()
	}
	if cfg.DriverRecovery {
		e.jrn = &journal.Log{}
		e.nsPartitioners = make(map[string]partition.Partitioner)
		e.streamSteps = make(map[string]map[int]int)
	}
	if !cfg.Faults.Empty() {
		e.inj = fault.New(cfg.Faults)
		e.store.SetFaultHook(func(op storage.Op) error { return e.inj.StorageOp(string(op)) })
		e.net.SetFaultHook(func(k netsim.Kind) bool { return e.inj.MessageOp(k.String()) })
		e.inj.Arm(e.loop, e)
	}
	return e
}

// normalizeHeartbeat fills zero timeouts with defaults and enforces
// Interval <= SuspectAfter < DeadAfter. A user-supplied death timeout at or
// below the (possibly defaulted) suspicion timeout is a configuration
// error: executors would be declared dead without ever passing through the
// suspected state, which silently disables the suspicion machinery.
func normalizeHeartbeat(hb *config.Heartbeat) error {
	if !hb.Enabled {
		return nil
	}
	d := config.DefaultHeartbeat()
	if hb.Interval <= 0 {
		hb.Interval = d.Interval
	}
	if hb.SuspectAfter <= 0 {
		hb.SuspectAfter = d.SuspectAfter
	}
	if hb.SuspectAfter < hb.Interval {
		hb.SuspectAfter = hb.Interval
	}
	if hb.DeadAfter < 0 {
		hb.DeadAfter = 0
	}
	if hb.DeadAfter > 0 && hb.DeadAfter <= hb.SuspectAfter {
		return fmt.Errorf("engine: heartbeat DeadAfter (%v) must exceed SuspectAfter (%v): executors would skip suspicion and be declared dead outright",
			hb.DeadAfter, hb.SuspectAfter)
	}
	if hb.DeadAfter == 0 {
		hb.DeadAfter = 2*hb.SuspectAfter + hb.Interval
	}
	return nil
}

// Validate reports whether the configuration would be rejected by New
// without constructing an engine — the error-returning alternative to New's
// panic-on-misconfiguration contract.
func Validate(cfg Config) error {
	if err := validateCachePolicy(cfg.CachePolicy); err != nil {
		return err
	}
	return normalizeHeartbeat(&cfg.Heartbeat)
}

// normalizeRecovery fills zero-valued policy fields with defaults;
// negative MaxTaskRetries / BlacklistThreshold explicitly disable retry and
// blacklisting.
func normalizeRecovery(rc *config.Recovery) {
	d := config.DefaultRecovery()
	if rc.MaxTaskRetries == 0 {
		rc.MaxTaskRetries = d.MaxTaskRetries
	} else if rc.MaxTaskRetries < 0 {
		rc.MaxTaskRetries = 0
	}
	if rc.RetryBackoff <= 0 {
		rc.RetryBackoff = d.RetryBackoff
	}
	if rc.BlacklistThreshold == 0 {
		rc.BlacklistThreshold = d.BlacklistThreshold
	} else if rc.BlacklistThreshold < 0 {
		rc.BlacklistThreshold = 0
	}
	if rc.BlacklistExpiry <= 0 {
		rc.BlacklistExpiry = d.BlacklistExpiry
	}
	if rc.MaxStageResubmissions <= 0 {
		rc.MaxStageResubmissions = d.MaxStageResubmissions
	}
	if rc.SpeculationMultiplier <= 1 {
		rc.SpeculationMultiplier = d.SpeculationMultiplier
	}
	if rc.SpeculationQuantile <= 0 || rc.SpeculationQuantile > 1 {
		rc.SpeculationQuantile = d.SpeculationQuantile
	}
}

// Injector exposes the armed fault injector, nil when no faults are
// configured.
func (e *Engine) Injector() *fault.Injector { return e.inj }

// Loop exposes the virtual clock (for scheduling streaming input).
func (e *Engine) Loop() *vtime.Loop { return e.loop }

// Graph exposes the lineage graph builder.
func (e *Engine) Graph() *rdd.Graph { return e.graph }

// Cluster exposes the simulated cluster (for tests and failure injection).
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Store exposes the persistent store.
func (e *Engine) Store() *storage.Store { return e.store }

// Network exposes the simulated control-plane transport.
func (e *Engine) Network() *netsim.Network { return e.net }

// Locality exposes the LocalityManager.
func (e *Engine) Locality() *locality.Manager { return e.loc }

// Groups exposes the GroupManager.
func (e *Engine) Groups() *group.Manager { return e.grp }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// CompletedJobs returns metrics for every finished job, in completion
// order.
func (e *Engine) CompletedJobs() []metrics.JobMetrics { return e.completed }

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.loop.Now() }

type job struct {
	id        int
	final     *rdd.RDD
	action    Action
	submitted time.Duration
	stages    []*stageRun // parents before children (sched.AllStages order)
	resultSR  *stageRun
	count     int64
	parts     [][]record.Record
	tasks     []metrics.TaskMetrics
	done      bool
	// pending marks a submission buffered while the driver was down; the
	// restart path starts buffered jobs after the journaled ones and clears
	// the flag.
	pending bool
	err     error
	cb      func(JobResult)
}

type stageRun struct {
	st        *sched.Stage
	job       *job
	remaining int
	started   bool
	// runsShuffle marks this run as the owner of its shuffle's execution
	// (holder of shuffleRunning); released when the job fails mid-stage so
	// later jobs can rerun the shuffle.
	runsShuffle bool
	// charged lists the RDD ids this run holds DAG-policy references on;
	// nil once released (cachepolicy.go).
	charged []int
	// durations collects completed-task durations for the speculation
	// median.
	durations []time.Duration
}

type task struct {
	id         int
	sr         *stageRun
	partitions []int
	ns         string
	unit       int // collection unit (partition or group id); -1 when none
	group      bool
	prefCap    bool
	promoted   bool
	// counted marks tasks included in the engine's unarmed-timer counter.
	counted   bool
	submitted time.Duration
	waitArmed bool
	aborted   bool
	exec      int
	tm        metrics.TaskMetrics

	// Recovery state: attempt number (0 = first launch), the data-plane
	// error detected at completion time, the expected completion time (for
	// straggler detection), speculative-copy links, and the failure epoch
	// this attempt recovers from.
	attempt     int
	failErr     error
	expectedEnd time.Duration
	spec        *task // speculative copy launched for this task
	specOf      *task // original this task speculates for
	epoch       *recoveryEpoch

	// Transport/detection state: whether this attempt currently holds an
	// executor slot, whether its executor process died under it (the
	// completion event then reports to nobody), the process incarnation the
	// slot was acquired from (a release against a later incarnation would
	// corrupt the books), and the executor epoch the driver stamped at
	// launch — a result arriving with a stale fence is rejected instead of
	// mutating job or shuffle state.
	slotHeld  bool
	lost      bool
	launchInc int
	fence     int

	// Action results accumulate here during the data plane and are applied
	// to the job only at result-accept time, so aborted and stale-epoch
	// tasks leave no trace. Map-stage buckets are staged in mapOut on the
	// executor and committed to the store only when the driver accepts the
	// result (epoch-fenced shuffle registration).
	count     int64
	collected map[int][]record.Record
	mapOut    map[int]*record.PartitionedBatch
	// collectedFP holds per-partition fingerprints taken when collect
	// staging aliased the partition data (STARK_CHECK_COW=1 only); they are
	// re-verified at result-accept to catch copy-on-write violations.
	collectedFP map[int]uint64
}

// SubmitJob enqueues an action on final at the current virtual time; cb
// fires on completion. Use RunJob for the synchronous version. While the
// driver is crashed the submission is accepted (the client holds a valid
// handle) but buffered; it starts when the driver restarts. A submission
// against a closed driver fails immediately with ErrJobCancelled.
func (e *Engine) SubmitJob(final *rdd.RDD, action Action, cb func(JobResult)) int {
	j := &job{
		id:        e.jobSeq,
		final:     final,
		action:    action,
		submitted: e.loop.Now(),
		parts:     make([][]record.Record, final.Parts),
		cb:        cb,
	}
	e.jobSeq++
	if e.closed {
		j.done = true
		j.err = fmt.Errorf("engine: driver closed: %w", ErrJobCancelled)
		if cb != nil {
			cb(JobResult{JobID: j.id, Err: j.err})
		}
		return j.id
	}
	e.activeJobs++
	e.jobTab[j.id] = j
	if e.driverDown {
		j.pending = true
		e.pendingJobs = append(e.pendingJobs, j)
		return j.id
	}
	e.journalJobSubmit(j)
	e.startJob(j)
	// A submission from outside the event loop has no post-step boundary;
	// drain the dispatched work now (no-op when called from inside an event).
	e.drainBatch()
	return j.id
}

// startJob builds a job's stage runs and kicks scheduling. The restart path
// reuses it to resubmit journaled in-flight jobs with fresh stage state.
func (e *Engine) startJob(j *job) {
	e.ensureHeartbeats()
	result := sched.Build(j.final)
	for _, st := range sched.AllStages(result) {
		sr := &stageRun{st: st, job: j}
		j.stages = append(j.stages, sr)
		if !st.ShuffleMap {
			j.resultSR = sr
		}
		e.chargeStage(sr)
	}
	e.trace("job-submit", j.id, -1, -1, -1, fmt.Sprintf("final=%s action=%d stages=%d", j.final.Name, j.action, len(j.stages)))
	for _, sr := range j.stages {
		e.maybeStartStage(sr)
	}
	e.schedule()
}

// SubmitJobAt schedules a job submission at a future virtual time.
func (e *Engine) SubmitJobAt(at time.Duration, final *rdd.RDD, action Action, cb func(JobResult)) {
	e.loop.At(at, func() { e.SubmitJob(final, action, cb) })
}

// RunJob submits the job and drives the event loop until it completes.
// Other pending work (earlier jobs, streaming events) advances as a side
// effect, exactly as a blocking action on a busy driver would.
func (e *Engine) RunJob(final *rdd.RDD, action Action) (JobResult, error) {
	var res JobResult
	done := false
	e.SubmitJob(final, action, func(r JobResult) {
		res = r
		done = true
	})
	for !done {
		if !e.loop.Step() {
			return JobResult{}, fmt.Errorf("engine: job on %s cannot complete (no runnable executors?)", final)
		}
	}
	return res, res.Err
}

// Count runs a count action synchronously.
func (e *Engine) Count(final *rdd.RDD) (int64, metrics.JobMetrics, error) {
	res, err := e.RunJob(final, ActionCount)
	return res.Count, res.Metrics, err
}

// Collect runs a collect action synchronously and flattens the partitions.
func (e *Engine) Collect(final *rdd.RDD) ([]record.Record, metrics.JobMetrics, error) {
	res, err := e.RunJob(final, ActionCollect)
	if err != nil {
		return nil, metrics.JobMetrics{}, err
	}
	var out []record.Record
	for _, p := range res.Partitions {
		out = append(out, p...)
	}
	return out, res.Metrics, nil
}

// Materialize computes (and caches, per CacheFlag) the RDD synchronously.
func (e *Engine) Materialize(final *rdd.RDD) (metrics.JobMetrics, error) {
	res, err := e.RunJob(final, ActionMaterialize)
	return res.Metrics, err
}

// maybeStartStage enqueues the stage's tasks when all its parent shuffles
// are complete, deduplicating concurrently running shuffle-map stages
// across jobs.
func (e *Engine) maybeStartStage(sr *stageRun) {
	if sr.started {
		return
	}
	for _, p := range sr.st.Parents {
		if !e.store.ShuffleComplete(p.ShuffleID) {
			e.ensureParentShuffle(sr, p.ShuffleID)
			return
		}
	}
	if sr.st.ShuffleMap {
		if e.store.ShuffleComplete(sr.st.ShuffleID) {
			// Outputs persist from an earlier job: skip the stage wholesale.
			// The producer stage still registers so a later fetch failure on
			// the skipped shuffle can rebuild it (without this, a restarted
			// driver resuming from committed outputs would have no producer
			// on record and block loss would fail the job).
			e.stats.SharedShuffleSkips++
			e.registerShuffleStage(sr.st)
			sr.started = true
			sr.runsShuffle = true
			sr.remaining = 0
			e.onStageComplete(sr)
			return
		}
		if e.shuffleRunning[sr.st.ShuffleID] {
			// In-flight stage subscription: instead of computing the shuffle a
			// second time, park on the run that owns it and share its outputs.
			if owner := e.shuffleOwner[sr.st.ShuffleID]; owner != nil && owner != sr.job {
				e.stats.SharedStageSubs++
			}
			e.shuffleWaiters[sr.st.ShuffleID] = append(e.shuffleWaiters[sr.st.ShuffleID], sr)
			return
		}
		e.shuffleRunning[sr.st.ShuffleID] = true
		e.shuffleOwner[sr.st.ShuffleID] = sr.job
		sr.runsShuffle = true
		if err := e.store.RegisterShuffle(sr.st.ShuffleID, sr.st.Output.Parts, sr.st.Consumer.Parts); err != nil {
			panic(err) // geometry conflicts are engine bugs
		}
		e.registerShuffleStage(sr.st)
	}
	sr.started = true
	e.trace("stage-start", sr.job.id, sr.st.ID, -1, -1, fmt.Sprintf("output=%s shuffleMap=%v", sr.st.Output.Name, sr.st.ShuffleMap))
	e.enqueueTasks(sr)
}

// enqueueTasks builds the stage's tasks — group tasks when the output RDD
// belongs to an extendable namespace, per-partition tasks otherwise.
func (e *Engine) enqueueTasks(sr *stageRun) {
	out := sr.st.Output
	ns := e.activeNamespace(out)
	specs := e.taskSpecs(out, ns)
	sr.remaining = len(specs)
	if len(specs) == 0 {
		e.onStageComplete(sr)
		return
	}
	e.enqueueSpecs(sr, specs, e.stagePrefCap(sr, ns))
}

// stagePrefCap reports whether the stage's tasks can ever gain a locality
// preference: a task without a namespace can only become NODE_LOCAL through
// cached blocks of its narrow chain; if nothing in the chain is cacheable
// it goes straight to the fast FIFO queue.
func (e *Engine) stagePrefCap(sr *stageRun, ns string) bool {
	if ns != "" {
		return true
	}
	for _, r := range sr.st.NarrowChain() {
		if r.CacheFlag {
			return true
		}
	}
	return false
}

// enqueueSpecs instantiates and enqueues one task per spec. Stage
// resubmission reuses it to re-enqueue only the specs covering lost map
// outputs.
func (e *Engine) enqueueSpecs(sr *stageRun, specs []taskSpec, prefCap bool) {
	for _, sp := range specs {
		t := &task{
			id:         e.taskSeq,
			sr:         sr,
			partitions: sp.partitions,
			ns:         sp.ns,
			unit:       sp.unit,
			group:      sp.group,
			prefCap:    prefCap,
			submitted:  e.loop.Now(),
		}
		e.taskSeq++
		t.tm = metrics.TaskMetrics{
			JobID:     sr.job.id,
			StageID:   sr.st.ID,
			TaskID:    t.id,
			Submitted: t.submitted,
		}
		if e.resumeEpoch != nil {
			// Work created inside the driver-restart resubmission window
			// counts toward the crash's recovery epoch: the measured delay
			// closes when every such task has succeeded.
			t.epoch = e.resumeEpoch
			e.resumeEpoch.pending++
		}
		e.enqueue(t)
	}
}

// enqueue routes a task: namespace tasks and tasks with an already-cached
// chain block go to the scanned preference queue; the rest go to the plain
// FIFO, with wake registrations so a later cache fill promotes them.
func (e *Engine) enqueue(t *task) {
	if t.ns != "" {
		e.prefPending = append(e.prefPending, t)
		t.counted = true
		e.unarmed++
		return
	}
	if t.prefCap {
		chain := t.sr.st.NarrowChain()
		for _, r := range chain {
			if !r.CacheFlag && !r.Checkpointed {
				continue
			}
			for _, p := range t.partitions {
				if len(e.cl.Locations(cluster.BlockID{RDD: r.ID, Partition: p})) > 0 {
					e.prefPending = append(e.prefPending, t)
					t.counted = true
					e.unarmed++
					return
				}
			}
		}
		for _, r := range chain {
			if !r.CacheFlag {
				continue
			}
			for _, p := range t.partitions {
				id := cluster.BlockID{RDD: r.ID, Partition: p}
				e.wakeIndex[id] = append(e.wakeIndex[id], t)
			}
		}
	}
	e.plainPending = append(e.plainPending, t)
}

// wakeTasks promotes plain tasks whose watched block just got cached.
func (e *Engine) wakeTasks(id cluster.BlockID) {
	tasks, ok := e.wakeIndex[id]
	if !ok {
		return
	}
	delete(e.wakeIndex, id)
	for _, t := range tasks {
		if t.launched() || t.promoted {
			continue
		}
		t.promoted = true
		e.prefPending = append(e.prefPending, t)
		if !t.waitArmed {
			t.counted = true
			e.unarmed++
		}
	}
}

type taskSpec struct {
	partitions []int
	ns         string
	unit       int
	group      bool
}

// activeNamespace returns the RDD's namespace when co-locality is enabled
// and the namespace is registered.
func (e *Engine) activeNamespace(r *rdd.RDD) string {
	if !e.cfg.Features.CoLocality || r.Namespace == "" {
		return ""
	}
	if !e.loc.Registered(r.Namespace) {
		return ""
	}
	if n, ok := e.nsParts[r.Namespace]; !ok || n != r.Parts {
		return ""
	}
	return r.Namespace
}

func (e *Engine) taskSpecs(out *rdd.RDD, ns string) []taskSpec {
	if ns != "" && e.cfg.Features.Extendable && e.grp.Registered(ns) {
		groups, err := e.grp.Groups(ns)
		if err == nil {
			specs := make([]taskSpec, 0, len(groups))
			for _, g := range groups {
				parts := make([]int, 0, g.Width())
				for p := g.Lo; p < g.Hi && p < out.Parts; p++ {
					parts = append(parts, p)
				}
				if len(parts) == 0 {
					continue
				}
				specs = append(specs, taskSpec{partitions: parts, ns: ns, unit: g.ID, group: true})
			}
			return specs
		}
	}
	specs := make([]taskSpec, 0, out.Parts)
	for p := 0; p < out.Parts; p++ {
		unit := -1
		tns := ""
		if ns != "" {
			unit = p
			tns = ns
		}
		specs = append(specs, taskSpec{partitions: []int{p}, ns: tns, unit: unit})
	}
	return specs
}

// onStageComplete propagates stage completion: shuffle-map stages unblock
// waiters (in this and other jobs); the result stage finishes the job.
func (e *Engine) onStageComplete(sr *stageRun) {
	if sr.st.ShuffleMap {
		if !sr.runsShuffle {
			// Ownership was released when this run's job failed; whichever
			// run owns the shuffle now propagates completion.
			return
		}
		// A block-loss fault may have punched holes in the shuffle while the
		// stage ran; recompute just the missing map outputs before declaring
		// the shuffle complete.
		if missing := e.store.MissingMapOutputs(sr.st.ShuffleID); len(missing) > 0 {
			if !e.bumpResubmit(sr.job, sr.st.ShuffleID) {
				return
			}
			e.trace("stage-resubmit", sr.job.id, sr.st.ID, -1, -1,
				fmt.Sprintf("shuffle=%d missing=%d", sr.st.ShuffleID, len(missing)))
			e.enqueueMissing(sr, missing)
			return
		}
		sr.runsShuffle = false
		e.releaseStage(sr)
		delete(e.shuffleRunning, sr.st.ShuffleID)
		delete(e.shuffleOwner, sr.st.ShuffleID)
		waiters := e.shuffleWaiters[sr.st.ShuffleID]
		delete(e.shuffleWaiters, sr.st.ShuffleID)
		// Children in this job plus cross-job waiters re-check readiness.
		for _, child := range sr.job.stages {
			e.maybeStartStage(child)
		}
		for _, w := range waiters {
			e.maybeStartStage(w)
		}
		e.releaseFetchWaiters(sr.st.ShuffleID)
		return
	}
	e.finishJob(sr.job)
}

func (e *Engine) finishJob(j *job) {
	if j.done {
		return
	}
	j.done = true
	e.activeJobs--
	e.stats.Jobs++
	delete(e.jobTab, j.id)
	// Return any DAG-policy references still held (result stage, failure or
	// cancellation leftovers) so the job's cached inputs become evictable.
	for _, sr := range j.stages {
		e.releaseStage(sr)
	}
	e.journalJobComplete(j)
	jm := metrics.JobMetrics{
		JobID:     j.id,
		Submitted: j.submitted,
		Finished:  e.loop.Now(),
		Tasks:     j.tasks,
	}
	e.completed = append(e.completed, jm)
	e.trace("job-finish", j.id, -1, -1, -1, fmt.Sprintf("makespan=%v tasks=%d err=%v", jm.Makespan(), len(jm.Tasks), j.err))
	res := JobResult{
		JobID:      j.id,
		Count:      j.count,
		Partitions: j.parts,
		Metrics:    jm,
		Err:        j.err,
	}
	if j.err == nil {
		e.maybeCheckpoint(j.final)
	}
	if j.cb != nil {
		j.cb(res)
	}
}
