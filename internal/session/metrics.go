package session

import (
	"fmt"
	"sort"
	"time"
)

// Stats counts what the admission controller and dispatcher did. Mutations
// happen on the engine's event-loop goroutine under the server's mutex;
// Server.Stats returns a deep-copied snapshot safe to read anywhere.
type Stats struct {
	Submitted  int // Submit calls, including rejected ones
	Admitted   int // submissions that entered a queue or subscribed to in-flight work
	Dispatched int // queue entries handed to the engine
	Completed  int // submissions delivered a successful result
	Failed     int // submissions delivered an engine failure (not shed/deadline/close)

	Shed             int // submissions failed fast with ErrOverload
	DeadlineExceeded int // submissions cancelled on deadline expiry
	Closed           int // submissions failed because the server closed

	// DedupSubscriptions counts submissions satisfied by attaching to
	// another tenant's identical in-flight computation instead of queueing
	// their own. DuplicateComputations counts engine submissions made while
	// an identical computation was already running — the dedup invariant the
	// overload oracle pins to zero.
	DedupSubscriptions    int
	DuplicateComputations int

	MaxQueued int // high-water mark of total queued entries

	// QueueDelays records, per dispatched entry, virtual admission-to-
	// dispatch time; Latencies records, per delivered result, virtual
	// admission-to-delivery time (subscribers included).
	QueueDelays []time.Duration
	Latencies   []time.Duration
}

// clone deep-copies the snapshot so callers never alias live slices.
func (s Stats) clone() Stats {
	s.QueueDelays = append([]time.Duration(nil), s.QueueDelays...)
	s.Latencies = append([]time.Duration(nil), s.Latencies...)
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("submitted=%d admitted=%d dispatched=%d completed=%d failed=%d shed=%d deadline=%d dedupSubs=%d dupComputes=%d maxQueued=%d p50=%v p99=%v",
		s.Submitted, s.Admitted, s.Dispatched, s.Completed, s.Failed,
		s.Shed, s.DeadlineExceeded, s.DedupSubscriptions, s.DuplicateComputations,
		s.MaxQueued,
		Percentile(s.Latencies, 0.50).Round(time.Millisecond),
		Percentile(s.Latencies, 0.99).Round(time.Millisecond))
}

// TenantStats is one tenant's view of the same counters, for fairness and
// isolation reporting.
type TenantStats struct {
	Name      string
	Quota     int
	Submitted int
	Admitted  int
	Completed int
	Failed    int
	Shed      int
	Deadline  int
	Shared    int // results delivered via dedup subscription
}

// Percentile returns the p-th percentile (0 < p <= 1) of the durations
// using nearest-rank on a sorted copy; 0 when the slice is empty.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p > 1 {
		p = 1
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
