// Package session is the multi-tenant job-submission layer over the engine:
// N tenant sessions submit actions against shared namespaces through an
// admission controller with bounded queues and a memory-budget pin ledger,
// a deficit-round-robin dispatcher weighted by tenant quota, per-job
// deadlines with cooperative cancellation, and explicit overload behavior —
// when a bound is exceeded, the lowest-priority queued job is shed fast
// with a typed ErrOverload instead of degrading every tenant.
//
// Identical concurrent submissions (same final RDD, same action) are
// computed once: later submissions subscribe to the in-flight computation
// and receive the same result, so a hot RDD hammered by several tenants
// costs one execution (Stats.DuplicateComputations pins the invariant).
//
// Like the engine it wraps, the server is single-threaded on the virtual
// event loop: Submit, timers, and engine callbacks all run on the loop
// goroutine. The mutex only guards the Stats snapshot for monitoring
// goroutines, mirroring fault.Injector.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stark/internal/engine"
	"stark/internal/rdd"
)

// Config bounds the admission controller and dispatcher. Zero fields take
// the documented defaults.
type Config struct {
	// MaxActive caps concurrently running engine jobs (default 4). Queued
	// work beyond it waits for the dispatcher.
	MaxActive int
	// MaxQueuedPerTenant bounds one tenant's queue (default 32); the
	// overflow victim is drawn from that tenant only, so one tenant's burst
	// never sheds another tenant's work.
	MaxQueuedPerTenant int
	// MaxQueuedTotal bounds the queued entries across all tenants
	// (default 128).
	MaxQueuedTotal int
	// MemoryBudget bounds the admission pin ledger in bytes (0 = unlimited):
	// every queued or running entry pins Parts*BytesPerPartition until it
	// reaches a terminal state, modeling the cache footprint an admitted
	// job may occupy.
	MemoryBudget int64
	// BytesPerPartition is the per-partition admission charge
	// (default 1 MiB).
	BytesPerPartition int64
	// TrackClusterMemory couples the ledger to the cluster's live,
	// pressure-shrunk cache capacity: the effective budget becomes
	// min(MemoryBudget, TotalEffectiveCapacity()), so MemPressure windows
	// and executor deaths shrink admission headroom immediately and the
	// server sheds with ErrOverload instead of admitting work the squeezed
	// cluster cannot hold.
	TrackClusterMemory bool
	// Quantum is the deficit-round-robin quantum in partition-cost units
	// credited per visit, multiplied by the tenant's quota (default 8).
	Quantum int
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		MaxActive:          4,
		MaxQueuedPerTenant: 32,
		MaxQueuedTotal:     128,
		BytesPerPartition:  1 << 20,
		Quantum:            8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxActive <= 0 {
		c.MaxActive = d.MaxActive
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = d.MaxQueuedPerTenant
	}
	if c.MaxQueuedTotal <= 0 {
		c.MaxQueuedTotal = d.MaxQueuedTotal
	}
	if c.BytesPerPartition <= 0 {
		c.BytesPerPartition = d.BytesPerPartition
	}
	if c.Quantum <= 0 {
		c.Quantum = d.Quantum
	}
	return c
}

// Result is what a tenant submission delivers: the engine's job result plus
// the session-layer accounting the isolation oracle asserts on.
type Result struct {
	engine.JobResult
	// Tenant names the submitting tenant.
	Tenant string
	// Shared reports that the result came from subscribing to another
	// submission's identical in-flight computation.
	Shared bool
	// QueueDelay is the virtual admission-to-dispatch time (0 for shared
	// results, which never queue); Latency is admission-to-delivery.
	QueueDelay time.Duration
	Latency    time.Duration
}

// SubmitOptions parameterize one submission.
type SubmitOptions struct {
	// Priority orders shedding under overload: higher survives longer.
	Priority int
	// Deadline, when positive, bounds the job's virtual completion time
	// relative to submission; expiry cancels cooperatively with
	// ErrDeadlineExceeded.
	Deadline time.Duration
	// OnDone fires exactly once with the terminal result.
	OnDone func(Result)
}

// Job is a tenant's handle on one submission.
type Job struct {
	tenant   *Tenant
	id       int // server-wide submission sequence; larger = newer
	priority int
	cb       func(Result)
	ent      *entry
	pinned   int64
	admitted time.Duration
	done     bool
	res      Result
}

// ID returns the server-wide submission sequence number.
func (j *Job) ID() int { return j.id }

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.done }

// Result returns the terminal result (zero until Done).
func (j *Job) Result() Result { return j.res }

// entry is one unit of engine work. Several Jobs may attach to it (dedup
// subscription); it runs while at least one attachment remains.
type entry struct {
	key          dedupKey
	final        *rdd.RDD
	action       engine.Action
	cost         int // DRR cost: result-stage task count
	owner        *Tenant
	attached     []*Job
	queuedAt     time.Duration
	dispatchedAt time.Duration
	state        int
	engID        int
}

const (
	stateQueued = iota
	stateRunning
	stateDone
)

// prio is the entry's effective shed priority: the max over attachments, so
// a low-priority submission sheltered by a high-priority subscriber
// survives as long as the subscriber does.
func (en *entry) prio() int {
	p := en.attached[0].priority
	for _, j := range en.attached[1:] {
		if j.priority > p {
			p = j.priority
		}
	}
	return p
}

// newest is the largest attachment id — the shed tie-break (newest goes
// first).
func (en *entry) newest() int {
	n := en.attached[0].id
	for _, j := range en.attached[1:] {
		if j.id > n {
			n = j.id
		}
	}
	return n
}

type dedupKey struct {
	rddID  int
	action engine.Action
}

// Tenant is one session against the shared server.
type Tenant struct {
	srv   *Server
	name  string
	idx   int
	quota int

	deficit int
	queue   []*entry
}

// Name returns the tenant's registration name.
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's fair-share weight.
func (t *Tenant) Quota() int { return t.quota }

// Server is the multi-tenant job server. Create with Open, register
// tenants, then Submit through them; all calls must run on the engine's
// event-loop goroutine.
type Server struct {
	eng *engine.Engine
	cfg Config

	tenants  []*Tenant // ring order = registration order
	rr       int       // DRR ring cursor
	credited bool      // current ring visit already received its quantum

	work    map[dedupKey]*entry // queued or running entries, by dedup key
	running map[int]*entry      // running entries, by engine job id
	queued  int
	active  int
	pinned  int64
	seq     int
	closed  bool

	dispatching bool // reentrancy guard: engine callbacks re-trigger dispatch

	stormJob  func(tenant, n int) (*rdd.RDD, engine.Action)
	poisonJob func(tenant int, factor float64) (*rdd.RDD, engine.Action)
	stormSeq  int

	mu     sync.Mutex
	stats  Stats
	tstats []TenantStats
}

// Open builds a server over the engine.
func Open(eng *engine.Engine, cfg Config) *Server {
	return &Server{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		work:    make(map[dedupKey]*entry),
		running: make(map[int]*entry),
	}
}

// Engine returns the wrapped engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

// RegisterTenant adds a tenant session with the given fair-share quota
// (clamped to >= 1). Registration order fixes the DRR ring order, so it is
// part of the deterministic inputs.
func (s *Server) RegisterTenant(name string, quota int) *Tenant {
	if quota < 1 {
		quota = 1
	}
	t := &Tenant{srv: s, name: name, idx: len(s.tenants), quota: quota}
	s.tenants = append(s.tenants, t)
	s.mu.Lock()
	s.tstats = append(s.tstats, TenantStats{Name: name, Quota: quota})
	s.mu.Unlock()
	return t
}

// Tenants returns the registered tenants in ring order.
func (s *Server) Tenants() []*Tenant { return append([]*Tenant(nil), s.tenants...) }

// bump applies one stats mutation under the lock.
func (s *Server) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// tbump applies one per-tenant stats mutation under the lock.
func (s *Server) tbump(t *Tenant, f func(*TenantStats)) {
	s.mu.Lock()
	f(&s.tstats[t.idx])
	s.mu.Unlock()
}

// Stats returns a deep-copied snapshot, safe to call from any goroutine.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.clone()
}

// TenantStats returns per-tenant snapshots in ring order.
func (s *Server) TenantStats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TenantStats(nil), s.tstats...)
}

// Submit runs an action on final through this tenant's session. The job is
// admitted (queued or subscribed to identical in-flight work), shed with
// ErrOverload, or rejected with ErrServerClosed; opts.OnDone fires exactly
// once either way.
func (t *Tenant) Submit(final *rdd.RDD, action engine.Action, opts SubmitOptions) *Job {
	s := t.srv
	now := s.eng.Now()
	j := &Job{
		tenant:   t,
		id:       s.seq,
		priority: opts.Priority,
		cb:       opts.OnDone,
		admitted: now,
	}
	s.seq++
	s.bump(func(st *Stats) { st.Submitted++ })
	s.tbump(t, func(ts *TenantStats) { ts.Submitted++ })
	if s.closed {
		s.fail(j, fmt.Errorf("session: tenant %s job %d: %w", t.name, j.id, ErrServerClosed))
		return j
	}

	// Shared-lineage dedup: an identical computation already queued or
	// running serves this submission too — attach, never recompute.
	key := dedupKey{rddID: final.ID, action: action}
	if en := s.work[key]; en != nil {
		en.attached = append(en.attached, j)
		j.ent = en
		s.bump(func(st *Stats) {
			st.Admitted++
			st.DedupSubscriptions++
		})
		s.tbump(t, func(ts *TenantStats) { ts.Admitted++ })
		s.armDeadline(j, opts.Deadline)
		return j
	}

	charge := int64(final.Parts) * s.cfg.BytesPerPartition
	if !s.admit(t, j, charge) {
		return j
	}

	en := &entry{
		key:      key,
		final:    final,
		action:   action,
		cost:     final.Parts,
		owner:    t,
		attached: []*Job{j},
		queuedAt: now,
		state:    stateQueued,
	}
	j.ent = en
	j.pinned = charge
	s.pinned += charge
	t.queue = append(t.queue, en)
	s.queued++
	s.work[key] = en
	s.bump(func(st *Stats) {
		st.Admitted++
		if s.queued > st.MaxQueued {
			st.MaxQueued = s.queued
		}
	})
	s.tbump(t, func(ts *TenantStats) { ts.Admitted++ })
	s.armDeadline(j, opts.Deadline)
	s.dispatch()
	return j
}

// admit enforces the bounded queues and the memory budget, shedding
// lower-priority queued work to make room when the incoming job outranks
// it. Reports whether j may be queued; on false, j has already failed with
// ErrOverload.
func (s *Server) admit(t *Tenant, j *Job, charge int64) bool {
	budget := s.effectiveBudget()
	if budget > 0 && charge > budget {
		s.shedJob(j) // larger than the whole budget: never admissible
		return false
	}
	for len(t.queue) >= s.cfg.MaxQueuedPerTenant {
		if !s.shedFrom([]*Tenant{t}, j.priority) {
			s.shedJob(j)
			return false
		}
	}
	for s.queued >= s.cfg.MaxQueuedTotal ||
		(budget > 0 && s.pinned+charge > budget) {
		if !s.shedFrom(s.tenants, j.priority) {
			s.shedJob(j)
			return false
		}
	}
	return true
}

// effectiveBudget resolves the ledger bound for this instant: the static
// MemoryBudget, optionally clamped to the cluster's current effective cache
// capacity (TrackClusterMemory), which mem-pressure faults shrink.
func (s *Server) effectiveBudget() int64 {
	b := s.cfg.MemoryBudget
	if s.cfg.TrackClusterMemory {
		if c := s.eng.Cluster().TotalEffectiveCapacity(); b <= 0 || c < b {
			b = c
		}
	}
	return b
}

// shedFrom sheds the lowest-priority queued entry across the given tenants
// (tie broken toward the newest submission) provided it ranks strictly
// below minPrio. Reports whether anything was shed.
func (s *Server) shedFrom(tenants []*Tenant, minPrio int) bool {
	var victim *entry
	for _, t := range tenants {
		for _, en := range t.queue {
			if victim == nil || en.prio() < victim.prio() ||
				(en.prio() == victim.prio() && en.newest() > victim.newest()) {
				victim = en
			}
		}
	}
	if victim == nil || victim.prio() >= minPrio {
		return false
	}
	s.unqueue(victim)
	for _, vj := range append([]*Job(nil), victim.attached...) {
		s.shedJob(vj)
	}
	victim.attached = nil
	return true
}

// shedJob fails one submission fast with ErrOverload.
func (s *Server) shedJob(j *Job) {
	s.bump(func(st *Stats) { st.Shed++ })
	s.tbump(j.tenant, func(ts *TenantStats) { ts.Shed++ })
	s.fail(j, fmt.Errorf("session: tenant %s job %d: %w", j.tenant.name, j.id, ErrOverload))
}

// unqueue removes a queued entry from its owner's queue and the dedup
// index.
func (s *Server) unqueue(en *entry) {
	q := en.owner.queue
	for i, e := range q {
		if e == en {
			en.owner.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	s.queued--
	en.state = stateDone
	delete(s.work, en.key)
}

// armDeadline places the job's deadline timer on the virtual clock.
func (s *Server) armDeadline(j *Job, d time.Duration) {
	if d <= 0 {
		return
	}
	s.eng.Loop().At(j.admitted+d, func() { s.onDeadline(j) })
}

// onDeadline cancels an unfinished job at deadline expiry. Queued-only work
// fails directly with ErrDeadlineExceeded; running work whose sole
// remaining attachment expired is unwound through the engine's cooperative
// cancellation, so its delivered chain carries both ErrDeadlineExceeded and
// engine.ErrJobCancelled. A subscriber's expiry detaches it alone — the
// primary computation keeps running.
func (s *Server) onDeadline(j *Job) {
	if j.done {
		return
	}
	en := j.ent
	if en.state == stateRunning && len(en.attached) == 1 && en.attached[0] == j {
		// Drop the dedup index first so a fresh identical submission never
		// subscribes to a dying computation, then unwind cooperatively:
		// in-flight tasks abort, slots free, and the engine callback
		// delivers the typed cancellation to this job.
		delete(s.work, en.key)
		s.eng.CancelJob(en.engID, ErrDeadlineExceeded)
		return
	}
	s.detach(en, j)
	if len(en.attached) == 0 && en.state == stateQueued {
		s.unqueue(en)
	}
	s.bump(func(st *Stats) { st.DeadlineExceeded++ })
	s.tbump(j.tenant, func(ts *TenantStats) { ts.Deadline++ })
	s.fail(j, fmt.Errorf("session: tenant %s job %d: %w", j.tenant.name, j.id, ErrDeadlineExceeded))
	s.dispatch()
}

// detach removes one attachment from an entry.
func (s *Server) detach(en *entry, j *Job) {
	for i, a := range en.attached {
		if a == j {
			en.attached = append(en.attached[:i], en.attached[i+1:]...)
			return
		}
	}
}

// fail delivers a terminal error to one submission and releases its pin.
func (s *Server) fail(j *Job, err error) {
	if j.done {
		return
	}
	j.done = true
	s.releasePin(j)
	j.res = Result{
		JobResult: engine.JobResult{JobID: j.id, Err: err},
		Tenant:    j.tenant.name,
		Latency:   s.eng.Now() - j.admitted,
	}
	if j.cb != nil {
		j.cb(j.res)
	}
}

// releasePin returns the job's admission charge to the memory budget.
func (s *Server) releasePin(j *Job) {
	s.pinned -= j.pinned
	j.pinned = 0
}

// onEngineDone routes one engine completion to every attached submission
// and frees the dispatch slot.
func (s *Server) onEngineDone(en *entry, r engine.JobResult) {
	s.active--
	delete(s.running, r.JobID)
	if en.state != stateDone {
		en.state = stateDone
		delete(s.work, en.key)
	}
	now := s.eng.Now()
	attached := append([]*Job(nil), en.attached...)
	en.attached = nil
	for i, j := range attached {
		if j.done {
			continue
		}
		j.done = true
		s.releasePin(j)
		shared := i > 0 // first attachment is the originating submission
		qd := time.Duration(0)
		if !shared {
			qd = en.dispatchedAt - en.queuedAt
		}
		j.res = Result{
			JobResult:  r,
			Tenant:     j.tenant.name,
			Shared:     shared,
			QueueDelay: qd,
			Latency:    now - j.admitted,
		}
		s.bump(func(st *Stats) {
			st.Latencies = append(st.Latencies, j.res.Latency)
			switch {
			case r.Err == nil:
				st.Completed++
			case errors.Is(r.Err, ErrDeadlineExceeded):
				st.DeadlineExceeded++
			case errors.Is(r.Err, ErrServerClosed):
				st.Closed++
			default:
				st.Failed++
			}
		})
		s.tbump(j.tenant, func(ts *TenantStats) {
			if shared {
				ts.Shared++
			}
			switch {
			case r.Err == nil:
				ts.Completed++
			case errors.Is(r.Err, ErrDeadlineExceeded):
				ts.Deadline++
			default:
				ts.Failed++
			}
		})
		if j.cb != nil {
			j.cb(j.res)
		}
	}
	s.dispatch()
}

// Close shuts the server down idempotently: queued submissions fail with
// ErrServerClosed, running jobs are cancelled through the engine, and later
// Submits reject immediately. It does not close the engine.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, t := range s.tenants {
		for _, en := range append([]*entry(nil), t.queue...) {
			s.unqueue(en)
			for _, j := range append([]*Job(nil), en.attached...) {
				s.bump(func(st *Stats) { st.Closed++ })
				s.fail(j, fmt.Errorf("session: tenant %s job %d: %w", j.tenant.name, j.id, ErrServerClosed))
			}
			en.attached = nil
		}
		t.queue = nil
	}
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.eng.CancelJob(id, ErrServerClosed)
	}
}

// Closed reports whether Close ran.
func (s *Server) Closed() bool { return s.closed }

// SetStormFactory installs the workload used for fault-injected tenant
// storms: called once per storm arrival with the target tenant index and a
// server-wide storm sequence number, it returns the job to submit.
func (s *Server) SetStormFactory(f func(tenant, n int) (*rdd.RDD, engine.Action)) {
	s.stormJob = f
}

// SetPoisonFactory installs the workload used for fault-injected slow
// tenants: it returns a job whose tasks cost roughly factor times a normal
// pass (e.g. a high-CostFactor MapPartitions).
func (s *Server) SetPoisonFactory(f func(tenant int, factor float64) (*rdd.RDD, engine.Action)) {
	s.poisonJob = f
}

// StormSubmit implements fault.SessionSystem: one open-loop burst arrival
// through the (tenant mod roster)'s session at the given priority. A no-op
// until tenants and a storm factory are registered.
func (s *Server) StormSubmit(tenant, priority int) {
	if len(s.tenants) == 0 || s.stormJob == nil || s.closed {
		return
	}
	t := s.tenants[tenant%len(s.tenants)]
	n := s.stormSeq
	s.stormSeq++
	final, action := s.stormJob(t.idx, n)
	t.Submit(final, action, SubmitOptions{Priority: priority})
}

// PoisonSubmit implements fault.SessionSystem: one slow-tenant poison job
// through the (tenant mod roster)'s session. A no-op until tenants and a
// poison factory are registered.
func (s *Server) PoisonSubmit(tenant int, factor float64) {
	if len(s.tenants) == 0 || s.poisonJob == nil || s.closed {
		return
	}
	t := s.tenants[tenant%len(s.tenants)]
	final, action := s.poisonJob(t.idx, factor)
	t.Submit(final, action, SubmitOptions{})
}
