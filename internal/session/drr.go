package session

import (
	"sort"

	"stark/internal/engine"
)

// Deficit round-robin dispatch: tenants form a ring in registration order;
// each visit to a tenant with queued work credits its deficit by
// quota*Quantum, and the head entry runs once the deficit covers its cost
// (result-stage task count). Over any busy interval each tenant's served
// cost converges to its quota share, independent of job sizes — the
// fair-scheduling half of the tenant-isolation invariant. All state is
// integers mutated in ring order, so the dispatch sequence is a pure
// function of the submission sequence.

// dispatch fills free engine slots from the queues. Reentrant calls (engine
// completion callbacks fire inside SubmitJob) fold into the outer loop.
func (s *Server) dispatch() {
	if s.closed || s.dispatching {
		return
	}
	s.dispatching = true
	defer func() { s.dispatching = false }()
	for s.active < s.cfg.MaxActive && s.queued > 0 {
		en := s.pickDRR()
		if en == nil {
			return
		}
		s.run(en)
	}
}

// pickDRR pops the next entry to run. Every full ring pass credits each
// backlogged tenant at least Quantum cost units, so the visit bound below
// covers the largest head cost; nil only when every queue is empty.
func (s *Server) pickDRR() *entry {
	n := len(s.tenants)
	if n == 0 || s.queued == 0 {
		return nil
	}
	maxHead := 1
	for _, t := range s.tenants {
		if len(t.queue) > 0 && t.queue[0].cost > maxHead {
			maxHead = t.queue[0].cost
		}
	}
	limit := n * (maxHead/s.cfg.Quantum + 2)
	for visit := 0; visit < limit; visit++ {
		t := s.tenants[s.rr%n]
		if len(t.queue) == 0 {
			// An idle tenant accrues no credit — deficits measure backlog
			// service, not wall-clock presence.
			t.deficit = 0
			s.advance()
			continue
		}
		// One quantum per visit: arriving at a backlogged tenant credits it
		// quota*Quantum exactly once; it then serves heads while the deficit
		// lasts and yields the ring when the next head no longer fits.
		if !s.credited {
			t.deficit += t.quota * s.cfg.Quantum
			s.credited = true
		}
		head := t.queue[0]
		if t.deficit >= head.cost {
			t.deficit -= head.cost
			t.queue = t.queue[1:]
			return head
		}
		s.advance()
	}
	return nil
}

// advance moves the ring cursor to the next tenant, opening a fresh visit.
func (s *Server) advance() {
	s.rr++
	s.credited = false
}

// run hands one entry to the engine.
func (s *Server) run(en *entry) {
	s.queued--
	en.state = stateRunning
	en.dispatchedAt = s.eng.Now()
	qd := en.dispatchedAt - en.queuedAt
	dup := s.runningDuplicate(en.key)
	s.bump(func(st *Stats) {
		st.Dispatched++
		st.QueueDelays = append(st.QueueDelays, qd)
		if dup {
			st.DuplicateComputations++
		}
	})
	s.active++
	id := s.eng.SubmitJob(en.final, en.action, func(r engine.JobResult) {
		s.onEngineDone(en, r)
	})
	en.engID = id
	// A closed or failing engine completes the callback synchronously, in
	// which case the entry is already terminal and must not be tracked.
	if en.state != stateDone {
		s.running[id] = en
	}
}

// runningDuplicate reports whether another running entry computes the same
// key — by construction impossible (the dedup index admits one entry per
// key); the overload oracle pins the resulting counter to zero.
func (s *Server) runningDuplicate(key dedupKey) bool {
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if s.running[id].key == key {
			return true
		}
	}
	return false
}
