package session

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"stark/internal/engine"
	"stark/internal/rdd"
	"stark/internal/record"
)

// testConfig returns a small fast cluster.
func testConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Cluster.NumExecutors = 4
	cfg.Cluster.SlotsPerExecutor = 2
	cfg.Cluster.MemoryPerExecutor = 1 << 30
	return cfg
}

// dataset builds n records over parts partitions.
func dataset(n, parts int) [][]record.Record {
	out := make([][]record.Record, parts)
	for i := 0; i < n; i++ {
		out[i%parts] = append(out[i%parts], record.Pair(fmt.Sprintf("k%04d", i), int64(i)))
	}
	return out
}

// countJob builds a distinct small count workload.
func countJob(g *rdd.Graph, name string, parts int) *rdd.RDD {
	src := g.Source(name, dataset(40*parts, parts), true)
	return g.Map(src, name+"-m", false, func(r record.Record) record.Record { return r })
}

// slowJob builds a workload whose tasks cost roughly factor map passes.
func slowJob(g *rdd.Graph, name string, parts int, factor float64) *rdd.RDD {
	src := g.Source(name, dataset(40*parts, parts), true)
	return g.MapPartitions(src, name+"-slow", false, factor,
		func(in []record.Record) []record.Record { return in })
}

func TestBasicCompletion(t *testing.T) {
	e := engine.New(testConfig())
	s := Open(e, DefaultConfig())
	a := s.RegisterTenant("a", 1)
	b := s.RegisterTenant("b", 1)

	var got []Result
	for i, tn := range []*Tenant{a, b, a} {
		final := countJob(e.Graph(), fmt.Sprintf("j%d", i), 4)
		tn.Submit(final, engine.ActionCount, SubmitOptions{
			OnDone: func(r Result) { got = append(got, r) },
		})
	}
	e.Loop().Run()

	if len(got) != 3 {
		t.Fatalf("delivered %d results, want 3", len(got))
	}
	for _, r := range got {
		if r.Err != nil {
			t.Fatalf("tenant %s: %v", r.Tenant, r.Err)
		}
		if r.Count != 160 {
			t.Fatalf("tenant %s count = %d, want 160", r.Tenant, r.Count)
		}
		if r.Latency <= 0 {
			t.Fatalf("tenant %s latency = %v", r.Tenant, r.Latency)
		}
	}
	st := s.Stats()
	if st.Submitted != 3 || st.Admitted != 3 || st.Completed != 3 || st.Dispatched != 3 {
		t.Fatalf("stats = %+v", st)
	}
	ts := s.TenantStats()
	if ts[0].Completed != 2 || ts[1].Completed != 1 {
		t.Fatalf("tenant stats = %+v", ts)
	}
}

func TestDedupComputesOnce(t *testing.T) {
	e := engine.New(testConfig())
	s := Open(e, DefaultConfig())
	a := s.RegisterTenant("a", 1)
	b := s.RegisterTenant("b", 1)

	hot := countJob(e.Graph(), "hot", 4)
	var ra, rb Result
	a.Submit(hot, engine.ActionCount, SubmitOptions{OnDone: func(r Result) { ra = r }})
	b.Submit(hot, engine.ActionCount, SubmitOptions{OnDone: func(r Result) { rb = r }})
	e.Loop().Run()

	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("errs: %v / %v", ra.Err, rb.Err)
	}
	if ra.Count != rb.Count {
		t.Fatalf("counts diverge: %d vs %d", ra.Count, rb.Count)
	}
	if ra.Shared || !rb.Shared {
		t.Fatalf("shared flags = %v/%v, want false/true", ra.Shared, rb.Shared)
	}
	st := s.Stats()
	if st.DedupSubscriptions != 1 {
		t.Fatalf("dedup subscriptions = %d, want 1", st.DedupSubscriptions)
	}
	if st.DuplicateComputations != 0 {
		t.Fatalf("duplicate computations = %d, want 0", st.DuplicateComputations)
	}
	if jobs := e.Stats().Jobs; jobs != 1 {
		t.Fatalf("engine ran %d jobs, want 1 (dedup)", jobs)
	}
}

func TestDRRFairnessByQuota(t *testing.T) {
	e := engine.New(testConfig())
	cfg := DefaultConfig()
	cfg.MaxActive = 1 // serialize so dispatch order is the fairness signal
	s := Open(e, cfg)
	heavy := s.RegisterTenant("heavy", 3)
	light := s.RegisterTenant("light", 1)

	var order []string
	for i := 0; i < 8; i++ {
		for _, tn := range []*Tenant{light, heavy} {
			tn := tn
			final := countJob(e.Graph(), fmt.Sprintf("%s%d", tn.Name(), i), 4)
			tn.Submit(final, engine.ActionCount, SubmitOptions{
				OnDone: func(r Result) {
					if r.Err != nil {
						t.Errorf("%s: %v", tn.Name(), r.Err)
					}
					order = append(order, tn.Name())
				},
			})
		}
	}
	e.Loop().Run()

	if len(order) != 16 {
		t.Fatalf("completed %d, want 16", len(order))
	}
	// With quotas 3:1 over equal-cost jobs, the first half of completions
	// must favor the heavy tenant roughly 3:1.
	h := 0
	for _, n := range order[:8] {
		if n == "heavy" {
			h++
		}
	}
	if h < 5 {
		t.Fatalf("heavy served %d of first 8 completions, want >= 5 (order %v)", h, order)
	}
}

func TestDeadlineQueued(t *testing.T) {
	e := engine.New(testConfig())
	cfg := DefaultConfig()
	cfg.MaxActive = 1
	s := Open(e, cfg)
	a := s.RegisterTenant("a", 1)

	long := slowJob(e.Graph(), "long", 4, 50)
	a.Submit(long, engine.ActionCount, SubmitOptions{})
	var r Result
	quick := countJob(e.Graph(), "quick", 4)
	a.Submit(quick, engine.ActionCount, SubmitOptions{
		Deadline: time.Millisecond, // expires while still queued
		OnDone:   func(res Result) { r = res },
	})
	e.Loop().Run()

	if !errors.Is(r.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", r.Err)
	}
	if errors.Is(r.Err, engine.ErrJobCancelled) {
		t.Fatalf("queued job never reached the engine, chain should not carry ErrJobCancelled: %v", r.Err)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("deadline count = %d", st.DeadlineExceeded)
	}
}

func TestDeadlineRunningUnwinds(t *testing.T) {
	e := engine.New(testConfig())
	s := Open(e, DefaultConfig())
	a := s.RegisterTenant("a", 1)

	long := slowJob(e.Graph(), "long", 8, 200)
	var r Result
	a.Submit(long, engine.ActionCount, SubmitOptions{
		Deadline: 5 * time.Millisecond,
		OnDone:   func(res Result) { r = res },
	})
	e.Loop().Run()

	if !errors.Is(r.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", r.Err)
	}
	if !errors.Is(r.Err, engine.ErrJobCancelled) {
		t.Fatalf("running job must unwind through engine cancellation: %v", r.Err)
	}
	if got := e.Recovery().JobCancellations; got != 1 {
		t.Fatalf("engine job cancellations = %d, want 1", got)
	}
	// The unwound job's slots freed: a follow-up job still completes.
	after := countJob(e.Graph(), "after", 4)
	var r2 Result
	a.Submit(after, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r2 = res }})
	e.Loop().Run()
	if r2.Err != nil || r2.Count != 160 {
		t.Fatalf("post-cancel job: count=%d err=%v", r2.Count, r2.Err)
	}
}

func TestDeadlineOnSubscriberLeavesPrimary(t *testing.T) {
	e := engine.New(testConfig())
	s := Open(e, DefaultConfig())
	a := s.RegisterTenant("a", 1)
	b := s.RegisterTenant("b", 1)

	hot := slowJob(e.Graph(), "hot", 4, 50)
	var ra, rb Result
	a.Submit(hot, engine.ActionCount, SubmitOptions{OnDone: func(r Result) { ra = r }})
	b.Submit(hot, engine.ActionCount, SubmitOptions{
		Deadline: time.Millisecond,
		OnDone:   func(r Result) { rb = r },
	})
	e.Loop().Run()

	if !errors.Is(rb.Err, ErrDeadlineExceeded) {
		t.Fatalf("subscriber err = %v, want ErrDeadlineExceeded", rb.Err)
	}
	if ra.Err != nil {
		t.Fatalf("primary must survive its subscriber's deadline: %v", ra.Err)
	}
	if ra.Count != 160 {
		t.Fatalf("primary count = %d", ra.Count)
	}
}

func TestOverloadShedsLowestPriority(t *testing.T) {
	e := engine.New(testConfig())
	cfg := DefaultConfig()
	cfg.MaxActive = 1
	cfg.MaxQueuedTotal = 2
	cfg.MaxQueuedPerTenant = 2
	s := Open(e, cfg)
	a := s.RegisterTenant("a", 1)

	// One running + two queued low-priority jobs fill the server.
	a.Submit(slowJob(e.Graph(), "run", 4, 50), engine.ActionCount, SubmitOptions{Priority: 5})
	var lowA, lowB, high, extra Result
	a.Submit(countJob(e.Graph(), "lowA", 4), engine.ActionCount,
		SubmitOptions{Priority: 1, OnDone: func(r Result) { lowA = r }})
	a.Submit(countJob(e.Graph(), "lowB", 4), engine.ActionCount,
		SubmitOptions{Priority: 2, OnDone: func(r Result) { lowB = r }})

	// A higher-priority arrival sheds the lowest-priority queued job fast.
	a.Submit(countJob(e.Graph(), "high", 4), engine.ActionCount,
		SubmitOptions{Priority: 4, OnDone: func(r Result) { high = r }})
	if !lowA.Shed() {
		t.Fatalf("lowA should have shed immediately, got %+v", lowA)
	}
	if !errors.Is(lowA.Err, ErrOverload) {
		t.Fatalf("victim err = %v, want ErrOverload", lowA.Err)
	}

	// An arrival that is itself lowest-priority fails fast instead.
	a.Submit(countJob(e.Graph(), "extra", 4), engine.ActionCount,
		SubmitOptions{Priority: 0, OnDone: func(r Result) { extra = r }})
	if !errors.Is(extra.Err, ErrOverload) {
		t.Fatalf("low-priority arrival err = %v, want ErrOverload", extra.Err)
	}

	e.Loop().Run()
	if lowB.Err != nil || high.Err != nil {
		t.Fatalf("survivors must complete: lowB=%v high=%v", lowB.Err, high.Err)
	}
	st := s.Stats()
	if st.Shed != 2 {
		t.Fatalf("shed = %d, want 2", st.Shed)
	}
}

func TestMemoryBudgetSheds(t *testing.T) {
	e := engine.New(testConfig())
	cfg := DefaultConfig()
	cfg.MemoryBudget = 2 << 20
	cfg.BytesPerPartition = 1 << 20
	s := Open(e, cfg)
	a := s.RegisterTenant("a", 1)

	var r Result
	big := countJob(e.Graph(), "big", 8) // pins 8 MiB > 2 MiB budget
	a.Submit(big, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r = res }})
	if !errors.Is(r.Err, ErrOverload) {
		t.Fatalf("over-budget submission err = %v, want ErrOverload", r.Err)
	}
	small := countJob(e.Graph(), "small", 2)
	var r2 Result
	a.Submit(small, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r2 = res }})
	e.Loop().Run()
	if r2.Err != nil {
		t.Fatalf("within-budget submission failed: %v", r2.Err)
	}
}

// Shed reports whether the result carries ErrOverload (test helper).
func (r Result) Shed() bool { return errors.Is(r.Err, ErrOverload) }

func TestCloseFailsQueuedAndCancelsRunning(t *testing.T) {
	e := engine.New(testConfig())
	cfg := DefaultConfig()
	cfg.MaxActive = 1
	s := Open(e, cfg)
	a := s.RegisterTenant("a", 1)

	var running, queued, late Result
	a.Submit(slowJob(e.Graph(), "run", 4, 50), engine.ActionCount,
		SubmitOptions{OnDone: func(r Result) { running = r }})
	a.Submit(countJob(e.Graph(), "queued", 4), engine.ActionCount,
		SubmitOptions{OnDone: func(r Result) { queued = r }})

	s.Close()
	s.Close() // idempotent

	if !errors.Is(queued.Err, ErrServerClosed) {
		t.Fatalf("queued err = %v, want ErrServerClosed", queued.Err)
	}
	if !errors.Is(running.Err, ErrServerClosed) || !errors.Is(running.Err, engine.ErrJobCancelled) {
		t.Fatalf("running err = %v, want ErrServerClosed via engine cancellation", running.Err)
	}
	a.Submit(countJob(e.Graph(), "late", 4), engine.ActionCount,
		SubmitOptions{OnDone: func(r Result) { late = r }})
	if !errors.Is(late.Err, ErrServerClosed) {
		t.Fatalf("post-close err = %v, want ErrServerClosed", late.Err)
	}
	e.Loop().Run() // must not wedge or double-deliver
	if !s.Closed() {
		t.Fatal("Closed() = false")
	}
}

// TestTrackClusterMemorySheds couples the admission ledger to the cluster's
// live effective capacity: a job that fits the static budget is shed once a
// MemPressure window shrinks the executors underneath it.
func TestTrackClusterMemorySheds(t *testing.T) {
	ecfg := testConfig()
	ecfg.Cluster.MemoryPerExecutor = 1 << 19 // 4 executors -> 2 MiB total
	e := engine.New(ecfg)
	cfg := DefaultConfig()
	cfg.MemoryBudget = 1 << 40 // effectively unlimited static budget
	cfg.TrackClusterMemory = true
	cfg.BytesPerPartition = 1 << 20
	s := Open(e, cfg)
	a := s.RegisterTenant("a", 1)

	var r Result
	fits := countJob(e.Graph(), "fits", 2) // pins 2 MiB = capacity
	a.Submit(fits, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r = res }})
	e.Loop().Run()
	if r.Err != nil {
		t.Fatalf("capacity-fitting submission failed: %v", r.Err)
	}

	// Squeeze every executor to a quarter capacity: the same shape of job
	// now exceeds the cluster's effective memory and must shed up front.
	for i := 0; i < 4; i++ {
		e.SetMemPressure(i, 0.25)
	}
	var r2 Result
	again := countJob(e.Graph(), "again", 2)
	a.Submit(again, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r2 = res }})
	if !errors.Is(r2.Err, ErrOverload) {
		t.Fatalf("submission under mem pressure err = %v, want ErrOverload", r2.Err)
	}

	// Releasing the pressure restores admission.
	for i := 0; i < 4; i++ {
		e.SetMemPressure(i, 1)
	}
	var r3 Result
	after := countJob(e.Graph(), "after", 2)
	a.Submit(after, engine.ActionCount, SubmitOptions{OnDone: func(res Result) { r3 = res }})
	e.Loop().Run()
	if r3.Err != nil {
		t.Fatalf("submission after pressure release failed: %v", r3.Err)
	}
}
