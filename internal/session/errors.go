package session

import "errors"

// Typed sentinel errors for the multi-tenant job server. They are designed
// for errors.Is across wrapping: every rejection or cancellation the server
// produces carries exactly one of these in its chain (plus the engine's
// ErrJobCancelled when an already-running job was unwound), so callers
// branch on error identity, never on message text.
var (
	// ErrOverload marks a submission shed by admission control: the queue
	// or memory budget was exceeded and this job was (or displaced) the
	// lowest-priority queued work. Shed jobs fail fast — they never consume
	// cluster time.
	ErrOverload = errors.New("session: overload, job shed")

	// ErrDeadlineExceeded marks a job cancelled because its deadline passed
	// before completion. Queued jobs fail directly; running jobs are unwound
	// through the engine's cooperative cancellation, so the chain also
	// carries engine.ErrJobCancelled.
	ErrDeadlineExceeded = errors.New("session: deadline exceeded")

	// ErrServerClosed marks a submission rejected, or an in-flight job
	// abandoned, because the server shut down.
	ErrServerClosed = errors.New("session: server closed")
)
