package checkpoint

import (
	"math/rand"
	"testing"
	"time"

	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
)

func keepAll(record.Record) bool { return true }

// stat attaches (delay, cost) to RDD ids.
type stat struct {
	d time.Duration
	c int64
}

func statsFromMap(m map[int]stat) StatsFunc {
	return func(r *rdd.RDD) (time.Duration, int64) {
		s := m[r.ID]
		return s.d, s.c
	}
}

// chain builds src -> n1 -> n2 ... narrow chain of length n (plus source).
func chain(g *rdd.Graph, n int) []*rdd.RDD {
	out := []*rdd.RDD{g.Source("src", nil, false)}
	for i := 1; i < n; i++ {
		out = append(out, g.Filter(out[i-1], "f", keepAll))
	}
	return out
}

func TestLongestPathChain(t *testing.T) {
	g := rdd.NewGraph()
	nodes := chain(g, 3)
	st := statsFromMap(map[int]stat{0: {2 * time.Second, 1}, 1: {3 * time.Second, 1}, 2: {4 * time.Second, 1}})
	if got := LongestPath(nodes[2], st); got != 9*time.Second {
		t.Fatalf("LongestPath = %v", got)
	}
	// Checkpointing the middle node breaks the chain.
	nodes[1].Checkpointed = true
	if got := LongestPath(nodes[2], st); got != 4*time.Second {
		t.Fatalf("LongestPath after checkpoint = %v", got)
	}
	if got := LongestPath(nodes[1], st); got != 0 {
		t.Fatalf("checkpointed node path = %v", got)
	}
	if !Violates(nodes[2], 3*time.Second, st) || Violates(nodes[2], 4*time.Second, st) {
		t.Fatal("Violates wrong")
	}
}

func TestShuffleBreaksChain(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", nil, false)
	pb := g.PartitionBy(src, "pb", partition.NewHash(2))
	f := g.Filter(pb, "f", keepAll)
	st := statsFromMap(map[int]stat{src.ID: {10 * time.Second, 1}, pb.ID: {2 * time.Second, 1}, f.ID: {3 * time.Second, 1}})
	// src's 10s must not count: pb reads persisted map outputs.
	if got := LongestPath(f, st); got != 5*time.Second {
		t.Fatalf("LongestPath = %v", got)
	}
}

func TestOptimizeSelectsCheapestOnChain(t *testing.T) {
	g := rdd.NewGraph()
	nodes := chain(g, 3)
	// All violate with bound 5: path = 3+3+3 = 9. Costs: 10, 1, 10.
	st := statsFromMap(map[int]stat{
		0: {3 * time.Second, 10},
		1: {3 * time.Second, 1},
		2: {3 * time.Second, 10},
	})
	plan := Optimize(nodes[2], 5*time.Second, 1, st)
	if len(plan.Select) != 1 || plan.Select[0].ID != 1 || plan.TotalCost != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestOptimizeDiamond(t *testing.T) {
	// a -> {b, c} -> d (cogroup-like join of two branches). Cutting a is
	// cheaper than cutting both b and c or expensive d.
	g := rdd.NewGraph()
	a := g.Source("a", nil, false)
	b := g.Filter(a, "b", keepAll)
	c := g.Filter(a, "c", keepAll)
	p := partition.NewHash(1)
	b.Partitioner, c.Partitioner = p, p
	b.Parts, c.Parts = 1, 1
	d := g.CoGroup("d", p, b, c)
	if !d.Narrow() {
		t.Fatal("test setup: cogroup must be narrow")
	}
	st := statsFromMap(map[int]stat{
		a.ID: {4 * time.Second, 3},
		b.ID: {4 * time.Second, 10},
		c.ID: {4 * time.Second, 10},
		d.ID: {4 * time.Second, 50},
	})
	plan := Optimize(d, 10*time.Second, 1, st)
	if len(plan.Select) != 1 || plan.Select[0].ID != a.ID || plan.TotalCost != 3 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestRelaxationPrefersNearTrigger(t *testing.T) {
	// Chain with costs 1 (root) ... 2 (near trigger): exact cut picks the
	// root (cost 1) leaving a long tail; f=3 accepts the near-trigger node
	// (cost 2 <= 3x flow 1... flow through chain = min cap = 1; cap 2 <= 3*1).
	g := rdd.NewGraph()
	nodes := chain(g, 4)
	st := statsFromMap(map[int]stat{
		0: {4 * time.Second, 1},
		1: {4 * time.Second, 5},
		2: {4 * time.Second, 2},
		3: {4 * time.Second, 9},
	})
	exact := Optimize(nodes[3], 6*time.Second, 1, st)
	if len(exact.Select) != 1 || exact.Select[0].ID != 0 {
		t.Fatalf("exact plan = %+v", exact)
	}
	relaxed := Optimize(nodes[3], 6*time.Second, 3, st)
	if len(relaxed.Select) != 1 || relaxed.Select[0].ID != 2 {
		t.Fatalf("relaxed plan = %+v", relaxed)
	}
	if relaxed.TotalCost > 3*exact.TotalCost {
		t.Fatalf("relaxed cost %d exceeds 3x optimal %d", relaxed.TotalCost, exact.TotalCost)
	}
}

func TestOptimizeNoViolation(t *testing.T) {
	g := rdd.NewGraph()
	nodes := chain(g, 2)
	st := statsFromMap(map[int]stat{0: {time.Second, 1}, 1: {time.Second, 1}})
	if plan := Optimize(nodes[1], 10*time.Second, 1, st); len(plan.Select) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestOptimizeSingleNodeViolation(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("big", nil, false)
	st := statsFromMap(map[int]stat{0: {20 * time.Second, 7}})
	plan := Optimize(src, 10*time.Second, 1, st)
	if len(plan.Select) != 1 || plan.Select[0].ID != src.ID || plan.TotalCost != 7 {
		t.Fatalf("plan = %+v", plan)
	}
}

// TestRepeatedOptimizeConverges drives the trigger loop the engine runs:
// while the newest RDD violates, plan and apply. It must terminate with the
// bound satisfied, and every plan must make progress.
func TestRepeatedOptimizeConverges(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := rdd.NewGraph()
		stats := make(map[int]stat)
		nodes := []*rdd.RDD{g.Source("src", nil, false)}
		stats[0] = stat{time.Duration(1+rng.Intn(5)) * time.Second, int64(1 + rng.Intn(10))}
		for i := 1; i < 12; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			n := g.Filter(parent, "f", keepAll)
			stats[n.ID] = stat{time.Duration(1+rng.Intn(5)) * time.Second, int64(1 + rng.Intn(10))}
			nodes = append(nodes, n)
		}
		st := statsFromMap(stats)
		trigger := nodes[len(nodes)-1]
		bound := 8 * time.Second
		for iter := 0; Violates(trigger, bound, st); iter++ {
			if iter > 20 {
				t.Fatalf("seed %d: did not converge", seed)
			}
			plan := Optimize(trigger, bound, 1, st)
			if len(plan.Select) == 0 {
				t.Fatalf("seed %d: empty plan while violating", seed)
			}
			for _, r := range plan.Select {
				if r.Checkpointed {
					t.Fatalf("seed %d: plan re-selected checkpointed %v", seed, r)
				}
				r.Checkpointed = true
			}
		}
	}
}

func TestEdgePlanSelectsLeaves(t *testing.T) {
	g := rdd.NewGraph()
	src := g.Source("src", nil, false)
	a := g.Filter(src, "a", keepAll)
	b := g.Filter(a, "b", keepAll)
	c := g.Filter(a, "c", keepAll)
	st := statsFromMap(map[int]stat{src.ID: {0, 1}, a.ID: {0, 2}, b.ID: {0, 4}, c.ID: {0, 8}})
	plan := EdgePlan(g.RDDs(), st)
	if len(plan.Select) != 2 || plan.Select[0].ID != b.ID || plan.Select[1].ID != c.ID {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.TotalCost != 12 {
		t.Fatalf("cost = %d", plan.TotalCost)
	}
	// Checkpointed leaves are skipped.
	b.Checkpointed = true
	plan = EdgePlan(g.RDDs(), st)
	if len(plan.Select) != 1 || plan.Select[0].ID != c.ID {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestOptimizeCheaperThanEdge(t *testing.T) {
	// The Fig. 18 claim in miniature: on a lineage where leaves are huge
	// but an interior node is tiny, Optimize must beat EdgePlan.
	g := rdd.NewGraph()
	src := g.Source("src", nil, false)
	small := g.Filter(src, "small", keepAll)
	big := g.Filter(small, "big", keepAll)
	st := statsFromMap(map[int]stat{
		src.ID:   {5 * time.Second, 100},
		small.ID: {5 * time.Second, 1},
		big.ID:   {5 * time.Second, 1000},
	})
	opt := Optimize(big, 8*time.Second, 1, st)
	edge := EdgePlan(g.RDDs(), st)
	if opt.TotalCost >= edge.TotalCost {
		t.Fatalf("optimize cost %d not below edge cost %d", opt.TotalCost, edge.TotalCost)
	}
}

func TestDefaultStats(t *testing.T) {
	g := rdd.NewGraph()
	r := g.Source("s", nil, false)
	r.MaxTransformTime = 3 * time.Second
	r.PartBytes = []int64{5, 6}
	d, c := DefaultStats(r)
	if d != 3*time.Second || c != 11 {
		t.Fatalf("DefaultStats = %v, %d", d, c)
	}
}

// TestPaperJallVsAcnt reconstructs the Sec. IV-D narrative: after jall is
// generated, its recovery chain violates the bound through ccnt, acnt and
// dec; Tachyon's Edge would checkpoint the (huge) leaf jall, while the
// optimizer picks the tiny interior acnt instead.
func TestPaperJallVsAcnt(t *testing.T) {
	g := rdd.NewGraph()
	p := partition.NewHash(1)
	cnt := g.Source("cnt", nil, false)
	dec := g.Source("dec", nil, false)
	cnt.Partitioner, dec.Partitioner = p, p
	cnt.Parts, dec.Parts = 1, 1
	ccnt := g.CoGroup("ccnt", p, cnt, dec)
	acnt := g.Filter(ccnt, "acnt", keepAll)
	cttRes := g.Source("cctt", nil, false)
	cttRes.Partitioner = p
	cttRes.Parts = 1
	jall := g.Join("jall", p, cttRes, acnt)

	st := statsFromMap(map[int]stat{
		cnt.ID:    {2 * time.Second, 40},
		dec.ID:    {2 * time.Second, 10},
		ccnt.ID:   {3 * time.Second, 30},
		acnt.ID:   {2 * time.Second, 2}, // tiny: the paper's pick
		cttRes.ID: {1 * time.Second, 500},
		jall.ID:   {4 * time.Second, 900}, // huge leaf
	})
	bound := 8 * time.Second
	if !Violates(jall, bound, st) {
		t.Fatal("setup: jall does not violate")
	}
	opt := Optimize(jall, bound, 1, st)
	for _, r := range opt.Select {
		if r.ID == jall.ID {
			t.Fatalf("optimizer checkpointed the huge leaf jall: %+v", opt)
		}
	}
	edge := EdgePlan(g.RDDs(), st)
	edgeHasJall := false
	for _, r := range edge.Select {
		if r.ID == jall.ID {
			edgeHasJall = true
		}
	}
	if !edgeHasJall {
		t.Fatalf("edge baseline did not checkpoint the leaf jall: %+v", edge)
	}
	if opt.TotalCost >= edge.TotalCost {
		t.Fatalf("optimizer cost %d not below edge cost %d", opt.TotalCost, edge.TotalCost)
	}
	// Applying the optimizer's plan restores the bound.
	for _, r := range opt.Select {
		r.Checkpointed = true
	}
	if Violates(jall, bound, st) {
		t.Fatal("bound still violated after applying the plan")
	}
}

// TestOptimizeCutValidityQuick: on random lineages, every violating
// root-to-trigger path must contain at least one selected RDD — the
// defining property of a valid cut, for exact and relaxed plans alike.
func TestOptimizeCutValidityQuick(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		g := rdd.NewGraph()
		stats := make(map[int]stat)
		nodes := []*rdd.RDD{g.Source("src", nil, false)}
		stats[0] = stat{time.Duration(1+rng.Intn(4)) * time.Second, int64(1 + rng.Intn(20))}
		for i := 1; i < 14; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			var n *rdd.RDD
			if rng.Intn(4) == 0 && len(nodes) > 2 {
				other := nodes[rng.Intn(len(nodes))]
				p := partition.NewHash(1)
				parent.Partitioner, other.Partitioner = p, p
				parent.Parts, other.Parts = 1, 1
				n = g.CoGroup("cg", p, parent, other)
			} else {
				n = g.Filter(parent, "f", keepAll)
			}
			stats[n.ID] = stat{time.Duration(1+rng.Intn(4)) * time.Second, int64(1 + rng.Intn(20))}
			nodes = append(nodes, n)
		}
		st := statsFromMap(stats)
		trigger := nodes[len(nodes)-1]
		bound := 6 * time.Second
		if !Violates(trigger, bound, st) {
			continue
		}
		for _, relax := range []float64{1, 2, 4} {
			plan := Optimize(trigger, bound, relax, st)
			if len(plan.Select) == 0 {
				t.Fatalf("seed %d relax %v: empty plan while violating", seed, relax)
			}
			selected := map[int]bool{}
			for _, r := range plan.Select {
				selected[r.ID] = true
			}
			// Enumerate all uncheckpointed narrow paths into the trigger and
			// verify every violating one is cut.
			var walk func(r *rdd.RDD, path []*rdd.RDD, length time.Duration)
			walk = func(r *rdd.RDD, path []*rdd.RDD, length time.Duration) {
				d, _ := st(r)
				length += d
				path = append(path, r)
				parents := 0
				for _, dep := range r.Deps {
					if dep.Shuffle || dep.Parent.Checkpointed {
						continue
					}
					parents++
					walk(dep.Parent, path, length)
				}
				if parents == 0 && length > bound {
					cut := false
					for _, n := range path {
						if selected[n.ID] {
							cut = true
							break
						}
					}
					if !cut {
						t.Fatalf("seed %d relax %v: violating path of %v not cut (plan %v)",
							seed, relax, length, plan.Select)
					}
				}
			}
			walk(trigger, nil, 0)
		}
	}
}
