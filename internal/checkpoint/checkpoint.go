// Package checkpoint implements Stark's CheckpointOptimizer (paper
// Sec. III-D) and the Tachyon Edge baseline it is evaluated against.
//
// Co-locality and extendable groups eliminate shuffles, so lineage chains
// no longer get broken by persisted map outputs and failure-recovery delay
// can grow without bound. Every RDD carries a recovery delay d (its maximum
// observed per-task transform time) and a checkpoint cost c (its cached
// size). Whenever an *uncheckpointed path* — a narrow-dependency path
// containing no checkpointed RDD and crossing no shuffle boundary — exceeds
// the user's recovery bound r, the optimizer selects the cheapest set of
// RDDs whose checkpointing breaks every violating path, via a minimum s-t
// cut on a node-split max-flow network (Fig. 10). A relaxation factor f
// biases the cut toward the trigger RDD, trading up to f× optimal cost for
// fewer future invocations.
package checkpoint

import (
	"sort"
	"time"

	"stark/internal/flow"
	"stark/internal/rdd"
)

// StatsFunc supplies an RDD's recovery delay d and checkpoint cost c.
type StatsFunc func(*rdd.RDD) (delay time.Duration, costBytes int64)

// DefaultStats reads the measurements the engine records on each RDD.
func DefaultStats(r *rdd.RDD) (time.Duration, int64) {
	return r.MaxTransformTime, r.TotalBytes()
}

// narrowUncheckpointedParents returns the parents reachable along
// chain-extending edges: narrow deps into RDDs that are not checkpointed.
// Shuffle deps never extend chains because map outputs are persisted.
func narrowUncheckpointedParents(r *rdd.RDD) []*rdd.RDD {
	var out []*rdd.RDD
	for _, d := range r.Deps {
		if d.Shuffle || d.Parent.Checkpointed {
			continue
		}
		out = append(out, d.Parent)
	}
	return out
}

// LongestPath returns the longest uncheckpointed path ending at r (inclusive
// of r's own delay). A checkpointed r has no uncheckpointed path and scores
// zero.
func LongestPath(r *rdd.RDD, stats StatsFunc) time.Duration {
	memo := make(map[int]time.Duration)
	return longestTo(r, stats, memo)
}

func longestTo(r *rdd.RDD, stats StatsFunc, memo map[int]time.Duration) time.Duration {
	if r.Checkpointed {
		return 0
	}
	if v, ok := memo[r.ID]; ok {
		return v
	}
	d, _ := stats(r)
	best := d
	for _, p := range narrowUncheckpointedParents(r) {
		if got := longestTo(p, stats, memo) + d; got > best {
			best = got
		}
	}
	memo[r.ID] = best
	return best
}

// Violates reports whether r's longest uncheckpointed path exceeds bound.
func Violates(r *rdd.RDD, bound time.Duration, stats StatsFunc) bool {
	return LongestPath(r, stats) > bound
}

// Plan is a checkpoint selection.
type Plan struct {
	// Select lists the RDDs to checkpoint, in id order.
	Select []*rdd.RDD
	// TotalCost sums their checkpoint costs in bytes.
	TotalCost int64
}

// Optimize computes the relaxed min-cut checkpoint plan for trigger, whose
// longest uncheckpointed path exceeds bound. relax is the paper's f >= 1;
// f = 1 demands the exact minimum cut. stats defaults to DefaultStats when
// nil. The empty plan is returned when nothing violates the bound.
func Optimize(trigger *rdd.RDD, bound time.Duration, relax float64, stats StatsFunc) Plan {
	if stats == nil {
		stats = DefaultStats
	}
	if relax < 1 {
		relax = 1
	}
	sub := violatingSubgraph(trigger, bound, stats)
	if len(sub.nodes) == 0 {
		return Plan{}
	}

	// Node-split flow network: in(n)=2k, out(n)=2k+1 for the k-th subgraph
	// node; source s feeds every violating-path root, trigger's out-node
	// feeds sink t.
	n := len(sub.nodes)
	s, t := 2*n, 2*n+1
	g := flow.NewGraph(2*n + 2)
	nodeEdge := make(map[int]int, n) // rdd id -> node edge id
	idx := make(map[int]int, n)      // rdd id -> subgraph index
	for i, r := range sub.nodes {
		idx[r.ID] = i
	}
	for i, r := range sub.nodes {
		_, c := stats(r)
		nodeEdge[r.ID] = g.AddEdge(2*i, 2*i+1, c)
	}
	for _, r := range sub.nodes {
		for _, p := range narrowUncheckpointedParents(r) {
			pi, ok := idx[p.ID]
			if !ok {
				continue
			}
			g.AddEdge(2*pi+1, 2*idx[r.ID], flow.Inf)
		}
	}
	for _, r := range sub.roots {
		g.AddEdge(s, 2*idx[r.ID], flow.Inf)
	}
	g.AddEdge(2*idx[trigger.ID]+1, t, flow.Inf)
	g.MaxFlow(s, t)

	// Relaxed back-trace (paper Sec. III-D2): breadth-first from the
	// trigger toward the roots, stopping at the first node whose edge
	// qualifies — original capacity within relax times the flow over it.
	// Min-cut edges are saturated (cap == flow), so they always qualify and
	// the trace terminates with a valid cut; larger relax factors let it
	// stop earlier, closer to the trigger.
	qualifies := func(rid int) bool {
		e := g.EdgeByID(nodeEdge[rid])
		capacity := e.Flow() + e.Residual()
		return float64(capacity) <= relax*float64(e.Flow())
	}
	selected := make(map[int]*rdd.RDD)
	visited := make(map[int]bool)
	queue := []*rdd.RDD{trigger}
	visited[trigger.ID] = true
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if qualifies(r.ID) {
			selected[r.ID] = r
			continue
		}
		parents := narrowUncheckpointedParents(r)
		atRoot := true
		for _, p := range parents {
			if _, ok := idx[p.ID]; !ok {
				continue
			}
			atRoot = false
			if !visited[p.ID] {
				visited[p.ID] = true
				queue = append(queue, p)
			}
		}
		if atRoot {
			// Defensive: a root that does not qualify still cuts its paths.
			selected[r.ID] = r
		}
	}

	var plan Plan
	for _, r := range selected {
		plan.Select = append(plan.Select, r)
		_, c := stats(r)
		plan.TotalCost += c
	}
	sort.Slice(plan.Select, func(i, j int) bool { return plan.Select[i].ID < plan.Select[j].ID })
	return plan
}

// subgraph holds the RDDs lying on violating paths into the trigger.
type subgraph struct {
	nodes []*rdd.RDD
	roots []*rdd.RDD
}

// violatingSubgraph finds every node n that lies on an uncheckpointed path
// into trigger whose total delay exceeds bound: longest-from-root(n) +
// longest-to-trigger(n) − d(n) > bound.
func violatingSubgraph(trigger *rdd.RDD, bound time.Duration, stats StatsFunc) subgraph {
	fromRoot := make(map[int]time.Duration)
	var nodes []*rdd.RDD
	var fr func(r *rdd.RDD) time.Duration
	fr = func(r *rdd.RDD) time.Duration {
		if v, ok := fromRoot[r.ID]; ok {
			return v
		}
		d, _ := stats(r)
		best := d
		for _, p := range narrowUncheckpointedParents(r) {
			if got := fr(p) + d; got > best {
				best = got
			}
		}
		fromRoot[r.ID] = best
		return best
	}

	// toTrigger: longest path from each ancestor down to trigger,
	// inclusive on both ends, along chain-extending edges. Computed by
	// walking up from the trigger.
	toTrigger := make(map[int]time.Duration)
	var tt func(r *rdd.RDD, below time.Duration)
	tt = func(r *rdd.RDD, below time.Duration) {
		d, _ := stats(r)
		total := below + d
		if prev, ok := toTrigger[r.ID]; ok && prev >= total {
			return
		}
		toTrigger[r.ID] = total
		for _, p := range narrowUncheckpointedParents(r) {
			tt(p, total)
		}
	}
	if trigger.Checkpointed {
		return subgraph{}
	}
	tt(trigger, 0)

	// Collect nodes on violating paths.
	inSub := make(map[int]bool)
	var collect func(r *rdd.RDD)
	collect = func(r *rdd.RDD) {
		if inSub[r.ID] {
			return
		}
		d, _ := stats(r)
		if fr(r)+toTrigger[r.ID]-d <= bound {
			return
		}
		inSub[r.ID] = true
		nodes = append(nodes, r)
		for _, p := range narrowUncheckpointedParents(r) {
			if _, seen := toTrigger[p.ID]; seen {
				collect(p)
			}
		}
	}
	collect(trigger)
	if !inSub[trigger.ID] {
		return subgraph{}
	}

	var roots []*rdd.RDD
	for _, r := range nodes {
		isRoot := true
		for _, p := range narrowUncheckpointedParents(r) {
			if inSub[p.ID] {
				isRoot = false
				break
			}
		}
		if isRoot {
			roots = append(roots, r)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	return subgraph{nodes: nodes, roots: roots}
}

// EdgePlan is the Tachyon Edge baseline, revised as the paper does: when
// triggered, checkpoint every current *leaf* RDD — an uncheckpointed RDD no
// other RDD depends on yet.
func EdgePlan(all []*rdd.RDD, stats StatsFunc) Plan {
	if stats == nil {
		stats = DefaultStats
	}
	hasChild := make(map[int]bool)
	for _, r := range all {
		for _, d := range r.Deps {
			hasChild[d.Parent.ID] = true
		}
	}
	var plan Plan
	for _, r := range all {
		if r.Checkpointed || hasChild[r.ID] {
			continue
		}
		plan.Select = append(plan.Select, r)
		_, c := stats(r)
		plan.TotalCost += c
	}
	sort.Slice(plan.Select, func(i, j int) bool { return plan.Select[i].ID < plan.Select[j].ID })
	return plan
}
