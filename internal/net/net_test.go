package net

import (
	"testing"
	"time"

	"stark/internal/vtime"
)

func TestPerfectNetworkDeliversSynchronously(t *testing.T) {
	loop := vtime.NewLoop()
	n := New(Config{}, loop)
	delivered := false
	n.Send(Driver, 2, TaskLaunch, true, func() { delivered = true })
	if !delivered {
		t.Fatal("perfect network must deliver in the same event, without stepping the loop")
	}
	if got := n.Stats(); got.Sent != 1 || got.Delivered != 1 || got.Dropped != 0 {
		t.Fatalf("stats = %+v, want 1 sent, 1 delivered", got)
	}
}

func TestDelayedDeliveryOnTheClock(t *testing.T) {
	loop := vtime.NewLoop()
	n := New(Config{BaseDelay: 3 * time.Millisecond}, loop)
	var at time.Duration = -1
	n.Send(0, Driver, TaskResult, true, func() { at = loop.Now() })
	if at != -1 {
		t.Fatal("delayed message delivered synchronously")
	}
	loop.Run()
	if at != 3*time.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", at)
	}
}

func TestPartitionBlocksAndReliableRetransmitSurvivesHeal(t *testing.T) {
	loop := vtime.NewLoop()
	n := New(Config{}, loop)
	n.Partition(1)

	hbDelivered := false
	n.Send(1, Driver, Heartbeat, false, func() { hbDelivered = true })

	resultDelivered := false
	n.Send(1, Driver, TaskResult, true, func() { resultDelivered = true })

	// Heal after a few retransmission timeouts have elapsed.
	loop.After(5*time.Millisecond, func() { n.Heal(1) })
	loop.Run()

	if hbDelivered {
		t.Fatal("unreliable heartbeat must be lost during a partition")
	}
	if !resultDelivered {
		t.Fatal("reliable task result must retransmit through the partition and deliver after heal")
	}
	st := n.Stats()
	if st.PartitionDrops == 0 || st.Retransmits == 0 {
		t.Fatalf("stats = %+v, want partition drops and retransmits", st)
	}
}

func TestReliableSendExpiresUnderPermanentPartition(t *testing.T) {
	loop := vtime.NewLoop()
	n := New(Config{MaxRetransmits: 3}, loop)
	n.Partition(4)
	delivered := false
	n.Send(Driver, 4, TaskLaunch, true, func() { delivered = true })
	loop.Run()
	if delivered {
		t.Fatal("message delivered through a permanent partition")
	}
	if st := n.Stats(); st.Expired != 1 || st.Retransmits != 3 {
		t.Fatalf("stats = %+v, want 3 retransmits then 1 expiry", st)
	}
}

func TestDropAndJitterAreSeedDeterministic(t *testing.T) {
	runOnce := func() ([]time.Duration, Stats) {
		loop := vtime.NewLoop()
		n := New(Config{BaseDelay: time.Millisecond, Jitter: 2 * time.Millisecond, DropProb: 0.3, Seed: 99}, loop)
		var arrivals []time.Duration
		for i := 0; i < 40; i++ {
			n.Send(Driver, i%4, TaskLaunch, false, func() {
				arrivals = append(arrivals, loop.Now())
			})
		}
		loop.Run()
		return arrivals, n.Stats()
	}
	a1, s1 := runOnce()
	a2, s2 := runOnce()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical seeds: %+v vs %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d diverged: %v vs %v", i, a1[i], a2[i])
		}
	}
	if s1.Dropped == 0 {
		t.Fatal("expected some random drops at DropProb=0.3")
	}
}

func TestExtraDelayWindow(t *testing.T) {
	loop := vtime.NewLoop()
	n := New(Config{}, loop)
	n.SetExtraDelay(7 * time.Millisecond)
	var at time.Duration = -1
	n.Send(0, Driver, Heartbeat, false, func() { at = loop.Now() })
	loop.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("delivered at %v, want the injected 7ms extra delay", at)
	}
	n.SetExtraDelay(0)
	sync := false
	n.Send(0, Driver, Heartbeat, false, func() { sync = true })
	if !sync {
		t.Fatal("clearing the extra delay must restore synchronous delivery")
	}
}
