// Package net simulates the control-plane transport between the driver and
// the executors: task launches, task results, and heartbeats all cross a
// Network before they take effect. (Block-fetch acknowledgements ride inside
// task results in this model — the data plane charges transfer time through
// the cost model, the control plane decides *whether* the driver learns of
// it.) The network runs on the virtual clock and is seed-deterministic:
// delay jitter and message drops come from a private RNG, partitions are
// explicit state flipped by the fault injector, so two runs with equal seeds
// see byte-identical delivery orders.
//
// The zero-value Config is the "perfect" network: no delay, no jitter, no
// drops. A perfect, partition-free send delivers synchronously in the same
// loop event as the sender, which keeps zero-config engine behaviour
// byte-identical to an engine without a transport layer at all.
package net

import (
	"math/rand"
	"time"

	"stark/internal/vtime"
)

// Driver is the node id of the driver endpoint. Executor endpoints use
// their executor ids (>= 0).
const Driver = -1

// Kind classifies a control-plane message.
type Kind int

// Message kinds.
const (
	TaskLaunch Kind = iota
	TaskResult
	Heartbeat
)

// String names the kind for traces and fault-hook dispatch.
func (k Kind) String() string {
	switch k {
	case TaskLaunch:
		return "task-launch"
	case TaskResult:
		return "task-result"
	case Heartbeat:
		return "heartbeat"
	}
	return "unknown"
}

// Config parameterizes the simulated network.
type Config struct {
	// BaseDelay is the one-way latency of every control message; Jitter
	// adds a uniform random extra in [0, Jitter).
	BaseDelay time.Duration
	Jitter    time.Duration
	// DropProb is the per-attempt probability that a message is lost in
	// flight (independent of partitions).
	DropProb float64
	// RetransmitTimeout is the initial retransmission timeout for reliable
	// messages; it doubles per attempt. Zero derives a default from
	// BaseDelay and Jitter.
	RetransmitTimeout time.Duration
	// MaxRetransmits bounds retransmission attempts of a reliable message;
	// zero defaults to 12, enough doubling RTOs to ride out any partition
	// the chaos schedules generate.
	MaxRetransmits int
	// Seed drives jitter and drop rolls; zero is replaced by 1.
	Seed int64
}

// Perfect reports whether the configuration delivers instantly and
// losslessly (partitions may still block traffic).
func (c Config) Perfect() bool {
	return c.BaseDelay == 0 && c.Jitter == 0 && c.DropProb == 0
}

// Stats counts transport activity.
type Stats struct {
	Sent           int // send attempts, including retransmissions
	Delivered      int
	Dropped        int // random (DropProb or fault-hook) losses
	PartitionDrops int // losses because an endpoint was partitioned
	Retransmits    int
	Expired        int // reliable messages abandoned after MaxRetransmits
}

// Network is the simulated transport. It is driven entirely from the
// single-threaded event loop and is not safe for concurrent use.
type Network struct {
	cfg  Config
	loop *vtime.Loop
	rng  *rand.Rand
	// part holds the executors currently partitioned from the driver
	// (bidirectionally: traffic both ways is blocked).
	part map[int]bool
	// extra is a fault-injected delay added to every delivered message
	// (delayed-heartbeat windows).
	extra time.Duration
	// hook, when set, may drop a message attempt (fault injection); it is
	// consulted before the config's DropProb roll.
	hook  func(Kind) bool
	stats Stats
}

// New builds a network on the loop. A nil-safe zero Config yields a perfect
// network.
func New(cfg Config, loop *vtime.Loop) *Network {
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 2*(cfg.BaseDelay+cfg.Jitter) + time.Millisecond
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = 12
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:  cfg,
		loop: loop,
		rng:  rand.New(rand.NewSource(seed)),
		part: make(map[int]bool),
	}
}

// Config returns the normalized configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns the transport counters so far.
func (n *Network) Stats() Stats { return n.stats }

// SetFaultHook installs (or, with nil, removes) the injector's per-message
// drop hook.
func (n *Network) SetFaultHook(h func(Kind) bool) { n.hook = h }

// Partition cuts an executor off from the driver in both directions; new
// sends touching it are lost until Heal.
func (n *Network) Partition(exec int) { n.part[exec] = true }

// Heal reconnects a partitioned executor.
func (n *Network) Heal(exec int) { delete(n.part, exec) }

// Partitioned reports whether an executor is currently cut off.
func (n *Network) Partitioned(exec int) bool { return n.part[exec] }

// SetExtraDelay adds d to every subsequent delivery (0 restores normal
// latency) — the delayed-heartbeat fault window.
func (n *Network) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.extra = d
}

// Send transmits one control message from node `from` to node `to` and
// invokes deliver when (and if) it arrives. Reliable messages retransmit
// with doubling timeouts while lost; unreliable ones are fire-and-forget.
// A perfect, unpartitioned, undelayed send delivers synchronously, so the
// zero-config network is invisible to the event order.
func (n *Network) Send(from, to int, kind Kind, reliable bool, deliver func()) {
	n.send(from, to, kind, reliable, 0, deliver)
}

func (n *Network) send(from, to int, kind Kind, reliable bool, attempt int, deliver func()) {
	n.stats.Sent++
	blocked := (from >= 0 && n.part[from]) || (to >= 0 && n.part[to])
	dropped := blocked
	if !dropped && n.hook != nil && n.hook(kind) {
		dropped = true
	}
	// Skip the RNG entirely when no probabilistic faults are configured so
	// the draw sequence — and with it determinism across configurations —
	// only depends on features actually in use.
	if !dropped && n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		dropped = true
	}
	if dropped {
		if blocked {
			n.stats.PartitionDrops++
		} else {
			n.stats.Dropped++
		}
		if !reliable {
			return
		}
		if attempt >= n.cfg.MaxRetransmits {
			n.stats.Expired++
			return
		}
		shift := uint(attempt)
		if shift > 16 {
			shift = 16
		}
		rto := n.cfg.RetransmitTimeout << shift
		n.stats.Retransmits++
		n.loop.After(rto, func() { n.send(from, to, kind, reliable, attempt+1, deliver) })
		return
	}
	d := n.cfg.BaseDelay + n.extra
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	n.stats.Delivered++
	if d <= 0 {
		deliver()
		return
	}
	n.loop.After(d, deliver)
}
