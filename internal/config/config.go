// Package config holds the simulated-cluster cost model and the Stark
// feature switches. The defaults approximate the paper's testbed — Dell
// R620 servers with 16 GB RAM on gigabit Ethernet running Spark 1.3.1 — and
// are the calibration surface for reproducing the evaluation's shapes.
package config

import (
	"math"
	"time"
)

// GC models garbage-collection overhead as a function of executor memory
// pressure. Task compute time is multiplied by (1 + Factor(pressure)):
// below Knee the overhead is the flat Base fraction; above it the overhead
// grows polynomially toward Max at full memory. This reproduces the paper's
// Fig. 12 observation that cogrouping six RDDs "consumes an excessive
// amount of RAM, which leads to more frequent and expensive garbage
// collections".
type GC struct {
	Base  float64 // overhead fraction at low pressure
	Knee  float64 // pressure where growth starts, in [0,1)
	Max   float64 // overhead fraction at pressure 1.0
	Power float64 // growth exponent beyond the knee
}

// Factor returns the GC overhead fraction at the given memory pressure
// (used bytes / capacity, clamped to [0, 1]).
func (g GC) Factor(pressure float64) float64 {
	if pressure < 0 {
		pressure = 0
	}
	if pressure > 1 {
		pressure = 1
	}
	if pressure <= g.Knee {
		return g.Base
	}
	x := (pressure - g.Knee) / (1 - g.Knee)
	return g.Base + (g.Max-g.Base)*math.Pow(x, g.Power)
}

// Cluster configures the simulated cluster and its cost model. All byte
// quantities are *simulated* bytes: real in-process record sizes are
// multiplied by SizeScale so that modest record counts stand in for the
// paper's hundreds of megabytes per dataset.
type Cluster struct {
	NumExecutors      int
	SlotsPerExecutor  int
	MemoryPerExecutor int64 // simulated bytes of block-cache capacity

	DiskBandwidth int64 // bytes/s sequential
	DiskLatency   time.Duration
	NetBandwidth  int64 // bytes/s per flow
	NetLatency    time.Duration

	// ComputeBandwidth is the per-slot processing rate, in bytes/s, for a
	// transformation with cost factor 1.0 (a simple map/filter pass).
	ComputeBandwidth int64

	// TaskOverhead is the fixed scheduling + launch + result-report cost
	// charged per task; it produces the right side of the Fig. 7 U-shape.
	TaskOverhead time.Duration

	// GroupPartitionOverhead is the extra cost a GroupResultTask /
	// GroupShuffleMapTask pays per member partition (iterator setup and
	// group bookkeeping). It is well below TaskOverhead — grouping exists
	// to cut scheduling cost — but makes grouping slightly hurt when the
	// workload is static and light (paper Fig. 19's Stark-E curve).
	GroupPartitionOverhead time.Duration

	GC GC

	// SizeScale converts real in-process bytes to simulated bytes.
	SizeScale float64
}

// Default returns the calibrated baseline cluster: 8 workers of 16 GB, the
// size used by the co-locality experiments; throughput experiments override
// NumExecutors to 40.
func Default() Cluster {
	return Cluster{
		NumExecutors:           8,
		SlotsPerExecutor:       4,
		MemoryPerExecutor:      16 << 30,
		DiskBandwidth:          150 << 20,
		DiskLatency:            4 * time.Millisecond,
		NetBandwidth:           110 << 20,
		NetLatency:             500 * time.Microsecond,
		ComputeBandwidth:       400 << 20,
		TaskOverhead:           8 * time.Millisecond,
		GroupPartitionOverhead: 3 * time.Millisecond,
		GC:                     GC{Base: 0.05, Knee: 0.55, Max: 4.0, Power: 3},
		SizeScale:              1.0,
	}
}

// Execution configures the wall-clock data plane: how many OS-level worker
// goroutines execute task compute (transformations, shuffle bucketing,
// integrity checks) between virtual-time events. Parallelism never affects
// simulation results — the control plane stays single-threaded and joins
// data-plane results back in dispatch order, so runs are bit-identical at
// any setting. It only changes how much wall-clock time a run takes.
type Execution struct {
	// Parallelism bounds the data-plane worker pool. 1 executes task
	// compute sequentially on the event-loop goroutine; 0 (the default)
	// uses runtime.GOMAXPROCS(0).
	Parallelism int
	// DisableEventFusion turns off task-chunk fusion: by default the engine
	// keeps its deferred data-plane batch accumulating across consecutive
	// events at the same virtual instant (e.g. a wave of task launches
	// scheduled for one timestamp), so the worker pool receives one coarse
	// batch instead of many per-event slivers. Fusion is deterministic —
	// it depends only on virtual timestamps, never on worker count — so
	// results stay bit-identical at any parallelism; the flag exists for
	// A/B measurement.
	DisableEventFusion bool
}

// DefaultExecution sizes the worker pool to GOMAXPROCS.
func DefaultExecution() Execution { return Execution{Parallelism: 0} }

// Recovery configures the engine's failure-handling policy: bounded task
// retry with virtual-time backoff, executor blacklisting after repeated
// failures, and speculative re-execution of stragglers.
type Recovery struct {
	// MaxTaskRetries bounds re-launches of a failed task beyond its first
	// attempt; exhausting it fails the job (spark.task.maxFailures - 1).
	MaxTaskRetries int
	// RetryBackoff is the virtual-time delay before the first retry; it
	// doubles per subsequent attempt.
	RetryBackoff time.Duration
	// BlacklistThreshold is the number of task failures on one executor
	// before it is blacklisted. 0 disables blacklisting.
	BlacklistThreshold int
	// BlacklistExpiry is how long a blacklisted executor is excluded from
	// scheduling before it gets probationary offers again; a successful
	// task then removes it from the blacklist.
	BlacklistExpiry time.Duration
	// MaxStageResubmissions bounds how often one shuffle's map stage may be
	// resubmitted to rebuild lost outputs before the job fails.
	MaxStageResubmissions int
	// Speculation enables speculative re-execution of stragglers.
	Speculation bool
	// SpeculationMultiplier flags a running task as a straggler when its
	// expected duration exceeds this multiple of the stage's median
	// completed-task duration.
	SpeculationMultiplier float64
	// SpeculationQuantile is the fraction of a stage's tasks that must have
	// completed before speculation kicks in.
	SpeculationQuantile float64
}

// DefaultRecovery mirrors Spark's defaults: 3 retries, no speculation, and
// a short blacklist with timed probation.
func DefaultRecovery() Recovery {
	return Recovery{
		MaxTaskRetries:        3,
		RetryBackoff:          50 * time.Millisecond,
		BlacklistThreshold:    3,
		BlacklistExpiry:       30 * time.Second,
		MaxStageResubmissions: 8,
		SpeculationMultiplier: 1.5,
		SpeculationQuantile:   0.75,
	}
}

// Heartbeat configures driver-side failure detection. When disabled (the
// zero value) the driver learns of executor failures omnisciently, exactly
// when they happen — the pre-network behaviour. When enabled, executors
// send heartbeats over the simulated network every Interval; the driver
// moves an executor alive → suspected when no heartbeat arrived for
// SuspectAfter (excluding it from scheduling) and suspected → dead after
// DeadAfter (bumping its epoch, resubmitting its tasks, and rejecting any
// stale-epoch results it later delivers). A heartbeat from a suspected
// executor clears the suspicion; one from a declared-dead executor rejoins
// it under the new epoch.
type Heartbeat struct {
	Enabled bool
	// Interval is the executor heartbeat period (also the detector's scan
	// period).
	Interval time.Duration
	// SuspectAfter is the missed-heartbeat window before suspicion.
	SuspectAfter time.Duration
	// DeadAfter is the missed-heartbeat window before a dead declaration;
	// must exceed SuspectAfter.
	DeadAfter time.Duration
}

// DefaultHeartbeat returns the detection timeouts used when WithHeartbeat
// leaves them zero: tight enough that detection plus re-execution stays
// well inside typical checkpoint bounds, loose enough that one delayed
// heartbeat only causes a transient suspicion.
func DefaultHeartbeat() Heartbeat {
	return Heartbeat{
		Interval:     100 * time.Millisecond,
		SuspectAfter: 300 * time.Millisecond,
		DeadAfter:    800 * time.Millisecond,
	}
}

// Scheduler configures task scheduling policy.
type Scheduler struct {
	// LocalityWait is the delay-scheduling bound: how long a task set waits
	// for a data-local slot before accepting a remote one
	// (spark.locality.wait; default 3 s in Spark 1.3).
	LocalityWait time.Duration
	// MCF enables Minimum-Contention-First ordering of remote offers
	// (paper Algorithm 1).
	MCF bool
}

// DefaultScheduler mirrors Spark 1.3 defaults.
func DefaultScheduler() Scheduler {
	return Scheduler{LocalityWait: 3 * time.Second}
}

// Features selects which Stark mechanisms are active, defining the paper's
// evaluated configurations (Sec. IV-A).
type Features struct {
	// CoLocality enables the LocalityManager: collection partitions of a
	// namespace map to fixed preferred executors.
	CoLocality bool
	// Extendable enables the GroupManager: group tasks plus threshold
	// split/merge elasticity.
	Extendable bool
	// MCF enables contention-aware remote scheduling.
	MCF bool
}

// ScaleBytes converts real bytes to simulated bytes.
func (c Cluster) ScaleBytes(realBytes int64) int64 {
	if c.SizeScale == 1.0 || c.SizeScale == 0 {
		return realBytes
	}
	return int64(float64(realBytes) * c.SizeScale)
}

// ComputeTime is the slot time to process the given simulated bytes at the
// given cost factor.
func (c Cluster) ComputeTime(bytes int64, factor float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes) * factor / float64(c.ComputeBandwidth)
	return time.Duration(sec * float64(time.Second))
}

// DiskReadTime is the time to sequentially read bytes from local disk.
func (c Cluster) DiskReadTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return c.DiskLatency + time.Duration(float64(bytes)/float64(c.DiskBandwidth)*float64(time.Second))
}

// DiskWriteTime is the time to sequentially write bytes to local disk.
func (c Cluster) DiskWriteTime(bytes int64) time.Duration {
	// Writes and reads share bandwidth in this model.
	return c.DiskReadTime(bytes)
}

// NetTime is the time to move bytes across the network in one flow.
func (c Cluster) NetTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return c.NetLatency + time.Duration(float64(bytes)/float64(c.NetBandwidth)*float64(time.Second))
}
