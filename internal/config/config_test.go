package config

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGCFactorShape(t *testing.T) {
	g := Default().GC
	if f := g.Factor(0); f != g.Base {
		t.Errorf("Factor(0) = %v, want %v", f, g.Base)
	}
	if f := g.Factor(g.Knee); f != g.Base {
		t.Errorf("Factor(knee) = %v, want %v", f, g.Base)
	}
	if f := g.Factor(1); f != g.Max {
		t.Errorf("Factor(1) = %v, want %v", f, g.Max)
	}
	if f := g.Factor(2); f != g.Max {
		t.Errorf("Factor(2) = %v, want clamp to %v", f, g.Max)
	}
	if f := g.Factor(-1); f != g.Base {
		t.Errorf("Factor(-1) = %v, want %v", f, g.Base)
	}
}

func TestGCFactorMonotone(t *testing.T) {
	g := Default().GC
	f := func(a, b float64) bool {
		if a < 0 || b < 0 || a > 1 || b > 1 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return g.Factor(a) <= g.Factor(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeTime(t *testing.T) {
	c := Default()
	c.ComputeBandwidth = 100 << 20
	if d := c.ComputeTime(100<<20, 1.0); d != time.Second {
		t.Errorf("ComputeTime = %v, want 1s", d)
	}
	if d := c.ComputeTime(100<<20, 2.0); d != 2*time.Second {
		t.Errorf("ComputeTime(x2) = %v, want 2s", d)
	}
	if d := c.ComputeTime(0, 1); d != 0 {
		t.Errorf("ComputeTime(0) = %v", d)
	}
}

func TestIOTimesIncludeLatency(t *testing.T) {
	c := Default()
	if d := c.DiskReadTime(1); d <= c.DiskLatency {
		t.Errorf("DiskReadTime(1) = %v", d)
	}
	if d := c.NetTime(1); d <= c.NetLatency {
		t.Errorf("NetTime(1) = %v", d)
	}
	if c.DiskReadTime(0) != 0 || c.NetTime(0) != 0 {
		t.Error("zero-byte IO must be free")
	}
	if c.DiskWriteTime(1<<20) != c.DiskReadTime(1<<20) {
		t.Error("write and read time differ in this model")
	}
}

func TestScaleBytes(t *testing.T) {
	c := Default()
	if c.ScaleBytes(100) != 100 {
		t.Error("SizeScale 1.0 must be identity")
	}
	c.SizeScale = 800
	if got := c.ScaleBytes(1 << 20); got != 800<<20 {
		t.Errorf("ScaleBytes = %d", got)
	}
}
