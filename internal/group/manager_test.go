package group

import (
	"testing"
	"testing/quick"
)

func mustRegister(t *testing.T, m *Manager, ns string, parts, groups int) {
	t.Helper()
	if err := m.Register(ns, parts, groups); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterIdempotentAndConflict(t *testing.T) {
	m := NewManager(DefaultConfig())
	mustRegister(t, m, "ns", 16, 4)
	if err := m.Register("ns", 16, 4); err != nil {
		t.Fatalf("re-register same geometry: %v", err)
	}
	if err := m.Register("ns", 32, 4); err == nil {
		t.Fatal("re-register different geometry succeeded")
	}
	if !m.Registered("ns") || m.Registered("other") {
		t.Fatal("Registered wrong")
	}
}

func TestReportValidation(t *testing.T) {
	m := NewManager(DefaultConfig())
	mustRegister(t, m, "ns", 8, 2)
	if err := m.ReportRDD("nope", make([]int64, 8)); err == nil {
		t.Fatal("unknown namespace accepted")
	}
	if err := m.ReportRDD("ns", make([]int64, 7)); err == nil {
		t.Fatal("wrong vector length accepted")
	}
}

func TestSplitOnOversizedGroup(t *testing.T) {
	m := NewManager(Config{MaxBytes: 100, MinBytes: 10, Window: 1})
	mustRegister(t, m, "ns", 8, 2) // groups [0,4) and [4,8)
	sizes := []int64{60, 60, 1, 1, 1, 1, 1, 1}
	if err := m.ReportRDD("ns", sizes); err != nil {
		t.Fatal(err)
	}
	changes, err := m.Rebalance("ns")
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 (120 bytes) splits once into [0,2)=120... still >100, splits
	// again into [0,1)=60 and [1,2)=60.
	if len(changes) < 2 {
		t.Fatalf("changes = %v", changes)
	}
	groups, _ := m.Groups("ns")
	byID := map[int]Group{}
	for _, g := range groups {
		byID[g.ID] = g
	}
	if g, ok := byID[0]; !ok || g.Width() != 1 {
		t.Fatalf("group 0 = %v", byID[0])
	}
	if g, ok := byID[1]; !ok || g.Width() != 1 {
		t.Fatalf("group 1 = %v", byID[1])
	}
	sz, _ := m.Sizes("ns")
	if sz[0] != 60 || sz[1] != 60 {
		t.Fatalf("sizes = %v", sz)
	}
}

func TestMergeOnUndersizedSiblings(t *testing.T) {
	m := NewManager(Config{MaxBytes: 1000, MinBytes: 50, Window: 1})
	mustRegister(t, m, "ns", 8, 4)
	// Groups [0,2),[2,4),[4,6),[6,8); first pair tiny, second pair big.
	if err := m.ReportRDD("ns", []int64{1, 1, 1, 1, 100, 100, 100, 100}); err != nil {
		t.Fatal(err)
	}
	changes, err := m.Rebalance("ns")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Kind != ChangeMerge {
		t.Fatalf("changes = %+v", changes)
	}
	groups, _ := m.Groups("ns")
	if len(groups) != 3 || groups[0].Width() != 4 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestWindowAggregation(t *testing.T) {
	m := NewManager(Config{MaxBytes: 150, MinBytes: 1, Window: 2})
	mustRegister(t, m, "ns", 4, 1) // single group [0,4)
	// Each RDD alone is under the bound; two in the window exceed it.
	if err := m.ReportRDD("ns", []int64{25, 25, 25, 25}); err != nil {
		t.Fatal(err)
	}
	if ch, _ := m.Rebalance("ns"); len(ch) != 0 {
		t.Fatalf("premature rebalance: %v", ch)
	}
	if err := m.ReportRDD("ns", []int64{25, 25, 25, 25}); err != nil {
		t.Fatal(err)
	}
	ch, _ := m.Rebalance("ns")
	if len(ch) == 0 {
		t.Fatal("window sum over bound did not split")
	}
	// A third report evicts the first from the window (window=2), keeping
	// total at 200 across 2 RDDs; sizes reflect only the window.
	if err := m.ReportRDD("ns", []int64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	sz, _ := m.Sizes("ns")
	var total int64
	for _, b := range sz {
		total += b
	}
	if total != 100 {
		t.Fatalf("window total = %d, want 100", total)
	}
}

func TestRebalanceStable(t *testing.T) {
	m := NewManager(Config{MaxBytes: 100, MinBytes: 10, Window: 1})
	mustRegister(t, m, "ns", 16, 4)
	if err := m.ReportRDD("ns", []int64{30, 30, 30, 30, 1, 1, 1, 1, 1, 1, 1, 1, 200, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rebalance("ns"); err != nil {
		t.Fatal(err)
	}
	// Second rebalance with no new data must be a no-op.
	ch, err := m.Rebalance("ns")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatalf("rebalance not stable: %v", ch)
	}
}

func TestSingleHotPartitionCannotSplitBelowOne(t *testing.T) {
	m := NewManager(Config{MaxBytes: 10, MinBytes: 1, Window: 1})
	mustRegister(t, m, "ns", 4, 1)
	if err := m.ReportRDD("ns", []int64{1000, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rebalance("ns"); err != nil {
		t.Fatal(err)
	}
	groups, _ := m.Groups("ns")
	// Hot partition 0 isolated into a single-partition group; no infinite
	// splitting.
	if groups[0].Width() != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

// Property: after any report + rebalance, groups still tile the partition
// space and no multi-partition group exceeds MaxBytes.
func TestRebalancePropertyInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		const parts = 32
		m := NewManager(Config{MaxBytes: 500, MinBytes: 20, Window: 1})
		if err := m.Register("ns", parts, 4); err != nil {
			return false
		}
		sizes := make([]int64, parts)
		for i := range sizes {
			if len(raw) > 0 {
				sizes[i] = int64(raw[i%len(raw)] % 300)
			}
		}
		if err := m.ReportRDD("ns", sizes); err != nil {
			return false
		}
		if _, err := m.Rebalance("ns"); err != nil {
			return false
		}
		groups, _ := m.Groups("ns")
		at := 0
		for _, g := range groups {
			if g.Lo != at {
				return false
			}
			at = g.Hi
			var b int64
			for p := g.Lo; p < g.Hi; p++ {
				b += sizes[p]
			}
			if g.Width() > 1 && b > 500 {
				return false
			}
		}
		return at == parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestManagerConcurrentAccess(t *testing.T) {
	m := NewManager(Config{MaxBytes: 200, MinBytes: 20, Window: 2})
	mustRegister(t, m, "ns", 32, 4)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			sizes := make([]int64, 32)
			for i := range sizes {
				sizes[i] = int64((w*13 + i*7) % 50)
			}
			for i := 0; i < 100; i++ {
				_ = m.ReportRDD("ns", sizes)
				_, _ = m.Rebalance("ns")
				_, _ = m.Groups("ns")
				_, _ = m.Sizes("ns")
				_, _ = m.GroupOf("ns", i%32)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	// Invariant: contiguous coverage survived the stampede.
	groups, err := m.Groups("ns")
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	for _, g := range groups {
		if g.Lo != at {
			t.Fatalf("coverage broken: %v", groups)
		}
		at = g.Hi
	}
	if at != 32 {
		t.Fatalf("coverage ends at %d", at)
	}
}
