package group

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func coverage(t *testing.T, tr *Tree) {
	t.Helper()
	groups := tr.Groups()
	at := 0
	for _, g := range groups {
		if g.Lo != at {
			t.Fatalf("gap or overlap at partition %d: groups %v", at, groups)
		}
		if g.Width() < 1 {
			t.Fatalf("empty group %v", g)
		}
		if g.ID != g.Lo {
			t.Fatalf("group id %d != lo %d", g.ID, g.Lo)
		}
		at = g.Hi
	}
	if at != tr.NumPartitions() {
		t.Fatalf("groups cover [0,%d), want [0,%d)", at, tr.NumPartitions())
	}
}

func TestNewTreeInitialGroups(t *testing.T) {
	tr := NewTree(16, 4)
	groups := tr.Groups()
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	for i, g := range groups {
		if g.Lo != i*4 || g.Hi != (i+1)*4 {
			t.Errorf("group %d = [%d,%d), want [%d,%d)", i, g.Lo, g.Hi, i*4, (i+1)*4)
		}
	}
	coverage(t, tr)
}

func TestSplitAndMerge(t *testing.T) {
	tr := NewTree(16, 4)
	l, r, err := tr.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Lo != 0 || l.Hi != 2 || r.Lo != 2 || r.Hi != 4 {
		t.Fatalf("split = %v, %v", l, r)
	}
	if tr.NumGroups() != 5 {
		t.Fatalf("groups = %d", tr.NumGroups())
	}
	coverage(t, tr)

	m, err := tr.Merge(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lo != 0 || m.Hi != 4 {
		t.Fatalf("merge = %v", m)
	}
	if tr.NumGroups() != 4 {
		t.Fatalf("groups = %d", tr.NumGroups())
	}
	coverage(t, tr)
}

func TestSplitSinglePartitionFails(t *testing.T) {
	tr := NewTree(4, 4)
	if _, _, err := tr.Split(0); err == nil {
		t.Fatal("splitting single-partition group succeeded")
	}
}

func TestSplitUnknownGroupFails(t *testing.T) {
	tr := NewTree(16, 4)
	if _, _, err := tr.Split(1); err == nil {
		t.Fatal("splitting non-group id succeeded")
	}
	if _, _, err := tr.Split(99); err == nil {
		t.Fatal("splitting out-of-range id succeeded")
	}
}

func TestMergeRequiresSiblingLeaves(t *testing.T) {
	tr := NewTree(16, 2) // leaves [0,8) and [8,16)
	if _, _, err := tr.Split(0); err != nil {
		t.Fatal(err)
	}
	// Now leaves are [0,4),[4,8),[8,16). Merging 8 needs sibling [0,8),
	// which is not a leaf.
	if _, err := tr.Merge(8); err == nil {
		t.Fatal("merge with non-leaf sibling succeeded")
	}
	// Merging the root back.
	if _, err := tr.Merge(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Merge(0); err != nil {
		t.Fatal(err)
	}
	if tr.NumGroups() != 1 {
		t.Fatalf("groups = %d, want 1", tr.NumGroups())
	}
	// Root cannot merge further.
	if _, err := tr.Merge(0); err == nil {
		t.Fatal("merging root succeeded")
	}
}

func TestGroupOf(t *testing.T) {
	tr := NewTree(16, 4)
	if _, _, err := tr.Split(4); err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{0: 0, 3: 0, 4: 4, 5: 4, 6: 6, 7: 6, 8: 8, 15: 12}
	for p, want := range cases {
		if g := tr.GroupOf(p); g.ID != want {
			t.Errorf("GroupOf(%d) = %d, want %d", p, g.ID, want)
		}
	}
}

func TestSiblingOf(t *testing.T) {
	tr := NewTree(8, 4)
	sib, ok := tr.SiblingOf(0)
	if !ok || sib.ID != 2 {
		t.Fatalf("SiblingOf(0) = %v, %v", sib, ok)
	}
	sib, ok = tr.SiblingOf(6)
	if !ok || sib.ID != 4 {
		t.Fatalf("SiblingOf(6) = %v, %v", sib, ok)
	}
	if _, ok := tr.SiblingOf(1); ok {
		t.Fatal("SiblingOf(non-group) succeeded")
	}
}

// TestRandomSplitMergeInvariant drives random valid operations and checks
// that the leaves always exactly tile the partition space.
func TestRandomSplitMergeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree(64, 8)
		for op := 0; op < 200; op++ {
			groups := tr.Groups()
			g := groups[rng.Intn(len(groups))]
			if rng.Intn(2) == 0 {
				_, _, _ = tr.Split(g.ID)
			} else {
				_, _ = tr.Merge(g.ID)
			}
			// Invariant: contiguous non-empty coverage of [0, 64).
			at := 0
			for _, gg := range tr.Groups() {
				if gg.Lo != at || gg.Width() < 1 {
					return false
				}
				at = gg.Hi
			}
			if at != 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMergeAreInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree(32, 4)
		groups := tr.Groups()
		g := groups[rng.Intn(len(groups))]
		if g.Width() < 2 {
			return true
		}
		before := tr.NumGroups()
		if _, _, err := tr.Split(g.ID); err != nil {
			return false
		}
		if _, err := tr.Merge(g.ID); err != nil {
			return false
		}
		after := tr.GroupOf(g.Lo)
		return tr.NumGroups() == before && after.Lo == g.Lo && after.Hi == g.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTreeValidation(t *testing.T) {
	for _, c := range []struct{ p, g int }{{0, 1}, {3, 1}, {8, 3}, {8, 16}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTree(%d,%d) did not panic", c.p, c.g)
				}
			}()
			NewTree(c.p, c.g)
		}()
	}
}

func TestGroupOfOutOfRangePanics(t *testing.T) {
	tr := NewTree(8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.GroupOf(8)
}
