package group

import (
	"fmt"
	"sort"
	"sync"
)

// ChangeKind distinguishes rebalance operations.
type ChangeKind int

// Rebalance operation kinds.
const (
	ChangeSplit ChangeKind = iota + 1
	ChangeMerge
)

// Change records one split or merge the manager performed, so the locality
// layer can split or merge the corresponding executor assignments (paper:
// "splitting (merging) a partition group also splits (merges) the
// corresponding local executors").
type Change struct {
	Kind ChangeKind
	// Before is the group (split) or the two sibling groups (merge) that
	// existed before the change.
	Before []Group
	// After is the two sub-groups (split) or the merged group (merge).
	After []Group
}

// Config bounds group sizes. When the byte size of a group (aggregated over
// the most recent Window reported RDDs of the namespace) exceeds MaxBytes
// the group splits; when a group and its sibling together fall below
// MinBytes they merge. This mirrors
// spark.locality.max(min)GroupMemSize in the paper's implementation notes.
type Config struct {
	MaxBytes int64
	MinBytes int64
	// Window is how many of the most recent reported RDDs contribute to
	// group sizes (paper: "the user may configure how many of the most
	// recent RDDs are accounted").
	Window int
}

// DefaultConfig returns the bounds used by the evaluation harness.
func DefaultConfig() Config {
	return Config{MaxBytes: 512 << 20, MinBytes: 64 << 20, Window: 3}
}

// Manager is the GroupManager: it owns one Group Tree per namespace,
// accumulates collection-partition sizes from reported RDDs, and performs
// threshold-triggered splits and merges. It is safe for concurrent use.
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	namespaces map[string]*namespaceState
}

type namespaceState struct {
	tree    *Tree
	history [][]int64 // most recent Window per-partition size vectors
}

// NewManager returns a manager with the given bounds.
func NewManager(cfg Config) *Manager {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	return &Manager{cfg: cfg, namespaces: make(map[string]*namespaceState)}
}

// Register creates the namespace's Group Tree with the given geometry. It is
// idempotent for identical geometry and fails if the namespace exists with a
// different one.
func (m *Manager) Register(ns string, numPartitions, initialGroups int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.namespaces[ns]; ok {
		if st.tree.NumPartitions() != numPartitions {
			return fmt.Errorf("group: namespace %q already registered with %d partitions", ns, st.tree.NumPartitions())
		}
		return nil
	}
	m.namespaces[ns] = &namespaceState{tree: NewTree(numPartitions, initialGroups)}
	return nil
}

// Registered reports whether a namespace exists.
func (m *Manager) Registered(ns string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.namespaces[ns]
	return ok
}

// ReportRDD feeds one RDD's per-partition byte sizes into the namespace's
// sliding window (the reportRDD(rdd) API in the paper). The vector length
// must match the namespace's partition count.
func (m *Manager) ReportRDD(ns string, partitionBytes []int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return fmt.Errorf("group: unknown namespace %q", ns)
	}
	if len(partitionBytes) != st.tree.NumPartitions() {
		return fmt.Errorf("group: namespace %q has %d partitions, got %d sizes",
			ns, st.tree.NumPartitions(), len(partitionBytes))
	}
	v := make([]int64, len(partitionBytes))
	copy(v, partitionBytes)
	st.history = append(st.history, v)
	if len(st.history) > m.cfg.Window {
		st.history = st.history[len(st.history)-m.cfg.Window:]
	}
	return nil
}

// aggregated returns the per-partition sizes summed over the window.
func (st *namespaceState) aggregated() []int64 {
	out := make([]int64, st.tree.NumPartitions())
	for _, v := range st.history {
		for i, b := range v {
			out[i] += b
		}
	}
	return out
}

// GroupBytes reports the aggregated byte size of the group holding partition
// range [g.Lo, g.Hi).
func groupBytes(sizes []int64, g Group) int64 {
	var s int64
	for p := g.Lo; p < g.Hi; p++ {
		s += sizes[p]
	}
	return s
}

// Groups returns the namespace's current groups in partition order.
func (m *Manager) Groups(ns string) ([]Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil, fmt.Errorf("group: unknown namespace %q", ns)
	}
	return st.tree.Groups(), nil
}

// GroupOf reports the group containing partition p.
func (m *Manager) GroupOf(ns string, p int) (Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return Group{}, fmt.Errorf("group: unknown namespace %q", ns)
	}
	return st.tree.GroupOf(p), nil
}

// Sizes returns the aggregated per-group sizes in partition order.
func (m *Manager) Sizes(ns string) (map[int]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil, fmt.Errorf("group: unknown namespace %q", ns)
	}
	sizes := st.aggregated()
	out := make(map[int]int64)
	for _, g := range st.tree.Groups() {
		out[g.ID] = groupBytes(sizes, g)
	}
	return out, nil
}

// Rebalance applies threshold-triggered splits and merges until the tree is
// stable, returning the ordered list of changes. Splits run before merges;
// a group splits while it exceeds MaxBytes and spans more than one
// partition, and two sibling leaves merge while their combined size is
// below MinBytes.
func (m *Manager) Rebalance(ns string) ([]Change, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return nil, fmt.Errorf("group: unknown namespace %q", ns)
	}
	sizes := st.aggregated()
	var changes []Change

	// Split pass: repeatedly split the largest oversized group so the
	// change list is deterministic.
	for {
		var candidates []Group
		for _, g := range st.tree.Groups() {
			if g.Width() > 1 && groupBytes(sizes, g) > m.cfg.MaxBytes {
				candidates = append(candidates, g)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			bi, bj := groupBytes(sizes, candidates[i]), groupBytes(sizes, candidates[j])
			if bi != bj {
				return bi > bj
			}
			return candidates[i].ID < candidates[j].ID
		})
		g := candidates[0]
		l, r, err := st.tree.Split(g.ID)
		if err != nil {
			return changes, err
		}
		changes = append(changes, Change{Kind: ChangeSplit, Before: []Group{g}, After: []Group{l, r}})
	}

	// Merge pass: merge sibling leaf pairs whose combined size is under the
	// lower bound, smallest pair first.
	for {
		merged := false
		groups := st.tree.Groups()
		type pair struct {
			a, b  Group
			total int64
		}
		var best *pair
		seen := make(map[int]bool)
		for _, g := range groups {
			if seen[g.ID] {
				continue
			}
			sib, ok := st.tree.SiblingOf(g.ID)
			if !ok {
				continue
			}
			seen[g.ID], seen[sib.ID] = true, true
			total := groupBytes(sizes, g) + groupBytes(sizes, sib)
			if total >= m.cfg.MinBytes {
				continue
			}
			if best == nil || total < best.total || (total == best.total && g.ID < best.a.ID) {
				p := pair{a: g, b: sib, total: total}
				if p.b.ID < p.a.ID {
					p.a, p.b = p.b, p.a
				}
				best = &p
			}
		}
		if best != nil {
			mg, err := st.tree.Merge(best.a.ID)
			if err != nil {
				return changes, err
			}
			changes = append(changes, Change{Kind: ChangeMerge, Before: []Group{best.a, best.b}, After: []Group{mg}})
			merged = true
		}
		if !merged {
			break
		}
	}
	return changes, nil
}

// ReplaySplit re-applies a journaled split during driver crash recovery: it
// splits the named group unconditionally, bypassing the size thresholds —
// the original decision already passed them and its sizes died with the
// driver. Returns the two halves.
func (m *Manager) ReplaySplit(ns string, groupID int) (Group, Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return Group{}, Group{}, fmt.Errorf("group: unknown namespace %q", ns)
	}
	return st.tree.Split(groupID)
}

// ReplayMerge re-applies a journaled merge during driver crash recovery,
// merging the named left sibling with its pair unconditionally. Returns the
// merged group.
func (m *Manager) ReplayMerge(ns string, leftID int) (Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[ns]
	if !ok {
		return Group{}, fmt.Errorf("group: unknown namespace %q", ns)
	}
	return st.tree.Merge(leftID)
}
