// Package group implements Stark's extendable partition groups
// (paper Sec. III-C): data is divided into many small partitions whose
// key→partition mapping never changes, and partitions are organized into
// non-overlapping groups — the leaves of a binary Group Tree. A group is the
// unit of task scheduling; splitting or merging groups re-balances load
// without shuffling a single record, because partition boundaries are
// respected.
package group

import "fmt"

// node is a Group Tree node covering partitions [lo, hi).
type node struct {
	lo, hi      int
	left, right *node
}

func (n *node) isLeaf() bool { return n.left == nil }

func (n *node) width() int { return n.hi - n.lo }

// Group describes one leaf of the tree: a contiguous, non-empty partition
// range. ID is the first partition index in the range, which is stable
// across unrelated split/merge operations elsewhere in the tree.
type Group struct {
	ID int
	Lo int // inclusive
	Hi int // exclusive
}

// Width reports the number of partitions in the group.
func (g Group) Width() int { return g.Hi - g.Lo }

// Tree is the Group Tree (paper Fig. 8). It starts as a full binary tree
// with initialGroups leaves over numPartitions partitions and supports leaf
// splits and sibling merges.
type Tree struct {
	root          *node
	numPartitions int
}

// NewTree builds a tree over numPartitions partitions with initialGroups
// leaves. Both must be powers of two with initialGroups <= numPartitions
// (the paper makes the same simplifying assumption and notes it is easily
// relaxed). It panics on invalid configuration.
func NewTree(numPartitions, initialGroups int) *Tree {
	if numPartitions < 1 || numPartitions&(numPartitions-1) != 0 {
		panic(fmt.Sprintf("group: numPartitions %d must be a power of two", numPartitions))
	}
	if initialGroups < 1 || initialGroups&(initialGroups-1) != 0 || initialGroups > numPartitions {
		panic(fmt.Sprintf("group: initialGroups %d must be a power of two <= %d", initialGroups, numPartitions))
	}
	t := &Tree{root: &node{lo: 0, hi: numPartitions}, numPartitions: numPartitions}
	// Expand until the leaf count reaches initialGroups.
	var expand func(n *node, leavesWanted int)
	expand = func(n *node, leavesWanted int) {
		if leavesWanted <= 1 {
			return
		}
		t.splitNode(n)
		expand(n.left, leavesWanted/2)
		expand(n.right, leavesWanted/2)
	}
	expand(t.root, initialGroups)
	return t
}

// NumPartitions reports the fixed partition count the tree covers.
func (t *Tree) NumPartitions() int { return t.numPartitions }

func (t *Tree) splitNode(n *node) {
	mid := n.lo + n.width()/2
	n.left = &node{lo: n.lo, hi: mid}
	n.right = &node{lo: mid, hi: n.hi}
}

// findLeaf returns the leaf containing partition p.
func (t *Tree) findLeaf(p int) *node {
	n := t.root
	for !n.isLeaf() {
		if p < n.right.lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// findGroup returns the leaf whose group ID (lo) is id, or nil.
func (t *Tree) findGroup(id int) *node {
	if id < 0 || id >= t.numPartitions {
		return nil
	}
	n := t.findLeaf(id)
	if n.lo != id {
		return nil
	}
	return n
}

// GroupOf reports the group containing partition p.
func (t *Tree) GroupOf(p int) Group {
	if p < 0 || p >= t.numPartitions {
		panic(fmt.Sprintf("group: partition %d out of range [0,%d)", p, t.numPartitions))
	}
	n := t.findLeaf(p)
	return Group{ID: n.lo, Lo: n.lo, Hi: n.hi}
}

// Groups returns all leaves in partition order.
func (t *Tree) Groups() []Group {
	var out []Group
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			out = append(out, Group{ID: n.lo, Lo: n.lo, Hi: n.hi})
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// NumGroups reports the current leaf count.
func (t *Tree) NumGroups() int { return len(t.Groups()) }

// Split divides the group with the given id into its two halves and returns
// them. It fails if the group does not exist or holds a single partition
// (paper: "split can be applied to any leaf node with more than one
// partition").
func (t *Tree) Split(id int) (left, right Group, err error) {
	n := t.findGroup(id)
	if n == nil {
		return Group{}, Group{}, fmt.Errorf("group: no group with id %d", id)
	}
	if n.width() < 2 {
		return Group{}, Group{}, fmt.Errorf("group: group %d has a single partition and cannot split", id)
	}
	t.splitNode(n)
	return Group{ID: n.left.lo, Lo: n.left.lo, Hi: n.left.hi},
		Group{ID: n.right.lo, Lo: n.right.lo, Hi: n.right.hi}, nil
}

// Merge joins the group with the given id with its sibling, provided both
// are leaves under the same parent (paper: "merge can only be applied to two
// leaf node groups under the same parent node"). It returns the merged group.
func (t *Tree) Merge(id int) (Group, error) {
	n := t.findGroup(id)
	if n == nil {
		return Group{}, fmt.Errorf("group: no group with id %d", id)
	}
	parent := t.parentOf(n)
	if parent == nil {
		return Group{}, fmt.Errorf("group: group %d is the root and has no sibling", id)
	}
	if !parent.left.isLeaf() || !parent.right.isLeaf() {
		return Group{}, fmt.Errorf("group: sibling of group %d is not a leaf", id)
	}
	parent.left, parent.right = nil, nil
	return Group{ID: parent.lo, Lo: parent.lo, Hi: parent.hi}, nil
}

// parentOf walks from the root to find n's parent; nil for the root.
func (t *Tree) parentOf(target *node) *node {
	if target == t.root {
		return nil
	}
	n := t.root
	for {
		var next *node
		if target.lo < n.right.lo {
			next = n.left
		} else {
			next = n.right
		}
		if next == target {
			return n
		}
		if next.isLeaf() {
			return nil
		}
		n = next
	}
}

// SiblingOf reports the sibling group of the group with the given id, with
// ok=false when the group does not exist, is the root, or its sibling is not
// a leaf (i.e. the pair is not mergeable).
func (t *Tree) SiblingOf(id int) (Group, bool) {
	n := t.findGroup(id)
	if n == nil {
		return Group{}, false
	}
	parent := t.parentOf(n)
	if parent == nil || !parent.left.isLeaf() || !parent.right.isLeaf() {
		return Group{}, false
	}
	sib := parent.left
	if sib == n {
		sib = parent.right
	}
	return Group{ID: sib.lo, Lo: sib.lo, Hi: sib.hi}, true
}
