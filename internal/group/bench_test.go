package group

import "testing"

func BenchmarkTreeSplitMerge(b *testing.B) {
	tr := NewTree(1024, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := tr.Groups()
		g := groups[i%len(groups)]
		if l, _, err := tr.Split(g.ID); err == nil {
			_, _ = tr.Merge(l.ID)
		}
	}
}

func BenchmarkGroupOf(b *testing.B) {
	tr := NewTree(1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.GroupOf(i % 1024)
	}
}

func BenchmarkManagerRebalance(b *testing.B) {
	m := NewManager(Config{MaxBytes: 500, MinBytes: 50, Window: 3})
	if err := m.Register("ns", 256, 16); err != nil {
		b.Fatal(err)
	}
	sizes := make([]int64, 256)
	for i := range sizes {
		sizes[i] = int64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sizes[i%256] = int64(i % 1000)
		_ = m.ReportRDD("ns", sizes)
		_, _ = m.Rebalance("ns")
	}
}
