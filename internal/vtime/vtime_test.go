package vtime

import (
	"testing"
	"time"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(30*time.Millisecond, func() { got = append(got, 3) })
	l.At(10*time.Millisecond, func() { got = append(got, 1) })
	l.At(20*time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", l.Now())
	}
}

func TestLoopTieBreakBySubmission(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(time.Second, func() { got = append(got, i) })
	}
	l.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestLoopAfterAndNesting(t *testing.T) {
	l := NewLoop()
	var fired []time.Duration
	l.After(5*time.Millisecond, func() {
		fired = append(fired, l.Now())
		l.After(5*time.Millisecond, func() {
			fired = append(fired, l.Now())
		})
	})
	l.Run()
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 10*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestLoopPastClampsToNow(t *testing.T) {
	l := NewLoop()
	l.At(10*time.Millisecond, func() {
		l.At(time.Millisecond, func() {
			if l.Now() != 10*time.Millisecond {
				t.Errorf("past event ran at %v", l.Now())
			}
		})
	})
	l.Run()
}

func TestRunUntil(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.At(time.Second, func() { ran++ })
	l.At(2*time.Second, func() { ran++ })
	l.At(3*time.Second, func() { ran++ })
	l.RunUntil(2 * time.Second)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if l.Now() != 2*time.Second {
		t.Fatalf("Now = %v", l.Now())
	}
	if l.Len() != 1 {
		t.Fatalf("pending = %d, want 1", l.Len())
	}
	l.RunUntil(10 * time.Second)
	if ran != 3 || l.Now() != 10*time.Second {
		t.Fatalf("ran = %d now = %v", ran, l.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	l := NewLoop()
	if l.Step() {
		t.Fatal("Step on empty loop reported true")
	}
}

func TestAdvance(t *testing.T) {
	l := NewLoop()
	l.Advance(time.Second)
	l.Advance(-time.Second) // ignored
	if l.Now() != time.Second {
		t.Fatalf("Now = %v", l.Now())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	l := NewLoop()
	ran := false
	l.After(-5*time.Second, func() { ran = true })
	l.Run()
	if !ran || l.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, l.Now())
	}
}
