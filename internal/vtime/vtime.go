// Package vtime provides the virtual clock and discrete-event loop that
// drive the simulated cluster. All latencies in the simulation are expressed
// as time.Duration on this virtual timeline; no wall-clock sleeping is
// involved, so experiments that simulate hours of cluster time finish in
// milliseconds of real time.
package vtime

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback on the virtual timeline.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	// Ties break by insertion order so the simulation is deterministic.
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Loop is a deterministic discrete-event loop over virtual time.
// The zero value is ready to use, starting at virtual time zero.
type Loop struct {
	now time.Duration
	pq  eventHeap
	seq uint64
	// postStep, when set, runs after every executed event, still at the
	// event's virtual time. The engine uses it as the event boundary where
	// deferred data-plane work joins back into the control plane.
	postStep func()
}

// SetPostStep installs (or, with nil, removes) a callback invoked after
// every event executed by Step, at the event's virtual time. Work the
// callback schedules runs in later events as usual.
func (l *Loop) SetPostStep(fn func()) { l.postStep = fn }

// NewLoop returns an event loop starting at virtual time zero.
func NewLoop() *Loop { return &Loop{} }

// Now reports the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Len reports the number of pending events.
func (l *Loop) Len() int { return len(l.pq) }

// NextAt peeks at the earliest pending event's deadline without running it;
// ok is false when the queue is empty. The engine's event-fusion path uses
// it to keep deferred data-plane batches accumulating while further events
// remain at the current instant.
func (l *Loop) NextAt() (time.Duration, bool) {
	if len(l.pq) == 0 {
		return 0, false
	}
	return l.pq[0].at, true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// clamps to the current time (the event runs next, after already-due events
// scheduled earlier).
func (l *Loop) At(t time.Duration, fn func()) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	heap.Push(&l.pq, &event{at: t, seq: l.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d
// clamps to zero.
func (l *Loop) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l.At(l.now+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its deadline.
// It reports whether an event was run.
func (l *Loop) Step() bool {
	if len(l.pq) == 0 {
		return false
	}
	ev := heap.Pop(&l.pq).(*event)
	l.now = ev.at
	ev.fn()
	if l.postStep != nil {
		l.postStep()
	}
	return true
}

// Run processes events until none remain. Events may schedule further
// events; Run keeps going until the queue drains.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil processes events with deadlines <= t and then advances the clock
// to exactly t. Events scheduled beyond t remain pending.
func (l *Loop) RunUntil(t time.Duration) {
	for len(l.pq) > 0 && l.pq[0].at <= t {
		l.Step()
	}
	if l.now < t {
		l.now = t
	}
}

// Advance moves the clock forward by d without running events whose
// deadlines fall in the skipped window; it is intended for callers that
// manage all events themselves and only need timestamp arithmetic. Most
// callers want RunUntil instead.
func (l *Loop) Advance(d time.Duration) {
	if d > 0 {
		l.now += d
	}
}
