package storage

import (
	"fmt"
	"testing"

	"stark/internal/partition"
	"stark/internal/record"
)

// BenchmarkShuffleReadWrite measures the full store round trip on the
// columnar path: partition each map output into a span-view batch, commit it
// with WriteMapOutputBatch (slab-range checksums), then read every reduce
// partition back through ReadReduce (slab-range verify, exact-size concat).
// allocs/op is the headline number — see BENCH_4.json's shuffle-rw micro for
// the comparison against the replaced per-record path.
func BenchmarkShuffleReadWrite(b *testing.B) {
	const maps, reduces, perMap = 8, 16, 2500
	p := partition.NewHash(reduces)
	mapData := make([][]record.Record, maps)
	for m := range mapData {
		rs := make([]record.Record, perMap)
		for i := range rs {
			rs[i] = record.Pair(fmt.Sprintf("key-%d-%05d", m, i), int64(i))
		}
		mapData[m] = rs
	}
	var scr record.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if err := s.RegisterShuffle(1, maps, reduces); err != nil {
			b.Fatal(err)
		}
		for m := 0; m < maps; m++ {
			bt := record.FromRecords(mapData[m])
			idx := scr.I32.Take(bt.Len())
			for j := range idx {
				idx[j] = int32(p.PartitionForHash(bt.Hash32(j)))
			}
			pb := bt.PartitionStable(idx, reduces, &scr)
			for si := range pb.Spans {
				pb.Spans[si].Bytes = pb.Spans[si].RawBytes
			}
			if err := s.WriteMapOutputBatch(1, m, pb); err != nil {
				b.Fatal(err)
			}
			scr.Reset()
		}
		s.PrepareShuffleReads()
		got := 0
		for r := 0; r < reduces; r++ {
			rs, _, err := s.ReadReduce(1, r)
			if err != nil {
				b.Fatal(err)
			}
			got += len(rs)
		}
		if got != maps*perMap {
			b.Fatalf("read %d records, want %d", got, maps*perMap)
		}
	}
}
