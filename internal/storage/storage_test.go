package storage

import (
	"errors"
	"testing"

	"stark/internal/record"
)

func TestShuffleLifecycle(t *testing.T) {
	s := NewStore()
	if err := s.RegisterShuffle(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterShuffle(1, 2, 3); err != nil {
		t.Fatalf("idempotent register: %v", err)
	}
	if err := s.RegisterShuffle(1, 4, 3); err == nil {
		t.Fatal("conflicting geometry accepted")
	}
	if s.ShuffleComplete(1) {
		t.Fatal("empty shuffle complete")
	}
	if got := s.MissingMapOutputs(1); len(got) != 2 {
		t.Fatalf("missing = %v", got)
	}
	if err := s.WriteMapOutput(1, 0, map[int]Bucket{
		0: {Data: []record.Record{record.Pair("a", 1)}, Bytes: 10},
		2: {Data: []record.Record{record.Pair("c", 1)}, Bytes: 20},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadReduce(1, 0); err == nil {
		t.Fatal("read from incomplete shuffle succeeded")
	}
	if err := s.WriteMapOutput(1, 1, map[int]Bucket{
		0: {Data: []record.Record{record.Pair("a2", 1)}, Bytes: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.ShuffleComplete(1) {
		t.Fatal("shuffle not complete")
	}
	data, bytes, err := s.ReadReduce(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 || bytes != 15 {
		t.Fatalf("data=%v bytes=%d", data, bytes)
	}
	// Reduce partition with no buckets reads empty.
	data, bytes, err = s.ReadReduce(1, 1)
	if err != nil || len(data) != 0 || bytes != 0 {
		t.Fatalf("empty reduce: %v %d %v", data, bytes, err)
	}
}

func TestShuffleValidation(t *testing.T) {
	s := NewStore()
	if err := s.WriteMapOutput(9, 0, nil); err == nil {
		t.Fatal("write to unknown shuffle accepted")
	}
	if _, _, err := s.ReadReduce(9, 0); err == nil {
		t.Fatal("read unknown shuffle accepted")
	}
	if err := s.RegisterShuffle(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMapOutput(2, 5, nil); err == nil {
		t.Fatal("out-of-range map partition accepted")
	}
	if err := s.WriteMapOutput(2, 0, map[int]Bucket{7: {}}); err == nil {
		t.Fatal("out-of-range reduce partition accepted")
	}
}

func TestMapOutputOverwrite(t *testing.T) {
	s := NewStore()
	if err := s.RegisterShuffle(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMapOutput(1, 0, map[int]Bucket{0: {Bytes: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMapOutput(1, 0, map[int]Bucket{0: {Bytes: 30}}); err != nil {
		t.Fatal(err)
	}
	_, bytes, err := s.ReadReduce(1, 0)
	if err != nil || bytes != 30 {
		t.Fatalf("bytes = %d, %v", bytes, err)
	}
}

func TestCheckpoints(t *testing.T) {
	s := NewStore()
	if s.HasCheckpoint(1, 0) {
		t.Fatal("phantom checkpoint")
	}
	s.WriteCheckpoint(1, 0, []record.Record{record.Pair("k", 1)}, 100)
	s.WriteCheckpoint(1, 1, nil, 50)
	if !s.HasCheckpoint(1, 0) || !s.HasCheckpoint(1, 1) {
		t.Fatal("checkpoints missing")
	}
	if s.TotalCheckpointBytes() != 150 {
		t.Fatalf("total = %d", s.TotalCheckpointBytes())
	}
	data, bytes, err := s.ReadCheckpoint(1, 0)
	if err != nil || bytes != 100 || len(data) != 1 {
		t.Fatalf("read: %v %d %v", data, bytes, err)
	}
	if _, _, err := s.ReadCheckpoint(2, 0); err == nil {
		t.Fatal("read missing checkpoint succeeded")
	}
	// Overwrite adjusts the running total instead of double counting.
	s.WriteCheckpoint(1, 0, nil, 80)
	if s.TotalCheckpointBytes() != 130 {
		t.Fatalf("total after overwrite = %d", s.TotalCheckpointBytes())
	}
	s.DropCheckpoints(1)
	if s.TotalCheckpointBytes() != 0 || s.HasCheckpoint(1, 0) {
		t.Fatal("drop failed")
	}
}

func TestCorruptMapOutputDetectedAndHealedByOverwrite(t *testing.T) {
	s := NewStore()
	if err := s.RegisterShuffle(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	write := func(mapPart int) {
		if err := s.WriteMapOutput(1, mapPart, map[int]Bucket{
			0: {Data: []record.Record{record.Pair("a", mapPart)}, Bytes: 10},
			1: {Data: []record.Record{record.Pair("b", mapPart)}, Bytes: 10},
		}); err != nil {
			t.Fatal(err)
		}
	}
	write(0)
	write(1)
	if !s.CorruptMapOutput(1, 1) {
		t.Fatal("corrupt reported no block")
	}
	if s.CorruptMapOutput(2, 0) || s.CorruptMapOutput(1, 5) {
		t.Fatal("corrupting a nonexistent block reported success")
	}
	_, _, err := s.ReadReduce(1, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of corrupt shuffle block: err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Checkpoint || ce.Shuffle != 1 || ce.MapPart != 1 {
		t.Fatalf("corrupt error coordinates = %+v", ce)
	}
	// A recomputed map task overwrites the block and restores integrity.
	write(1)
	if _, _, err := s.ReadReduce(1, 0); err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestCorruptCheckpointDetected(t *testing.T) {
	s := NewStore()
	s.WriteCheckpoint(3, 0, []record.Record{record.Pair("k", 1)}, 100)
	if !s.CorruptCheckpoint(3, 0) {
		t.Fatal("corrupt reported no block")
	}
	if s.CorruptCheckpoint(3, 9) {
		t.Fatal("corrupting a nonexistent checkpoint reported success")
	}
	_, _, err := s.ReadCheckpoint(3, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || !ce.Checkpoint || ce.RDD != 3 || ce.Part != 0 {
		t.Fatalf("corrupt error coordinates = %+v", ce)
	}
	// HasCheckpoint still reports presence — detection happens on read.
	if !s.HasCheckpoint(3, 0) {
		t.Fatal("corrupt checkpoint vanished before read")
	}
	// Rewriting the checkpoint restores integrity.
	s.WriteCheckpoint(3, 0, []record.Record{record.Pair("k", 1)}, 100)
	if _, _, err := s.ReadCheckpoint(3, 0); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestDropShuffle(t *testing.T) {
	s := NewStore()
	if err := s.RegisterShuffle(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMapOutput(1, 0, map[int]Bucket{0: {Bytes: 1}}); err != nil {
		t.Fatal(err)
	}
	s.DropShuffle(1)
	if s.ShuffleComplete(1) || s.HasMapOutput(1, 0) {
		t.Fatal("shuffle survived drop")
	}
}
